// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation section. Each benchmark runs the corresponding
// experiment at QuickScale (reduced size, same structure); the
// cmd/experiments binary runs the same experiments at FullScale (43,200
// jobs, 6 sites × 40 hosts). Benchmarks report the experiment wall time;
// the rendered rows are printed once per benchmark via -v style logging.
package repro

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchScale() experiments.Scale { return experiments.QuickScale() }

// render logs a report through the benchmark's logger on the first
// iteration only.
func render(b *testing.B, i int, r *experiments.Report, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if i == 0 && testing.Verbose() {
		var sink logWriter
		sink.b = b
		_ = r.Render(&sink)
	}
}

type logWriter struct{ b *testing.B }

func (w *logWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

var _ io.Writer = (*logWriter)(nil)

// BenchmarkTableI regenerates the projection property matrix.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI()
		render(b, i, r, err)
	}
}

// BenchmarkTableII regenerates the job-arrival fitting table (18-family
// BIC selection per data set).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableII(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkTableIII regenerates the job-duration fitting table.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIII(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkPeriodicity regenerates the autocorrelation/periodicity analysis.
func BenchmarkPeriodicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Periodicity(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure4 regenerates the jobs-per-day arrival curves.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure5 regenerates the U65 arrival density vs Equation-1 model.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure6 regenerates the fitted-vs-empirical arrival CDFs.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure7 regenerates the per-user duration ECDFs.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure10 runs the baseline convergence testbed experiment.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.Figure10Baseline(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure11 runs the update-delay (10x time-scale) experiment.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11UpdateDelay(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure12 runs the non-optimal-policy experiment.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.Figure12NonOptimalPolicy(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigurePartial runs the partial-cluster-participation experiment.
func BenchmarkFigurePartial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.FigurePartial(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkFigure13 runs the bursty-usage experiment.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.Figure13Bursty(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkProduction runs the month-scale single-cluster production
// reproduction.
func BenchmarkProduction(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 4000 // month-scale run stays tractable per iteration
	for i := 0; i < b.N; i++ {
		r, err := experiments.ProductionStats(sc)
		render(b, i, r, err)
	}
}

// BenchmarkAblationProjection compares the three projections.
func BenchmarkAblationProjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationProjection(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkAblationDistanceWeight sweeps the distance weight k.
func BenchmarkAblationDistanceWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDistanceWeight(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkAblationDecay sweeps the usage decay half-life.
func BenchmarkAblationDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDecay(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkAblationCacheTTL sweeps the update-delay components.
func BenchmarkAblationCacheTTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCacheTTL(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkAblationDispatch compares stochastic vs round-robin dispatch.
func BenchmarkAblationDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDispatch(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkAblationRM compares the SLURM- and Maui-like substrates.
func BenchmarkAblationRM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRM(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkAblationHierarchy runs the two-VO hierarchical-policy experiment.
func BenchmarkAblationHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationHierarchy(benchScale())
		render(b, i, r, err)
	}
}

// BenchmarkAblationBackfill compares strict priority order vs first-fit
// backfill.
func BenchmarkAblationBackfill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBackfill(benchScale())
		render(b, i, r, err)
	}
}
