package eventsim

import (
	"testing"
	"time"
)

var epoch = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := New(epoch)
	var order []int
	k.At(epoch.Add(3*time.Second), func(time.Time) { order = append(order, 3) })
	k.At(epoch.Add(1*time.Second), func(time.Time) { order = append(order, 1) })
	k.At(epoch.Add(2*time.Second), func(time.Time) { order = append(order, 2) })
	k.RunAll(0)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	k := New(epoch)
	at := epoch.Add(time.Second)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(at, func(time.Time) { order = append(order, i) })
	}
	k.RunAll(0)
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("tie order = %v, want ascending", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	k := New(epoch)
	var seen time.Time
	k.After(42*time.Second, func(now time.Time) { seen = now })
	k.RunAll(0)
	if want := epoch.Add(42 * time.Second); !seen.Equal(want) {
		t.Fatalf("event saw now=%v, want %v", seen, want)
	}
	if !k.Now().Equal(epoch.Add(42 * time.Second)) {
		t.Fatalf("kernel clock = %v", k.Now())
	}
}

func TestPastEventRunsNow(t *testing.T) {
	k := New(epoch)
	k.Clock().Advance(time.Hour)
	var seen time.Time
	k.At(epoch, func(now time.Time) { seen = now })
	k.RunAll(0)
	if want := epoch.Add(time.Hour); !seen.Equal(want) {
		t.Fatalf("past event ran at %v, want clamped to %v", seen, want)
	}
}

func TestRunUntilStopsAndSetsClock(t *testing.T) {
	k := New(epoch)
	ran := 0
	for i := 1; i <= 10; i++ {
		k.At(epoch.Add(time.Duration(i)*time.Minute), func(time.Time) { ran++ })
	}
	n := k.Run(epoch.Add(5 * time.Minute))
	if n != 5 || ran != 5 {
		t.Fatalf("Run executed %d (%d side effects), want 5", n, ran)
	}
	if !k.Now().Equal(epoch.Add(5 * time.Minute)) {
		t.Fatalf("clock after Run = %v, want %v", k.Now(), epoch.Add(5*time.Minute))
	}
	if k.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", k.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := New(epoch)
	count := 0
	var chain Event
	chain = func(time.Time) {
		count++
		if count < 100 {
			k.After(time.Second, chain)
		}
	}
	k.After(time.Second, chain)
	k.RunAll(0)
	if count != 100 {
		t.Fatalf("chained events ran %d times, want 100", count)
	}
	if want := epoch.Add(100 * time.Second); !k.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", k.Now(), want)
	}
}

func TestEvery(t *testing.T) {
	k := New(epoch)
	count := 0
	k.Every(time.Minute, func(time.Time) { count++ }, func() bool { return count >= 7 })
	k.RunAll(0)
	if count != 7 {
		t.Fatalf("Every ran %d times, want 7", count)
	}
}

func TestEveryWithRunUntil(t *testing.T) {
	k := New(epoch)
	count := 0
	k.Every(time.Minute, func(time.Time) { count++ }, nil)
	k.Run(epoch.Add(30 * time.Minute))
	if count != 30 {
		t.Fatalf("Every ran %d times in 30 minutes, want 30", count)
	}
}

func TestRunAllLimit(t *testing.T) {
	k := New(epoch)
	k.Every(time.Second, func(time.Time) {}, nil)
	n := k.RunAll(25)
	if n != 25 {
		t.Fatalf("RunAll(25) executed %d", n)
	}
}

func TestNilAndNonPositiveInputsIgnored(t *testing.T) {
	k := New(epoch)
	k.At(epoch.Add(time.Second), nil)
	k.Every(0, func(time.Time) {}, nil)
	k.Every(-time.Second, func(time.Time) {}, nil)
	k.Every(time.Second, nil, nil)
	if k.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", k.Pending())
	}
}

func TestStepsCounter(t *testing.T) {
	k := New(epoch)
	for i := 0; i < 4; i++ {
		k.After(time.Duration(i)*time.Second, func(time.Time) {})
	}
	k.RunAll(0)
	if k.Steps() != 4 {
		t.Fatalf("Steps() = %d, want 4", k.Steps())
	}
}

func TestNextAtPeeksEarliestPending(t *testing.T) {
	k := New(epoch)
	if _, ok := k.NextAt(); ok {
		t.Fatal("NextAt on an empty kernel reported a pending event")
	}
	k.At(epoch.Add(5*time.Second), func(time.Time) {})
	k.At(epoch.Add(2*time.Second), func(time.Time) {})
	at, ok := k.NextAt()
	if !ok || !at.Equal(epoch.Add(2*time.Second)) {
		t.Fatalf("NextAt = (%v, %v), want (%v, true)", at, ok, epoch.Add(2*time.Second))
	}
	// Peeking must not consume: stepping still runs the earliest event.
	if !k.Step() {
		t.Fatal("Step found nothing after NextAt")
	}
	if !k.Now().Equal(epoch.Add(2 * time.Second)) {
		t.Fatalf("clock at %v after first step", k.Now())
	}
	at, ok = k.NextAt()
	if !ok || !at.Equal(epoch.Add(5*time.Second)) {
		t.Fatalf("NextAt after step = (%v, %v), want (%v, true)", at, ok, epoch.Add(5*time.Second))
	}
}
