package eventsim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(epoch)
		for j := 0; j < 1000; j++ {
			k.After(time.Duration(j)*time.Second, func(time.Time) {})
		}
		k.RunAll(0)
	}
}

func BenchmarkChainedEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(epoch)
		n := 0
		var tick Event
		tick = func(time.Time) {
			n++
			if n < 1000 {
				k.After(time.Second, tick)
			}
		}
		k.After(time.Second, tick)
		k.RunAll(0)
	}
}
