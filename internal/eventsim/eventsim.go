// Package eventsim implements a small discrete-event simulation kernel.
// Events are scheduled at absolute simulated times and executed in time
// order; ties are broken by scheduling order so runs are deterministic.
// The kernel drives a simclock.Sim so every component that reads the clock
// observes a consistent notion of "now".
package eventsim

import (
	"container/heap"
	"time"

	"repro/internal/simclock"
)

// Event is a callback executed at a scheduled simulation time.
type Event func(now time.Time)

type item struct {
	at  time.Time
	seq uint64
	fn  Event
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Kernel is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all scheduling must happen from event callbacks or from the
// goroutine calling Run.
type Kernel struct {
	clock *simclock.Sim
	queue eventHeap
	seq   uint64
	steps uint64
}

// New returns a kernel whose simulated clock starts at epoch.
func New(epoch time.Time) *Kernel {
	return &Kernel{clock: simclock.NewSim(epoch)}
}

// Clock exposes the kernel's simulated clock for injection into components.
func (k *Kernel) Clock() *simclock.Sim { return k.clock }

// Now returns the current simulated time.
func (k *Kernel) Now() time.Time { return k.clock.Now() }

// At schedules fn to run at the absolute simulated time t. Events scheduled
// in the past run at the current time instead (the kernel never rewinds).
func (k *Kernel) At(t time.Time, fn Event) {
	if fn == nil {
		return
	}
	if t.Before(k.clock.Now()) {
		t = k.clock.Now()
	}
	k.seq++
	heap.Push(&k.queue, &item{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (k *Kernel) After(d time.Duration, fn Event) {
	k.At(k.clock.Now().Add(d), fn)
}

// Every schedules fn to run repeatedly with period d, starting d from now,
// until stop returns true (checked before each execution). A nil stop runs
// forever (bounded only by Run's until/limit).
func (k *Kernel) Every(d time.Duration, fn Event, stop func() bool) {
	if d <= 0 || fn == nil {
		return
	}
	var tick Event
	tick = func(now time.Time) {
		if stop != nil && stop() {
			return
		}
		fn(now)
		k.After(d, tick)
	}
	k.After(d, tick)
}

// Pending reports the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// NextAt returns the scheduled time of the earliest pending event. The
// second return is false when the queue is empty. Step-wise drivers (the
// scenario harness) use it to bound execution without consuming events.
func (k *Kernel) NextAt() (time.Time, bool) {
	if len(k.queue) == 0 {
		return time.Time{}, false
	}
	return k.queue[0].at, true
}

// Steps reports how many events have been executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Step executes the next event, advancing the clock to its time. It reports
// whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	it := heap.Pop(&k.queue).(*item)
	k.clock.Set(it.at)
	k.steps++
	it.fn(k.clock.Now())
	return true
}

// Run executes events until the queue is empty or the next event would be
// after until. It returns the number of events executed.
func (k *Kernel) Run(until time.Time) int {
	n := 0
	for len(k.queue) > 0 && !k.queue[0].at.After(until) {
		k.Step()
		n++
	}
	// Leave the clock at `until` so callers observe the full window elapsed.
	k.clock.Set(until)
	return n
}

// RunAll executes events until the queue is empty or limit events have run
// (limit <= 0 means no limit). It returns the number executed.
func (k *Kernel) RunAll(limit int) int {
	n := 0
	for len(k.queue) > 0 {
		if limit > 0 && n >= limit {
			break
		}
		k.Step()
		n++
	}
	return n
}
