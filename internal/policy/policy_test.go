package policy

import (
	"errors"
	"math"
	"testing"
)

// paperTree builds the Figure 3-style hierarchy:
//
//	/HQ  /LQ  /grid
//	        /grid/projA/{u1,u2}  /grid/projB/u3
func paperTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree()
	must := func(_ string, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tr.Add("", "hq", 30))
	must(tr.Add("", "lq", 10))
	must(tr.Add("", "grid", 60))
	must(tr.Add("/grid", "projA", 3))
	must(tr.Add("/grid", "projB", 1))
	must(tr.Add("/grid/projA", "u1", 1))
	must(tr.Add("/grid/projA", "u2", 3))
	must(tr.Add("/grid/projB", "u3", 1))
	return tr
}

func TestAddAndLookup(t *testing.T) {
	tr := paperTree(t)
	n, err := tr.Lookup("/grid/projA/u2")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "u2" || n.Share != 3 {
		t.Errorf("node = %+v", n)
	}
	if _, err := tr.Lookup("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup err = %v", err)
	}
	root, err := tr.Lookup("/")
	if err != nil || root != tr.Root {
		t.Error("root lookup failed")
	}
}

func TestAddRejectsBadInput(t *testing.T) {
	tr := paperTree(t)
	if _, err := tr.Add("", "hq", 1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	if _, err := tr.Add("", "x", 0); !errors.Is(err, ErrBadShare) {
		t.Errorf("zero share err = %v", err)
	}
	if _, err := tr.Add("", "x", -1); !errors.Is(err, ErrBadShare) {
		t.Errorf("negative share err = %v", err)
	}
	if _, err := tr.Add("", "a/b", 1); !errors.Is(err, ErrBadPath) {
		t.Errorf("slash name err = %v", err)
	}
	if _, err := tr.Add("/missing", "x", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing parent err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	tr := paperTree(t)
	if err := tr.Remove("/grid/projB"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup("/grid/projB/u3"); err == nil {
		t.Error("subtree survived removal")
	}
	if err := tr.Remove("/"); !errors.Is(err, ErrBadPath) {
		t.Errorf("removing root err = %v", err)
	}
	if err := tr.Remove("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("removing missing err = %v", err)
	}
}

func TestNormalize(t *testing.T) {
	tr := paperTree(t)
	norm := tr.Normalize()
	top := norm.Root.Children
	if math.Abs(top[0].Share-0.3) > 1e-12 || math.Abs(top[2].Share-0.6) > 1e-12 {
		t.Errorf("top shares = %g, %g, %g", top[0].Share, top[1].Share, top[2].Share)
	}
	projA, _ := norm.Lookup("/grid/projA")
	if math.Abs(projA.Share-0.75) > 1e-12 {
		t.Errorf("projA share = %g, want 0.75", projA.Share)
	}
	// Original unchanged.
	if tr.Root.Children[0].Share != 30 {
		t.Error("Normalize mutated input")
	}
}

func TestLeavesAndShares(t *testing.T) {
	tr := paperTree(t)
	leaves := tr.Leaves()
	if len(leaves) != 5 {
		t.Fatalf("leaves = %d, want 5 (hq, lq, u1, u2, u3)", len(leaves))
	}
	byPath := map[string]Leaf{}
	for _, l := range leaves {
		byPath[l.Path] = l
	}
	u2 := byPath["/grid/projA/u2"]
	if u2.User != "u2" {
		t.Fatalf("u2 leaf = %+v", u2)
	}
	want := []float64{0.6, 0.75, 0.75}
	if len(u2.Shares) != 3 {
		t.Fatalf("u2 shares = %v", u2.Shares)
	}
	for i := range want {
		if math.Abs(u2.Shares[i]-want[i]) > 1e-12 {
			t.Errorf("u2 shares = %v, want %v", u2.Shares, want)
			break
		}
	}
	lq := byPath["/lq"]
	if len(lq.Shares) != 1 || math.Abs(lq.Shares[0]-0.1) > 1e-12 {
		t.Errorf("lq shares = %v", lq.Shares)
	}
}

func TestFindUser(t *testing.T) {
	tr := paperTree(t)
	path, ok := tr.FindUser("u3")
	if !ok || path != "/grid/projB/u3" {
		t.Errorf("FindUser(u3) = %q, %v", path, ok)
	}
	if _, ok := tr.FindUser("ghost"); ok {
		t.Error("found nonexistent user")
	}
}

func TestMountAndRefresh(t *testing.T) {
	local := NewTree()
	if _, err := local.Add("", "local", 40); err != nil {
		t.Fatal(err)
	}
	// A remotely managed grid policy.
	remote := NewTree()
	remote.Add("", "va", 1)
	remote.Add("", "vb", 3)

	if err := local.Mount("", "grid", 60, remote.Root, "pds://national"); err != nil {
		t.Fatal(err)
	}
	n, err := local.Lookup("/grid/vb")
	if err != nil {
		t.Fatal(err)
	}
	if n.Share != 3 {
		t.Errorf("mounted share = %g", n.Share)
	}
	mp, _ := local.Lookup("/grid")
	if mp.MountedFrom != "pds://national" {
		t.Errorf("MountedFrom = %q", mp.MountedFrom)
	}

	// Mutating the remote tree must not affect the mounted copy.
	remote.Root.Children[0].Share = 99
	n, _ = local.Lookup("/grid/va")
	if n.Share != 1 {
		t.Error("mount did not deep-copy the subtree")
	}

	// Refresh propagates policy updates.
	remote2 := NewTree()
	remote2.Add("", "vc", 5)
	if err := local.RefreshMount("/grid", remote2.Root); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Lookup("/grid/vc"); err != nil {
		t.Error("refresh did not replace children")
	}
	if _, err := local.Lookup("/grid/va"); err == nil {
		t.Error("refresh kept stale children")
	}

	// Refreshing a non-mount fails.
	if err := local.RefreshMount("/local", remote2.Root); !errors.Is(err, ErrNotMounted) {
		t.Errorf("refresh non-mount err = %v", err)
	}
	if err := local.Mount("", "grid2", 1, nil, "x"); !errors.Is(err, ErrBadPath) {
		t.Errorf("nil subtree err = %v", err)
	}
}

func TestValidate(t *testing.T) {
	tr := paperTree(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := paperTree(t)
	bad.Root.Children[0].Share = -1
	if err := bad.Validate(); !errors.Is(err, ErrBadShare) {
		t.Errorf("bad share err = %v", err)
	}
	dup := paperTree(t)
	dup.Root.Children = append(dup.Root.Children, &Node{Name: "hq", Share: 1})
	if err := dup.Validate(); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := paperTree(t)
	cp := tr.Clone()
	cp.Root.Children[0].Share = 999
	if tr.Root.Children[0].Share == 999 {
		t.Error("Clone shares memory with original")
	}
}

func TestDepth(t *testing.T) {
	if got := paperTree(t).Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := NewTree().Depth(); got != 0 {
		t.Errorf("empty Depth = %d", got)
	}
}
