// Package policy implements the hierarchical, tree-based usage policies of
// Aequus: target usage shares organized top-down into groups, subgroups and
// users. The share of one entity can be recursively subdivided, and globally
// managed sub-policies can be dynamically mounted into a locally administered
// root node — letting a site assign part of its resources to a grid without
// managing the grid's internal subdivision.
package policy

import (
	"errors"
	"fmt"
	"strings"
)

// Separator separates path components, e.g. "/grid/project-a/u65".
const Separator = "/"

// Node is one entry of a policy tree. Shares are relative weights among
// siblings; Normalize rescales every sibling group to sum to one.
type Node struct {
	// Name is the node's identifier, unique among its siblings.
	Name string `json:"name"`
	// Share is the node's target usage share relative to its siblings.
	Share float64 `json:"share"`
	// Children are the sub-allocations of this node's share.
	Children []*Node `json:"children,omitempty"`
	// MountedFrom records the origin of a dynamically mounted subtree
	// (empty for locally administered nodes).
	MountedFrom string `json:"mountedFrom,omitempty"`
}

// Tree is a complete usage policy rooted at a virtual root node whose share
// is the whole resource.
type Tree struct {
	Root *Node `json:"root"`
}

// NewTree returns a policy tree with an empty root.
func NewTree() *Tree {
	return &Tree{Root: &Node{Name: "", Share: 1}}
}

// Errors returned by tree operations.
var (
	ErrNotFound   = errors.New("policy: path not found")
	ErrDuplicate  = errors.New("policy: duplicate sibling name")
	ErrBadShare   = errors.New("policy: share must be positive")
	ErrBadPath    = errors.New("policy: bad path")
	ErrNotMounted = errors.New("policy: node is not a mount point")
)

// SplitPath splits "/a/b/c" into ["a","b","c"]; the root is the empty path.
func SplitPath(path string) []string {
	path = strings.Trim(path, Separator)
	if path == "" {
		return nil
	}
	return strings.Split(path, Separator)
}

// JoinPath joins components into a canonical "/a/b/c" path.
func JoinPath(parts []string) string {
	return Separator + strings.Join(parts, Separator)
}

// find walks to the node at path; parent is the node above it (nil for root).
func (t *Tree) find(parts []string) (node, parent *Node) {
	node = t.Root
	for _, p := range parts {
		parent = node
		var next *Node
		for _, c := range node.Children {
			if c.Name == p {
				next = c
				break
			}
		}
		if next == nil {
			return nil, nil
		}
		node = next
	}
	return node, parent
}

// Lookup returns the node at path ("" or "/" for the root).
func (t *Tree) Lookup(path string) (*Node, error) {
	n, _ := t.find(SplitPath(path))
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return n, nil
}

// Add inserts a node with the given share under parentPath. It returns the
// new node's full path.
func (t *Tree) Add(parentPath, name string, share float64) (string, error) {
	if name == "" || strings.Contains(name, Separator) {
		return "", fmt.Errorf("%w: invalid name %q", ErrBadPath, name)
	}
	if !(share > 0) {
		return "", fmt.Errorf("%w: %g", ErrBadShare, share)
	}
	parent, err := t.Lookup(parentPath)
	if err != nil {
		return "", err
	}
	for _, c := range parent.Children {
		if c.Name == name {
			return "", fmt.Errorf("%w: %s under %s", ErrDuplicate, name, parentPath)
		}
	}
	parent.Children = append(parent.Children, &Node{Name: name, Share: share})
	return JoinPath(append(SplitPath(parentPath), name)), nil
}

// Remove deletes the node at path (and its subtree).
func (t *Tree) Remove(path string) error {
	parts := SplitPath(path)
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	node, parent := t.find(parts)
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	for i, c := range parent.Children {
		if c == node {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNotFound, path)
}

// Mount grafts sub (a remotely managed policy subtree) under parentPath with
// the given local share, recording its origin. This is the PDS operation
// that lets "local administrators assign parts of the resources to one or
// more grids while retaining full control over the infrastructure".
func (t *Tree) Mount(parentPath, name string, share float64, sub *Node, origin string) error {
	if sub == nil {
		return fmt.Errorf("%w: nil subtree", ErrBadPath)
	}
	path, err := t.Add(parentPath, name, share)
	if err != nil {
		return err
	}
	node, _ := t.Lookup(path)
	node.Children = cloneNodes(sub.Children)
	node.MountedFrom = origin
	return nil
}

// RefreshMount replaces the children of an existing mount point with a fresh
// copy of the remote subtree (policy updates propagate on PDS refresh).
func (t *Tree) RefreshMount(path string, sub *Node) error {
	node, err := t.Lookup(path)
	if err != nil {
		return err
	}
	if node.MountedFrom == "" {
		return fmt.Errorf("%w: %s", ErrNotMounted, path)
	}
	if sub == nil {
		return fmt.Errorf("%w: nil subtree", ErrBadPath)
	}
	node.Children = cloneNodes(sub.Children)
	return nil
}

// Validate checks share positivity and sibling-name uniqueness everywhere.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return errors.New("policy: nil root")
	}
	return validateNode(t.Root, "")
}

func validateNode(n *Node, path string) error {
	seen := map[string]bool{}
	for _, c := range n.Children {
		if c.Name == "" || strings.Contains(c.Name, Separator) {
			return fmt.Errorf("%w: %q under %s", ErrBadPath, c.Name, path)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: %s under %s", ErrDuplicate, c.Name, path)
		}
		seen[c.Name] = true
		if !(c.Share > 0) {
			return fmt.Errorf("%w: %s%s%s has %g", ErrBadShare, path, Separator, c.Name, c.Share)
		}
		if err := validateNode(c, path+Separator+c.Name); err != nil {
			return err
		}
	}
	return nil
}

// Normalize rescales every sibling group so its shares sum to one, returning
// a new tree (the input is unchanged).
func (t *Tree) Normalize() *Tree {
	out := t.Clone()
	normalizeNode(out.Root)
	return out
}

func normalizeNode(n *Node) {
	var sum float64
	for _, c := range n.Children {
		sum += c.Share
	}
	if sum > 0 {
		for _, c := range n.Children {
			c.Share /= sum
		}
	}
	for _, c := range n.Children {
		normalizeNode(c)
	}
}

// Clone deep-copies the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{Root: cloneNode(t.Root)}
}

func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := &Node{Name: n.Name, Share: n.Share, MountedFrom: n.MountedFrom}
	out.Children = cloneNodes(n.Children)
	return out
}

func cloneNodes(ns []*Node) []*Node {
	if ns == nil {
		return nil
	}
	out := make([]*Node, len(ns))
	for i, c := range ns {
		out[i] = cloneNode(c)
	}
	return out
}

// Leaf is a user entry in the policy: its path and the chain of normalized
// shares from the first level below the root down to the leaf.
type Leaf struct {
	// Path is the full path, e.g. "/grid/u65".
	Path string
	// User is the leaf name.
	User string
	// Shares holds the normalized share at each level along the path.
	Shares []float64
}

// Leaves returns all leaf entries of the normalized tree in depth-first
// order.
func (t *Tree) Leaves() []Leaf {
	norm := t.Normalize()
	var out []Leaf
	var walk func(n *Node, parts []string, shares []float64)
	walk = func(n *Node, parts []string, shares []float64) {
		if len(n.Children) == 0 {
			if len(parts) == 0 {
				return // empty tree: the root is not a user
			}
			out = append(out, Leaf{
				Path:   JoinPath(parts),
				User:   n.Name,
				Shares: append([]float64(nil), shares...),
			})
			return
		}
		for _, c := range n.Children {
			walk(c, append(parts, c.Name), append(shares, c.Share))
		}
	}
	walk(norm.Root, nil, nil)
	return out
}

// FindUser returns the path of the (first) leaf with the given name.
func (t *Tree) FindUser(user string) (string, bool) {
	for _, l := range t.Leaves() {
		if l.User == user {
			return l.Path, true
		}
	}
	return "", false
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		best := 0
		for _, c := range n.Children {
			if d := walk(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	return walk(t.Root)
}
