package policy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text policy format is one node per line:
//
//	/grid            60
//	/grid/u65        65.25
//	/local           40
//
// Shares are relative weights among siblings (normalized on use). Parent
// paths must appear before their children. '#' starts a comment.

// WriteText serializes the tree in the text format, depth-first.
func WriteText(w io.Writer, t *Tree) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# path share"); err != nil {
		return err
	}
	var walk func(n *Node, parts []string) error
	walk = func(n *Node, parts []string) error {
		for _, c := range n.Children {
			p := append(parts, c.Name)
			if _, err := fmt.Fprintf(bw, "%s %g\n", JoinPath(p), c.Share); err != nil {
				return err
			}
			if err := walk(c, p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses the text format into a tree.
func ReadText(r io.Reader) (*Tree, error) {
	t := NewTree()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("policy: line %d: want 'path share', got %q", lineNo, line)
		}
		share, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("policy: line %d: bad share %q", lineNo, f[1])
		}
		parts := SplitPath(f[0])
		if len(parts) == 0 {
			return nil, fmt.Errorf("policy: line %d: cannot set root share", lineNo)
		}
		parent := JoinPath(parts[:len(parts)-1])
		if _, err := t.Add(parent, parts[len(parts)-1], share); err != nil {
			return nil, fmt.Errorf("policy: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// MarshalJSON / UnmarshalJSON give trees a stable wire representation for
// the Policy Distribution Service.

// ToJSON serializes the tree as JSON.
func ToJSON(t *Tree) ([]byte, error) { return json.Marshal(t) }

// FromJSON parses a JSON tree and validates it.
func FromJSON(data []byte) (*Tree, error) {
	var t Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	if t.Root == nil {
		t.Root = &Node{Name: "", Share: 1}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// FlatShares returns user -> normalized total target share (the product of
// shares down the path), the quantity used by the percental projection.
// Users appearing in multiple leaves accumulate.
func FlatShares(t *Tree) map[string]float64 {
	out := map[string]float64{}
	for _, l := range t.Leaves() {
		total := 1.0
		for _, s := range l.Shares {
			total *= s
		}
		out[l.User] += total
	}
	return out
}

// Users returns the sorted distinct leaf user names.
func Users(t *Tree) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range t.Leaves() {
		if !seen[l.User] {
			seen[l.User] = true
			out = append(out, l.User)
		}
	}
	sort.Strings(out)
	return out
}

// FromShares builds a flat single-level tree: every user directly under the
// root with the given share — the common case for the testbed experiments
// where policy targets are per-user usage shares.
func FromShares(shares map[string]float64) (*Tree, error) {
	t := NewTree()
	users := make([]string, 0, len(shares))
	for u := range shares {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		if _, err := t.Add("", u, shares[u]); err != nil {
			return nil, err
		}
	}
	return t, nil
}
