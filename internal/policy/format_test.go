package policy

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	tr := paperTree(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Leaves(), back.Leaves()
	if len(a) != len(b) {
		t.Fatalf("leaf counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path != b[i].Path {
			t.Errorf("leaf %d path %q vs %q", i, a[i].Path, b[i].Path)
		}
		for j := range a[i].Shares {
			if math.Abs(a[i].Shares[j]-b[i].Shares[j]) > 1e-12 {
				t.Errorf("leaf %s shares %v vs %v", a[i].Path, a[i].Shares, b[i].Shares)
			}
		}
	}
}

func TestReadTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"/a",               // missing share
		"/a one",           // bad share
		"/ 1",              // root share
		"/missing/child 1", // parent not defined yet
		"/a 1 extra",       // too many fields
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestReadTextSkipsComments(t *testing.T) {
	src := "# comment\n\n/a 2\n/a/x 1\n"
	tr, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup("/a/x"); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := paperTree(t)
	data, err := ToJSON(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Leaves()) != len(tr.Leaves()) {
		t.Error("JSON round trip lost leaves")
	}
	if _, err := FromJSON([]byte("{bad")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Invalid shares rejected on parse.
	if _, err := FromJSON([]byte(`{"root":{"name":"","share":1,"children":[{"name":"x","share":-1}]}}`)); err == nil {
		t.Error("negative share accepted via JSON")
	}
	// Missing root tolerated.
	empty, err := FromJSON([]byte(`{}`))
	if err != nil || empty.Root == nil {
		t.Errorf("empty JSON: %v", err)
	}
}

func TestFlatShares(t *testing.T) {
	tr := paperTree(t)
	fs := FlatShares(tr)
	// u2: 0.6 * 0.75 * 0.75 = 0.3375
	if math.Abs(fs["u2"]-0.3375) > 1e-12 {
		t.Errorf("u2 flat share = %g", fs["u2"])
	}
	// hq: 0.3
	if math.Abs(fs["hq"]-0.3) > 1e-12 {
		t.Errorf("hq flat share = %g", fs["hq"])
	}
	var sum float64
	for _, v := range fs {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("flat shares sum to %g", sum)
	}
}

func TestUsers(t *testing.T) {
	us := Users(paperTree(t))
	want := []string{"hq", "lq", "u1", "u2", "u3"}
	if len(us) != len(want) {
		t.Fatalf("Users = %v", us)
	}
	for i := range want {
		if us[i] != want[i] {
			t.Fatalf("Users = %v, want %v", us, want)
		}
	}
}

func TestFromShares(t *testing.T) {
	tr, err := FromShares(map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	fs := FlatShares(tr)
	if math.Abs(fs["a"]-0.5) > 1e-12 {
		t.Errorf("a share = %g", fs["a"])
	}
	if _, err := FromShares(map[string]float64{"a": 0}); err == nil {
		t.Error("zero share accepted")
	}
}
