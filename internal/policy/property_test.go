package policy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTree builds a random valid policy tree from fuzz input.
func randomTree(rng *rand.Rand, maxDepth int) *Tree {
	t := NewTree()
	var grow func(path string, depth int)
	counter := 0
	grow = func(path string, depth int) {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			counter++
			name := "n" + itoa(counter)
			share := rng.Float64()*9 + 0.5
			if _, err := t.Add(path, name, share); err != nil {
				continue
			}
			if depth < maxDepth && rng.Float64() < 0.4 {
				grow(path+Separator+name, depth+1)
			}
		}
	}
	grow("", 1)
	return t
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestPropertyNormalizedSiblingsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, 3).Normalize()
		var walk func(n *Node) bool
		walk = func(n *Node) bool {
			if len(n.Children) > 0 {
				var sum float64
				for _, c := range n.Children {
					sum += c.Share
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
			for _, c := range n.Children {
				if !walk(c) {
					return false
				}
			}
			return true
		}
		if !walk(tr.Root) {
			t.Fatalf("trial %d: sibling shares do not sum to 1", trial)
		}
	}
}

func TestPropertyFlatSharesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, 3)
		fs := FlatShares(tr)
		if len(fs) == 0 {
			continue
		}
		var sum float64
		for _, v := range fs {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: flat shares sum to %g", trial, sum)
		}
	}
}

func TestPropertyLeavesMatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng, 3)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: generated tree invalid: %v", trial, err)
		}
		for _, l := range tr.Leaves() {
			n, err := tr.Lookup(l.Path)
			if err != nil {
				t.Fatalf("trial %d: leaf path %s not found", trial, l.Path)
			}
			if len(n.Children) != 0 {
				t.Fatalf("trial %d: leaf %s has children", trial, l.Path)
			}
			if len(l.Shares) != len(SplitPath(l.Path)) {
				t.Fatalf("trial %d: leaf %s has %d shares for depth %d",
					trial, l.Path, len(l.Shares), len(SplitPath(l.Path)))
			}
		}
	}
}

func TestPropertyJSONRoundTripPreservesLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(rng, 3)
		data, err := ToJSON(tr)
		if err != nil {
			t.Fatal(err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatal(err)
		}
		a, b := tr.Leaves(), back.Leaves()
		if len(a) != len(b) {
			t.Fatalf("trial %d: leaf counts %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].Path != b[i].Path {
				t.Fatalf("trial %d: leaf %d path %q vs %q", trial, i, a[i].Path, b[i].Path)
			}
		}
	}
}

func TestPropertySplitJoinPath(t *testing.T) {
	f := func(parts []string) bool {
		clean := parts[:0]
		for _, p := range parts {
			if p == "" || containsSep(p) {
				return true // skip invalid components
			}
			clean = append(clean, p)
		}
		if len(clean) == 0 {
			return true
		}
		joined := JoinPath(clean)
		back := SplitPath(joined)
		if len(back) != len(clean) {
			return false
		}
		for i := range back {
			if back[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func containsSep(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == Separator[0] {
			return true
		}
	}
	return false
}
