// Package fcs implements the Fairshare Calculation Service: it fetches
// usage trees from the UMS and policy trees from the PDS periodically, and
// pre-calculates fairshare trees with current values for all users — "this
// way, no real-time calculations need to take place when new jobs arrive".
//
// The serving path is lock-free: every pre-calculation publishes an
// immutable snapshot (tree + per-user index + projected priorities) through
// an atomic pointer, so Priority/Table/Tree are O(1) pointer loads and map
// lookups with no mutex and no tree walks. Staleness is handled with
// single-flight stale-while-revalidate: the first reader past the TTL kicks
// one asynchronous recomputation while every reader (including itself) keeps
// serving the previous snapshot; errors from the background refresh are
// surfaced through telemetry and LastRefreshError (wired into /readyz).
//
// Refreshes are incremental when the sources cooperate: a usage source that
// implements DeltaUsageSource hands the FCS just the users whose decayed
// totals changed since the last pull, and a policy source that reports a
// Version lets the FCS prove the tree shape is unchanged. When both hold,
// the refresh drives a persistent fairshare.Recalc engine — O(dirty·depth)
// tree work with copy-on-write structural sharing instead of a full
// O(users) rebuild — and the published snapshot is bit-identical to what a
// full recomputation would have produced. Any break in the chain (first
// refresh, policy edit, delta-log overflow, engine error) falls back to the
// full path and re-anchors the engine.
package fcs

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
	"repro/internal/vector"
	"repro/internal/wire"
)

// PolicySource provides the current policy tree (the PDS).
type PolicySource interface {
	Policy() *policy.Tree
}

// versioned is optionally implemented by a PolicySource: a watermark that
// changes whenever the policy tree may have changed. Two equal reads
// bracketing a Policy() call prove the tree is the one already cached, which
// is what allows a refresh to skip the policy clone and stay incremental.
type versioned interface {
	Version() uint64
}

// UsageSource provides pre-computed per-user decayed usage (the UMS).
// Implementations must not block unrelated callers while recomputing: the
// UMS recomputes single-flight outside its lock, so FCS snapshot rebuilds
// waiting on a slow USS never stall the UMS's own readiness probes, and
// concurrent rebuild retries coalesce onto one source fan-out.
type UsageSource interface {
	UsageTotals() (map[string]float64, time.Time, error)
}

// DeltaUsageSource is optionally implemented by a UsageSource that can
// report which users' totals changed since a version watermark. When the
// usage source supports it, steady-state refreshes recompute only the dirty
// fraction of the fairshare tree. The returned set's maps are read-only
// (see usage.DeltaSet).
type DeltaUsageSource interface {
	UsageDeltas(since uint64) (usage.DeltaSet, error)
}

// DefaultCacheTTL is the snapshot lifetime used when Config.CacheTTL is
// zero. A zero TTL used to force a full recomputation on every Priority
// call — the opposite of the paper's pre-calculation discipline — so the
// zero value now means "default", and a negative TTL means "never stale"
// (refresh only via Refresh).
const DefaultCacheTTL = time.Minute

// Refresh modes reported by RefreshInfo.Mode, the
// aequus_fcs_refresh_*_total counters, and the fcs.refresh span's "mode"
// attribute.
const (
	// RefreshFull recomputed the whole tree from complete usage totals.
	RefreshFull = "full"
	// RefreshIncremental recomputed only the dirty paths via the Recalc
	// engine (a delta that changed nothing republishes the previous
	// snapshot with DirtyUsers == 0).
	RefreshIncremental = "incremental"
)

// Config configures an FCS instance.
type Config struct {
	// Fairshare parameterizes the calculation (distance weight, resolution).
	Fairshare fairshare.Config
	// Projection collapses vectors to [0,1] priorities (default percental,
	// "the configuration currently used in production").
	Projection vector.Projection
	// CacheTTL bounds how stale the pre-calculated snapshot may be — update
	// delay component (II). Zero means DefaultCacheTTL; negative disables
	// expiry entirely (snapshots refresh only via Refresh).
	CacheTTL time.Duration
	// SynchronousRefresh makes a stale read recompute in-line before
	// serving, instead of serving the previous snapshot while one
	// background refresh runs. Deterministic sim-clock environments (the
	// testbed) want this; live services should leave it false so readers
	// never block on the UMS.
	SynchronousRefresh bool
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
	// SourceRetry bounds transient-failure retries of the UMS usage fetch
	// during a refresh (the zero value performs exactly one attempt). A
	// refresh that still fails leaves the previous snapshot serving —
	// stale-while-revalidate — so retries here only shorten how long the
	// table lags, never block readers.
	SourceRetry resilience.RetryPolicy
	// Spans receives refresh-pipeline trace spans (nil disables tracing).
	// Only the refresh path is traced; Priority/PriorityBatch stay span-free
	// so the read path remains allocation-free.
	Spans *span.Recorder
	// DriftTopK bounds how many worst-drift users each snapshot's drift
	// table retains (max/mean still cover everyone). Zero means
	// DefaultDriftTopK; negative retains the whole population.
	DriftTopK int
}

// snapshot is one immutable pre-calculation result. Everything reachable
// from a published snapshot is read-only, which is what makes the lock-free
// read path safe. (The wire table is materialized lazily under tableOnce —
// the only mutation, and it is idempotent and synchronized.)
type snapshot struct {
	tree  *fairshare.Tree
	index *fairshare.Index
	// pol is the policy the snapshot was computed from, kept so
	// VerifySnapshot can rebuild the full-recompute twin.
	pol *policy.Tree
	// prior[i] is the projected priority of index entry i.
	prior      []float64
	projName   string
	computedAt time.Time
	// table is the wire view, assembled on first Table() call.
	tableOnce sync.Once
	table     wire.FairshareTableResponse
	// drift is the fairness-drift table (per-leaf |usage − target| share
	// error, worst offenders first) computed once at publication time, so
	// serving it is free on the read path.
	drift     []DriftEntry
	driftMax  float64
	driftMean float64
}

// RefreshInfo describes the most recent successful snapshot refresh — the
// introspection record behind /debug/aequus and `aequusctl fcs`.
type RefreshInfo struct {
	// Mode is RefreshFull or RefreshIncremental.
	Mode string
	// DirtyUsers is how many leaves were recomputed: the bitwise-changed
	// users on the incremental path, the whole population on the full path.
	DirtyUsers int
	// Duration is the wall-clock cost of the refresh.
	Duration time.Duration
	// FoldDuration/RescoreDuration/MaterializeDuration break an incremental
	// refresh's engine cost into its recalc phases (zero on a full refresh):
	// delta resolution + spine cloning + usage re-folds, sibling-group
	// rescoring, and segment/arena re-materialization.
	FoldDuration        time.Duration
	RescoreDuration     time.Duration
	MaterializeDuration time.Duration
	// MaterializedSegments/SharedSegments report how many top-level-subtree
	// segments the incremental engine rebuilt vs re-published as pointer
	// copies (zero on a full refresh).
	MaterializedSegments int
	SharedSegments       int
	// At is when the refreshed snapshot was published (service clock).
	At time.Time
}

// Service is a Fairshare Calculation Service instance.
type Service struct {
	cfg Config // Projection is mutated under refreshMu; the rest is fixed.
	ttl time.Duration
	pds PolicySource
	ums UsageSource

	// snap is the published snapshot; nil until the first computation.
	snap atomic.Pointer[snapshot]
	// refreshMu serializes recomputation and projection changes. Readers
	// never take it once a snapshot exists.
	refreshMu sync.Mutex
	// refreshing is the single-flight latch for asynchronous refreshes.
	refreshing atomic.Bool
	// lastErr records the most recent refresh outcome (nil error = ok).
	lastErr atomic.Pointer[refreshOutcome]
	// lastRefresh records the most recent successful refresh's mode and
	// cost; nil until one succeeds.
	lastRefresh atomic.Pointer[RefreshInfo]

	// engine is the persistent incremental recomputation engine, anchored
	// on the last full rebuild; nil until the first refresh. Guarded by
	// refreshMu.
	engine *fairshare.Recalc
	// lastPolicy/policyVer cache the policy tree across refreshes when the
	// PDS reports versions, so an unchanged policy costs neither a clone
	// nor a full rebuild. Guarded by refreshMu.
	lastPolicy    *policy.Tree
	policyVer     uint64
	havePolicyVer bool
	// usageVersion is the delta watermark of the last refresh's usage state
	// (valid only when haveUsageVersion). Guarded by refreshMu.
	usageVersion     uint64
	haveUsageVersion bool

	mRecalcs     *telemetry.Counter
	mIncr        *telemetry.Counter
	mFull        *telemetry.Counter
	mRecalcDur   *telemetry.Histogram
	mPhaseDur    *telemetry.HistogramVec
	mDirty       *telemetry.Gauge
	mTreeNodes   *telemetry.Gauge
	mTreeUsers   *telemetry.Gauge
	mSnapAge     *telemetry.Gauge
	mStaleServes *telemetry.Counter
	mAsyncKicks  *telemetry.Counter
	mAsyncDedup  *telemetry.Counter
	mRefreshErrs *telemetry.Counter
	mBatchReqs   *telemetry.Counter
	mBatchUsers  *telemetry.Histogram
	mDriftMax    *telemetry.Gauge
	mDriftMean   *telemetry.Gauge
}

type refreshOutcome struct{ err error }

// ErrUnknownUser is returned for users absent from the policy.
var ErrUnknownUser = errors.New("fcs: user not in policy")

// New creates an FCS.
func New(cfg Config, pds PolicySource, ums UsageSource) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Projection == nil {
		cfg.Projection = vector.Percental{}
	}
	if cfg.Fairshare.Resolution <= 0 {
		cfg.Fairshare = fairshare.DefaultConfig()
	}
	ttl := cfg.CacheTTL
	if ttl == 0 {
		ttl = DefaultCacheTTL
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Service{
		cfg: cfg, ttl: ttl, pds: pds, ums: ums,
		mRecalcs: reg.Counter("aequus_fcs_recalcs_total",
			"Fairshare tree pre-calculations performed."),
		mIncr: reg.Counter("aequus_fcs_refresh_incremental_total",
			"Snapshot refreshes served by the incremental recalc engine."),
		mFull: reg.Counter("aequus_fcs_refresh_full_total",
			"Snapshot refreshes that recomputed the whole tree."),
		mRecalcDur: reg.Histogram("aequus_fcs_recalc_duration_seconds",
			"Wall-clock duration of one fairshare tree pre-calculation.",
			telemetry.DefBuckets()),
		mPhaseDur: reg.HistogramVec("aequus_fcs_recalc_phase_seconds",
			"Wall-clock duration of one incremental-recalc phase (fold, rescore, materialize).",
			telemetry.DefBuckets(), "phase"),
		mDirty: reg.Gauge("aequus_fcs_dirty_users",
			"Leaves recomputed by the last refresh (whole population on a full refresh)."),
		mTreeNodes: reg.Gauge("aequus_fcs_tree_nodes",
			"Nodes in the last pre-calculated fairshare tree."),
		mTreeUsers: reg.Gauge("aequus_fcs_tree_users",
			"Leaf users with a pre-calculated priority."),
		mSnapAge: reg.Gauge("aequus_fcs_snapshot_age_seconds",
			"Age of the published fairshare snapshot at last observation."),
		mStaleServes: reg.Counter("aequus_fcs_stale_serves_total",
			"Reads served from an expired snapshot while a refresh ran."),
		mAsyncKicks: reg.Counter("aequus_fcs_refresh_async_total",
			"Asynchronous snapshot refreshes started by stale reads."),
		mAsyncDedup: reg.Counter("aequus_fcs_refresh_dedup_total",
			"Stale-read refresh kicks suppressed by the single-flight latch."),
		mRefreshErrs: reg.Counter("aequus_fcs_refresh_errors_total",
			"Snapshot recomputations that failed."),
		mBatchReqs: reg.Counter("aequus_fcs_batch_requests_total",
			"Batch priority requests served."),
		mBatchUsers: reg.Histogram("aequus_fcs_batch_users",
			"Users per batch priority request.", telemetry.CountBuckets()),
		mDriftMax: reg.Gauge("aequus_fcs_drift_max_ratio",
			"Largest per-user |usage share - target share| in the last snapshot."),
		mDriftMean: reg.Gauge("aequus_fcs_drift_mean_ratio",
			"Mean per-user |usage share - target share| in the last snapshot."),
	}
}

// CacheTTL reports the effective snapshot lifetime (after defaulting).
func (s *Service) CacheTTL() time.Duration { return s.ttl }

// LastRefresh reports the mode, dirty-user count, and wall-clock cost of the
// most recent successful refresh (zero value before the first one).
func (s *Service) LastRefresh() RefreshInfo {
	if ri := s.lastRefresh.Load(); ri != nil {
		return *ri
	}
	return RefreshInfo{}
}

// SetProjection switches the projection algorithm at run time (the paper:
// "the approach to use is configurable and can be changed during
// run-time"). The current tree is re-projected immediately — no UMS
// round trip — and published as a new snapshot with the same ComputedAt.
func (s *Service) SetProjection(p vector.Projection) {
	if p == nil {
		return
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	s.cfg.Projection = p
	sn := s.snap.Load()
	if sn == nil {
		return
	}
	s.snap.Store(s.buildSnapshot(sn.tree, sn.index, sn.pol, sn.computedAt))
}

// Refresh forces recomputation of the fairshare snapshot.
func (s *Service) Refresh() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.rebuildLocked()
}

// policyLocked returns the policy tree to compute against and whether it may
// differ from the one the engine's anchor was built on. Without version
// support every refresh must assume a change (and pay the clone); with it,
// an unchanged watermark reuses the cached tree. The version is read BEFORE
// the policy so a racing edit can only make the next refresh conservatively
// full, never let a stale tree pass as current. refreshMu must be held.
func (s *Service) policyLocked() (*policy.Tree, bool) {
	v, ok := s.pds.(versioned)
	if !ok {
		return s.pds.Policy(), true
	}
	ver := v.Version()
	if s.havePolicyVer && ver == s.policyVer && s.lastPolicy != nil {
		return s.lastPolicy, false
	}
	pol := s.pds.Policy()
	s.lastPolicy, s.policyVer, s.havePolicyVer = pol, ver, true
	return pol, true
}

// rebuildLocked recomputes and publishes a snapshot; refreshMu must be held.
// It picks the cheapest sound path per refresh: incremental when the usage
// source supplied a delta and the policy provably did not change, full
// otherwise.
func (s *Service) rebuildLocked() error {
	// Durations are measured in wall time, not the (possibly simulated)
	// service clock: the metric reports real compute cost.
	started := time.Now()
	ctx, root := span.Start(span.WithRecorder(context.Background(), s.cfg.Spans),
		"fcs.refresh")
	defer root.End()

	prev := s.snap.Load()
	pol, polChanged := s.policyLocked()
	dsrc, hasDeltas := s.ums.(DeltaUsageSource)
	canIncr := hasDeltas && prev != nil && s.engine != nil &&
		!polChanged && s.haveUsageVersion

	_, fetch := span.Start(ctx, "fcs.fetch_usage")
	var (
		ds     usage.DeltaSet
		totals map[string]float64
		err    error
	)
	if hasDeltas {
		since := uint64(0)
		if canIncr {
			since = s.usageVersion
		}
		err = s.cfg.SourceRetry.Do(ctx, func(context.Context) error {
			var e error
			ds, e = dsrc.UsageDeltas(since)
			return e
		})
		if canIncr && !ds.Full {
			fetch.SetAttrInt("dirty_users", int64(len(ds.Changed)))
		} else {
			totals = ds.Totals
			fetch.SetAttrInt("users", int64(len(totals)))
		}
	} else {
		err = s.cfg.SourceRetry.Do(ctx, func(context.Context) error {
			t, _, e := s.ums.UsageTotals()
			totals = t
			return e
		})
		fetch.SetAttrInt("users", int64(len(totals)))
	}
	fetch.SetErr(err)
	fetch.End()
	if err != nil {
		return s.failLocked(root, err)
	}

	incremental := canIncr && !ds.Full
	dirty := 0
	var tree *fairshare.Tree
	var ix *fairshare.Index
	var stats fairshare.RecalcStats

	_, comp := span.Start(ctx, "fcs.compute")
	if incremental {
		t2, i2, ast, aerr := s.engine.Apply(ds.Changed)
		if aerr == nil {
			tree, ix, stats = t2, i2, ast
			dirty = stats.DirtyLeaves
			comp.SetAttrInt("dirty_leaves", int64(stats.DirtyLeaves))
			comp.SetAttrInt("cloned_nodes", int64(stats.ClonedNodes))
			comp.SetAttrInt("shared_nodes", int64(stats.SharedNodes))
			comp.SetAttrInt("materialized_segments", int64(stats.MaterializedSegments))
			comp.SetAttrInt("shared_segments", int64(stats.SharedSegments))
			comp.SetAttrInt("fold_us", stats.FoldDuration.Microseconds())
			comp.SetAttrInt("rescore_us", stats.RescoreDuration.Microseconds())
			comp.SetAttrInt("materialize_us", stats.MaterializeDuration.Microseconds())
		} else {
			// The engine refused the delta (anchor mismatch); refetch the
			// complete totals and rebuild from scratch.
			comp.SetAttr("fallback", aerr.Error())
			incremental = false
			fds, ferr := dsrc.UsageDeltas(0)
			if ferr != nil {
				comp.SetErr(ferr)
				comp.End()
				return s.failLocked(root, ferr)
			}
			ds, totals = fds, fds.Totals
		}
	}
	if !incremental {
		tree = fairshare.Compute(pol, totals, s.cfg.Fairshare)
		ix = fairshare.NewIndex(tree)
		dirty = ix.Len()
	}
	comp.End()

	_, pub := span.Start(ctx, "fcs.publish")
	now := s.cfg.Clock.Now()
	var sn *snapshot
	if incremental && dirty == 0 && prev != nil {
		// Bitwise no-op delta: the engine handed back the previous
		// tree/index, so republish the previous snapshot's projections and
		// drift wholesale under a fresh timestamp.
		sn = &snapshot{
			tree: prev.tree, index: prev.index, pol: prev.pol,
			prior: prev.prior, projName: prev.projName, computedAt: now,
			drift: prev.drift, driftMax: prev.driftMax, driftMean: prev.driftMean,
		}
	} else {
		sn = s.buildSnapshot(tree, ix, pol, now)
	}
	s.snap.Store(sn)
	pub.SetAttrInt("users", int64(sn.index.Len()))
	pub.End()

	// Re-anchor or advance the incremental engine. On the incremental path
	// Apply already adopted the new state.
	if !incremental {
		if s.engine == nil {
			s.engine = fairshare.NewRecalc(tree, ix)
		} else {
			s.engine.Reset(tree, ix)
		}
	}
	if hasDeltas {
		s.usageVersion, s.haveUsageVersion = ds.Version, true
	}

	mode := RefreshFull
	if incremental {
		mode = RefreshIncremental
	}
	root.SetAttr("mode", mode)
	root.SetAttrInt("dirty_users", int64(dirty))
	dur := time.Since(started)
	s.lastRefresh.Store(&RefreshInfo{
		Mode: mode, DirtyUsers: dirty, Duration: dur, At: now,
		FoldDuration:         stats.FoldDuration,
		RescoreDuration:      stats.RescoreDuration,
		MaterializeDuration:  stats.MaterializeDuration,
		MaterializedSegments: stats.MaterializedSegments,
		SharedSegments:       stats.SharedSegments,
	})
	s.lastErr.Store(&refreshOutcome{nil})
	s.mRecalcs.Inc()
	if incremental {
		s.mIncr.Inc()
		s.mPhaseDur.With("fold").Observe(stats.FoldDuration.Seconds())
		s.mPhaseDur.With("rescore").Observe(stats.RescoreDuration.Seconds())
		s.mPhaseDur.With("materialize").Observe(stats.MaterializeDuration.Seconds())
	} else {
		s.mFull.Inc()
	}
	s.mDirty.Set(float64(dirty))
	s.mRecalcDur.Observe(dur.Seconds())
	s.mTreeNodes.Set(float64(s.engine.Nodes()))
	s.mTreeUsers.Set(float64(sn.index.Len()))
	s.mSnapAge.Set(0)
	return nil
}

// failLocked records a refresh failure; refreshMu must be held.
func (s *Service) failLocked(root *span.Span, err error) error {
	s.lastErr.Store(&refreshOutcome{err})
	s.mRefreshErrs.Inc()
	root.SetErr(err)
	return err
}

// buildSnapshot projects the tree into a per-position priority slice and
// computes the drift summary; refreshMu must be held (it reads
// cfg.Projection). The wire table is deferred to the first Table() call.
func (s *Service) buildSnapshot(tree *fairshare.Tree, ix *fairshare.Index, pol *policy.Tree, at time.Time) *snapshot {
	n := ix.Len()
	prior := make([]float64, n)
	if pp, ok := s.cfg.Projection.(vector.PointwiseProjection); ok {
		projectPointwise(pp, ix, prior, tree.Config.Resolution)
	} else {
		// Global projections (dictionary) need the full entry view; the map
		// indirection collapses duplicate names to one value, as before.
		m := s.cfg.Projection.Project(ix.Entries(), tree.Config.Resolution)
		for i := 0; i < n; i++ {
			prior[i] = m[ix.At(i).User]
		}
	}
	k := s.cfg.DriftTopK
	if k == 0 {
		k = DefaultDriftTopK
	}
	drift, driftMax, driftMean := computeDrift(ix, k)
	s.mDriftMax.Set(driftMax)
	s.mDriftMean.Set(driftMean)
	return &snapshot{
		tree: tree, index: ix, pol: pol, prior: prior,
		projName: s.cfg.Projection.Name(), computedAt: at,
		drift: drift, driftMax: driftMax, driftMean: driftMean,
	}
}

// projectParallelThreshold is the population at which per-entry projection
// fans out across cores (same order as the tree build's threshold).
const projectParallelThreshold = 4096

// projectPointwise fills out[i] with the projection of entry i, in parallel
// for large populations — pointwise projections are embarrassingly parallel
// and need no intermediate map. Entries are read through the index's
// composition-free View and reconstituted into scratch buffers (reused per
// worker), so the refresh path never forces the index to materialize its
// composed per-segment arenas; the scratch holds the very same floats, so
// projections stay bit-identical to the At()-based entries.
func projectPointwise(p vector.PointwiseProjection, ix *fairshare.Index, out []float64, resolution float64) {
	n := len(out)
	project := func(lo, hi int) {
		var vbuf, ubuf []float64
		for i := lo; i < hi; i++ {
			v := ix.View(i)
			vbuf = append(vbuf[:0], v.HeadVec)
			vbuf = append(vbuf, v.TailVec...)
			ubuf = append(ubuf[:0], v.HeadUsage)
			ubuf = append(ubuf, v.TailUsage...)
			out[i] = p.ProjectEntry(vector.Entry{
				User:       v.User,
				Vec:        vector.Vector(vbuf),
				PathShares: v.PathShares,
				PathUsage:  ubuf,
			}, resolution)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if n < projectParallelThreshold || workers < 2 {
		project(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			project(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ComputedAt reports when the current snapshot was pre-calculated (zero if
// no calculation has happened yet) — the staleness input of /readyz. As a
// side effect it refreshes the snapshot-age gauge, so scraping /metrics
// alongside periodic readiness checks keeps the gauge current.
func (s *Service) ComputedAt() time.Time {
	sn := s.snap.Load()
	if sn == nil {
		return time.Time{}
	}
	s.mSnapAge.Set(s.cfg.Clock.Now().Sub(sn.computedAt).Seconds())
	return sn.computedAt
}

// LastRefreshError returns the error from the most recent snapshot
// recomputation, or nil if it succeeded (or none ran yet). /readyz uses it
// to report a failing background refresh while stale data is still served.
func (s *Service) LastRefreshError() error {
	if o := s.lastErr.Load(); o != nil {
		return o.err
	}
	return nil
}

// current returns the snapshot to serve. The hot path is one atomic load
// plus a clock read; only a cold start (no snapshot yet) ever blocks, and
// only a stale read in SynchronousRefresh mode recomputes in-line.
func (s *Service) current() (*snapshot, error) {
	sn := s.snap.Load()
	if sn == nil {
		return s.firstSnapshot()
	}
	if s.ttl > 0 && s.cfg.Clock.Now().Sub(sn.computedAt) >= s.ttl {
		if s.cfg.SynchronousRefresh {
			return s.refreshStale()
		}
		s.kickRefresh()
		s.mStaleServes.Inc()
	}
	return sn, nil
}

// firstSnapshot computes the initial snapshot; concurrent cold readers are
// collapsed onto one computation by refreshMu.
func (s *Service) firstSnapshot() (*snapshot, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if sn := s.snap.Load(); sn != nil {
		return sn, nil
	}
	if err := s.rebuildLocked(); err != nil {
		return nil, err
	}
	return s.snap.Load(), nil
}

// refreshStale recomputes a stale snapshot in-line (SynchronousRefresh
// mode), deduplicating concurrent stale readers under refreshMu.
func (s *Service) refreshStale() (*snapshot, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if sn := s.snap.Load(); sn != nil && s.cfg.Clock.Now().Sub(sn.computedAt) < s.ttl {
		return sn, nil
	}
	if err := s.rebuildLocked(); err != nil {
		return nil, err
	}
	return s.snap.Load(), nil
}

// kickRefresh starts one background recomputation; concurrent stale readers
// that lose the latch race return immediately (their read is served from
// the previous snapshot — stale-while-revalidate).
func (s *Service) kickRefresh() {
	if !s.refreshing.CompareAndSwap(false, true) {
		s.mAsyncDedup.Inc()
		return
	}
	s.mAsyncKicks.Inc()
	go func() {
		defer s.refreshing.Store(false)
		s.refreshMu.Lock()
		defer s.refreshMu.Unlock()
		// A forced Refresh may have landed while we waited for the lock.
		if sn := s.snap.Load(); sn != nil && s.cfg.Clock.Now().Sub(sn.computedAt) < s.ttl {
			return
		}
		// Errors are recorded in lastErr and the error counter; readers
		// keep serving the previous snapshot.
		_ = s.rebuildLocked()
	}()
}

// Priority returns the pre-calculated projected priority of a grid user.
// The hot path is lock-free: one snapshot load and one striped-map lookup,
// zero tree walks, zero allocations. The returned Vector shares the
// snapshot's immutable backing array and must not be mutated.
func (s *Service) Priority(user string) (wire.FairshareResponse, error) {
	sn, err := s.current()
	if err != nil {
		return wire.FairshareResponse{}, err
	}
	pos, ok := sn.index.Pos(user)
	if !ok {
		return wire.FairshareResponse{}, ErrUnknownUser
	}
	e := sn.index.At(pos)
	return wire.FairshareResponse{
		User:       user,
		Value:      sn.prior[pos],
		Vector:     e.Vec,
		Priority:   e.LeafPriority,
		ComputedAt: sn.computedAt,
	}, nil
}

// PriorityBatch resolves many users against one snapshot load — the single
// round trip a resource manager uses to reprioritize a whole queue. Users
// absent from the policy are reported in Missing instead of failing the
// batch.
func (s *Service) PriorityBatch(users []string) (wire.FairshareBatchResponse, error) {
	sn, err := s.current()
	if err != nil {
		return wire.FairshareBatchResponse{}, err
	}
	out := wire.FairshareBatchResponse{
		Projection: sn.projName,
		ComputedAt: sn.computedAt,
		Entries:    make([]wire.FairshareResponse, 0, len(users)),
	}
	for _, u := range users {
		pos, ok := sn.index.Pos(u)
		if !ok {
			out.Missing = append(out.Missing, u)
			continue
		}
		e := sn.index.At(pos)
		out.Entries = append(out.Entries, wire.FairshareResponse{
			User:       u,
			Value:      sn.prior[pos],
			Vector:     e.Vec,
			Priority:   e.LeafPriority,
			ComputedAt: sn.computedAt,
		})
	}
	s.mBatchReqs.Inc()
	s.mBatchUsers.Observe(float64(len(users)))
	return out, nil
}

// Table returns the full fairshare table, assembled once per snapshot on
// first use (incremental refreshes that nobody asks a table of never pay
// for one); callers must treat it as read-only.
func (s *Service) Table() (wire.FairshareTableResponse, error) {
	sn, err := s.current()
	if err != nil {
		return wire.FairshareTableResponse{}, err
	}
	sn.tableOnce.Do(func() { sn.table = buildTable(sn) })
	return sn.table, nil
}

// buildTable materializes the wire view of a snapshot.
func buildTable(sn *snapshot) wire.FairshareTableResponse {
	n := sn.index.Len()
	t := wire.FairshareTableResponse{
		Projection: sn.projName,
		ComputedAt: sn.computedAt,
		Entries:    make([]wire.FairshareResponse, n),
	}
	for i := 0; i < n; i++ {
		e := sn.index.At(i)
		t.Entries[i] = wire.FairshareResponse{
			User:       e.User,
			Value:      sn.prior[i],
			Vector:     e.Vec,
			Priority:   e.LeafPriority,
			ComputedAt: sn.computedAt,
		}
	}
	return t
}

// Tree returns the current fairshare tree (possibly triggering a refresh if
// stale); callers must treat it as read-only.
func (s *Service) Tree() (*fairshare.Tree, error) {
	sn, err := s.current()
	if err != nil {
		return nil, err
	}
	return sn.tree, nil
}
