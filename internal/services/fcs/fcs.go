// Package fcs implements the Fairshare Calculation Service: it fetches
// usage trees from the UMS and policy trees from the PDS periodically, and
// pre-calculates fairshare trees with current values for all users — "this
// way, no real-time calculations need to take place when new jobs arrive".
package fcs

import (
	"errors"
	"sync"
	"time"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/vector"
	"repro/internal/wire"
)

// PolicySource provides the current policy tree (the PDS).
type PolicySource interface {
	Policy() *policy.Tree
}

// UsageSource provides pre-computed per-user decayed usage (the UMS).
type UsageSource interface {
	UsageTotals() (map[string]float64, time.Time, error)
}

// Config configures an FCS instance.
type Config struct {
	// Fairshare parameterizes the calculation (distance weight, resolution).
	Fairshare fairshare.Config
	// Projection collapses vectors to [0,1] priorities (default percental,
	// "the configuration currently used in production").
	Projection vector.Projection
	// CacheTTL bounds how stale the pre-calculated tree may be — update
	// delay component (II).
	CacheTTL time.Duration
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
}

// Service is a Fairshare Calculation Service instance.
type Service struct {
	cfg Config
	pds PolicySource
	ums UsageSource

	mu         sync.Mutex
	tree       *fairshare.Tree
	priorities map[string]float64
	computedAt time.Time

	mRecalcs   *telemetry.Counter
	mRecalcDur *telemetry.Histogram
	mTreeNodes *telemetry.Gauge
	mTreeUsers *telemetry.Gauge
}

// ErrUnknownUser is returned for users absent from the policy.
var ErrUnknownUser = errors.New("fcs: user not in policy")

// New creates an FCS.
func New(cfg Config, pds PolicySource, ums UsageSource) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Projection == nil {
		cfg.Projection = vector.Percental{}
	}
	if cfg.Fairshare.Resolution <= 0 {
		cfg.Fairshare = fairshare.DefaultConfig()
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Service{
		cfg: cfg, pds: pds, ums: ums,
		mRecalcs: reg.Counter("aequus_fcs_recalcs_total",
			"Fairshare tree pre-calculations performed."),
		mRecalcDur: reg.Histogram("aequus_fcs_recalc_duration_seconds",
			"Wall-clock duration of one fairshare tree pre-calculation.",
			telemetry.DefBuckets()),
		mTreeNodes: reg.Gauge("aequus_fcs_tree_nodes",
			"Nodes in the last pre-calculated fairshare tree."),
		mTreeUsers: reg.Gauge("aequus_fcs_tree_users",
			"Leaf users with a pre-calculated priority."),
	}
}

// SetProjection switches the projection algorithm at run time (the paper:
// "the approach to use is configurable and can be changed during
// run-time"). The cache is invalidated.
func (s *Service) SetProjection(p vector.Projection) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p != nil {
		s.cfg.Projection = p
		s.tree = nil
	}
}

// Refresh forces recomputation of the fairshare tree.
func (s *Service) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshLocked()
}

func (s *Service) refreshLocked() error {
	// Durations are measured in wall time, not the (possibly simulated)
	// service clock: the metric reports real compute cost.
	started := time.Now()
	totals, _, err := s.ums.UsageTotals()
	if err != nil {
		return err
	}
	p := s.pds.Policy()
	tree := fairshare.Compute(p, totals, s.cfg.Fairshare)
	s.tree = tree
	s.priorities = tree.Priorities(s.cfg.Projection)
	s.computedAt = s.cfg.Clock.Now()
	s.mRecalcs.Inc()
	s.mRecalcDur.Observe(time.Since(started).Seconds())
	s.mTreeNodes.Set(float64(countNodes(tree.Root)))
	s.mTreeUsers.Set(float64(len(s.priorities)))
	return nil
}

func countNodes(n *fairshare.Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// ComputedAt reports when the current tree was pre-calculated (zero if no
// calculation has happened yet) — the staleness input of /readyz.
func (s *Service) ComputedAt() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tree == nil {
		return time.Time{}
	}
	return s.computedAt
}

func (s *Service) ensureFresh() error {
	now := s.cfg.Clock.Now()
	if s.tree != nil && now.Sub(s.computedAt) < s.cfg.CacheTTL {
		return nil
	}
	return s.refreshLocked()
}

// Priority returns the pre-calculated projected priority of a grid user.
func (s *Service) Priority(user string) (wire.FairshareResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureFresh(); err != nil {
		return wire.FairshareResponse{}, err
	}
	v, ok := s.priorities[user]
	if !ok {
		return wire.FairshareResponse{}, ErrUnknownUser
	}
	resp := wire.FairshareResponse{
		User:       user,
		Value:      v,
		ComputedAt: s.computedAt,
	}
	if vec, ok := s.tree.Vector(user); ok {
		resp.Vector = vec
	}
	if pr, ok := s.tree.LeafPriority(user); ok {
		resp.Priority = pr
	}
	return resp, nil
}

// Table returns the full pre-calculated fairshare table.
func (s *Service) Table() (wire.FairshareTableResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureFresh(); err != nil {
		return wire.FairshareTableResponse{}, err
	}
	out := wire.FairshareTableResponse{
		Projection: s.cfg.Projection.Name(),
		ComputedAt: s.computedAt,
	}
	for _, e := range s.tree.Entries() {
		resp := wire.FairshareResponse{
			User:       e.User,
			Value:      s.priorities[e.User],
			Vector:     e.Vec,
			ComputedAt: s.computedAt,
		}
		if pr, ok := s.tree.LeafPriority(e.User); ok {
			resp.Priority = pr
		}
		out.Entries = append(out.Entries, resp)
	}
	return out, nil
}

// Tree returns the current fairshare tree (refreshing if stale).
func (s *Service) Tree() (*fairshare.Tree, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureFresh(); err != nil {
		return nil, err
	}
	return s.tree, nil
}
