// Package fcs implements the Fairshare Calculation Service: it fetches
// usage trees from the UMS and policy trees from the PDS periodically, and
// pre-calculates fairshare trees with current values for all users — "this
// way, no real-time calculations need to take place when new jobs arrive".
//
// The serving path is lock-free: every pre-calculation publishes an
// immutable snapshot (tree + per-user index + projected priorities + the
// full wire table) through an atomic pointer, so Priority/Table/Tree are
// O(1) pointer loads and map lookups with no mutex and no tree walks.
// Staleness is handled with single-flight stale-while-revalidate: the first
// reader past the TTL kicks one asynchronous recomputation while every
// reader (including itself) keeps serving the previous snapshot; errors
// from the background refresh are surfaced through telemetry and
// LastRefreshError (wired into /readyz).
package fcs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/vector"
	"repro/internal/wire"
)

// PolicySource provides the current policy tree (the PDS).
type PolicySource interface {
	Policy() *policy.Tree
}

// UsageSource provides pre-computed per-user decayed usage (the UMS).
// Implementations must not block unrelated callers while recomputing: the
// UMS recomputes single-flight outside its lock, so FCS snapshot rebuilds
// waiting on a slow USS never stall the UMS's own readiness probes, and
// concurrent rebuild retries coalesce onto one source fan-out.
type UsageSource interface {
	UsageTotals() (map[string]float64, time.Time, error)
}

// DefaultCacheTTL is the snapshot lifetime used when Config.CacheTTL is
// zero. A zero TTL used to force a full recomputation on every Priority
// call — the opposite of the paper's pre-calculation discipline — so the
// zero value now means "default", and a negative TTL means "never stale"
// (refresh only via Refresh).
const DefaultCacheTTL = time.Minute

// Config configures an FCS instance.
type Config struct {
	// Fairshare parameterizes the calculation (distance weight, resolution).
	Fairshare fairshare.Config
	// Projection collapses vectors to [0,1] priorities (default percental,
	// "the configuration currently used in production").
	Projection vector.Projection
	// CacheTTL bounds how stale the pre-calculated snapshot may be — update
	// delay component (II). Zero means DefaultCacheTTL; negative disables
	// expiry entirely (snapshots refresh only via Refresh).
	CacheTTL time.Duration
	// SynchronousRefresh makes a stale read recompute in-line before
	// serving, instead of serving the previous snapshot while one
	// background refresh runs. Deterministic sim-clock environments (the
	// testbed) want this; live services should leave it false so readers
	// never block on the UMS.
	SynchronousRefresh bool
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
	// SourceRetry bounds transient-failure retries of the UMS usage fetch
	// during a refresh (the zero value performs exactly one attempt). A
	// refresh that still fails leaves the previous snapshot serving —
	// stale-while-revalidate — so retries here only shorten how long the
	// table lags, never block readers.
	SourceRetry resilience.RetryPolicy
	// Spans receives refresh-pipeline trace spans (nil disables tracing).
	// Only the refresh path is traced; Priority/PriorityBatch stay span-free
	// so the read path remains allocation-free.
	Spans *span.Recorder
}

// snapshot is one immutable pre-calculation result. Everything reachable
// from a published snapshot is read-only, which is what makes the lock-free
// read path safe.
type snapshot struct {
	tree       *fairshare.Tree
	index      *fairshare.Index
	priorities map[string]float64
	projName   string
	computedAt time.Time
	table      wire.FairshareTableResponse
	// drift is the fairness-drift table (per-leaf |usage − target| share
	// error, sorted worst-first) computed once at publication time, so
	// serving it is free on the read path.
	drift     []DriftEntry
	driftMax  float64
	driftMean float64
}

// Service is a Fairshare Calculation Service instance.
type Service struct {
	cfg Config // Projection is mutated under refreshMu; the rest is fixed.
	ttl time.Duration
	pds PolicySource
	ums UsageSource

	// snap is the published snapshot; nil until the first computation.
	snap atomic.Pointer[snapshot]
	// refreshMu serializes recomputation and projection changes. Readers
	// never take it once a snapshot exists.
	refreshMu sync.Mutex
	// refreshing is the single-flight latch for asynchronous refreshes.
	refreshing atomic.Bool
	// lastErr records the most recent refresh outcome (nil error = ok).
	lastErr atomic.Pointer[refreshOutcome]

	mRecalcs     *telemetry.Counter
	mRecalcDur   *telemetry.Histogram
	mTreeNodes   *telemetry.Gauge
	mTreeUsers   *telemetry.Gauge
	mSnapAge     *telemetry.Gauge
	mStaleServes *telemetry.Counter
	mAsyncKicks  *telemetry.Counter
	mAsyncDedup  *telemetry.Counter
	mRefreshErrs *telemetry.Counter
	mBatchReqs   *telemetry.Counter
	mBatchUsers  *telemetry.Histogram
	mDriftMax    *telemetry.Gauge
	mDriftMean   *telemetry.Gauge
}

type refreshOutcome struct{ err error }

// ErrUnknownUser is returned for users absent from the policy.
var ErrUnknownUser = errors.New("fcs: user not in policy")

// New creates an FCS.
func New(cfg Config, pds PolicySource, ums UsageSource) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Projection == nil {
		cfg.Projection = vector.Percental{}
	}
	if cfg.Fairshare.Resolution <= 0 {
		cfg.Fairshare = fairshare.DefaultConfig()
	}
	ttl := cfg.CacheTTL
	if ttl == 0 {
		ttl = DefaultCacheTTL
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Service{
		cfg: cfg, ttl: ttl, pds: pds, ums: ums,
		mRecalcs: reg.Counter("aequus_fcs_recalcs_total",
			"Fairshare tree pre-calculations performed."),
		mRecalcDur: reg.Histogram("aequus_fcs_recalc_duration_seconds",
			"Wall-clock duration of one fairshare tree pre-calculation.",
			telemetry.DefBuckets()),
		mTreeNodes: reg.Gauge("aequus_fcs_tree_nodes",
			"Nodes in the last pre-calculated fairshare tree."),
		mTreeUsers: reg.Gauge("aequus_fcs_tree_users",
			"Leaf users with a pre-calculated priority."),
		mSnapAge: reg.Gauge("aequus_fcs_snapshot_age_seconds",
			"Age of the published fairshare snapshot at last observation."),
		mStaleServes: reg.Counter("aequus_fcs_stale_serves_total",
			"Reads served from an expired snapshot while a refresh ran."),
		mAsyncKicks: reg.Counter("aequus_fcs_refresh_async_total",
			"Asynchronous snapshot refreshes started by stale reads."),
		mAsyncDedup: reg.Counter("aequus_fcs_refresh_dedup_total",
			"Stale-read refresh kicks suppressed by the single-flight latch."),
		mRefreshErrs: reg.Counter("aequus_fcs_refresh_errors_total",
			"Snapshot recomputations that failed."),
		mBatchReqs: reg.Counter("aequus_fcs_batch_requests_total",
			"Batch priority requests served."),
		mBatchUsers: reg.Histogram("aequus_fcs_batch_users",
			"Users per batch priority request.", telemetry.CountBuckets()),
		mDriftMax: reg.Gauge("aequus_fcs_drift_max_ratio",
			"Largest per-user |usage share - target share| in the last snapshot."),
		mDriftMean: reg.Gauge("aequus_fcs_drift_mean_ratio",
			"Mean per-user |usage share - target share| in the last snapshot."),
	}
}

// CacheTTL reports the effective snapshot lifetime (after defaulting).
func (s *Service) CacheTTL() time.Duration { return s.ttl }

// SetProjection switches the projection algorithm at run time (the paper:
// "the approach to use is configurable and can be changed during
// run-time"). The current tree is re-projected immediately — no UMS
// round trip — and published as a new snapshot with the same ComputedAt.
func (s *Service) SetProjection(p vector.Projection) {
	if p == nil {
		return
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	s.cfg.Projection = p
	sn := s.snap.Load()
	if sn == nil {
		return
	}
	s.snap.Store(s.buildSnapshot(sn.tree, sn.index, sn.computedAt))
}

// Refresh forces recomputation of the fairshare snapshot.
func (s *Service) Refresh() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.rebuildLocked()
}

// rebuildLocked recomputes and publishes a snapshot; refreshMu must be held.
func (s *Service) rebuildLocked() error {
	// Durations are measured in wall time, not the (possibly simulated)
	// service clock: the metric reports real compute cost.
	started := time.Now()
	ctx, root := span.Start(span.WithRecorder(context.Background(), s.cfg.Spans),
		"fcs.refresh")
	defer root.End()

	_, fetch := span.Start(ctx, "fcs.fetch_usage")
	var totals map[string]float64
	err := s.cfg.SourceRetry.Do(ctx, func(context.Context) error {
		t, _, err := s.ums.UsageTotals()
		totals = t
		return err
	})
	fetch.SetAttrInt("users", int64(len(totals)))
	fetch.SetErr(err)
	fetch.End()
	if err != nil {
		s.lastErr.Store(&refreshOutcome{err})
		s.mRefreshErrs.Inc()
		root.SetErr(err)
		return err
	}

	_, comp := span.Start(ctx, "fcs.compute")
	p := s.pds.Policy()
	tree := fairshare.Compute(p, totals, s.cfg.Fairshare)
	nodes := countNodes(tree.Root)
	comp.SetAttrInt("nodes", int64(nodes))
	comp.End()

	_, pub := span.Start(ctx, "fcs.publish")
	sn := s.buildSnapshot(tree, tree.Index(), s.cfg.Clock.Now())
	s.snap.Store(sn)
	pub.SetAttrInt("users", int64(sn.index.Len()))
	pub.End()

	s.lastErr.Store(&refreshOutcome{nil})
	s.mRecalcs.Inc()
	s.mRecalcDur.Observe(time.Since(started).Seconds())
	s.mTreeNodes.Set(float64(nodes))
	s.mTreeUsers.Set(float64(sn.index.Len()))
	s.mSnapAge.Set(0)
	return nil
}

// buildSnapshot projects the tree and pre-assembles the full wire table so
// Table() is also a single pointer load; refreshMu must be held (it reads
// cfg.Projection).
func (s *Service) buildSnapshot(tree *fairshare.Tree, ix *fairshare.Index, at time.Time) *snapshot {
	prior := s.cfg.Projection.Project(ix.Entries(), tree.Config.Resolution)
	name := s.cfg.Projection.Name()
	table := wire.FairshareTableResponse{
		Projection: name,
		ComputedAt: at,
		Entries:    make([]wire.FairshareResponse, 0, ix.Len()),
	}
	for _, e := range ix.Entries() {
		pr, _ := ix.Lookup(e.User)
		table.Entries = append(table.Entries, wire.FairshareResponse{
			User:       e.User,
			Value:      prior[e.User],
			Vector:     e.Vec,
			Priority:   pr.LeafPriority,
			ComputedAt: at,
		})
	}
	drift, driftMax, driftMean := computeDrift(ix.Entries())
	s.mDriftMax.Set(driftMax)
	s.mDriftMean.Set(driftMean)
	return &snapshot{
		tree: tree, index: ix, priorities: prior,
		projName: name, computedAt: at, table: table,
		drift: drift, driftMax: driftMax, driftMean: driftMean,
	}
}

func countNodes(n *fairshare.Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// ComputedAt reports when the current snapshot was pre-calculated (zero if
// no calculation has happened yet) — the staleness input of /readyz. As a
// side effect it refreshes the snapshot-age gauge, so scraping /metrics
// alongside periodic readiness checks keeps the gauge current.
func (s *Service) ComputedAt() time.Time {
	sn := s.snap.Load()
	if sn == nil {
		return time.Time{}
	}
	s.mSnapAge.Set(s.cfg.Clock.Now().Sub(sn.computedAt).Seconds())
	return sn.computedAt
}

// LastRefreshError returns the error from the most recent snapshot
// recomputation, or nil if it succeeded (or none ran yet). /readyz uses it
// to report a failing background refresh while stale data is still served.
func (s *Service) LastRefreshError() error {
	if o := s.lastErr.Load(); o != nil {
		return o.err
	}
	return nil
}

// current returns the snapshot to serve. The hot path is one atomic load
// plus a clock read; only a cold start (no snapshot yet) ever blocks, and
// only a stale read in SynchronousRefresh mode recomputes in-line.
func (s *Service) current() (*snapshot, error) {
	sn := s.snap.Load()
	if sn == nil {
		return s.firstSnapshot()
	}
	if s.ttl > 0 && s.cfg.Clock.Now().Sub(sn.computedAt) >= s.ttl {
		if s.cfg.SynchronousRefresh {
			return s.refreshStale()
		}
		s.kickRefresh()
		s.mStaleServes.Inc()
	}
	return sn, nil
}

// firstSnapshot computes the initial snapshot; concurrent cold readers are
// collapsed onto one computation by refreshMu.
func (s *Service) firstSnapshot() (*snapshot, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if sn := s.snap.Load(); sn != nil {
		return sn, nil
	}
	if err := s.rebuildLocked(); err != nil {
		return nil, err
	}
	return s.snap.Load(), nil
}

// refreshStale recomputes a stale snapshot in-line (SynchronousRefresh
// mode), deduplicating concurrent stale readers under refreshMu.
func (s *Service) refreshStale() (*snapshot, error) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if sn := s.snap.Load(); sn != nil && s.cfg.Clock.Now().Sub(sn.computedAt) < s.ttl {
		return sn, nil
	}
	if err := s.rebuildLocked(); err != nil {
		return nil, err
	}
	return s.snap.Load(), nil
}

// kickRefresh starts one background recomputation; concurrent stale readers
// that lose the latch race return immediately (their read is served from
// the previous snapshot — stale-while-revalidate).
func (s *Service) kickRefresh() {
	if !s.refreshing.CompareAndSwap(false, true) {
		s.mAsyncDedup.Inc()
		return
	}
	s.mAsyncKicks.Inc()
	go func() {
		defer s.refreshing.Store(false)
		s.refreshMu.Lock()
		defer s.refreshMu.Unlock()
		// A forced Refresh may have landed while we waited for the lock.
		if sn := s.snap.Load(); sn != nil && s.cfg.Clock.Now().Sub(sn.computedAt) < s.ttl {
			return
		}
		// Errors are recorded in lastErr and the error counter; readers
		// keep serving the previous snapshot.
		_ = s.rebuildLocked()
	}()
}

// Priority returns the pre-calculated projected priority of a grid user.
// The hot path is lock-free: one snapshot load and one map lookup, zero
// tree walks, zero allocations. The returned Vector shares the snapshot's
// immutable backing array and must not be mutated.
func (s *Service) Priority(user string) (wire.FairshareResponse, error) {
	sn, err := s.current()
	if err != nil {
		return wire.FairshareResponse{}, err
	}
	e, ok := sn.index.Lookup(user)
	if !ok {
		return wire.FairshareResponse{}, ErrUnknownUser
	}
	return wire.FairshareResponse{
		User:       user,
		Value:      sn.priorities[user],
		Vector:     e.Vec,
		Priority:   e.LeafPriority,
		ComputedAt: sn.computedAt,
	}, nil
}

// PriorityBatch resolves many users against one snapshot load — the single
// round trip a resource manager uses to reprioritize a whole queue. Users
// absent from the policy are reported in Missing instead of failing the
// batch.
func (s *Service) PriorityBatch(users []string) (wire.FairshareBatchResponse, error) {
	sn, err := s.current()
	if err != nil {
		return wire.FairshareBatchResponse{}, err
	}
	out := wire.FairshareBatchResponse{
		Projection: sn.projName,
		ComputedAt: sn.computedAt,
		Entries:    make([]wire.FairshareResponse, 0, len(users)),
	}
	for _, u := range users {
		e, ok := sn.index.Lookup(u)
		if !ok {
			out.Missing = append(out.Missing, u)
			continue
		}
		out.Entries = append(out.Entries, wire.FairshareResponse{
			User:       u,
			Value:      sn.priorities[u],
			Vector:     e.Vec,
			Priority:   e.LeafPriority,
			ComputedAt: sn.computedAt,
		})
	}
	s.mBatchReqs.Inc()
	s.mBatchUsers.Observe(float64(len(users)))
	return out, nil
}

// Table returns the full pre-calculated fairshare table, assembled once at
// snapshot-publication time; callers must treat it as read-only.
func (s *Service) Table() (wire.FairshareTableResponse, error) {
	sn, err := s.current()
	if err != nil {
		return wire.FairshareTableResponse{}, err
	}
	return sn.table, nil
}

// Tree returns the current fairshare tree (possibly triggering a refresh if
// stale); callers must treat it as read-only.
func (s *Service) Tree() (*fairshare.Tree, error) {
	sn, err := s.current()
	if err != nil {
		return nil, err
	}
	return sn.tree, nil
}
