package fcs

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/vector"
	"repro/internal/wire"
)

// benchPolicy builds a two-level policy (groups × users) by constructing
// nodes directly — policy.Tree.Add's duplicate-sibling scan is quadratic
// and would dominate setup at the 1M-user scale.
func benchPolicy(groups, perGroup int) (*policy.Tree, map[string]float64, []string) {
	rng := rand.New(rand.NewSource(1))
	root := &policy.Node{Name: "", Share: 1}
	root.Children = make([]*policy.Node, 0, groups)
	usage := make(map[string]float64, groups*perGroup)
	users := make([]string, 0, groups*perGroup)
	for g := 0; g < groups; g++ {
		gn := &policy.Node{Name: fmt.Sprintf("g%04d", g), Share: rng.Float64() + 0.1}
		gn.Children = make([]*policy.Node, 0, perGroup)
		for u := 0; u < perGroup; u++ {
			name := fmt.Sprintf("u%04d_%04d", g, u)
			gn.Children = append(gn.Children, &policy.Node{Name: name, Share: rng.Float64() + 0.1})
			usage[name] = rng.Float64() * 1e6
			users = append(users, name)
		}
		root.Children = append(root.Children, gn)
	}
	return &policy.Tree{Root: root}, usage, users
}

func benchService(b *testing.B, groups, perGroup int) (*Service, []string) {
	b.Helper()
	p, usage, users := benchPolicy(groups, perGroup)
	svc := New(Config{
		Clock:    simclock.Real{},
		CacheTTL: 24 * time.Hour, // never stale during the benchmark
		Metrics:  telemetry.NewRegistry(),
	}, staticPDS{p}, &staticUMS{totals: usage})
	if err := svc.Refresh(); err != nil {
		b.Fatal(err)
	}
	return svc, users
}

// BenchmarkPriorityLookupParallel measures serving throughput of the
// lock-free snapshot path under b.RunParallel — lookups/sec must scale
// with cores because the hot path takes no lock and allocates nothing.
func BenchmarkPriorityLookupParallel(b *testing.B) {
	cases := []struct {
		name             string
		groups, perGroup int
	}{
		{"10k", 100, 100},
		{"100k", 320, 320},
		{"1M", 1000, 1000},
	}
	var seq atomic.Int64
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			svc, users := benchService(b, c.groups, c.perGroup)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(seq.Add(1)) * 7919 // spread goroutines over the user set
				for pb.Next() {
					u := users[i%len(users)]
					i++
					if _, err := svc.Priority(u); err != nil {
						panic(err)
					}
				}
			})
		})
	}
}

// BenchmarkPriorityLookupSeedStyle reproduces the seed's serving discipline
// — a global mutex around two full tree walks — against the same tree, as
// the baseline the snapshot path is measured against.
func BenchmarkPriorityLookupSeedStyle(b *testing.B) {
	cases := []struct {
		name             string
		groups, perGroup int
	}{
		{"10k", 100, 100},
		{"100k", 320, 320},
	}
	var seq atomic.Int64
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			p, usage, users := benchPolicy(c.groups, c.perGroup)
			tree := fairshare.Compute(p, usage, fairshare.DefaultConfig())
			prior := tree.Priorities(vector.Percental{})
			var mu sync.Mutex
			lookup := func(user string) (wire.FairshareResponse, error) {
				mu.Lock()
				defer mu.Unlock()
				v, ok := prior[user]
				if !ok {
					return wire.FairshareResponse{}, ErrUnknownUser
				}
				resp := wire.FairshareResponse{User: user, Value: v}
				if vec, ok := tree.Vector(user); ok {
					resp.Vector = vec
				}
				if pr, ok := tree.LeafPriority(user); ok {
					resp.Priority = pr
				}
				return resp, nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(seq.Add(1)) * 7919
				for pb.Next() {
					u := users[i%len(users)]
					i++
					if _, err := lookup(u); err != nil {
						panic(err)
					}
				}
			})
		})
	}
}

// BenchmarkPriorityBatch1000 resolves a 1000-user queue in one call — one
// snapshot load, 1000 map lookups.
func BenchmarkPriorityBatch1000(b *testing.B) {
	svc, users := benchService(b, 320, 320)
	batch := users[:1000]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.PriorityBatch(batch)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Entries) != 1000 {
			b.Fatalf("entries = %d", len(resp.Entries))
		}
	}
}

// benchScales are the population sizes the refresh benchmarks sweep.
var benchScales = []struct {
	name             string
	groups, perGroup int
}{
	{"10k", 100, 100},
	{"100k", 320, 320},
	{"1M", 1000, 1000},
}

// benchDeltaSeq issues process-unique delta values so a benchmark's warm-up
// probe run can never leave the shared usage source in a state where the
// measured run's first delta is a bitwise no-op (which would make that
// refresh a free snapshot reuse and halve the reported cost).
var benchDeltaSeq int64

// BenchmarkRefreshIncremental measures an end-to-end incremental refresh —
// delta fetch, Recalc engine apply, projection, publication — at varying
// scale and dirty ratio. Compare against BenchmarkRefreshFull at the same
// scale for the incremental speedup.
func BenchmarkRefreshIncremental(b *testing.B) {
	fracs := []struct {
		name string
		frac float64
	}{
		{"dirty0.01pct", 0.0001},
		{"dirty1pct", 0.01},
		{"dirty100pct", 1},
	}
	for _, sz := range benchScales {
		b.Run(sz.name, func(b *testing.B) {
			p, usage, users := benchPolicy(sz.groups, sz.perGroup)
			ums := newDeltaUMS(usage)
			svc := New(Config{
				Clock:    simclock.Real{},
				CacheTTL: 24 * time.Hour,
				Metrics:  telemetry.NewRegistry(),
			}, newVersionedPDS(p), ums)
			if err := svc.Refresh(); err != nil { // full anchor refresh
				b.Fatal(err)
			}
			n := len(users)
			for _, fr := range fracs {
				b.Run(fr.name, func(b *testing.B) {
					k := int(float64(n) * fr.frac)
					if k < 1 {
						k = 1
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						ch := make(map[string]float64, k)
						for j := 0; j < k; j++ {
							benchDeltaSeq++
							ch[users[int(benchDeltaSeq)*7919%n]] = float64(benchDeltaSeq) + 0.25
						}
						ums.apply(ch)
						b.StartTimer()
						if err := svc.Refresh(); err != nil {
							b.Fatal(err)
						}
						if ri := svc.LastRefresh(); ri.Mode != RefreshIncremental {
							b.Fatalf("refresh mode = %q, want incremental", ri.Mode)
						} else if ri.DirtyUsers != len(ch) {
							b.Fatalf("dirty users = %d, want %d", ri.DirtyUsers, len(ch))
						}
					}
				})
			}
		})
	}
}

// BenchmarkRefreshFull measures the same end-to-end refresh against sources
// without delta support — every refresh recomputes the whole tree.
func BenchmarkRefreshFull(b *testing.B) {
	for _, sz := range benchScales {
		b.Run(sz.name, func(b *testing.B) {
			svc, _ := benchService(b, sz.groups, sz.perGroup)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Refresh(); err != nil {
					b.Fatal(err)
				}
				if ri := svc.LastRefresh(); ri.Mode != RefreshFull {
					b.Fatalf("refresh mode = %q, want full", ri.Mode)
				}
			}
		})
	}
}

// BenchmarkSnapshotRebuild measures the full pre-calculation (compute +
// index + projection + table assembly) the background refresh pays.
func BenchmarkSnapshotRebuild(b *testing.B) {
	for _, c := range []struct {
		name             string
		groups, perGroup int
	}{
		{"10k", 100, 100},
		{"100k", 320, 320},
	} {
		b.Run(c.name, func(b *testing.B) {
			svc, _ := benchService(b, c.groups, c.perGroup)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Refresh(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
