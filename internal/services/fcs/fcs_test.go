package fcs

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/vector"
	"repro/internal/wire"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

type staticPDS struct{ tree *policy.Tree }

func (s staticPDS) Policy() *policy.Tree { return s.tree.Clone() }

// staticUMS is a concurrency-safe usage source: asynchronous snapshot
// refreshes consult it from background goroutines.
type staticUMS struct {
	mu     sync.Mutex
	totals map[string]float64
	err    error
	calls  int
	// block, when non-nil, is closed by the test to release an in-flight
	// UsageTotals call (for single-flight tests).
	block chan struct{}
}

func (s *staticUMS) UsageTotals() (map[string]float64, time.Time, error) {
	s.mu.Lock()
	s.calls++
	err := s.err
	block := s.block
	cp := map[string]float64{}
	for k, v := range s.totals {
		cp[k] = v
	}
	s.mu.Unlock()
	if block != nil {
		<-block
	}
	if err != nil {
		return nil, time.Time{}, err
	}
	return cp, t0, nil
}

func (s *staticUMS) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *staticUMS) SetErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
}

func (s *staticUMS) SetTotals(t map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.totals = t
}

// newFCS builds a service in SynchronousRefresh mode — the deterministic
// semantics the pre-snapshot tests were written against.
func newFCS(t *testing.T, shares, totals map[string]float64, clock simclock.Clock, ttl time.Duration) (*Service, *staticUMS) {
	t.Helper()
	p, err := policy.FromShares(shares)
	if err != nil {
		t.Fatal(err)
	}
	ums := &staticUMS{totals: totals}
	svc := New(Config{Clock: clock, CacheTTL: ttl, SynchronousRefresh: true,
		Metrics: telemetry.NewRegistry()}, staticPDS{p}, ums)
	return svc, ums
}

// waitFor polls cond for up to two seconds of real time.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestPriorityReflectsBalance(t *testing.T) {
	clock := simclock.NewSim(t0)
	svc, _ := newFCS(t,
		map[string]float64{"under": 0.5, "over": 0.5},
		map[string]float64{"under": 10, "over": 90},
		clock, time.Minute)
	u, err := svc.Priority("under")
	if err != nil {
		t.Fatal(err)
	}
	o, err := svc.Priority("over")
	if err != nil {
		t.Fatal(err)
	}
	if u.Value <= o.Value {
		t.Errorf("under=%g should beat over=%g", u.Value, o.Value)
	}
	if u.Value < 0 || u.Value > 1 {
		t.Errorf("value out of range: %g", u.Value)
	}
	if len(u.Vector) != 1 {
		t.Errorf("vector = %v", u.Vector)
	}
	if u.Priority <= 0 {
		t.Errorf("raw priority = %g", u.Priority)
	}
}

func TestUnknownUser(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 1}, nil, simclock.NewSim(t0), time.Minute)
	if _, err := svc.Priority("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("err = %v", err)
	}
}

func TestPreCalculationCaching(t *testing.T) {
	clock := simclock.NewSim(t0)
	svc, ums := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 1, "b": 1}, clock, time.Minute)
	svc.Priority("a")
	svc.Priority("b")
	svc.Priority("a")
	if ums.Calls() != 1 {
		t.Errorf("UMS consulted %d times within TTL, want 1 (pre-calculated)", ums.Calls())
	}
	clock.Advance(2 * time.Minute)
	svc.Priority("a")
	if ums.Calls() != 2 {
		t.Errorf("UMS consulted %d times after expiry", ums.Calls())
	}
}

func TestRefreshPicksUpUsageChanges(t *testing.T) {
	clock := simclock.NewSim(t0)
	svc, ums := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 0, "b": 100}, clock, time.Hour)
	before, _ := svc.Priority("a")
	ums.SetTotals(map[string]float64{"a": 100, "b": 0})
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, _ := svc.Priority("a")
	if !(after.Value < before.Value) {
		t.Errorf("priority did not drop after usage: %g -> %g", before.Value, after.Value)
	}
}

func TestTableListsAllUsers(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 0.6, "b": 0.4},
		map[string]float64{"a": 5, "b": 5}, simclock.NewSim(t0), time.Minute)
	tab, err := svc.Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Entries) != 2 {
		t.Fatalf("entries = %d", len(tab.Entries))
	}
	if tab.Projection != "percental" {
		t.Errorf("default projection = %q", tab.Projection)
	}
	seen := map[string]wire.FairshareResponse{}
	for _, e := range tab.Entries {
		seen[e.User] = e
	}
	if seen["a"].Value <= seen["b"].Value {
		t.Errorf("a (share .6, half usage) should beat b: %v", seen)
	}
}

func TestSetProjectionRuntimeSwitch(t *testing.T) {
	svc, ums := newFCS(t, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2},
		map[string]float64{"a": 10, "b": 30, "c": 60}, simclock.NewSim(t0), time.Hour)
	tab1, _ := svc.Table()
	calls := ums.Calls()
	svc.SetProjection(vector.Dictionary{})
	tab2, err := svc.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Projection != "dictionary" {
		t.Errorf("projection after switch = %q", tab2.Projection)
	}
	// Dictionary gives evenly spaced ranks; percental does not in general.
	if tab1.Projection == tab2.Projection {
		t.Error("projection did not change")
	}
	// A projection switch re-projects the existing tree: no UMS round trip.
	if ums.Calls() != calls {
		t.Errorf("projection switch consulted the UMS (%d -> %d calls)", calls, ums.Calls())
	}
	vals := map[string]float64{}
	for _, e := range tab2.Entries {
		vals[e.User] = e.Value
	}
	if math.Abs(vals["a"]-0.75) > 1e-12 {
		t.Errorf("dictionary top value = %g, want 0.75", vals["a"])
	}
	svc.SetProjection(nil) // ignored
	tab3, _ := svc.Table()
	if tab3.Projection != "dictionary" {
		t.Error("nil projection should be ignored")
	}
}

func TestUMSErrorPropagates(t *testing.T) {
	svc, ums := newFCS(t, map[string]float64{"a": 1}, nil, simclock.NewSim(t0), time.Minute)
	ums.SetErr(errors.New("ums down"))
	if _, err := svc.Priority("a"); err == nil {
		t.Error("UMS error swallowed")
	}
	if _, err := svc.Table(); err == nil {
		t.Error("UMS error swallowed by Table")
	}
	if _, err := svc.Tree(); err == nil {
		t.Error("UMS error swallowed by Tree")
	}
	if svc.LastRefreshError() == nil {
		t.Error("LastRefreshError not recorded")
	}
	ums.SetErr(nil)
	if _, err := svc.Priority("a"); err != nil {
		t.Fatal(err)
	}
	if svc.LastRefreshError() != nil {
		t.Error("LastRefreshError not cleared after success")
	}
}

func TestTreeExposed(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 1, "b": 3}, simclock.NewSim(t0), time.Minute)
	tree, err := svc.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Errorf("tree depth = %d", tree.Depth())
	}
	if tree.Config.Resolution != 10000 {
		t.Errorf("resolution = %g", tree.Config.Resolution)
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	p, _ := policy.FromShares(map[string]float64{"a": 1})
	svc := New(Config{Metrics: telemetry.NewRegistry()}, staticPDS{p}, &staticUMS{})
	if svc.cfg.Fairshare.Resolution != fairshare.DefaultConfig().Resolution {
		t.Error("default fairshare config not applied")
	}
	if svc.cfg.Projection == nil {
		t.Error("default projection not applied")
	}
}

// TestCacheTTLZeroDefaults pins the fix for the zero-TTL footgun: a zero
// CacheTTL used to recompute the whole tree on every Priority call; now it
// means DefaultCacheTTL.
func TestCacheTTLZeroDefaults(t *testing.T) {
	p, _ := policy.FromShares(map[string]float64{"a": 1})
	ums := &staticUMS{totals: map[string]float64{"a": 1}}
	svc := New(Config{Clock: simclock.NewSim(t0), Metrics: telemetry.NewRegistry()},
		staticPDS{p}, ums)
	if svc.CacheTTL() != DefaultCacheTTL {
		t.Fatalf("effective TTL = %v, want %v", svc.CacheTTL(), DefaultCacheTTL)
	}
	svc.Priority("a")
	svc.Priority("a")
	svc.Priority("a")
	if ums.Calls() != 1 {
		t.Errorf("zero TTL recomputed per call: %d UMS calls, want 1", ums.Calls())
	}
}

// TestNegativeTTLNeverExpires pins the documented semantics of a negative
// CacheTTL: only explicit Refresh recomputes.
func TestNegativeTTLNeverExpires(t *testing.T) {
	clock := simclock.NewSim(t0)
	svc, ums := newFCS(t, map[string]float64{"a": 1},
		map[string]float64{"a": 1}, clock, -1)
	svc.Priority("a")
	clock.Advance(1000 * time.Hour)
	svc.Priority("a")
	if ums.Calls() != 1 {
		t.Errorf("negative TTL expired: %d UMS calls, want 1", ums.Calls())
	}
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ums.Calls() != 2 {
		t.Errorf("explicit Refresh did not recompute: %d calls", ums.Calls())
	}
}

// TestStaleWhileRevalidate exercises the asynchronous serving mode: a read
// past the TTL returns the previous snapshot immediately and one background
// recomputation replaces it.
func TestStaleWhileRevalidate(t *testing.T) {
	clock := simclock.NewSim(t0)
	p, _ := policy.FromShares(map[string]float64{"a": 0.5, "b": 0.5})
	ums := &staticUMS{totals: map[string]float64{"a": 0, "b": 100}}
	svc := New(Config{Clock: clock, CacheTTL: time.Minute,
		Metrics: telemetry.NewRegistry()}, staticPDS{p}, ums)

	first, err := svc.Priority("a")
	if err != nil {
		t.Fatal(err)
	}
	ums.SetTotals(map[string]float64{"a": 100, "b": 0})
	clock.Advance(2 * time.Minute)

	// Stale read: served from the old snapshot, not the new usage.
	stale, err := svc.Priority("a")
	if err != nil {
		t.Fatal(err)
	}
	if stale.ComputedAt != first.ComputedAt || stale.Value != first.Value {
		t.Errorf("stale read not served from previous snapshot: %+v vs %+v", stale, first)
	}

	waitFor(t, func() bool { return ums.Calls() >= 2 }, "background refresh never ran")
	waitFor(t, func() bool { return svc.ComputedAt().After(first.ComputedAt) },
		"new snapshot never published")
	fresh, err := svc.Priority("a")
	if err != nil {
		t.Fatal(err)
	}
	if !(fresh.Value < first.Value) {
		t.Errorf("refreshed value did not reflect new usage: %g -> %g", first.Value, fresh.Value)
	}
}

// TestSingleFlightRefresh holds one UMS fetch in flight and checks that a
// burst of stale readers (a) all return immediately from the old snapshot
// and (b) trigger exactly one recomputation between them.
func TestSingleFlightRefresh(t *testing.T) {
	clock := simclock.NewSim(t0)
	p, _ := policy.FromShares(map[string]float64{"a": 1})
	ums := &staticUMS{totals: map[string]float64{"a": 1}}
	svc := New(Config{Clock: clock, CacheTTL: time.Minute,
		Metrics: telemetry.NewRegistry()}, staticPDS{p}, ums)
	if _, err := svc.Priority("a"); err != nil {
		t.Fatal(err)
	}

	block := make(chan struct{})
	ums.mu.Lock()
	ums.block = block
	ums.mu.Unlock()
	clock.Advance(2 * time.Minute)

	const readers = 32
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Priority("a"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait() // all readers return while the refresh is still blocked

	ums.mu.Lock()
	ums.block = nil
	ums.mu.Unlock()
	close(block)
	waitFor(t, func() bool { return !svc.refreshing.Load() }, "refresh never finished")
	if got := ums.Calls(); got != 2 {
		t.Errorf("%d stale readers caused %d UMS fetches, want 2 (1 cold + 1 single-flight)",
			readers, got)
	}
}

// TestPriorityZeroAllocs pins the hot path at zero allocations: one atomic
// snapshot load plus map lookups, no tree walks, no copies.
func TestPriorityZeroAllocs(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 1, "b": 3}, simclock.Real{}, time.Hour)
	if _, err := svc.Priority("a"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := svc.Priority("a"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Priority hot path allocates: %g allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		if _, err := svc.Table(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Table hot path allocates: %g allocs/op, want 0", allocs)
	}
}

// TestRecorderAddsNoReadPathAllocs pins the tracing cost model: spans wrap
// the refresh path only, so attaching a recorder must leave Priority at zero
// allocations and PriorityBatch at exactly its recorder-free baseline (it
// allocates the response slice by design).
func TestRecorderAddsNoReadPathAllocs(t *testing.T) {
	build := func(rec *span.Recorder) *Service {
		p, err := policy.FromShares(map[string]float64{"a": 0.5, "b": 0.5})
		if err != nil {
			t.Fatal(err)
		}
		svc := New(Config{Clock: simclock.Real{}, CacheTTL: time.Hour,
			SynchronousRefresh: true, Metrics: telemetry.NewRegistry(),
			Spans: rec},
			staticPDS{p}, &staticUMS{totals: map[string]float64{"a": 1, "b": 3}})
		if _, err := svc.Priority("a"); err != nil {
			t.Fatal(err)
		}
		return svc
	}
	rec := span.NewRecorder(span.Config{Capacity: 64})
	traced := build(rec)

	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := traced.Priority("a"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Priority with recorder: %g allocs/op, want 0", allocs)
	}

	plain := build(nil)
	users := []string{"a", "b"}
	baseline := testing.AllocsPerRun(1000, func() {
		if _, err := plain.PriorityBatch(users); err != nil {
			t.Fatal(err)
		}
	})
	withRec := testing.AllocsPerRun(1000, func() {
		if _, err := traced.PriorityBatch(users); err != nil {
			t.Fatal(err)
		}
	})
	if withRec > baseline {
		t.Errorf("PriorityBatch with recorder: %g allocs/op, baseline %g", withRec, baseline)
	}
	if rec.Recorded() == 0 {
		t.Error("recorder captured no refresh spans — cost comparison is vacuous")
	}
}

func TestPriorityBatch(t *testing.T) {
	svc, ums := newFCS(t, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2},
		map[string]float64{"a": 10, "b": 30, "c": 60}, simclock.NewSim(t0), time.Hour)
	resp, err := svc.PriorityBatch([]string{"a", "ghost", "c", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(resp.Entries))
	}
	if len(resp.Missing) != 1 || resp.Missing[0] != "ghost" {
		t.Errorf("missing = %v", resp.Missing)
	}
	if resp.Projection != "percental" {
		t.Errorf("projection = %q", resp.Projection)
	}
	if ums.Calls() != 1 {
		t.Errorf("batch consulted UMS %d times, want 1 snapshot", ums.Calls())
	}
	single, _ := svc.Priority("b")
	for _, e := range resp.Entries {
		if e.ComputedAt != resp.ComputedAt {
			t.Errorf("entry %s has ComputedAt %v, want snapshot-wide %v",
				e.User, e.ComputedAt, resp.ComputedAt)
		}
		if e.User == "b" && e.Value != single.Value {
			t.Errorf("batch value %g != single lookup %g", e.Value, single.Value)
		}
	}
}
