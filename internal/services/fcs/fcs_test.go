package fcs

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/vector"
	"repro/internal/wire"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

type staticPDS struct{ tree *policy.Tree }

func (s staticPDS) Policy() *policy.Tree { return s.tree.Clone() }

type staticUMS struct {
	totals map[string]float64
	err    error
	calls  int
}

func (s *staticUMS) UsageTotals() (map[string]float64, time.Time, error) {
	s.calls++
	if s.err != nil {
		return nil, time.Time{}, s.err
	}
	cp := map[string]float64{}
	for k, v := range s.totals {
		cp[k] = v
	}
	return cp, t0, nil
}

func newFCS(t *testing.T, shares, totals map[string]float64, clock simclock.Clock, ttl time.Duration) (*Service, *staticUMS) {
	t.Helper()
	p, err := policy.FromShares(shares)
	if err != nil {
		t.Fatal(err)
	}
	ums := &staticUMS{totals: totals}
	svc := New(Config{Clock: clock, CacheTTL: ttl}, staticPDS{p}, ums)
	return svc, ums
}

func TestPriorityReflectsBalance(t *testing.T) {
	clock := simclock.NewSim(t0)
	svc, _ := newFCS(t,
		map[string]float64{"under": 0.5, "over": 0.5},
		map[string]float64{"under": 10, "over": 90},
		clock, time.Minute)
	u, err := svc.Priority("under")
	if err != nil {
		t.Fatal(err)
	}
	o, err := svc.Priority("over")
	if err != nil {
		t.Fatal(err)
	}
	if u.Value <= o.Value {
		t.Errorf("under=%g should beat over=%g", u.Value, o.Value)
	}
	if u.Value < 0 || u.Value > 1 {
		t.Errorf("value out of range: %g", u.Value)
	}
	if len(u.Vector) != 1 {
		t.Errorf("vector = %v", u.Vector)
	}
	if u.Priority <= 0 {
		t.Errorf("raw priority = %g", u.Priority)
	}
}

func TestUnknownUser(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 1}, nil, simclock.NewSim(t0), time.Minute)
	if _, err := svc.Priority("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("err = %v", err)
	}
}

func TestPreCalculationCaching(t *testing.T) {
	clock := simclock.NewSim(t0)
	svc, ums := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 1, "b": 1}, clock, time.Minute)
	svc.Priority("a")
	svc.Priority("b")
	svc.Priority("a")
	if ums.calls != 1 {
		t.Errorf("UMS consulted %d times within TTL, want 1 (pre-calculated)", ums.calls)
	}
	clock.Advance(2 * time.Minute)
	svc.Priority("a")
	if ums.calls != 2 {
		t.Errorf("UMS consulted %d times after expiry", ums.calls)
	}
}

func TestRefreshPicksUpUsageChanges(t *testing.T) {
	clock := simclock.NewSim(t0)
	svc, ums := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 0, "b": 100}, clock, time.Hour)
	before, _ := svc.Priority("a")
	ums.totals = map[string]float64{"a": 100, "b": 0}
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, _ := svc.Priority("a")
	if !(after.Value < before.Value) {
		t.Errorf("priority did not drop after usage: %g -> %g", before.Value, after.Value)
	}
}

func TestTableListsAllUsers(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 0.6, "b": 0.4},
		map[string]float64{"a": 5, "b": 5}, simclock.NewSim(t0), time.Minute)
	tab, err := svc.Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Entries) != 2 {
		t.Fatalf("entries = %d", len(tab.Entries))
	}
	if tab.Projection != "percental" {
		t.Errorf("default projection = %q", tab.Projection)
	}
	seen := map[string]wire.FairshareResponse{}
	for _, e := range tab.Entries {
		seen[e.User] = e
	}
	if seen["a"].Value <= seen["b"].Value {
		t.Errorf("a (share .6, half usage) should beat b: %v", seen)
	}
}

func TestSetProjectionRuntimeSwitch(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2},
		map[string]float64{"a": 10, "b": 30, "c": 60}, simclock.NewSim(t0), time.Hour)
	tab1, _ := svc.Table()
	svc.SetProjection(vector.Dictionary{})
	tab2, err := svc.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Projection != "dictionary" {
		t.Errorf("projection after switch = %q", tab2.Projection)
	}
	// Dictionary gives evenly spaced ranks; percental does not in general.
	if tab1.Projection == tab2.Projection {
		t.Error("projection did not change")
	}
	vals := map[string]float64{}
	for _, e := range tab2.Entries {
		vals[e.User] = e.Value
	}
	if math.Abs(vals["a"]-0.75) > 1e-12 {
		t.Errorf("dictionary top value = %g, want 0.75", vals["a"])
	}
	svc.SetProjection(nil) // ignored
	tab3, _ := svc.Table()
	if tab3.Projection != "dictionary" {
		t.Error("nil projection should be ignored")
	}
}

func TestUMSErrorPropagates(t *testing.T) {
	svc, ums := newFCS(t, map[string]float64{"a": 1}, nil, simclock.NewSim(t0), time.Minute)
	ums.err = errors.New("ums down")
	if _, err := svc.Priority("a"); err == nil {
		t.Error("UMS error swallowed")
	}
	if _, err := svc.Table(); err == nil {
		t.Error("UMS error swallowed by Table")
	}
	if _, err := svc.Tree(); err == nil {
		t.Error("UMS error swallowed by Tree")
	}
}

func TestTreeExposed(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 1, "b": 3}, simclock.NewSim(t0), time.Minute)
	tree, err := svc.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Errorf("tree depth = %d", tree.Depth())
	}
	if tree.Config.Resolution != 10000 {
		t.Errorf("resolution = %g", tree.Config.Resolution)
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	p, _ := policy.FromShares(map[string]float64{"a": 1})
	svc := New(Config{}, staticPDS{p}, &staticUMS{})
	if svc.cfg.Fairshare.Resolution != fairshare.DefaultConfig().Resolution {
		t.Error("default fairshare config not applied")
	}
	if svc.cfg.Projection == nil {
		t.Error("default projection not applied")
	}
}
