package fcs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/vector"
)

// TestConcurrentReadersDuringRefresh hammers the lock-free read path from
// many goroutines while Refresh and SetProjection churn snapshots, and
// verifies no reader ever observes a torn or partially built snapshot:
// every Priority response is internally consistent, and every Table
// response is uniform (all entries share one ComputedAt and one projection
// regime). Run under -race this also proves the publication is data-race
// free.
func TestConcurrentReadersDuringRefresh(t *testing.T) {
	shares := map[string]float64{"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1}
	totals := map[string]float64{"a": 10, "b": 20, "c": 30, "d": 40}
	p, err := policy.FromShares(shares)
	if err != nil {
		t.Fatal(err)
	}
	ums := &staticUMS{totals: totals}
	// Async mode with a tiny TTL on a real clock: stale reads continuously
	// kick background refreshes on top of the explicit Refresh churn.
	svc := New(Config{Clock: simclock.Real{}, CacheTTL: time.Millisecond,
		Metrics: telemetry.NewRegistry()}, staticPDS{p}, ums)
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}

	const (
		readers = 8
		rounds  = 500
	)
	stop := make(chan struct{})
	var readersWG, writersWG sync.WaitGroup

	// Writers: forced refreshes and projection flips until readers finish.
	writersWG.Add(2)
	go func() {
		defer writersWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := svc.Refresh(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer writersWG.Done()
		projs := []vector.Projection{vector.Percental{}, vector.Dictionary{}, vector.Bitwise{}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			svc.SetProjection(projs[i%len(projs)])
		}
	}()

	users := []string{"a", "b", "c", "d"}
	validProj := map[string]bool{"percental": true, "dictionary": true, "bitwise": true}
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			for i := 0; i < rounds; i++ {
				u := users[(r+i)%len(users)]
				resp, err := svc.Priority(u)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.User != u || resp.ComputedAt.IsZero() ||
					len(resp.Vector) != 1 || resp.Value < 0 || resp.Value > 1 {
					t.Errorf("torn Priority response: %+v", resp)
					return
				}
				tab, err := svc.Table()
				if err != nil {
					t.Error(err)
					return
				}
				if len(tab.Entries) != len(users) || !validProj[tab.Projection] {
					t.Errorf("torn Table response: %d entries, projection %q",
						len(tab.Entries), tab.Projection)
					return
				}
				for _, e := range tab.Entries {
					if e.ComputedAt != tab.ComputedAt {
						t.Errorf("table mixes snapshots: entry %v vs table %v",
							e.ComputedAt, tab.ComputedAt)
						return
					}
				}
				if _, err := svc.Tree(); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}

	readersWG.Wait()
	close(stop)
	writersWG.Wait()
}
