package fcs

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// TestEngineErrorFallsBackToFullRecompute is the service-level phase-5
// walk-failure regression test: when the incremental engine rejects a delta
// (here because its tree shape was corrupted behind its back), the refresh
// must not publish the torn result — it falls back to refetching complete
// totals, rebuilds from scratch, re-anchors the engine, and the published
// snapshot verifies against its full-recompute twin.
func TestEngineErrorFallsBackToFullRecompute(t *testing.T) {
	p := policy.NewTree()
	for _, g := range []struct {
		name  string
		share float64
		users []string
	}{
		{"g0", 2, []string{"a", "b"}},
		{"g1", 3, []string{"c", "d"}},
	} {
		if _, err := p.Add("", g.name, g.share); err != nil {
			t.Fatal(err)
		}
		for _, u := range g.users {
			if _, err := p.Add("/"+g.name, u, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	pds := newVersionedPDS(p)
	ums := newDeltaUMS(map[string]float64{"a": 10, "b": 20, "c": 30, "d": 40})
	reg := telemetry.NewRegistry()
	svc := New(Config{Clock: simclock.NewSim(t0), CacheTTL: -1,
		SynchronousRefresh: true, Metrics: reg}, pds, ums)

	// Anchor with a full refresh, then prove the incremental chain works.
	if err := svc.Refresh(); err != nil {
		t.Fatalf("anchor refresh: %v", err)
	}
	ums.apply(map[string]float64{"a": 15})
	if err := svc.Refresh(); err != nil {
		t.Fatalf("incremental refresh: %v", err)
	}
	if mode := svc.LastRefresh().Mode; mode != RefreshIncremental {
		t.Fatalf("pre-corruption refresh mode = %q, want incremental", mode)
	}
	// One dirty user in one of the two top-level groups: the engine rebuilt
	// that group's segment and re-published the other by pointer.
	if ri := svc.LastRefresh(); ri.MaterializedSegments != 1 || ri.SharedSegments != 1 {
		t.Fatalf("segments materialized/shared = %d/%d, want 1/1",
			ri.MaterializedSegments, ri.SharedSegments)
	}

	// Corrupt the engine's tree shape behind its back: drop leaf "b" from
	// g0, so the next Apply's phase-5 walk produces too few entries.
	root := svc.engine.Tree().Root
	g0 := root.Children[0]
	g0.Children = g0.Children[:1]

	ums.apply(map[string]float64{"a": 25})
	if err := svc.Refresh(); err != nil {
		t.Fatalf("refresh with corrupted engine: %v (want silent full fallback)", err)
	}
	ri := svc.LastRefresh()
	if ri.Mode != RefreshFull {
		t.Fatalf("post-corruption refresh mode = %q, want full fallback", ri.Mode)
	}
	if err := svc.LastRefreshError(); err != nil {
		t.Fatalf("fallback left a refresh error: %v", err)
	}
	if err := svc.VerifySnapshot(); err != nil {
		t.Fatalf("published snapshot does not match its full-recompute twin: %v", err)
	}
	// The dropped-then-rebuilt user serves again from the fresh snapshot.
	if _, err := svc.Priority("b"); err != nil {
		t.Fatalf("Priority(b) after fallback: %v", err)
	}

	// The fallback re-anchored the engine: the chain resumes incrementally.
	ums.apply(map[string]float64{"b": 99})
	if err := svc.Refresh(); err != nil {
		t.Fatalf("refresh after re-anchor: %v", err)
	}
	if mode := svc.LastRefresh().Mode; mode != RefreshIncremental {
		t.Fatalf("post-re-anchor refresh mode = %q, want incremental", mode)
	}
	if err := svc.VerifySnapshot(); err != nil {
		t.Fatalf("post-re-anchor snapshot: %v", err)
	}
}
