package fcs

import (
	"math"
	"sort"
	"time"

	"repro/internal/vector"
)

// DriftEntry is one user's fairness drift: how far their effective usage
// share sits from the policy's target share. Target and Actual are the
// products of the per-level path shares/usages (the user's absolute slice of
// the whole grid), so Error is directly comparable across tree shapes.
type DriftEntry struct {
	User   string
	Target float64
	Actual float64
	Error  float64 // |Actual - Target|
}

// DriftTable is the fairness-drift view of one published snapshot.
type DriftTable struct {
	// ComputedAt is when the underlying snapshot was pre-calculated.
	ComputedAt time.Time
	// MaxError and MeanError summarize Entries.
	MaxError  float64
	MeanError float64
	// Entries is sorted by Error descending (worst drift first).
	Entries []DriftEntry
}

// computeDrift derives the per-user drift table from index entries. A user's
// absolute target share is the product of its normalized shares down the
// path; the absolute usage share is the product of the sibling-group usage
// shares. Entries come back sorted worst-first.
func computeDrift(entries []vector.Entry) ([]DriftEntry, float64, float64) {
	out := make([]DriftEntry, 0, len(entries))
	var sum, max float64
	for _, e := range entries {
		target, actual := 1.0, 1.0
		for _, s := range e.PathShares {
			target *= s
		}
		for _, u := range e.PathUsage {
			actual *= u
		}
		d := DriftEntry{
			User: e.User, Target: target, Actual: actual,
			Error: math.Abs(actual - target),
		}
		out = append(out, d)
		sum += d.Error
		if d.Error > max {
			max = d.Error
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Error > out[j].Error })
	mean := 0.0
	if len(out) > 0 {
		mean = sum / float64(len(out))
	}
	return out, max, mean
}

// Drift returns the fairness-drift table of the currently published snapshot
// without triggering a refresh (zero table before the first computation).
// The entries are shared with the snapshot and must be treated as read-only.
func (s *Service) Drift() DriftTable {
	sn := s.snap.Load()
	if sn == nil {
		return DriftTable{}
	}
	return DriftTable{
		ComputedAt: sn.computedAt,
		MaxError:   sn.driftMax,
		MeanError:  sn.driftMean,
		Entries:    sn.drift,
	}
}
