package fcs

import (
	"container/heap"
	"math"
	"sort"
	"time"

	"repro/internal/fairshare"
)

// DriftEntry is one user's fairness drift: how far their effective usage
// share sits from the policy's target share. Target and Actual are the
// products of the per-level path shares/usages (the user's absolute slice of
// the whole grid), so Error is directly comparable across tree shapes.
type DriftEntry struct {
	User   string
	Target float64
	Actual float64
	Error  float64 // |Actual - Target|
}

// DriftTable is the fairness-drift view of one published snapshot.
type DriftTable struct {
	// ComputedAt is when the underlying snapshot was pre-calculated.
	ComputedAt time.Time
	// MaxError and MeanError summarize the whole population (not just the
	// retained entries).
	MaxError  float64
	MeanError float64
	// Entries is sorted by Error descending (worst drift first), capped at
	// the configured top-K.
	Entries []DriftEntry
}

// DefaultDriftTopK is the drift-table size when Config.DriftTopK is zero.
const DefaultDriftTopK = 100

// driftItem is a heap candidate: pos breaks Error ties so selection is a
// total order and the result is deterministic (bit-identical between a full
// and an incremental publish of the same snapshot).
type driftItem struct {
	entry DriftEntry
	pos   int
}

// driftHeap is a min-heap by (Error asc, pos desc): the root is the weakest
// retained candidate, evicted when a stronger one arrives.
type driftHeap []driftItem

func (h driftHeap) Len() int { return len(h) }
func (h driftHeap) Less(i, j int) bool {
	if h[i].entry.Error != h[j].entry.Error {
		return h[i].entry.Error < h[j].entry.Error
	}
	return h[i].pos > h[j].pos
}
func (h driftHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *driftHeap) Push(x any)   { *h = append(*h, x.(driftItem)) }
func (h *driftHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h driftHeap) better(it driftItem) bool {
	if it.entry.Error != h[0].entry.Error {
		return it.entry.Error > h[0].entry.Error
	}
	return it.pos < h[0].pos
}

// computeDrift derives the drift summary from the serving index in one pass:
// max and mean cover every user, while only the K worst offenders are
// materialized (via a size-K min-heap, O(n + m·log K) instead of the full
// O(n·log n) sort a per-publish table used to cost). k < 0 retains everyone.
// Entries are read through the index's composition-free View — folding the
// interned head then the tail multiplies the exact float sequence the flat
// per-entry slices held (1·x is exact), so the summary stays bit-identical
// while never forcing composed-arena materialization on the refresh path.
func computeDrift(ix *fairshare.Index, k int) ([]DriftEntry, float64, float64) {
	n := ix.Len()
	if k < 0 || k > n {
		k = n
	}
	h := make(driftHeap, 0, k)
	var sum, max float64
	for i := 0; i < n; i++ {
		e := ix.View(i)
		target := 1.0
		for _, s := range e.PathShares {
			target *= s
		}
		actual := 1.0 * e.HeadUsage
		for _, u := range e.TailUsage {
			actual *= u
		}
		it := driftItem{
			entry: DriftEntry{
				User: e.User, Target: target, Actual: actual,
				Error: math.Abs(actual - target),
			},
			pos: i,
		}
		sum += it.entry.Error
		if it.entry.Error > max {
			max = it.entry.Error
		}
		if k == 0 {
			continue
		}
		if len(h) < k {
			heap.Push(&h, it)
		} else if h.better(it) {
			h[0] = it
			heap.Fix(&h, 0)
		}
	}
	// Worst-first, DFS position as the deterministic tie-break (stable with
	// respect to entry order, like the sort it replaces).
	sort.Slice(h, func(i, j int) bool {
		if h[i].entry.Error != h[j].entry.Error {
			return h[i].entry.Error > h[j].entry.Error
		}
		return h[i].pos < h[j].pos
	})
	out := make([]DriftEntry, len(h))
	for i, it := range h {
		out[i] = it.entry
	}
	mean := 0.0
	if n > 0 {
		mean = sum / float64(n)
	}
	return out, max, mean
}

// Drift returns the fairness-drift table of the currently published snapshot
// without triggering a refresh (zero table before the first computation).
// The entries are shared with the snapshot and must be treated as read-only.
func (s *Service) Drift() DriftTable {
	sn := s.snap.Load()
	if sn == nil {
		return DriftTable{}
	}
	return DriftTable{
		ComputedAt: sn.computedAt,
		MaxError:   sn.driftMax,
		MeanError:  sn.driftMean,
		Entries:    sn.drift,
	}
}
