package fcs

import (
	"fmt"
	"math"

	"repro/internal/fairshare"
)

// VerifySnapshot proves the published snapshot is bit-identical to a full
// recomputation over the same inputs: it re-derives the usage totals from
// the snapshot's own tree, rebuilds the tree, index, projections, and drift
// from scratch with Compute+NewIndex, and compares every field bitwise. It
// returns nil when they match and a first-divergence error otherwise.
//
// This is the incremental engine's ground truth — the scenario harness runs
// it after every published snapshot so any structural-sharing bug that lets
// an incremental snapshot drift from the full math fails loudly. It takes
// the refresh lock and walks the whole tree, so it is a test/debug facility,
// not a serving-path call.
func (s *Service) VerifySnapshot() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	sn := s.snap.Load()
	if sn == nil {
		return nil
	}
	totals := sn.tree.UsageByLeaf()
	twinTree := fairshare.Compute(sn.pol, totals, s.cfg.Fairshare)
	twinIx := fairshare.NewIndex(twinTree)
	twin := s.buildSnapshot(twinTree, twinIx, sn.pol, sn.computedAt)
	return compareSnapshots(sn, twin)
}

// compareSnapshots reports the first bitwise divergence between a published
// snapshot and its full-recompute twin.
func compareSnapshots(got, want *snapshot) error {
	if err := compareNodes("/", got.tree.Root, want.tree.Root); err != nil {
		return err
	}
	if got.index.Len() != want.index.Len() {
		return fmt.Errorf("fcs: snapshot has %d entries, twin has %d",
			got.index.Len(), want.index.Len())
	}
	for i := 0; i < got.index.Len(); i++ {
		g, w := got.index.At(i), want.index.At(i)
		if g.User != w.User {
			return fmt.Errorf("fcs: entry %d user %q, twin %q", i, g.User, w.User)
		}
		if !bitsEqual(g.Vec, w.Vec) {
			return fmt.Errorf("fcs: entry %d (%s) vector %v, twin %v", i, g.User, g.Vec, w.Vec)
		}
		if !bitsEqual(g.PathShares, w.PathShares) {
			return fmt.Errorf("fcs: entry %d (%s) path shares %v, twin %v", i, g.User, g.PathShares, w.PathShares)
		}
		if !bitsEqual(g.PathUsage, w.PathUsage) {
			return fmt.Errorf("fcs: entry %d (%s) path usage %v, twin %v", i, g.User, g.PathUsage, w.PathUsage)
		}
		if !oneBitsEqual(g.LeafPriority, w.LeafPriority) {
			return fmt.Errorf("fcs: entry %d (%s) leaf priority %v, twin %v", i, g.User, g.LeafPriority, w.LeafPriority)
		}
		if !oneBitsEqual(got.prior[i], want.prior[i]) {
			return fmt.Errorf("fcs: entry %d (%s) projected value %v, twin %v", i, g.User, got.prior[i], want.prior[i])
		}
	}
	if !oneBitsEqual(got.driftMax, want.driftMax) || !oneBitsEqual(got.driftMean, want.driftMean) {
		return fmt.Errorf("fcs: drift max/mean %v/%v, twin %v/%v",
			got.driftMax, got.driftMean, want.driftMax, want.driftMean)
	}
	if len(got.drift) != len(want.drift) {
		return fmt.Errorf("fcs: drift table has %d entries, twin %d", len(got.drift), len(want.drift))
	}
	for i := range got.drift {
		if got.drift[i] != want.drift[i] {
			return fmt.Errorf("fcs: drift entry %d = %+v, twin %+v", i, got.drift[i], want.drift[i])
		}
	}
	return nil
}

// compareNodes checks two fairshare subtrees bitwise, returning the path of
// the first divergent node.
func compareNodes(path string, got, want *fairshare.Node) error {
	if got.Name != want.Name {
		return fmt.Errorf("fcs: node %s name %q, twin %q", path, got.Name, want.Name)
	}
	if !oneBitsEqual(got.Share, want.Share) ||
		!oneBitsEqual(got.Usage, want.Usage) ||
		!oneBitsEqual(got.UsageShare, want.UsageShare) ||
		!oneBitsEqual(got.Priority, want.Priority) ||
		!oneBitsEqual(got.Value, want.Value) {
		return fmt.Errorf("fcs: node %s fields diverge: share %v/%v usage %v/%v usageShare %v/%v priority %v/%v value %v/%v",
			path, got.Share, want.Share, got.Usage, want.Usage,
			got.UsageShare, want.UsageShare, got.Priority, want.Priority,
			got.Value, want.Value)
	}
	if len(got.Children) != len(want.Children) {
		return fmt.Errorf("fcs: node %s has %d children, twin %d", path, len(got.Children), len(want.Children))
	}
	for i := range got.Children {
		if err := compareNodes(path+got.Children[i].Name+"/", got.Children[i], want.Children[i]); err != nil {
			return err
		}
	}
	return nil
}

func oneBitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !oneBitsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
