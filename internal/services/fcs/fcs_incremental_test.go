package fcs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
	"repro/internal/vector"
)

// versionedPDS is a policy source with change versioning, like the real PDS.
type versionedPDS struct {
	mu      sync.Mutex
	tree    *policy.Tree
	version uint64
}

func newVersionedPDS(t *policy.Tree) *versionedPDS {
	return &versionedPDS{tree: t, version: 1}
}

func (p *versionedPDS) Policy() *policy.Tree {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tree.Clone()
}

func (p *versionedPDS) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

func (p *versionedPDS) SetPolicy(t *policy.Tree) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tree = t
	p.version++
}

// deltaUMS is a usage source with a one-generation delta memory: a consumer
// exactly one version behind gets the incremental set, everyone else a full
// snapshot. fullNext forces the next pull to be full regardless (simulating
// a delta-log overflow).
type deltaUMS struct {
	mu       sync.Mutex
	totals   map[string]float64
	version  uint64
	changed  map[string]float64
	fullNext bool
}

func newDeltaUMS(totals map[string]float64) *deltaUMS {
	cp := map[string]float64{}
	for k, v := range totals {
		cp[k] = v
	}
	return &deltaUMS{totals: cp, version: 1}
}

func (d *deltaUMS) copyTotals() map[string]float64 {
	cp := make(map[string]float64, len(d.totals))
	for k, v := range d.totals {
		cp[k] = v
	}
	return cp
}

func (d *deltaUMS) UsageTotals() (map[string]float64, time.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.copyTotals(), t0, nil
}

func (d *deltaUMS) UsageDeltas(since uint64) (usage.DeltaSet, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fullNext {
		d.fullNext = false
		return usage.DeltaSet{Version: d.version, Full: true, Totals: d.copyTotals()}, nil
	}
	if since == d.version {
		return usage.DeltaSet{Version: d.version}, nil
	}
	if since == d.version-1 && d.changed != nil {
		return usage.DeltaSet{Version: d.version, Changed: d.changed}, nil
	}
	return usage.DeltaSet{Version: d.version, Full: true, Totals: d.copyTotals()}, nil
}

// apply advances the source by one generation: ch maps users to new absolute
// totals (0 removes the user).
func (d *deltaUMS) apply(ch map[string]float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.version++
	d.changed = map[string]float64{}
	for u, v := range ch {
		d.changed[u] = v
		if v == 0 {
			delete(d.totals, u)
			continue
		}
		d.totals[u] = v
	}
}

func newIncrementalFCS(t *testing.T, proj vector.Projection) (*Service, *versionedPDS, *deltaUMS, *telemetry.Registry) {
	t.Helper()
	p, err := policy.FromShares(map[string]float64{"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pds := newVersionedPDS(p)
	ums := newDeltaUMS(map[string]float64{"a": 10, "b": 20, "c": 30, "d": 40})
	reg := telemetry.NewRegistry()
	svc := New(Config{Clock: simclock.NewSim(t0), CacheTTL: -1, Projection: proj,
		SynchronousRefresh: true, Metrics: reg}, pds, ums)
	return svc, pds, ums, reg
}

func TestIncrementalRefreshLifecycle(t *testing.T) {
	svc, pds, ums, reg := newIncrementalFCS(t, nil)

	mustVerify := func(step string) {
		t.Helper()
		if err := svc.VerifySnapshot(); err != nil {
			t.Fatalf("%s: snapshot diverges from full recompute: %v", step, err)
		}
	}
	refresh := func(step, wantMode string, wantDirty int) {
		t.Helper()
		if err := svc.Refresh(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		ri := svc.LastRefresh()
		if ri.Mode != wantMode {
			t.Fatalf("%s: mode = %q, want %q", step, ri.Mode, wantMode)
		}
		if ri.DirtyUsers != wantDirty {
			t.Fatalf("%s: dirty users = %d, want %d", step, ri.DirtyUsers, wantDirty)
		}
		mustVerify(step)
	}

	// Cold start: no engine, no watermark — full.
	refresh("cold start", RefreshFull, 4)

	// One user changed: the steady-state incremental path.
	ums.apply(map[string]float64{"b": 25})
	refresh("single-user delta", RefreshIncremental, 1)

	// Nothing changed: incremental with zero dirty leaves; the engine hands
	// back the same tree and the snapshot is republished wholesale.
	before, _ := svc.Tree()
	refresh("no-op delta", RefreshIncremental, 0)
	after, _ := svc.Tree()
	if before != after {
		t.Fatal("no-op refresh rebuilt the tree instead of reusing it")
	}

	// A delta whose values are bitwise identical to current state is also a
	// zero-dirty incremental refresh.
	ums.apply(map[string]float64{"b": 25})
	refresh("bitwise no-op delta", RefreshIncremental, 0)

	// Policy edit: version changes, refresh must go full even though the
	// usage source could serve a delta.
	p2, err := policy.FromShares(map[string]float64{"a": 0.25, "b": 0.25, "c": 0.25, "d": 0.25})
	if err != nil {
		t.Fatal(err)
	}
	pds.SetPolicy(p2)
	refresh("policy edit", RefreshFull, 4)

	// Back to incremental on the new anchor, including a user removal
	// (total drops to zero — the leaf stays, its usage goes to 0).
	ums.apply(map[string]float64{"c": 0, "a": 11})
	refresh("post-edit delta", RefreshIncremental, 2)

	// Source refuses a delta (log overflow): full rebuild, then the chain
	// resumes incrementally.
	ums.fullNext = true
	ums.apply(map[string]float64{"d": 41})
	refresh("forced full delta", RefreshFull, 4)
	ums.apply(map[string]float64{"d": 42})
	refresh("post-overflow delta", RefreshIncremental, 1)

	incr := reg.Counter("aequus_fcs_refresh_incremental_total", "").Value()
	full := reg.Counter("aequus_fcs_refresh_full_total", "").Value()
	if incr != 5 || full != 3 {
		t.Fatalf("refresh counters: incremental=%v full=%v, want 5/3", incr, full)
	}
	if dirty := reg.Gauge("aequus_fcs_dirty_users", "").Value(); dirty != 1 {
		t.Fatalf("dirty-user gauge = %v, want 1 (last refresh)", dirty)
	}
}

// TestIncrementalMatchesFullService drives an incremental service and a
// delta-blind twin through the same usage history and requires identical
// priorities at every step — the end-to-end bit-identity guarantee.
func TestIncrementalMatchesFullService(t *testing.T) {
	for _, proj := range []vector.Projection{vector.Percental{}, vector.Bitwise{}, vector.Dictionary{}} {
		svc, _, ums, _ := newIncrementalFCS(t, proj)
		p, _ := policy.FromShares(map[string]float64{"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1})
		twin := New(Config{Clock: simclock.NewSim(t0), CacheTTL: -1, Projection: proj,
			SynchronousRefresh: true, Metrics: telemetry.NewRegistry()},
			staticPDS{p}, &staticUMS{totals: map[string]float64{"a": 10, "b": 20, "c": 30, "d": 40}})

		steps := []map[string]float64{
			{"a": 15},
			{"b": 0, "c": 31},
			{},
			{"d": 40.000001},
			{"a": 0, "b": 2, "c": 3, "d": 4},
		}
		for si, ch := range steps {
			if len(ch) > 0 {
				ums.apply(ch)
			}
			tot, _, _ := ums.UsageTotals()
			// Feed the twin the same absolute totals.
			twinUMS := twin.ums.(*staticUMS)
			twinUMS.SetTotals(tot)
			if err := svc.Refresh(); err != nil {
				t.Fatal(err)
			}
			if err := twin.Refresh(); err != nil {
				t.Fatal(err)
			}
			for _, u := range []string{"a", "b", "c", "d"} {
				got, err1 := svc.Priority(u)
				want, err2 := twin.Priority(u)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s step %d user %s: err %v vs %v", proj.Name(), si, u, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if got.Value != want.Value || got.Priority != want.Priority {
					t.Fatalf("%s step %d user %s: incremental %v/%v, full %v/%v",
						proj.Name(), si, u, got.Value, got.Priority, want.Value, want.Priority)
				}
				if len(got.Vector) != len(want.Vector) {
					t.Fatalf("%s step %d user %s: vector lengths differ", proj.Name(), si, u)
				}
				for i := range got.Vector {
					if got.Vector[i] != want.Vector[i] {
						t.Fatalf("%s step %d user %s: vectors differ at %d", proj.Name(), si, u, i)
					}
				}
			}
		}
	}
}

// TestLegacySourcesStayFull pins that sources without delta/version support
// keep the original full-refresh behavior.
func TestLegacySourcesStayFull(t *testing.T) {
	svc, _ := newFCS(t, map[string]float64{"a": 0.5, "b": 0.5},
		map[string]float64{"a": 1, "b": 2}, simclock.NewSim(t0), -1)
	for i := 0; i < 3; i++ {
		if err := svc.Refresh(); err != nil {
			t.Fatal(err)
		}
		if ri := svc.LastRefresh(); ri.Mode != RefreshFull {
			t.Fatalf("refresh %d: mode = %q, want full", i, ri.Mode)
		}
	}
}

// TestSetProjectionKeepsIncrementalChain pins that a projection switch
// (which does not touch the tree) does not force the next refresh full.
func TestSetProjectionKeepsIncrementalChain(t *testing.T) {
	svc, _, ums, _ := newIncrementalFCS(t, nil)
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}
	svc.SetProjection(vector.Bitwise{})
	ums.apply(map[string]float64{"a": 12})
	if err := svc.Refresh(); err != nil {
		t.Fatal(err)
	}
	if ri := svc.LastRefresh(); ri.Mode != RefreshIncremental {
		t.Fatalf("mode after projection switch = %q, want incremental", ri.Mode)
	}
	if err := svc.VerifySnapshot(); err != nil {
		t.Fatal(err)
	}
}
