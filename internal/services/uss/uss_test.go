package uss

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/usage"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func newUSS(site string, contribute bool) *Service {
	return New(Config{
		Site:       site,
		BinWidth:   time.Hour,
		Contribute: contribute,
		Clock:      simclock.NewSim(t0),
	})
}

func TestReportJobAccumulatesLocal(t *testing.T) {
	s := newUSS("a", true)
	s.ReportJob("alice", t0, 30*time.Minute, 2)
	got := s.LocalTotals(t0.Add(time.Hour), usage.None{})
	if math.Abs(got["alice"]-3600) > 1e-9 {
		t.Errorf("alice local = %g, want 3600", got["alice"])
	}
}

func TestExchangePullsPeerRecords(t *testing.T) {
	a := newUSS("a", true)
	b := newUSS("b", true)
	a.ReportJob("alice", t0, time.Hour, 1)
	b.AddPeer(a)
	n, err := b.Exchange(context.Background())
	if err != nil || n == 0 {
		t.Fatalf("Exchange = %d, %v", n, err)
	}
	global := b.GlobalTotals(t0.Add(2*time.Hour), usage.None{})
	if math.Abs(global["alice"]-3600) > 1e-9 {
		t.Errorf("alice global at b = %g", global["alice"])
	}
	// Local view unaffected.
	if local := b.LocalTotals(t0.Add(2*time.Hour), usage.None{}); local["alice"] != 0 {
		t.Errorf("alice local at b = %g", local["alice"])
	}
}

// TestGlobalTotalsOnePassMatchesPerSite pins the one-pass local+remote
// accumulation (shared weight table, no intermediate per-site maps) to the
// compute-each-site-then-merge definition, across decay families.
func TestGlobalTotalsOnePassMatchesPerSite(t *testing.T) {
	b := newUSS("b", true)
	for i, site := range []string{"a", "c", "d"} {
		peer := newUSS(site, true)
		peer.ReportJob("alice", t0.Add(time.Duration(i)*time.Hour), time.Hour, 1+i)
		peer.ReportJob("bob", t0.Add(time.Duration(2*i)*time.Hour), 30*time.Minute, 2)
		b.AddPeer(peer)
	}
	b.ReportJob("alice", t0, 2*time.Hour, 1)
	b.ReportJob("carol", t0.Add(time.Hour), time.Hour, 3)
	if _, err := b.Exchange(context.Background()); err != nil {
		t.Fatal(err)
	}
	now := t0.Add(8 * time.Hour)
	for _, d := range []usage.Decay{
		usage.None{},
		usage.Step{Window: 3 * time.Hour},
		usage.Linear{Window: 24 * time.Hour},
		usage.ExponentialHalfLife{HalfLife: 6 * time.Hour},
	} {
		got := b.GlobalTotals(now, d)
		want := b.local.DecayedTotals(now, d)
		b.mu.Lock()
		for _, h := range b.remote {
			for u, v := range h.DecayedTotals(now, d) {
				want[u] += v
			}
		}
		b.mu.Unlock()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d users, want %d", d.Name(), len(got), len(want))
		}
		for u, w := range want {
			if math.Abs(got[u]-w) > 1e-9*math.Max(math.Abs(w), 1) {
				t.Errorf("%s: user %s = %g, want %g", d.Name(), u, got[u], w)
			}
		}
	}
}

func TestExchangeIdempotent(t *testing.T) {
	a := newUSS("a", true)
	b := newUSS("b", true)
	a.ReportJob("alice", t0, time.Hour, 1)
	b.AddPeer(a)
	b.Exchange(context.Background())
	b.Exchange(context.Background())
	b.Exchange(context.Background())
	global := b.GlobalTotals(t0.Add(2*time.Hour), usage.None{})
	if math.Abs(global["alice"]-3600) > 1e-9 {
		t.Errorf("repeated exchange double-counted: %g", global["alice"])
	}
	// New usage at the peer appears after the next exchange.
	a.ReportJob("alice", t0.Add(time.Hour), time.Hour, 1)
	b.Exchange(context.Background())
	global = b.GlobalTotals(t0.Add(3*time.Hour), usage.None{})
	if math.Abs(global["alice"]-7200) > 1e-9 {
		t.Errorf("after new usage = %g, want 7200", global["alice"])
	}
}

func TestNonContributingSiteServesNothing(t *testing.T) {
	// Partial participation: a site that "contributes data but only
	// considers local data" vs one that "only reads global usage data but
	// does not contribute".
	silent := newUSS("silent", false)
	silent.ReportJob("alice", t0, time.Hour, 1)
	recs, err := silent.RecordsSince(context.Background(), time.Time{})
	if err != nil || recs != nil {
		t.Errorf("non-contributing records = %v, %v", recs, err)
	}
	// Its own global view still includes its local usage.
	if got := silent.GlobalTotals(t0.Add(time.Hour), usage.None{}); got["alice"] == 0 {
		t.Error("local usage missing from own view")
	}
}

func TestReaderOnlySiteSeesOthers(t *testing.T) {
	contributor := newUSS("contrib", true)
	reader := newUSS("reader", false) // reads but does not contribute
	contributor.ReportJob("alice", t0, time.Hour, 1)
	reader.ReportJob("bob", t0, time.Hour, 1)
	reader.AddPeer(contributor)
	contributor.AddPeer(reader)

	reader.Exchange(context.Background())
	contributor.Exchange(context.Background())

	// Reader sees both.
	rg := reader.GlobalTotals(t0.Add(2*time.Hour), usage.None{})
	if rg["alice"] == 0 || rg["bob"] == 0 {
		t.Errorf("reader global = %v", rg)
	}
	// Contributor cannot see the reader's usage (reader serves nothing).
	cg := contributor.GlobalTotals(t0.Add(2*time.Hour), usage.None{})
	if cg["bob"] != 0 {
		t.Errorf("contributor sees non-contributed usage: %v", cg)
	}
}

type failingPeer struct{}

func (failingPeer) Site() string { return "down" }
func (failingPeer) RecordsSince(context.Context, time.Time) ([]usage.Record, error) {
	return nil, errors.New("connection refused")
}

func TestExchangeToleratesFailingPeer(t *testing.T) {
	a := newUSS("a", true)
	b := newUSS("b", true)
	a.ReportJob("alice", t0, time.Hour, 1)
	b.AddPeer(failingPeer{})
	b.AddPeer(a)
	n, err := b.Exchange(context.Background())
	if err == nil {
		t.Error("peer failure not reported")
	}
	if n == 0 {
		t.Error("healthy peer not exchanged despite failing peer")
	}
}

func TestDecayAppliedToTotals(t *testing.T) {
	s := newUSS("a", true)
	s.ReportJob("alice", t0, time.Hour, 1)
	d := usage.ExponentialHalfLife{HalfLife: time.Hour}
	now := t0.Add(10 * time.Hour)
	got := s.LocalTotals(now, d)
	if got["alice"] >= 3600*0.01 {
		t.Errorf("decayed total = %g, want heavily decayed", got["alice"])
	}
	if got["alice"] <= 0 {
		t.Errorf("decayed total = %g, want positive", got["alice"])
	}
}

func TestSiteName(t *testing.T) {
	if got := newUSS("hpc2n", true).Site(); got != "hpc2n" {
		t.Errorf("Site = %q", got)
	}
}
