package uss

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/usage"
)

// countingPeer wraps a USS and counts how many records each RecordsSince
// call returns, to assert the exchange is actually incremental.
type countingPeer struct {
	inner   *Service
	fetched []int
}

func (c *countingPeer) Site() string { return c.inner.Site() }
func (c *countingPeer) RecordsSince(ctx context.Context, t time.Time) ([]usage.Record, error) {
	recs, err := c.inner.RecordsSince(ctx, t)
	c.fetched = append(c.fetched, len(recs))
	return recs, err
}

func TestExchangeIsIncremental(t *testing.T) {
	a := newUSS("a", true)
	b := newUSS("b", true)
	peer := &countingPeer{inner: a}
	b.AddPeer(peer)

	// Fill 50 distinct hourly bins at site a.
	for i := 0; i < 50; i++ {
		a.ReportJob("alice", t0.Add(time.Duration(i)*time.Hour), time.Minute, 1)
	}
	if _, err := b.Exchange(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := peer.fetched[0]
	if first != 50 {
		t.Fatalf("first exchange fetched %d records, want 50", first)
	}

	// No new usage: the next exchange must fetch at most the open interval,
	// not the full history.
	if _, err := b.Exchange(context.Background()); err != nil {
		t.Fatal(err)
	}
	second := peer.fetched[1]
	if second > 2 {
		t.Errorf("second exchange fetched %d records, want <= 2 (incremental)", second)
	}

	// New usage in a fresh bin: only the delta transfers.
	a.ReportJob("alice", t0.Add(100*time.Hour), time.Minute, 1)
	if _, err := b.Exchange(context.Background()); err != nil {
		t.Fatal(err)
	}
	third := peer.fetched[2]
	if third > 3 {
		t.Errorf("third exchange fetched %d records, want small delta", third)
	}

	// Totals remain exact despite incremental transfer.
	want := 51 * 60.0
	got := b.GlobalTotals(t0.Add(200*time.Hour), usage.None{})["alice"]
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("global total = %g, want %g", got, want)
	}
}

func TestExchangeOpenBinGrowsWithoutDoubleCount(t *testing.T) {
	a := newUSS("a", true)
	b := newUSS("b", true)
	b.AddPeer(a)

	// Two completions land in the SAME hourly bin, with an exchange in
	// between: the second exchange must replace, not add.
	at := t0.Add(30 * time.Minute)
	a.ReportJob("alice", at, 10*time.Minute, 1)
	b.Exchange(context.Background())
	a.ReportJob("alice", at.Add(time.Minute), 10*time.Minute, 1)
	b.Exchange(context.Background())

	got := b.GlobalTotals(t0.Add(2*time.Hour), usage.None{})["alice"]
	if math.Abs(got-1200) > 1e-9 {
		t.Errorf("global total = %g, want 1200 (no double count)", got)
	}
}

func TestReportJobIgnoresInvalid(t *testing.T) {
	s := newUSS("a", true)
	s.ReportJob("", t0, time.Hour, 1)
	s.ReportJob("u", t0, 0, 1)
	s.ReportJob("u", t0, -time.Hour, 1)
	if got := s.LocalTotals(t0.Add(2*time.Hour), usage.None{}); len(got) != 0 {
		t.Errorf("invalid reports recorded: %v", got)
	}
	// Proc clamp.
	s.ReportJob("u", t0, time.Hour, 0)
	if got := s.LocalTotals(t0.Add(2*time.Hour), usage.None{})["u"]; got != 3600 {
		t.Errorf("clamped procs total = %g", got)
	}
}
