package uss

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/durability"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// benchReports builds one 100k-job batch across 100k distinct users — the
// ingest shape from the acceptance bar: a full accounting-dump replay into a
// fresh site.
func benchReports(n int) []JobReport {
	base := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]JobReport, n)
	for i := range out {
		out[i] = JobReport{
			User:     fmt.Sprintf("user%06d", i),
			Start:    base.Add(time.Duration(i%720) * time.Hour),
			Duration: time.Duration(10+i%110) * time.Minute,
			Procs:    1 + i%16,
		}
	}
	return out
}

func newBenchUSS(tb testing.TB, durable bool) *Service {
	tb.Helper()
	cfg := Config{Site: "s00", BinWidth: time.Hour, Contribute: true, Metrics: telemetry.NewRegistry()}
	if durable {
		d, err := durability.Open(durability.Options{
			Dir:     tb.TempDir(),
			Sync:    durability.SyncAlways,
			Metrics: telemetry.NewRegistry(),
		})
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { d.Close() })
		if err := d.Replay(func(*usage.Mutation) error { return nil }); err != nil {
			tb.Fatal(err)
		}
		cfg.Durable = d
	}
	return New(cfg)
}

func BenchmarkIngest100kUsersMemory(b *testing.B) {
	batch := benchReports(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := newBenchUSS(b, false)
		b.StartTimer()
		s.ReportJobBatch(batch)
	}
}

func BenchmarkIngest100kUsersDurable(b *testing.B) {
	batch := benchReports(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := newBenchUSS(b, true)
		b.StartTimer()
		s.ReportJobBatch(batch)
	}
}

// TestDurableIngestOverhead enforces the durability cost envelope: a
// 100k-user batch ingest with the WAL enabled (SyncAlways — the whole batch
// rides one group-committed fsync) must stay within 15% of the in-memory
// path. Min-of-N on both sides filters scheduler noise.
func TestDurableIngestOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	batch := benchReports(100000)
	run := func(durable bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			s := newBenchUSS(t, durable)
			t0 := time.Now()
			s.ReportJobBatch(batch)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	run(false) // warm-up: page in code and allocator arenas

	mem := run(false)
	dur := run(true)
	t.Logf("100k-user ingest: memory=%v durable=%v overhead=%.1f%%",
		mem, dur, 100*(float64(dur)/float64(mem)-1))
	if float64(dur) > float64(mem)*1.15 {
		t.Errorf("durable ingest %v exceeds in-memory %v by more than 15%%", dur, mem)
	}
}
