package uss

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/durability"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

func openLog(t *testing.T, dir string, sync durability.SyncPolicy) *durability.Log {
	t.Helper()
	d, err := durability.Open(durability.Options{Dir: dir, Sync: sync, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("durability.Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func newDurableUSS(t *testing.T, dir string, sync durability.SyncPolicy) (*Service, *durability.Log) {
	t.Helper()
	d := openLog(t, dir, sync)
	s := New(Config{Site: "s00", BinWidth: time.Hour, Contribute: true, Metrics: telemetry.NewRegistry(), Durable: d})
	return s, d
}

func recordsBitEqual(t *testing.T, label string, a, b []usage.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d records", label, len(a), len(b))
	}
	for i := range a {
		if a[i].User != b[i].User || !a[i].IntervalStart.Equal(b[i].IntervalStart) ||
			math.Float64bits(a[i].CoreSeconds) != math.Float64bits(b[i].CoreSeconds) {
			t.Fatalf("%s: record %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// TestDurableRecoveryBitIdentical is the core crash contract at the USS
// layer: kill a USS after a mix of single reports, batch ingests, and peer
// exchanges, rebuild it from disk, and the recovered local records, remote
// mirrors, and watermarks are bit-identical to the pre-crash state.
func TestDurableRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s, d := newDurableUSS(t, dir, durability.SyncAlways)
	if err := d.Replay(s.ApplyMutation); err != nil {
		t.Fatal(err)
	}

	base := time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)
	s.ReportJob("alice", base, 90*time.Minute, 4)
	s.ReportJob("bob", base.Add(time.Hour), 30*time.Minute, 1)
	var batch []JobReport
	for i := 0; i < 200; i++ {
		batch = append(batch, JobReport{
			User:     "user" + string(rune('a'+i%5)),
			Start:    base.Add(time.Duration(i) * 11 * time.Minute),
			Duration: time.Duration(10+i%50) * time.Minute,
			Procs:    1 + i%8,
		})
	}
	s.ReportJobBatch(batch)

	// A peer exchange lands remote bins and a watermark through the WAL.
	peer := New(Config{Site: "s01", BinWidth: time.Hour, Contribute: true, Metrics: telemetry.NewRegistry()})
	peer.ReportJob("carol", base, 2*time.Hour, 2)
	peer.ReportJob("alice", base.Add(3*time.Hour), time.Hour, 1)
	s.AddPeer(peer)
	if _, err := s.Exchange(context.Background()); err != nil {
		t.Fatalf("Exchange: %v", err)
	}

	wantLocal := s.LocalRecords()
	wantRemote := s.RemoteRecords()
	wantWM := s.Watermarks()

	// Crash: drop the in-memory service, close the log uncleanly-ish
	// (Close flushes, but with SyncAlways everything is already synced).
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	s2, d2 := newDurableUSS(t, dir, durability.SyncAlways)
	if err := d2.Replay(s2.ApplyMutation); err != nil {
		t.Fatalf("Replay: %v", err)
	}

	recordsBitEqual(t, "local", wantLocal, s2.LocalRecords())
	gotRemote := s2.RemoteRecords()
	if len(gotRemote) != len(wantRemote) {
		t.Fatalf("remote sites: %d vs %d", len(gotRemote), len(wantRemote))
	}
	for site, want := range wantRemote {
		recordsBitEqual(t, "remote/"+site, want, gotRemote[site])
	}
	gotWM := s2.Watermarks()
	for site, want := range wantWM {
		if !gotWM[site].Equal(want) {
			t.Fatalf("watermark %s: %v vs %v", site, gotWM[site], want)
		}
	}

	// And the decayed totals — the numbers priorities are computed from —
	// must agree bitwise too.
	now := base.Add(48 * time.Hour)
	wantTotals := s.GlobalTotals(now, usage.None{})
	gotTotals := s2.GlobalTotals(now, usage.None{})
	if len(wantTotals) != len(gotTotals) {
		t.Fatalf("totals users: %d vs %d", len(gotTotals), len(wantTotals))
	}
	for u, w := range wantTotals {
		if math.Float64bits(gotTotals[u]) != math.Float64bits(w) {
			t.Fatalf("total[%s]: %x vs %x", u, math.Float64bits(gotTotals[u]), math.Float64bits(w))
		}
	}
}

// TestBatchIngestOneFsync asserts the group-commit contract end to end: a
// ReportJobBatch of any size costs exactly one fsync.
func TestBatchIngestOneFsync(t *testing.T) {
	s, d := newDurableUSS(t, t.TempDir(), durability.SyncAlways)
	if err := d.Replay(s.ApplyMutation); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)
	var batch []JobReport
	for i := 0; i < 1000; i++ {
		batch = append(batch, JobReport{
			User:     "u" + string(rune('a'+i%26)),
			Start:    base.Add(time.Duration(i) * time.Minute),
			Duration: time.Hour,
			Procs:    2,
		})
	}
	before := d.Stats()
	s.ReportJobBatch(batch)
	after := d.Stats()
	if got := after.Fsyncs - before.Fsyncs; got != 1 {
		t.Fatalf("1000-job batch cost %d fsyncs, want exactly 1", got)
	}
	if got := after.Records - before.Records; got != 1 {
		t.Fatalf("1000-job batch committed %d WAL records, want 1", got)
	}

	// Per-job reporting costs one fsync each — the contrast that makes
	// batching the group-commit point.
	before = d.Stats()
	s.ReportJob("alice", base, time.Hour, 1)
	s.ReportJob("bob", base, time.Hour, 1)
	if got := d.Stats().Fsyncs - before.Fsyncs; got != 2 {
		t.Fatalf("2 single reports cost %d fsyncs, want 2", got)
	}
}

// TestFrozenExchangeServingMidReplay: while the WAL tail is replaying,
// peers pulling RecordsSince get the frozen snapshot image — never the
// half-rebuilt live histogram — and after replay the live path takes over.
func TestFrozenExchangeServingMidReplay(t *testing.T) {
	dir := t.TempDir()
	s, d := newDurableUSS(t, dir, durability.SyncAlways)
	if err := d.Replay(s.ApplyMutation); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)
	s.ReportJob("alice", base, time.Hour, 1) // pre-snapshot state
	if err := d.Snapshot(func() (*durability.SnapshotState, error) {
		return s.CaptureState(), nil
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	preCrash := s.LocalRecords()
	// Tail records past the snapshot: these exist only in the WAL.
	s.ReportJob("bob", base.Add(2*time.Hour), time.Hour, 1)
	s.ReportJob("carol", base.Add(3*time.Hour), time.Hour, 1)
	d.Close()

	s2, d2 := newDurableUSS(t, dir, durability.SyncAlways)

	// Before replay: frozen image only.
	recs, err := s2.RecordsSince(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	recordsBitEqual(t, "pre-replay serving", preCrash, recs)

	// Mid-replay (inside the applier, after the first tail record landed
	// in the live histogram): still the frozen image.
	applied := 0
	err = d2.Replay(func(m *usage.Mutation) error {
		if err := s2.ApplyMutation(m); err != nil {
			return err
		}
		applied++
		mid, err := s2.RecordsSince(context.Background(), time.Time{})
		if err != nil {
			return err
		}
		recordsBitEqual(t, "mid-replay serving", preCrash, mid)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("replayed %d tail records, want 2", applied)
	}

	// After replay: the live histogram, tail included.
	recs, err = s2.RecordsSince(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(preCrash)+2 {
		t.Fatalf("post-replay serving has %d records, want %d", len(recs), len(preCrash)+2)
	}
}

// TestCaptureStateMatchesRecords: the stripe-by-stripe capture exports the
// same canonical record stream as the whole-histogram export.
func TestCaptureStateMatchesRecords(t *testing.T) {
	s, d := newDurableUSS(t, t.TempDir(), durability.SyncNone)
	if err := d.Replay(s.ApplyMutation); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)
	var batch []JobReport
	for i := 0; i < 500; i++ {
		batch = append(batch, JobReport{
			User:     "user" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)),
			Start:    base.Add(time.Duration(i) * 13 * time.Minute),
			Duration: time.Duration(5+i%120) * time.Minute,
			Procs:    1 + i%4,
		})
	}
	s.ReportJobBatch(batch)
	st := s.CaptureState()
	recordsBitEqual(t, "capture vs export", s.LocalRecords(), st.Local)
	if st.Site != "s00" || st.BinWidth != time.Hour {
		t.Fatalf("capture header: %+v", st)
	}
}
