package uss

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// okPeer serves a fixed set of records.
type okPeer struct {
	site string
	recs []usage.Record
}

func (p *okPeer) Site() string { return p.site }
func (p *okPeer) RecordsSince(_ context.Context, t time.Time) ([]usage.Record, error) {
	var out []usage.Record
	for _, r := range p.recs {
		if !r.IntervalStart.Before(t) {
			out = append(out, r)
		}
	}
	return out, nil
}

// errPeer fails every pull.
type errPeer struct {
	site  string
	calls int
	mu    sync.Mutex
}

func (p *errPeer) Site() string { return p.site }
func (p *errPeer) RecordsSince(context.Context, time.Time) ([]usage.Record, error) {
	p.mu.Lock()
	p.calls++
	p.mu.Unlock()
	return nil, errors.New("dial tcp: connection refused")
}

func (p *errPeer) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// hangPeer blocks until the pull's context ends — the hung-peer scenario.
type hangPeer struct{ site string }

func (p *hangPeer) Site() string { return p.site }
func (p *hangPeer) RecordsSince(ctx context.Context, _ time.Time) ([]usage.Record, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestExchangeMixedPeerOutcomes(t *testing.T) {
	// One healthy peer, one erroring, one hanging (bounded by PeerTimeout):
	// the round completes, the healthy data lands, errors are counted per
	// peer, and no peer blocks another.
	clock := simclock.NewSim(t0)
	reg := telemetry.NewRegistry()
	s := New(Config{
		Site:        "local",
		BinWidth:    time.Hour,
		Contribute:  true,
		Clock:       clock,
		Metrics:     reg,
		PeerTimeout: 100 * time.Millisecond,
	})
	s.AddPeer(&okPeer{site: "good", recs: []usage.Record{
		{Site: "good", User: "alice", IntervalStart: t0, CoreSeconds: 3600},
	}})
	s.AddPeer(&errPeer{site: "bad"})
	s.AddPeer(&hangPeer{site: "hung"})

	start := time.Now()
	n, err := s.Exchange(context.Background())
	elapsed := time.Since(start)

	if err == nil {
		t.Error("mixed round reported no error")
	}
	if n != 1 {
		t.Errorf("ingested %d records, want 1 from the healthy peer", n)
	}
	// The hung peer costs at most its own timeout — not 3x, because pulls
	// run concurrently; generous bound for loaded CI runners.
	if elapsed > 5*time.Second {
		t.Errorf("round took %v; hung peer blocked the round", elapsed)
	}
	global := s.GlobalTotals(t0.Add(2*time.Hour), usage.None{})
	if global["alice"] != 3600 {
		t.Errorf("alice global = %g, want 3600 (healthy peer blocked by failing ones?)", global["alice"])
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`aequus_uss_exchange_errors_total{peer="bad"} 1`,
		`aequus_uss_exchange_errors_total{peer="hung"} 1`,
		`aequus_uss_exchange_records_total{peer="good"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestExchangeBreakerSkipsDeadPeerThenRecovers(t *testing.T) {
	clock := simclock.NewSim(t0)
	reg := telemetry.NewRegistry()
	s := New(Config{
		Site:       "local",
		BinWidth:   time.Hour,
		Contribute: true,
		Clock:      clock,
		Metrics:    reg,
		Breaker: resilience.BreakerConfig{
			Threshold: 2,
			Cooldown:  30 * time.Minute,
		},
	})
	dead := &errPeer{site: "dead"}
	s.AddPeer(dead)

	// Two failures trip the breaker…
	for i := 0; i < 2; i++ {
		if _, err := s.Exchange(context.Background()); err == nil {
			t.Fatal("failing peer reported no error")
		}
		clock.Advance(time.Minute)
	}
	if got := dead.callCount(); got != 2 {
		t.Fatalf("peer dialed %d times, want 2", got)
	}
	// …after which the peer is not dialed: skipped, and not an error.
	if _, err := s.Exchange(context.Background()); err != nil {
		t.Errorf("breaker-open round errored: %v", err)
	}
	if got := dead.callCount(); got != 2 {
		t.Errorf("open breaker still dialed the peer (%d calls)", got)
	}

	st := s.PeerStatuses()
	if len(st) != 1 || st[0].Breaker != "open" || st[0].ConsecutiveFailures != 2 {
		t.Fatalf("PeerStatuses = %+v", st)
	}
	if st[0].LastError == "" || !st[0].LastSuccess.IsZero() {
		t.Errorf("status not reflecting a never-succeeded peer: %+v", st[0])
	}

	var buf bytes.Buffer
	_ = reg.WritePrometheus(&buf)
	for _, want := range []string{
		`aequus_uss_exchange_skipped_total{peer="dead"} 1`,
		`aequus_peer_circuit_state{peer="dead"} 1`,
		`aequus_uss_peer_staleness_seconds{peer="dead"} -1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, buf.String())
		}
	}

	// Cooldown elapses and the peer comes back: half-open probe succeeds,
	// breaker closes, data flows again.
	clock.Advance(30 * time.Minute)
	s.mu.Lock()
	s.peers[0] = &okPeer{site: "dead", recs: []usage.Record{
		{Site: "dead", User: "bob", IntervalStart: t0, CoreSeconds: 1800},
	}}
	s.mu.Unlock()
	n, err := s.Exchange(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("recovery round = %d, %v", n, err)
	}
	st = s.PeerStatuses()
	if st[0].Breaker != "closed" || st[0].ConsecutiveFailures != 0 || st[0].LastError != "" {
		t.Errorf("recovered status = %+v", st[0])
	}
	if st[0].LastSuccess.IsZero() {
		t.Error("LastSuccess not recorded")
	}
}

func TestExchangeHonorsRoundDeadline(t *testing.T) {
	s := New(Config{Site: "local", BinWidth: time.Hour, Contribute: true})
	s.AddPeer(&hangPeer{site: "hung"})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Exchange(ctx)
	if err == nil {
		t.Error("hung peer under a round deadline reported no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("round overran its deadline by %v", elapsed)
	}
}

func TestPeerStatusStalenessAges(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := New(Config{Site: "local", BinWidth: time.Hour, Contribute: true, Clock: clock,
		Metrics: telemetry.NewRegistry()})
	s.AddPeer(&okPeer{site: "peer"})
	if _, err := s.Exchange(context.Background()); err != nil {
		t.Fatal(err)
	}
	clock.Advance(90 * time.Minute)
	st := s.PeerStatuses()
	if len(st) != 1 {
		t.Fatalf("statuses = %+v", st)
	}
	if got := clock.Now().Sub(st[0].LastSuccess); got != 90*time.Minute {
		t.Errorf("staleness = %v, want 90m", got)
	}
}
