package uss

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// benchPeers builds peers sites, each serving recsPerPeer records spread
// over distinct hourly bins and users.
func benchPeers(peers, recsPerPeer int) []Peer {
	out := make([]Peer, peers)
	for p := 0; p < peers; p++ {
		recs := make([]usage.Record, recsPerPeer)
		for i := range recs {
			recs[i] = usage.Record{
				Site:          fmt.Sprintf("peer%02d", p),
				User:          fmt.Sprintf("user%03d", i%97),
				IntervalStart: t0.Add(time.Duration(i/97) * time.Hour),
				CoreSeconds:   float64(100 + i),
			}
		}
		out[p] = &okPeer{site: fmt.Sprintf("peer%02d", p), recs: recs}
	}
	return out
}

// BenchmarkExchangeRound measures one full exchange round — the concurrent
// peer fan-out plus per-peer histogram ingestion — across federation sizes.
// The watermark is reset every iteration so each round ingests the full
// record set (the cold-peer worst case; incremental rounds are strictly
// cheaper).
func BenchmarkExchangeRound(b *testing.B) {
	for _, bc := range []struct{ peers, recs int }{
		{1, 1000},
		{5, 1000},
		{20, 1000},
		{5, 10000},
	} {
		b.Run(fmt.Sprintf("peers=%d/recs=%d", bc.peers, bc.recs), func(b *testing.B) {
			s := New(Config{
				Site:       "local",
				BinWidth:   time.Hour,
				Contribute: true,
				Clock:      simclock.NewSim(t0),
				Metrics:    telemetry.NewRegistry(),
			})
			for _, p := range benchPeers(bc.peers, bc.recs) {
				s.AddPeer(p)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s.mu.Lock()
				s.remote = map[string]*usage.Histogram{}
				s.watermark = map[string]time.Time{}
				s.mu.Unlock()
				b.StartTimer()
				if _, err := s.Exchange(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(bc.peers * bc.recs))
		})
	}
}
