// Package uss implements the Usage Statistics Service: it gathers per-job
// usage results of the local site, produces per-user histograms for
// configurable time intervals, and exchanges compact usage records with the
// USS instances of other sites. Per-site exchange flags model the partial-
// participation scenarios of Section IV (a site may read global data without
// contributing, or contribute without consuming).
package uss

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/durability"
	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
)

// Peer is a remote USS this instance pulls records from. Implementations
// live in httpapi; the testbed wires services directly.
type Peer interface {
	// Site identifies the remote site.
	Site() string
	// RecordsSince returns the remote site's local records from t on. The
	// context carries the request ID of the exchange that triggered the
	// pull, so one exchange is traceable across site hops.
	RecordsSince(ctx context.Context, t time.Time) ([]usage.Record, error)
}

// Config configures a USS instance.
type Config struct {
	// Site is this installation's site name.
	Site string
	// BinWidth is the histogram interval width (default 1h).
	BinWidth time.Duration
	// Contribute controls whether this site serves its records to peers.
	// A non-contributing site is invisible to the rest of the grid.
	Contribute bool
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
	// PeerTimeout bounds each peer pull of an exchange round in wall-clock
	// time (0 = only the round's own context deadline applies). A hung peer
	// costs at most this much, and pulls run concurrently, so it cannot
	// delay the other peers either.
	PeerTimeout time.Duration
	// Breaker configures the per-peer circuit breakers. The zero value
	// disables breaking: every peer is dialed every round, as before.
	// With a threshold set, a peer that keeps failing is skipped (not
	// dialed at all) until the cooldown elapses, then probed half-open.
	Breaker resilience.BreakerConfig
	// Spans receives exchange-round trace spans (nil disables tracing). A
	// recorder already present on the exchange context — e.g. attached by the
	// HTTP server middleware — takes precedence, so spans of a triggered
	// exchange land in the trace of the request that triggered it.
	Spans *span.Recorder
	// Durable, when set, write-ahead-logs every usage mutation before it is
	// applied: job reports, batch ingests (one group-committed record and
	// thus one fsync per batch), and peer-exchange bin replacements. New
	// adopts the log's recovered snapshot into the in-memory histograms;
	// the owner replays the WAL tail through ApplyMutation.
	Durable *durability.Log
}

// Service is a Usage Statistics Service instance.
type Service struct {
	cfg   Config
	mu    sync.Mutex
	local *usage.Histogram // usage of jobs executed on this site
	// remote holds one histogram per peer site, updated incrementally:
	// exchange re-fetches records from one bin before the per-peer
	// watermark and replaces those bins, so a still-filling interval can be
	// re-fetched without double counting while closed intervals are never
	// transferred twice.
	remote    map[string]*usage.Histogram
	watermark map[string]time.Time
	peers     []Peer
	// peerState tracks per-peer exchange health (last success, last error,
	// consecutive failures) — the inputs of /readyz's peer staleness view.
	peerState map[string]*peerState

	// breakers holds the per-peer circuit breakers (nil when disabled).
	breakers *resilience.BreakerSet

	mReports        *telemetry.Counter
	mDurableErrs    *telemetry.Counter
	mExchanges      *telemetry.Counter
	mExchangeBatch  *telemetry.Histogram
	mExchangeRecs   *telemetry.CounterVec
	mExchangeErrors *telemetry.CounterVec
	mExchangeSkips  *telemetry.CounterVec
	mPeerStaleness  *telemetry.GaugeVec
	mWatermarkAge   *telemetry.GaugeVec
	mConvergeLag    *telemetry.GaugeVec
}

// peerState is one peer's exchange bookkeeping, guarded by Service.mu.
type peerState struct {
	lastSuccess time.Time
	lastErr     error
	consecFails int
}

// New creates a USS.
func New(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.BinWidth <= 0 {
		cfg.BinWidth = time.Hour
	}
	if cfg.Breaker.Clock == nil {
		cfg.Breaker.Clock = cfg.Clock
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	s := &Service{
		cfg:       cfg,
		local:     usage.NewHistogram(cfg.BinWidth),
		remote:    map[string]*usage.Histogram{},
		watermark: map[string]time.Time{},
		peerState: map[string]*peerState{},
		breakers:  resilience.NewBreakerSet(cfg.Breaker, reg),
		mReports: reg.Counter("aequus_uss_usage_reports_total",
			"Job-completion usage reports ingested by the local USS."),
		mDurableErrs: reg.Counter("aequus_uss_durability_errors_total",
			"Usage mutations dropped because the WAL commit failed."),
		mExchanges: reg.Counter("aequus_uss_exchanges_total",
			"Inter-site usage exchange rounds performed."),
		mExchangeBatch: reg.Histogram("aequus_uss_exchange_batch_records",
			"Records pulled from one peer in one exchange round.",
			telemetry.CountBuckets()),
		mExchangeRecs: reg.CounterVec("aequus_uss_exchange_records_total",
			"Compact usage records ingested from peers, by peer site.", "peer"),
		mExchangeErrors: reg.CounterVec("aequus_uss_exchange_errors_total",
			"Failed peer pulls during usage exchange, by peer site.", "peer"),
		mExchangeSkips: reg.CounterVec("aequus_uss_exchange_skipped_total",
			"Peer pulls skipped because the peer's circuit breaker was open, by peer site.", "peer"),
		mPeerStaleness: reg.GaugeVec("aequus_uss_peer_staleness_seconds",
			"Seconds since the last successful pull from each peer (-1 = never succeeded).", "peer"),
		mWatermarkAge: reg.GaugeVec("aequus_uss_peer_watermark_age_seconds",
			"Age of the newest ingested usage interval per peer (-1 = nothing ingested yet). Grows while a peer is unreachable.", "peer"),
		mConvergeLag: reg.GaugeVec("aequus_uss_peer_convergence_lag_seconds",
			"At the last successful pull, how far the peer's newest interval lagged behind now (-1 = no successful pull yet).", "peer"),
	}
	if cfg.Durable != nil {
		if st := cfg.Durable.Recovered(); st != nil {
			// Adopt the snapshot image before any mutation can land. Bin
			// values restore through SetRecords, which writes the stored
			// float bits verbatim — the restored histograms are bitwise
			// equal to the captured ones. (If BinWidth changed across the
			// restart, records re-bin at the new width.)
			s.local.SetRecords(st.Local)
			for peer, recs := range st.Remote {
				h := usage.NewHistogram(cfg.BinWidth)
				h.SetRecords(recs)
				s.remote[peer] = h
			}
			for peer, wm := range st.Watermark {
				s.watermark[peer] = wm
			}
		}
	}
	return s
}

// Site returns this instance's site name.
func (s *Service) Site() string { return s.cfg.Site }

// AddPeer registers a remote USS to pull usage from.
func (s *Service) AddPeer(p Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = append(s.peers, p)
}

// ReportJob records a completed job's usage into the local histogram. The
// full usage is attributed to the interval containing the completion time:
// completion-time attribution keeps closed intervals immutable, which is
// what makes the incremental inter-site exchange sound.
func (s *Service) ReportJob(user string, start time.Time, dur time.Duration, procs int) {
	if dur <= 0 || user == "" {
		return
	}
	if procs < 1 {
		procs = 1
	}
	at := start.Add(dur)
	v := dur.Seconds() * float64(procs)
	apply := func() {
		s.mReports.Inc()
		s.local.Add(user, at, v)
	}
	if s.cfg.Durable == nil {
		apply()
		return
	}
	mut := &usage.Mutation{
		Kind: usage.MutLocalAdd,
		Ops:  []usage.BinOp{{User: user, Start: s.local.AlignStart(at), Value: v}},
	}
	if err := s.cfg.Durable.Commit(mut, apply); err != nil {
		// Applying an uncommitted mutation would put memory ahead of the
		// WAL and diverge the next recovery; drop it and count the loss.
		s.mDurableErrs.Inc()
	}
}

// JobReport is one completed job in a batch ingest.
type JobReport struct {
	User     string
	Start    time.Time
	Duration time.Duration
	Procs    int
}

// ReportJobBatch records many completed jobs with one lock acquisition per
// touched histogram stripe — the ingest path for batch HTTP reports, with
// the same completion-time attribution as ReportJob. Invalid entries (empty
// user, non-positive duration) are skipped.
func (s *Service) ReportJobBatch(jobs []JobReport) {
	if len(jobs) == 0 {
		return
	}
	durable := s.cfg.Durable != nil
	recs := make([]usage.Record, 0, len(jobs))
	var ops []usage.BinOp
	if durable {
		ops = make([]usage.BinOp, 0, len(jobs))
	}
	for _, j := range jobs {
		if j.Duration <= 0 || j.User == "" {
			continue
		}
		procs := j.Procs
		if procs < 1 {
			procs = 1
		}
		end := j.Start.Add(j.Duration)
		v := j.Duration.Seconds() * float64(procs)
		recs = append(recs, usage.Record{
			User:          j.User,
			Site:          s.cfg.Site,
			IntervalStart: end,
			CoreSeconds:   v,
		})
		if durable {
			ops = append(ops, usage.BinOp{User: j.User, Start: s.local.AlignStart(end), Value: v})
		}
	}
	apply := func() {
		s.mReports.Add(float64(len(recs)))
		s.local.IngestBatch(recs)
	}
	if !durable {
		apply()
		return
	}
	// The whole batch is one WAL record — the group-commit point. One
	// Commit means one fsync regardless of batch size.
	if err := s.cfg.Durable.Commit(&usage.Mutation{Kind: usage.MutLocalBatch, Ops: ops}, apply); err != nil {
		s.mDurableErrs.Inc()
	}
}

// RecordsSince serves this site's local records from t on — the compact
// inter-site exchange format. A non-contributing site serves nothing.
// While the durable log is still replaying its WAL tail, peers are served
// the frozen pre-crash snapshot instead of the half-rebuilt live histogram:
// they see the pre-crash watermark, never partial state, and their next
// pull re-fetches from one bin before that watermark, which covers every
// bin the replayed tail can touch (completion-time attribution only ever
// adds at or past the snapshot cut).
func (s *Service) RecordsSince(_ context.Context, t time.Time) ([]usage.Record, error) {
	if !s.cfg.Contribute {
		return nil, nil
	}
	if d := s.cfg.Durable; d != nil {
		if recs, ok := d.FrozenRecordsSince(s.cfg.Site, t); ok {
			return recs, nil
		}
	}
	return s.local.RecordsSince(s.cfg.Site, t), nil
}

// Exchange pulls new compact records from every peer. Records since one bin
// before the per-peer watermark are fetched and their bins *replaced* in the
// peer's remote histogram, making the exchange incremental (closed intervals
// transfer once) yet idempotent (the open interval is re-fetched and
// overwritten). It returns the number of records ingested and the first
// error in peer order (all reachable peers are still attempted). The
// context's request ID is forwarded to every peer pull, so one exchange
// round is traceable across the federation.
//
// Resilience semantics: peers are pulled concurrently, each bounded by
// Config.PeerTimeout (and the round's own context deadline), so one slow or
// hung peer never blocks the others or the round. A peer whose circuit
// breaker is open is skipped without dialing — the skip is counted in
// aequus_uss_exchange_skipped_total but is not an error; the paper's
// partial-exchange semantics already define priorities over whatever data is
// available.
func (s *Service) Exchange(ctx context.Context) (int, error) {
	s.mu.Lock()
	peers := append([]Peer(nil), s.peers...)
	s.mu.Unlock()
	s.mExchanges.Inc()

	ctx = span.EnsureRecorder(ctx, s.cfg.Spans)
	ctx, root := span.Start(ctx, "uss.exchange")
	root.SetAttr("site", s.cfg.Site)
	root.SetAttrInt("peers", int64(len(peers)))
	defer root.End()

	counts := make([]int, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p Peer) {
			defer wg.Done()
			counts[i], errs[i] = s.pullPeer(ctx, p)
		}(i, p)
	}
	wg.Wait()

	total := 0
	var firstErr error
	for i := range peers {
		total += counts[i]
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	root.SetAttrInt("records", int64(total))
	root.SetErr(firstErr)
	return total, firstErr
}

// pullPeer performs one peer's pull-and-ingest of an exchange round. The
// per-peer state (watermark, remote histogram, health bookkeeping) is
// independent across peers, so concurrent pulls stay deterministic.
func (s *Service) pullPeer(ctx context.Context, p Peer) (int, error) {
	site := p.Site()
	br := s.breakers.For(site)

	ctx, sp := span.Start(ctx, "uss.pull")
	sp.SetAttr("peer", site)
	if br != nil {
		sp.SetAttr("breaker", br.State().String())
	} else {
		sp.SetAttr("breaker", "disabled")
	}
	defer sp.End()

	if !br.Allow() {
		s.mExchangeSkips.With(site).Inc()
		sp.SetAttr("skipped", "breaker-open")
		s.updateWatermarkAge(site)
		return 0, nil
	}

	s.mu.Lock()
	since := s.watermark[site]
	s.mu.Unlock()
	if !since.IsZero() {
		// Re-fetch the last (possibly still-filling) interval.
		since = since.Add(-s.cfg.BinWidth)
	}

	pctx := ctx
	if s.cfg.PeerTimeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, s.cfg.PeerTimeout)
		defer cancel()
	}
	recs, err := p.RecordsSince(pctx, since)
	if err != nil {
		br.Failure(err)
		s.mExchangeErrors.With(site).Inc()
		s.notePeer(site, err)
		s.updateWatermarkAge(site)
		sp.SetErr(err)
		return 0, err
	}
	br.Success()
	s.mExchangeBatch.Observe(float64(len(recs)))
	s.mExchangeRecs.With(site).Add(float64(len(recs)))
	s.notePeer(site, nil)
	sp.SetAttrInt("records", int64(len(recs)))
	if len(recs) == 0 {
		s.updateWatermarkAge(site)
		return 0, nil
	}
	s.mu.Lock()
	hist := s.remote[site]
	if hist == nil {
		hist = usage.NewHistogram(s.cfg.BinWidth)
		s.remote[site] = hist
	}
	newest := s.watermark[site]
	s.mu.Unlock()
	for _, r := range recs {
		if r.IntervalStart.After(newest) {
			newest = r.IntervalStart
		}
	}
	// Batch replacement: one lock acquisition per histogram stripe instead
	// of one per record, and all of a user's re-fetched bins land atomically
	// with respect to GlobalTotals readers.
	apply := func() {
		hist.SetRecords(recs)
		s.mu.Lock()
		s.watermark[site] = newest
		s.mu.Unlock()
	}
	if d := s.cfg.Durable; d != nil {
		ops := make([]usage.BinOp, len(recs))
		for i, r := range recs {
			ops[i] = usage.BinOp{User: r.User, Start: hist.AlignStart(r.IntervalStart), Value: r.CoreSeconds}
		}
		mut := &usage.Mutation{Kind: usage.MutRemoteSet, Site: site, Ops: ops, Watermark: newest.UnixNano()}
		if err := d.Commit(mut, apply); err != nil {
			s.mDurableErrs.Inc()
			s.updateWatermarkAge(site)
			sp.SetErr(err)
			return 0, err
		}
	} else {
		apply()
	}
	s.updateWatermarkAge(site)
	s.mConvergeLag.With(site).Set(s.cfg.Clock.Now().Sub(newest).Seconds())
	return len(recs), nil
}

// updateWatermarkAge refreshes one peer's watermark-age gauge: how old the
// newest ingested usage interval is. Unlike staleness (time since the last
// successful pull), this measures how far behind the *data* is — an empty
// but successful pull keeps staleness at zero while watermark age grows.
func (s *Service) updateWatermarkAge(site string) {
	s.mu.Lock()
	wm := s.watermark[site]
	s.mu.Unlock()
	if wm.IsZero() {
		s.mWatermarkAge.With(site).Set(-1)
		return
	}
	s.mWatermarkAge.With(site).Set(s.cfg.Clock.Now().Sub(wm).Seconds())
}

// notePeer records one pull outcome in the per-peer health state and keeps
// the staleness gauge current.
func (s *Service) notePeer(site string, err error) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	st := s.peerState[site]
	if st == nil {
		st = &peerState{}
		s.peerState[site] = st
	}
	if err == nil {
		st.lastSuccess = now
		st.lastErr = nil
		st.consecFails = 0
	} else {
		st.lastErr = err
		st.consecFails++
	}
	last := st.lastSuccess
	s.mu.Unlock()
	if last.IsZero() {
		s.mPeerStaleness.With(site).Set(-1)
	} else {
		s.mPeerStaleness.With(site).Set(now.Sub(last).Seconds())
	}
}

// PeerStatus is one peer's exchange health, as surfaced by /readyz.
type PeerStatus struct {
	// Site is the peer's site name.
	Site string
	// Breaker is the circuit state ("closed", "open", "half-open", or
	// "disabled" when breaking is off).
	Breaker string
	// LastSuccess is the last successful pull (zero = never).
	LastSuccess time.Time
	// LastError is the most recent pull failure ("" when healthy).
	LastError string
	// ConsecutiveFailures counts pulls failed since the last success.
	ConsecutiveFailures int
}

// PeerStatuses reports every registered peer's exchange health, sorted by
// site name. As a side effect it refreshes the per-peer staleness gauges, so
// scraping /metrics alongside periodic readiness checks keeps them current.
func (s *Service) PeerStatuses() []PeerStatus {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	peers := append([]Peer(nil), s.peers...)
	out := make([]PeerStatus, 0, len(peers))
	for _, p := range peers {
		site := p.Site()
		ps := PeerStatus{Site: site, Breaker: "disabled"}
		if st := s.peerState[site]; st != nil {
			ps.LastSuccess = st.lastSuccess
			ps.ConsecutiveFailures = st.consecFails
			if st.lastErr != nil {
				ps.LastError = st.lastErr.Error()
			}
		}
		out = append(out, ps)
	}
	s.mu.Unlock()
	for i := range out {
		if br := s.breakers.For(out[i].Site); br != nil {
			ps := &out[i]
			ps.Breaker = br.State().String()
			if ps.LastError == "" && br.LastError() != nil {
				ps.LastError = br.LastError().Error()
			}
		}
		if out[i].LastSuccess.IsZero() {
			s.mPeerStaleness.With(out[i].Site).Set(-1)
		} else {
			s.mPeerStaleness.With(out[i].Site).Set(now.Sub(out[i].LastSuccess).Seconds())
		}
		s.updateWatermarkAge(out[i].Site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// LocalTotals returns decayed per-user totals of locally executed jobs.
func (s *Service) LocalTotals(now time.Time, d usage.Decay) map[string]float64 {
	return s.local.DecayedTotals(now, d)
}

// GlobalTotals returns decayed per-user totals combining local and ingested
// remote usage. The combination is one accumulation pass: every histogram
// adds straight into the result map (no intermediate per-site maps), and
// all sites share one memoized weight table — the bins of every site are
// aligned to the same width, so each distinct bin start is weighed once for
// the whole federation.
func (s *Service) GlobalTotals(now time.Time, d usage.Decay) map[string]float64 {
	s.mu.Lock()
	siteNames := make([]string, 0, len(s.remote))
	for name := range s.remote {
		siteNames = append(siteNames, name)
	}
	sort.Strings(siteNames) // fixed order for bit-identical float sums
	remotes := make([]*usage.Histogram, 0, len(siteNames))
	for _, name := range siteNames {
		remotes = append(remotes, s.remote[name])
	}
	s.mu.Unlock()
	out := map[string]float64{}
	wt := usage.NewWeightTable(d, now, s.cfg.BinWidth)
	s.local.AccumulateDecayed(out, now, d, wt)
	for _, h := range remotes {
		h.AccumulateDecayed(out, now, d, wt)
	}
	return out
}

// LocalHistogram exposes a copy of the local histogram (for the UMS).
func (s *Service) LocalHistogram() *usage.Histogram { return s.local.Clone() }

// ApplyMutation applies one replayed WAL mutation — the crash-recovery
// applier handed to durability.Log.Replay. The histogram primitives it uses
// (IngestBatch, SetRecords) perform the same float operations, in the same
// per-stripe order, as the live paths that committed the mutation, so a
// replayed histogram is bitwise equal to the pre-crash one.
func (s *Service) ApplyMutation(m *usage.Mutation) error {
	switch m.Kind {
	case usage.MutLocalAdd, usage.MutLocalBatch:
		s.local.IngestBatch(m.Records(s.cfg.Site))
	case usage.MutRemoteSet:
		s.mu.Lock()
		hist := s.remote[m.Site]
		if hist == nil {
			hist = usage.NewHistogram(s.cfg.BinWidth)
			s.remote[m.Site] = hist
		}
		s.mu.Unlock()
		hist.SetRecords(m.Records(m.Site))
		s.mu.Lock()
		s.watermark[m.Site] = time.Unix(0, m.Watermark).UTC()
		s.mu.Unlock()
	default:
		return fmt.Errorf("uss: cannot apply mutation kind %d", m.Kind)
	}
	return nil
}

// CaptureState exports the full durable image of this USS for a snapshot.
// It is designed to run as a durability.Log.Snapshot capture callback:
// commits are blocked by the caller (the cut is consistent with the WAL
// rotation), and the local histogram is read stripe-at-a-time so
// whole-histogram readers (GlobalTotals, exchange serving) never stall
// behind the export.
func (s *Service) CaptureState() *durability.SnapshotState {
	st := &durability.SnapshotState{
		BinWidth: s.cfg.BinWidth,
		Site:     s.cfg.Site,
	}
	for i := 0; i < s.local.NumStripes(); i++ {
		st.Local = append(st.Local, s.local.StripeRecords(s.cfg.Site, i)...)
	}
	sortRecords(st.Local)
	s.mu.Lock()
	remotes := make(map[string]*usage.Histogram, len(s.remote))
	for peer, h := range s.remote {
		remotes[peer] = h
	}
	st.Watermark = make(map[string]time.Time, len(s.watermark))
	for peer, wm := range s.watermark {
		st.Watermark[peer] = wm
	}
	s.mu.Unlock()
	st.Remote = make(map[string][]usage.Record, len(remotes))
	for peer, h := range remotes {
		var recs []usage.Record
		for i := 0; i < h.NumStripes(); i++ {
			recs = append(recs, h.StripeRecords(peer, i)...)
		}
		sortRecords(recs)
		st.Remote[peer] = recs
	}
	return st
}

// LocalRecords exports the local histogram sorted by user then interval —
// the scenario harness's restart-twin comparison surface.
func (s *Service) LocalRecords() []usage.Record {
	return s.local.Records(s.cfg.Site)
}

// RemoteRecords exports every peer's mirrored bins, keyed by peer site.
func (s *Service) RemoteRecords() map[string][]usage.Record {
	s.mu.Lock()
	remotes := make(map[string]*usage.Histogram, len(s.remote))
	for peer, h := range s.remote {
		remotes[peer] = h
	}
	s.mu.Unlock()
	out := make(map[string][]usage.Record, len(remotes))
	for peer, h := range remotes {
		out[peer] = h.Records(peer)
	}
	return out
}

// Watermarks returns a copy of the per-peer exchange watermarks.
func (s *Service) Watermarks() map[string]time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Time, len(s.watermark))
	for peer, wm := range s.watermark {
		out[peer] = wm
	}
	return out
}

// sortRecords orders records by user then interval start — the canonical
// export order shared with Histogram.Records.
func sortRecords(recs []usage.Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].User != recs[j].User {
			return recs[i].User < recs[j].User
		}
		return recs[i].IntervalStart.Before(recs[j].IntervalStart)
	})
}
