// Package uss implements the Usage Statistics Service: it gathers per-job
// usage results of the local site, produces per-user histograms for
// configurable time intervals, and exchanges compact usage records with the
// USS instances of other sites. Per-site exchange flags model the partial-
// participation scenarios of Section IV (a site may read global data without
// contributing, or contribute without consuming).
package uss

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// Peer is a remote USS this instance pulls records from. Implementations
// live in httpapi; the testbed wires services directly.
type Peer interface {
	// Site identifies the remote site.
	Site() string
	// RecordsSince returns the remote site's local records from t on. The
	// context carries the request ID of the exchange that triggered the
	// pull, so one exchange is traceable across site hops.
	RecordsSince(ctx context.Context, t time.Time) ([]usage.Record, error)
}

// Config configures a USS instance.
type Config struct {
	// Site is this installation's site name.
	Site string
	// BinWidth is the histogram interval width (default 1h).
	BinWidth time.Duration
	// Contribute controls whether this site serves its records to peers.
	// A non-contributing site is invisible to the rest of the grid.
	Contribute bool
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
}

// Service is a Usage Statistics Service instance.
type Service struct {
	cfg   Config
	mu    sync.Mutex
	local *usage.Histogram // usage of jobs executed on this site
	// remote holds one histogram per peer site, updated incrementally:
	// exchange re-fetches records from one bin before the per-peer
	// watermark and replaces those bins, so a still-filling interval can be
	// re-fetched without double counting while closed intervals are never
	// transferred twice.
	remote    map[string]*usage.Histogram
	watermark map[string]time.Time
	peers     []Peer

	mReports        *telemetry.Counter
	mExchanges      *telemetry.Counter
	mExchangeBatch  *telemetry.Histogram
	mExchangeRecs   *telemetry.CounterVec
	mExchangeErrors *telemetry.CounterVec
}

// New creates a USS.
func New(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.BinWidth <= 0 {
		cfg.BinWidth = time.Hour
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Service{
		cfg:       cfg,
		local:     usage.NewHistogram(cfg.BinWidth),
		remote:    map[string]*usage.Histogram{},
		watermark: map[string]time.Time{},
		mReports: reg.Counter("aequus_uss_usage_reports_total",
			"Job-completion usage reports ingested by the local USS."),
		mExchanges: reg.Counter("aequus_uss_exchanges_total",
			"Inter-site usage exchange rounds performed."),
		mExchangeBatch: reg.Histogram("aequus_uss_exchange_batch_records",
			"Records pulled from one peer in one exchange round.",
			telemetry.CountBuckets()),
		mExchangeRecs: reg.CounterVec("aequus_uss_exchange_records_total",
			"Compact usage records ingested from peers, by peer site.", "peer"),
		mExchangeErrors: reg.CounterVec("aequus_uss_exchange_errors_total",
			"Failed peer pulls during usage exchange, by peer site.", "peer"),
	}
}

// Site returns this instance's site name.
func (s *Service) Site() string { return s.cfg.Site }

// AddPeer registers a remote USS to pull usage from.
func (s *Service) AddPeer(p Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = append(s.peers, p)
}

// ReportJob records a completed job's usage into the local histogram. The
// full usage is attributed to the interval containing the completion time:
// completion-time attribution keeps closed intervals immutable, which is
// what makes the incremental inter-site exchange sound.
func (s *Service) ReportJob(user string, start time.Time, dur time.Duration, procs int) {
	if dur <= 0 || user == "" {
		return
	}
	if procs < 1 {
		procs = 1
	}
	s.mReports.Inc()
	s.local.Add(user, start.Add(dur), dur.Seconds()*float64(procs))
}

// RecordsSince serves this site's local records from t on — the compact
// inter-site exchange format. A non-contributing site serves nothing.
func (s *Service) RecordsSince(_ context.Context, t time.Time) ([]usage.Record, error) {
	if !s.cfg.Contribute {
		return nil, nil
	}
	return s.local.RecordsSince(s.cfg.Site, t), nil
}

// Exchange pulls new compact records from every peer. Records since one bin
// before the per-peer watermark are fetched and their bins *replaced* in the
// peer's remote histogram, making the exchange incremental (closed intervals
// transfer once) yet idempotent (the open interval is re-fetched and
// overwritten). It returns the number of records ingested and the first
// error (all peers are still attempted). The context's request ID is
// forwarded to every peer pull, so one exchange round is traceable across
// the federation.
func (s *Service) Exchange(ctx context.Context) (int, error) {
	s.mu.Lock()
	peers := append([]Peer(nil), s.peers...)
	s.mu.Unlock()
	s.mExchanges.Inc()

	total := 0
	var firstErr error
	for _, p := range peers {
		site := p.Site()
		s.mu.Lock()
		since := s.watermark[site]
		s.mu.Unlock()
		if !since.IsZero() {
			// Re-fetch the last (possibly still-filling) interval.
			since = since.Add(-s.cfg.BinWidth)
		}
		recs, err := p.RecordsSince(ctx, since)
		if err != nil {
			s.mExchangeErrors.With(site).Inc()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.mExchangeBatch.Observe(float64(len(recs)))
		s.mExchangeRecs.With(site).Add(float64(len(recs)))
		if len(recs) == 0 {
			continue
		}
		s.mu.Lock()
		hist := s.remote[site]
		if hist == nil {
			hist = usage.NewHistogram(s.cfg.BinWidth)
			s.remote[site] = hist
		}
		newest := s.watermark[site]
		s.mu.Unlock()
		for _, r := range recs {
			hist.SetBin(r.User, r.IntervalStart, r.CoreSeconds)
			if r.IntervalStart.After(newest) {
				newest = r.IntervalStart
			}
		}
		s.mu.Lock()
		s.watermark[site] = newest
		s.mu.Unlock()
		total += len(recs)
	}
	return total, firstErr
}

// LocalTotals returns decayed per-user totals of locally executed jobs.
func (s *Service) LocalTotals(now time.Time, d usage.Decay) map[string]float64 {
	return s.local.DecayedTotals(now, d)
}

// GlobalTotals returns decayed per-user totals combining local and ingested
// remote usage.
func (s *Service) GlobalTotals(now time.Time, d usage.Decay) map[string]float64 {
	out := s.local.DecayedTotals(now, d)
	s.mu.Lock()
	siteNames := make([]string, 0, len(s.remote))
	for name := range s.remote {
		siteNames = append(siteNames, name)
	}
	sort.Strings(siteNames) // fixed order for bit-identical float sums
	remotes := make([]*usage.Histogram, 0, len(siteNames))
	for _, name := range siteNames {
		remotes = append(remotes, s.remote[name])
	}
	s.mu.Unlock()
	for _, h := range remotes {
		for u, v := range h.DecayedTotals(now, d) {
			out[u] += v
		}
	}
	return out
}

// LocalHistogram exposes a copy of the local histogram (for the UMS).
func (s *Service) LocalHistogram() *usage.Histogram { return s.local.Clone() }
