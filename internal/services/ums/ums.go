// Package ums implements the Usage Monitoring Service: it gathers usage
// histograms from one or more Usage Statistics Services and pre-computes
// per-user decayed usage totals ("usage trees") against the site policy, so
// the Fairshare Calculation Service never touches raw job data.
package ums

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
)

// Source provides decayed usage totals — the USS, via either its local-only
// or combined local+global view.
type Source interface {
	// Totals returns per-user decayed core-seconds at `now`.
	Totals(now time.Time, d usage.Decay) (map[string]float64, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(now time.Time, d usage.Decay) (map[string]float64, error)

// Totals implements Source.
func (f SourceFunc) Totals(now time.Time, d usage.Decay) (map[string]float64, error) {
	return f(now, d)
}

// Config configures a UMS instance.
type Config struct {
	// Decay is the usage decay function (default: no decay).
	Decay usage.Decay
	// CacheTTL is how long a pre-computed usage tree is served before
	// recomputation — one of the update-delay components (II) the paper's
	// delay experiment varies.
	CacheTTL time.Duration
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
	// Spans receives recompute trace spans (nil disables tracing).
	Spans *span.Recorder
}

// Service is a Usage Monitoring Service instance.
type Service struct {
	cfg     Config
	sources []Source

	// mu guards the cache fields and the in-flight latch. It is never held
	// across a source fetch: recomputation runs outside the lock, so
	// ComputedAt (and therefore /readyz) stays responsive while a slow or
	// hanging USS is being queried.
	mu       sync.Mutex
	cached   map[string]float64
	cachedAt time.Time
	valid    bool
	// inflight is non-nil while one recompute runs; it is closed when that
	// recompute finishes. Concurrent stale readers wait on it and adopt
	// the flight's outcome instead of launching duplicate fetches
	// (single-flight, mirroring the FCS refresh discipline).
	inflight    chan struct{}
	inflightErr error // outcome of the last finished flight, for waiters
	// gen is bumped by Invalidate; a flight that started before the bump
	// must not publish its (pre-invalidation) result as valid.
	gen uint64

	mRecomputes   *telemetry.Counter
	mRecomputeDur *telemetry.Histogram
	mUsers        *telemetry.Gauge
}

// New creates a UMS reading from the given sources.
func New(cfg Config, sources ...Source) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Decay == nil {
		cfg.Decay = usage.None{}
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Service{
		cfg: cfg, sources: sources,
		mRecomputes: reg.Counter("aequus_ums_recomputes_total",
			"Decayed usage-tree recomputations performed."),
		mRecomputeDur: reg.Histogram("aequus_ums_recompute_duration_seconds",
			"Wall-clock duration of one decay recomputation over all sources.",
			telemetry.DefBuckets()),
		mUsers: reg.Gauge("aequus_ums_users",
			"Users in the last pre-computed usage tree."),
	}
}

// AddSource registers an additional USS source.
func (s *Service) AddSource(src Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, src)
}

// UsageTotals returns the pre-computed per-user decayed usage, recomputing
// when the cache has expired. The returned map is a copy.
//
// Recomputation is single-flight and runs outside the service mutex: of any
// number of concurrent stale readers, exactly one fans out to the sources
// (concurrently, one goroutine per source) while the rest wait for that
// flight and adopt its result — a slow source delays only the callers that
// need fresh data, never ComputedAt or cache hits.
func (s *Service) UsageTotals() (map[string]float64, time.Time, error) {
	for {
		now := s.cfg.Clock.Now()
		s.mu.Lock()
		if s.valid && now.Sub(s.cachedAt) < s.cfg.CacheTTL {
			cp, at := copyTotals(s.cached), s.cachedAt
			s.mu.Unlock()
			return cp, at, nil
		}
		if ch := s.inflight; ch != nil {
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			err, valid := s.inflightErr, s.valid
			cp, at := copyTotals(s.cached), s.cachedAt
			s.mu.Unlock()
			if err != nil {
				return nil, time.Time{}, err
			}
			if valid {
				// Serve the flight's result even when it is already at
				// the TTL edge (e.g. CacheTTL=0): it was computed while
				// we waited, which is as fresh as a recompute of our own.
				return cp, at, nil
			}
			continue // flight was invalidated under us; retry
		}
		ch := make(chan struct{})
		s.inflight = ch
		sources := append([]Source(nil), s.sources...)
		gen := s.gen
		s.mu.Unlock()

		started := time.Now() // wall time: the metric reports real compute cost
		sctx, sp := span.Start(span.WithRecorder(context.Background(), s.cfg.Spans),
			"ums.totals")
		sp.SetAttrInt("sources", int64(len(sources)))
		combined, err := fetchSources(sctx, sources, now, s.cfg.Decay)
		sp.SetAttrInt("users", int64(len(combined)))
		sp.SetErr(err)
		sp.End()

		s.mu.Lock()
		s.inflight = nil
		s.inflightErr = err
		if err == nil {
			s.cached = combined
			s.cachedAt = now
			// An Invalidate that arrived mid-flight wins: the result is
			// served to the callers that asked for it but not cached as
			// valid, so the next read recomputes.
			s.valid = gen == s.gen
		}
		s.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, time.Time{}, err
		}
		s.mRecomputes.Inc()
		s.mRecomputeDur.Observe(time.Since(started).Seconds())
		s.mUsers.Set(float64(len(combined)))
		return copyTotals(combined), now, nil
	}
}

// fetchSources queries every source concurrently and merges the totals.
// The first error in source order wins (all sources are still awaited). The
// context only carries trace state — sources have no cancellation hook.
func fetchSources(ctx context.Context, sources []Source, now time.Time, d usage.Decay) (map[string]float64, error) {
	fetchOne := func(i int, src Source) (map[string]float64, error) {
		_, sp := span.Start(ctx, "ums.source")
		sp.SetAttr("index", fmt.Sprint(i))
		totals, err := src.Totals(now, d)
		sp.SetAttrInt("users", int64(len(totals)))
		sp.SetErr(err)
		sp.End()
		return totals, err
	}
	switch len(sources) {
	case 0:
		return map[string]float64{}, nil
	case 1:
		totals, err := fetchOne(0, sources[0])
		if err != nil {
			return nil, err
		}
		combined := make(map[string]float64, len(totals))
		for u, v := range totals {
			combined[u] += v
		}
		return combined, nil
	}
	results := make([]map[string]float64, len(sources))
	errs := make([]error, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			results[i], errs[i] = fetchOne(i, src)
		}(i, src)
	}
	wg.Wait()
	combined := map[string]float64{}
	for i := range sources {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for u, v := range results[i] {
			combined[u] += v
		}
	}
	return combined, nil
}

// ComputedAt reports when the cached usage tree was computed (zero if the
// cache is invalid) — the staleness input of /readyz.
func (s *Service) ComputedAt() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid {
		return time.Time{}
	}
	return s.cachedAt
}

// Invalidate drops the cache so the next read recomputes. A recompute
// already in flight still completes and is served to its waiters, but its
// result is not cached as valid.
func (s *Service) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.valid = false
	s.gen++
}

// Decay exposes the configured decay function.
func (s *Service) Decay() usage.Decay { return s.cfg.Decay }

func copyTotals(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
