// Package ums implements the Usage Monitoring Service: it gathers usage
// histograms from one or more Usage Statistics Services and pre-computes
// per-user decayed usage totals ("usage trees") against the site policy, so
// the Fairshare Calculation Service never touches raw job data.
package ums

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
)

// Source provides decayed usage totals — the USS, via either its local-only
// or combined local+global view.
type Source interface {
	// Totals returns per-user decayed core-seconds at `now`.
	Totals(now time.Time, d usage.Decay) (map[string]float64, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(now time.Time, d usage.Decay) (map[string]float64, error)

// Totals implements Source.
func (f SourceFunc) Totals(now time.Time, d usage.Decay) (map[string]float64, error) {
	return f(now, d)
}

// Config configures a UMS instance.
type Config struct {
	// Decay is the usage decay function (default: no decay).
	Decay usage.Decay
	// CacheTTL is how long a pre-computed usage tree is served before
	// recomputation — one of the update-delay components (II) the paper's
	// delay experiment varies.
	CacheTTL time.Duration
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
	// Spans receives recompute trace spans (nil disables tracing).
	Spans *span.Recorder
}

// Service is a Usage Monitoring Service instance.
type Service struct {
	cfg     Config
	sources []Source

	// mu guards the cache fields and the in-flight latch. It is never held
	// across a source fetch: recomputation runs outside the lock, so
	// ComputedAt (and therefore /readyz) stays responsive while a slow or
	// hanging USS is being queried.
	mu       sync.Mutex
	cached   map[string]float64
	cachedAt time.Time
	valid    bool
	// inflight is non-nil while one recompute runs; it is closed when that
	// recompute finishes. Concurrent stale readers wait on it and adopt
	// the flight's outcome instead of launching duplicate fetches
	// (single-flight, mirroring the FCS refresh discipline).
	inflight    chan struct{}
	inflightErr error // outcome of the last finished flight, for waiters
	// gen is bumped by Invalidate; a flight that started before the bump
	// must not publish its (pre-invalidation) result as valid.
	gen uint64

	// version is the delta watermark: it advances whenever a recompute
	// publishes totals that differ (bitwise) from the previous valid ones.
	// deltaLog holds the most recent generations (oldest first, versions
	// consecutive); everValid marks that a first valid publish happened.
	version   uint64
	deltaLog  []deltaGen
	everValid bool

	mRecomputes   *telemetry.Counter
	mRecomputeDur *telemetry.Histogram
	mUsers        *telemetry.Gauge
}

// deltaGen is one published generation in the bounded delta log.
type deltaGen struct {
	version uint64
	// changed maps users whose totals changed in this generation to their
	// new absolute values. Nil marks a "full" generation — more than half
	// the population moved (or the first publish), where shipping a delta
	// would not pay off — which forces consumers whose watermark predates
	// it to a full rebuild.
	changed map[string]float64
}

// maxDeltaGens bounds the delta log: a consumer whose watermark has fallen
// further behind than this many publishes gets a full set instead. Eight
// generations cover several missed refresh intervals without letting a
// stalled consumer pin unbounded per-generation maps.
const maxDeltaGens = 8

// New creates a UMS reading from the given sources.
func New(cfg Config, sources ...Source) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Decay == nil {
		cfg.Decay = usage.None{}
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Service{
		cfg: cfg, sources: sources,
		mRecomputes: reg.Counter("aequus_ums_recomputes_total",
			"Decayed usage-tree recomputations performed."),
		mRecomputeDur: reg.Histogram("aequus_ums_recompute_duration_seconds",
			"Wall-clock duration of one decay recomputation over all sources.",
			telemetry.DefBuckets()),
		mUsers: reg.Gauge("aequus_ums_users",
			"Users in the last pre-computed usage tree."),
	}
}

// AddSource registers an additional USS source.
func (s *Service) AddSource(src Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, src)
}

// UsageTotals returns the pre-computed per-user decayed usage, recomputing
// when the cache has expired. The returned map is a copy.
//
// Recomputation is single-flight and runs outside the service mutex: of any
// number of concurrent stale readers, exactly one fans out to the sources
// (concurrently, one goroutine per source) while the rest wait for that
// flight and adopt its result — a slow source delays only the callers that
// need fresh data, never ComputedAt or cache hits.
func (s *Service) UsageTotals() (map[string]float64, time.Time, error) {
	for {
		now := s.cfg.Clock.Now()
		s.mu.Lock()
		if s.valid && now.Sub(s.cachedAt) < s.cfg.CacheTTL {
			cp, at := copyTotals(s.cached), s.cachedAt
			s.mu.Unlock()
			return cp, at, nil
		}
		if ch := s.inflight; ch != nil {
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			err, valid := s.inflightErr, s.valid
			cp, at := copyTotals(s.cached), s.cachedAt
			s.mu.Unlock()
			if err != nil {
				return nil, time.Time{}, err
			}
			if valid {
				// Serve the flight's result even when it is already at
				// the TTL edge (e.g. CacheTTL=0): it was computed while
				// we waited, which is as fresh as a recompute of our own.
				return cp, at, nil
			}
			continue // flight was invalidated under us; retry
		}
		combined, err := s.recompute(now) // releases mu
		if err != nil {
			return nil, time.Time{}, err
		}
		return copyTotals(combined), now, nil
	}
}

// recompute runs one single-flight recomputation over all sources. It must
// be called with mu held and no flight in progress; it returns with mu
// released. The flight's combined totals are returned to the owner even
// when an Invalidate raced the fetch (waiters and later readers retry
// instead).
func (s *Service) recompute(now time.Time) (map[string]float64, error) {
	ch := make(chan struct{})
	s.inflight = ch
	sources := append([]Source(nil), s.sources...)
	gen := s.gen
	s.mu.Unlock()

	started := time.Now() // wall time: the metric reports real compute cost
	sctx, sp := span.Start(span.WithRecorder(context.Background(), s.cfg.Spans),
		"ums.totals")
	sp.SetAttrInt("sources", int64(len(sources)))
	combined, err := fetchSources(sctx, sources, now, s.cfg.Decay)
	sp.SetAttrInt("users", int64(len(combined)))
	sp.SetErr(err)
	sp.End()

	s.mu.Lock()
	s.inflight = nil
	s.inflightErr = err
	if err == nil {
		// An Invalidate that arrived mid-flight wins: the result is served
		// to the callers that asked for it but not published — the cache,
		// the delta watermark and the delta log only ever advance on valid
		// generations, keeping the version chain consistent.
		if gen == s.gen {
			s.publishLocked(combined, now)
		} else {
			s.valid = false
		}
	}
	s.mu.Unlock()
	close(ch)
	if err != nil {
		return nil, err
	}
	s.mRecomputes.Inc()
	s.mRecomputeDur.Observe(time.Since(started).Seconds())
	s.mUsers.Set(float64(len(combined)))
	return combined, nil
}

// publishLocked installs a valid recompute result and records its delta
// generation. Caller holds mu.
func (s *Service) publishLocked(combined map[string]float64, now time.Time) {
	changed := diffTotals(s.cached, combined)
	if !s.everValid || len(changed) > 0 {
		s.version++
		g := deltaGen{version: s.version}
		// A first publish or a majority change is recorded as a full
		// marker: consumers behind it rebuild from complete totals.
		if s.everValid && len(changed)*2 <= len(combined) {
			g.changed = changed
		}
		s.deltaLog = append(s.deltaLog, g)
		if len(s.deltaLog) > maxDeltaGens {
			s.deltaLog = append(s.deltaLog[:0:0], s.deltaLog[len(s.deltaLog)-maxDeltaGens:]...)
		}
	}
	s.cached = combined
	s.cachedAt = now
	s.valid = true
	s.everValid = true
}

// diffTotals returns the bitwise-changed users between two totals maps, with
// disappeared users mapped to 0 (their effective usage in any computation).
func diffTotals(old, new map[string]float64) map[string]float64 {
	changed := make(map[string]float64)
	for u, v := range new {
		if ov, ok := old[u]; !ok || math.Float64bits(ov) != math.Float64bits(v) {
			changed[u] = v
		}
	}
	for u := range old {
		if _, ok := new[u]; !ok {
			changed[u] = 0
		}
	}
	return changed
}

// UsageDeltas returns the set of users whose decayed totals changed since
// the given version watermark, recomputing first when the cache is stale
// (same TTL and single-flight discipline as UsageTotals). Pass since=0 (or
// any uncovered watermark) to receive complete totals with Full set. The
// returned maps reference internal state and must be treated as read-only.
func (s *Service) UsageDeltas(since uint64) (usage.DeltaSet, error) {
	for {
		now := s.cfg.Clock.Now()
		s.mu.Lock()
		if s.valid && now.Sub(s.cachedAt) < s.cfg.CacheTTL {
			ds := s.deltasLocked(since)
			s.mu.Unlock()
			return ds, nil
		}
		if ch := s.inflight; ch != nil {
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			err := s.inflightErr
			s.mu.Unlock()
			if err != nil {
				return usage.DeltaSet{}, err
			}
			continue // re-evaluate freshness (or become the next flight)
		}
		if _, err := s.recompute(now); err != nil { // releases mu
			return usage.DeltaSet{}, err
		}
		s.mu.Lock()
		if s.valid {
			// Serve straight from the publish our own flight just made —
			// re-checking the TTL would spin forever at CacheTTL=0.
			ds := s.deltasLocked(since)
			s.mu.Unlock()
			return ds, nil
		}
		s.mu.Unlock()
		// Our flight was invalidated mid-fetch; retry.
	}
}

// deltasLocked assembles the delta between `since` and the current version.
// Caller holds mu with s.valid true.
func (s *Service) deltasLocked(since uint64) usage.DeltaSet {
	ds := usage.DeltaSet{Version: s.version}
	if since == s.version {
		return ds // bitwise unchanged since the consumer's watermark
	}
	if since == 0 || since > s.version {
		ds.Full = true
		ds.Totals = s.cached
		return ds
	}
	// The consumer needs generations (since, version]. Versions in the log
	// are consecutive, so coverage only requires the oldest retained entry
	// to reach back to since+1.
	if len(s.deltaLog) == 0 || s.deltaLog[0].version > since+1 {
		ds.Full = true
		ds.Totals = s.cached
		return ds
	}
	merged := make(map[string]float64)
	for _, g := range s.deltaLog {
		if g.version <= since {
			continue
		}
		if g.changed == nil { // full-generation marker
			ds.Full = true
			ds.Totals = s.cached
			return ds
		}
		for u, v := range g.changed {
			merged[u] = v // later generations win
		}
	}
	ds.Changed = merged
	return ds
}

// fetchSources queries every source concurrently and merges the totals.
// The first error in source order wins (all sources are still awaited). The
// context only carries trace state — sources have no cancellation hook.
func fetchSources(ctx context.Context, sources []Source, now time.Time, d usage.Decay) (map[string]float64, error) {
	fetchOne := func(i int, src Source) (map[string]float64, error) {
		_, sp := span.Start(ctx, "ums.source")
		sp.SetAttr("index", fmt.Sprint(i))
		totals, err := src.Totals(now, d)
		sp.SetAttrInt("users", int64(len(totals)))
		sp.SetErr(err)
		sp.End()
		return totals, err
	}
	switch len(sources) {
	case 0:
		return map[string]float64{}, nil
	case 1:
		totals, err := fetchOne(0, sources[0])
		if err != nil {
			return nil, err
		}
		combined := make(map[string]float64, len(totals))
		for u, v := range totals {
			combined[u] += v
		}
		return combined, nil
	}
	results := make([]map[string]float64, len(sources))
	errs := make([]error, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			results[i], errs[i] = fetchOne(i, src)
		}(i, src)
	}
	wg.Wait()
	combined := map[string]float64{}
	for i := range sources {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for u, v := range results[i] {
			combined[u] += v
		}
	}
	return combined, nil
}

// ComputedAt reports when the cached usage tree was computed (zero if the
// cache is invalid) — the staleness input of /readyz.
func (s *Service) ComputedAt() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid {
		return time.Time{}
	}
	return s.cachedAt
}

// Invalidate drops the cache so the next read recomputes. A recompute
// already in flight still completes and is served to its waiters, but its
// result is not cached as valid.
func (s *Service) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.valid = false
	s.gen++
}

// Decay exposes the configured decay function.
func (s *Service) Decay() usage.Decay { return s.cfg.Decay }

func copyTotals(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
