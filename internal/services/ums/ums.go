// Package ums implements the Usage Monitoring Service: it gathers usage
// histograms from one or more Usage Statistics Services and pre-computes
// per-user decayed usage totals ("usage trees") against the site policy, so
// the Fairshare Calculation Service never touches raw job data.
package ums

import (
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// Source provides decayed usage totals — the USS, via either its local-only
// or combined local+global view.
type Source interface {
	// Totals returns per-user decayed core-seconds at `now`.
	Totals(now time.Time, d usage.Decay) (map[string]float64, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(now time.Time, d usage.Decay) (map[string]float64, error)

// Totals implements Source.
func (f SourceFunc) Totals(now time.Time, d usage.Decay) (map[string]float64, error) {
	return f(now, d)
}

// Config configures a UMS instance.
type Config struct {
	// Decay is the usage decay function (default: no decay).
	Decay usage.Decay
	// CacheTTL is how long a pre-computed usage tree is served before
	// recomputation — one of the update-delay components (II) the paper's
	// delay experiment varies.
	CacheTTL time.Duration
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the service's instruments (default registry if nil).
	Metrics *telemetry.Registry
}

// Service is a Usage Monitoring Service instance.
type Service struct {
	cfg     Config
	sources []Source

	mu       sync.Mutex
	cached   map[string]float64
	cachedAt time.Time
	valid    bool

	mRecomputes   *telemetry.Counter
	mRecomputeDur *telemetry.Histogram
	mUsers        *telemetry.Gauge
}

// New creates a UMS reading from the given sources.
func New(cfg Config, sources ...Source) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Decay == nil {
		cfg.Decay = usage.None{}
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Service{
		cfg: cfg, sources: sources,
		mRecomputes: reg.Counter("aequus_ums_recomputes_total",
			"Decayed usage-tree recomputations performed."),
		mRecomputeDur: reg.Histogram("aequus_ums_recompute_duration_seconds",
			"Wall-clock duration of one decay recomputation over all sources.",
			telemetry.DefBuckets()),
		mUsers: reg.Gauge("aequus_ums_users",
			"Users in the last pre-computed usage tree."),
	}
}

// AddSource registers an additional USS source.
func (s *Service) AddSource(src Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, src)
}

// UsageTotals returns the pre-computed per-user decayed usage, recomputing
// when the cache has expired. The returned map is a copy.
func (s *Service) UsageTotals() (map[string]float64, time.Time, error) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.valid && now.Sub(s.cachedAt) < s.cfg.CacheTTL {
		return copyTotals(s.cached), s.cachedAt, nil
	}
	started := time.Now() // wall time: the metric reports real compute cost
	combined := map[string]float64{}
	for _, src := range s.sources {
		totals, err := src.Totals(now, s.cfg.Decay)
		if err != nil {
			return nil, time.Time{}, err
		}
		for u, v := range totals {
			combined[u] += v
		}
	}
	s.cached = combined
	s.cachedAt = now
	s.valid = true
	s.mRecomputes.Inc()
	s.mRecomputeDur.Observe(time.Since(started).Seconds())
	s.mUsers.Set(float64(len(combined)))
	return copyTotals(combined), now, nil
}

// ComputedAt reports when the cached usage tree was computed (zero if the
// cache is invalid) — the staleness input of /readyz.
func (s *Service) ComputedAt() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid {
		return time.Time{}
	}
	return s.cachedAt
}

// Invalidate drops the cache so the next read recomputes.
func (s *Service) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.valid = false
}

// Decay exposes the configured decay function.
func (s *Service) Decay() usage.Decay { return s.cfg.Decay }

func copyTotals(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
