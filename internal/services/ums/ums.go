// Package ums implements the Usage Monitoring Service: it gathers usage
// histograms from one or more Usage Statistics Services and pre-computes
// per-user decayed usage totals ("usage trees") against the site policy, so
// the Fairshare Calculation Service never touches raw job data.
package ums

import (
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/usage"
)

// Source provides decayed usage totals — the USS, via either its local-only
// or combined local+global view.
type Source interface {
	// Totals returns per-user decayed core-seconds at `now`.
	Totals(now time.Time, d usage.Decay) (map[string]float64, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(now time.Time, d usage.Decay) (map[string]float64, error)

// Totals implements Source.
func (f SourceFunc) Totals(now time.Time, d usage.Decay) (map[string]float64, error) {
	return f(now, d)
}

// Config configures a UMS instance.
type Config struct {
	// Decay is the usage decay function (default: no decay).
	Decay usage.Decay
	// CacheTTL is how long a pre-computed usage tree is served before
	// recomputation — one of the update-delay components (II) the paper's
	// delay experiment varies.
	CacheTTL time.Duration
	// Clock provides time (default wall clock).
	Clock simclock.Clock
}

// Service is a Usage Monitoring Service instance.
type Service struct {
	cfg     Config
	sources []Source

	mu       sync.Mutex
	cached   map[string]float64
	cachedAt time.Time
	valid    bool
}

// New creates a UMS reading from the given sources.
func New(cfg Config, sources ...Source) *Service {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Decay == nil {
		cfg.Decay = usage.None{}
	}
	return &Service{cfg: cfg, sources: sources}
}

// AddSource registers an additional USS source.
func (s *Service) AddSource(src Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, src)
}

// UsageTotals returns the pre-computed per-user decayed usage, recomputing
// when the cache has expired. The returned map is a copy.
func (s *Service) UsageTotals() (map[string]float64, time.Time, error) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.valid && now.Sub(s.cachedAt) < s.cfg.CacheTTL {
		return copyTotals(s.cached), s.cachedAt, nil
	}
	combined := map[string]float64{}
	for _, src := range s.sources {
		totals, err := src.Totals(now, s.cfg.Decay)
		if err != nil {
			return nil, time.Time{}, err
		}
		for u, v := range totals {
			combined[u] += v
		}
	}
	s.cached = combined
	s.cachedAt = now
	s.valid = true
	return copyTotals(combined), now, nil
}

// Invalidate drops the cache so the next read recomputes.
func (s *Service) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.valid = false
}

// Decay exposes the configured decay function.
func (s *Service) Decay() usage.Decay { return s.cfg.Decay }

func copyTotals(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
