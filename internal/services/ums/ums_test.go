package ums

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/usage"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func constSource(totals map[string]float64) Source {
	return SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
		cp := map[string]float64{}
		for k, v := range totals {
			cp[k] = v
		}
		return cp, nil
	})
}

func TestUsageTotalsCombinesSources(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0)},
		constSource(map[string]float64{"a": 10, "b": 5}),
		constSource(map[string]float64{"a": 3, "c": 7}),
	)
	got, _, err := s.UsageTotals()
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 13 || got["b"] != 5 || got["c"] != 7 {
		t.Errorf("totals = %v", got)
	}
}

func TestUsageTotalsCached(t *testing.T) {
	clock := simclock.NewSim(t0)
	calls := 0
	src := SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
		calls++
		return map[string]float64{"a": float64(calls)}, nil
	})
	s := New(Config{Clock: clock, CacheTTL: time.Minute}, src)

	got1, at1, _ := s.UsageTotals()
	got2, at2, _ := s.UsageTotals()
	if calls != 1 {
		t.Errorf("source called %d times within TTL", calls)
	}
	if got1["a"] != got2["a"] || !at1.Equal(at2) {
		t.Error("cached result differs")
	}

	clock.Advance(2 * time.Minute)
	got3, at3, _ := s.UsageTotals()
	if calls != 2 {
		t.Errorf("source called %d times after TTL expiry", calls)
	}
	if got3["a"] != 2 || !at3.After(at1) {
		t.Errorf("refreshed = %v at %v", got3, at3)
	}
}

func TestInvalidateForcesRecompute(t *testing.T) {
	clock := simclock.NewSim(t0)
	calls := 0
	src := SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
		calls++
		return nil, nil
	})
	s := New(Config{Clock: clock, CacheTTL: time.Hour}, src)
	s.UsageTotals()
	s.Invalidate()
	s.UsageTotals()
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0)},
		SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
			return nil, errors.New("uss down")
		}))
	if _, _, err := s.UsageTotals(); err == nil {
		t.Error("source error swallowed")
	}
}

func TestReturnedMapIsACopy(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := New(Config{Clock: clock, CacheTTL: time.Hour}, constSource(map[string]float64{"a": 1}))
	got, _, _ := s.UsageTotals()
	got["a"] = 999
	got2, _, _ := s.UsageTotals()
	if got2["a"] != 1 {
		t.Error("cache mutated through returned map")
	}
}

func TestDecayPassedToSources(t *testing.T) {
	want := usage.ExponentialHalfLife{HalfLife: time.Hour}
	var seen usage.Decay
	src := SourceFunc(func(_ time.Time, d usage.Decay) (map[string]float64, error) {
		seen = d
		return nil, nil
	})
	s := New(Config{Clock: simclock.NewSim(t0), Decay: want}, src)
	s.UsageTotals()
	if seen != want {
		t.Errorf("decay = %v", seen)
	}
	if s.Decay() != want {
		t.Error("Decay() mismatch")
	}
}

// blockingSource returns a source that signals `entered` when called and
// blocks until `release` is closed.
func blockingSource(entered chan<- struct{}, release <-chan struct{}, totals map[string]float64, calls *int32) Source {
	return SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
		atomic.AddInt32(calls, 1)
		entered <- struct{}{}
		<-release
		cp := map[string]float64{}
		for k, v := range totals {
			cp[k] = v
		}
		return cp, nil
	})
}

// TestComputedAtNotBlockedBySlowSource is the /readyz regression test: a
// hanging USS must not wedge ComputedAt (the recompute runs outside the
// service mutex).
func TestComputedAtNotBlockedBySlowSource(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls int32
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Minute},
		blockingSource(entered, release, map[string]float64{"a": 1}, &calls))

	go func() { s.UsageTotals() }()
	<-entered // the fetch is now in flight and hanging

	done := make(chan time.Time, 1)
	go func() { done <- s.ComputedAt() }()
	select {
	case at := <-done:
		if !at.IsZero() {
			t.Errorf("ComputedAt = %v before first recompute, want zero", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ComputedAt blocked behind a hanging source fetch")
	}
	close(release)
}

// TestUsageTotalsSingleFlight checks that concurrent stale readers share
// one source fan-out: of N callers, exactly one dials the source and the
// rest adopt its result.
func TestUsageTotalsSingleFlight(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls int32
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Minute},
		blockingSource(entered, release, map[string]float64{"a": 42}, &calls))

	const n = 8
	results := make(chan map[string]float64, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			got, _, err := s.UsageTotals()
			results <- got
			errs <- err
		}()
	}
	<-entered // leader is inside the source; the rest must now be waiting
	close(release)
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		if got := <-results; got["a"] != 42 {
			t.Errorf("caller %d got %v", i, got)
		}
	}
	if c := atomic.LoadInt32(&calls); c != 1 {
		t.Errorf("source dialed %d times for %d concurrent callers, want 1", c, n)
	}
}

// TestSourcesFetchedConcurrently uses a rendezvous: each source blocks
// until the other has been entered, which only resolves when the UMS fans
// out to its sources in parallel.
func TestSourcesFetchedConcurrently(t *testing.T) {
	aIn, bIn := make(chan struct{}), make(chan struct{})
	mk := func(mine, other chan struct{}, totals map[string]float64) Source {
		return SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
			close(mine)
			select {
			case <-other:
			case <-time.After(5 * time.Second):
				return nil, errors.New("peer source never entered: fetches are sequential")
			}
			return totals, nil
		})
	}
	s := New(Config{Clock: simclock.NewSim(t0)},
		mk(aIn, bIn, map[string]float64{"a": 1}),
		mk(bIn, aIn, map[string]float64{"b": 2}),
	)
	got, _, err := s.UsageTotals()
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 1 || got["b"] != 2 {
		t.Errorf("totals = %v", got)
	}
}

// TestErrorPropagatesToWaiters: every caller coalesced onto a failing
// flight sees the error.
func TestErrorPropagatesToWaiters(t *testing.T) {
	// Errors are not cached, so a caller arriving after the first flight
	// failed correctly starts a fresh flight: buffer one `entered` slot
	// per caller so those extra flights never block inside the source.
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s := New(Config{Clock: simclock.NewSim(t0)},
		SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
			entered <- struct{}{}
			<-release
			return nil, errors.New("uss down")
		}))
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, _, err := s.UsageTotals()
			errs <- err
		}()
	}
	<-entered
	close(release)
	for i := 0; i < 4; i++ {
		if err := <-errs; err == nil {
			t.Error("waiter did not see the flight's error")
		}
	}
}

// TestInvalidateDuringFlight: a result computed before an Invalidate must
// be served to its waiters but not cached as valid.
func TestInvalidateDuringFlight(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls int32
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Hour},
		blockingSource(entered, release, map[string]float64{"a": 1}, &calls))

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := s.UsageTotals(); err != nil {
			t.Errorf("in-flight read failed: %v", err)
		}
	}()
	<-entered
	s.Invalidate() // arrives mid-flight
	close(release)
	<-done

	if _, _, err := s.UsageTotals(); err != nil {
		t.Fatal(err)
	}
	if c := atomic.LoadInt32(&calls); c != 2 {
		t.Errorf("source dialed %d times, want 2 (post-invalidate read must recompute)", c)
	}
}

func TestAddSource(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0)})
	s.AddSource(constSource(map[string]float64{"x": 4}))
	got, _, _ := s.UsageTotals()
	if got["x"] != 4 {
		t.Errorf("totals = %v", got)
	}
}
