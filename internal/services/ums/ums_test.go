package ums

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/usage"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func constSource(totals map[string]float64) Source {
	return SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
		cp := map[string]float64{}
		for k, v := range totals {
			cp[k] = v
		}
		return cp, nil
	})
}

func TestUsageTotalsCombinesSources(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0)},
		constSource(map[string]float64{"a": 10, "b": 5}),
		constSource(map[string]float64{"a": 3, "c": 7}),
	)
	got, _, err := s.UsageTotals()
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 13 || got["b"] != 5 || got["c"] != 7 {
		t.Errorf("totals = %v", got)
	}
}

func TestUsageTotalsCached(t *testing.T) {
	clock := simclock.NewSim(t0)
	calls := 0
	src := SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
		calls++
		return map[string]float64{"a": float64(calls)}, nil
	})
	s := New(Config{Clock: clock, CacheTTL: time.Minute}, src)

	got1, at1, _ := s.UsageTotals()
	got2, at2, _ := s.UsageTotals()
	if calls != 1 {
		t.Errorf("source called %d times within TTL", calls)
	}
	if got1["a"] != got2["a"] || !at1.Equal(at2) {
		t.Error("cached result differs")
	}

	clock.Advance(2 * time.Minute)
	got3, at3, _ := s.UsageTotals()
	if calls != 2 {
		t.Errorf("source called %d times after TTL expiry", calls)
	}
	if got3["a"] != 2 || !at3.After(at1) {
		t.Errorf("refreshed = %v at %v", got3, at3)
	}
}

func TestInvalidateForcesRecompute(t *testing.T) {
	clock := simclock.NewSim(t0)
	calls := 0
	src := SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
		calls++
		return nil, nil
	})
	s := New(Config{Clock: clock, CacheTTL: time.Hour}, src)
	s.UsageTotals()
	s.Invalidate()
	s.UsageTotals()
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0)},
		SourceFunc(func(time.Time, usage.Decay) (map[string]float64, error) {
			return nil, errors.New("uss down")
		}))
	if _, _, err := s.UsageTotals(); err == nil {
		t.Error("source error swallowed")
	}
}

func TestReturnedMapIsACopy(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := New(Config{Clock: clock, CacheTTL: time.Hour}, constSource(map[string]float64{"a": 1}))
	got, _, _ := s.UsageTotals()
	got["a"] = 999
	got2, _, _ := s.UsageTotals()
	if got2["a"] != 1 {
		t.Error("cache mutated through returned map")
	}
}

func TestDecayPassedToSources(t *testing.T) {
	want := usage.ExponentialHalfLife{HalfLife: time.Hour}
	var seen usage.Decay
	src := SourceFunc(func(_ time.Time, d usage.Decay) (map[string]float64, error) {
		seen = d
		return nil, nil
	})
	s := New(Config{Clock: simclock.NewSim(t0), Decay: want}, src)
	s.UsageTotals()
	if seen != want {
		t.Errorf("decay = %v", seen)
	}
	if s.Decay() != want {
		t.Error("Decay() mismatch")
	}
}

func TestAddSource(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0)})
	s.AddSource(constSource(map[string]float64{"x": 4}))
	got, _, _ := s.UsageTotals()
	if got["x"] != 4 {
		t.Errorf("totals = %v", got)
	}
}
