package ums

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/usage"
)

// mutableSource is a Source whose totals the test can rewrite between pulls.
type mutableSource struct{ totals map[string]float64 }

func (m *mutableSource) Totals(time.Time, usage.Decay) (map[string]float64, error) {
	cp := map[string]float64{}
	for k, v := range m.totals {
		cp[k] = v
	}
	return cp, nil
}

func TestUsageDeltasFirstPullIsFull(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Hour},
		constSource(map[string]float64{"a": 10, "b": 5}))
	ds, err := s.UsageDeltas(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Full {
		t.Fatalf("first pull not Full: %+v", ds)
	}
	if ds.Version == 0 {
		t.Fatal("version watermark not assigned")
	}
	if ds.Totals["a"] != 10 || ds.Totals["b"] != 5 {
		t.Fatalf("totals = %v", ds.Totals)
	}
}

func TestUsageDeltasIncrementalChain(t *testing.T) {
	clock := simclock.NewSim(t0)
	src := &mutableSource{totals: map[string]float64{"a": 10, "b": 5, "c": 2, "d": 1}}
	s := New(Config{Clock: clock, CacheTTL: time.Hour}, src)

	first, err := s.UsageDeltas(0)
	if err != nil {
		t.Fatal(err)
	}

	// One of four users changes: within the half-population threshold.
	src.totals["a"] = 12
	s.Invalidate()
	ds, err := s.UsageDeltas(first.Version)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Full {
		t.Fatalf("single-user change reported Full: %+v", ds)
	}
	if ds.Version != first.Version+1 {
		t.Fatalf("version = %d, want %d", ds.Version, first.Version+1)
	}
	if len(ds.Changed) != 1 || ds.Changed["a"] != 12 {
		t.Fatalf("changed = %v, want a:12 only", ds.Changed)
	}

	// Unchanged pull: same watermark, empty delta.
	again, err := s.UsageDeltas(ds.Version)
	if err != nil {
		t.Fatal(err)
	}
	if again.Full || len(again.Changed) != 0 || again.Version != ds.Version {
		t.Fatalf("no-op pull = %+v", again)
	}

	// Two more generations; a consumer two behind gets the merged delta.
	src.totals["b"] = 6
	s.Invalidate()
	if _, err := s.UsageDeltas(ds.Version); err != nil {
		t.Fatal(err)
	}
	delete(src.totals, "c") // user ages out entirely
	s.Invalidate()
	merged, err := s.UsageDeltas(ds.Version)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Full {
		t.Fatalf("merged delta reported Full: %+v", merged)
	}
	if len(merged.Changed) != 2 || merged.Changed["b"] != 6 || merged.Changed["c"] != 0 {
		t.Fatalf("merged changed = %v, want b:6 c:0", merged.Changed)
	}
}

func TestUsageDeltasMajorityChangeIsFullMarker(t *testing.T) {
	src := &mutableSource{totals: map[string]float64{"a": 1, "b": 2, "c": 3}}
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Hour}, src)
	first, err := s.UsageDeltas(0)
	if err != nil {
		t.Fatal(err)
	}
	src.totals["a"] = 10
	src.totals["b"] = 20 // 2 of 3 users: past the half-population threshold
	s.Invalidate()
	ds, err := s.UsageDeltas(first.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Full {
		t.Fatalf("majority change not Full: %+v", ds)
	}
	if ds.Totals["a"] != 10 || ds.Totals["b"] != 20 || ds.Totals["c"] != 3 {
		t.Fatalf("totals = %v", ds.Totals)
	}
}

func TestUsageDeltasLogOverflowFallsBackToFull(t *testing.T) {
	src := &mutableSource{totals: map[string]float64{
		"a": 1, "b": 1, "c": 1, "d": 1, "e": 1, "f": 1, "g": 1, "h": 1, "i": 1, "j": 1,
	}}
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Hour}, src)
	first, err := s.UsageDeltas(0)
	if err != nil {
		t.Fatal(err)
	}
	// More single-user generations than the log retains.
	for i := 0; i < maxDeltaGens+2; i++ {
		src.totals["a"] = float64(100 + i)
		s.Invalidate()
		if _, err := s.UsageDeltas(0); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := s.UsageDeltas(first.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Full {
		t.Fatalf("stale watermark served a delta past the log horizon: %+v", ds)
	}
	if ds.Totals["a"] != float64(100+maxDeltaGens+1) {
		t.Fatalf("totals = %v", ds.Totals)
	}
}

func TestUsageDeltasVersionStableWhenUnchanged(t *testing.T) {
	src := &mutableSource{totals: map[string]float64{"a": 1}}
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Hour}, src)
	first, err := s.UsageDeltas(0)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute with identical totals: the watermark must not advance.
	s.Invalidate()
	ds, err := s.UsageDeltas(first.Version)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Version != first.Version || ds.Full || len(ds.Changed) != 0 {
		t.Fatalf("identical recompute moved the watermark: %+v vs first %d", ds, first.Version)
	}
}

func TestUsageDeltasFutureWatermarkIsFull(t *testing.T) {
	s := New(Config{Clock: simclock.NewSim(t0), CacheTTL: time.Hour},
		constSource(map[string]float64{"a": 1}))
	ds, err := s.UsageDeltas(999)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Full {
		t.Fatalf("future watermark not Full: %+v", ds)
	}
}

func TestUsageDeltasAgreesWithUsageTotals(t *testing.T) {
	clock := simclock.NewSim(t0)
	src := &mutableSource{totals: map[string]float64{}}
	for i := 0; i < 20; i++ {
		src.totals[fmt.Sprintf("u%02d", i)] = float64(i)
	}
	s := New(Config{Clock: clock, CacheTTL: time.Hour}, src)

	ds, err := s.UsageDeltas(0)
	if err != nil {
		t.Fatal(err)
	}
	state := map[string]float64{}
	for u, v := range ds.Totals {
		state[u] = v
	}
	ver := ds.Version
	for step := 0; step < 5; step++ {
		src.totals[fmt.Sprintf("u%02d", step)] = float64(1000 + step)
		s.Invalidate()
		ds, err := s.UsageDeltas(ver)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Full {
			for u := range state {
				delete(state, u)
			}
			for u, v := range ds.Totals {
				state[u] = v
			}
		} else {
			for u, v := range ds.Changed {
				if v == 0 {
					delete(state, u)
					continue
				}
				state[u] = v
			}
		}
		ver = ds.Version

		want, _, err := s.UsageTotals()
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(state) {
			t.Fatalf("step %d: replayed %d users, totals has %d", step, len(state), len(want))
		}
		for u, v := range want {
			if state[u] != v {
				t.Fatalf("step %d: user %s replayed %v, totals %v", step, u, state[u], v)
			}
		}
	}
}
