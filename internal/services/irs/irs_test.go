package irs

import (
	"errors"
	"testing"

	"repro/internal/identity"
)

func TestResolveFromTable(t *testing.T) {
	s := New()
	if err := s.Store(identity.Mapping{GridID: "alice-dn", Site: "s", LocalUser: "grid001"}); err != nil {
		t.Fatal(err)
	}
	g, err := s.Resolve("s", "grid001")
	if err != nil || g != "alice-dn" {
		t.Errorf("Resolve = %q, %v", g, err)
	}
}

func TestResolveFallsBackToEndpoint(t *testing.T) {
	s := New()
	calls := 0
	s.SetEndpoint(EndpointFunc(func(site, local string) (string, error) {
		calls++
		if local == "grid007" {
			return "bond-dn", nil
		}
		return "", errors.New("unknown account")
	}))
	g, err := s.Resolve("s", "grid007")
	if err != nil || g != "bond-dn" {
		t.Fatalf("Resolve = %q, %v", g, err)
	}
	if calls != 1 {
		t.Errorf("endpoint calls = %d", calls)
	}
	// Memoized: second resolve hits the table.
	s.Resolve("s", "grid007")
	if calls != 1 {
		t.Errorf("endpoint consulted again despite memoization: %d", calls)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	// Endpoint errors propagate.
	if _, err := s.Resolve("s", "nobody"); err == nil {
		t.Error("endpoint error swallowed")
	}
}

func TestResolveWithoutEndpoint(t *testing.T) {
	s := New()
	if _, err := s.Resolve("s", "ghost"); !errors.Is(err, identity.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestTableWinsOverEndpoint(t *testing.T) {
	s := New()
	s.Store(identity.Mapping{GridID: "table-answer", Site: "s", LocalUser: "u"})
	s.SetEndpoint(EndpointFunc(func(string, string) (string, error) {
		return "endpoint-answer", nil
	}))
	g, _ := s.Resolve("s", "u")
	if g != "table-answer" {
		t.Errorf("Resolve = %q, table should win", g)
	}
}
