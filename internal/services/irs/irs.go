// Package irs implements the Identity Resolution Service: an auxiliary
// service that reverts the site-specific mapping from system user accounts
// back to grid user identities. Mappings come either from an explicit
// lookup table (populated by calls to the IRS) or from a custom mapping
// resolution endpoint queried with "a minimalist JSON based protocol".
package irs

import (
	"sync"

	"repro/internal/identity"
)

// Endpoint is a custom site-provided name-resolution backend (in production
// a small HTTP endpoint; in tests any function).
type Endpoint interface {
	// Resolve maps a local account at a site to a grid identity.
	Resolve(site, localUser string) (string, error)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(site, localUser string) (string, error)

// Resolve implements Endpoint.
func (f EndpointFunc) Resolve(site, localUser string) (string, error) {
	return f(site, localUser)
}

// Service is an Identity Resolution Service instance.
type Service struct {
	table *identity.Table

	mu       sync.RWMutex
	endpoint Endpoint
}

// New creates an IRS with an empty lookup table.
func New() *Service {
	return &Service{table: identity.NewTable()}
}

// SetEndpoint configures the fallback resolution endpoint.
func (s *Service) SetEndpoint(e Endpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoint = e
}

// Store records a reverse mapping in the lookup table.
func (s *Service) Store(m identity.Mapping) error { return s.table.Store(m) }

// Resolve maps (site, local account) to a grid identity: the lookup table
// first, then the custom endpoint (memoizing its answer).
func (s *Service) Resolve(site, localUser string) (string, error) {
	if g, err := s.table.ToGrid(site, localUser); err == nil {
		return g, nil
	}
	s.mu.RLock()
	ep := s.endpoint
	s.mu.RUnlock()
	if ep == nil {
		return "", identity.ErrNotFound
	}
	g, err := ep.Resolve(site, localUser)
	if err != nil {
		return "", err
	}
	_ = s.table.Store(identity.Mapping{GridID: g, Site: site, LocalUser: localUser})
	return g, nil
}

// Len reports the number of memoized mappings.
func (s *Service) Len() int { return s.table.Len() }
