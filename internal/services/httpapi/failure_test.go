package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/libaequus"
	"repro/internal/simclock"
)

// deadURL returns a base URL nothing listens on.
func deadURL(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // port released; connections now refused
	return url
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient(deadURL(t), "dead")
	c.HTTP = &http.Client{Timeout: 500 * time.Millisecond}

	if _, err := c.Priority("u"); err == nil {
		t.Error("Priority against dead server succeeded")
	}
	if _, err := c.Table(); err == nil {
		t.Error("Table against dead server succeeded")
	}
	if _, err := c.Resolve("s", "l"); err == nil {
		t.Error("Resolve against dead server succeeded")
	}
	if err := c.ReportJobErr("u", time.Now(), time.Minute, 1); err == nil {
		t.Error("ReportJobErr against dead server succeeded")
	}
	if _, err := c.RecordsSince(context.Background(), time.Time{}); err == nil {
		t.Error("RecordsSince against dead server succeeded")
	}
	if _, err := c.Policy(); err == nil {
		t.Error("Policy against dead server succeeded")
	}
	if err := c.TriggerExchange(context.Background()); err == nil {
		t.Error("TriggerExchange against dead server succeeded")
	}
	// Fire-and-forget ReportJob must not panic.
	c.ReportJob("u", time.Now(), time.Minute, 1)
}

func TestPolicyFetcherAgainstDeadOrigin(t *testing.T) {
	fetch := PolicyFetcher(&http.Client{Timeout: 500 * time.Millisecond})
	if _, err := fetch(deadURL(t) + "|/"); err == nil {
		t.Error("fetch from dead origin succeeded")
	}
}

func TestEndpointClientAgainstDeadServer(t *testing.T) {
	e := &EndpointClient{URL: deadURL(t), HTTP: &http.Client{Timeout: 500 * time.Millisecond}}
	if _, err := e.Resolve("s", "l"); err == nil {
		t.Error("endpoint resolve against dead server succeeded")
	}
}

func TestLibaequusSurvivesServiceOutage(t *testing.T) {
	// The scheduler-side flow: a live site answers, then "goes down"
	// (server closed); cached values keep answering inside the TTL, and the
	// error surfaces only after expiry.
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"alice": 1})
	c := NewClient(s.server.URL, "s")
	if err := c.StoreMapping("alice", "s", "local1"); err != nil {
		t.Fatal(err)
	}
	lib := libaequus.New(libaequus.Config{Site: "s", CacheTTL: time.Hour, Clock: clock}, c, c, c)
	v, err := lib.PriorityForLocalUser("local1")
	if err != nil {
		t.Fatal(err)
	}
	s.server.Close()

	// Within the TTL the cache answers.
	v2, err := lib.PriorityForLocalUser("local1")
	if err != nil || v2 != v {
		t.Errorf("cached answer after outage = %g, %v", v2, err)
	}
	// After expiry the outage surfaces.
	clock.Advance(2 * time.Hour)
	if _, err := lib.PriorityForLocalUser("local1"); err == nil {
		t.Error("expired cache should surface the outage")
	}
}

func TestExchangeSurvivesDeadPeer(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"alice": 1})
	dead := NewClient(deadURL(t), "dead")
	dead.HTTP = &http.Client{Timeout: 500 * time.Millisecond}
	s.uss.AddPeer(dead)
	if _, err := s.uss.Exchange(context.Background()); err == nil {
		t.Error("exchange with dead peer should report an error")
	}
	// The site keeps operating.
	if _, err := NewClient(s.server.URL, "s").Table(); err != nil {
		t.Errorf("site unusable after failed exchange: %v", err)
	}
}
