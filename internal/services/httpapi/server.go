// Package httpapi exposes the Aequus services over HTTP/JSON and provides
// the matching clients. One Server bundles a site's full Aequus stack (PDS,
// USS, UMS, FCS, IRS) behind a single mux — the deployment unit the paper
// installs alongside each cluster — while the clients let remote sites,
// libaequus instances and custom identity endpoints interoperate.
package httpapi

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/durability"
	"repro/internal/identity"
	"repro/internal/policy"
	"repro/internal/services/fcs"
	"repro/internal/services/irs"
	"repro/internal/services/pds"
	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/vector"
	"repro/internal/wire"
)

// DefaultReadyMaxStale is the /readyz staleness threshold used when
// ServerOptions leaves ReadyMaxStale zero.
const DefaultReadyMaxStale = 5 * time.Minute

// ServerOptions tunes a Server's observability wiring.
type ServerOptions struct {
	// Registry receives the HTTP instruments and is served at /metrics
	// (default: telemetry.Default()).
	Registry *telemetry.Registry
	// Log receives per-request debug records and service lifecycle events
	// (default: slog.Default()).
	Log *slog.Logger
	// ReadyMaxStale is how old the FCS/UMS pre-computation may be before
	// /readyz reports 503 (default DefaultReadyMaxStale; negative disables
	// the staleness check).
	ReadyMaxStale time.Duration
	// Clock measures pre-computation age for /readyz; it must be the same
	// clock the services run on (default wall clock).
	Clock simclock.Clock
	// Spans enables span tracing: every instrumented route records an
	// "http.server" span (linked to a remote parent via span.ParentHeader),
	// and the recorder is served at /debug/aequus. Nil disables both.
	Spans *span.Recorder
	// Durability, when set, adds a "durability" component to /readyz: not
	// ready while the WAL tail is replaying ("recovering", with progress)
	// and until the owner marks the first post-replay fairshare publish
	// done — a restarted site keeps answering data requests from the
	// recovered snapshot but is not advertised to load balancers until its
	// published priorities reflect the replayed state.
	Durability *durability.Log
}

// Server serves a site's Aequus services over HTTP. Every route is
// instrumented with request/error counters, an in-flight gauge and a
// latency histogram labeled by route, exposed at /metrics; request IDs are
// propagated per telemetry.RequestIDHeader.
type Server struct {
	PDS *pds.Service
	USS *uss.Service
	UMS *ums.Service
	FCS *fcs.Service
	IRS *irs.Service

	registry      *telemetry.Registry
	log           *slog.Logger
	readyMaxStale time.Duration
	clock         simclock.Clock
	spans         *span.Recorder
	durable       *durability.Log
	mux           *http.ServeMux
}

// NewServer wires the handlers with default observability options. Any nil
// service leaves its endpoints unregistered.
func NewServer(p *pds.Service, u *uss.Service, m *ums.Service, f *fcs.Service, i *irs.Service) *Server {
	return NewServerWith(p, u, m, f, i, ServerOptions{})
}

// NewServerWith wires the handlers with explicit observability options.
func NewServerWith(p *pds.Service, u *uss.Service, m *ums.Service, f *fcs.Service, i *irs.Service, o ServerOptions) *Server {
	if o.Log == nil {
		o.Log = slog.Default()
	}
	if o.ReadyMaxStale == 0 {
		o.ReadyMaxStale = DefaultReadyMaxStale
	}
	if o.Clock == nil {
		o.Clock = simclock.Real{}
	}
	s := &Server{
		PDS: p, USS: u, UMS: m, FCS: f, IRS: i,
		registry:      telemetry.OrDefault(o.Registry),
		log:           o.Log,
		readyMaxStale: o.ReadyMaxStale,
		clock:         o.Clock,
		spans:         o.Spans,
		durable:       o.Durability,
		mux:           http.NewServeMux(),
	}
	httpm := telemetry.NewHTTPMetrics(s.registry, s.log)
	handle := func(route string, h http.HandlerFunc) {
		// Instrument runs outermost so the request ID is already on the
		// context when the span middleware resolves its trace ID.
		s.mux.Handle(route, httpm.Instrument(route, s.traced(route, h)))
	}
	if p != nil {
		handle("/policy", s.handlePolicy)
		handle("/policy/subtree", s.handlePolicySubtree)
		handle("/policy/mount", s.handlePolicyMount)
		handle("/policy/refresh", s.handlePolicyRefresh)
	}
	if u != nil {
		handle("/usage", s.handleUsageReport)
		handle("/usage/batch", s.handleUsageBatch)
		handle("/usage/records", s.handleUsageRecords)
		handle("/usage/exchange", s.handleUsageExchange)
	}
	if m != nil {
		handle("/usage/tree", s.handleUsageTree)
	}
	if f != nil {
		handle("/fairshare", s.handleFairshare)
		handle("/fairshare/batch", s.handleFairshareBatch)
		handle("/fairshare/refresh", s.handleFairshareRefresh)
		handle("/fairshare/projection", s.handleProjection)
	}
	if i != nil {
		handle("/identity/mapping", s.handleMapping)
		handle("/identity/resolve", s.handleResolve)
	}
	s.mux.Handle("/metrics", s.registry.Handler())
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	handle("/readyz", s.handleReadyz)
	if s.spans != nil {
		handle("/debug/aequus", s.handleDebugSummary)
		handle("/debug/aequus/traces", s.handleDebugTraces)
		handle("/debug/aequus/spans", s.handleDebugSpans)
		handle("/debug/aequus/drift", s.handleDebugDrift)
	}
	return s
}

// traced wraps a handler in an "http.server" span: the trace ID comes from
// the request ID the Instrument middleware put on the context, and a
// span.ParentHeader sent by the calling site links this span under the
// caller's span, making one exchange traceable across the federation.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.spans == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := span.WithRecorder(r.Context(), s.spans)
		if pid := span.ParseID(r.Header.Get(span.ParentHeader)); pid != 0 {
			ctx = span.WithRemoteParent(ctx, pid)
		}
		ctx, sp := span.Start(ctx, "http.server")
		sp.SetAttr("route", route)
		sp.SetAttr("method", r.Method)
		defer sp.End()
		h(w, r.WithContext(ctx))
	}
}

// Registry returns the registry served at /metrics.
func (s *Server) Registry() *telemetry.Registry { return s.registry }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		data, err := policy.ToJSON(s.PDS.Policy())
		if err != nil {
			wire.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case http.MethodPost:
		body := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
			if len(body) > 8<<20 {
				wire.WriteError(w, http.StatusRequestEntityTooLarge, "policy too large")
				return
			}
		}
		t, err := policy.FromJSON(body)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.PDS.SetPolicy(t); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) handlePolicySubtree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	path := r.URL.Query().Get("path")
	sub, err := s.PDS.Subtree(path)
	if err != nil {
		wire.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, sub)
}

func (s *Server) handlePolicyMount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req wire.MountRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.PDS.Mount(req.ParentPath, req.Name, req.Share, req.Origin); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handlePolicyRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	if err := s.PDS.RefreshMounts(); err != nil {
		wire.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleUsageReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var rep wire.UsageReport
	if err := wire.ReadJSON(r.Body, &rep); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if rep.User == "" || rep.DurationSeconds < 0 {
		wire.WriteError(w, http.StatusBadRequest, "invalid usage report")
		return
	}
	s.USS.ReportJob(rep.User, rep.Start,
		time.Duration(rep.DurationSeconds*float64(time.Second)), rep.Procs)
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleUsageBatch ingests many job completions in one request. The whole
// batch is validated before any report lands, so a malformed entry rejects
// the request instead of half-applying it.
func (s *Server) handleUsageBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req wire.UsageBatchRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs := make([]uss.JobReport, len(req.Reports))
	for i, rep := range req.Reports {
		if rep.User == "" || rep.DurationSeconds < 0 {
			wire.WriteError(w, http.StatusBadRequest, "invalid usage report at index %d", i)
			return
		}
		jobs[i] = uss.JobReport{
			User:     rep.User,
			Start:    rep.Start,
			Duration: time.Duration(rep.DurationSeconds * float64(time.Second)),
			Procs:    rep.Procs,
		}
	}
	s.USS.ReportJobBatch(jobs)
	wire.WriteJSON(w, http.StatusOK, map[string]int{"reports": len(jobs)})
}

func (s *Server) handleUsageRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var since time.Time
	if q := r.URL.Query().Get("since"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, "bad since: %v", err)
			return
		}
		since = t
	}
	recs, err := s.USS.RecordsSince(r.Context(), since)
	if err != nil {
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.RecordsResponse{Records: recs})
}

func (s *Server) handleUsageExchange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	// The request context carries the request ID, so the triggered peer
	// pulls propagate it across the site hop.
	n, err := s.USS.Exchange(r.Context())
	if err != nil {
		wire.WriteError(w, http.StatusBadGateway, "exchange: %v (after %d records)", err, n)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]int{"records": n})
}

func (s *Server) handleUsageTree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	totals, at, err := s.UMS.UsageTotals()
	if err != nil {
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.UsageTreeResponse{Totals: totals, ComputedAt: at})
}

func (s *Server) handleFairshare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	user := r.URL.Query().Get("user")
	if user == "" {
		tab, err := s.FCS.Table()
		if err != nil {
			wire.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, tab)
		return
	}
	resp, err := s.FCS.Priority(user)
	if err != nil {
		if errors.Is(err, fcs.ErrUnknownUser) {
			wire.WriteError(w, http.StatusNotFound, "%v", err)
			return
		}
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

// handleFairshareBatch resolves a whole queue of users against one
// fairshare snapshot — one request, one snapshot load, N map lookups.
func (s *Server) handleFairshareBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req wire.FairshareBatchRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.FCS.PriorityBatch(req.Users)
	if err != nil {
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFairshareRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	if err := s.FCS.Refresh(); err != nil {
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleProjection(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, ok := vector.ByName(req.Name)
	if !ok {
		wire.WriteError(w, http.StatusBadRequest, "unknown projection %q", req.Name)
		return
	}
	s.FCS.SetProjection(p)
	wire.WriteJSON(w, http.StatusOK, map[string]string{"projection": p.Name()})
}

// handleReadyz reports per-service readiness. The stateless services are
// ready by existing; FCS and UMS are ready once their pre-computation is
// fresh enough (ComputedAt within ReadyMaxStale). Any stale or never-run
// pre-computation turns the whole endpoint 503, which is what a load
// balancer or orchestrator should act on.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	now := s.clock.Now()
	resp := wire.ReadyResponse{Ready: true, Components: map[string]wire.ReadyComponent{}}
	if s.PDS != nil {
		resp.Components["pds"] = wire.ReadyComponent{Ready: true}
	}
	if s.USS != nil {
		resp.Components["uss"] = s.ussStatus(now)
	}
	if s.IRS != nil {
		resp.Components["irs"] = wire.ReadyComponent{Ready: true}
	}
	if s.UMS != nil {
		resp.Components["ums"] = s.precomputeStatus(now, s.UMS.ComputedAt())
	}
	if s.FCS != nil {
		c := s.precomputeStatus(now, s.FCS.ComputedAt())
		// A failing background refresh (stale-while-revalidate) is invisible
		// to readers — they keep getting the old snapshot — so surface it
		// here for operators even while the snapshot is still fresh enough.
		if err := s.FCS.LastRefreshError(); err != nil {
			if c.Reason != "" {
				c.Reason += "; "
			}
			c.Reason += "last refresh failed: " + err.Error()
		}
		resp.Components["fcs"] = c
	}
	if s.durable != nil {
		resp.Components["durability"] = s.durabilityStatus()
	}
	for _, c := range resp.Components {
		if !c.Ready {
			resp.Ready = false
		}
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	wire.WriteJSON(w, code, resp)
}

// durabilityStatus reports crash-recovery progress. The component is not
// ready while the WAL tail replays, and stays not ready after replay until
// the owner calls MarkReady following the first post-replay fairshare
// publish — between those points the site serves recovered data but its
// published priorities may still predate the crash.
func (s *Server) durabilityStatus() wire.ReadyComponent {
	d := s.durable
	if d.Recovering() {
		done, total := d.ReplayProgress()
		return wire.ReadyComponent{
			Reason: fmt.Sprintf("recovering: replaying WAL (%d/%d records)", done, total),
		}
	}
	if !d.Ready() {
		return wire.ReadyComponent{
			Reason: "recovered: awaiting first fairshare publish",
		}
	}
	return wire.ReadyComponent{Ready: true}
}

// ussStatus reports the USS component with per-peer exchange health. A
// degraded peer — open breaker, consecutive failures, or a pull older than
// ReadyMaxStale — is named in Reason but does not flip Ready: local priority
// serving works without that peer, and the global picture merely lags
// (Section IV's partial-exchange degradation, not an outage).
func (s *Server) ussStatus(now time.Time) wire.ReadyComponent {
	c := wire.ReadyComponent{Ready: true}
	var degraded []string
	for _, p := range s.USS.PeerStatuses() {
		ps := wire.PeerStatus{
			Site:                p.Site,
			Breaker:             p.Breaker,
			LastSuccess:         p.LastSuccess,
			StalenessSeconds:    -1,
			ConsecutiveFailures: p.ConsecutiveFailures,
			LastError:           p.LastError,
		}
		if !p.LastSuccess.IsZero() {
			ps.StalenessSeconds = now.Sub(p.LastSuccess).Seconds()
		}
		c.Peers = append(c.Peers, ps)
		switch {
		case p.Breaker == "open":
			degraded = append(degraded, p.Site+" (circuit open)")
		case p.ConsecutiveFailures > 0:
			degraded = append(degraded, p.Site+" (failing)")
		case s.readyMaxStale > 0 && !p.LastSuccess.IsZero() && now.Sub(p.LastSuccess) > s.readyMaxStale:
			degraded = append(degraded, p.Site+" (stale)")
		}
	}
	if len(degraded) > 0 {
		c.Reason = "degraded peers: " + strings.Join(degraded, ", ")
	}
	return c
}

func (s *Server) precomputeStatus(now, computedAt time.Time) wire.ReadyComponent {
	c := wire.ReadyComponent{ComputedAt: computedAt}
	switch {
	case computedAt.IsZero():
		c.Reason = "no pre-computation yet"
	default:
		c.AgeSeconds = now.Sub(computedAt).Seconds()
		if s.readyMaxStale > 0 && now.Sub(computedAt) > s.readyMaxStale {
			c.Reason = "pre-computation stale"
		} else {
			c.Ready = true
		}
	}
	return c
}

func (s *Server) handleMapping(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req wire.MappingRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m := identity.Mapping{GridID: req.GridID, Site: req.Site, LocalUser: req.LocalUser}
	if err := s.IRS.Store(m); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		site := r.URL.Query().Get("site")
		local := r.URL.Query().Get("local")
		g, err := s.IRS.Resolve(site, local)
		if err != nil {
			wire.WriteError(w, http.StatusNotFound, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, wire.ResolveResponse{GridID: g})
	case http.MethodPost:
		// The minimalist JSON protocol shared with custom endpoints.
		var req wire.ResolveRequest
		if err := wire.ReadJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		g, err := s.IRS.Resolve(req.Site, req.LocalUser)
		if err != nil {
			wire.WriteError(w, http.StatusNotFound, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, wire.ResolveResponse{GridID: g})
	default:
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}
