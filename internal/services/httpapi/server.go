// Package httpapi exposes the Aequus services over HTTP/JSON and provides
// the matching clients. One Server bundles a site's full Aequus stack (PDS,
// USS, UMS, FCS, IRS) behind a single mux — the deployment unit the paper
// installs alongside each cluster — while the clients let remote sites,
// libaequus instances and custom identity endpoints interoperate.
package httpapi

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/identity"
	"repro/internal/policy"
	"repro/internal/services/fcs"
	"repro/internal/services/irs"
	"repro/internal/services/pds"
	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/vector"
	"repro/internal/wire"
)

// Server serves a site's Aequus services over HTTP.
type Server struct {
	PDS *pds.Service
	USS *uss.Service
	UMS *ums.Service
	FCS *fcs.Service
	IRS *irs.Service

	mux *http.ServeMux
}

// NewServer wires the handlers. Any nil service leaves its endpoints
// unregistered.
func NewServer(p *pds.Service, u *uss.Service, m *ums.Service, f *fcs.Service, i *irs.Service) *Server {
	s := &Server{PDS: p, USS: u, UMS: m, FCS: f, IRS: i, mux: http.NewServeMux()}
	if p != nil {
		s.mux.HandleFunc("/policy", s.handlePolicy)
		s.mux.HandleFunc("/policy/subtree", s.handlePolicySubtree)
		s.mux.HandleFunc("/policy/mount", s.handlePolicyMount)
		s.mux.HandleFunc("/policy/refresh", s.handlePolicyRefresh)
	}
	if u != nil {
		s.mux.HandleFunc("/usage", s.handleUsageReport)
		s.mux.HandleFunc("/usage/records", s.handleUsageRecords)
		s.mux.HandleFunc("/usage/exchange", s.handleUsageExchange)
	}
	if m != nil {
		s.mux.HandleFunc("/usage/tree", s.handleUsageTree)
	}
	if f != nil {
		s.mux.HandleFunc("/fairshare", s.handleFairshare)
		s.mux.HandleFunc("/fairshare/refresh", s.handleFairshareRefresh)
		s.mux.HandleFunc("/fairshare/projection", s.handleProjection)
	}
	if i != nil {
		s.mux.HandleFunc("/identity/mapping", s.handleMapping)
		s.mux.HandleFunc("/identity/resolve", s.handleResolve)
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		data, err := policy.ToJSON(s.PDS.Policy())
		if err != nil {
			wire.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case http.MethodPost:
		body := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
			if len(body) > 8<<20 {
				wire.WriteError(w, http.StatusRequestEntityTooLarge, "policy too large")
				return
			}
		}
		t, err := policy.FromJSON(body)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.PDS.SetPolicy(t); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) handlePolicySubtree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	path := r.URL.Query().Get("path")
	sub, err := s.PDS.Subtree(path)
	if err != nil {
		wire.WriteError(w, http.StatusNotFound, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, sub)
}

func (s *Server) handlePolicyMount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req wire.MountRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.PDS.Mount(req.ParentPath, req.Name, req.Share, req.Origin); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handlePolicyRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	if err := s.PDS.RefreshMounts(); err != nil {
		wire.WriteError(w, http.StatusBadGateway, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleUsageReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var rep wire.UsageReport
	if err := wire.ReadJSON(r.Body, &rep); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if rep.User == "" || rep.DurationSeconds < 0 {
		wire.WriteError(w, http.StatusBadRequest, "invalid usage report")
		return
	}
	s.USS.ReportJob(rep.User, rep.Start,
		time.Duration(rep.DurationSeconds*float64(time.Second)), rep.Procs)
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleUsageRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var since time.Time
	if q := r.URL.Query().Get("since"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, "bad since: %v", err)
			return
		}
		since = t
	}
	recs, err := s.USS.RecordsSince(since)
	if err != nil {
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.RecordsResponse{Records: recs})
}

func (s *Server) handleUsageExchange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	n, err := s.USS.Exchange()
	if err != nil {
		wire.WriteError(w, http.StatusBadGateway, "exchange: %v (after %d records)", err, n)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]int{"records": n})
}

func (s *Server) handleUsageTree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	totals, at, err := s.UMS.UsageTotals()
	if err != nil {
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.UsageTreeResponse{Totals: totals, ComputedAt: at})
}

func (s *Server) handleFairshare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	user := r.URL.Query().Get("user")
	if user == "" {
		tab, err := s.FCS.Table()
		if err != nil {
			wire.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, tab)
		return
	}
	resp, err := s.FCS.Priority(user)
	if err != nil {
		if errors.Is(err, fcs.ErrUnknownUser) {
			wire.WriteError(w, http.StatusNotFound, "%v", err)
			return
		}
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFairshareRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	if err := s.FCS.Refresh(); err != nil {
		wire.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleProjection(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p, ok := vector.ByName(req.Name)
	if !ok {
		wire.WriteError(w, http.StatusBadRequest, "unknown projection %q", req.Name)
		return
	}
	s.FCS.SetProjection(p)
	wire.WriteJSON(w, http.StatusOK, map[string]string{"projection": p.Name()})
}

func (s *Server) handleMapping(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var req wire.MappingRequest
	if err := wire.ReadJSON(r.Body, &req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m := identity.Mapping{GridID: req.GridID, Site: req.Site, LocalUser: req.LocalUser}
	if err := s.IRS.Store(m); err != nil {
		wire.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		site := r.URL.Query().Get("site")
		local := r.URL.Query().Get("local")
		g, err := s.IRS.Resolve(site, local)
		if err != nil {
			wire.WriteError(w, http.StatusNotFound, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, wire.ResolveResponse{GridID: g})
	case http.MethodPost:
		// The minimalist JSON protocol shared with custom endpoints.
		var req wire.ResolveRequest
		if err := wire.ReadJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		g, err := s.IRS.Resolve(req.Site, req.LocalUser)
		if err != nil {
			wire.WriteError(w, http.StatusNotFound, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, wire.ResolveResponse{GridID: g})
	default:
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}
