package httpapi

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/libaequus"
	"repro/internal/policy"
	"repro/internal/services/fcs"
	"repro/internal/services/irs"
	"repro/internal/services/pds"
	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/simclock"
	"repro/internal/usage"
	"repro/internal/wire"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

// site bundles one site's full stack plus its test server.
type site struct {
	name   string
	clock  *simclock.Sim
	pds    *pds.Service
	uss    *uss.Service
	ums    *ums.Service
	fcs    *fcs.Service
	irs    *irs.Service
	server *httptest.Server
}

func newSite(t *testing.T, name string, clock *simclock.Sim, shares map[string]float64) *site {
	t.Helper()
	pol, err := policy.FromShares(shares)
	if err != nil {
		t.Fatal(err)
	}
	p := pds.New(pol, PolicyFetcher(nil))
	u := uss.New(uss.Config{Site: name, BinWidth: time.Minute, Contribute: true, Clock: clock})
	m := ums.New(ums.Config{Clock: clock, CacheTTL: 0},
		ums.SourceFunc(func(now time.Time, d usage.Decay) (map[string]float64, error) {
			return u.GlobalTotals(now, d), nil
		}))
	f := fcs.New(fcs.Config{Clock: clock, CacheTTL: 0, Fairshare: fairshare.DefaultConfig()}, p, m)
	i := irs.New()
	srv := httptest.NewServer(NewServer(p, u, m, f, i))
	t.Cleanup(srv.Close)
	return &site{name: name, clock: clock, pds: p, uss: u, ums: m, fcs: f, irs: i, server: srv}
}

func TestFullStackOverHTTP(t *testing.T) {
	clock := simclock.NewSim(t0)
	shares := map[string]float64{"alice": 0.5, "bob": 0.5}
	a := newSite(t, "siteA", clock, shares)
	b := newSite(t, "siteB", clock, shares)

	// Wire USS exchange over HTTP: each site pulls the other's records.
	a.uss.AddPeer(NewClient(b.server.URL, "siteB"))
	b.uss.AddPeer(NewClient(a.server.URL, "siteA"))

	// Identity mappings over HTTP.
	ca := NewClient(a.server.URL, "siteA")
	if err := ca.StoreMapping("alice", "siteA", "grid001"); err != nil {
		t.Fatal(err)
	}
	if err := ca.StoreMapping("bob", "siteA", "grid002"); err != nil {
		t.Fatal(err)
	}

	// libaequus talking to site A entirely over HTTP.
	lib := libaequus.New(libaequus.Config{Site: "siteA", CacheTTL: 0, Clock: clock}, ca, ca, ca)

	// bob burns an hour of compute on site B; the usage flows B → A via
	// exchange and shifts priorities on A.
	cb := NewClient(b.server.URL, "siteB")
	if err := cb.ReportJobErr("bob", t0, time.Hour, 1); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	if err := ca.TriggerExchange(context.Background()); err != nil {
		t.Fatal(err)
	}

	pAlice, err := lib.PriorityForLocalUser("grid001")
	if err != nil {
		t.Fatal(err)
	}
	pBob, err := lib.PriorityForLocalUser("grid002")
	if err != nil {
		t.Fatal(err)
	}
	if pAlice <= pBob {
		t.Errorf("alice (idle) = %g should outrank bob (used remotely) = %g", pAlice, pBob)
	}
}

func TestJobCompletionRoundTrip(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"alice": 1})
	c := NewClient(s.server.URL, "s")
	if err := c.StoreMapping("alice", "s", "local1"); err != nil {
		t.Fatal(err)
	}
	lib := libaequus.New(libaequus.Config{Site: "s", CacheTTL: 0, Clock: clock}, c, c, c)
	if err := lib.JobComplete("local1", t0, 30*time.Minute, 2); err != nil {
		t.Fatal(err)
	}
	got := s.uss.LocalTotals(t0.Add(time.Hour), usage.None{})
	if math.Abs(got["alice"]-3600) > 1e-6 {
		t.Errorf("usage after completion = %v", got)
	}
}

func TestFairshareTableEndpoint(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 0.7, "b": 0.3})
	c := NewClient(s.server.URL, "s")
	tab, err := c.Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Entries) != 2 || tab.Projection != "percental" {
		t.Errorf("table = %+v", tab)
	}
}

func TestFairshareBatchEndpoint(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	c := NewClient(s.server.URL, "s")

	resp, err := c.PriorityBatch([]string{"a", "b", "c", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) != 3 {
		t.Fatalf("entries = %+v", resp.Entries)
	}
	if len(resp.Missing) != 1 || resp.Missing[0] != "ghost" {
		t.Errorf("missing = %v, want [ghost]", resp.Missing)
	}
	if resp.Projection != "percental" || resp.ComputedAt.IsZero() {
		t.Errorf("batch metadata = %q at %v", resp.Projection, resp.ComputedAt)
	}
	// One snapshot serves the whole batch: every entry carries the batch's
	// ComputedAt, and each value matches the single-user endpoint.
	for _, e := range resp.Entries {
		if e.ComputedAt != resp.ComputedAt {
			t.Errorf("entry %s from a different snapshot: %v vs %v", e.User, e.ComputedAt, resp.ComputedAt)
		}
		single, err := c.Priority(e.User)
		if err != nil {
			t.Fatal(err)
		}
		if single.Value != e.Value {
			t.Errorf("%s: batch value %g, single value %g", e.User, e.Value, single.Value)
		}
	}

	// libaequus over HTTP takes the batch path transparently: local "la"
	// maps to grid user "a", local "nobody" fails resolution and is skipped.
	if _, ok := interface{}(c).(libaequus.BatchFairshareSource); !ok {
		t.Fatal("httpapi.Client does not implement BatchFairshareSource")
	}
	if err := c.StoreMapping("a", "s", "la"); err != nil {
		t.Fatal(err)
	}
	lib := libaequus.New(libaequus.Config{Site: "s", CacheTTL: time.Minute, Clock: clock}, c, c, c)
	got, err := lib.PrioritiesForLocalUsers([]string{"la", "nobody"})
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := c.Priority("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["la"] != wantA.Value {
		t.Errorf("priorities = %v, want la=%g only", got, wantA.Value)
	}

	// Method discipline: GET is rejected.
	httpResp, err := http.Get(s.server.URL + "/fairshare/batch")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /fairshare/batch = %d, want 405", httpResp.StatusCode)
	}
}

func TestUnknownUserIs404(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 1})
	c := NewClient(s.server.URL, "s")
	_, err := c.Priority("ghost")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("err = %v", err)
	}
}

func TestPolicyEndpoints(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 1})
	c := NewClient(s.server.URL, "s")

	got, err := c.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Lookup("/a"); err != nil {
		t.Error("policy fetch lost /a")
	}

	// Replace the policy remotely.
	p2, _ := policy.FromShares(map[string]float64{"x": 0.4, "y": 0.6})
	if err := c.SetPolicy(p2); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Policy()
	if _, err := got.Lookup("/y"); err != nil {
		t.Error("policy replace did not apply")
	}

	// Subtree fetch.
	sub, err := c.Subtree("/x")
	if err != nil || sub.Name != "x" {
		t.Errorf("subtree = %+v, %v", sub, err)
	}
	if _, err := c.Subtree("/nope"); err == nil {
		t.Error("missing subtree accepted")
	}
}

func TestPDSMountOverHTTP(t *testing.T) {
	clock := simclock.NewSim(t0)
	national := newSite(t, "national", clock, map[string]float64{"va": 0.25, "vb": 0.75})
	local := newSite(t, "local", clock, map[string]float64{"own": 1})

	c := NewClient(local.server.URL, "local")
	origin := national.server.URL + "|/"
	if err := c.Mount("", "grid", 3, origin); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Policy()
	n, err := got.Lookup("/grid/vb")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.Share-0.75) > 1e-12 {
		t.Errorf("mounted share = %g", n.Share)
	}

	// National policy changes; refresh propagates it.
	p2, _ := policy.FromShares(map[string]float64{"vc": 1})
	if err := NewClient(national.server.URL, "national").SetPolicy(p2); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(local.server.URL+"/policy/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.DecodeResponse(resp, nil); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Policy()
	if _, err := got.Lookup("/grid/vc"); err != nil {
		t.Error("refresh did not propagate the national policy change")
	}
}

func TestIRSCustomEndpointProtocol(t *testing.T) {
	// A site-provided name-resolution endpoint speaking the minimalist JSON
	// protocol.
	endpoint := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req wire.ResolveRequest
		if err := wire.ReadJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if !strings.HasPrefix(req.LocalUser, "gx") {
			wire.WriteError(w, http.StatusNotFound, "not a grid account")
			return
		}
		wire.WriteJSON(w, http.StatusOK, wire.ResolveResponse{GridID: "dn-" + req.LocalUser})
	}))
	defer endpoint.Close()

	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 1})
	s.irs.SetEndpoint(&EndpointClient{URL: endpoint.URL})

	c := NewClient(s.server.URL, "s")
	g, err := c.Resolve("s", "gx42")
	if err != nil || g != "dn-gx42" {
		t.Errorf("Resolve = %q, %v", g, err)
	}
	if _, err := c.Resolve("s", "plain"); err == nil {
		t.Error("unresolvable account accepted")
	}
	// Memoized in the IRS table now.
	if s.irs.Len() != 1 {
		t.Errorf("IRS table size = %d", s.irs.Len())
	}
}

func TestProjectionSwitchEndpoint(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 0.5, "b": 0.5})
	c := NewClient(s.server.URL, "s")

	if err := c.post(context.Background(), "/fairshare/projection", map[string]string{"name": "dictionary"}, nil); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table()
	if tab.Projection != "dictionary" {
		t.Errorf("projection = %q", tab.Projection)
	}
	if err := c.post(context.Background(), "/fairshare/projection", map[string]string{"name": "bogus"}, nil); err == nil {
		t.Error("unknown projection accepted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 1})
	for _, ep := range []string{"/policy/mount", "/usage", "/fairshare/refresh", "/identity/mapping"} {
		resp, err := http.Get(s.server.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", ep, resp.StatusCode)
		}
	}
	resp, err := http.Post(s.server.URL+"/usage/records", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /usage/records = %d", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 1})
	post := func(path, body string) int {
		resp, err := http.Post(s.server.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/usage", `{bad json`); code != http.StatusBadRequest {
		t.Errorf("malformed usage = %d", code)
	}
	if code := post("/usage", `{"user":"","durationSeconds":5}`); code != http.StatusBadRequest {
		t.Errorf("empty user = %d", code)
	}
	if code := post("/usage", `{"user":"u","durationSeconds":-1}`); code != http.StatusBadRequest {
		t.Errorf("negative duration = %d", code)
	}
	if code := post("/identity/mapping", `{"gridId":"","site":"s","localUser":"l"}`); code != http.StatusBadRequest {
		t.Errorf("empty grid id = %d", code)
	}
	resp, _ := http.Get(s.server.URL + "/usage/records?since=notatime")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since = %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"a": 1})
	resp, err := http.Get(s.server.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}
