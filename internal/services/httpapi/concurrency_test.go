package httpapi

import (
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

// TestConcurrentClients hammers one site with parallel priority queries,
// usage reports and exchanges — the batched-submission scenario libaequus'
// cache exists for. Run with -race in CI to catch data races across the
// service stack.
func TestConcurrentClients(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "s", clock, map[string]float64{"alice": 0.5, "bob": 0.5})
	c := NewClient(s.server.URL, "s")
	if err := c.StoreMapping("alice", "s", "la"); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreMapping("bob", "s", "lb"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := NewClient(s.server.URL, "s")
			for i := 0; i < 40; i++ {
				switch (w + i) % 4 {
				case 0:
					if _, err := cli.Priority("alice"); err != nil {
						errs <- err
						return
					}
				case 1:
					if err := cli.ReportJobErr("bob", t0, time.Minute, 1); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := cli.Table(); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := cli.Resolve("s", "la"); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The stack still answers coherently afterwards.
	if err := s.fcs.Refresh(); err != nil {
		t.Fatal(err)
	}
	pa, err := c.Priority("alice")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := c.Priority("bob")
	if pa.Value <= pb.Value {
		t.Errorf("alice=%g should outrank bob=%g after bob's reported usage", pa.Value, pb.Value)
	}
}
