package httpapi

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/usage"
	"repro/internal/wire"
)

// TestUsageBatchIngest drives the batch-ingest route the macro load harness
// uses: many job completions land in one POST and accumulate exactly like
// the equivalent sequence of single reports.
func TestUsageBatchIngest(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "siteA", clock, map[string]float64{"alice": 0.5, "bob": 0.5})
	c := NewClient(s.server.URL, "siteA")

	// Jobs that completed just before t0 (completion-time attribution puts
	// them in bins at or before "now").
	err := c.ReportJobBatch([]wire.UsageReport{
		{User: "alice", Start: t0.Add(-2 * time.Hour), DurationSeconds: 3600, Procs: 2},
		{User: "alice", Start: t0.Add(-90 * time.Minute), DurationSeconds: 1800, Procs: 1},
		{User: "bob", Start: t0.Add(-time.Hour), DurationSeconds: 1800, Procs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	clock.Advance(time.Minute)
	totals := s.uss.GlobalTotals(clock.Now(), usage.None{})
	if got, want := totals["alice"], 2*3600.0+1800.0; got != want {
		t.Errorf("alice core-seconds = %v, want %v", got, want)
	}
	if got, want := totals["bob"], 1800.0; got != want {
		t.Errorf("bob core-seconds = %v, want %v", got, want)
	}
}

// TestUsageBatchRejectsInvalid: one bad report poisons the whole batch with
// a 400 and nothing is ingested — partial application would make retries
// (which the client never does for ingest) double-count the good entries.
func TestUsageBatchRejectsInvalid(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "siteA", clock, map[string]float64{"alice": 1})
	c := NewClient(s.server.URL, "siteA")

	err := c.ReportJobBatch([]wire.UsageReport{
		{User: "alice", Start: t0.Add(-time.Hour), DurationSeconds: 3600, Procs: 1},
		{User: "", Start: t0.Add(-time.Hour), DurationSeconds: 60, Procs: 1},
	})
	if err == nil {
		t.Fatal("batch with empty user accepted")
	}
	err = c.ReportJobBatch([]wire.UsageReport{
		{User: "alice", Start: t0.Add(-time.Hour), DurationSeconds: -5, Procs: 1},
	})
	if err == nil {
		t.Fatal("batch with negative duration accepted")
	}

	clock.Advance(time.Minute)
	if totals := s.uss.GlobalTotals(clock.Now(), usage.None{}); len(totals) != 0 {
		t.Errorf("rejected batches still ingested usage: %v", totals)
	}
}

func TestUsageBatchMethodAndBody(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newSite(t, "siteA", clock, map[string]float64{"alice": 1})

	resp, err := http.Get(s.server.URL + "/usage/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /usage/batch = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(s.server.URL+"/usage/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
}
