package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/libaequus"
	"repro/internal/policy"
	"repro/internal/services/fcs"
	"repro/internal/services/irs"
	"repro/internal/services/pds"
	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// syncBuffer is a goroutine-safe log sink for capturing access logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newObservedSite is newSite with explicit observability wiring: the
// services and the server share opts.Registry (or the default), and the
// server takes opts verbatim.
func newObservedSite(t *testing.T, name string, clock *simclock.Sim, shares map[string]float64, opts ServerOptions) *site {
	t.Helper()
	pol, err := policy.FromShares(shares)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.OrDefault(opts.Registry)
	p := pds.New(pol, PolicyFetcher(nil))
	u := uss.New(uss.Config{Site: name, BinWidth: time.Minute, Contribute: true, Clock: clock, Metrics: reg})
	m := ums.New(ums.Config{Clock: clock, CacheTTL: 0, Metrics: reg},
		ums.SourceFunc(func(now time.Time, d usage.Decay) (map[string]float64, error) {
			return u.GlobalTotals(now, d), nil
		}))
	f := fcs.New(fcs.Config{Clock: clock, CacheTTL: 0, Fairshare: fairshare.DefaultConfig(), Metrics: reg}, p, m)
	i := irs.New()
	srv := httptest.NewServer(NewServerWith(p, u, m, f, i, opts))
	t.Cleanup(srv.Close)
	return &site{name: name, clock: clock, pds: p, uss: u, ums: m, fcs: f, irs: i, server: srv}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := simclock.NewSim(t0)
	s := newObservedSite(t, "s", clock, map[string]float64{"alice": 0.5, "bob": 0.5},
		ServerOptions{Registry: reg})

	ca := NewClient(s.server.URL, "s")
	if err := ca.StoreMapping("alice", "s", "local1"); err != nil {
		t.Fatal(err)
	}
	// Two identical lookups: the first misses both libaequus caches, the
	// second hits both.
	lib := libaequus.New(libaequus.Config{Site: "s", CacheTTL: time.Hour, Clock: clock, Metrics: reg}, ca, ca, ca)
	for i := 0; i < 2; i++ {
		if _, err := lib.PriorityForLocalUser("local1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ca.TriggerExchange(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(s.server.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", got, telemetry.ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		`aequus_http_request_duration_seconds_bucket{route="/fairshare"`,
		`aequus_http_request_duration_seconds_bucket{route="/usage/exchange"`,
		`aequus_http_request_duration_seconds_bucket{route="/identity/resolve"`,
		`aequus_lib_cache_hits_total{cache="fairshare"} 1`,
		`aequus_lib_cache_misses_total{cache="fairshare"} 1`,
		`aequus_lib_cache_hits_total{cache="identity"} 1`,
		`aequus_lib_cache_misses_total{cache="identity"} 1`,
		`aequus_fcs_recalcs_total`,
		`aequus_ums_recomputes_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Every sample line must be "name{labels} value" with a parseable value —
	// the shape any Prometheus scraper accepts.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

func TestRequestIDPropagationAcrossSites(t *testing.T) {
	clock := simclock.NewSim(t0)
	var logB syncBuffer
	logger, err := telemetry.NewLogger(&logB, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	a := newObservedSite(t, "siteA", clock, map[string]float64{"u": 1},
		ServerOptions{Registry: telemetry.NewRegistry()})
	b := newObservedSite(t, "siteB", clock, map[string]float64{"u": 1},
		ServerOptions{Registry: telemetry.NewRegistry(), Log: logger})

	// A pulls usage from B; a traced exchange request to A must carry its
	// request ID through A's handler into the pull that B serves.
	a.uss.AddPeer(NewClient(b.server.URL, "siteB"))

	const traceID = "trace-123"
	req, err := http.NewRequest(http.MethodPost, a.server.URL+"/usage/exchange", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.RequestIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exchange = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.RequestIDHeader); got != traceID {
		t.Errorf("originating response ID = %q, want %q", got, traceID)
	}

	// Site B's instrumented /usage/records handler must have logged the same
	// request ID that entered at site A.
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logB.String()), "\n") {
		var rec map[string]interface{}
		if json.Unmarshal([]byte(line), &rec) != nil {
			continue
		}
		if rec["route"] == "/usage/records" && rec["request_id"] == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("peer site never saw request ID %q; site B log:\n%s", traceID, logB.String())
	}
}

func TestReadyz(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newObservedSite(t, "s", clock, map[string]float64{"a": 1},
		ServerOptions{Registry: telemetry.NewRegistry(), Clock: clock})
	c := NewClient(s.server.URL, "s")

	status := func() int {
		t.Helper()
		resp, err := http.Get(s.server.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// No pre-computation has run: FCS and UMS are not ready.
	if code := status(); code != http.StatusServiceUnavailable {
		t.Errorf("cold /readyz = %d, want 503", code)
	}
	r, err := c.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ready {
		t.Error("cold site reports ready")
	}
	if got := r.Components["fcs"].Reason; got != "no pre-computation yet" {
		t.Errorf("fcs reason = %q", got)
	}
	for _, svc := range []string{"pds", "uss", "irs"} {
		if !r.Components[svc].Ready {
			t.Errorf("stateless service %s not ready", svc)
		}
	}

	// A refresh computes both trees (FCS pulls through UMS).
	if err := s.fcs.Refresh(); err != nil {
		t.Fatal(err)
	}
	if code := status(); code != http.StatusOK {
		t.Errorf("fresh /readyz = %d, want 200", code)
	}
	r, err = c.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ready || !r.Components["fcs"].Ready || !r.Components["ums"].Ready {
		t.Errorf("fresh readiness = %+v", r)
	}

	// Sim time outruns the staleness threshold (default 5 minutes).
	clock.Advance(10 * time.Minute)
	if code := status(); code != http.StatusServiceUnavailable {
		t.Errorf("stale /readyz = %d, want 503", code)
	}
	r, err = c.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ready {
		t.Error("stale site reports ready")
	}
	fc := r.Components["fcs"]
	if fc.Reason != "pre-computation stale" || fc.AgeSeconds != 600 {
		t.Errorf("stale fcs component = %+v", fc)
	}
}

func TestClientReusesKeepAliveConnections(t *testing.T) {
	clock := simclock.NewSim(t0)
	pol, err := policy.FromShares(map[string]float64{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	p := pds.New(pol, PolicyFetcher(nil))
	u := uss.New(uss.Config{Site: "s", BinWidth: time.Minute, Contribute: true, Clock: clock})
	m := ums.New(ums.Config{Clock: clock},
		ums.SourceFunc(func(now time.Time, d usage.Decay) (map[string]float64, error) {
			return u.GlobalTotals(now, d), nil
		}))
	f := fcs.New(fcs.Config{Clock: clock, Fairshare: fairshare.DefaultConfig()}, p, m)
	srv := httptest.NewUnstartedServer(NewServerWith(p, u, m, f, irs.New(),
		ServerOptions{Registry: telemetry.NewRegistry(), Clock: clock}))
	var mu sync.Mutex
	conns := 0
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			mu.Lock()
			conns++
			mu.Unlock()
		}
	}
	srv.Start()
	t.Cleanup(srv.Close)

	// Give the client its own transport so other tests' pooled connections
	// can't interfere with the count.
	c := NewClient(srv.URL, "s")
	c.HTTP = &http.Client{Timeout: 10 * time.Second, Transport: &http.Transport{}}

	if _, err := c.Table(); err != nil {
		t.Fatal(err)
	}
	// An error response (404 with a JSON error envelope) must also leave the
	// connection reusable.
	if _, err := c.Priority("ghost"); err == nil {
		t.Fatal("unknown user accepted")
	}
	if _, err := c.Table(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ready(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MetricsText(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if conns != 1 {
		t.Errorf("server saw %d connections, want 1 (bodies not drained?)", conns)
	}
}
