package httpapi

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// findSpan returns the first recorded span matching pred, or nil.
func findSpan(rec *span.Recorder, pred func(*span.Span) bool) *span.Span {
	for _, sp := range rec.Snapshot() {
		if pred(sp) {
			return sp
		}
	}
	return nil
}

func spanAttr(sp *span.Span, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestSpanParentPropagationAcrossSites drives a two-hop exchange — client →
// site A /usage/exchange → site B /usage/records — and asserts the whole
// hop chain shares one trace: A's uss.pull span carries the injected request
// ID as its trace ID, and B's server span is parented on that pull span via
// the X-Aequus-Parent-Span header.
func TestSpanParentPropagationAcrossSites(t *testing.T) {
	clock := simclock.NewSim(t0)
	recA := span.NewRecorder(span.Config{Capacity: 128})
	recB := span.NewRecorder(span.Config{Capacity: 128})
	a := newObservedSite(t, "siteA", clock, map[string]float64{"u": 1},
		ServerOptions{Registry: telemetry.NewRegistry(), Spans: recA})
	b := newObservedSite(t, "siteB", clock, map[string]float64{"u": 1},
		ServerOptions{Registry: telemetry.NewRegistry(), Spans: recB})
	a.uss.AddPeer(NewClient(b.server.URL, "siteB"))

	const traceID = "trace-two-hop"
	req, err := http.NewRequest(http.MethodPost, a.server.URL+"/usage/exchange", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.RequestIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exchange = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.RequestIDHeader); got != traceID {
		t.Errorf("response request ID = %q, want %q", got, traceID)
	}

	// Site A: server span → uss.exchange → uss.pull, all on the trace the
	// client injected.
	pull := findSpan(recA, func(sp *span.Span) bool { return sp.Name == "uss.pull" })
	if pull == nil {
		t.Fatalf("site A recorded no uss.pull span; spans: %v", recA.Snapshot())
	}
	if pull.TraceID != traceID {
		t.Errorf("pull trace ID = %q, want %q", pull.TraceID, traceID)
	}
	if got := spanAttr(pull, "peer"); got != "siteB" {
		t.Errorf("pull peer attr = %q, want siteB", got)
	}
	srvA := findSpan(recA, func(sp *span.Span) bool {
		return sp.Name == "http.server" && spanAttr(sp, "route") == "/usage/exchange"
	})
	if srvA == nil {
		t.Fatal("site A recorded no http.server span for /usage/exchange")
	}
	if srvA.TraceID != traceID {
		t.Errorf("site A server span trace ID = %q, want %q", srvA.TraceID, traceID)
	}

	// Site B: its server span continues the same trace, parented on A's pull
	// span — the cross-site link the X-Aequus-Parent-Span header exists for.
	srvB := findSpan(recB, func(sp *span.Span) bool {
		return sp.Name == "http.server" && spanAttr(sp, "route") == "/usage/records"
	})
	if srvB == nil {
		t.Fatalf("site B recorded no http.server span; spans: %v", recB.Snapshot())
	}
	if srvB.TraceID != traceID {
		t.Errorf("site B server span trace ID = %q, want %q", srvB.TraceID, traceID)
	}
	if srvB.ParentID != pull.ID {
		t.Errorf("site B server span parent = %s, want A's pull span %s",
			span.FormatID(srvB.ParentID), span.FormatID(pull.ID))
	}
}

// TestDebugEndpoints exercises the introspection surface end to end through
// the typed client: summary, traces, slowest spans and the drift table.
func TestDebugEndpoints(t *testing.T) {
	clock := simclock.NewSim(t0)
	rec := span.NewRecorder(span.Config{Capacity: 128})
	s := newObservedSite(t, "s", clock, map[string]float64{"alice": 0.5, "bob": 0.5},
		ServerOptions{Registry: telemetry.NewRegistry(), Spans: rec})
	c := NewClient(s.server.URL, "s")
	ctx := context.Background()

	// Generate traffic: usage, a refresh (drift table), an exchange trace.
	s.uss.ReportJob("alice", clock.Now(), time.Hour, 1)
	if err := s.fcs.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := c.TriggerExchange(ctx); err != nil {
		t.Fatal(err)
	}

	sum, err := c.DebugSummary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SpansRecorded == 0 {
		t.Error("summary reports zero recorded spans")
	}
	if sum.Traces == 0 {
		t.Error("summary reports zero traces")
	}
	if sum.FCSComputedAt.IsZero() {
		t.Error("summary has no FCS snapshot timestamp")
	}

	traces, err := c.DebugTraces(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("no traces returned")
	}
	seen := map[string]bool{}
	for _, tr := range traces.Traces {
		for _, sp := range tr.Spans {
			seen[sp.Name] = true
			if sp.TraceID == "" || sp.SpanID == "" {
				t.Errorf("span %q missing IDs: %+v", sp.Name, sp)
			}
		}
	}
	if !seen["http.server"] {
		t.Errorf("no http.server span in traces; saw %v", seen)
	}

	slow, err := c.DebugSlowest(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Spans) == 0 || len(slow.Spans) > 3 {
		t.Errorf("slowest returned %d spans, want 1..3", len(slow.Spans))
	}

	drift, err := c.DebugDrift(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if drift.ComputedAt.IsZero() {
		t.Error("drift table has no timestamp")
	}
	if len(drift.Entries) != 2 {
		t.Fatalf("drift entries = %d, want 2", len(drift.Entries))
	}
	// alice has all the usage against a 0.5 target; worst-first ordering
	// puts her on top with error 0.5.
	if drift.Entries[0].User != "alice" || drift.Entries[0].Error < 0.4 {
		t.Errorf("worst drift entry = %+v, want alice with error ~0.5", drift.Entries[0])
	}
	if drift.MaxError < drift.Entries[1].Error {
		t.Errorf("max error %v below second entry %v", drift.MaxError, drift.Entries[1].Error)
	}
}

// TestDebugEndpointsAbsentWithoutRecorder pins that the introspection
// surface is opt-in: without a recorder the routes simply don't exist.
func TestDebugEndpointsAbsentWithoutRecorder(t *testing.T) {
	s := newObservedSite(t, "s", simclock.NewSim(t0), map[string]float64{"a": 1},
		ServerOptions{Registry: telemetry.NewRegistry()})
	resp, err := http.Get(s.server.URL + "/debug/aequus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/aequus without recorder = %d, want 404", resp.StatusCode)
	}
}
