package httpapi

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/durability"
	"repro/internal/fairshare"
	"repro/internal/policy"
	"repro/internal/services/fcs"
	"repro/internal/services/irs"
	"repro/internal/services/pds"
	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// newDurableSite builds a full site stack whose USS write-ahead-logs into
// dir, with the log surfaced on /readyz via ServerOptions.Durability. The
// caller drives Replay/MarkReady — that lifecycle is what the tests probe.
func newDurableSite(t *testing.T, name, dir string, clock *simclock.Sim) (*site, *durability.Log) {
	t.Helper()
	pol, err := policy.FromShares(map[string]float64{"alice": 0.5, "bob": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	d, err := durability.Open(durability.Options{Dir: dir, Sync: durability.SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatalf("durability.Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	p := pds.New(pol, PolicyFetcher(nil))
	u := uss.New(uss.Config{Site: name, BinWidth: time.Hour, Contribute: true, Clock: clock, Metrics: reg, Durable: d})
	m := ums.New(ums.Config{Clock: clock, CacheTTL: 0, Metrics: reg},
		ums.SourceFunc(func(now time.Time, dec usage.Decay) (map[string]float64, error) {
			return u.GlobalTotals(now, dec), nil
		}))
	f := fcs.New(fcs.Config{Clock: clock, CacheTTL: 0, Fairshare: fairshare.DefaultConfig(), Metrics: reg}, p, m)
	i := irs.New()
	srv := httptest.NewServer(NewServerWith(p, u, m, f, i,
		ServerOptions{Registry: reg, Clock: clock, Durability: d}))
	t.Cleanup(srv.Close)
	return &site{name: name, clock: clock, pds: p, uss: u, ums: m, fcs: f, irs: i, server: srv}, d
}

// TestReadyzRecovery walks /readyz through the full recovery lifecycle: 503
// with a replay-progress reason while the WAL tail is pending, 503 with an
// awaiting-publish reason once replay finishes, and 200 only after the first
// post-replay fairshare publish flips MarkReady. It also proves the
// pre-crash watermark contract at the HTTP layer: a peer pulling
// /usage/records mid-recovery gets the frozen snapshot image bit-for-bit,
// never a partially replayed histogram.
func TestReadyzRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewSim(t0)
	base := time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)

	// First life: two reports, snapshot, one tail report that lives only in
	// the WAL, then die.
	s1, d1 := newDurableSite(t, "s", dir, clock)
	if err := d1.Replay(s1.uss.ApplyMutation); err != nil {
		t.Fatal(err)
	}
	s1.uss.ReportJob("alice", base, 90*time.Minute, 4)
	s1.uss.ReportJob("bob", base.Add(time.Hour), 2*time.Hour, 2)
	if err := d1.Snapshot(func() (*durability.SnapshotState, error) {
		return s1.uss.CaptureState(), nil
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	preCrash := s1.uss.LocalRecords()
	s1.uss.ReportJob("alice", base.Add(5*time.Hour), time.Hour, 8)
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the log comes up recovering with one pending tail record.
	s2, d2 := newDurableSite(t, "s", dir, clock)
	c := NewClient(s2.server.URL, "s")

	status := func() int {
		t.Helper()
		resp, err := http.Get(s2.server.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	durComp := func() (bool, string) {
		t.Helper()
		r, err := c.Ready(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		dc, ok := r.Components["durability"]
		if !ok {
			t.Fatal("/readyz has no durability component on a durable site")
		}
		return dc.Ready, dc.Reason
	}

	// A refresh makes FCS and UMS fresh, isolating durability as the one
	// component holding readiness at 503.
	if err := s2.fcs.Refresh(); err != nil {
		t.Fatal(err)
	}

	// Phase 1: recovering. Not ready, and the reason names replay progress.
	if code := status(); code != http.StatusServiceUnavailable {
		t.Errorf("recovering /readyz = %d, want 503", code)
	}
	ready, reason := durComp()
	if ready {
		t.Error("durability component ready while WAL tail is pending")
	}
	if want := "recovering: replaying WAL (0/1 records)"; reason != want {
		t.Errorf("recovering reason = %q, want %q", reason, want)
	}

	// Mid-recovery, a peer pull through the HTTP API serves the frozen
	// pre-crash image: exactly the snapshot's records, bitwise, without the
	// WAL-tail report.
	recs, err := c.RecordsSince(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(preCrash) {
		t.Fatalf("mid-recovery /usage/records has %d records, want %d (frozen image)", len(recs), len(preCrash))
	}
	for i := range recs {
		if recs[i].User != preCrash[i].User || !recs[i].IntervalStart.Equal(preCrash[i].IntervalStart) ||
			math.Float64bits(recs[i].CoreSeconds) != math.Float64bits(preCrash[i].CoreSeconds) {
			t.Fatalf("mid-recovery record %d = %+v, want %+v", i, recs[i], preCrash[i])
		}
	}

	// Phase 2: replayed but not yet republished. Still 503, new reason.
	if err := d2.Replay(s2.uss.ApplyMutation); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if code := status(); code != http.StatusServiceUnavailable {
		t.Errorf("post-replay /readyz = %d, want 503", code)
	}
	ready, reason = durComp()
	if ready {
		t.Error("durability component ready before first post-replay publish")
	}
	if want := "recovered: awaiting first fairshare publish"; reason != want {
		t.Errorf("post-replay reason = %q, want %q", reason, want)
	}

	// The tail record is live now: peers see past the pre-crash watermark.
	recs, err = c.RecordsSince(context.Background(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(preCrash)+1 {
		t.Fatalf("post-replay /usage/records has %d records, want %d", len(recs), len(preCrash)+1)
	}

	// Phase 3: first post-replay fairshare publish, then MarkReady → 200.
	if err := s2.fcs.Refresh(); err != nil {
		t.Fatal(err)
	}
	d2.MarkReady()
	if code := status(); code != http.StatusOK {
		t.Errorf("recovered /readyz = %d, want 200", code)
	}
	if ready, reason = durComp(); !ready || reason != "" {
		t.Errorf("recovered durability component = (%v, %q), want (true, \"\")", ready, reason)
	}
}

// TestReadyzNonDurableOmitsComponent pins that sites without a WAL don't
// grow a durability component — /readyz stays exactly as before.
func TestReadyzNonDurableOmitsComponent(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newObservedSite(t, "s", clock, map[string]float64{"a": 1},
		ServerOptions{Registry: telemetry.NewRegistry(), Clock: clock})
	if err := s.fcs.Refresh(); err != nil {
		t.Fatal(err)
	}
	r, err := NewClient(s.server.URL, "s").Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Components["durability"]; ok {
		t.Error("non-durable site reports a durability component")
	}
	if !r.Ready {
		t.Errorf("non-durable site not ready: %+v", r)
	}
}

// TestReadyzRecoveringProgressCounts: the replay-progress reason advances as
// records apply — an operator watching /readyz can see a long replay move.
func TestReadyzRecoveringProgressCounts(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewSim(t0)
	base := time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)

	s1, d1 := newDurableSite(t, "s", dir, clock)
	if err := d1.Replay(s1.uss.ApplyMutation); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s1.uss.ReportJob("alice", base.Add(time.Duration(i)*time.Hour), time.Hour, 1)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, d2 := newDurableSite(t, "s", dir, clock)
	c := NewClient(s2.server.URL, "s")
	seen := make(map[string]bool)
	record := func() {
		r, err := c.Ready(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		seen[r.Components["durability"].Reason] = true
	}
	record() // (0/3)
	applied := 0
	err := d2.Replay(func(m *usage.Mutation) error {
		if err := s2.uss.ApplyMutation(m); err != nil {
			return err
		}
		applied++
		// The done counter advances after the applier returns, so the Nth
		// apply still reads (N-1)/3 — including the last, which is the final
		// mid-replay observation before the log flips recovered.
		record()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(0/3 records)", "(1/3 records)", "(2/3 records)"} {
		found := false
		for reason := range seen {
			if strings.Contains(reason, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("replay progress %q never surfaced on /readyz; saw %v", want, seen)
		}
	}
}
