package httpapi

import (
	"net/http"
	"strconv"

	"repro/internal/telemetry/span"
	"repro/internal/wire"
)

// debugSpan converts one recorded span to its wire form.
func debugSpan(sp *span.Span) wire.DebugSpan {
	out := wire.DebugSpan{
		TraceID:         sp.TraceID,
		SpanID:          span.FormatID(sp.ID),
		Name:            sp.Name,
		Start:           sp.Start,
		DurationSeconds: sp.Duration.Seconds(),
		Error:           sp.Err,
	}
	if sp.ParentID != 0 {
		out.ParentID = span.FormatID(sp.ParentID)
	}
	for _, a := range sp.Attrs {
		out.Attrs = append(out.Attrs, wire.DebugAttr{Key: a.Key, Value: a.Value})
	}
	return out
}

// queryN parses an optional positive ?n= count, with a default and cap.
func queryN(r *http.Request, def, max int) int {
	n := def
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	if n > max {
		n = max
	}
	return n
}

// handleDebugSummary serves /debug/aequus: tracer, snapshot, drift and peer
// health on one page — the first stop when a site looks unhealthy.
func (s *Server) handleDebugSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	out := wire.DebugSummary{
		SpansRecorded: s.spans.Recorded(),
		Traces:        len(s.spans.Traces(0)),
	}
	if s.FCS != nil {
		out.FCSComputedAt = s.FCS.ComputedAt()
		if err := s.FCS.LastRefreshError(); err != nil {
			out.FCSLastRefreshError = err.Error()
		}
		ri := s.FCS.LastRefresh()
		out.FCSRefreshMode = ri.Mode
		out.FCSDirtyUsers = ri.DirtyUsers
		out.FCSRefreshSeconds = ri.Duration.Seconds()
		out.FCSFoldSeconds = ri.FoldDuration.Seconds()
		out.FCSRescoreSeconds = ri.RescoreDuration.Seconds()
		out.FCSMaterializeSeconds = ri.MaterializeDuration.Seconds()
		out.FCSMaterializedSegments = ri.MaterializedSegments
		out.FCSSharedSegments = ri.SharedSegments
		d := s.FCS.Drift()
		out.DriftMax, out.DriftMean = d.MaxError, d.MeanError
	}
	if s.USS != nil {
		now := s.clock.Now()
		for _, p := range s.USS.PeerStatuses() {
			ps := wire.PeerStatus{
				Site:                p.Site,
				Breaker:             p.Breaker,
				LastSuccess:         p.LastSuccess,
				StalenessSeconds:    -1,
				ConsecutiveFailures: p.ConsecutiveFailures,
				LastError:           p.LastError,
			}
			if !p.LastSuccess.IsZero() {
				ps.StalenessSeconds = now.Sub(p.LastSuccess).Seconds()
			}
			out.Peers = append(out.Peers, ps)
		}
	}
	wire.WriteJSON(w, http.StatusOK, out)
}

// handleDebugTraces serves /debug/aequus/traces?n=: the n most recent traces
// still in the ring buffer, each with its retained spans.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	out := wire.TracesResponse{Traces: []wire.DebugTrace{}}
	for _, t := range s.spans.Traces(queryN(r, 10, 100)) {
		dt := wire.DebugTrace{TraceID: t.TraceID}
		for _, sp := range t.Spans {
			dt.Spans = append(dt.Spans, debugSpan(sp))
		}
		out.Traces = append(out.Traces, dt)
	}
	wire.WriteJSON(w, http.StatusOK, out)
}

// handleDebugSpans serves /debug/aequus/spans?n=: the n slowest retained
// spans — the flat "what is taking long" table.
func (s *Server) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	out := wire.SpansResponse{Spans: []wire.DebugSpan{}}
	for _, sp := range s.spans.Slowest(queryN(r, 20, 500)) {
		out.Spans = append(out.Spans, debugSpan(sp))
	}
	wire.WriteJSON(w, http.StatusOK, out)
}

// handleDebugDrift serves /debug/aequus/drift: the fairness-drift table of
// the current snapshot, worst drift first.
func (s *Server) handleDebugDrift(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	if s.FCS == nil {
		wire.WriteError(w, http.StatusNotFound, "no FCS on this server")
		return
	}
	d := s.FCS.Drift()
	out := wire.DriftResponse{
		ComputedAt: d.ComputedAt,
		MaxError:   d.MaxError,
		MeanError:  d.MeanError,
		Entries:    []wire.DriftEntry{},
	}
	for _, e := range d.Entries {
		out.Entries = append(out.Entries, wire.DriftEntry{
			User: e.User, Target: e.Target, Actual: e.Actual, Error: e.Error,
		})
	}
	wire.WriteJSON(w, http.StatusOK, out)
}
