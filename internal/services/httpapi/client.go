package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/services/pds"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
	"repro/internal/wire"
)

// DefaultRequestTimeout caps one HTTP attempt when the caller's context
// carries no tighter deadline.
const DefaultRequestTimeout = 10 * time.Second

// NewHTTPClient is the one place Aequus constructs *http.Client values: a
// per-attempt timeout (DefaultRequestTimeout when timeout <= 0) on top of a
// transport with bounded dial/TLS handshake times and enough idle keep-alive
// connections per host that exchange rounds and batch priority calls reuse
// connections instead of re-dialing.
func NewHTTPClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ExpectContinueTimeout: 1 * time.Second,
			MaxIdleConns:          128,
			MaxIdleConnsPerHost:   32,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// Client talks to a remote Aequus site's HTTP API. Its methods implement
// the source/sink interfaces of the in-process packages, so a local resource
// manager, peer site or libaequus instance cannot tell whether it is wired
// directly or over the network.
type Client struct {
	// BaseURL is the site's service root, e.g. "http://site-a:7470".
	BaseURL string
	// HTTP is the underlying client (default: NewHTTPClient settings).
	HTTP *http.Client
	// SiteName labels the remote site for exchange bookkeeping.
	SiteName string
	// Retry bounds transient-failure retries of idempotent calls (the zero
	// value performs exactly one attempt). Non-idempotent calls — usage
	// reports, which accumulate — are never retried here; the USS's
	// idempotent exchange protocol recovers them instead.
	Retry resilience.RetryPolicy
	// Breaker, when set, guards every call to this site: open means fail
	// fast with resilience.ErrOpen instead of dialing.
	Breaker *resilience.Breaker

	metrics *telemetry.ClientMetrics
}

// ClientOptions tunes a Client's resilience and observability wiring.
type ClientOptions struct {
	// HTTP overrides the underlying client (default NewHTTPClient(0)).
	HTTP *http.Client
	// Retry bounds transient-failure retries of idempotent calls.
	Retry resilience.RetryPolicy
	// Breaker guards all calls to this site (optional).
	Breaker *resilience.Breaker
	// Metrics receives the outgoing-call instruments (default registry if
	// nil).
	Metrics *telemetry.Registry
}

// NewClient creates a client for the given base URL with default options:
// shared transport limits, no retries, no breaker.
func NewClient(baseURL, siteName string) *Client {
	return NewClientWith(baseURL, siteName, ClientOptions{})
}

// NewClientWith creates a client with explicit resilience options.
func NewClientWith(baseURL, siteName string, o ClientOptions) *Client {
	if o.HTTP == nil {
		o.HTTP = NewHTTPClient(0)
	}
	return &Client{
		BaseURL:  strings.TrimRight(baseURL, "/"),
		HTTP:     o.HTTP,
		SiteName: siteName,
		Retry:    o.Retry,
		Breaker:  o.Breaker,
		metrics:  telemetry.NewClientMetrics(o.Metrics),
	}
}

// target labels this client's outgoing-call metrics.
func (c *Client) target() string {
	if c.SiteName != "" {
		return c.SiteName
	}
	return c.BaseURL
}

// call runs one logical request through the resilience stack: the breaker
// rejects without dialing when open, every attempt is observed in the
// client metrics, and — for idempotent requests — transient failures are
// retried per c.Retry with exponential backoff. Non-2xx responses that
// repeating cannot fix (4xx) are marked Permanent so they are never
// retried.
func (c *Client) call(ctx context.Context, retryable bool, attempt func(ctx context.Context) error) error {
	target := c.target()
	run := func(ctx context.Context) error {
		if !c.Breaker.Allow() {
			// Fail fast; Permanent keeps the retry loop from hammering a
			// breaker whose cooldown is longer than any backoff.
			return resilience.Permanent(resilience.ErrOpen)
		}
		start := time.Now()
		err := attempt(ctx)
		c.metrics.Observe(target, time.Since(start), err)
		if err != nil {
			c.Breaker.Failure(err)
			return err
		}
		c.Breaker.Success()
		return nil
	}
	if !retryable {
		return run(ctx)
	}
	p := c.Retry
	orig := p.OnRetry
	p.OnRetry = func(n int, err error) {
		if orig != nil {
			orig(n, err)
		} else {
			c.metrics.Retry(target)
		}
		// The span on ctx (e.g. the USS's per-peer pull span) carries the
		// retry count; SetAttr replaces, so the last attempt number wins.
		span.Current(ctx).SetAttrInt("retries", int64(n))
	}
	return p.Do(ctx, run)
}

// do issues one idempotent request (with retries, when configured). Request
// IDs propagate: an ID carried by ctx (e.g. from an instrumented handler
// that triggered this call) is forwarded in X-Aequus-Request-ID; without one
// a fresh ID is generated, so every outgoing call is traceable. The response
// body is always drained and closed (via wire.DecodeResponse), keeping
// keep-alive connections reusable, and non-2xx statuses become errors.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	return c.call(ctx, true, func(ctx context.Context) error {
		return c.doOnce(ctx, method, path, in, out)
	})
}

// doNoRetry issues one non-idempotent request: breaker and metrics apply,
// retries do not.
func (c *Client) doNoRetry(ctx context.Context, method, path string, in, out interface{}) error {
	return c.call(ctx, false, func(ctx context.Context) error {
		return c.doOnce(ctx, method, path, in, out)
	})
}

// doOnce performs a single HTTP attempt. The request body is re-encoded
// here so every retry attempt gets a fresh reader.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(in); err != nil {
			return resilience.Permanent(err)
		}
		body = &buf
	}
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return resilience.Permanent(err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err // transport errors (refused, reset, timeout) are retryable
	}
	return classifyStatus(resp.StatusCode, wire.DecodeResponse(resp, out))
}

// classifyStatus marks response errors that repeating the identical request
// cannot fix (4xx — the request itself is wrong) as Permanent; 5xx and 429
// stay retryable.
func classifyStatus(code int, err error) error {
	if err == nil {
		return nil
	}
	if code/100 == 4 && code != http.StatusTooManyRequests {
		return resilience.Permanent(err)
	}
	return err
}

// newRequest builds a request with the propagated (or freshly generated)
// request ID attached.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	id := telemetry.RequestID(ctx)
	if id == "" {
		id = telemetry.NewRequestID()
	}
	req.Header.Set(telemetry.RequestIDHeader, id)
	// A span on ctx becomes the remote parent: the receiving site's
	// "http.server" span links under it, stitching the cross-site trace.
	if sp := span.Current(ctx); sp != nil {
		req.Header.Set(span.ParentHeader, span.FormatID(sp.ID))
	}
	return req, nil
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	return c.do(ctx, http.MethodPost, path, in, out)
}

// --- libaequus sources ---

// Priority implements libaequus.FairshareSource against the remote FCS.
func (c *Client) Priority(gridUser string) (wire.FairshareResponse, error) {
	var out wire.FairshareResponse
	err := c.get(context.Background(), "/fairshare?user="+url.QueryEscape(gridUser), &out)
	return out, err
}

// PriorityBatch implements libaequus.BatchFairshareSource against the
// remote FCS: one POST resolves the whole user list from one snapshot.
func (c *Client) PriorityBatch(gridUsers []string) (wire.FairshareBatchResponse, error) {
	var out wire.FairshareBatchResponse
	err := c.post(context.Background(), "/fairshare/batch",
		wire.FairshareBatchRequest{Users: gridUsers}, &out)
	return out, err
}

// Table fetches the full pre-calculated fairshare table.
func (c *Client) Table() (wire.FairshareTableResponse, error) {
	var out wire.FairshareTableResponse
	err := c.get(context.Background(), "/fairshare", &out)
	return out, err
}

// Resolve implements libaequus.IdentitySource against the remote IRS.
func (c *Client) Resolve(site, localUser string) (string, error) {
	var out wire.ResolveResponse
	err := c.post(context.Background(), "/identity/resolve",
		wire.ResolveRequest{Site: site, LocalUser: localUser}, &out)
	return out.GridID, err
}

// StoreMapping records an identity mapping in the remote IRS.
func (c *Client) StoreMapping(gridID, site, localUser string) error {
	return c.post(context.Background(), "/identity/mapping",
		wire.MappingRequest{GridID: gridID, Site: site, LocalUser: localUser}, nil)
}

// ReportJob implements libaequus.UsageSink against the remote USS. Errors
// are retained in Err (the sink interface is fire-and-forget, matching the
// asynchronous job-completion plug-ins).
func (c *Client) ReportJob(gridUser string, start time.Time, dur time.Duration, procs int) {
	_ = c.ReportJobErr(gridUser, start, dur, procs)
}

// ReportJobErr reports usage and returns any transport error. Usage reports
// accumulate on the remote USS, so the call is not idempotent and is never
// retried: a report lost to a transient failure is recovered by the
// idempotent exchange protocol, not by resending it (which could double
// count).
func (c *Client) ReportJobErr(gridUser string, start time.Time, dur time.Duration, procs int) error {
	return c.doNoRetry(context.Background(), http.MethodPost, "/usage", wire.UsageReport{
		User:            gridUser,
		Start:           start,
		DurationSeconds: dur.Seconds(),
		Procs:           procs,
	}, nil)
}

// ReportJobBatch reports many completed jobs in one request. Like single
// reports, batches accumulate and are therefore never retried; the
// idempotent exchange protocol recovers anything lost in transit.
func (c *Client) ReportJobBatch(reports []wire.UsageReport) error {
	return c.doNoRetry(context.Background(), http.MethodPost, "/usage/batch",
		wire.UsageBatchRequest{Reports: reports}, nil)
}

// --- USS peer ---

// Site implements uss.Peer.
func (c *Client) Site() string { return c.SiteName }

// RecordsSince implements uss.Peer against the remote USS. A request ID
// carried by ctx — typically placed there by the instrumented
// /usage/exchange handler that triggered this pull — is forwarded to the
// peer site, making one exchange traceable across the federation.
func (c *Client) RecordsSince(ctx context.Context, t time.Time) ([]usage.Record, error) {
	path := "/usage/records"
	if !t.IsZero() {
		path += "?since=" + url.QueryEscape(t.Format(time.RFC3339))
	}
	var out wire.RecordsResponse
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Records, nil
}

// TriggerExchange asks the remote USS to pull from its peers now,
// forwarding ctx's request ID.
func (c *Client) TriggerExchange(ctx context.Context) error {
	return c.post(ctx, "/usage/exchange", nil, nil)
}

// MetricsText fetches the site's /metrics snapshot in Prometheus text
// exposition format.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer wire.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("httpapi: metrics fetch: %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, 16<<20)); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// DebugTraces fetches the site's n most recent traces from /debug/aequus.
func (c *Client) DebugTraces(ctx context.Context, n int) (wire.TracesResponse, error) {
	var out wire.TracesResponse
	err := c.get(ctx, fmt.Sprintf("/debug/aequus/traces?n=%d", n), &out)
	return out, err
}

// DebugSlowest fetches the site's n slowest retained spans.
func (c *Client) DebugSlowest(ctx context.Context, n int) (wire.SpansResponse, error) {
	var out wire.SpansResponse
	err := c.get(ctx, fmt.Sprintf("/debug/aequus/spans?n=%d", n), &out)
	return out, err
}

// DebugDrift fetches the site's fairness-drift table.
func (c *Client) DebugDrift(ctx context.Context) (wire.DriftResponse, error) {
	var out wire.DriftResponse
	err := c.get(ctx, "/debug/aequus/drift", &out)
	return out, err
}

// DebugSummary fetches the site's /debug/aequus health summary.
func (c *Client) DebugSummary(ctx context.Context) (wire.DebugSummary, error) {
	var out wire.DebugSummary
	err := c.get(ctx, "/debug/aequus", &out)
	return out, err
}

// Ready fetches the site's /readyz readiness report. A 503 from a stale
// pre-computation is not an error: the decoded report carries the verdict.
func (c *Client) Ready(ctx context.Context) (wire.ReadyResponse, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/readyz", nil)
	if err != nil {
		return wire.ReadyResponse{}, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return wire.ReadyResponse{}, err
	}
	defer wire.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return wire.ReadyResponse{}, fmt.Errorf("httpapi: readyz: %s", resp.Status)
	}
	var out wire.ReadyResponse
	if err := wire.ReadJSON(resp.Body, &out); err != nil {
		return wire.ReadyResponse{}, err
	}
	return out, nil
}

// --- PDS ---

// Policy fetches the remote site's full policy tree.
func (c *Client) Policy() (*policy.Tree, error) {
	req, err := c.newRequest(context.Background(), http.MethodGet, "/policy", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer wire.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: policy fetch: %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, 16<<20)); err != nil {
		return nil, err
	}
	return policy.FromJSON(buf.Bytes())
}

// SetPolicy replaces the remote site's policy.
func (c *Client) SetPolicy(t *policy.Tree) error {
	data, err := policy.ToJSON(t)
	if err != nil {
		return err
	}
	req, err := c.newRequest(context.Background(), http.MethodPost, "/policy", bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	return wire.DecodeResponse(resp, nil)
}

// Subtree fetches a policy subtree by path.
func (c *Client) Subtree(path string) (*policy.Node, error) {
	var out policy.Node
	if err := c.get(context.Background(), "/policy/subtree?path="+url.QueryEscape(path), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mount asks the remote PDS to mount a subtree from origin.
func (c *Client) Mount(parentPath, name string, share float64, origin string) error {
	return c.post(context.Background(), "/policy/mount", wire.MountRequest{
		ParentPath: parentPath, Name: name, Share: share, Origin: origin,
	}, nil)
}

// PolicyFetcher builds a pds.Fetcher that interprets origins as
// "<baseURL>|<path>" (or a bare base URL for the root subtree), enabling
// PDS-to-PDS mounting over HTTP.
func PolicyFetcher(httpClient *http.Client) pds.Fetcher {
	if httpClient == nil {
		httpClient = NewHTTPClient(0)
	}
	return func(origin string) (*policy.Node, error) {
		base, path := origin, ""
		if i := strings.LastIndex(origin, "|"); i >= 0 {
			base, path = origin[:i], origin[i+1:]
		}
		c := &Client{BaseURL: strings.TrimRight(base, "/"), HTTP: httpClient}
		return c.Subtree(path)
	}
}

// EndpointClient adapts a custom HTTP name-resolution endpoint (the
// "minimalist JSON based protocol") to the irs.Endpoint interface.
type EndpointClient struct {
	URL  string
	HTTP *http.Client
}

// Resolve implements irs.Endpoint: POST {site, localUser} -> {gridId}.
func (e *EndpointClient) Resolve(site, localUser string) (string, error) {
	h := e.HTTP
	if h == nil {
		h = NewHTTPClient(0)
	}
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(wire.ResolveRequest{Site: site, LocalUser: localUser}); err != nil {
		return "", err
	}
	resp, err := h.Post(e.URL, "application/json", &body)
	if err != nil {
		return "", err
	}
	var out wire.ResolveResponse
	if err := wire.DecodeResponse(resp, &out); err != nil {
		return "", err
	}
	return out.GridID, nil
}
