package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/policy"
	"repro/internal/services/pds"
	"repro/internal/telemetry"
	"repro/internal/usage"
	"repro/internal/wire"
)

// Client talks to a remote Aequus site's HTTP API. Its methods implement
// the source/sink interfaces of the in-process packages, so a local resource
// manager, peer site or libaequus instance cannot tell whether it is wired
// directly or over the network.
type Client struct {
	// BaseURL is the site's service root, e.g. "http://site-a:7470".
	BaseURL string
	// HTTP is the underlying client (default: 10 s timeout).
	HTTP *http.Client
	// SiteName labels the remote site for exchange bookkeeping.
	SiteName string
}

// NewClient creates a client for the given base URL.
func NewClient(baseURL, siteName string) *Client {
	return &Client{
		BaseURL:  strings.TrimRight(baseURL, "/"),
		HTTP:     &http.Client{Timeout: 10 * time.Second},
		SiteName: siteName,
	}
}

// do issues one request. Request IDs propagate: an ID carried by ctx (e.g.
// from an instrumented handler that triggered this call) is forwarded in
// X-Aequus-Request-ID; without one a fresh ID is generated, so every
// outgoing call is traceable. The response body is always drained and
// closed (via wire.DecodeResponse), keeping keep-alive connections
// reusable, and non-2xx statuses become errors.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(in); err != nil {
			return err
		}
		body = &buf
	}
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	return wire.DecodeResponse(resp, out)
}

// newRequest builds a request with the propagated (or freshly generated)
// request ID attached.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	id := telemetry.RequestID(ctx)
	if id == "" {
		id = telemetry.NewRequestID()
	}
	req.Header.Set(telemetry.RequestIDHeader, id)
	return req, nil
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	return c.do(ctx, http.MethodPost, path, in, out)
}

// --- libaequus sources ---

// Priority implements libaequus.FairshareSource against the remote FCS.
func (c *Client) Priority(gridUser string) (wire.FairshareResponse, error) {
	var out wire.FairshareResponse
	err := c.get(context.Background(), "/fairshare?user="+url.QueryEscape(gridUser), &out)
	return out, err
}

// PriorityBatch implements libaequus.BatchFairshareSource against the
// remote FCS: one POST resolves the whole user list from one snapshot.
func (c *Client) PriorityBatch(gridUsers []string) (wire.FairshareBatchResponse, error) {
	var out wire.FairshareBatchResponse
	err := c.post(context.Background(), "/fairshare/batch",
		wire.FairshareBatchRequest{Users: gridUsers}, &out)
	return out, err
}

// Table fetches the full pre-calculated fairshare table.
func (c *Client) Table() (wire.FairshareTableResponse, error) {
	var out wire.FairshareTableResponse
	err := c.get(context.Background(), "/fairshare", &out)
	return out, err
}

// Resolve implements libaequus.IdentitySource against the remote IRS.
func (c *Client) Resolve(site, localUser string) (string, error) {
	var out wire.ResolveResponse
	err := c.post(context.Background(), "/identity/resolve",
		wire.ResolveRequest{Site: site, LocalUser: localUser}, &out)
	return out.GridID, err
}

// StoreMapping records an identity mapping in the remote IRS.
func (c *Client) StoreMapping(gridID, site, localUser string) error {
	return c.post(context.Background(), "/identity/mapping",
		wire.MappingRequest{GridID: gridID, Site: site, LocalUser: localUser}, nil)
}

// ReportJob implements libaequus.UsageSink against the remote USS. Errors
// are retained in Err (the sink interface is fire-and-forget, matching the
// asynchronous job-completion plug-ins).
func (c *Client) ReportJob(gridUser string, start time.Time, dur time.Duration, procs int) {
	_ = c.ReportJobErr(gridUser, start, dur, procs)
}

// ReportJobErr reports usage and returns any transport error.
func (c *Client) ReportJobErr(gridUser string, start time.Time, dur time.Duration, procs int) error {
	return c.post(context.Background(), "/usage", wire.UsageReport{
		User:            gridUser,
		Start:           start,
		DurationSeconds: dur.Seconds(),
		Procs:           procs,
	}, nil)
}

// --- USS peer ---

// Site implements uss.Peer.
func (c *Client) Site() string { return c.SiteName }

// RecordsSince implements uss.Peer against the remote USS. A request ID
// carried by ctx — typically placed there by the instrumented
// /usage/exchange handler that triggered this pull — is forwarded to the
// peer site, making one exchange traceable across the federation.
func (c *Client) RecordsSince(ctx context.Context, t time.Time) ([]usage.Record, error) {
	path := "/usage/records"
	if !t.IsZero() {
		path += "?since=" + url.QueryEscape(t.Format(time.RFC3339))
	}
	var out wire.RecordsResponse
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Records, nil
}

// TriggerExchange asks the remote USS to pull from its peers now,
// forwarding ctx's request ID.
func (c *Client) TriggerExchange(ctx context.Context) error {
	return c.post(ctx, "/usage/exchange", nil, nil)
}

// MetricsText fetches the site's /metrics snapshot in Prometheus text
// exposition format.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer wire.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("httpapi: metrics fetch: %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, 16<<20)); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Ready fetches the site's /readyz readiness report. A 503 from a stale
// pre-computation is not an error: the decoded report carries the verdict.
func (c *Client) Ready(ctx context.Context) (wire.ReadyResponse, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/readyz", nil)
	if err != nil {
		return wire.ReadyResponse{}, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return wire.ReadyResponse{}, err
	}
	defer wire.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return wire.ReadyResponse{}, fmt.Errorf("httpapi: readyz: %s", resp.Status)
	}
	var out wire.ReadyResponse
	if err := wire.ReadJSON(resp.Body, &out); err != nil {
		return wire.ReadyResponse{}, err
	}
	return out, nil
}

// --- PDS ---

// Policy fetches the remote site's full policy tree.
func (c *Client) Policy() (*policy.Tree, error) {
	req, err := c.newRequest(context.Background(), http.MethodGet, "/policy", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer wire.DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: policy fetch: %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, 16<<20)); err != nil {
		return nil, err
	}
	return policy.FromJSON(buf.Bytes())
}

// SetPolicy replaces the remote site's policy.
func (c *Client) SetPolicy(t *policy.Tree) error {
	data, err := policy.ToJSON(t)
	if err != nil {
		return err
	}
	req, err := c.newRequest(context.Background(), http.MethodPost, "/policy", bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	return wire.DecodeResponse(resp, nil)
}

// Subtree fetches a policy subtree by path.
func (c *Client) Subtree(path string) (*policy.Node, error) {
	var out policy.Node
	if err := c.get(context.Background(), "/policy/subtree?path="+url.QueryEscape(path), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mount asks the remote PDS to mount a subtree from origin.
func (c *Client) Mount(parentPath, name string, share float64, origin string) error {
	return c.post(context.Background(), "/policy/mount", wire.MountRequest{
		ParentPath: parentPath, Name: name, Share: share, Origin: origin,
	}, nil)
}

// PolicyFetcher builds a pds.Fetcher that interprets origins as
// "<baseURL>|<path>" (or a bare base URL for the root subtree), enabling
// PDS-to-PDS mounting over HTTP.
func PolicyFetcher(httpClient *http.Client) pds.Fetcher {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return func(origin string) (*policy.Node, error) {
		base, path := origin, ""
		if i := strings.LastIndex(origin, "|"); i >= 0 {
			base, path = origin[:i], origin[i+1:]
		}
		c := &Client{BaseURL: strings.TrimRight(base, "/"), HTTP: httpClient}
		return c.Subtree(path)
	}
}

// EndpointClient adapts a custom HTTP name-resolution endpoint (the
// "minimalist JSON based protocol") to the irs.Endpoint interface.
type EndpointClient struct {
	URL  string
	HTTP *http.Client
}

// Resolve implements irs.Endpoint: POST {site, localUser} -> {gridId}.
func (e *EndpointClient) Resolve(site, localUser string) (string, error) {
	h := e.HTTP
	if h == nil {
		h = &http.Client{Timeout: 10 * time.Second}
	}
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(wire.ResolveRequest{Site: site, LocalUser: localUser}); err != nil {
		return "", err
	}
	resp, err := h.Post(e.URL, "application/json", &body)
	if err != nil {
		return "", err
	}
	var out wire.ResolveResponse
	if err := wire.DecodeResponse(resp, &out); err != nil {
		return "", err
	}
	return out.GridID, nil
}
