package httpapi

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// flakyHandler fails the first failN requests with status failCode, then
// succeeds.
type flakyHandler struct {
	calls    int64
	failN    int64
	failCode int
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := atomic.AddInt64(&h.calls, 1)
	if n <= h.failN {
		wire.WriteError(w, h.failCode, "induced failure %d", n)
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.ResolveResponse{GridID: "grid-alice"})
}

func metricsText(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func containsLine(text, line string) bool {
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return true
		}
	}
	return false
}

func fastRetry(attempts int) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Jitter:      -1,
	}
}

func TestClientRetriesTransientServerErrors(t *testing.T) {
	h := &flakyHandler{failN: 2, failCode: http.StatusInternalServerError}
	srv := httptest.NewServer(h)
	defer srv.Close()

	reg := telemetry.NewRegistry()
	c := NewClientWith(srv.URL, "peer-a", ClientOptions{
		Retry:   fastRetry(3),
		Metrics: reg,
	})
	got, err := c.Resolve("site", "alice")
	if err != nil || got != "grid-alice" {
		t.Fatalf("Resolve = %q, %v; want grid-alice after retries", got, err)
	}
	if n := atomic.LoadInt64(&h.calls); n != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", n)
	}
	text := metricsText(t, reg)
	for _, want := range []string{
		`aequus_retry_attempts_total{target="peer-a"} 2`,
		`aequus_client_requests_total{target="peer-a",outcome="error"} 2`,
		`aequus_client_requests_total{target="peer-a",outcome="ok"} 1`,
	} {
		if !containsLine(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	// 4xx means the request itself is wrong; repeating it is pointless.
	h := &flakyHandler{failN: 100, failCode: http.StatusNotFound}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClientWith(srv.URL, "peer-a", ClientOptions{
		Retry:   fastRetry(5),
		Metrics: telemetry.NewRegistry(),
	})
	if _, err := c.Resolve("site", "nobody"); err == nil {
		t.Fatal("404 reported no error")
	}
	if n := atomic.LoadInt64(&h.calls); n != 1 {
		t.Errorf("server saw %d calls, want exactly 1 for a 404", n)
	}
}

func TestClientNeverRetriesUsageReports(t *testing.T) {
	// Usage reports accumulate server-side: retrying one after an ambiguous
	// failure risks double counting, so even with a retry policy the client
	// sends it at most once.
	h := &flakyHandler{failN: 100, failCode: http.StatusInternalServerError}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClientWith(srv.URL, "peer-a", ClientOptions{
		Retry:   fastRetry(5),
		Metrics: telemetry.NewRegistry(),
	})
	if err := c.ReportJobErr("alice", time.Now(), time.Hour, 4); err == nil {
		t.Fatal("failing usage report returned no error")
	}
	if n := atomic.LoadInt64(&h.calls); n != 1 {
		t.Errorf("server saw %d usage POSTs, want exactly 1", n)
	}
}

func TestClientBreakerFailsFastWhenOpen(t *testing.T) {
	h := &flakyHandler{failN: 100, failCode: http.StatusInternalServerError}
	srv := httptest.NewServer(h)
	defer srv.Close()

	clock := simclock.NewSim(time.Unix(1_700_000_000, 0))
	reg := telemetry.NewRegistry()
	br := resilience.NewBreaker("peer-a", resilience.BreakerConfig{
		Threshold: 2,
		Cooldown:  time.Minute,
		Clock:     clock,
	}, reg)
	c := NewClientWith(srv.URL, "peer-a", ClientOptions{
		Breaker: br,
		Metrics: reg,
	})

	for i := 0; i < 2; i++ {
		if _, err := c.Resolve("site", "alice"); err == nil {
			t.Fatal("failing call reported no error")
		}
	}
	// Breaker is now open: calls fail fast with ErrOpen, without dialing.
	_, err := c.Resolve("site", "alice")
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("open-breaker error = %v, want ErrOpen", err)
	}
	if n := atomic.LoadInt64(&h.calls); n != 2 {
		t.Errorf("server saw %d calls, want 2 (open breaker must not dial)", n)
	}

	// After cooldown the half-open probe goes through; a healthy backend
	// closes the circuit again.
	atomic.StoreInt64(&h.calls, 0)
	h.failN = 0
	clock.Advance(time.Minute)
	if got, err := c.Resolve("site", "alice"); err != nil || got != "grid-alice" {
		t.Fatalf("post-cooldown Resolve = %q, %v", got, err)
	}
	if br.State() != resilience.Closed {
		t.Errorf("breaker state = %v, want Closed after successful probe", br.State())
	}
}

func TestNewHTTPClientSetsTransportLimits(t *testing.T) {
	c := NewHTTPClient(0)
	if c.Timeout != DefaultRequestTimeout {
		t.Errorf("default timeout = %v, want %v", c.Timeout, DefaultRequestTimeout)
	}
	tr, ok := c.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", c.Transport)
	}
	if tr.MaxIdleConnsPerHost <= 0 || tr.TLSHandshakeTimeout <= 0 || tr.IdleConnTimeout <= 0 {
		t.Errorf("transport limits unset: %+v", tr)
	}
	if c2 := NewHTTPClient(3 * time.Second); c2.Timeout != 3*time.Second {
		t.Errorf("explicit timeout = %v, want 3s", c2.Timeout)
	}
}
