// Package pds implements the Policy Distribution Service: it manages the
// local site's usage policy and can mount sub-policies from other sources
// (which may be other PDS instances), keeping mounted subtrees refreshed.
package pds

import (
	"fmt"
	"sync"

	"repro/internal/policy"
)

// Fetcher retrieves a remote policy subtree by origin reference (typically a
// URL of another PDS). Implementations live in the httpapi package; tests
// may use in-process fetchers.
type Fetcher func(origin string) (*policy.Node, error)

// Service is a Policy Distribution Service instance.
type Service struct {
	mu    sync.RWMutex
	tree  *policy.Tree
	fetch Fetcher
	// mounts remembers mount-point path -> origin for refresh.
	mounts map[string]string
	// version counts policy mutations. Consumers (the FCS) compare it
	// against the version of their last Policy() pull to skip the O(n)
	// clone — and to keep incremental fairshare recomputation valid only
	// while the tree is unchanged.
	version uint64
	// onChange, when set, is invoked after every successful SetPolicy with
	// a clone of the new tree. It runs OUTSIDE s.mu: the durability hook it
	// carries takes the WAL commit lock, which is also held while a
	// snapshot capture reads Policy() — invoking under s.mu would close a
	// lock cycle. Mount mutations do not fire it (mounted subtrees are
	// re-fetched from their origins, not replayed).
	onChange func(*policy.Tree)
}

// New creates a PDS with the given initial policy (nil for an empty tree).
func New(initial *policy.Tree, fetch Fetcher) *Service {
	if initial == nil {
		initial = policy.NewTree()
	}
	return &Service{
		tree:   initial.Clone(),
		fetch:  fetch,
		mounts: map[string]string{},
	}
}

// Policy returns a deep copy of the current policy tree.
func (s *Service) Policy() *policy.Tree {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Clone()
}

// SetPolicy replaces the whole local policy. Mount records are cleared.
func (s *Service) SetPolicy(t *policy.Tree) error {
	if t == nil {
		return fmt.Errorf("pds: nil policy")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.tree = t.Clone()
	s.mounts = map[string]string{}
	s.version++
	hook := s.onChange
	var snap *policy.Tree
	if hook != nil {
		snap = s.tree.Clone()
	}
	s.mu.Unlock()
	if hook != nil {
		hook(snap)
	}
	return nil
}

// OnChange installs the post-SetPolicy hook (see the field comment for its
// locking contract). Installing replaces any previous hook.
func (s *Service) OnChange(fn func(*policy.Tree)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = fn
}

// Subtree returns a copy of the node at path (for serving to other PDSs).
func (s *Service) Subtree(path string) (*policy.Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.tree.Lookup(path)
	if err != nil {
		return nil, err
	}
	cp := &policy.Tree{Root: n}
	return cp.Clone().Root, nil
}

// Mount fetches the subtree served by origin and grafts it under parentPath
// with the given local share. The origin is remembered so RefreshMounts can
// re-pull policy updates.
func (s *Service) Mount(parentPath, name string, share float64, origin string) error {
	if s.fetch == nil {
		return fmt.Errorf("pds: no fetcher configured")
	}
	sub, err := s.fetch(origin)
	if err != nil {
		return fmt.Errorf("pds: fetching %s: %w", origin, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.tree.Mount(parentPath, name, share, sub, origin); err != nil {
		return err
	}
	path := policy.JoinPath(append(policy.SplitPath(parentPath), name))
	s.mounts[path] = origin
	s.version++
	return nil
}

// MountStatic grafts an explicitly provided subtree (no origin refresh).
func (s *Service) MountStatic(parentPath, name string, share float64, sub *policy.Node, origin string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.tree.Mount(parentPath, name, share, sub, origin); err != nil {
		return err
	}
	s.version++
	return nil
}

// RefreshMounts re-fetches every remembered mount origin and replaces the
// mounted subtrees, propagating remote policy changes. The first error is
// returned but all mounts are attempted.
func (s *Service) RefreshMounts() error {
	if s.fetch == nil {
		return nil
	}
	s.mu.RLock()
	type m struct{ path, origin string }
	var ms []m
	for p, o := range s.mounts {
		ms = append(ms, m{p, o})
	}
	s.mu.RUnlock()

	var firstErr error
	for _, mt := range ms {
		sub, err := s.fetch(mt.origin)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("pds: refreshing %s: %w", mt.origin, err)
			}
			continue
		}
		s.mu.Lock()
		err = s.tree.RefreshMount(mt.path, sub)
		if err == nil {
			s.version++
		}
		s.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Version returns the policy mutation counter. Two equal Version reads
// bracket an unchanged tree, so a consumer may keep serving a previously
// pulled Policy() clone (and any state derived from it).
func (s *Service) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Mounts returns the mount-point paths and their origins.
func (s *Service) Mounts() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.mounts))
	for p, o := range s.mounts {
		out[p] = o
	}
	return out
}
