package pds

import (
	"errors"
	"testing"

	"repro/internal/policy"
)

func localPolicy(t *testing.T) *policy.Tree {
	t.Helper()
	p := policy.NewTree()
	if _, err := p.Add("", "local", 40); err != nil {
		t.Fatal(err)
	}
	return p
}

func remoteSubtree(shareA, shareB float64) *policy.Node {
	return &policy.Node{Name: "", Share: 1, Children: []*policy.Node{
		{Name: "projA", Share: shareA},
		{Name: "projB", Share: shareB},
	}}
}

func TestPolicyIsolatedCopy(t *testing.T) {
	s := New(localPolicy(t), nil)
	p1 := s.Policy()
	p1.Root.Children[0].Share = 999
	p2 := s.Policy()
	if p2.Root.Children[0].Share == 999 {
		t.Error("Policy() exposed internal state")
	}
}

func TestSetPolicyValidates(t *testing.T) {
	s := New(nil, nil)
	bad := policy.NewTree()
	bad.Root.Children = []*policy.Node{{Name: "x", Share: -1}}
	if err := s.SetPolicy(bad); err == nil {
		t.Error("invalid policy accepted")
	}
	if err := s.SetPolicy(nil); err == nil {
		t.Error("nil policy accepted")
	}
	good := localPolicy(t)
	if err := s.SetPolicy(good); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Policy().Lookup("/local"); err != nil {
		t.Error("policy not applied")
	}
}

func TestMountFetchesAndRefreshes(t *testing.T) {
	version := 1
	fetch := func(origin string) (*policy.Node, error) {
		if origin != "pds://national" {
			return nil, errors.New("unknown origin")
		}
		if version == 1 {
			return remoteSubtree(3, 1), nil
		}
		return remoteSubtree(1, 1), nil
	}
	s := New(localPolicy(t), fetch)
	if err := s.Mount("", "grid", 60, "pds://national"); err != nil {
		t.Fatal(err)
	}
	n, err := s.Policy().Lookup("/grid/projA")
	if err != nil || n.Share != 3 {
		t.Fatalf("mounted projA = %+v, %v", n, err)
	}
	if got := s.Mounts()["/grid"]; got != "pds://national" {
		t.Errorf("mount origin = %q", got)
	}

	// Remote policy update propagates on refresh.
	version = 2
	if err := s.RefreshMounts(); err != nil {
		t.Fatal(err)
	}
	n, _ = s.Policy().Lookup("/grid/projA")
	if n.Share != 1 {
		t.Errorf("refreshed projA share = %g, want 1", n.Share)
	}
}

func TestMountErrors(t *testing.T) {
	s := New(localPolicy(t), nil)
	if err := s.Mount("", "g", 1, "x"); err == nil {
		t.Error("mount without fetcher accepted")
	}
	s2 := New(localPolicy(t), func(string) (*policy.Node, error) {
		return nil, errors.New("boom")
	})
	if err := s2.Mount("", "g", 1, "x"); err == nil {
		t.Error("fetch failure not propagated")
	}
}

func TestRefreshMountsToleratesFailures(t *testing.T) {
	calls := 0
	fetch := func(origin string) (*policy.Node, error) {
		calls++
		if origin == "bad" {
			return nil, errors.New("down")
		}
		return remoteSubtree(1, 2), nil
	}
	s := New(localPolicy(t), fetch)
	if err := s.Mount("", "g1", 1, "bad"); err == nil {
		t.Fatal("mounting from a down origin should fail")
	}
	if err := s.Mount("", "g2", 1, "good"); err != nil {
		t.Fatal(err)
	}
	// One bad origin must not prevent refreshing good ones... here only g2
	// is mounted, so refresh succeeds.
	if err := s.RefreshMounts(); err != nil {
		t.Errorf("refresh err = %v", err)
	}
	// No fetcher: refresh is a no-op.
	s3 := New(nil, nil)
	if err := s3.RefreshMounts(); err != nil {
		t.Errorf("no-fetcher refresh err = %v", err)
	}
}

func TestSubtree(t *testing.T) {
	s := New(localPolicy(t), nil)
	sub, err := s.Subtree("/local")
	if err != nil || sub.Name != "local" {
		t.Fatalf("Subtree = %+v, %v", sub, err)
	}
	// Mutation of the returned subtree must not affect the service.
	sub.Share = 12345
	n, _ := s.Policy().Lookup("/local")
	if n.Share == 12345 {
		t.Error("Subtree exposed internal state")
	}
	if _, err := s.Subtree("/missing"); err == nil {
		t.Error("missing subtree accepted")
	}
}

func TestMountStatic(t *testing.T) {
	s := New(localPolicy(t), nil)
	if err := s.MountStatic("", "grid", 60, remoteSubtree(2, 2), "manual"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Policy().Lookup("/grid/projB"); err != nil {
		t.Error(err)
	}
	// Static mounts are not refreshable (not recorded in mounts).
	if len(s.Mounts()) != 0 {
		t.Errorf("static mount recorded: %v", s.Mounts())
	}
}
