package metrics

import (
	"math"
	"testing"
)

func TestAggregateDeviation(t *testing.T) {
	p := PerUser{}
	targets := map[string]float64{"a": 0.6, "b": 0.4}
	p.Add("a", mins(0), 0.9) // |0.9-0.6| = 0.3
	p.Add("b", mins(0), 0.1) // |0.1-0.4| = 0.3
	p.Add("a", mins(10), 0.6)
	p.Add("b", mins(10), 0.4)
	dev := AggregateDeviation(p, targets)
	if dev.Len() != 2 {
		t.Fatalf("len = %d", dev.Len())
	}
	if math.Abs(dev.Values[0]-0.6) > 1e-12 {
		t.Errorf("D(0) = %g, want 0.6", dev.Values[0])
	}
	if math.Abs(dev.Values[1]) > 1e-12 {
		t.Errorf("D(10) = %g, want 0", dev.Values[1])
	}
}

func TestAggregateDeviationMissingUsers(t *testing.T) {
	p := PerUser{}
	p.Add("a", mins(0), 0.5)
	dev := AggregateDeviation(p, map[string]float64{"a": 0.5, "ghost": 0.5})
	if dev.Len() != 1 || dev.Values[0] != 0 {
		t.Errorf("dev = %v", dev.Values)
	}
	empty := AggregateDeviation(PerUser{}, map[string]float64{"a": 1})
	if empty.Len() != 0 {
		t.Error("empty per-user should give empty series")
	}
}

func TestFirstSustainedBelow(t *testing.T) {
	s := &Series{}
	vals := []float64{0.9, 0.2, 0.8, 0.2, 0.1, 0.15, 0.9, 0.1, 0.1, 0.1}
	for i, v := range vals {
		s.Add(mins(i), v)
	}
	// First 3-long run below 0.3 starts at index 3 (0.2, 0.1, 0.15).
	at, ok := FirstSustainedBelow(s, 0.3, 3)
	if !ok || !at.Equal(mins(3)) {
		t.Errorf("FirstSustainedBelow = %v, %v; want minute 3", at, ok)
	}
	// Requiring 4 consecutive finds the tail run at index 7.
	at, ok = FirstSustainedBelow(s, 0.3, 3)
	_ = at
	at4, ok4 := FirstSustainedBelow(s, 0.16, 3)
	if !ok4 || !at4.Equal(mins(7)) {
		t.Errorf("tighter threshold = %v, %v; want minute 7", at4, ok4)
	}
	if _, ok := FirstSustainedBelow(s, 0.05, 3); ok {
		t.Error("impossible threshold matched")
	}
	if _, ok := FirstSustainedBelow(nil, 1, 1); ok {
		t.Error("nil series matched")
	}
	if _, ok := FirstSustainedBelow(s, 1, 0); ok {
		t.Error("consecutive=0 matched")
	}
}
