// Package metrics provides the time-series collection and convergence
// measures used to reproduce the paper's testbed figures: per-user usage
// shares and priorities sampled over the run, windowed share computation,
// and convergence-time extraction.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Series is an append-only time series.
type Series struct {
	Times  []time.Time
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(t time.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// At returns the last value at or before t (NaN when none).
func (s *Series) At(t time.Time) float64 {
	i := sort.Search(len(s.Times), func(i int) bool { return s.Times[i].After(t) })
	if i == 0 {
		return math.NaN()
	}
	return s.Values[i-1]
}

// Last returns the final value (NaN when empty).
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	return s.Values[len(s.Values)-1]
}

// PerUser holds one series per user.
type PerUser map[string]*Series

// Add appends a sample to a user's series, creating it on first use.
func (p PerUser) Add(user string, t time.Time, v float64) {
	s := p[user]
	if s == nil {
		s = &Series{}
		p[user] = s
	}
	s.Add(t, v)
}

// Users returns the sorted user names.
func (p PerUser) Users() []string {
	out := make([]string, 0, len(p))
	for u := range p {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// ConvergenceTime returns the first sample time after which the series stays
// within tol of target until the end (and the fraction of run spent
// converged). ok is false when the series never converges.
func ConvergenceTime(s *Series, target, tol float64) (time.Time, bool) {
	if s == nil || s.Len() == 0 {
		return time.Time{}, false
	}
	// Find the last sample outside tolerance; convergence starts after it.
	lastBad := -1
	for i, v := range s.Values {
		if math.Abs(v-target) > tol {
			lastBad = i
		}
	}
	if lastBad == len(s.Values)-1 {
		return time.Time{}, false // ends out of tolerance
	}
	return s.Times[lastBad+1], true
}

// MaxDeviation returns the largest |value − target| over the series from t
// on.
func MaxDeviation(s *Series, target float64, from time.Time) float64 {
	var worst float64
	for i, v := range s.Values {
		if s.Times[i].Before(from) {
			continue
		}
		if d := math.Abs(v - target); d > worst {
			worst = d
		}
	}
	return worst
}

// MeanAbsError returns the average |value − target| from `from` on (NaN when
// no samples qualify).
func MeanAbsError(s *Series, target float64, from time.Time) float64 {
	var sum float64
	n := 0
	for i, v := range s.Values {
		if s.Times[i].Before(from) {
			continue
		}
		sum += math.Abs(v - target)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// AggregateDeviation builds the series D(t) = Σ_u |share_u(t) − target_u|
// over the common sample times of the per-user series — the overall
// system-imbalance curve used for convergence-time comparisons.
func AggregateDeviation(p PerUser, targets map[string]float64) *Series {
	var ref *Series
	for u := range targets {
		if s := p[u]; s != nil && (ref == nil || s.Len() < ref.Len()) {
			ref = s
		}
	}
	if ref == nil {
		return &Series{}
	}
	out := &Series{}
	for i, at := range ref.Times {
		var d float64
		for u, target := range targets {
			s := p[u]
			if s == nil {
				continue
			}
			var v float64
			if s == ref {
				v = s.Values[i]
			} else {
				v = s.At(at)
			}
			if !math.IsNaN(v) {
				d += math.Abs(v - target)
			}
		}
		out.Add(at, d)
	}
	return out
}

// FirstSustainedBelow returns the time of the first sample from which the
// series stays below threshold for `consecutive` samples. ok is false when
// no such point exists.
func FirstSustainedBelow(s *Series, threshold float64, consecutive int) (time.Time, bool) {
	if s == nil || s.Len() == 0 || consecutive < 1 {
		return time.Time{}, false
	}
	run := 0
	for i, v := range s.Values {
		if v < threshold {
			run++
			if run >= consecutive {
				return s.Times[i-consecutive+1], true
			}
		} else {
			run = 0
		}
	}
	return time.Time{}, false
}

// UsageWindow accumulates completed-job usage per user and reports each
// user's share of the usage inside a sliding window — the "combined usage
// share" curves of Figures 10-13.
type UsageWindow struct {
	window time.Duration
	// events are (time, user, coreSeconds), appended in completion order.
	times []time.Time
	users []string
	usage []float64
}

// NewUsageWindow creates a sliding usage window (zero = whole run).
func NewUsageWindow(window time.Duration) *UsageWindow {
	return &UsageWindow{window: window}
}

// Record adds a completed job's usage at time t.
func (w *UsageWindow) Record(t time.Time, user string, coreSeconds float64) {
	w.times = append(w.times, t)
	w.users = append(w.users, user)
	w.usage = append(w.usage, coreSeconds)
}

// Shares returns each user's fraction of the usage recorded in
// (now−window, now].
func (w *UsageWindow) Shares(now time.Time) map[string]float64 {
	from := time.Time{}
	if w.window > 0 {
		from = now.Add(-w.window)
	}
	perUser := map[string]float64{}
	var total float64
	for i, t := range w.times {
		if t.After(now) || (w.window > 0 && !t.After(from)) {
			continue
		}
		perUser[w.users[i]] += w.usage[i]
		total += w.usage[i]
	}
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	for u, v := range perUser {
		out[u] = v / total
	}
	return out
}

// Total returns the total usage recorded up to now.
func (w *UsageWindow) Total(now time.Time) float64 {
	var total float64
	for i, t := range w.times {
		if !t.After(now) {
			total += w.usage[i]
		}
	}
	return total
}
