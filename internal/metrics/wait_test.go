package metrics

import (
	"math"
	"testing"
	"time"
)

func TestWaitCollector(t *testing.T) {
	w := NewWaitCollector()
	w.Record("a", 10*time.Second, 100*time.Second)
	w.Record("a", 30*time.Second, 100*time.Second)
	w.Record("b", 0, 5*time.Second)
	stats := w.Stats()

	a := stats["a"]
	if a.Count != 2 {
		t.Errorf("a count = %d", a.Count)
	}
	if math.Abs(a.MeanWaitSeconds-20) > 1e-12 {
		t.Errorf("a mean wait = %g", a.MeanWaitSeconds)
	}
	if a.MaxWaitSeconds != 30 {
		t.Errorf("a max wait = %g", a.MaxWaitSeconds)
	}
	// Slowdowns: (10+100)/100 = 1.1 and (30+100)/100 = 1.3 → mean 1.2.
	if math.Abs(a.MeanBoundedSlowdown-1.2) > 1e-12 {
		t.Errorf("a slowdown = %g", a.MeanBoundedSlowdown)
	}

	// Short job bounded at 10s: (0+5)/10 = 0.5.
	b := stats["b"]
	if math.Abs(b.MeanBoundedSlowdown-0.5) > 1e-12 {
		t.Errorf("b slowdown = %g", b.MeanBoundedSlowdown)
	}

	if us := w.Users(); len(us) != 2 || us[0] != "a" {
		t.Errorf("users = %v", us)
	}
}

func TestWaitCollectorNegativeWaitClamped(t *testing.T) {
	w := NewWaitCollector()
	w.Record("u", -5*time.Second, time.Minute)
	if got := w.Stats()["u"].MeanWaitSeconds; got != 0 {
		t.Errorf("negative wait = %g", got)
	}
}

func TestWaitCollectorEmpty(t *testing.T) {
	w := NewWaitCollector()
	if len(w.Stats()) != 0 || len(w.Users()) != 0 {
		t.Error("empty collector not empty")
	}
}
