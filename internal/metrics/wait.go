package metrics

import (
	"math"
	"sort"
	"time"
)

// WaitStat summarizes queue-wait behaviour for one user: mean/max wait and
// mean bounded slowdown ((wait+run)/max(run, 10s), the standard metric that
// caps the slowdown of very short jobs).
type WaitStat struct {
	// Count is the number of completed jobs.
	Count int
	// MeanWaitSeconds and MaxWaitSeconds summarize queue waits.
	MeanWaitSeconds, MaxWaitSeconds float64
	// MeanBoundedSlowdown is the mean of (wait+run)/max(run, 10s).
	MeanBoundedSlowdown float64
}

// WaitCollector accumulates per-user wait statistics.
type WaitCollector struct {
	perUser map[string]*waitAcc
}

type waitAcc struct {
	count   int
	sumWait float64
	maxWait float64
	sumSlow float64
}

// NewWaitCollector returns an empty collector.
func NewWaitCollector() *WaitCollector {
	return &WaitCollector{perUser: map[string]*waitAcc{}}
}

// Record adds one completed job's wait and run time for user.
func (w *WaitCollector) Record(user string, wait, run time.Duration) {
	a := w.perUser[user]
	if a == nil {
		a = &waitAcc{}
		w.perUser[user] = a
	}
	ws := wait.Seconds()
	if ws < 0 {
		ws = 0
	}
	a.count++
	a.sumWait += ws
	a.maxWait = math.Max(a.maxWait, ws)
	denom := math.Max(run.Seconds(), 10)
	a.sumSlow += (ws + run.Seconds()) / denom
}

// Stats returns the per-user statistics.
func (w *WaitCollector) Stats() map[string]WaitStat {
	out := make(map[string]WaitStat, len(w.perUser))
	for u, a := range w.perUser {
		s := WaitStat{Count: a.count, MaxWaitSeconds: a.maxWait}
		if a.count > 0 {
			s.MeanWaitSeconds = a.sumWait / float64(a.count)
			s.MeanBoundedSlowdown = a.sumSlow / float64(a.count)
		}
		out[u] = s
	}
	return out
}

// Users returns the sorted users with recorded jobs.
func (w *WaitCollector) Users() []string {
	out := make([]string, 0, len(w.perUser))
	for u := range w.perUser {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
