package metrics

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func mins(m int) time.Time { return t0.Add(time.Duration(m) * time.Minute) }

func TestSeriesAddAtLast(t *testing.T) {
	s := &Series{}
	s.Add(mins(0), 1)
	s.Add(mins(10), 2)
	s.Add(mins(20), 3)
	if s.Len() != 3 || s.Last() != 3 {
		t.Errorf("Len=%d Last=%g", s.Len(), s.Last())
	}
	if got := s.At(mins(15)); got != 2 {
		t.Errorf("At(15m) = %g", got)
	}
	if got := s.At(mins(20)); got != 3 {
		t.Errorf("At(20m) = %g", got)
	}
	if got := s.At(mins(-5)); !math.IsNaN(got) {
		t.Errorf("At before start = %g", got)
	}
	empty := &Series{}
	if !math.IsNaN(empty.Last()) {
		t.Error("empty Last should be NaN")
	}
}

func TestPerUser(t *testing.T) {
	p := PerUser{}
	p.Add("b", mins(0), 1)
	p.Add("a", mins(0), 2)
	p.Add("a", mins(1), 3)
	if got := p.Users(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Users = %v", got)
	}
	if p["a"].Len() != 2 {
		t.Errorf("a samples = %d", p["a"].Len())
	}
}

func TestConvergenceTime(t *testing.T) {
	s := &Series{}
	// Oscillates, then settles at 0.5 from minute 30 on.
	vals := []float64{0.9, 0.2, 0.7, 0.52, 0.49, 0.5, 0.51}
	for i, v := range vals {
		s.Add(mins(i*10), v)
	}
	at, ok := ConvergenceTime(s, 0.5, 0.05)
	if !ok {
		t.Fatal("never converged")
	}
	if !at.Equal(mins(30)) {
		t.Errorf("converged at %v, want %v", at, mins(30))
	}
	// Ends badly: no convergence.
	s.Add(mins(100), 0.9)
	if _, ok := ConvergenceTime(s, 0.5, 0.05); ok {
		t.Error("converged despite bad ending")
	}
	if _, ok := ConvergenceTime(&Series{}, 0.5, 0.05); ok {
		t.Error("empty series converged")
	}
	if _, ok := ConvergenceTime(nil, 0.5, 0.05); ok {
		t.Error("nil series converged")
	}
}

func TestMaxDeviationAndMeanAbsError(t *testing.T) {
	s := &Series{}
	s.Add(mins(0), 0.9) // excluded by from
	s.Add(mins(10), 0.6)
	s.Add(mins(20), 0.45)
	if got := MaxDeviation(s, 0.5, mins(5)); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MaxDeviation = %g", got)
	}
	if got := MeanAbsError(s, 0.5, mins(5)); math.Abs(got-0.075) > 1e-12 {
		t.Errorf("MeanAbsError = %g", got)
	}
	if got := MeanAbsError(s, 0.5, mins(100)); !math.IsNaN(got) {
		t.Errorf("empty window MAE = %g", got)
	}
}

func TestUsageWindowShares(t *testing.T) {
	w := NewUsageWindow(time.Hour)
	w.Record(mins(0), "a", 100)
	w.Record(mins(30), "b", 100)
	w.Record(mins(90), "a", 200)

	// At minute 90 the window (30, 90] holds b:100 (at 30? strictly after
	// from=30 → excluded) and a:200.
	shares := w.Shares(mins(90))
	if math.Abs(shares["a"]-200.0/200.0) > 1e-12 {
		t.Errorf("a share = %g (shares=%v)", shares["a"], shares)
	}
	// At minute 45 the window (−15, 45] holds a:100 and b:100.
	shares = w.Shares(mins(45))
	if math.Abs(shares["a"]-0.5) > 1e-12 || math.Abs(shares["b"]-0.5) > 1e-12 {
		t.Errorf("shares at 45m = %v", shares)
	}
	// Future events are invisible.
	shares = w.Shares(mins(10))
	if shares["b"] != 0 {
		t.Errorf("future usage leaked: %v", shares)
	}
}

func TestUsageWindowUnbounded(t *testing.T) {
	w := NewUsageWindow(0)
	w.Record(mins(0), "a", 300)
	w.Record(mins(500), "b", 100)
	shares := w.Shares(mins(600))
	if math.Abs(shares["a"]-0.75) > 1e-12 {
		t.Errorf("unbounded a share = %g", shares["a"])
	}
	if got := w.Total(mins(600)); got != 400 {
		t.Errorf("Total = %g", got)
	}
	if got := w.Total(mins(1)); got != 300 {
		t.Errorf("Total at 1m = %g", got)
	}
}

func TestUsageWindowEmpty(t *testing.T) {
	w := NewUsageWindow(time.Hour)
	if got := w.Shares(mins(10)); len(got) != 0 {
		t.Errorf("empty shares = %v", got)
	}
}
