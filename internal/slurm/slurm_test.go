package slurm

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/usage"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

// staticFS returns fixed fairshare values per user.
type staticFS struct {
	values map[string]float64
	err    error
	calls  int
}

func (s *staticFS) Name() string { return "static" }
func (s *staticFS) Fairshare(u string) (float64, error) {
	s.calls++
	if s.err != nil {
		return 0, s.err
	}
	return s.values[u], nil
}

func newSched(t *testing.T, k *eventsim.Kernel, cores int, fs FairshareProvider, opts ...func(*Config)) (*Scheduler, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.New("c", cores, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Cluster:  c,
		Priority: &Multifactor{FS: fs, Weights: sched.FairshareOnly()},
	}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg), c
}

func job(id int64, user string, dur time.Duration, at time.Time) *sched.Job {
	return &sched.Job{ID: id, LocalUser: user, Procs: 1, Duration: dur, Submit: at}
}

func TestHighFairshareRunsFirst(t *testing.T) {
	k := eventsim.New(t0)
	fs := &staticFS{values: map[string]float64{"hi": 0.9, "lo": 0.1}}
	s, c := newSched(t, k, 1, fs)

	// Fill the single core so both test jobs queue.
	s.Submit(job(1, "lo", time.Hour, t0))
	s.Submit(job(2, "lo", time.Hour, t0))
	s.Submit(job(3, "hi", time.Hour, t0))
	if c.RunningCount() != 1 || s.QueueLen() != 2 {
		t.Fatalf("running=%d queued=%d", c.RunningCount(), s.QueueLen())
	}
	var order []int64
	c.OnComplete(func(j *sched.Job) { order = append(order, j.ID) })
	k.RunAll(0)
	// Job 1 runs first (it was alone), then job 3 (hi) beats job 2 (lo).
	want := []int64{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

func TestJobCompPluginsFire(t *testing.T) {
	k := eventsim.New(t0)
	fs := &staticFS{values: map[string]float64{}}
	var reported []*sched.Job
	handler := jobCompFunc(func(j *sched.Job) { reported = append(reported, j) })
	s, _ := newSched(t, k, 2, fs, func(c *Config) { c.JobComp = []JobCompHandler{handler} })
	s.Submit(job(1, "u", time.Minute, t0))
	k.RunAll(0)
	if len(reported) != 1 || reported[0].ID != 1 {
		t.Errorf("reported = %v", reported)
	}
}

type jobCompFunc func(*sched.Job)

func (f jobCompFunc) JobCompleted(j *sched.Job) { f(j) }

func TestCompletionTriggersBackfill(t *testing.T) {
	k := eventsim.New(t0)
	fs := &staticFS{values: map[string]float64{}}
	s, c := newSched(t, k, 1, fs)
	s.Submit(job(1, "u", time.Minute, t0))
	s.Submit(job(2, "u", time.Minute, t0))
	k.RunAll(0)
	if c.Completed() != 2 {
		t.Errorf("completed = %d, want both jobs to run back-to-back", c.Completed())
	}
	if s.QueueLen() != 0 {
		t.Errorf("queue = %d", s.QueueLen())
	}
}

func TestReprioritizeIntervalCachesPriorities(t *testing.T) {
	k := eventsim.New(t0)
	fs := &staticFS{values: map[string]float64{"u": 0.5}}
	s, _ := newSched(t, k, 1, fs, func(c *Config) {
		c.ReprioritizeInterval = 10 * time.Minute
	})
	// Fill the core, then enqueue more jobs.
	s.Submit(job(1, "u", time.Hour, t0))
	base := fs.calls
	for i := int64(2); i <= 5; i++ {
		s.Submit(job(i, "u", time.Hour, t0))
	}
	// Each submit computes the new job's priority once; queued jobs are NOT
	// all recomputed each pass within the interval.
	perSubmit := fs.calls - base
	if perSubmit > 8 { // 4 submits; allow one full recompute
		t.Errorf("provider called %d times for 4 submits with caching", perSubmit)
	}
	// After the interval, a pass recomputes everything.
	k.Clock().Advance(11 * time.Minute)
	before := fs.calls
	s.Schedule(k.Now())
	if fs.calls-before < 4 {
		t.Errorf("expected full recompute after interval, got %d calls", fs.calls-before)
	}
}

func TestStrictOrderBlocksLowerJobs(t *testing.T) {
	fs := &staticFS{values: map[string]float64{"big": 0.9, "small": 0.1}}
	// 2-core cluster: a running 1-core job, a queued 2-core high-priority
	// job that does not fit, and a 1-core low-priority job that would fit.
	mk := func(strict bool) (int64, int64) {
		k := eventsim.New(t0)
		c, _ := cluster.New("c", 2, k)
		s := New(Config{
			Cluster:     c,
			Priority:    &Multifactor{FS: fs, Weights: sched.FairshareOnly()},
			StrictOrder: strict,
		})
		s.Submit(&sched.Job{ID: 1, LocalUser: "small", Procs: 1, Duration: time.Hour, Submit: t0})
		s.Submit(&sched.Job{ID: 2, LocalUser: "big", Procs: 2, Duration: time.Hour, Submit: t0})
		s.Submit(&sched.Job{ID: 3, LocalUser: "small", Procs: 1, Duration: time.Hour, Submit: t0})
		return int64(c.RunningCount()), int64(s.QueueLen())
	}
	running, queued := mk(true)
	if running != 1 || queued != 2 {
		t.Errorf("strict: running=%d queued=%d, want 1/2 (blocked by big job)", running, queued)
	}
	running, queued = mk(false)
	if running != 2 || queued != 1 {
		t.Errorf("backfill: running=%d queued=%d, want 2/1", running, queued)
	}
}

func TestProviderFailureFallsBackToNeutral(t *testing.T) {
	k := eventsim.New(t0)
	fs := &staticFS{err: errors.New("aequus down")}
	mf := &Multifactor{FS: fs, Weights: sched.FairshareOnly()}
	s, c := newSched(t, k, 1, fs, func(cfg *Config) { cfg.Priority = mf })
	s.Submit(job(1, "u", time.Minute, t0))
	k.RunAll(0)
	if c.Completed() != 1 {
		t.Error("job did not run despite provider failure")
	}
	if mf.Errors() == 0 {
		t.Error("errors not counted")
	}
}

func TestMultifactorAgeAndSizeFactors(t *testing.T) {
	mf := &Multifactor{
		Weights: sched.Weights{Age: 1, JobSize: 1},
		MaxAge:  time.Hour,
		Cores:   10,
	}
	j := &sched.Job{Submit: t0, Procs: 1, State: sched.Pending}
	p := mf.Priority(j, t0.Add(30*time.Minute))
	// age 0.5 + size 1.0
	if math.Abs(p-1.5) > 1e-12 {
		t.Errorf("priority = %g, want 1.5", p)
	}
	// Age clamps at 1.
	p = mf.Priority(j, t0.Add(10*time.Hour))
	if math.Abs(p-2.0) > 1e-12 {
		t.Errorf("priority = %g, want 2.0", p)
	}
	big := &sched.Job{Submit: t0, Procs: 10, State: sched.Pending}
	p = mf.Priority(big, t0)
	// size factor = 1 - 9/10 = 0.1
	if math.Abs(p-0.1) > 1e-12 {
		t.Errorf("big job priority = %g, want 0.1", p)
	}
}

func TestLocalFairshareBaseline(t *testing.T) {
	clock := simclock.NewSim(t0)
	lf := NewLocalFairshare(map[string]float64{"a": 1, "b": 1},
		usage.None{}, time.Minute, clock)

	// No usage: everyone at factor 1.
	f, err := lf.Fairshare("a")
	if err != nil || f != 1 {
		t.Errorf("initial = %g, %v", f, err)
	}
	// a consumes everything: a drops, b stays high.
	lf.JobCompleted(&sched.Job{LocalUser: "a", Procs: 1,
		Start: t0, End: t0.Add(time.Hour), State: sched.Completed})
	fa, _ := lf.Fairshare("a")
	fb, _ := lf.Fairshare("b")
	if fa >= fb {
		t.Errorf("a=%g should be below b=%g", fa, fb)
	}
	// a at usage share 1, target 0.5 → 2^(-2) = 0.25.
	if math.Abs(fa-0.25) > 1e-9 {
		t.Errorf("a = %g, want 0.25", fa)
	}
	// Unknown user has no share.
	f0, _ := lf.Fairshare("ghost")
	if f0 != 0 {
		t.Errorf("ghost = %g", f0)
	}
}

func TestSubmittedCounter(t *testing.T) {
	k := eventsim.New(t0)
	fs := &staticFS{values: map[string]float64{}}
	s, _ := newSched(t, k, 4, fs)
	for i := int64(1); i <= 3; i++ {
		s.Submit(job(i, "u", time.Minute, t0))
	}
	if s.Submitted() != 3 {
		t.Errorf("Submitted = %d", s.Submitted())
	}
	if s.RunningCount() != 3 {
		t.Errorf("RunningCount = %d", s.RunningCount())
	}
}
