package slurm

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// Config configures a SLURM-like scheduler instance.
type Config struct {
	// Cluster executes the jobs.
	Cluster *cluster.Cluster
	// Priority is the multifactor priority plug-in.
	Priority *Multifactor
	// JobComp are the job-completion plug-ins, invoked in order.
	JobComp []JobCompHandler
	// ReprioritizeInterval bounds how often queue priorities are
	// recomputed — the "local resource manager re-prioritization interval",
	// update delay component (IV). Zero recomputes on every pass.
	ReprioritizeInterval time.Duration
	// StrictOrder stops a scheduling pass at the first job that does not
	// fit (pure FIFO-by-priority); false keeps filling with lower-priority
	// jobs that fit (first-fit backfill).
	StrictOrder bool
	// OnStart observes every job start with the queue priority it was
	// dispatched at and the scheduling pass it belongs to (passes number
	// consecutively per scheduler). Within one pass, dispatch priorities
	// are non-increasing — the invariant the scenario harness checks.
	OnStart func(j *sched.Job, priority float64, pass uint64)
}

// Scheduler is a SLURM-like resource manager. Pending jobs live in a
// priority heap; priorities are recomputed in bulk at the re-prioritization
// interval, so a scheduling pass is O(log n) per started job.
type Scheduler struct {
	cfg Config

	mu        sync.Mutex
	queue     sched.PriorityQueue
	lastPrios time.Time
	hasPrios  bool
	submitted int64
	passes    uint64
}

// New creates a scheduler and hooks job completions: completion plug-ins
// fire, then a new scheduling pass runs to fill the freed cores.
func New(cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg}
	cfg.Cluster.OnComplete(func(j *sched.Job) {
		for _, h := range s.cfg.JobComp {
			h.JobCompleted(j)
		}
		s.Schedule(j.End)
	})
	return s
}

// Submit implements sched.ResourceManager: the job is enqueued with a
// freshly computed priority and a scheduling pass runs.
func (s *Scheduler) Submit(j *sched.Job) {
	s.mu.Lock()
	j.State = sched.Pending
	p := 0.0
	if s.cfg.Priority != nil {
		p = s.cfg.Priority.Priority(j, j.Submit)
	}
	s.queue.Push(j, p)
	s.submitted++
	s.mu.Unlock()
	s.Schedule(j.Submit)
}

// QueueLen implements sched.ResourceManager.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// RunningCount implements sched.ResourceManager.
func (s *Scheduler) RunningCount() int { return s.cfg.Cluster.RunningCount() }

// Submitted reports the lifetime submit counter.
func (s *Scheduler) Submitted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted
}

// Pending returns a snapshot of the queued (not yet started) jobs in
// unspecified order. The scenario harness uses it for starvation checks;
// callers must not mutate the jobs.
func (s *Scheduler) Pending() []*sched.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Jobs()
}

// Schedule implements sched.ResourceManager: it recomputes queue priorities
// if the re-prioritization interval has elapsed, then starts jobs from the
// head of the priority queue onto the cluster.
func (s *Scheduler) Schedule(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.cfg.Priority != nil &&
		(!s.hasPrios || s.cfg.ReprioritizeInterval <= 0 ||
			now.Sub(s.lastPrios) >= s.cfg.ReprioritizeInterval) {
		s.queue.Reprioritize(func(j *sched.Job) float64 {
			return s.cfg.Priority.Priority(j, now)
		})
		s.lastPrios = now
		s.hasPrios = true
	}

	if s.cfg.Cluster.FreeCores() == 0 {
		return
	}
	s.passes++

	// Start jobs in priority order; jobs that do not fit are stashed and
	// re-pushed afterwards (unless StrictOrder stops the pass).
	var stash []sched.QueuedJob
	for s.cfg.Cluster.FreeCores() > 0 {
		qj, ok := s.queue.Pop()
		if !ok {
			break
		}
		if s.cfg.Cluster.TryStart(qj.Job) {
			if s.cfg.OnStart != nil {
				s.cfg.OnStart(qj.Job, qj.Priority, s.passes)
			}
			continue
		}
		stash = append(stash, qj)
		if s.cfg.StrictOrder {
			break
		}
	}
	for _, qj := range stash {
		s.queue.Push(qj.Job, qj.Priority)
	}
}

var _ sched.ResourceManager = (*Scheduler)(nil)
