// Package slurm implements a SLURM-like local resource manager: a
// multifactor priority plug-in system, job-completion plug-ins, and a
// periodic scheduling loop. The Aequus integration mirrors Section III-A:
// "the priority plug-in is based on the existing multifactor priority
// plugin, with the normal fairshare priority calculation code replaced with
// a call to libaequus. A job completion plug-in supplies usage information
// to Aequus."
package slurm

import (
	"context"
	"math"
	"sync"
	"time"

	"repro/internal/libaequus"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
)

// FairshareProvider supplies the fairshare factor for a local user — the
// seam where Aequus replaces SLURM's local calculation.
type FairshareProvider interface {
	// Fairshare returns the factor in [0,1].
	Fairshare(localUser string) (float64, error)
	// Name identifies the provider.
	Name() string
}

// JobCompHandler is the job-completion plug-in interface.
type JobCompHandler interface {
	JobCompleted(j *sched.Job)
}

// AequusFairshare is the Aequus priority plug-in: the fairshare factor is a
// libaequus call-out.
type AequusFairshare struct {
	Lib *libaequus.Client
	// Spans receives one "rm.fairshare_callout" span per call-out (nil
	// disables tracing).
	Spans *span.Recorder
}

// Name implements FairshareProvider.
func (AequusFairshare) Name() string { return "aequus" }

// Fairshare implements FairshareProvider.
func (a AequusFairshare) Fairshare(localUser string) (float64, error) {
	_, sp := span.Start(span.WithRecorder(context.Background(), a.Spans),
		"rm.fairshare_callout")
	sp.SetAttr("rm", "slurm")
	sp.SetAttr("user", localUser)
	v, err := a.Lib.PriorityForLocalUser(localUser)
	sp.SetErr(err)
	sp.End()
	return v, err
}

// AequusJobComp is the Aequus job-completion plug-in.
type AequusJobComp struct {
	Lib *libaequus.Client
}

// JobCompleted implements JobCompHandler.
func (a AequusJobComp) JobCompleted(j *sched.Job) {
	_ = a.Lib.JobComplete(j.LocalUser, j.Start, j.End.Sub(j.Start), j.Procs)
}

// LocalFairshare is the baseline: SLURM's classic local fairshare factor
// F = 2^(−U/S), where U is the user's decayed share of local usage and S the
// configured share. Only local history is considered — "each site an
// independent fairshare prioritization system where only local history is
// considered".
type LocalFairshare struct {
	clock  simclock.Clock
	decay  usage.Decay
	mu     sync.Mutex
	shares map[string]float64
	hist   *usage.Histogram
}

// NewLocalFairshare creates a local fairshare provider with normalized
// shares per local user.
func NewLocalFairshare(shares map[string]float64, decay usage.Decay, binWidth time.Duration, clock simclock.Clock) *LocalFairshare {
	if clock == nil {
		clock = simclock.Real{}
	}
	if decay == nil {
		decay = usage.None{}
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	norm := map[string]float64{}
	for u, s := range shares {
		if sum > 0 {
			norm[u] = s / sum
		}
	}
	return &LocalFairshare{
		clock:  clock,
		decay:  decay,
		shares: norm,
		hist:   usage.NewHistogram(binWidth),
	}
}

// Name implements FairshareProvider.
func (*LocalFairshare) Name() string { return "local" }

// JobCompleted records local usage (the baseline provider doubles as its own
// job-completion plug-in).
func (l *LocalFairshare) JobCompleted(j *sched.Job) {
	l.hist.AddSpread(j.LocalUser, j.Start, j.End.Sub(j.Start), j.Procs)
}

// Fairshare implements FairshareProvider.
func (l *LocalFairshare) Fairshare(localUser string) (float64, error) {
	l.mu.Lock()
	share := l.shares[localUser]
	l.mu.Unlock()
	if share <= 0 {
		return 0, nil
	}
	now := l.clock.Now()
	totals := l.hist.DecayedTotals(now, l.decay)
	var sum float64
	for _, v := range totals {
		sum += v
	}
	if sum == 0 {
		return 1, nil
	}
	u := totals[localUser] / sum
	return math.Exp2(-u / share), nil
}

// Multifactor is the multifactor priority plug-in: a weighted linear
// combination of fairshare, age, QoS and size factors, each in [0,1].
type Multifactor struct {
	// FS supplies the fairshare factor (Aequus or local).
	FS FairshareProvider
	// Weights are the factor multipliers.
	Weights sched.Weights
	// MaxAge normalizes the age factor: age = min(1, wait/MaxAge).
	// Zero disables the age factor.
	MaxAge time.Duration
	// Cores normalizes the size factor (smaller jobs score higher).
	Cores int

	mu     sync.Mutex
	errors int
}

// Priority computes the combined priority of a job at `now`. Fairshare
// provider failures fall back to a neutral 0.5 so a temporarily unreachable
// Aequus never wedges the scheduler; failures are counted.
func (m *Multifactor) Priority(j *sched.Job, now time.Time) float64 {
	var f sched.Factors
	if m.FS != nil {
		fs, err := m.FS.Fairshare(j.LocalUser)
		if err != nil {
			m.mu.Lock()
			m.errors++
			m.mu.Unlock()
			fs = 0.5
		}
		f.Fairshare = fs
	}
	if m.MaxAge > 0 {
		f.Age = math.Min(1, float64(j.WaitTime(now))/float64(m.MaxAge))
	}
	f.QoS = j.QoS
	if m.Cores > 0 && j.Procs >= 1 {
		f.JobSize = 1 - float64(j.Procs-1)/float64(m.Cores)
	}
	return m.Weights.Combine(f)
}

// Errors reports how many fairshare call-outs have failed.
func (m *Multifactor) Errors() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.errors
}
