package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/sched"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	k := eventsim.New(t0)
	if _, err := New("c", 0, k); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New("c", 4, nil); err == nil {
		t.Error("nil kernel accepted")
	}
	c, err := New("c", 4, k)
	if err != nil || c.Cores() != 4 || c.FreeCores() != 4 || c.Name() != "c" {
		t.Errorf("New = %+v, %v", c, err)
	}
}

func TestJobLifecycle(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := New("c", 2, k)
	var completed []*sched.Job
	c.OnComplete(func(j *sched.Job) { completed = append(completed, j) })

	j := &sched.Job{ID: 1, LocalUser: "u", Procs: 1, Duration: time.Hour, Submit: t0}
	if !c.TryStart(j) {
		t.Fatal("TryStart failed with free cores")
	}
	if j.State != sched.Running || !j.Start.Equal(t0) || j.Site != "c" {
		t.Errorf("running job = %+v", j)
	}
	if c.FreeCores() != 1 || c.RunningCount() != 1 || c.Started() != 1 {
		t.Errorf("cluster state: free=%d running=%d", c.FreeCores(), c.RunningCount())
	}

	k.RunAll(0)
	if j.State != sched.Completed {
		t.Errorf("state after run = %v", j.State)
	}
	if !j.End.Equal(t0.Add(time.Hour)) {
		t.Errorf("End = %v", j.End)
	}
	if len(completed) != 1 || completed[0] != j {
		t.Errorf("completions = %v", completed)
	}
	if c.FreeCores() != 2 || c.Completed() != 1 {
		t.Errorf("after completion: free=%d completed=%d", c.FreeCores(), c.Completed())
	}
}

func TestTryStartRejectsWhenFull(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := New("c", 2, k)
	j1 := &sched.Job{ID: 1, Procs: 2, Duration: time.Hour}
	j2 := &sched.Job{ID: 2, Procs: 1, Duration: time.Hour}
	if !c.TryStart(j1) {
		t.Fatal("j1 should start")
	}
	if c.TryStart(j2) {
		t.Error("j2 started on a full cluster")
	}
	if j2.State != sched.Pending {
		t.Errorf("j2 state = %v", j2.State)
	}
}

func TestTryStartRejectsNonPending(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := New("c", 4, k)
	j := &sched.Job{ID: 1, Procs: 1, Duration: time.Hour, State: sched.Running}
	if c.TryStart(j) {
		t.Error("non-pending job started")
	}
}

func TestProcsClampedToOne(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := New("c", 2, k)
	j := &sched.Job{ID: 1, Procs: 0, Duration: time.Minute}
	if !c.TryStart(j) {
		t.Fatal("zero-proc job rejected")
	}
	if c.FreeCores() != 1 {
		t.Errorf("free = %d, want 1 (clamped to 1 proc)", c.FreeCores())
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := New("c", 4, k)
	// 2 cores busy for 1 hour out of a 2-hour window on a 4-core cluster:
	// utilization = (2*3600) / (4*7200) = 0.25.
	j := &sched.Job{ID: 1, Procs: 2, Duration: time.Hour}
	c.TryStart(j)
	k.RunAll(0)
	k.Clock().Advance(time.Hour)
	if got := c.BusyCoreSeconds(); math.Abs(got-7200) > 1e-9 {
		t.Errorf("busy core-seconds = %g", got)
	}
	if got := c.Utilization(t0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("utilization = %g", got)
	}
	if got := c.Utilization(k.Now()); got != 0 {
		t.Errorf("empty-window utilization = %g", got)
	}
}

func TestConcurrentJobsCompleteInOrder(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := New("c", 10, k)
	var order []int64
	c.OnComplete(func(j *sched.Job) { order = append(order, j.ID) })
	for i := 1; i <= 5; i++ {
		j := &sched.Job{ID: int64(i), Procs: 1, Duration: time.Duration(6-i) * time.Minute}
		if !c.TryStart(j) {
			t.Fatalf("job %d rejected", i)
		}
	}
	k.RunAll(0)
	// Shorter jobs (higher IDs) finish first.
	want := []int64{5, 4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v", order)
		}
	}
}
