// Package cluster implements a virtual compute cluster driven by the
// discrete-event kernel: a pool of cores that runs jobs for their declared
// duration and reports completions. It mirrors the paper's testbed, where
// "actual computations are replaced with idle wait jobs to allow for large
// amounts of virtual resources being hosted on the available set of physical
// resources" — here the waiting itself is virtualized.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/eventsim"
	"repro/internal/sched"
)

// Cluster is a virtual cluster with a fixed number of cores.
type Cluster struct {
	name   string
	cores  int
	kernel *eventsim.Kernel

	mu         sync.Mutex
	freeCores  int
	running    map[int64]*sched.Job
	onComplete []func(*sched.Job)

	// busyIntegral accumulates core-seconds of occupancy up to lastChange,
	// for utilization accounting.
	busyIntegral float64
	lastChange   time.Time
	started      int64
	completed    int64
	// completedByUser accumulates finished core-seconds per grid user, so
	// UsageByUser can report consumed compute including running jobs.
	completedByUser map[string]float64
}

// New creates a cluster with the given core count on the kernel's clock.
func New(name string, cores int, kernel *eventsim.Kernel) (*Cluster, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cluster: cores must be positive, got %d", cores)
	}
	if kernel == nil {
		return nil, fmt.Errorf("cluster: nil kernel")
	}
	return &Cluster{
		name:            name,
		cores:           cores,
		kernel:          kernel,
		freeCores:       cores,
		running:         map[int64]*sched.Job{},
		lastChange:      kernel.Now(),
		completedByUser: map[string]float64{},
	}, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.name }

// Cores returns the total core count.
func (c *Cluster) Cores() int { return c.cores }

// FreeCores returns the currently idle cores.
func (c *Cluster) FreeCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeCores
}

// RunningCount returns the number of running jobs.
func (c *Cluster) RunningCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.running)
}

// Started and Completed report lifetime counters.
func (c *Cluster) Started() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

// Completed reports the number of jobs that have finished.
func (c *Cluster) Completed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// OnComplete registers a completion callback (e.g. the job-completion
// plug-in reporting usage to Aequus). Callbacks run inside the completion
// event, in registration order.
func (c *Cluster) OnComplete(fn func(*sched.Job)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onComplete = append(c.onComplete, fn)
}

// advanceIntegral must be called with the lock held before changing
// occupancy.
func (c *Cluster) advanceIntegral(now time.Time) {
	busy := c.cores - c.freeCores
	c.busyIntegral += float64(busy) * now.Sub(c.lastChange).Seconds()
	c.lastChange = now
}

// TryStart begins executing the job if enough cores are free, scheduling its
// completion on the kernel. It reports whether the job was started.
func (c *Cluster) TryStart(j *sched.Job) bool {
	procs := j.Procs
	if procs < 1 {
		procs = 1
	}
	now := c.kernel.Now()
	c.mu.Lock()
	if procs > c.freeCores || j.State != sched.Pending {
		c.mu.Unlock()
		return false
	}
	c.advanceIntegral(now)
	c.freeCores -= procs
	j.State = sched.Running
	j.Start = now
	j.Site = c.name
	c.running[j.ID] = j
	c.started++
	c.mu.Unlock()

	c.kernel.After(j.Duration, func(at time.Time) {
		c.complete(j, procs, at)
	})
	return true
}

func (c *Cluster) complete(j *sched.Job, procs int, at time.Time) {
	c.mu.Lock()
	c.advanceIntegral(at)
	c.freeCores += procs
	j.State = sched.Completed
	j.End = at
	delete(c.running, j.ID)
	c.completed++
	c.completedByUser[j.GridUser] += at.Sub(j.Start).Seconds() * float64(procs)
	callbacks := append(make([]func(*sched.Job), 0, len(c.onComplete)), c.onComplete...)
	c.mu.Unlock()
	for _, fn := range callbacks {
		fn(j)
	}
}

// BusyCoreSeconds returns the cumulative core-seconds of occupancy up to the
// current simulated time.
func (c *Cluster) BusyCoreSeconds() float64 {
	now := c.kernel.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	busy := c.cores - c.freeCores
	return c.busyIntegral + float64(busy)*now.Sub(c.lastChange).Seconds()
}

// UsageByUser returns the cumulative consumed core-seconds per grid user up
// to the current simulated time, including the accrued portion of running
// jobs — the quantity behind the paper's "combined usage share" curves.
func (c *Cluster) UsageByUser() map[string]float64 {
	now := c.kernel.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.completedByUser))
	for u, v := range c.completedByUser {
		out[u] = v
	}
	// Sum running jobs in ID order so repeated runs produce bit-identical
	// floating-point results.
	ids := make([]int64, 0, len(c.running))
	for id := range c.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		j := c.running[id]
		procs := j.Procs
		if procs < 1 {
			procs = 1
		}
		out[j.GridUser] += now.Sub(j.Start).Seconds() * float64(procs)
	}
	return out
}

// Utilization returns the average fraction of cores busy over the window
// from start to the current simulated time.
func (c *Cluster) Utilization(start time.Time) float64 {
	now := c.kernel.Now()
	window := now.Sub(start).Seconds()
	if window <= 0 {
		return 0
	}
	return c.BusyCoreSeconds() / (float64(c.cores) * window)
}
