// Package vector implements Aequus fairshare vectors (Section III-C): the
// per-user value vectors extracted from the fairshare tree, balance-point
// padding, lexicographic comparison, and the three projection algorithms of
// Table I that collapse a vector into a single number in [0,1] combinable
// with other scheduling factors.
package vector

import (
	"fmt"
	"strings"
)

// Vector is a fairshare vector: one element per level of the identity
// hierarchy, from the first level below the root down to the user's leaf.
// Elements live in the configurable resolution range [0, resolution) with
// the balance point at resolution/2. Elements are float64 so precision is
// "limited only by the numerical resolution of floating point
// representation".
type Vector []float64

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// PadTo extends the vector to length n by appending the balance point —
// what the paper does when "a path should end before reaching the bottom
// level of the tree (like /LQ does in the example)".
func (v Vector) PadTo(n int, balance float64) Vector {
	if len(v) >= n {
		return v.Clone()
	}
	out := make(Vector, n)
	copy(out, v)
	for i := len(v); i < n; i++ {
		out[i] = balance
	}
	return out
}

// Compare orders vectors lexicographically from the top (leftmost) level.
// Shorter vectors are implicitly padded with the balance point. It returns
// -1 if v ranks below o, +1 if above, 0 if equal.
func (v Vector) Compare(o Vector, balance float64) int {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		a, b := balance, balance
		if i < len(v) {
			a = v[i]
		}
		if i < len(o) {
			b = o[i]
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
	}
	return 0
}

// String renders the vector with integer element values, in the style of
// the paper's Figure 3 (e.g. "7499:5000:2500").
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, e := range v {
		parts[i] = fmt.Sprintf("%04.0f", e)
	}
	return strings.Join(parts, ":")
}

// Entry carries everything the projections need for one user: the fairshare
// vector plus the per-level policy and usage shares along the user's path.
type Entry struct {
	// User is the grid user identity.
	User string
	// Vec is the user's fairshare vector.
	Vec Vector
	// PathShares holds the normalized target share at each level.
	PathShares []float64
	// PathUsage holds the usage share (within the sibling group) at each
	// level.
	PathUsage []float64
}

// Projection collapses fairshare vectors into single values in [0,1], to be
// linearly combined with other factors (job age, QoS, ...) by SLURM or Maui.
type Projection interface {
	// Name identifies the algorithm.
	Name() string
	// Project maps each entry's user to a value in [0,1]. resolution is the
	// fairshare value range (balance point = resolution/2).
	Project(entries []Entry, resolution float64) map[string]float64
}

// PointwiseProjection is implemented by projections whose value for one
// entry depends only on that entry (Bitwise, Percental — but not
// Dictionary, whose rank values couple every entry through the global
// sort). Pointwise projections let the FCS fill a per-position priority
// slice directly from the serving index, with no intermediate map and
// trivially parallelizable per-entry work.
type PointwiseProjection interface {
	Projection
	// ProjectEntry maps one entry to its value in [0,1], identical to the
	// value Project would assign it.
	ProjectEntry(e Entry, resolution float64) float64
}
