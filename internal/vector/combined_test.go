package vector

import (
	"testing"
)

func TestCombinedFairshareDominates(t *testing.T) {
	c := CombinedOrdering{Resolution: 10000, Quantum: 250}
	// Clearly different fairshare: the old job's age cannot beat the
	// under-served user's fairshare.
	under := c.Combine(Vector{7000}, 0.0) // no age credit
	over := c.Combine(Vector{3000}, 1.0)  // maximal age credit
	if !c.Less(over, under) {
		t.Errorf("fairshare should dominate: over=%v under=%v", over, under)
	}
}

func TestCombinedAgeBreaksNearTies(t *testing.T) {
	c := CombinedOrdering{Resolution: 10000, Quantum: 250}
	// Within one quantum (5010 vs 5120 with quantum 250 → same bucket),
	// the older job wins.
	youngish := c.Combine(Vector{5120}, 0.1)
	oldish := c.Combine(Vector{5010}, 0.9)
	if !c.Less(youngish, oldish) {
		t.Errorf("age should break the near-tie: young=%v old=%v", youngish, oldish)
	}
}

func TestCombinedQuantization(t *testing.T) {
	c := CombinedOrdering{Resolution: 10000, Quantum: 100}
	v := c.Combine(Vector{5678, 1234}, 0.5)
	if v[0] != 5600 || v[1] != 1200 {
		t.Errorf("quantized = %v", v)
	}
	if len(v) != 3 {
		t.Fatalf("combined length = %d", len(v))
	}
	if v[2] != 0.5*9999 {
		t.Errorf("age level = %g", v[2])
	}
}

func TestCombinedFactorClamping(t *testing.T) {
	c := CombinedOrdering{}
	v := c.Combine(Vector{5000}, -3, 7)
	if v[1] != 0 {
		t.Errorf("negative factor = %g, want 0", v[1])
	}
	if v[2] != 9999 {
		t.Errorf("oversized factor = %g, want 9999", v[2])
	}
}

func TestCombinedDefaults(t *testing.T) {
	c := CombinedOrdering{}
	res, quantum := c.params()
	if res != 10000 || quantum != 10000.0/64 {
		t.Errorf("defaults = %g, %g", res, quantum)
	}
}

func TestCombinedMultiLevelIsolationPreserved(t *testing.T) {
	c := CombinedOrdering{Resolution: 10000, Quantum: 250}
	// Top-level fairshare difference dominates deeper levels AND factors.
	a := c.Combine(Vector{6000, 0}, 0)
	b := c.Combine(Vector{5500, 9999}, 1)
	if !c.Less(b, a) {
		t.Errorf("top level must dominate: a=%v b=%v", a, b)
	}
}
