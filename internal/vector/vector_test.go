package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPadTo(t *testing.T) {
	v := Vector{7000, 3000}
	p := v.PadTo(4, 5000)
	if len(p) != 4 || p[2] != 5000 || p[3] != 5000 {
		t.Errorf("PadTo = %v", p)
	}
	if len(v) != 2 {
		t.Error("PadTo mutated input")
	}
	// Already long enough: copy returned.
	same := v.PadTo(1, 5000)
	if len(same) != 2 {
		t.Errorf("PadTo shorter = %v", same)
	}
}

func TestCompareLexicographic(t *testing.T) {
	bal := 5000.0
	cases := []struct {
		a, b Vector
		want int
	}{
		{Vector{6000, 1000}, Vector{5000, 9999}, 1},  // top level dominates
		{Vector{5000, 1000}, Vector{5000, 2000}, -1}, // tie broken at level 2
		{Vector{5000, 5000}, Vector{5000, 5000}, 0},
		{Vector{6000}, Vector{6000, 4000}, 1},  // padding: 5000 > 4000
		{Vector{6000}, Vector{6000, 6000}, -1}, // padding: 5000 < 6000
		{Vector{6000}, Vector{6000, 5000}, 0},  // padding equal
		{nil, Vector{5000}, 0},                 // both effectively balance
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b, bal); got != c.want {
			t.Errorf("case %d: Compare(%v, %v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a, bal); got != -c.want {
			t.Errorf("case %d: reverse Compare = %d, want %d", i, got, -c.want)
		}
	}
}

func TestComparePropertyAntisymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		va, vb := Vector(a), Vector(b)
		return va.Compare(vb, 5000) == -vb.Compare(va, 5000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	v := Vector{7499, 5000, 2500}
	if got := v.String(); got != "7499:5000:2500" {
		t.Errorf("String = %q", got)
	}
}

func entriesABC() []Entry {
	// a above balance, b at balance, c below.
	return []Entry{
		{User: "a", Vec: Vector{7500}, PathShares: []float64{0.5}, PathUsage: []float64{0.2}},
		{User: "b", Vec: Vector{5000}, PathShares: []float64{0.3}, PathUsage: []float64{0.3}},
		{User: "c", Vec: Vector{2500}, PathShares: []float64{0.2}, PathUsage: []float64{0.5}},
	}
}

func TestDictionaryEvenSpacing(t *testing.T) {
	// "three vectors would result in the numerical values 0.75, 0.50, and
	// 0.25, according to sorting order."
	got := Dictionary{}.Project(entriesABC(), 10000)
	want := map[string]float64{"a": 0.75, "b": 0.50, "c": 0.25}
	for u, w := range want {
		if math.Abs(got[u]-w) > 1e-12 {
			t.Errorf("%s = %g, want %g", u, got[u], w)
		}
	}
}

func TestDictionaryTiesShareValue(t *testing.T) {
	es := []Entry{
		{User: "a", Vec: Vector{7000}},
		{User: "b", Vec: Vector{7000}},
		{User: "c", Vec: Vector{3000}},
	}
	got := Dictionary{}.Project(es, 10000)
	if got["a"] != got["b"] {
		t.Errorf("tied vectors got %g and %g", got["a"], got["b"])
	}
	if got["c"] >= got["a"] {
		t.Errorf("lower vector got %g >= %g", got["c"], got["a"])
	}
}

func TestDictionaryEmpty(t *testing.T) {
	if got := (Dictionary{}).Project(nil, 10000); len(got) != 0 {
		t.Errorf("empty projection = %v", got)
	}
}

func TestDictionaryLosesProportionality(t *testing.T) {
	// Table I: dictionary ordering is NOT proportional — the relative
	// difference between users is lost, only order survives.
	es := []Entry{
		{User: "far", Vec: Vector{9999}},
		{User: "mid", Vec: Vector{5001}},
		{User: "near", Vec: Vector{5000}},
	}
	got := Dictionary{}.Project(es, 10000)
	gapTop := got["far"] - got["mid"]  // vector gap 4998
	gapBot := got["mid"] - got["near"] // vector gap 1
	if math.Abs(gapTop-gapBot) > 1e-12 {
		t.Errorf("dictionary spacing should be rank-based: gaps %g vs %g", gapTop, gapBot)
	}
}

func TestBitwiseOrderPreserved(t *testing.T) {
	got := Bitwise{}.Project(entriesABC(), 10000)
	if !(got["a"] > got["b"] && got["b"] > got["c"]) {
		t.Errorf("bitwise order: %v", got)
	}
	for u, v := range got {
		if v < 0 || v > 1 {
			t.Errorf("%s = %g outside [0,1]", u, v)
		}
	}
}

func TestBitwiseTopLevelDominates(t *testing.T) {
	// The top-level values must differ by more than one 8-bit quantum
	// (10000/256 ≈ 39) to be distinguishable at all.
	es := []Entry{
		{User: "hi", Vec: Vector{6000, 0}},
		{User: "lo", Vec: Vector{5900, 9999}},
	}
	got := Bitwise{}.Project(es, 10000)
	if got["hi"] <= got["lo"] {
		t.Errorf("top level must dominate: hi=%g lo=%g", got["hi"], got["lo"])
	}
}

func TestBitwiseDepthLimited(t *testing.T) {
	// Table I: bitwise does NOT support arbitrary depth — elements beyond
	// MaxLevels are ignored, so vectors differing only there collapse.
	deep1 := make(Vector, 8)
	deep2 := make(Vector, 8)
	for i := range deep1 {
		deep1[i], deep2[i] = 5000, 5000
	}
	deep1[7], deep2[7] = 9999, 0 // differ only at level 8
	es := []Entry{{User: "x", Vec: deep1}, {User: "y", Vec: deep2}}
	got := Bitwise{BitsPerLevel: 8, MaxLevels: 6}.Project(es, 10000)
	if got["x"] != got["y"] {
		t.Errorf("levels beyond MaxLevels should not matter: %g vs %g", got["x"], got["y"])
	}
}

func TestBitwisePrecisionLimited(t *testing.T) {
	// Table I: bitwise does NOT have unlimited precision — values closer
	// than the quantization step collapse.
	es := []Entry{
		{User: "x", Vec: Vector{5000.0}},
		{User: "y", Vec: Vector{5000.4}},
	}
	got := Bitwise{BitsPerLevel: 8, MaxLevels: 1}.Project(es, 10000)
	if got["x"] != got["y"] {
		t.Errorf("sub-quantum difference should collapse: %g vs %g", got["x"], got["y"])
	}
}

func TestBitwiseParamsClampedToMantissa(t *testing.T) {
	b := Bitwise{BitsPerLevel: 16, MaxLevels: 8} // 128 bits > 52
	bits, levels := b.params()
	if bits*levels > 52 {
		t.Errorf("params = %d bits × %d levels exceeds float64 mantissa", bits, levels)
	}
}

func TestPercentalProportional(t *testing.T) {
	// Table I: percental IS proportional — differences in (target−usage)
	// map linearly to the output.
	es := []Entry{
		{User: "a", PathShares: []float64{0.6}, PathUsage: []float64{0.2}}, // +0.4
		{User: "b", PathShares: []float64{0.3}, PathUsage: []float64{0.3}}, // 0
		{User: "c", PathShares: []float64{0.1}, PathUsage: []float64{0.5}}, // -0.4
	}
	got := Percental{}.Project(es, 10000)
	if math.Abs((got["a"]-got["b"])-(got["b"]-got["c"])) > 1e-12 {
		t.Errorf("percental not proportional: %v", got)
	}
	if math.Abs(got["b"]-0.5) > 1e-12 {
		t.Errorf("balanced user = %g, want 0.5", got["b"])
	}
}

func TestPercentalMatchesPaperExample(t *testing.T) {
	// "a project share of 0.20 and a user share of 0.25 result in a share
	// of 0.05."
	e := Entry{User: "u", PathShares: []float64{0.20, 0.25}, PathUsage: []float64{0, 0}}
	got := Percental{}.Project([]Entry{e}, 10000)
	// target 0.05, usage 0 → (0.05+1)/2 = 0.525
	if math.Abs(got["u"]-0.525) > 1e-12 {
		t.Errorf("value = %g, want 0.525", got["u"])
	}
}

func TestPercentalLosesSubgroupIsolation(t *testing.T) {
	// Groups G1{a,b} and G2{c} each hold 50%. b idles while a consumed 45%
	// of the total (G1 usage 0.45 < target 0.5, so as a GROUP G1 is under
	// target and strict top-down enforcement would rank a above c). The
	// percental projection instead multiplies through the hierarchy and
	// ranks c above a — the isolation loss of Table I.
	a := Entry{User: "a", Vec: Vector{5500, 0},
		PathShares: []float64{0.5, 0.5}, PathUsage: []float64{0.45, 1.0}}
	c := Entry{User: "c", Vec: Vector{4500, 5000},
		PathShares: []float64{0.5, 1.0}, PathUsage: []float64{0.55, 1.0}}
	es := []Entry{a, c}

	dict := Dictionary{}.Project(es, 10000)
	if dict["a"] <= dict["c"] {
		t.Errorf("dictionary should isolate subgroups: a=%g c=%g", dict["a"], dict["c"])
	}
	perc := Percental{}.Project(es, 10000)
	if perc["a"] >= perc["c"] {
		t.Errorf("percental should NOT isolate subgroups here: a=%g c=%g", perc["a"], perc["c"])
	}
}

func TestAllProjectionsOutputUnitInterval(t *testing.T) {
	es := entriesABC()
	for _, p := range Projections() {
		got := p.Project(es, 10000)
		if len(got) != len(es) {
			t.Errorf("%s: %d outputs", p.Name(), len(got))
		}
		for u, v := range got {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s: %s = %g", p.Name(), u, v)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"dictionary", "bitwise", "percental"} {
		p, ok := ByName(name)
		if !ok || p.Name() != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown projection found")
	}
}
