package vector

import (
	"math"
	"sort"
)

// Dictionary implements the Dictionary Ordering projection: vectors are
// sorted lexicographically (descending) and each is assigned an evenly
// spaced value in (0,1) by rank — "three vectors would result in the
// numerical values 0.75, 0.50, and 0.25, according to sorting order".
// Equal vectors receive equal values. Rank spacing preserves depth,
// precision and subgroup isolation but loses proportionality: only the
// sorting order survives, not relative differences.
type Dictionary struct{}

// Name implements Projection.
func (Dictionary) Name() string { return "dictionary" }

// Project implements Projection.
func (Dictionary) Project(entries []Entry, resolution float64) map[string]float64 {
	out := make(map[string]float64, len(entries))
	if len(entries) == 0 {
		return out
	}
	balance := resolution / 2
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	// Descending: best vector first.
	sort.SliceStable(idx, func(a, b int) bool {
		return entries[idx[a]].Vec.Compare(entries[idx[b]].Vec, balance) > 0
	})
	n := float64(len(entries))
	rankValue := func(rank int) float64 { return (n - float64(rank)) / (n + 1) }
	prevRank := 0
	for pos, i := range idx {
		if pos > 0 {
			prev := entries[idx[pos-1]]
			if entries[i].Vec.Compare(prev.Vec, balance) != 0 {
				prevRank = pos
			}
		}
		out[entries[i].User] = rankValue(prevRank)
	}
	return out
}

// Bitwise implements the Bitwise Vector projection: each vector element is
// awarded BitsPerLevel bits of entropy, bitwise-merged with the top level at
// the most significant end, and the packed integer is rescaled to [0,1].
// Depth is limited to MaxLevels and precision to BitsPerLevel bits per
// level — the two properties this projection trades away (Table I) — but
// within that quantization it remains proportional and subgroup-isolating.
type Bitwise struct {
	// BitsPerLevel is the entropy per vector element (default 8).
	BitsPerLevel int
	// MaxLevels is the number of levels packed (default 6; the product
	// BitsPerLevel×MaxLevels must stay within float64's 53-bit mantissa).
	MaxLevels int
}

// Name implements Projection.
func (Bitwise) Name() string { return "bitwise" }

func (b Bitwise) params() (bits, levels int) {
	bits, levels = b.BitsPerLevel, b.MaxLevels
	if bits <= 0 {
		bits = 8
	}
	if levels <= 0 {
		levels = 6
	}
	for bits*levels > 52 { // keep the packed value exact in a float64
		levels--
	}
	if levels < 1 {
		levels = 1
	}
	return bits, levels
}

// Project implements Projection.
func (b Bitwise) Project(entries []Entry, resolution float64) map[string]float64 {
	out := make(map[string]float64, len(entries))
	for _, e := range entries {
		out[e.User] = b.ProjectEntry(e, resolution)
	}
	return out
}

// ProjectEntry implements PointwiseProjection.
func (b Bitwise) ProjectEntry(e Entry, resolution float64) float64 {
	bits, levels := b.params()
	balance := resolution / 2
	maxQ := uint64(1)<<uint(bits) - 1
	denom := float64(uint64(1)<<uint(bits*levels) - 1)
	vec := e.Vec.PadTo(levels, balance)
	var packed uint64
	for i := 0; i < levels; i++ {
		q := uint64(vec[i] / resolution * float64(maxQ+1))
		if q > maxQ {
			q = maxQ
		}
		packed = packed<<uint(bits) | q
	}
	return float64(packed) / denom
}

// Percental implements the Percental projection: the user's total target
// share is the product of shares down the path, total usage likewise, and
// the value is (target − usage) rescaled to [0,1]. This preserves depth,
// precision and proportionality but loses subgroup isolation (multiplying
// through the hierarchy lets siblings' behaviour leak across groups).
// "A similar approach is used in SLURM prior to version 2.5."
type Percental struct{}

// Name implements Projection.
func (Percental) Name() string { return "percental" }

// Project implements Projection.
func (Percental) Project(entries []Entry, resolution float64) map[string]float64 {
	out := make(map[string]float64, len(entries))
	for _, e := range entries {
		out[e.User] = Percental{}.ProjectEntry(e, resolution)
	}
	return out
}

// ProjectEntry implements PointwiseProjection.
func (Percental) ProjectEntry(e Entry, _ float64) float64 {
	target, usage := 1.0, 1.0
	for _, s := range e.PathShares {
		target *= s
	}
	for _, u := range e.PathUsage {
		usage *= u
	}
	// target − usage ∈ [−1, 1]; rescale to [0,1].
	v := ((target - usage) + 1) / 2
	return math.Max(0, math.Min(1, v))
}

// Projections returns the three built-in projection algorithms.
func Projections() []Projection {
	return []Projection{Dictionary{}, Bitwise{}, Percental{}}
}

// ByName returns the projection with the given name.
func ByName(name string) (Projection, bool) {
	for _, p := range Projections() {
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}
