package vector

import "math"

// CombinedOrdering implements the direction sketched in the paper's future
// work: instead of projecting fairshare vectors down to a scalar (losing a
// property per Table I), other scheduling factors are modelled "using a
// representation combinable with the fairshare vectors". Factors such as
// job age or QoS become additional, less-significant vector levels:
//
//	combined = [ quantize(fs_1), ..., quantize(fs_n), age, qos, ... ]
//
// Comparison stays lexicographic, so fairshare retains strict top-down
// dominance at the configured Quantum granularity, and the extra factors
// order jobs whose fairshare standing is effectively equal. No projection —
// and therefore no loss of depth, precision within the quantum, isolation
// or proportionality — is involved.
type CombinedOrdering struct {
	// Resolution is the value range of all levels (default 10000).
	Resolution float64
	// Quantum is the bucket size applied to fairshare elements before the
	// extra factors can influence ordering (default Resolution/64). A
	// larger quantum gives the secondary factors more say.
	Quantum float64
}

func (c CombinedOrdering) params() (res, quantum float64) {
	res = c.Resolution
	if res <= 0 {
		res = 10000
	}
	quantum = c.Quantum
	if quantum <= 0 {
		quantum = res / 64
	}
	return res, quantum
}

// Combine builds the combined vector: each fairshare element is quantized
// to the configured granularity and the factors (each in [0,1]) are
// appended, scaled to the value range.
func (c CombinedOrdering) Combine(fs Vector, factors ...float64) Vector {
	res, quantum := c.params()
	out := make(Vector, 0, len(fs)+len(factors))
	for _, e := range fs {
		out = append(out, math.Floor(e/quantum)*quantum)
	}
	for _, f := range factors {
		f = math.Max(0, math.Min(1, f))
		out = append(out, f*(res-1))
	}
	return out
}

// Less compares two jobs' combined vectors (true when a ranks below b). The
// vectors must have been built with the same factor count; shorter vectors
// compare at the balance point like plain fairshare vectors.
func (c CombinedOrdering) Less(a, b Vector) bool {
	res, _ := c.params()
	return a.Compare(b, res/2) < 0
}
