// Package grid implements the grid-level submission layer: a submission
// host that parses an input workload and dispatches jobs to the
// participating clusters, using either stochastic or round-robin placement
// ("both stochastic and round-robin scheduling of jobs from the submitting
// node to the clusters have been evaluated without any noticeable
// difference, and the stochastic approach is used during the testing").
package grid

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/eventsim"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Dispatcher picks the target cluster index for each job.
type Dispatcher interface {
	// Pick returns an index in [0, n) for the job.
	Pick(n int, job *sched.Job) int
	// Name identifies the strategy.
	Name() string
}

// Stochastic picks a uniformly random cluster (deterministic per seed).
type Stochastic struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewStochastic creates a seeded stochastic dispatcher.
func NewStochastic(seed int64) *Stochastic {
	return &Stochastic{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Dispatcher.
func (*Stochastic) Name() string { return "stochastic" }

// Pick implements Dispatcher.
func (s *Stochastic) Pick(n int, _ *sched.Job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Intn(n)
}

// RoundRobin cycles through the clusters in order.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements Dispatcher.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Dispatcher.
func (r *RoundRobin) Pick(n int, _ *sched.Job) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.next % n
	r.next++
	return i
}

// Target is a cluster endpoint from the submission host's perspective: the
// local resource manager plus the mapping from grid identity to the local
// account used on that cluster.
type Target struct {
	// Name labels the site.
	Name string
	// RM is the site's resource manager.
	RM sched.ResourceManager
	// MapUser converts a grid identity to the site-local account (identity
	// function when nil).
	MapUser func(gridUser string) string
}

// SubmitHost parses workloads and feeds jobs to the clusters at their
// submit times via the event kernel.
type SubmitHost struct {
	kernel     *eventsim.Kernel
	targets    []Target
	dispatcher Dispatcher

	mu        sync.Mutex
	submitted int64
	perSite   map[string]int64
}

// NewSubmitHost creates a submission host.
func NewSubmitHost(kernel *eventsim.Kernel, targets []Target, d Dispatcher) (*SubmitHost, error) {
	if kernel == nil {
		return nil, errors.New("grid: nil kernel")
	}
	if len(targets) == 0 {
		return nil, errors.New("grid: no targets")
	}
	if d == nil {
		d = NewStochastic(1)
	}
	return &SubmitHost{
		kernel:     kernel,
		targets:    targets,
		dispatcher: d,
		perSite:    map[string]int64{},
	}, nil
}

// SubmitNow dispatches one job immediately.
func (h *SubmitHost) SubmitNow(j *sched.Job) {
	idx := h.dispatcher.Pick(len(h.targets), j)
	t := h.targets[idx]
	if t.MapUser != nil {
		j.LocalUser = t.MapUser(j.GridUser)
	} else if j.LocalUser == "" {
		j.LocalUser = j.GridUser
	}
	t.RM.Submit(j)
	h.mu.Lock()
	h.submitted++
	h.perSite[t.Name]++
	h.mu.Unlock()
}

// LoadTrace schedules every job of the trace for submission at its submit
// time. Jobs before the kernel's current time are submitted at the current
// time.
func (h *SubmitHost) LoadTrace(tr *trace.Trace) {
	for i := range tr.Jobs {
		tj := tr.Jobs[i]
		job := &sched.Job{
			ID:       tj.ID,
			GridUser: tj.User,
			Procs:    tj.Procs,
			Duration: tj.Duration,
			Submit:   tj.Submit,
		}
		h.kernel.At(tj.Submit, func(now time.Time) {
			job.Submit = now
			h.SubmitNow(job)
		})
	}
}

// Submitted reports the total jobs dispatched.
func (h *SubmitHost) Submitted() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.submitted
}

// PerSite reports jobs dispatched per site name.
func (h *SubmitHost) PerSite() map[string]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]int64, len(h.perSite))
	for k, v := range h.perSite {
		out[k] = v
	}
	return out
}
