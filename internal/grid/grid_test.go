package grid

import (
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/sched"
	"repro/internal/trace"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

// fakeRM records submissions.
type fakeRM struct {
	jobs []*sched.Job
}

func (f *fakeRM) Submit(j *sched.Job)    { f.jobs = append(f.jobs, j) }
func (f *fakeRM) QueueLen() int          { return len(f.jobs) }
func (f *fakeRM) RunningCount() int      { return 0 }
func (f *fakeRM) Schedule(now time.Time) {}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	got := []int{}
	for i := 0; i < 6; i++ {
		got = append(got, rr.Pick(3, nil))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picks = %v", got)
		}
	}
	if rr.Name() != "round-robin" {
		t.Error("name")
	}
}

func TestStochasticCoversAllTargetsDeterministically(t *testing.T) {
	s1 := NewStochastic(42)
	s2 := NewStochastic(42)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		a := s1.Pick(4, nil)
		b := s2.Pick(4, nil)
		if a != b {
			t.Fatal("same seed diverged")
		}
		counts[a]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("target %d picked %d/4000 times", i, c)
		}
	}
	if s1.Name() != "stochastic" {
		t.Error("name")
	}
}

func TestSubmitHostValidation(t *testing.T) {
	k := eventsim.New(t0)
	if _, err := NewSubmitHost(nil, []Target{{}}, nil); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := NewSubmitHost(k, nil, nil); err == nil {
		t.Error("no targets accepted")
	}
}

func TestSubmitNowMapsIdentity(t *testing.T) {
	k := eventsim.New(t0)
	rm := &fakeRM{}
	h, err := NewSubmitHost(k, []Target{{
		Name:    "s",
		RM:      rm,
		MapUser: func(g string) string { return "local_" + g },
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.SubmitNow(&sched.Job{ID: 1, GridUser: "alice"})
	if len(rm.jobs) != 1 || rm.jobs[0].LocalUser != "local_alice" {
		t.Errorf("jobs = %+v", rm.jobs)
	}
	if h.Submitted() != 1 || h.PerSite()["s"] != 1 {
		t.Errorf("counters: %d, %v", h.Submitted(), h.PerSite())
	}
}

func TestSubmitNowDefaultIdentity(t *testing.T) {
	k := eventsim.New(t0)
	rm := &fakeRM{}
	h, _ := NewSubmitHost(k, []Target{{Name: "s", RM: rm}}, nil)
	h.SubmitNow(&sched.Job{ID: 1, GridUser: "bob"})
	if rm.jobs[0].LocalUser != "bob" {
		t.Errorf("local user = %q", rm.jobs[0].LocalUser)
	}
}

func TestLoadTraceSubmitsAtSubmitTimes(t *testing.T) {
	k := eventsim.New(t0)
	rm := &fakeRM{}
	h, _ := NewSubmitHost(k, []Target{{Name: "s", RM: rm}}, nil)
	tr := &trace.Trace{Jobs: []trace.Job{
		{ID: 1, User: "a", Submit: t0.Add(time.Minute), Duration: time.Second, Procs: 1},
		{ID: 2, User: "b", Submit: t0.Add(2 * time.Minute), Duration: time.Second, Procs: 1},
	}}
	h.LoadTrace(tr)
	if h.Submitted() != 0 {
		t.Error("jobs submitted before their time")
	}
	k.Run(t0.Add(90 * time.Second))
	if h.Submitted() != 1 {
		t.Errorf("after 90s: %d submitted", h.Submitted())
	}
	k.RunAll(0)
	if h.Submitted() != 2 {
		t.Errorf("final: %d submitted", h.Submitted())
	}
	if rm.jobs[0].GridUser != "a" || rm.jobs[0].Duration != time.Second {
		t.Errorf("job 0 = %+v", rm.jobs[0])
	}
}

func TestMultiTargetDistribution(t *testing.T) {
	k := eventsim.New(t0)
	rms := []*fakeRM{{}, {}, {}}
	targets := make([]Target, 3)
	for i := range targets {
		targets[i] = Target{Name: string(rune('a' + i)), RM: rms[i]}
	}
	h, _ := NewSubmitHost(k, targets, NewStochastic(7))
	for i := 0; i < 300; i++ {
		h.SubmitNow(&sched.Job{ID: int64(i), GridUser: "u"})
	}
	for i, rm := range rms {
		if len(rm.jobs) < 50 {
			t.Errorf("target %d got only %d jobs", i, len(rm.jobs))
		}
	}
}
