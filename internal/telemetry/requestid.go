package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header that carries the cross-site request
// correlation ID. A priority query entering a site through libaequus keeps
// one ID through FCS/UMS/IRS handling and across site-to-site
// /usage/exchange hops, so a single submission burst can be traced through
// the whole federation's logs and metrics.
const RequestIDHeader = "X-Aequus-Request-ID"

type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

var ridFallback atomic.Uint64

// NewRequestID generates a fresh 16-hex-digit request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively impossible; degrade to a
		// process-local counter rather than failing the request.
		return fmt.Sprintf("fallback-%016x", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}
