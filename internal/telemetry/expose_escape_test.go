package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestPrometheusEscapingConformance pins the Prometheus text-format (0.0.4)
// escaping rules: HELP text escapes `\` and newline; label values escape
// `\`, `"` and newline. No raw newline or unescaped quote may survive into
// the exposition, or scrapers mis-parse the whole page.
func TestPrometheusEscapingConformance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("aequus_escape_help_total",
		"line one\nline two with back\\slash and \"quotes\"").Inc()
	v := reg.CounterVec("aequus_escape_label_total", "labeled", "path")
	v.With(`C:\temp\new` + "\nline").Inc()
	v.With(`say "hi"`).Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	wantLines := []string{
		// HELP: backslash and newline escaped; quotes legal unescaped.
		`# HELP aequus_escape_help_total line one\nline two with back\\slash and "quotes"`,
		// Label values: backslash, newline and quote all escaped.
		`aequus_escape_label_total{path="C:\\temp\\new\nline"} 1`,
		`aequus_escape_label_total{path="say \"hi\""} 1`,
	}
	for _, want := range wantLines {
		found := false
		for _, line := range strings.Split(text, "\n") {
			if line == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("exposition missing exact line:\n  %s\ngot:\n%s", want, text)
		}
	}

	// Structural invariants: every line is HELP, TYPE, or name{labels} value
	// — a raw newline inside help or a label value would break this.
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# TYPE "):
		case strings.Contains(line, " "):
			if strings.Contains(line, "{") && !strings.Contains(line, `}`) {
				t.Errorf("line %d has unbalanced braces: %q", i+1, line)
			}
		default:
			t.Errorf("line %d is not a valid exposition line: %q", i+1, line)
		}
	}
}
