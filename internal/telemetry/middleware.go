package telemetry

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics bundles the standard server-side HTTP instruments: request
// and error counters, an in-flight gauge and a latency histogram, all
// labeled by route. One instance is shared by every instrumented handler of
// a server.
type HTTPMetrics struct {
	requests *CounterVec
	errors   *CounterVec
	inflight *GaugeVec
	latency  *HistogramVec
	log      *slog.Logger
}

// NewHTTPMetrics registers the HTTP server instruments on reg. The logger
// (may be nil) receives one debug-level access-log record per request,
// carrying the route, status and request ID.
func NewHTTPMetrics(reg *Registry, log *slog.Logger) *HTTPMetrics {
	reg = OrDefault(reg)
	return &HTTPMetrics{
		requests: reg.CounterVec("aequus_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		errors: reg.CounterVec("aequus_http_request_errors_total",
			"HTTP requests answered with a 4xx/5xx status, by route.", "route"),
		inflight: reg.GaugeVec("aequus_http_in_flight_requests",
			"HTTP requests currently being served, by route.", "route"),
		latency: reg.HistogramVec("aequus_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", DefBuckets(), "route"),
		log: log,
	}
}

// statusWriter captures the response status code.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Instrument wraps next with request counting, in-flight tracking, latency
// observation and request-ID handling: an incoming X-Aequus-Request-ID is
// propagated (into the request context and the response), a missing one is
// generated, so every hop of a cross-site call chain shares one ID.
func (m *HTTPMetrics) Instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = RequestID(r.Context())
		}
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))

		g := m.inflight.With(route)
		g.Inc()
		defer g.Dec()

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)

		m.latency.With(route).Observe(dur.Seconds())
		m.requests.With(route, strconv.Itoa(sw.code)).Inc()
		if sw.code >= 400 {
			m.errors.With(route).Inc()
		}
		if m.log != nil {
			m.log.Debug("http request",
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("code", sw.code),
				slog.Duration("duration", dur),
				slog.String("request_id", id))
		}
	})
}
