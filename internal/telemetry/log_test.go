package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("hidden")
	logger.Info("visible", "k", "v")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("expected one record (debug filtered), got %d: %s", len(lines), buf.String())
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record is not JSON: %v", err)
	}
	if rec["msg"] != "visible" || rec["k"] != "v" {
		t.Errorf("record = %v", rec)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Errorf("text output = %q", buf.String())
	}
}

func TestNewLoggerRejectsBadInputs(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "json", "loud"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"":        "INFO",
		"debug":   "DEBUG",
		"WARN":    "WARN",
		"warning": "WARN",
		"Error":   "ERROR",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Errorf("ParseLevel(%q): %v", in, err)
			continue
		}
		if lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %s, want %s", in, lvl, want)
		}
	}
}
