package telemetry

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg) // idempotent

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"aequus_go_goroutines ",
		"aequus_go_heap_inuse_bytes ",
		"aequus_go_gc_pause_seconds_total ",
		"aequus_process_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The scrape hook must refresh values at exposition time.
	if g := reg.Gauge("aequus_go_goroutines", "").Value(); g < 1 {
		t.Errorf("goroutines gauge = %v after scrape", g)
	}
	if h := reg.Gauge("aequus_go_heap_inuse_bytes", "").Value(); h <= 0 {
		t.Errorf("heap gauge = %v after scrape", h)
	}

	// GC pause total is monotone across scrapes even after forced GCs.
	before := reg.Counter("aequus_go_gc_pause_seconds_total", "").Value()
	runtime.GC()
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	after := reg.Counter("aequus_go_gc_pause_seconds_total", "").Value()
	if after < before {
		t.Errorf("gc pause counter went backwards: %v -> %v", before, after)
	}
}

func TestOnScrapeHookRuns(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("aequus_test_hooked", "")
	calls := 0
	reg.OnScrape(func() { calls++; g.Set(float64(calls)) })
	reg.OnScrape(nil) // ignored

	var buf bytes.Buffer
	_ = reg.WritePrometheus(&buf)
	_ = reg.WritePrometheus(&buf)
	if calls != 2 {
		t.Errorf("hook ran %d times, want 2", calls)
	}
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
}
