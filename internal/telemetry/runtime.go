package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics registers Go runtime and process-health metrics on
// r (the default registry when nil) and refreshes them on every scrape via
// an OnScrape hook:
//
//	aequus_go_goroutines              current goroutine count
//	aequus_go_heap_inuse_bytes        bytes in in-use heap spans
//	aequus_go_gc_pause_seconds_total  cumulative stop-the-world GC pause time
//	aequus_process_uptime_seconds     seconds since this registration
//
// Registration is idempotent per registry, so independently constructed
// services sharing one registry can all call it.
func RegisterRuntimeMetrics(r *Registry) {
	r = OrDefault(r)
	r.mu.Lock()
	if r.runtimeDone {
		r.mu.Unlock()
		return
	}
	r.runtimeDone = true
	r.mu.Unlock()

	goroutines := r.Gauge("aequus_go_goroutines",
		"Number of goroutines in this process.")
	heapInuse := r.Gauge("aequus_go_heap_inuse_bytes",
		"Bytes in in-use heap spans (runtime.MemStats.HeapInuse).")
	gcPause := r.Counter("aequus_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.")
	uptime := r.Gauge("aequus_process_uptime_seconds",
		"Seconds since this process registered its runtime metrics.")

	start := time.Now()
	var mu sync.Mutex
	var lastPauseNs uint64
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapInuse.Set(float64(ms.HeapInuse))
		// Counter semantics from a cumulative source: add only the delta
		// since the previous scrape (guarded against concurrent scrapes).
		mu.Lock()
		if ms.PauseTotalNs >= lastPauseNs {
			gcPause.Add(float64(ms.PauseTotalNs-lastPauseNs) / 1e9)
			lastPauseNs = ms.PauseTotalNs
		}
		mu.Unlock()
		uptime.Set(time.Since(start).Seconds())
	})
}
