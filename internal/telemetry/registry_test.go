package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	g := reg.Gauge("g", "g")
	g.Set(10)
	g.Add(-4)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %g, want 6", got)
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same_total", "x")
	b := reg.Counter("same_total", "x")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	v1 := reg.CounterVec("vec_total", "x", "l")
	v2 := reg.CounterVec("vec_total", "x", "l")
	if v1.With("a") != v2.With("a") {
		t.Error("vec re-registration returned a different series")
	}
}

func TestMismatchedReregistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("m_total", "x")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "h", []float64{1, 2, 5})
	// A value exactly on a boundary counts into that bucket (le semantics).
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 6} {
		h.Observe(v)
	}
	cum := h.Snapshot() // cumulative: le=1, le=2, le=5, +Inf
	want := []uint64{2, 4, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 16 {
		t.Errorf("sum = %g, want 16", h.Sum())
	}
}

func TestBucketNormalization(t *testing.T) {
	reg := NewRegistry()
	// Unsorted, duplicated buckets are normalized at registration.
	h := reg.Histogram("norm_seconds", "h", []float64{5, 1, 2, 2})
	got := h.Buckets()
	want := []float64{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("test_requests_total", "Total requests.", "route", "code").
		With("/a", "200").Add(3)
	reg.Gauge("test_temp_celsius", "Temp.").Set(21.5)
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5) // boundary: lands in le="0.5"
	h.Observe(4)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.5"} 2
test_latency_seconds_bucket{le="2"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 4.75
test_latency_seconds_count 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{route="/a",code="200"} 3
# HELP test_temp_celsius Temp.
# TYPE test_temp_celsius gauge
test_temp_celsius 21.5
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestExpositionEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "line one\nline \\two", "l").
		With("quote\"back\\slash\nnewline").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc_total line one\nline \\two`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{l="quote\"back\\slash\nnewline"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestEmptyFamiliesAreOmitted(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("unused_total", "never has series", "l") // no With call
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("series-less family rendered:\n%s", sb.String())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cv := reg.CounterVec("conc_total", "c", "worker")
			gv := reg.GaugeVec("conc_gauge", "g", "worker")
			hv := reg.HistogramVec("conc_seconds", "h", DefBuckets(), "worker")
			label := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				cv.With(label).Inc()
				gv.With(label).Set(float64(i))
				hv.With(label).Observe(float64(i) / iters)
				if i%100 == 0 {
					var sb strings.Builder
					_ = reg.WritePrometheus(&sb) // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	cv := reg.CounterVec("conc_total", "c", "worker")
	for _, l := range []string{"a", "b", "c", "d"} {
		total += cv.With(l).Value()
	}
	if total != workers*iters {
		t.Errorf("total = %g, want %d", total, workers*iters)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
