package telemetry

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMetricNameLint walks every non-test Go file in the repository and
// checks each metric name passed to Counter/Gauge/Histogram(Vec) against the
// project conventions:
//
//   - all names match ^aequus_[a-z0-9_]+$
//   - counters end in _total
//   - names mentioning a unit (_seconds, _bytes) end with that unit
//     (counters may append _total after it)
//
// Run in CI via: go test ./internal/telemetry -run TestMetricNameLint
func TestMetricNameLint(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	callRE := regexp.MustCompile(`\.(Counter|Gauge|Histogram)(Vec)?\(\s*"([^"]+)"`)
	nameOK := regexp.MustCompile(`^aequus_[a-z0-9_]+$`)

	checked := 0
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			switch info.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, m := range callRE.FindAllStringSubmatch(string(src), -1) {
			kind, name := m[1], m[3]
			checked++
			if !nameOK.MatchString(name) {
				t.Errorf("%s: metric %q does not match ^aequus_[a-z0-9_]+$", rel, name)
				continue
			}
			if kind == "Counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("%s: counter %q must end in _total", rel, name)
			}
			if kind != "Counter" && strings.HasSuffix(name, "_total") {
				t.Errorf("%s: %s %q must not end in _total", rel, strings.ToLower(kind), name)
			}
			base := strings.TrimSuffix(name, "_total")
			for _, unit := range []string{"_seconds", "_bytes", "_ratio"} {
				if strings.Contains(base, unit) && !strings.HasSuffix(base, unit) {
					t.Errorf("%s: metric %q mentions unit %q but does not end with it", rel, name, unit)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("namelint found no metric registrations — regex or walk root broken")
	}
	t.Logf("checked %d metric registrations", checked)
}
