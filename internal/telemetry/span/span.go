// Package span provides lightweight, dependency-free distributed tracing
// for the Aequus stack: context-propagated spans whose trace ID reuses the
// X-Aequus-Request-ID correlation ID, recorded into a lock-free ring buffer
// (see Recorder) with deterministic trace-level sampling.
//
// The design goals mirror the rest of the telemetry layer: zero cost when
// disabled (a nil *Recorder yields nil *Span values, and every Span method
// is nil-safe, so instrumented code needs no conditionals and the serving
// hot paths stay allocation-free), bounded memory when enabled, and sim-
// clock support so the deterministic testbed and scenario harness can trace
// runs without breaking replayability.
//
// A trace crosses site boundaries the same way request IDs do: the trace ID
// travels in X-Aequus-Request-ID and the caller's span ID in
// X-Aequus-Parent-Span, so one inter-site exchange round renders as a
// single tree — the USS exchange root, its per-peer pulls, and the remote
// sites' handler spans.
package span

import (
	"context"
	"hash/fnv"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// ParentHeader is the HTTP header carrying the calling span's ID across a
// site hop, complementing telemetry.RequestIDHeader (which carries the
// trace ID). The value is the span ID in lowercase hexadecimal.
const ParentHeader = "X-Aequus-Parent-Span"

// Attr is one key-value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. Fields are exported for the
// introspection surface; they must be treated as read-only once the span
// has been ended (the recorder hands the same object to readers).
//
// The owning goroutine mutates a span only between Start and End; all
// methods are safe on a nil receiver, which is how disabled tracing stays
// free of conditionals at call sites.
type Span struct {
	// TraceID groups the spans of one logical operation; it equals the
	// request ID propagated in X-Aequus-Request-ID.
	TraceID string
	// ID identifies this span within its recorder.
	ID uint64
	// ParentID is the enclosing span's ID (0 for a root span). The parent
	// may live on another site (propagated via ParentHeader).
	ParentID uint64
	// Name labels the operation, e.g. "uss.exchange" or "fcs.refresh".
	Name string
	// Start is the span's start on the recorder's clock.
	Start time.Time
	// Duration is set by End on the recorder's clock (zero under a
	// simulated clock when no simulated time elapsed).
	Duration time.Duration
	// Attrs are the span's annotations, in insertion order.
	Attrs []Attr
	// Err is the operation's error message ("" when it succeeded).
	Err string

	rec *Recorder
}

// ctxData is the per-context tracing state: the recorder, the current span
// (for child linkage and Current), and the trace's sampling decision.
type ctxData struct {
	rec      *Recorder
	span     *Span
	parentID uint64
	traceID  string
	sampled  bool
	decided  bool
}

type ctxKey struct{}

func dataFrom(ctx context.Context) ctxData {
	if ctx == nil {
		return ctxData{}
	}
	d, _ := ctx.Value(ctxKey{}).(ctxData)
	return d
}

// WithRecorder returns a context that records spans into rec. A nil rec
// returns ctx unchanged, so service configs can plumb an optional recorder
// unconditionally.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	d := dataFrom(ctx)
	if d.rec == rec {
		return ctx
	}
	d.rec = rec
	return context.WithValue(ctx, ctxKey{}, d)
}

// EnsureRecorder attaches rec only when ctx does not already carry a
// recorder — how a service's own recorder backs spans for calls that did
// not enter through an instrumented HTTP handler, without overriding the
// caller's tracing.
func EnsureRecorder(ctx context.Context, rec *Recorder) context.Context {
	if dataFrom(ctx).rec != nil {
		return ctx
	}
	return WithRecorder(ctx, rec)
}

// RecorderFrom returns the recorder carried by ctx, or nil.
func RecorderFrom(ctx context.Context) *Recorder { return dataFrom(ctx).rec }

// WithRemoteParent marks ctx as continuing a trace whose enclosing span
// lives on another site: spans started under the returned context become
// children of parentID. The trace ID itself travels in the request ID (see
// telemetry.WithRequestID); a zero parentID returns ctx unchanged.
func WithRemoteParent(ctx context.Context, parentID uint64) context.Context {
	if parentID == 0 {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	d := dataFrom(ctx)
	d.parentID = parentID
	d.span = nil
	return context.WithValue(ctx, ctxKey{}, d)
}

// Start begins a span named name under ctx's recorder and current span,
// returning a derived context (carrying the new span for child linkage) and
// the span itself. Without a recorder — or when the trace is sampled out —
// the span is nil, and every method on it is a no-op.
//
// The trace ID is ctx's request ID; a context with neither inherits a
// freshly generated ID, which is also stored as the request ID in the
// returned context so outgoing HTTP hops propagate it.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	d := dataFrom(ctx)
	if d.rec == nil {
		return ctx, nil
	}
	if !d.decided {
		if d.traceID == "" {
			d.traceID = telemetry.RequestID(ctx)
		}
		if d.traceID == "" {
			d.traceID = telemetry.NewRequestID()
			ctx = telemetry.WithRequestID(ctx, d.traceID)
		}
		d.sampled = d.rec.sampleTrace(d.traceID)
		d.decided = true
	}
	if !d.sampled {
		// Remember the decision so descendants skip the hash.
		return context.WithValue(ctx, ctxKey{}, d), nil
	}
	s := &Span{
		TraceID:  d.traceID,
		ID:       d.rec.nextID(),
		ParentID: d.parentID,
		Name:     name,
		Start:    d.rec.now(),
		rec:      d.rec,
	}
	d.span = s
	d.parentID = s.ID
	return context.WithValue(ctx, ctxKey{}, d), s
}

// Current returns the span ctx is executing under, or nil. Deeper layers
// (e.g. the HTTP client's retry loop) use it to annotate the enclosing
// operation's span without threading it explicitly.
func Current(ctx context.Context) *Span { return dataFrom(ctx).span }

// SetAttr sets (replacing any previous value for key) a string annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt sets an integer annotation.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetErr records the operation's error (a nil err is ignored).
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// End finishes the span — fixing its duration on the recorder's clock — and
// publishes it to the recorder's ring. A span must be ended exactly once
// and not mutated afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = s.rec.now().Sub(s.Start)
	s.rec.record(s)
}

// FormatID renders a span ID for the ParentHeader (lowercase hex).
func FormatID(id uint64) string { return strconv.FormatUint(id, 16) }

// ParseID parses a ParentHeader value; malformed or empty input yields 0
// (no parent).
func ParseID(s string) uint64 {
	if s == "" {
		return 0
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// traceHash is the deterministic sampling hash: the same trace ID hashes
// identically on every site, so a sampled trace is sampled everywhere and
// cross-site trees arrive complete.
func traceHash(traceID string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(traceID))
	return h.Sum32()
}
