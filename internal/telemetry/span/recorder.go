package span

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// DefaultCapacity is the ring size used when Config.Capacity is zero —
// enough for several exchange/refresh rounds of a busy site at a few
// hundred bytes per span.
const DefaultCapacity = 2048

// Config parameterizes a Recorder.
type Config struct {
	// Capacity is the ring size in spans (rounded up to a power of two;
	// default DefaultCapacity). Older spans are overwritten.
	Capacity int
	// SampleEvery records one in N traces (<= 1 records every trace). The
	// decision is a deterministic hash of the trace ID, so all sites of a
	// federation keep or drop the same traces.
	SampleEvery int
	// Clock times spans (default wall clock; the testbed passes its sim
	// clock so traces stay deterministic).
	Clock simclock.Clock
}

// Recorder stores ended spans in a fixed-size lock-free ring: recording is
// one atomic increment plus one atomic pointer store, safe for any number
// of concurrent writers, and never blocks or allocates on the recording
// path. Readers (the introspection surface) snapshot the ring without
// stopping writers.
type Recorder struct {
	slots []atomic.Pointer[Span]
	mask  uint64

	next     atomic.Uint64 // ring write cursor
	ids      atomic.Uint64 // span ID allocator (IDs are creation-ordered)
	recorded atomic.Uint64 // total spans ever recorded

	sampleEvery uint32
	clock       simclock.Clock
}

// NewRecorder creates a recorder.
func NewRecorder(cfg Config) *Recorder {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	sample := cfg.SampleEvery
	if sample < 1 {
		sample = 1
	}
	return &Recorder{
		slots:       make([]atomic.Pointer[Span], size),
		mask:        uint64(size - 1),
		sampleEvery: uint32(sample),
		clock:       clock,
	}
}

func (r *Recorder) now() time.Time { return r.clock.Now() }

func (r *Recorder) nextID() uint64 { return r.ids.Add(1) }

// sampleTrace decides whether a trace is recorded. Nil-safe (false).
func (r *Recorder) sampleTrace(traceID string) bool {
	if r == nil {
		return false
	}
	if r.sampleEvery <= 1 {
		return true
	}
	return traceHash(traceID)%r.sampleEvery == 0
}

// record publishes an ended span into the ring.
func (r *Recorder) record(s *Span) {
	idx := r.next.Add(1) - 1
	r.slots[idx&r.mask].Store(s)
	r.recorded.Add(1)
}

// Recorded returns the total number of spans recorded (including those the
// ring has since overwritten).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.recorded.Load()
}

// Snapshot returns the spans currently retained by the ring, ordered by
// creation (span ID). The spans are shared with the recorder and must be
// treated as read-only.
func (r *Recorder) Snapshot() []*Span {
	if r == nil {
		return nil
	}
	out := make([]*Span, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Trace is one trace's retained spans, in creation order.
type Trace struct {
	TraceID string
	Spans   []*Span
}

// Traces groups the retained spans by trace ID, most recent trace first,
// returning at most limit traces (<= 0 means all).
func (r *Recorder) Traces(limit int) []Trace {
	spans := r.Snapshot()
	byID := map[string]*Trace{}
	order := []*Trace{}
	for _, s := range spans {
		t := byID[s.TraceID]
		if t == nil {
			t = &Trace{TraceID: s.TraceID}
			byID[s.TraceID] = t
			order = append(order, t)
		}
		t.Spans = append(t.Spans, s)
	}
	// Most recently started trace first: order was built in span-ID order,
	// so the last trace to appear holds the newest spans.
	out := make([]Trace, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		out = append(out, *order[i])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Slowest returns the n retained spans with the longest durations,
// slowest first.
func (r *Recorder) Slowest(n int) []*Span {
	spans := r.Snapshot()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Duration > spans[j].Duration })
	if n > 0 && len(spans) > n {
		spans = spans[:n]
	}
	return spans
}

// formatSpan renders one span as a single line: name, duration, error and
// attributes.
func formatSpan(s *Span) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", s.Name, s.Duration)
	for _, a := range s.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
	}
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%q", s.Err)
	}
	return b.String()
}

// FormatTrace renders a trace as an indented parent/child tree. Spans whose
// parents are not retained (overwritten, unsampled, or on another recorder)
// render as roots.
func FormatTrace(t Trace) string {
	children := map[uint64][]*Span{}
	have := map[uint64]bool{}
	for _, s := range t.Spans {
		have[s.ID] = true
	}
	var roots []*Span
	for _, s := range t.Spans {
		if s.ParentID != 0 && have[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", t.TraceID, len(t.Spans))
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(formatSpan(s))
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, s := range roots {
		walk(s, 0)
	}
	return b.String()
}

// FormatTail renders the most recent n retained spans (creation order, one
// line each, prefixed with the span's start time and trace ID) — the
// timeline a failing scenario run dumps next to its violations.
func FormatTail(r *Recorder, n int) string {
	spans := r.Snapshot()
	if n > 0 && len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace tail (last %d spans):\n", len(spans))
	for _, s := range spans {
		fmt.Fprintf(&b, "  %s [%s] %s\n", s.Start.Format(time.RFC3339), s.TraceID, formatSpan(s))
	}
	return b.String()
}
