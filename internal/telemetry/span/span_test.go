package span

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

func TestNilSafety(t *testing.T) {
	// No recorder: Start yields a nil span; every method must be a no-op.
	ctx, s := Start(context.Background(), "op")
	if s != nil {
		t.Fatalf("Start without recorder returned %v, want nil", s)
	}
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 7)
	s.SetErr(errors.New("boom"))
	s.End()
	if cur := Current(ctx); cur != nil {
		t.Errorf("Current = %v, want nil", cur)
	}
	var r *Recorder
	if r.Recorded() != 0 || r.Snapshot() != nil || r.sampleTrace("x") {
		t.Error("nil recorder methods not inert")
	}
	if got := WithRecorder(context.Background(), nil); got != context.Background() {
		t.Error("WithRecorder(nil) should return ctx unchanged")
	}
}

func TestParentChildLinkageAndRecording(t *testing.T) {
	clock := simclock.NewSim(time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC))
	rec := NewRecorder(Config{Capacity: 16, Clock: clock})
	ctx := WithRecorder(context.Background(), rec)
	ctx = telemetry.WithRequestID(ctx, "trace-1")

	ctx, root := Start(ctx, "root")
	if root == nil {
		t.Fatal("root span is nil")
	}
	if root.TraceID != "trace-1" || root.ParentID != 0 {
		t.Fatalf("root = %+v", root)
	}
	cctx, child := Start(ctx, "child")
	if child.ParentID != root.ID || child.TraceID != "trace-1" {
		t.Fatalf("child = %+v (root ID %d)", child, root.ID)
	}
	if Current(cctx) != child || Current(ctx) != root {
		t.Error("Current does not track the context's span")
	}
	clock.Advance(3 * time.Second)
	child.SetAttrInt("records", 42)
	child.SetAttr("records", "43") // SetAttr replaces
	child.SetErr(errors.New("partial"))
	child.End()
	clock.Advance(time.Second)
	root.End()

	spans := rec.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0] != root || spans[1] != child {
		t.Error("snapshot not in creation order")
	}
	if child.Duration != 3*time.Second || root.Duration != 4*time.Second {
		t.Errorf("durations: child %v root %v", child.Duration, root.Duration)
	}
	if len(child.Attrs) != 1 || child.Attrs[0].Value != "43" {
		t.Errorf("attrs = %v", child.Attrs)
	}
	if child.Err != "partial" {
		t.Errorf("err = %q", child.Err)
	}
	if rec.Recorded() != 2 {
		t.Errorf("Recorded = %d", rec.Recorded())
	}
}

func TestStartGeneratesAndInjectsTraceID(t *testing.T) {
	rec := NewRecorder(Config{})
	ctx, s := Start(WithRecorder(context.Background(), rec), "root")
	if s.TraceID == "" {
		t.Fatal("no trace ID generated")
	}
	// The generated ID must be visible as the context's request ID so
	// outgoing HTTP hops propagate it.
	if telemetry.RequestID(ctx) != s.TraceID {
		t.Errorf("request ID %q != trace ID %q", telemetry.RequestID(ctx), s.TraceID)
	}
}

func TestRemoteParent(t *testing.T) {
	rec := NewRecorder(Config{})
	ctx := WithRecorder(context.Background(), rec)
	ctx = telemetry.WithRequestID(ctx, "shared-trace")
	ctx = WithRemoteParent(ctx, 77)
	_, s := Start(ctx, "server")
	if s.ParentID != 77 || s.TraceID != "shared-trace" {
		t.Fatalf("span = %+v", s)
	}
	if ParseID(FormatID(77)) != 77 {
		t.Error("FormatID/ParseID round trip failed")
	}
	if ParseID("") != 0 || ParseID("zz") != 0 {
		t.Error("malformed parent IDs must parse to 0")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 4})
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 10; i++ {
		_, s := Start(ctx, "op")
		s.End()
	}
	spans := rec.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for _, s := range spans {
		if s.ID <= 6 {
			t.Errorf("old span %d survived the wrap", s.ID)
		}
	}
	if rec.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", rec.Recorded())
	}
}

func TestDeterministicSampling(t *testing.T) {
	a := NewRecorder(Config{SampleEvery: 4})
	b := NewRecorder(Config{SampleEvery: 4})
	kept := 0
	for i := 0; i < 256; i++ {
		id := telemetry.NewRequestID()
		av, bv := a.sampleTrace(id), b.sampleTrace(id)
		if av != bv {
			t.Fatalf("sampling disagrees across recorders for %q", id)
		}
		if av {
			kept++
		}
	}
	if kept == 0 || kept == 256 {
		t.Errorf("kept %d/256 traces with SampleEvery=4", kept)
	}
	// A sampled-out trace yields nil spans for the whole subtree.
	rec := NewRecorder(Config{SampleEvery: 1 << 30})
	ctx := WithRecorder(context.Background(), rec)
	ctx = telemetry.WithRequestID(ctx, "drop-me")
	if !rec.sampleTrace("drop-me") {
		ctx, root := Start(ctx, "root")
		_, child := Start(ctx, "child")
		if root != nil || child != nil {
			t.Error("sampled-out trace still produced spans")
		}
	}
}

func TestTracesAndSlowest(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	rec := NewRecorder(Config{Clock: clock})
	for i, id := range []string{"t1", "t2"} {
		ctx := telemetry.WithRequestID(WithRecorder(context.Background(), rec), id)
		ctx, root := Start(ctx, "root")
		_, child := Start(ctx, "pull")
		clock.Advance(time.Duration(i+1) * time.Second)
		child.End()
		root.End()
	}
	traces := rec.Traces(0)
	if len(traces) != 2 || traces[0].TraceID != "t2" || traces[1].TraceID != "t1" {
		t.Fatalf("traces = %+v", traces)
	}
	if len(traces[0].Spans) != 2 {
		t.Fatalf("trace t2 has %d spans", len(traces[0].Spans))
	}
	if got := rec.Traces(1); len(got) != 1 || got[0].TraceID != "t2" {
		t.Errorf("Traces(1) = %+v", got)
	}
	slow := rec.Slowest(2)
	if len(slow) != 2 || slow[0].Duration < slow[1].Duration {
		t.Errorf("Slowest order wrong: %v then %v", slow[0].Duration, slow[1].Duration)
	}

	out := FormatTrace(traces[0])
	if !strings.Contains(out, "trace t2") || !strings.Contains(out, "\n    pull") {
		t.Errorf("FormatTrace output missing tree structure:\n%s", out)
	}
	tail := FormatTail(rec, 3)
	if !strings.Contains(tail, "[t2]") || !strings.Contains(tail, "root") {
		t.Errorf("FormatTail output:\n%s", tail)
	}
}

func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := WithRecorder(context.Background(), rec)
			ctx, root := Start(ctx, "root")
			for i := 0; i < 50; i++ {
				_, s := Start(ctx, "child")
				s.SetAttrInt("i", int64(i))
				s.End()
			}
			root.End()
		}()
	}
	wg.Wait()
	if rec.Recorded() != 8*51 {
		t.Errorf("Recorded = %d, want %d", rec.Recorded(), 8*51)
	}
	for _, s := range rec.Snapshot() {
		if s.Name != "root" && s.Name != "child" {
			t.Errorf("unexpected span %q", s.Name)
		}
	}
}
