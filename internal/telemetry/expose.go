package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): families sorted by name, series sorted
// by label values, histograms expanded into cumulative le-buckets plus
// _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.RUnlock()
	for _, h := range hooks {
		h()
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		families = append(families, r.families[n])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		values []string
		m      interface{}
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		var vals []string
		if len(f.labels) > 0 {
			vals = strings.Split(k, keySep)
		}
		rows = append(rows, row{values: vals, m: f.series[k]})
	}
	f.mu.RUnlock()

	if len(rows) == 0 {
		return nil
	}
	if f.help != "" {
		w.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
	}
	w.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
	for _, rw := range rows {
		switch m := rw.m.(type) {
		case *Counter:
			writeSample(w, f.name, f.labels, rw.values, "", "", m.Value())
		case *Gauge:
			writeSample(w, f.name, f.labels, rw.values, "", "", m.Value())
		case *Histogram:
			cum := m.Snapshot()
			for i, ub := range m.upper {
				writeSample(w, f.name+"_bucket", f.labels, rw.values,
					"le", formatFloat(ub), float64(cum[i]))
			}
			writeSample(w, f.name+"_bucket", f.labels, rw.values,
				"le", "+Inf", float64(cum[len(cum)-1]))
			writeSample(w, f.name+"_sum", f.labels, rw.values, "", "", m.Sum())
			writeSample(w, f.name+"_count", f.labels, rw.values, "", "", float64(m.Count()))
		}
	}
	return nil
}

func writeSample(w *bufio.Writer, name string, labels, values []string, extraLabel, extraValue string, v float64) {
	w.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l + `="` + escapeLabel(values[i]) + `"`)
		}
		if extraLabel != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraLabel + `="` + escapeLabel(extraValue) + `"`)
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry's metrics — mount it
// at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		w.WriteHeader(http.StatusOK)
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WritePrometheus(w)
	})
}
