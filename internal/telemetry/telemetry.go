// Package telemetry provides the dependency-free observability layer shared
// by every Aequus service: a concurrent metrics registry (counters, gauges,
// fixed-bucket histograms) with Prometheus text exposition, HTTP middleware
// that instruments handlers and propagates X-Aequus-Request-ID across
// service and site hops, and structured-logging helpers built on log/slog.
//
// The paper's evaluation (Section V) measures priority-query latency under
// batched submission, inter-site exchange traffic and libaequus cache
// effectiveness; this package is how a running deployment exposes exactly
// those quantities.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Registration
// is get-or-create: asking twice for the same name returns the same metric,
// so independently constructed services can share one registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	// hooks run at the start of every WritePrometheus call, letting
	// point-in-time gauges (runtime stats, uptime) refresh at scrape time.
	hooks []func()
	// runtimeDone guards one-time runtime-metric registration per registry.
	runtimeDone bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var std = NewRegistry()

// Default returns the process-wide default registry. Services fall back to
// it when their Config carries no explicit registry.
func Default() *Registry { return std }

// OrDefault returns r, or the default registry when r is nil.
func OrDefault(r *Registry) *Registry {
	if r == nil {
		return std
	}
	return r
}

// OnScrape registers a hook invoked at the start of every WritePrometheus
// call (concurrent scrapes may run hooks concurrently; hooks must be safe
// for that). Use it for metrics that are snapshots of external state — the
// Go runtime stats, process uptime — so they are fresh at scrape time
// without a background updater.
func (r *Registry) OnScrape(f func()) {
	if f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, f)
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// family is one named metric with a fixed label set, holding one series per
// distinct label-value combination.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram upper bounds (without +Inf)

	mu     sync.RWMutex
	series map[string]interface{} // label-values key -> *Counter|*Gauge|*Histogram
}

const keySep = "\xff"

func (f *family) get(values []string) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += keySep
		}
		key += v
	}
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	switch f.kind {
	case counterKind:
		m = &Counter{}
	case gaugeKind:
		m = &Gauge{}
	default:
		m = newHistogram(f.buckets)
	}
	f.series[key] = m
	return m
}

func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v (was %s%v)",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: normalizeBuckets(buckets),
		series:  map[string]interface{}{},
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func normalizeBuckets(b []float64) []float64 {
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	// Drop duplicates and a trailing +Inf (implicit).
	dst := out[:0]
	for _, v := range out {
		if math.IsInf(v, +1) {
			continue
		}
		if len(dst) > 0 && dst[len(dst)-1] == v {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

// Counter returns the unlabeled counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec returns the counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, counterKind, nil, labels)}
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec returns the gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, gaugeKind, nil, labels)}
}

// Histogram returns the unlabeled histogram with the given bucket upper
// bounds (a +Inf bucket is always implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec returns the histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, histogramKind, buckets, labels)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

// Counter is a monotonically increasing float64. The zero value is ready to
// use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down. The zero value is ready to
// use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increases (or with negative v, decreases) the gauge.
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (cumulative "le" buckets
// in the exposition, per-bucket atomics internally).
type Histogram struct {
	upper   []float64 // sorted upper bounds; counts has one extra +Inf slot
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one observation. A value exactly on a bucket boundary is
// counted in that bucket (Prometheus "le" semantics).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns cumulative bucket counts aligned with Buckets() plus a
// final +Inf bucket.
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Buckets returns the configured upper bounds (without the implicit +Inf).
func (h *Histogram) Buckets() []float64 { return append([]float64(nil), h.upper...) }

// DefBuckets are latency buckets (seconds) tuned for in-process service
// calls: sub-millisecond pre-calculated lookups up to multi-second WAN hops.
func DefBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// CountBuckets are size buckets for batch/record counts (e.g. exchange
// batch sizes).
func CountBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
}

// ExpBuckets returns n exponentially spaced buckets starting at start,
// multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
