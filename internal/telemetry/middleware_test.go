package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestIDContext(t *testing.T) {
	if RequestID(context.Background()) != "" {
		t.Error("empty context carries a request ID")
	}
	ctx := WithRequestID(context.Background(), "abc")
	if RequestID(ctx) != "abc" {
		t.Errorf("RequestID = %q, want abc", RequestID(ctx))
	}
	if WithRequestID(context.Background(), "") != context.Background() {
		t.Error("empty ID should not allocate a new context")
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Errorf("NewRequestID not unique/16-hex: %q %q", a, b)
	}
}

func TestInstrumentPropagatesRequestID(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil)
	var seen string
	h := m.Instrument("/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}))

	// Incoming header is propagated into the context and the response.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "incoming-id")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "incoming-id" {
		t.Errorf("handler saw request ID %q, want incoming-id", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "incoming-id" {
		t.Errorf("response header = %q, want incoming-id", got)
	}

	// A missing header gets a generated ID.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" || seen == "incoming-id" {
		t.Errorf("generated request ID = %q", seen)
	}
	if rec.Header().Get(RequestIDHeader) != seen {
		t.Error("generated ID not echoed in the response header")
	}
}

func TestInstrumentRecordsMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil)
	ok := m.Instrument("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	bad := m.Instrument("/bad", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	for i := 0; i < 3; i++ {
		ok.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))
	}
	bad.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/bad", nil))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`aequus_http_requests_total{route="/ok",code="200"} 3`,
		`aequus_http_requests_total{route="/bad",code="404"} 1`,
		`aequus_http_request_errors_total{route="/bad"} 1`,
		`aequus_http_request_duration_seconds_count{route="/ok"} 3`,
		`aequus_http_in_flight_requests{route="/ok"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `aequus_http_request_errors_total{route="/ok"}`) {
		t.Error("error counter has a series for an error-free route")
	}
}

func TestInstrumentInFlightGauge(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, nil)
	release := make(chan struct{})
	entered := make(chan struct{})
	h := m.Instrument("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}))
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))
		close(done)
	}()
	<-entered
	if v := reg.GaugeVec("aequus_http_in_flight_requests", "", "route").With("/slow").Value(); v != 1 {
		t.Errorf("in-flight during request = %g, want 1", v)
	}
	close(release)
	<-done
	if v := reg.GaugeVec("aequus_http_in_flight_requests", "", "route").With("/slow").Value(); v != 0 {
		t.Errorf("in-flight after request = %g, want 0", v)
	}
}

func TestInstrumentAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, logger)
	h := m.Instrument("/logged", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/logged", nil)
	req.Header.Set(RequestIDHeader, "log-me")
	h.ServeHTTP(httptest.NewRecorder(), req)

	var rec map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v (%s)", err, buf.String())
	}
	if rec["route"] != "/logged" || rec["request_id"] != "log-me" || rec["code"] != float64(200) {
		t.Errorf("access log record = %v", rec)
	}
}
