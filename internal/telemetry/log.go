package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a level name (debug, info, warn, error; case-insensitive)
// to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q", s)
}

// NewLogger builds a structured logger writing to w. format selects the
// handler: "text" (default) or "json"; level is parsed by ParseLevel.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
}
