package telemetry

import "time"

// ClientMetrics bundles the outgoing-call instruments shared by every Aequus
// HTTP client: request counters by outcome, a retry-attempt counter (the
// companion of the per-peer circuit metrics in internal/resilience) and a
// latency histogram, all labeled by the target site.
type ClientMetrics struct {
	requests *CounterVec
	retries  *CounterVec
	latency  *HistogramVec
}

// NewClientMetrics registers the outgoing-call instruments on reg.
func NewClientMetrics(reg *Registry) *ClientMetrics {
	reg = OrDefault(reg)
	return &ClientMetrics{
		requests: reg.CounterVec("aequus_client_requests_total",
			"Outgoing HTTP calls, by target site and outcome (ok or error).",
			"target", "outcome"),
		retries: reg.CounterVec("aequus_retry_attempts_total",
			"Outgoing-call retry attempts scheduled after a transient failure, by target site.",
			"target"),
		latency: reg.HistogramVec("aequus_client_request_duration_seconds",
			"Outgoing HTTP call latency in seconds (per attempt), by target site.",
			DefBuckets(), "target"),
	}
}

// Observe records one completed call attempt.
func (m *ClientMetrics) Observe(target string, dur time.Duration, err error) {
	if m == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	m.requests.With(target, outcome).Inc()
	m.latency.With(target).Observe(dur.Seconds())
}

// Retry records one scheduled retry.
func (m *ClientMetrics) Retry(target string) {
	if m == nil {
		return
	}
	m.retries.With(target).Inc()
}
