package rmconformance

import (
	"testing"
	"time"
)

// forEach runs one conformance test against every substrate.
func forEach(t *testing.T, fn func(t *testing.T, sub Substrate)) {
	for _, sub := range Substrates() {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) { fn(t, sub) })
	}
}

// TestCalloutReceivesLocalUser verifies the fairshare call-out is invoked
// with the job's local (site-mapped) user identity — the contract identity
// resolution depends on.
func TestCalloutReceivesLocalUser(t *testing.T) {
	forEach(t, func(t *testing.T, sub Substrate) {
		rec := &Recorder{}
		env := sub.Build(t, 4, rec.Hooks(map[string]float64{"s00_ua": 0.7, "s00_ub": 0.3}))
		env.RM.Submit(Job(1, "s00_ua", 1, time.Minute, epoch))
		env.RM.Submit(Job(2, "s00_ub", 1, time.Minute, epoch))
		env.RM.Schedule(epoch)
		calls := rec.FairshareCalls()
		if len(calls) == 0 {
			t.Fatal("fairshare call-out never invoked")
		}
		for _, u := range calls {
			if u != "s00_ua" && u != "s00_ub" {
				t.Errorf("call-out received %q, want a local user name", u)
			}
		}
	})
}

// TestCalloutErrorFallsBackNeutral verifies a failing fairshare call-out
// degrades to the neutral 0.5 factor — the job is neither lost nor
// privileged — and that the failure is counted. A 0.9 user must beat the
// erroring user, which in turn must beat a 0.1 user.
func TestCalloutErrorFallsBackNeutral(t *testing.T) {
	forEach(t, func(t *testing.T, sub Substrate) {
		rec := &Recorder{}
		// "ghost" is missing from the table: its call-out errors.
		env := sub.Build(t, 1, rec.Hooks(map[string]float64{"hi": 0.9, "lo": 0.1}))

		// Occupy the single core so the three probe jobs queue up.
		blocker := Job(1, "hi", 1, 10*time.Minute, epoch)
		env.RM.Submit(blocker)
		env.RM.Schedule(epoch)
		if env.Cluster.RunningCount() != 1 {
			t.Fatalf("blocker did not start (running=%d)", env.Cluster.RunningCount())
		}

		env.RM.Submit(Job(2, "lo", 1, time.Minute, epoch))
		env.RM.Submit(Job(3, "ghost", 1, time.Minute, epoch))
		env.RM.Submit(Job(4, "hi", 1, time.Minute, epoch))
		env.RM.Schedule(epoch)
		if got := env.RM.QueueLen(); got != 3 {
			t.Fatalf("queue has %d jobs, want 3", got)
		}
		if env.Errors() == 0 {
			t.Error("failed call-out not counted")
		}

		// Drain: completions trigger fills, one core serializes dispatches.
		env.Kernel.Run(epoch.Add(time.Hour))
		starts := rec.Starts()
		if len(starts) != 4 {
			t.Fatalf("observed %d starts, want 4", len(starts))
		}
		order := []int64{starts[1].JobID, starts[2].JobID, starts[3].JobID}
		want := []int64{4, 3, 2} // hi (0.9), ghost (neutral 0.5), lo (0.1)
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("dispatch order %v, want %v (erroring user must rank neutral)", order, want)
			}
		}
	})
}

// TestCompletionHookExact verifies the completion call-out fires exactly
// once per job and reports the actual start time, runtime and width — the
// numbers the Aequus usage pipeline ingests.
func TestCompletionHookExact(t *testing.T) {
	forEach(t, func(t *testing.T, sub Substrate) {
		rec := &Recorder{}
		env := sub.Build(t, 8, rec.Hooks(map[string]float64{"ua": 0.5}))
		jobs := []struct {
			id    int64
			procs int
			dur   time.Duration
		}{
			{1, 1, 5 * time.Minute},
			{2, 2, 3 * time.Minute},
			{3, 4, 7 * time.Minute},
		}
		for _, j := range jobs {
			env.RM.Submit(Job(j.id, "ua", j.procs, j.dur, epoch))
		}
		env.RM.Schedule(epoch)
		env.Kernel.Run(epoch.Add(time.Hour))

		comps := rec.Completions()
		if len(comps) != len(jobs) {
			t.Fatalf("completion hook fired %d times, want %d", len(comps), len(jobs))
		}
		byID := map[int64]CompletionRecord{}
		for _, c := range comps {
			if _, dup := byID[c.JobID]; dup {
				t.Fatalf("job %d completed twice", c.JobID)
			}
			byID[c.JobID] = c
		}
		for _, j := range jobs {
			c, ok := byID[j.id]
			if !ok {
				t.Fatalf("job %d never reported", j.id)
			}
			if c.Duration != j.dur || c.Procs != j.procs || c.User != "ua" {
				t.Errorf("job %d reported (%s, %d procs, %s), want (%s, %d procs, ua)",
					j.id, c.Duration, c.Procs, c.User, j.dur, j.procs)
			}
			if !c.Start.Equal(epoch) {
				t.Errorf("job %d start %s, want %s", j.id, c.Start, epoch)
			}
		}
	})
}

// TestFairshareOrder verifies the substrate dispatches the
// higher-fairshare user first when cores are scarce, regardless of
// submission order.
func TestFairshareOrder(t *testing.T) {
	forEach(t, func(t *testing.T, sub Substrate) {
		rec := &Recorder{}
		env := sub.Build(t, 1, rec.Hooks(map[string]float64{"strong": 0.8, "weak": 0.2}))
		env.RM.Submit(Job(1, "strong", 1, 10*time.Minute, epoch))
		env.RM.Schedule(epoch)

		// Weak user submits BEFORE the strong one; fairshare must win.
		env.RM.Submit(Job(2, "weak", 1, time.Minute, epoch.Add(time.Minute)))
		env.RM.Submit(Job(3, "strong", 1, time.Minute, epoch.Add(2*time.Minute)))
		env.RM.Schedule(epoch.Add(2 * time.Minute))
		env.Kernel.Run(epoch.Add(time.Hour))

		starts := rec.Starts()
		if len(starts) != 3 {
			t.Fatalf("observed %d starts, want 3", len(starts))
		}
		if starts[1].JobID != 3 || starts[2].JobID != 2 {
			t.Errorf("dispatch order [%d %d], want [3 2] (fairshare beats FIFO)",
				starts[1].JobID, starts[2].JobID)
		}
	})
}

// TestEqualPriorityFIFO verifies equal-fairshare jobs dispatch in
// submission order — the documented tie-break both substrates inherit from
// the shared priority queue.
func TestEqualPriorityFIFO(t *testing.T) {
	forEach(t, func(t *testing.T, sub Substrate) {
		rec := &Recorder{}
		env := sub.Build(t, 1, rec.Hooks(map[string]float64{"ua": 0.5, "ub": 0.5}))
		env.RM.Submit(Job(1, "ua", 1, 10*time.Minute, epoch))
		env.RM.Schedule(epoch)

		users := []string{"ub", "ua", "ub", "ua"}
		for i, u := range users {
			env.RM.Submit(Job(int64(10+i), u, 1, time.Minute, epoch.Add(time.Duration(i+1)*time.Minute)))
		}
		env.RM.Schedule(epoch.Add(5 * time.Minute))
		env.Kernel.Run(epoch.Add(2 * time.Hour))

		starts := rec.Starts()
		if len(starts) != 5 {
			t.Fatalf("observed %d starts, want 5", len(starts))
		}
		for i := 1; i < len(starts); i++ {
			if i > 1 && starts[i].JobID < starts[i-1].JobID {
				t.Errorf("equal-priority dispatch out of submission order: %d before %d",
					starts[i-1].JobID, starts[i].JobID)
			}
		}
	})
}

// TestCountersConsistent verifies the bookkeeping surface: submitted =
// queued + running + completed at every stage of a drain.
func TestCountersConsistent(t *testing.T) {
	forEach(t, func(t *testing.T, sub Substrate) {
		rec := &Recorder{}
		env := sub.Build(t, 2, rec.Hooks(map[string]float64{"ua": 0.5}))
		const n = 6
		for i := 0; i < n; i++ {
			env.RM.Submit(Job(int64(i+1), "ua", 1, time.Duration(i+1)*time.Minute, epoch))
		}
		env.RM.Schedule(epoch)
		check := func(when string) {
			completed := len(rec.Completions())
			total := env.RM.QueueLen() + env.RM.RunningCount() + completed
			if total != n {
				t.Fatalf("%s: queued %d + running %d + completed %d != submitted %d",
					when, env.RM.QueueLen(), env.RM.RunningCount(), completed, n)
			}
		}
		check("after schedule")
		if env.RM.Submitted() != n {
			t.Fatalf("Submitted() = %d, want %d", env.RM.Submitted(), n)
		}
		for env.Kernel.Step() {
			check("mid-drain")
		}
		check("after drain")
		if got := len(rec.Completions()); got != n {
			t.Fatalf("completed %d jobs, want %d", got, n)
		}
		if env.RM.QueueLen() != 0 || env.RM.RunningCount() != 0 {
			t.Fatalf("leftover state: queue %d running %d", env.RM.QueueLen(), env.RM.RunningCount())
		}
	})
}

// TestPendingSnapshot verifies Pending returns exactly the queued jobs.
func TestPendingSnapshot(t *testing.T) {
	forEach(t, func(t *testing.T, sub Substrate) {
		rec := &Recorder{}
		env := sub.Build(t, 1, rec.Hooks(map[string]float64{"ua": 0.5}))
		env.RM.Submit(Job(1, "ua", 1, 10*time.Minute, epoch))
		env.RM.Schedule(epoch)
		env.RM.Submit(Job(2, "ua", 1, time.Minute, epoch))
		env.RM.Submit(Job(3, "ua", 1, time.Minute, epoch))
		env.RM.Schedule(epoch)
		ids := map[int64]bool{}
		for _, j := range env.RM.Pending() {
			ids[j.ID] = true
		}
		if len(ids) != 2 || !ids[2] || !ids[3] {
			t.Fatalf("Pending() = %v, want jobs 2 and 3", ids)
		}
	})
}
