// Package rmconformance is the shared conformance suite for the Aequus
// call-out surfaces of both resource-manager substrates. The paper
// integrates Aequus twice — as a SLURM priority/job-completion plug-in pair
// and as patches to the Maui source — and both integrations must behave
// identically at the seam: the fairshare call-out receives the local user
// identity, call-out failures degrade to a neutral priority without losing
// jobs, the completion call-out fires exactly once per job with the actual
// (start, duration, procs), and dispatch follows fairshare order with FIFO
// tie-breaking.
//
// The suite is table-driven over a Substrate factory so every behavioural
// test runs verbatim against both implementations; a divergence is a
// conformance failure of the substrate, not a test variant.
package rmconformance

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/maui"
	"repro/internal/sched"
	"repro/internal/slurm"
)

// RM is the scheduler surface the suite drives: the grid-facing resource
// manager plus the queue snapshot used for assertions.
type RM interface {
	sched.ResourceManager
	Pending() []*sched.Job
	Submitted() int64
}

// Env is one substrate instance under test.
type Env struct {
	RM      RM
	Cluster *cluster.Cluster
	Kernel  *eventsim.Kernel
	// Errors reports the substrate's failed fairshare call-out counter.
	Errors func() int
}

// Hooks are the Aequus-facing call-outs injected into the substrate —
// the conformance surface itself.
type Hooks struct {
	// Fairshare replaces the local fairshare calculation (libaequus in
	// production).
	Fairshare func(localUser string) (float64, error)
	// JobCompleted is the usage-reporting call-out.
	JobCompleted func(j *sched.Job)
	// OnStart observes dispatches (test instrumentation, same hook the
	// scenario harness uses).
	OnStart func(j *sched.Job, priority float64, pass uint64)
}

// Substrate builds one RM implementation on a fresh cluster.
type Substrate struct {
	Name  string
	Build func(t *testing.T, cores int, h Hooks) *Env
}

// epoch is the fixed simulated time origin of every conformance scenario.
var epoch = time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)

// Substrates returns the two production substrates wired exactly like the
// testbed wires them (fairshare-only priority), with the suite's hooks at
// the Aequus seams.
func Substrates() []Substrate {
	return []Substrate{
		{
			Name: "slurm",
			Build: func(t *testing.T, cores int, h Hooks) *Env {
				k := eventsim.New(epoch)
				cl, err := cluster.New("test", cores, k)
				if err != nil {
					t.Fatalf("cluster: %v", err)
				}
				mf := &slurm.Multifactor{
					FS:      fsFunc(h.Fairshare),
					Weights: sched.FairshareOnly(),
				}
				var comp []slurm.JobCompHandler
				if h.JobCompleted != nil {
					comp = append(comp, jobCompFunc(h.JobCompleted))
				}
				s := slurm.New(slurm.Config{
					Cluster:  cl,
					Priority: mf,
					JobComp:  comp,
					OnStart:  h.OnStart,
				})
				return &Env{RM: s, Cluster: cl, Kernel: k, Errors: mf.Errors}
			},
		},
		{
			Name: "maui",
			Build: func(t *testing.T, cores int, h Hooks) *Env {
				k := eventsim.New(epoch)
				cl, err := cluster.New("test", cores, k)
				if err != nil {
					t.Fatalf("cluster: %v", err)
				}
				s := maui.New(maui.Config{
					Cluster: cl,
					Weights: maui.Weights{Fairshare: 1},
					Callouts: maui.Callouts{
						FairsharePriority: h.Fairshare,
						JobCompleted:      h.JobCompleted,
					},
					OnStart: h.OnStart,
				})
				return &Env{RM: s, Cluster: cl, Kernel: k, Errors: s.Errors}
			},
		},
	}
}

// fsFunc adapts a plain function to slurm.FairshareProvider.
type fsFunc func(localUser string) (float64, error)

func (fsFunc) Name() string { return "conformance" }
func (f fsFunc) Fairshare(u string) (float64, error) {
	if f == nil {
		return 0, errors.New("no fairshare hook")
	}
	return f(u)
}

// jobCompFunc adapts a plain function to slurm.JobCompHandler.
type jobCompFunc func(j *sched.Job)

func (f jobCompFunc) JobCompleted(j *sched.Job) { f(j) }

// Recorder captures call-out traffic for assertions. It is safe for
// concurrent use (the sim is single-threaded, but substrates may call from
// completion callbacks).
type Recorder struct {
	mu          sync.Mutex
	fairshare   []string
	completions []CompletionRecord
	starts      []StartRecord
}

// CompletionRecord is one observed JobCompleted call-out.
type CompletionRecord struct {
	JobID    int64
	User     string
	Start    time.Time
	Duration time.Duration
	Procs    int
}

// StartRecord is one observed dispatch.
type StartRecord struct {
	JobID    int64
	Priority float64
	Pass     uint64
}

// FairshareCalls returns the local-user arguments of every fairshare
// call-out so far.
func (r *Recorder) FairshareCalls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.fairshare...)
}

// Completions returns the observed completion call-outs.
func (r *Recorder) Completions() []CompletionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CompletionRecord(nil), r.completions...)
}

// Starts returns the observed dispatches in order.
func (r *Recorder) Starts() []StartRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]StartRecord(nil), r.starts...)
}

// Hooks returns instrumented hooks whose fairshare factor is looked up in
// `table` (a missing user is an error — the degraded-mode path).
func (r *Recorder) Hooks(table map[string]float64) Hooks {
	return Hooks{
		Fairshare: func(u string) (float64, error) {
			r.mu.Lock()
			r.fairshare = append(r.fairshare, u)
			r.mu.Unlock()
			v, ok := table[u]
			if !ok {
				return 0, fmt.Errorf("unknown user %q", u)
			}
			return v, nil
		},
		JobCompleted: func(j *sched.Job) {
			r.mu.Lock()
			r.completions = append(r.completions, CompletionRecord{
				JobID:    j.ID,
				User:     j.LocalUser,
				Start:    j.Start,
				Duration: j.End.Sub(j.Start),
				Procs:    j.Procs,
			})
			r.mu.Unlock()
		},
		OnStart: func(j *sched.Job, priority float64, pass uint64) {
			r.mu.Lock()
			r.starts = append(r.starts, StartRecord{JobID: j.ID, Priority: priority, Pass: pass})
			r.mu.Unlock()
		},
	}
}

// Job builds a pending job owned by a local user.
func Job(id int64, user string, procs int, dur time.Duration, submit time.Time) *sched.Job {
	return &sched.Job{
		ID:        id,
		LocalUser: user,
		GridUser:  user,
		Procs:     procs,
		Duration:  dur,
		Submit:    submit,
	}
}
