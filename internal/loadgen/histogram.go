// Package loadgen is the macro load harness: a seed-deterministic generator
// that replays workload-model traffic against a live multi-site Aequus
// deployment over real HTTP, records per-route latency distributions and
// error rates, and evaluates the result against configurable SLO gates. The
// package is the reusable core of cmd/loadgen; tests drive the same plan,
// runner and evaluator in-process.
package loadgen

import (
	"math/bits"
	"time"
)

// Histogram bucket layout: log-linear (HDR-style). Values below subCount
// nanoseconds get exact unit buckets; above that, each power-of-two octave is
// split into subCount linear sub-buckets, bounding the relative quantile
// error by 1/subCount (~3.1%). The layout is fixed, so any two histograms
// merge bucket-by-bucket and merging is associative and commutative.
const (
	subBits  = 5
	subCount = 1 << subBits // 32 linear sub-buckets per octave

	// maxBuckets covers the full int64 nanosecond range: 63 octaves of
	// subCount buckets plus the exact low range. Latencies are clamped into
	// the layout, never dropped.
	maxBuckets = subCount + (64-subBits)*subCount
)

// Histogram is a fixed-layout log-linear latency histogram with ≤3.1%
// relative quantile error. It is NOT safe for concurrent use: each load
// worker owns one and the results are merged after the run.
type Histogram struct {
	counts [maxBuckets]int64
	count  int64
	sum    float64 // nanoseconds; float64 so huge runs cannot overflow
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: -1} }

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) // >= subBits+1 here
	shift := e - subBits - 1
	sub := int((uint64(v) >> uint(shift)) & (subCount - 1))
	return subCount + (shift << subBits) + sub
}

// bucketUpper returns the largest value mapping into bucket idx — the
// histogram's quantile estimate for ranks landing in that bucket.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	i := idx - subCount
	oct := i >> subBits
	sub := int64(i & (subCount - 1))
	lower := (subCount + sub) << uint(oct)
	width := int64(1) << uint(oct)
	return lower + width - 1
}

// Record adds one observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += float64(v)
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min returns the exact smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.min < 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Quantile estimates the q-quantile (q in [0,1]) using the convention rank =
// ceil(q·count) with a floor of 1 — identical to indexing a sorted slice at
// that rank — and returns the upper bound of the bucket holding that rank,
// clamped into [Min, Max] so degenerate distributions stay exact. Empty
// histograms return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < maxBuckets; i++ {
		seen += h.counts[i]
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if h.min >= 0 && v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h. The shared fixed layout makes the operation
// associative and commutative, so per-worker histograms can be combined in
// any grouping without changing any quantile.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.count += other.count
	h.sum += other.sum
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}
