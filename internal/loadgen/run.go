package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/services/httpapi"
	"repro/internal/wire"
)

// RunConfig parameterizes one load run against a live deployment.
type RunConfig struct {
	// Targets are the site base URLs; a client pinned to site i talks to
	// Targets[i % len(Targets)] (required).
	Targets []string
	// Plan is the deterministic schedule (required).
	Plan *Plan
	// HTTP overrides the shared transport (default: httpapi.NewHTTPClient
	// with the per-attempt timeout below).
	HTTP *http.Client
	// RequestTimeout caps one request (default 10s).
	RequestTimeout time.Duration
}

// routeAgg accumulates one worker's per-route results; workers never share
// an aggregate, so the hot path takes no locks.
type routeAgg struct {
	hist      *Histogram
	requests  int64
	status4xx int64
	status5xx int64
	transport int64
}

func newAggs() [numRoutes]*routeAgg {
	var a [numRoutes]*routeAgg
	for i := range a {
		a[i] = &routeAgg{hist: NewHistogram()}
	}
	return a
}

// Run executes the plan against the targets and returns the merged report.
// Open-loop clients fire each request at its planned offset whether or not
// earlier requests completed (arrival-driven, so server slowdown shows up as
// latency, not reduced load); closed-loop clients cycle their stream with
// one request in flight until the duration elapses.
func Run(ctx context.Context, cfg RunConfig) (*Report, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("loadgen: no targets")
	}
	if cfg.Plan == nil {
		return nil, errors.New("loadgen: no plan")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	client := cfg.HTTP
	if client == nil {
		client = httpapi.NewHTTPClient(cfg.RequestTimeout)
	}

	plan := cfg.Plan
	users := plan.Config.Population.Users
	deadline := plan.Config.Duration

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([][numRoutes]*routeAgg, len(plan.Clients))
	var wg sync.WaitGroup
	start := time.Now()
	for ci := range plan.Clients {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cp := &plan.Clients[ci]
			target := cfg.Targets[cp.Site%len(cfg.Targets)]
			aggs := newAggs()
			w := worker{client: client, target: target, users: users, aggs: &aggs}
			if cp.Closed {
				end := start.Add(deadline)
				for i := 0; time.Now().Before(end); i++ {
					if runCtx.Err() != nil {
						break
					}
					w.issue(runCtx, &cp.Requests[i%len(cp.Requests)])
				}
			} else {
				for i := range cp.Requests {
					r := &cp.Requests[i]
					if d := time.Until(start.Add(r.At)); d > 0 {
						select {
						case <-runCtx.Done():
						case <-time.After(d):
						}
					}
					if runCtx.Err() != nil {
						break
					}
					w.issue(runCtx, r)
				}
			}
			results[ci] = aggs
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	merged := newAggs()
	for _, aggs := range results {
		for r := range aggs {
			if aggs[r] == nil {
				continue
			}
			merged[r].hist.Merge(aggs[r].hist)
			merged[r].requests += aggs[r].requests
			merged[r].status4xx += aggs[r].status4xx
			merged[r].status5xx += aggs[r].status5xx
			merged[r].transport += aggs[r].transport
		}
	}
	return buildReport(plan, merged, elapsed), nil
}

// worker issues one client's requests and records the outcomes.
type worker struct {
	client *http.Client
	target string
	users  []string
	aggs   *[numRoutes]*routeAgg
}

func (w *worker) issue(ctx context.Context, r *Request) {
	agg := w.aggs[r.Route]
	agg.requests++
	var (
		status int
		err    error
	)
	begin := time.Now()
	switch r.Route {
	case RouteFairshare:
		status, err = w.get(ctx, "/fairshare?user="+w.users[r.User])
	case RouteBatch:
		req := wire.FairshareBatchRequest{Users: make([]string, len(r.Batch))}
		for i, u := range r.Batch {
			req.Users[i] = w.users[u]
		}
		status, err = w.post(ctx, "/fairshare/batch", req)
	case RouteIngest:
		status, err = w.ingest(ctx, r)
	}
	lat := time.Since(begin)
	if err != nil {
		agg.transport++
		return
	}
	agg.hist.Record(lat)
	switch {
	case status >= 500:
		agg.status5xx++
	case status >= 400:
		agg.status4xx++
	}
}

// ingest posts r's job completions: the batch route when the plan carries
// more than one report per request, the single-report route otherwise. Start
// times are set so each job completes "now", matching the USS's
// completion-time attribution.
func (w *worker) ingest(ctx context.Context, r *Request) (int, error) {
	now := time.Now()
	reports := make([]wire.UsageReport, len(r.Batch))
	for i, u := range r.Batch {
		d := r.DurSec[i]
		reports[i] = wire.UsageReport{
			User:            w.users[u],
			Start:           now.Add(-time.Duration(d * float64(time.Second))),
			DurationSeconds: d,
			Procs:           1,
		}
	}
	if len(reports) == 1 {
		return w.post(ctx, "/usage", reports[0])
	}
	return w.post(ctx, "/usage/batch", wire.UsageBatchRequest{Reports: reports})
}

func (w *worker) get(ctx context.Context, path string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.target+path, nil)
	if err != nil {
		return 0, err
	}
	return w.do(req)
}

func (w *worker) post(ctx context.Context, path string, body interface{}) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.target+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req)
}

// do performs the request and drains the body so the transport's keep-alive
// pool reuses the connection — re-dialing per request would measure the
// dialer, not the serving path.
func (w *worker) do(req *http.Request) (int, error) {
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// RampConfig parameterizes the saturation search: successive fixed-duration
// steps at increasing open-loop RPS until the deployment stops keeping up.
type RampConfig struct {
	// StartRPS / StepRPS / Steps define the schedule: step i offers
	// StartRPS + i·StepRPS for StepDuration.
	StartRPS, StepRPS float64
	Steps             int
	StepDuration      time.Duration
	// KneeFraction declares saturation when achieved throughput falls below
	// this fraction of the target (default 0.9).
	KneeFraction float64
}

// RunRamp executes ramp steps, deriving each step's deterministic plan from
// the base config (seed offset by the step index), and stops at the first
// saturated step. The returned report carries the merged route stats plus
// the per-step trajectory and the knee, if found.
func RunRamp(ctx context.Context, run RunConfig, base PlanConfig, ramp RampConfig) (*Report, error) {
	if ramp.Steps <= 0 || ramp.StepDuration <= 0 || ramp.StartRPS <= 0 {
		return nil, errors.New("loadgen: ramp needs start rps, steps and step duration")
	}
	if ramp.StepRPS < 0 {
		return nil, errors.New("loadgen: negative ramp step")
	}
	if ramp.KneeFraction <= 0 || ramp.KneeFraction > 1 {
		ramp.KneeFraction = 0.9
	}
	var (
		merged  *Report
		steps   []RampStep
		kneeRPS float64
	)
	for i := 0; i < ramp.Steps; i++ {
		cfg := base
		cfg.Seed = base.Seed + int64(i)
		cfg.RPS = ramp.StartRPS + float64(i)*ramp.StepRPS
		cfg.Duration = ramp.StepDuration
		cfg.OpenClients = 0 // re-derive from this step's RPS
		plan, err := BuildPlan(cfg)
		if err != nil {
			return nil, err
		}
		stepRun := run
		stepRun.Plan = plan
		rep, err := Run(ctx, stepRun)
		if err != nil {
			return nil, err
		}
		step := RampStep{
			TargetRPS:   cfg.RPS,
			AchievedRPS: rep.Total.AchievedRPS,
			P99Ms:       rep.Total.P99Ms,
			ErrorRate:   rep.Total.ErrorRate,
		}
		step.Saturated = step.AchievedRPS < ramp.KneeFraction*step.TargetRPS
		steps = append(steps, step)
		if merged == nil {
			merged = rep
		} else {
			mergeReports(merged, rep)
		}
		if step.Saturated {
			kneeRPS = step.TargetRPS
			break
		}
	}
	merged.Ramp = steps
	if kneeRPS > 0 {
		merged.SaturationRPS = kneeRPS
	}
	return merged, nil
}

// String renders a ramp step for logs.
func (s RampStep) String() string {
	sat := ""
	if s.Saturated {
		sat = " SATURATED"
	}
	return fmt.Sprintf("target %.0f rps → achieved %.0f rps, p99 %.2fms, err %.4f%s",
		s.TargetRPS, s.AchievedRPS, s.P99Ms, s.ErrorRate, sat)
}
