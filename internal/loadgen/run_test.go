package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/testbed"
)

// deploy stands up a small live federation for the smoke tests.
func deploy(t *testing.T, users, sites int) (urls []string, cfg PlanConfig) {
	t.Helper()
	pop := testPopulation(t, users)
	dep, err := testbed.DeployLive(testbed.LiveConfig{
		Sites:            sites,
		Policy:           pop.PolicyTree(),
		Seed:             1,
		ExchangeInterval: 200 * time.Millisecond,
		RefreshInterval:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := dep.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return dep.URLs(), PlanConfig{
		Seed:          1,
		Population:    pop,
		Sites:         sites,
		Duration:      2 * time.Second,
		RPS:           150,
		ClosedClients: 2,
	}
}

// TestRunSmoke is the end-to-end contract: a short run against a real
// two-site deployment completes requests on every route with zero server
// errors, and the report carries everything CI gates on.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live deployment smoke test")
	}
	urls, planCfg := deploy(t, 200, 2)
	plan, err := BuildPlan(planCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunConfig{Targets: urls, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Total.Completed == 0 {
		t.Fatal("run completed zero requests")
	}
	if rep.Total.Status5xx != 0 || rep.Total.TransportErrors != 0 {
		t.Fatalf("healthy deployment produced errors: %+v", rep.Total)
	}
	if rep.Total.AchievedRPS <= 0 {
		t.Fatalf("achieved rps = %v", rep.Total.AchievedRPS)
	}
	for _, route := range []string{"fairshare", "fairshare_batch", "usage_ingest"} {
		s, ok := rep.Routes[route]
		if !ok {
			t.Fatalf("report missing route %s (have %v)", route, rep.Routes)
		}
		if s.Completed == 0 {
			t.Errorf("route %s completed zero requests", route)
		}
		if s.P50Ms <= 0 || s.P99Ms < s.P50Ms || s.P999Ms < s.P99Ms || s.MaxMs < s.P999Ms {
			t.Errorf("route %s quantiles not ordered: %+v", route, s)
		}
	}
	if want := fmt.Sprintf("%016x", plan.Fingerprint()); rep.Fingerprint != want {
		t.Errorf("report fingerprint %s does not match plan %s", rep.Fingerprint, want)
	}

	// Gates: a lenient SLO must pass a healthy run and an absurdly tight
	// one must fail it — that asymmetry is what CI's exit code rides on.
	// (The production latency bounds live in DefaultSLO; under the race
	// detector they would gate the instrumentation, not the server.)
	generous := 1e3
	zero := 0.0
	lenient := SLO{Gates: []Gate{
		{Route: "*", Metric: "status_5xx", Max: &zero},
		{Route: "*", Metric: "error_rate", Max: &zero},
		{Route: "total", Metric: "p99_ms", Max: &generous},
	}}
	if v := lenient.Evaluate(rep); len(v) != 0 {
		t.Errorf("lenient SLO violated on healthy run: %v", v)
	}
	tiny := 1e-9
	tight := SLO{Gates: []Gate{{Route: "fairshare", Metric: "p50_ms", Max: &tiny}}}
	violations := tight.Evaluate(rep)
	if len(violations) != 1 {
		t.Fatalf("tightened SLO produced %d violations, want 1", len(violations))
	}
	rep.AttachSLO(violations)
	if rep.SLO.Passed {
		t.Error("report marked passed with violations attached")
	}

	// The JSON artifact round-trips with the fields CI consumes.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != ReportSchema || decoded.Total.Completed != rep.Total.Completed {
		t.Errorf("JSON round-trip mismatch: %+v", decoded)
	}
	if len(decoded.SLO.Violations) != 1 {
		t.Errorf("SLO result lost in serialization: %+v", decoded.SLO)
	}

	bench := rep.BenchFormat()
	for _, want := range []string{"BenchmarkLoadgen/fairshare ", "BenchmarkLoadgen/total ", "p99-ns/op", "req/s"} {
		if !strings.Contains(bench, want) {
			t.Errorf("bench format missing %q:\n%s", want, bench)
		}
	}
}

// TestRunRampSmoke: two quick steps, merged trajectory recorded.
func TestRunRampSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live deployment smoke test")
	}
	urls, planCfg := deploy(t, 100, 1)
	rep, err := RunRamp(context.Background(), RunConfig{Targets: urls}, planCfg, RampConfig{
		StartRPS:     50,
		StepRPS:      50,
		Steps:        2,
		StepDuration: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ramp) == 0 || len(rep.Ramp) > 2 {
		t.Fatalf("ramp recorded %d steps, want 1–2", len(rep.Ramp))
	}
	if rep.Total.Completed == 0 {
		t.Fatal("ramp completed zero requests")
	}
	for i, s := range rep.Ramp {
		if s.TargetRPS != 50+float64(i)*50 {
			t.Errorf("step %d target %v, want %v", i, s.TargetRPS, 50+float64(i)*50)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), RunConfig{}); err == nil {
		t.Error("run without targets accepted")
	}
	if _, err := Run(context.Background(), RunConfig{Targets: []string{"http://127.0.0.1:1"}}); err == nil {
		t.Error("run without plan accepted")
	}
	_, err := RunRamp(context.Background(), RunConfig{Targets: []string{"x"}}, PlanConfig{}, RampConfig{})
	if err == nil {
		t.Error("ramp without schedule accepted")
	}
}
