package loadgen

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// syntheticReport builds a report without a network: fairshare at a tight
// 2ms, batch at 10ms, optionally with server errors on the batch route.
func syntheticReport(t *testing.T, with5xx bool) *Report {
	t.Helper()
	plan, err := BuildPlan(testPlanConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	aggs := newAggs()
	fs := aggs[RouteFairshare]
	for i := 0; i < 1000; i++ {
		fs.hist.Record(2 * time.Millisecond)
		fs.requests++
	}
	ba := aggs[RouteBatch]
	for i := 0; i < 100; i++ {
		ba.hist.Record(10 * time.Millisecond)
		ba.requests++
	}
	if with5xx {
		ba.status5xx = 3
	}
	return buildReport(plan, aggs, 2*time.Second)
}

func TestSLODefaultGates(t *testing.T) {
	clean := syntheticReport(t, false)
	if v := DefaultSLO().Evaluate(clean); len(v) != 0 {
		t.Errorf("default SLO violated on clean report: %v", v)
	}
	dirty := syntheticReport(t, true)
	v := DefaultSLO().Evaluate(dirty)
	if len(v) == 0 {
		t.Fatal("default SLO passed a report with 5xx responses")
	}
	// The "*" gates must flag both the offending route and the total.
	routes := map[string]bool{}
	for _, viol := range v {
		routes[viol.Route] = true
	}
	if !routes["fairshare_batch"] || !routes["total"] {
		t.Errorf("5xx violations missed route or total: %v", v)
	}
}

func TestSLOMaxAndMinBounds(t *testing.T) {
	rep := syntheticReport(t, false)
	f := func(v float64) *float64 { return &v }

	v := SLO{Gates: []Gate{{Route: "fairshare", Metric: "p99_ms", Max: f(1)}}}.Evaluate(rep)
	if len(v) != 1 || v[0].Bound != "max" || v[0].Limit != 1 || v[0].Value <= 1 {
		t.Fatalf("max bound violation wrong: %+v", v)
	}
	if !strings.Contains(v[0].Message, "fairshare p99_ms") {
		t.Errorf("violation message unhelpful: %q", v[0].Message)
	}

	v = SLO{Gates: []Gate{{Route: "total", Metric: "throughput_rps", Min: f(1e9)}}}.Evaluate(rep)
	if len(v) != 1 || v[0].Bound != "min" {
		t.Fatalf("min bound violation wrong: %+v", v)
	}

	// Both bounds satisfiable at once.
	v = SLO{Gates: []Gate{{Route: "fairshare", Metric: "p99_ms", Min: f(0.001), Max: f(1000)}}}.Evaluate(rep)
	if len(v) != 0 {
		t.Errorf("satisfied two-sided gate violated: %v", v)
	}
}

func TestSLOUnmatchedRouteIsViolation(t *testing.T) {
	rep := syntheticReport(t, false)
	f := func(v float64) *float64 { return &v }
	v := SLO{Gates: []Gate{{Route: "usage_ingest", Metric: "p99_ms", Max: f(100)}}}.Evaluate(rep)
	if len(v) != 1 || !strings.Contains(v[0].Message, "matched no measured route") {
		t.Fatalf("gate on unmeasured route must violate, got %v", v)
	}
}

func TestSLOEvaluateDeterministicOrder(t *testing.T) {
	rep := syntheticReport(t, true)
	first := DefaultSLO().Evaluate(rep)
	for i := 0; i < 10; i++ {
		if again := DefaultSLO().Evaluate(rep); !reflect.DeepEqual(first, again) {
			t.Fatalf("violation order unstable:\n%v\nvs\n%v", first, again)
		}
	}
}

func TestParseSLOValidation(t *testing.T) {
	bad := []string{
		`{`,
		`{"gates": []}`,
		`{"gates": [{"metric": "p99_ms", "max": 5}]}`,
		`{"gates": [{"route": "fairshare", "metric": "p99_ms"}]}`,
		`{"gates": [{"route": "fairshare", "metric": "p98_ms", "max": 5}]}`,
	}
	for _, doc := range bad {
		if _, err := ParseSLO([]byte(doc)); err == nil {
			t.Errorf("ParseSLO accepted %s", doc)
		}
	}
	good := `{"gates": [
		{"route": "fairshare", "metric": "p99_ms", "max": 5},
		{"route": "*", "metric": "status_5xx", "max": 0},
		{"route": "total", "metric": "throughput_rps", "min": 100}
	]}`
	s, err := ParseSLO([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Gates) != 3 {
		t.Fatalf("parsed %d gates, want 3", len(s.Gates))
	}
}
