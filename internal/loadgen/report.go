package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// ReportSchema versions the BENCH_load.json layout for downstream tooling.
const ReportSchema = "aequus-loadgen/v1"

// RouteStats summarizes one route's (or the whole run's) outcomes.
type RouteStats struct {
	// Requests counts attempts; Completed counts HTTP exchanges that
	// returned a status (latency is recorded for these).
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	// Errors = Status4xx + Status5xx + TransportErrors.
	Errors          int64   `json:"errors"`
	Status4xx       int64   `json:"status4xx"`
	Status5xx       int64   `json:"status5xx"`
	TransportErrors int64   `json:"transportErrors"`
	ErrorRate       float64 `json:"errorRate"`
	// AchievedRPS is completed responses per second of run wall time.
	AchievedRPS float64 `json:"achievedRps"`
	// Latency quantiles in milliseconds over completed exchanges.
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// RampStep is one measured step of the saturation search.
type RampStep struct {
	TargetRPS   float64 `json:"targetRps"`
	AchievedRPS float64 `json:"achievedRps"`
	P99Ms       float64 `json:"p99Ms"`
	ErrorRate   float64 `json:"errorRate"`
	Saturated   bool    `json:"saturated"`
}

// SLOResult records the gate evaluation embedded in the report.
type SLOResult struct {
	Passed     bool        `json:"passed"`
	Violations []Violation `json:"violations,omitempty"`
}

// Report is the machine-readable result of a load run — the BENCH_load.json
// payload CI archives and gates on.
type Report struct {
	Schema string `json:"schema"`
	// Seed / Users / Sites / TargetRPS echo the effective configuration.
	Seed      int64   `json:"seed"`
	Users     int     `json:"users"`
	Sites     int     `json:"sites"`
	TargetRPS float64 `json:"targetRps"`
	// Fingerprint is the plan's schedule hash (hex): identical across runs
	// of the same seed+config, so trend comparisons know the offered load
	// matched.
	Fingerprint string `json:"fingerprint"`
	// DurationSec is the measured wall time of the run.
	DurationSec float64 `json:"durationSec"`
	// Routes maps route name → stats; Total aggregates all routes.
	Routes map[string]RouteStats `json:"routes"`
	Total  RouteStats            `json:"total"`
	// Ramp / SaturationRPS are set in ramp mode (SaturationRPS 0 = no knee
	// found within the schedule).
	Ramp          []RampStep `json:"ramp,omitempty"`
	SaturationRPS float64    `json:"saturationRps,omitempty"`
	// SLO is attached by Evaluate via AttachSLO.
	SLO *SLOResult `json:"slo,omitempty"`

	aggs    [numRoutes]*routeAgg
	elapsed time.Duration
}

func statsFrom(a *routeAgg, elapsed time.Duration) RouteStats {
	h := a.hist
	s := RouteStats{
		Requests:        a.requests,
		Completed:       h.Count(),
		Status4xx:       a.status4xx,
		Status5xx:       a.status5xx,
		TransportErrors: a.transport,
		Errors:          a.status4xx + a.status5xx + a.transport,
		MeanMs:          ms(h.Mean()),
		P50Ms:           ms(h.Quantile(0.50)),
		P99Ms:           ms(h.Quantile(0.99)),
		P999Ms:          ms(h.Quantile(0.999)),
		MaxMs:           ms(h.Max()),
	}
	if s.Requests > 0 {
		s.ErrorRate = float64(s.Errors) / float64(s.Requests)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.AchievedRPS = float64(s.Completed) / sec
	}
	return s
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func buildReport(plan *Plan, aggs [numRoutes]*routeAgg, elapsed time.Duration) *Report {
	r := &Report{
		Schema:      ReportSchema,
		Seed:        plan.Config.Seed,
		Users:       plan.Config.Population.Len(),
		Sites:       plan.Config.Sites,
		TargetRPS:   plan.Config.RPS,
		Fingerprint: fmt.Sprintf("%016x", plan.Fingerprint()),
		aggs:        aggs,
		elapsed:     elapsed,
	}
	r.recompute()
	return r
}

// recompute derives the published stats from the raw aggregates.
func (r *Report) recompute() {
	r.DurationSec = r.elapsed.Seconds()
	r.Routes = make(map[string]RouteStats, numRoutes)
	total := &routeAgg{hist: NewHistogram()}
	for route, a := range r.aggs {
		if a == nil || a.requests == 0 {
			continue
		}
		r.Routes[Route(route).String()] = statsFrom(a, r.elapsed)
		total.hist.Merge(a.hist)
		total.requests += a.requests
		total.status4xx += a.status4xx
		total.status5xx += a.status5xx
		total.transport += a.transport
	}
	r.Total = statsFrom(total, r.elapsed)
}

// mergeReports folds src's raw aggregates into dst (ramp steps accumulate
// into one trajectory-wide distribution) and recomputes dst's stats.
// Quantiles merge exactly because the underlying histograms share one fixed
// bucket layout.
func mergeReports(dst, src *Report) {
	for i := range dst.aggs {
		if src.aggs[i] == nil {
			continue
		}
		if dst.aggs[i] == nil {
			dst.aggs[i] = &routeAgg{hist: NewHistogram()}
		}
		dst.aggs[i].hist.Merge(src.aggs[i].hist)
		dst.aggs[i].requests += src.aggs[i].requests
		dst.aggs[i].status4xx += src.aggs[i].status4xx
		dst.aggs[i].status5xx += src.aggs[i].status5xx
		dst.aggs[i].transport += src.aggs[i].transport
	}
	dst.elapsed += src.elapsed
	if src.TargetRPS > dst.TargetRPS {
		dst.TargetRPS = src.TargetRPS
	}
	dst.recompute()
}

// AttachSLO embeds a gate evaluation into the report.
func (r *Report) AttachSLO(violations []Violation) {
	r.SLO = &SLOResult{Passed: len(violations) == 0, Violations: violations}
}

// WriteJSON writes the report to path, indented for humans, stable for
// machines.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchFormat renders the report as Go benchmark lines so benchstat can
// compare load runs across CI artifacts: the iteration count is the number
// of completed requests, ns/op the mean latency, with the quantiles and
// achieved throughput as custom units.
func (r *Report) BenchFormat() string {
	var b strings.Builder
	names := make([]string, 0, len(r.Routes))
	for name := range r.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	write := func(name string, s RouteStats) {
		if s.Completed == 0 {
			return
		}
		fmt.Fprintf(&b, "BenchmarkLoadgen/%s \t%d\t%d ns/op\t%d p50-ns/op\t%d p99-ns/op\t%d p999-ns/op\t%.1f req/s\n",
			name, s.Completed,
			int64(s.MeanMs*float64(time.Millisecond)),
			int64(s.P50Ms*float64(time.Millisecond)),
			int64(s.P99Ms*float64(time.Millisecond)),
			int64(s.P999Ms*float64(time.Millisecond)),
			s.AchievedRPS)
	}
	for _, name := range names {
		write(name, r.Routes[name])
	}
	write("total", r.Total)
	return b.String()
}

// WriteBenchFormat writes the benchstat-comparable rendering to path.
func (r *Report) WriteBenchFormat(path string) error {
	return os.WriteFile(path, []byte(r.BenchFormat()), 0o644)
}

// Summary renders a short human-readable digest for run logs.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d users, %d sites, %.1fs, fingerprint %s\n",
		r.Users, r.Sites, r.DurationSec, r.Fingerprint)
	names := make([]string, 0, len(r.Routes))
	for name := range r.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.Routes[name]
		fmt.Fprintf(&b, "  %-16s %8d req %8.1f req/s  p50 %7.2fms  p99 %7.2fms  p999 %7.2fms  max %7.2fms  err %.4f\n",
			name, s.Requests, s.AchievedRPS, s.P50Ms, s.P99Ms, s.P999Ms, s.MaxMs, s.ErrorRate)
	}
	s := r.Total
	fmt.Fprintf(&b, "  %-16s %8d req %8.1f req/s  p50 %7.2fms  p99 %7.2fms  p999 %7.2fms  max %7.2fms  err %.4f\n",
		"total", s.Requests, s.AchievedRPS, s.P50Ms, s.P99Ms, s.P999Ms, s.MaxMs, s.ErrorRate)
	for _, step := range r.Ramp {
		fmt.Fprintf(&b, "  ramp: %s\n", step.String())
	}
	if r.SaturationRPS > 0 {
		fmt.Fprintf(&b, "  saturation knee at ~%.0f rps\n", r.SaturationRPS)
	}
	return b.String()
}
