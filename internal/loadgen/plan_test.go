package loadgen

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func testPopulation(t testing.TB, n int) *workload.Population {
	t.Helper()
	pop, err := workload.NationalGrid2012(time.Hour).Population(n)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func testPlanConfig(t testing.TB) PlanConfig {
	return PlanConfig{
		Seed:          42,
		Population:    testPopulation(t, 500),
		Sites:         2,
		Duration:      5 * time.Second,
		RPS:           400,
		ClosedClients: 3,
	}
}

// TestPlanSeedDeterminism is the fingerprint contract: same seed and config
// → a bit-identical request schedule, twice in a row.
func TestPlanSeedDeterminism(t *testing.T) {
	cfg := testPlanConfig(t)
	a, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed, different fingerprints: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
	if a.TotalPlanned() != b.TotalPlanned() {
		t.Fatalf("same seed, different request counts: %d vs %d", a.TotalPlanned(), b.TotalPlanned())
	}
	if a.TotalPlanned() == 0 {
		t.Fatal("plan generated no requests")
	}

	cfg.Seed = 43
	c, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatalf("different seeds produced the same fingerprint %016x", a.Fingerprint())
	}
}

func TestPlanOpenLoopScheduleShape(t *testing.T) {
	cfg := testPlanConfig(t)
	p, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var open, closed, openReqs int
	for _, c := range p.Clients {
		if c.Closed {
			closed++
			if len(c.Requests) != closedCycle {
				t.Errorf("closed client cycle = %d, want %d", len(c.Requests), closedCycle)
			}
			continue
		}
		open++
		openReqs += len(c.Requests)
		var prev time.Duration
		for _, r := range c.Requests {
			if r.At < prev {
				t.Fatalf("open-loop offsets not monotone: %v after %v", r.At, prev)
			}
			if r.At >= cfg.Duration {
				t.Fatalf("offset %v beyond duration %v", r.At, cfg.Duration)
			}
			prev = r.At
		}
	}
	if open == 0 || closed != 3 {
		t.Fatalf("pool shape: %d open, %d closed", open, closed)
	}
	// Poisson arrivals at 400 rps over 5s across all clients: expect ~2000
	// requests; 3σ ≈ 134.
	if openReqs < 1700 || openReqs > 2300 {
		t.Errorf("open-loop planned %d requests, want ~2000", openReqs)
	}
}

func TestPlanRouteMixAndValidity(t *testing.T) {
	cfg := testPlanConfig(t)
	cfg.Mix = Mix{Fairshare: 0.5, Batch: 0.25, Ingest: 0.25}
	cfg.BatchSize = 16
	cfg.IngestBatch = 4
	p, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop := cfg.Population
	counts := map[Route]int{}
	total := 0
	for _, c := range p.Clients {
		for _, r := range c.Requests {
			counts[r.Route]++
			total++
			switch r.Route {
			case RouteFairshare:
				if int(r.User) < 0 || int(r.User) >= pop.Len() {
					t.Fatalf("user index %d out of range", r.User)
				}
			case RouteBatch:
				if len(r.Batch) != 16 {
					t.Fatalf("batch size %d, want 16", len(r.Batch))
				}
			case RouteIngest:
				if len(r.Batch) != 4 || len(r.DurSec) != 4 {
					t.Fatalf("ingest shape %d/%d, want 4/4", len(r.Batch), len(r.DurSec))
				}
				for _, d := range r.DurSec {
					if d < 1 || d > 86400 {
						t.Fatalf("ingest duration %v outside clamp", d)
					}
				}
			}
		}
	}
	frac := float64(counts[RouteFairshare]) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fairshare fraction %.3f, want ~0.5", frac)
	}
}

func TestPlanConfigValidation(t *testing.T) {
	if _, err := BuildPlan(PlanConfig{}); err == nil {
		t.Error("missing population not rejected")
	}
	cfg := testPlanConfig(t)
	cfg.Duration = 0
	if _, err := BuildPlan(cfg); err == nil {
		t.Error("zero duration not rejected")
	}
	cfg = testPlanConfig(t)
	cfg.Mix = Mix{Fairshare: -1, Batch: 1, Ingest: 1}
	if _, err := BuildPlan(cfg); err == nil {
		t.Error("negative mix weight not rejected")
	}
}
