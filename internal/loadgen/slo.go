package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Gate is one SLO bound on a route metric. A gate fails when the measured
// value exceeds Max or falls below Min (whichever bounds are set).
type Gate struct {
	// Route selects which stats the gate reads: a route name ("fairshare",
	// "fairshare_batch", "usage_ingest"), "total" for the aggregate, or
	// "*" for every measured route plus the total.
	Route string `json:"route"`
	// Metric is one of: p50_ms, p99_ms, p999_ms, max_ms, mean_ms,
	// error_rate, status_5xx, transport_errors, throughput_rps.
	Metric string `json:"metric"`
	// Max / Min bound the metric (either or both).
	Max *float64 `json:"max,omitempty"`
	Min *float64 `json:"min,omitempty"`
}

// SLO is a set of gates — the JSON document cmd/loadgen's -slo flag loads.
type SLO struct {
	Gates []Gate `json:"gates"`
}

// Violation is one failed gate.
type Violation struct {
	Route   string  `json:"route"`
	Metric  string  `json:"metric"`
	Value   float64 `json:"value"`
	Bound   string  `json:"bound"` // "max" or "min"
	Limit   float64 `json:"limit"`
	Message string  `json:"message"`
}

// DefaultSLO is the baseline production gate set: single priority lookups
// under 5ms at the 99th percentile, batch resolution under 25ms, and no
// server-side or transport errors anywhere — peer churn in the background
// must never surface as a failed serving request.
func DefaultSLO() SLO {
	f := func(v float64) *float64 { return &v }
	return SLO{Gates: []Gate{
		{Route: "fairshare", Metric: "p99_ms", Max: f(5)},
		{Route: "fairshare_batch", Metric: "p99_ms", Max: f(25)},
		{Route: "*", Metric: "status_5xx", Max: f(0)},
		{Route: "*", Metric: "error_rate", Max: f(0)},
	}}
}

// ParseSLO decodes an SLO document, rejecting unknown metrics and unbounded
// gates up front so a typo fails the run loudly instead of gating nothing.
func ParseSLO(data []byte) (SLO, error) {
	var s SLO
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("loadgen: parsing SLO: %w", err)
	}
	if len(s.Gates) == 0 {
		return s, fmt.Errorf("loadgen: SLO has no gates")
	}
	for i, g := range s.Gates {
		if g.Route == "" {
			return s, fmt.Errorf("loadgen: SLO gate %d has no route", i)
		}
		if g.Max == nil && g.Min == nil {
			return s, fmt.Errorf("loadgen: SLO gate %d (%s %s) has neither max nor min", i, g.Route, g.Metric)
		}
		if !validMetric(g.Metric) {
			return s, fmt.Errorf("loadgen: SLO gate %d has unknown metric %q", i, g.Metric)
		}
	}
	return s, nil
}

// LoadSLOFile reads and parses an SLO document from disk.
func LoadSLOFile(path string) (SLO, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SLO{}, err
	}
	return ParseSLO(data)
}

func validMetric(m string) bool {
	switch m {
	case "p50_ms", "p99_ms", "p999_ms", "max_ms", "mean_ms",
		"error_rate", "status_5xx", "transport_errors", "throughput_rps":
		return true
	}
	return false
}

func metricValue(s RouteStats, metric string) float64 {
	switch metric {
	case "p50_ms":
		return s.P50Ms
	case "p99_ms":
		return s.P99Ms
	case "p999_ms":
		return s.P999Ms
	case "max_ms":
		return s.MaxMs
	case "mean_ms":
		return s.MeanMs
	case "error_rate":
		return s.ErrorRate
	case "status_5xx":
		return float64(s.Status5xx)
	case "transport_errors":
		return float64(s.TransportErrors)
	case "throughput_rps":
		return s.AchievedRPS
	}
	return 0
}

// Evaluate checks every gate against the report. Gates naming a route the
// run never exercised are violations too — a gate silently matching nothing
// would pass a run that measured nothing.
func (s SLO) Evaluate(r *Report) []Violation {
	var out []Violation
	check := func(g Gate, routeName string, stats RouteStats) {
		v := metricValue(stats, g.Metric)
		if g.Max != nil && v > *g.Max {
			out = append(out, Violation{
				Route: routeName, Metric: g.Metric, Value: v, Bound: "max", Limit: *g.Max,
				Message: fmt.Sprintf("%s %s = %g exceeds max %g", routeName, g.Metric, v, *g.Max),
			})
		}
		if g.Min != nil && v < *g.Min {
			out = append(out, Violation{
				Route: routeName, Metric: g.Metric, Value: v, Bound: "min", Limit: *g.Min,
				Message: fmt.Sprintf("%s %s = %g below min %g", routeName, g.Metric, v, *g.Min),
			})
		}
	}
	for _, g := range s.Gates {
		switch g.Route {
		case "*":
			// Deterministic order keeps violation lists stable across runs.
			names := make([]string, 0, len(r.Routes))
			for name := range r.Routes {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				check(g, name, r.Routes[name])
			}
			check(g, "total", r.Total)
		case "total":
			check(g, "total", r.Total)
		default:
			stats, ok := r.Routes[g.Route]
			if !ok {
				out = append(out, Violation{
					Route: g.Route, Metric: g.Metric, Bound: "max",
					Message: fmt.Sprintf("gate on %s %s matched no measured route", g.Route, g.Metric),
				})
				continue
			}
			check(g, g.Route, stats)
		}
	}
	return out
}
