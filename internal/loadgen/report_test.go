package loadgen

import (
	"math/rand"
	"testing"
	"time"
)

// TestMergeReportsExact: merging two step reports must give bit-identical
// stats to one report built from the combined observations — ramp-mode
// quantiles are exact, not approximations of approximations.
func TestMergeReportsExact(t *testing.T) {
	plan, err := BuildPlan(testPlanConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	combined := newAggs()
	var parts []*Report
	for p := 0; p < 3; p++ {
		aggs := newAggs()
		for i := 0; i < 5000; i++ {
			route := Route(rng.Intn(int(numRoutes)))
			v := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
			aggs[route].hist.Record(v)
			aggs[route].requests++
			combined[route].hist.Record(v)
			combined[route].requests++
		}
		aggs[RouteBatch].status4xx = int64(p)
		combined[RouteBatch].status4xx += int64(p)
		parts = append(parts, buildReport(plan, aggs, time.Second))
	}

	merged := parts[0]
	for _, p := range parts[1:] {
		mergeReports(merged, p)
	}
	want := buildReport(plan, combined, 3*time.Second)

	if merged.Total != want.Total {
		t.Errorf("merged total %+v\nwant %+v", merged.Total, want.Total)
	}
	for name, ws := range want.Routes {
		if ms, ok := merged.Routes[name]; !ok || ms != ws {
			t.Errorf("route %s: merged %+v, want %+v", name, merged.Routes[name], ws)
		}
	}
	if merged.DurationSec != 3 {
		t.Errorf("merged duration %v, want 3s", merged.DurationSec)
	}
}
