package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refQuantile indexes a sorted slice with the same rank convention the
// histogram documents: rank = ceil(q·n), floored at 1.
func refQuantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	rank := int64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// maxRelErr is the histogram's documented bound: one part in subCount per
// octave, plus a little slack for the clamp at bucket edges.
const maxRelErr = 1.0 / subCount

func checkQuantiles(t *testing.T, h *Histogram, values []time.Duration, label string) {
	t.Helper()
	sorted := append([]time.Duration(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		want := refQuantile(sorted, q)
		got := h.Quantile(q)
		if want == 0 {
			if got != 0 {
				t.Errorf("%s: q=%v: got %v, want 0", label, q, got)
			}
			continue
		}
		rel := math.Abs(float64(got)-float64(want)) / float64(want)
		if rel > maxRelErr {
			t.Errorf("%s: q=%v: got %v, want %v (rel err %.4f > %.4f)",
				label, q, got, want, rel, maxRelErr)
		}
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: max = %v, want %v", label, h.Max(), sorted[len(sorted)-1])
	}
	if h.Min() != sorted[0] {
		t.Errorf("%s: min = %v, want %v", label, h.Min(), sorted[0])
	}
	if h.Count() != int64(len(values)) {
		t.Errorf("%s: count = %d, want %d", label, h.Count(), len(values))
	}
}

func TestHistogramQuantileAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string]func() time.Duration{
		// The shapes a load run produces: tight unimodal, log-normal-ish
		// tails, bimodal fast-path/slow-path, and tiny sub-bucket values.
		"uniform":   func() time.Duration { return time.Duration(rng.Int63n(int64(50 * time.Millisecond))) },
		"lognormal": func() time.Duration { return time.Duration(math.Exp(rng.NormFloat64()*1.5+13) * 1) },
		"bimodal": func() time.Duration {
			if rng.Float64() < 0.9 {
				return time.Duration(200_000 + rng.Int63n(100_000))
			}
			return time.Duration(int64(80*time.Millisecond) + rng.Int63n(int64(40*time.Millisecond)))
		},
		"tiny": func() time.Duration { return time.Duration(rng.Int63n(40)) },
	}
	for label, gen := range cases {
		h := NewHistogram()
		values := make([]time.Duration, 20000)
		for i := range values {
			values[i] = gen()
			h.Record(values[i])
		}
		checkQuantiles(t, h, values, label)
	}
}

func TestHistogramSingleValueExact(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(3 * time.Millisecond)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3*time.Millisecond {
			t.Errorf("q=%v: got %v, want exactly 3ms (min/max clamp)", q, got)
		}
	}
	if h.Mean() != 3*time.Millisecond {
		t.Errorf("mean = %v, want 3ms", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram must read as zeros: %v %d %v %v %v",
			h.Quantile(0.99), h.Count(), h.Max(), h.Min(), h.Mean())
	}
}

// TestHistogramMergeAssociativity merges the same observations in different
// groupings and orders; the fixed bucket layout must make every composition
// bit-identical.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]*Histogram, 5)
	var all []time.Duration
	for i := range parts {
		parts[i] = NewHistogram()
		for k := 0; k < 3000+i*500; k++ {
			v := time.Duration(math.Exp(rng.NormFloat64()*2+12) * 1)
			parts[i].Record(v)
			all = append(all, v)
		}
	}

	// Left fold: ((((a+b)+c)+d)+e)
	left := NewHistogram()
	for _, p := range parts {
		left.Merge(p)
	}
	// Right fold: a+(b+(c+(d+e)))
	right := NewHistogram()
	for i := len(parts) - 1; i >= 0; i-- {
		tmp := parts[i].Clone()
		tmp.Merge(right)
		right = tmp
	}
	// Pairwise tree: ((a+b)+(c+d))+e
	ab := parts[0].Clone()
	ab.Merge(parts[1])
	cd := parts[2].Clone()
	cd.Merge(parts[3])
	tree := ab
	tree.Merge(cd)
	tree.Merge(parts[4])

	for _, m := range []*Histogram{right, tree} {
		if *m != *left {
			t.Fatal("merge groupings disagree: histogram merge is not associative")
		}
	}
	checkQuantiles(t, left, all, "merged")
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	before := *h
	h.Merge(nil)
	h.Merge(NewHistogram())
	if *h != before {
		t.Fatal("merging nil/empty changed the histogram")
	}
	empty := NewHistogram()
	empty.Merge(h)
	if empty.Min() != time.Millisecond || empty.Count() != 1 {
		t.Fatalf("merge into empty lost state: min %v count %d", empty.Min(), empty.Count())
	}
}

func TestBucketIndexMonotoneAndInvertible(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 1000, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d)=%d below previous %d: not monotone", v, idx, prev)
		}
		prev = idx
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(%d)=%d below the value %d that mapped there", idx, up, v)
		}
		if rel := float64(up-v) / math.Max(float64(v), 1); rel > maxRelErr {
			t.Fatalf("bucket upper %d overshoots %d by %.4f", up, v, rel)
		}
	}
}
