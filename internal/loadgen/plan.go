package loadgen

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/dist"
	"repro/internal/workload"
)

// Route identifies one load-generated request type.
type Route uint8

// The three serving-path routes the harness drives.
const (
	RouteFairshare Route = iota // GET /fairshare?user=...
	RouteBatch                  // POST /fairshare/batch
	RouteIngest                 // POST /usage/batch (or /usage when IngestBatch == 1)
	numRoutes
)

// String returns the route's report key.
func (r Route) String() string {
	switch r {
	case RouteFairshare:
		return "fairshare"
	case RouteBatch:
		return "fairshare_batch"
	case RouteIngest:
		return "usage_ingest"
	default:
		return fmt.Sprintf("route%d", int(r))
	}
}

// Mix weighs the routes in the generated traffic. Weights are relative;
// BuildPlan normalizes them. A zero Mix gets DefaultMix.
type Mix struct {
	Fairshare float64 `json:"fairshare"`
	Batch     float64 `json:"fairshare_batch"`
	Ingest    float64 `json:"usage_ingest"`
}

// DefaultMix approximates a serving-heavy deployment: mostly single priority
// lookups, a slice of scheduler batch resolutions, a slice of usage ingest.
func DefaultMix() Mix { return Mix{Fairshare: 0.70, Batch: 0.15, Ingest: 0.15} }

func (m Mix) normalized() (Mix, error) {
	if m.Fairshare == 0 && m.Batch == 0 && m.Ingest == 0 {
		m = DefaultMix()
	}
	if m.Fairshare < 0 || m.Batch < 0 || m.Ingest < 0 {
		return m, errors.New("loadgen: negative mix weight")
	}
	sum := m.Fairshare + m.Batch + m.Ingest
	if sum <= 0 {
		return m, errors.New("loadgen: empty route mix")
	}
	m.Fairshare /= sum
	m.Batch /= sum
	m.Ingest /= sum
	return m, nil
}

// PlanConfig parameterizes a deterministic load plan.
type PlanConfig struct {
	// Seed drives every random choice in the plan. Same seed + same config
	// → bit-identical request schedule (asserted by Fingerprint tests).
	Seed int64
	// Population supplies the user mix (required).
	Population *workload.Population
	// Sites is how many deployment targets clients are pinned across.
	Sites int
	// Duration bounds the open-loop schedule and the closed-loop run.
	Duration time.Duration
	// RPS is the total open-loop arrival rate across all open clients
	// (Poisson arrivals). Zero disables the open-loop pool.
	RPS float64
	// OpenClients is the size of the open-loop pool (default: enough
	// clients that each paces ≤ 64 req/s, at least one per site).
	OpenClients int
	// ClosedClients is the closed-loop pool size: each client keeps exactly
	// one request in flight for the whole run (default 2 per site).
	ClosedClients int
	// BatchSize is the user count of one /fairshare/batch request
	// (default 64).
	BatchSize int
	// IngestBatch is how many job completions one usage-ingest request
	// carries; 1 posts the single-report /usage route (default 8).
	IngestBatch int
	// Mix weighs the routes (zero value → DefaultMix).
	Mix Mix
}

func (c PlanConfig) withDefaults() (PlanConfig, error) {
	if c.Population == nil || c.Population.Len() == 0 {
		return c, errors.New("loadgen: population required")
	}
	if c.Duration <= 0 {
		return c, errors.New("loadgen: duration must be positive")
	}
	if c.Sites <= 0 {
		c.Sites = 1
	}
	if c.RPS < 0 {
		return c, errors.New("loadgen: negative rps")
	}
	if c.OpenClients <= 0 {
		c.OpenClients = int(math.Ceil(c.RPS / 64))
		if c.OpenClients < c.Sites {
			c.OpenClients = c.Sites
		}
	}
	if c.ClosedClients < 0 {
		return c, errors.New("loadgen: negative closed clients")
	}
	if c.RPS == 0 {
		c.OpenClients = 0
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 8
	}
	var err error
	c.Mix, err = c.Mix.normalized()
	return c, err
}

// Request is one planned request. Fields beyond the route key are indices
// into the population, keeping big plans compact.
type Request struct {
	Route Route
	// User indexes Population.Users (RouteFairshare).
	User int32
	// Batch indexes Population.Users (RouteBatch and RouteIngest).
	Batch []int32
	// DurSec are the per-job durations in seconds, aligned with Batch
	// (RouteIngest only).
	DurSec []float64
	// At is the send offset from run start (open-loop only; closed-loop
	// requests are issued back-to-back).
	At time.Duration
}

// ClientPlan is one client's request stream. Open-loop clients issue each
// request at its At offset regardless of completions; closed-loop clients
// cycle through the stream with one request in flight until the run ends.
type ClientPlan struct {
	Closed bool
	// Site pins the client to one deployment target.
	Site int
	// Requests is the stream (a cycle for closed-loop clients).
	Requests []Request
}

// closedCycle is the length of a closed-loop client's request cycle.
const closedCycle = 2048

// Plan is a complete deterministic load schedule.
type Plan struct {
	Config  PlanConfig
	Clients []ClientPlan
}

// BuildPlan generates the full request schedule from the config's seed.
// Each client draws from its own deterministic stream, so worker scheduling
// at run time cannot perturb the plan.
func BuildPlan(cfg PlanConfig) (*Plan, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Plan{Config: cfg}
	for i := 0; i < cfg.OpenClients; i++ {
		rng := clientRNG(cfg.Seed, i)
		rate := cfg.RPS / float64(cfg.OpenClients)
		cp := ClientPlan{Site: i % cfg.Sites}
		// Poisson arrivals: exponential inter-arrival gaps at the client's
		// share of the total rate.
		var at time.Duration
		for {
			gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			at += gap
			if at >= cfg.Duration {
				break
			}
			cp.Requests = append(cp.Requests, sampleRequest(rng, cfg, at))
		}
		p.Clients = append(p.Clients, cp)
	}
	for i := 0; i < cfg.ClosedClients; i++ {
		rng := clientRNG(cfg.Seed, cfg.OpenClients+i)
		cp := ClientPlan{Closed: true, Site: i % cfg.Sites}
		cp.Requests = make([]Request, 0, closedCycle)
		for k := 0; k < closedCycle; k++ {
			cp.Requests = append(cp.Requests, sampleRequest(rng, cfg, 0))
		}
		p.Clients = append(p.Clients, cp)
	}
	return p, nil
}

// clientRNG derives one client's independent deterministic stream.
func clientRNG(seed int64, client int) *rand.Rand {
	// SplitMix64-style mixing keeps nearby (seed, client) pairs uncorrelated.
	z := uint64(seed) + uint64(client+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}

func sampleRequest(rng *rand.Rand, cfg PlanConfig, at time.Duration) Request {
	r := Request{At: at}
	pop := cfg.Population
	switch p := rng.Float64(); {
	case p < cfg.Mix.Fairshare:
		r.Route = RouteFairshare
		r.User = sampleUser(rng, pop)
	case p < cfg.Mix.Fairshare+cfg.Mix.Batch:
		r.Route = RouteBatch
		r.Batch = make([]int32, cfg.BatchSize)
		for i := range r.Batch {
			r.Batch[i] = sampleUser(rng, pop)
		}
	default:
		r.Route = RouteIngest
		r.Batch = make([]int32, cfg.IngestBatch)
		r.DurSec = make([]float64, cfg.IngestBatch)
		for i := range r.Batch {
			u := sampleUser(rng, pop)
			r.Batch[i] = u
			r.DurSec[i] = sampleDuration(rng, pop, u)
		}
	}
	return r
}

// sampleUser picks a group by job fraction, then a user uniformly inside it
// — the population's per-job user mix.
func sampleUser(rng *rand.Rand, pop *workload.Population) int32 {
	p := rng.Float64()
	var acc float64
	for _, g := range pop.Groups {
		acc += g.JobFraction
		if p < acc || g.Start+g.Count == pop.Len() {
			return int32(g.Start + rng.Intn(g.Count))
		}
	}
	return int32(rng.Intn(pop.Len()))
}

// sampleDuration draws a job duration from the user's group model, clamped
// into [1s, 24h] so heavy-tailed fits cannot produce absurd reports.
func sampleDuration(rng *rand.Rand, pop *workload.Population, user int32) float64 {
	for _, g := range pop.Groups {
		if int(user) >= g.Start && int(user) < g.Start+g.Count {
			d := dist.Sample(g.Duration, rng)
			if d < 1 {
				d = 1
			}
			if d > 86400 {
				d = 86400
			}
			return d
		}
	}
	return 1
}

// TotalPlanned returns the number of planned requests (closed-loop cycles
// counted once — the run repeats them until the deadline).
func (p *Plan) TotalPlanned() int {
	n := 0
	for _, c := range p.Clients {
		n += len(c.Requests)
	}
	return n
}

// Fingerprint hashes the full request schedule (routes, users, batches,
// durations, offsets, client shape) with FNV-64a. Two runs with the same
// seed and config produce the same fingerprint; tests assert it and CI can
// compare BENCH_load.json artifacts knowing the offered load was identical.
func (p *Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	w64(uint64(len(p.Clients)))
	for _, c := range p.Clients {
		flag := uint64(0)
		if c.Closed {
			flag = 1
		}
		w64(flag<<32 | uint64(uint32(c.Site)))
		w64(uint64(len(c.Requests)))
		for _, r := range c.Requests {
			w64(uint64(r.Route)<<32 | uint64(uint32(r.User)))
			w64(uint64(r.At))
			for _, u := range r.Batch {
				w64(uint64(uint32(u)))
			}
			for _, d := range r.DurSec {
				w64(math.Float64bits(d))
			}
		}
	}
	return h.Sum64()
}
