package maui

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/sched"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func job(id int64, user string, dur time.Duration, at time.Time) *sched.Job {
	return &sched.Job{ID: id, LocalUser: user, Procs: 1, Duration: dur, Submit: at}
}

func TestSubmitDefersToIteration(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := cluster.New("c", 4, k)
	s := New(Config{Cluster: c, Weights: Weights{Fairshare: 1}})
	s.Submit(job(1, "u", time.Minute, t0))
	if c.RunningCount() != 0 {
		t.Error("Maui should not start jobs at submit time")
	}
	s.Schedule(t0)
	if c.RunningCount() != 1 {
		t.Error("scheduling iteration did not start the job")
	}
	if s.Submitted() != 1 {
		t.Errorf("Submitted = %d", s.Submitted())
	}
}

func TestFairshareCalloutOrdersQueue(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := cluster.New("c", 1, k)
	s := New(Config{
		Cluster: c,
		Weights: Weights{Fairshare: 1},
		Callouts: Callouts{
			FairsharePriority: func(u string) (float64, error) {
				if u == "hi" {
					return 0.9, nil
				}
				return 0.1, nil
			},
		},
	})
	s.Submit(job(1, "lo", time.Hour, t0))
	s.Submit(job(2, "hi", time.Hour, t0))
	var order []int64
	c.OnComplete(func(j *sched.Job) { order = append(order, j.ID) })
	s.Schedule(t0)
	k.RunAll(0)
	if len(order) != 2 || order[0] != 2 {
		t.Errorf("completion order = %v, want hi job (2) first", order)
	}
}

func TestJobCompletedCalloutInjected(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := cluster.New("c", 1, k)
	var reported []string
	s := New(Config{
		Cluster: c,
		Callouts: Callouts{
			JobCompleted: func(j *sched.Job) { reported = append(reported, j.LocalUser) },
		},
	})
	s.Submit(job(1, "alice", time.Minute, t0))
	s.Schedule(t0)
	k.RunAll(0)
	if len(reported) != 1 || reported[0] != "alice" {
		t.Errorf("reported = %v", reported)
	}
}

func TestCompletionTriggersNextIteration(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := cluster.New("c", 1, k)
	s := New(Config{Cluster: c})
	s.Submit(job(1, "u", time.Minute, t0))
	s.Submit(job(2, "u", time.Minute, t0))
	s.Schedule(t0)
	k.RunAll(0)
	if c.Completed() != 2 {
		t.Errorf("completed = %d, want 2 (completion reschedules)", c.Completed())
	}
}

func TestQueueTimeComponent(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := cluster.New("c", 1, k)
	s := New(Config{
		Cluster:      c,
		Weights:      Weights{QueueTime: 1},
		MaxQueueTime: time.Hour,
	})
	old := job(1, "u", time.Hour, t0.Add(-2*time.Hour)) // waited long
	young := job(2, "u", time.Hour, t0)
	// Submit youngest first so ordering must come from queue time, not
	// insertion.
	s.Submit(young)
	s.Submit(old)
	var order []int64
	c.OnComplete(func(j *sched.Job) { order = append(order, j.ID) })
	s.Schedule(t0)
	k.RunAll(0)
	if order[0] != 1 {
		t.Errorf("order = %v, want long-waiting job first", order)
	}
}

func TestCalloutFailureFallsBack(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := cluster.New("c", 1, k)
	s := New(Config{
		Cluster: c,
		Weights: Weights{Fairshare: 1},
		Callouts: Callouts{
			FairsharePriority: func(string) (float64, error) {
				return 0, errors.New("down")
			},
		},
	})
	s.Submit(job(1, "u", time.Minute, t0))
	s.Schedule(t0)
	k.RunAll(0)
	if c.Completed() != 1 {
		t.Error("job did not run despite call-out failure")
	}
	if s.Errors() == 0 {
		t.Error("errors not counted")
	}
}

func TestQoSComponent(t *testing.T) {
	k := eventsim.New(t0)
	c, _ := cluster.New("c", 1, k)
	s := New(Config{Cluster: c, Weights: Weights{QoS: 1}})
	j1 := job(1, "u", time.Hour, t0)
	j1.QoS = 0.2
	j2 := job(2, "u", time.Hour, t0)
	j2.QoS = 0.8
	s.Submit(j1)
	s.Submit(j2)
	var order []int64
	c.OnComplete(func(j *sched.Job) { order = append(order, j.ID) })
	s.Schedule(t0)
	k.RunAll(0)
	if order[0] != 2 {
		t.Errorf("order = %v, want high-QoS job first", order)
	}
}
