// Package maui implements a Maui-like local resource manager. Maui has no
// plug-in system, so the Aequus integration is "done by applying patches to
// the Maui source code": the Callouts struct is the patch surface — the
// local fairshare calculation is replaced with a call into libaequus, and a
// job-completion call-out is injected for usage reporting.
//
// Scheduling follows Maui's model: a periodic scheduling iteration (the RM
// poll) recomputes all job priorities from weighted components and starts
// jobs greedily in priority order.
package maui

import (
	"context"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/telemetry/span"
)

// Callouts are the patch points injected into the Maui source.
type Callouts struct {
	// FairsharePriority replaces the local fairshare factor calculation;
	// in the Aequus integration it calls libaequus. The returned value is
	// in [0,1].
	FairsharePriority func(localUser string) (float64, error)
	// JobCompleted is invoked when a job finishes (usage reporting).
	JobCompleted func(j *sched.Job)
}

// Weights are Maui-style priority component weights.
type Weights struct {
	// Fairshare weighs the fairshare factor (FSWEIGHT).
	Fairshare float64
	// QueueTime weighs the normalized queue wait (QUEUETIMEWEIGHT).
	QueueTime float64
	// QoS weighs the job's QoS factor.
	QoS float64
}

// Config configures a Maui-like scheduler.
type Config struct {
	// Cluster executes the jobs.
	Cluster *cluster.Cluster
	// Callouts are the patched call-outs.
	Callouts Callouts
	// Weights are the priority component weights.
	Weights Weights
	// MaxQueueTime normalizes the queue-time component (zero disables it).
	MaxQueueTime time.Duration
	// OnStart observes every job start with the queue priority it was
	// dispatched at and the pass (scheduling iteration or completion fill)
	// it belongs to. Within one pass, dispatch priorities are
	// non-increasing — the invariant the scenario harness checks.
	OnStart func(j *sched.Job, priority float64, pass uint64)
	// Spans receives one "rm.fairshare_callout" span per fairshare call-out
	// (nil disables tracing).
	Spans *span.Recorder
}

// Scheduler is a Maui-like resource manager.
type Scheduler struct {
	cfg Config

	mu        sync.Mutex
	queue     sched.PriorityQueue
	submitted int64
	errors    int
	passes    uint64
}

// New creates a scheduler; job completions fire the completion call-out and
// trigger a fill pass that starts the next queued jobs using the priorities
// of the last scheduling iteration (a full recompute happens only at the RM
// poll, like Maui's RMPOLLINTERVAL).
func New(cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg}
	cfg.Cluster.OnComplete(func(j *sched.Job) {
		if s.cfg.Callouts.JobCompleted != nil {
			s.cfg.Callouts.JobCompleted(j)
		}
		s.fill()
	})
	return s
}

// Submit implements sched.ResourceManager. Unlike the SLURM substrate, Maui
// defers scheduling to its next iteration; Submit only enqueues, with the
// job's priority computed at submit time. (The testbed drives iterations
// via the kernel at the RM poll interval, but a Schedule call right after
// Submit is also legal.)
func (s *Scheduler) Submit(j *sched.Job) {
	s.mu.Lock()
	j.State = sched.Pending
	s.queue.Push(j, s.priority(j, j.Submit))
	s.submitted++
	s.mu.Unlock()
}

// QueueLen implements sched.ResourceManager.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// RunningCount implements sched.ResourceManager.
func (s *Scheduler) RunningCount() int { return s.cfg.Cluster.RunningCount() }

// Submitted reports the lifetime submit counter.
func (s *Scheduler) Submitted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted
}

// Errors reports failed fairshare call-outs.
func (s *Scheduler) Errors() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errors
}

// Pending returns a snapshot of the queued (not yet started) jobs in
// unspecified order. The scenario harness uses it for starvation checks;
// callers must not mutate the jobs.
func (s *Scheduler) Pending() []*sched.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Jobs()
}

// priority computes a job's Maui-style priority at `now` (lock held).
func (s *Scheduler) priority(j *sched.Job, now time.Time) float64 {
	var p float64
	if s.cfg.Callouts.FairsharePriority != nil && s.cfg.Weights.Fairshare != 0 {
		_, sp := span.Start(span.WithRecorder(context.Background(), s.cfg.Spans),
			"rm.fairshare_callout")
		sp.SetAttr("rm", "maui")
		sp.SetAttr("user", j.LocalUser)
		fs, err := s.cfg.Callouts.FairsharePriority(j.LocalUser)
		sp.SetErr(err)
		sp.End()
		if err != nil {
			s.errors++
			fs = 0.5
		}
		p += s.cfg.Weights.Fairshare * fs
	}
	if s.cfg.MaxQueueTime > 0 && s.cfg.Weights.QueueTime != 0 {
		qt := float64(j.WaitTime(now)) / float64(s.cfg.MaxQueueTime)
		if qt > 1 {
			qt = 1
		}
		p += s.cfg.Weights.QueueTime * qt
	}
	p += s.cfg.Weights.QoS * j.QoS
	return p
}

// Schedule implements sched.ResourceManager: one Maui scheduling iteration —
// recompute every queued job's priority, then start jobs greedily in
// priority order.
func (s *Scheduler) Schedule(now time.Time) {
	s.mu.Lock()
	s.queue.Reprioritize(func(j *sched.Job) float64 { return s.priority(j, now) })
	s.startJobs()
	s.mu.Unlock()
}

// fill starts queued jobs using the last computed priorities (run on job
// completion, between iterations).
func (s *Scheduler) fill() {
	s.mu.Lock()
	s.startJobs()
	s.mu.Unlock()
}

// startJobs greedily starts queued jobs; jobs that do not fit are stashed
// and re-pushed (lock held).
func (s *Scheduler) startJobs() {
	s.passes++
	var stash []sched.QueuedJob
	for s.cfg.Cluster.FreeCores() > 0 {
		qj, ok := s.queue.Pop()
		if !ok {
			break
		}
		if !s.cfg.Cluster.TryStart(qj.Job) {
			stash = append(stash, qj)
		} else if s.cfg.OnStart != nil {
			s.cfg.OnStart(qj.Job, qj.Priority, s.passes)
		}
	}
	for _, qj := range stash {
		s.queue.Push(qj.Job, qj.Priority)
	}
}

var _ sched.ResourceManager = (*Scheduler)(nil)
