package wire

import "time"

// DebugAttr is one span attribute in the /debug/aequus surface.
type DebugAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// DebugSpan is the wire form of one recorded trace span. IDs are hex strings
// (ParentID "" for a root span).
type DebugSpan struct {
	TraceID         string      `json:"trace_id"`
	SpanID          string      `json:"span_id"`
	ParentID        string      `json:"parent_id,omitempty"`
	Name            string      `json:"name"`
	Start           time.Time   `json:"start"`
	DurationSeconds float64     `json:"duration_seconds"`
	Attrs           []DebugAttr `json:"attrs,omitempty"`
	Error           string      `json:"error,omitempty"`
}

// DebugTrace groups the retained spans of one trace.
type DebugTrace struct {
	TraceID string      `json:"trace_id"`
	Spans   []DebugSpan `json:"spans"`
}

// TracesResponse is the /debug/aequus/traces payload, most recent first.
type TracesResponse struct {
	Traces []DebugTrace `json:"traces"`
}

// SpansResponse is the /debug/aequus/spans payload (slowest spans first).
type SpansResponse struct {
	Spans []DebugSpan `json:"spans"`
}

// DriftEntry is one user's fairness drift in the /debug/aequus/drift payload.
type DriftEntry struct {
	User   string  `json:"user"`
	Target float64 `json:"target"`
	Actual float64 `json:"actual"`
	Error  float64 `json:"error"`
}

// DriftResponse is the fairness-drift table of the current snapshot, sorted
// worst-first.
type DriftResponse struct {
	ComputedAt time.Time    `json:"computed_at"`
	MaxError   float64      `json:"max_error"`
	MeanError  float64      `json:"mean_error"`
	Entries    []DriftEntry `json:"entries"`
}

// DebugSummary is the /debug/aequus landing payload: a one-page health view
// combining tracer, snapshot, drift and peer state.
type DebugSummary struct {
	SpansRecorded       uint64    `json:"spans_recorded"`
	Traces              int       `json:"traces"`
	FCSComputedAt       time.Time `json:"fcs_computed_at"`
	FCSLastRefreshError string    `json:"fcs_last_refresh_error,omitempty"`
	// FCSRefreshMode is how the last refresh ran ("full" or "incremental";
	// "" before the first refresh) — in steady state with delta-capable
	// sources this should read "incremental".
	FCSRefreshMode string `json:"fcs_refresh_mode,omitempty"`
	// FCSDirtyUsers is the changed-user count the last refresh processed
	// (the whole population on a full rebuild).
	FCSDirtyUsers int `json:"fcs_dirty_users"`
	// FCSRefreshSeconds is the duration of the last refresh.
	FCSRefreshSeconds float64 `json:"fcs_refresh_seconds"`
	// FCSFoldSeconds/FCSRescoreSeconds/FCSMaterializeSeconds break an
	// incremental refresh's engine cost into its recalc phases (zero on a
	// full refresh).
	FCSFoldSeconds        float64 `json:"fcs_fold_seconds"`
	FCSRescoreSeconds     float64 `json:"fcs_rescore_seconds"`
	FCSMaterializeSeconds float64 `json:"fcs_materialize_seconds"`
	// FCSMaterializedSegments/FCSSharedSegments report how many
	// top-level-subtree segments the last incremental refresh rebuilt vs
	// re-published as pointer copies.
	FCSMaterializedSegments int          `json:"fcs_materialized_segments"`
	FCSSharedSegments       int          `json:"fcs_shared_segments"`
	DriftMax                float64      `json:"drift_max"`
	DriftMean               float64      `json:"drift_mean"`
	Peers                   []PeerStatus `json:"peers,omitempty"`
}
