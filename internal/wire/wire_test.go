package wire

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWriteJSONAndDecodeResponse(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusOK, FairshareResponse{User: "u", Value: 0.75})
	resp := rec.Result()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var out FairshareResponse
	if err := DecodeResponse(resp, &out); err != nil {
		t.Fatal(err)
	}
	if out.User != "u" || out.Value != 0.75 {
		t.Errorf("decoded = %+v", out)
	}
}

func TestDecodeResponseErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusNotFound, "user %s missing", "bob")
	err := DecodeResponse(rec.Result(), nil)
	if err == nil || !strings.Contains(err.Error(), "user bob missing") {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeResponseNonJSONError(t *testing.T) {
	rec := httptest.NewRecorder()
	rec.WriteHeader(http.StatusBadGateway)
	rec.WriteString("gateway exploded")
	err := DecodeResponse(rec.Result(), nil)
	if err == nil || !strings.Contains(err.Error(), "502") {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeResponseNilTarget(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusOK, map[string]int{"x": 1})
	if err := DecodeResponse(rec.Result(), nil); err != nil {
		t.Errorf("nil target err = %v", err)
	}
}

func TestReadJSON(t *testing.T) {
	var req ResolveRequest
	err := ReadJSON(strings.NewReader(`{"site":"s","localUser":"l"}`), &req)
	if err != nil || req.Site != "s" || req.LocalUser != "l" {
		t.Errorf("ReadJSON = %+v, %v", req, err)
	}
	if err := ReadJSON(strings.NewReader("{bad"), &req); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestUsageReportRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	in := UsageReport{
		User:            "alice",
		Start:           time.Date(2013, 2, 3, 4, 5, 6, 0, time.UTC),
		DurationSeconds: 123.5,
		Procs:           2,
	}
	WriteJSON(rec, http.StatusOK, in)
	var out UsageReport
	if err := DecodeResponse(rec.Result(), &out); err != nil {
		t.Fatal(err)
	}
	if out.User != in.User || !out.Start.Equal(in.Start) ||
		out.DurationSeconds != in.DurationSeconds || out.Procs != in.Procs {
		t.Errorf("round trip = %+v", out)
	}
}
