// Package wire defines the JSON message types exchanged between the Aequus
// services, the libaequus client library, and custom identity-resolution
// endpoints — the "minimalist JSON based protocol" of Section III-B —
// together with small HTTP helpers shared by servers and clients.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/usage"
)

// FairshareResponse carries one user's pre-calculated fairshare data.
type FairshareResponse struct {
	// User is the grid identity.
	User string `json:"user"`
	// Value is the projected priority in [0,1].
	Value float64 `json:"value"`
	// Vector is the raw fairshare vector (resolution-scaled).
	Vector []float64 `json:"vector,omitempty"`
	// Priority is the raw leaf priority (unprojected).
	Priority float64 `json:"priority"`
	// ComputedAt is when the FCS pre-calculated this value.
	ComputedAt time.Time `json:"computedAt"`
}

// FairshareTableResponse carries the full pre-calculated table.
type FairshareTableResponse struct {
	Entries    []FairshareResponse `json:"entries"`
	Projection string              `json:"projection"`
	ComputedAt time.Time           `json:"computedAt"`
}

// FairshareBatchRequest asks the FCS for many users' pre-calculated values
// in one round trip — how a resource manager reprioritizes a whole queue
// without N sequential lookups.
type FairshareBatchRequest struct {
	Users []string `json:"users"`
}

// FairshareBatchResponse answers a batch lookup from a single fairshare
// snapshot: every entry carries the same ComputedAt, and users absent from
// the policy are listed in Missing instead of failing the whole batch.
type FairshareBatchResponse struct {
	Entries    []FairshareResponse `json:"entries"`
	Missing    []string            `json:"missing,omitempty"`
	Projection string              `json:"projection"`
	ComputedAt time.Time           `json:"computedAt"`
}

// UsageReport carries job-completion usage from a resource manager (via
// libaequus) to the USS.
type UsageReport struct {
	// User is the grid identity that owns the job.
	User string `json:"user"`
	// Start is the job's execution start time.
	Start time.Time `json:"start"`
	// DurationSeconds is the wall-clock duration.
	DurationSeconds float64 `json:"durationSeconds"`
	// Procs is the processor count.
	Procs int `json:"procs"`
}

// UsageBatchRequest carries many job completions in one request — the
// high-throughput ingest path: one HTTP exchange, one JSON decode, one
// striped-batch histogram ingest.
type UsageBatchRequest struct {
	Reports []UsageReport `json:"reports"`
}

// RecordsResponse carries compact usage records between USS instances.
type RecordsResponse struct {
	Records []usage.Record `json:"records"`
}

// UsageTreeResponse carries the UMS's pre-computed per-user decayed usage.
type UsageTreeResponse struct {
	// Totals maps grid user to decayed core-seconds.
	Totals map[string]float64 `json:"totals"`
	// ComputedAt is the pre-computation time.
	ComputedAt time.Time `json:"computedAt"`
}

// ResolveRequest asks the IRS (or a custom endpoint) to revert a site
// mapping.
type ResolveRequest struct {
	Site      string `json:"site"`
	LocalUser string `json:"localUser"`
}

// ResolveResponse returns the grid identity for a local account.
type ResolveResponse struct {
	GridID string `json:"gridId"`
}

// MappingRequest stores a mapping in the IRS lookup table.
type MappingRequest struct {
	GridID    string `json:"gridId"`
	Site      string `json:"site"`
	LocalUser string `json:"localUser"`
}

// MountRequest asks a PDS to mount a remote sub-policy.
type MountRequest struct {
	// ParentPath is where to mount, e.g. "" for the root.
	ParentPath string `json:"parentPath"`
	// Name is the mount-point name.
	Name string `json:"name"`
	// Share is the local share assigned to the mounted subtree.
	Share float64 `json:"share"`
	// Origin is the URL of the remote PDS serving the subtree.
	Origin string `json:"origin"`
}

// PeerStatus reports one exchange peer's health inside the USS readiness
// component.
type PeerStatus struct {
	// Site is the peer site name.
	Site string `json:"site"`
	// Breaker is the circuit state: "closed", "open", "half-open", or
	// "disabled" when no breaker guards the peer.
	Breaker string `json:"breaker"`
	// LastSuccess is the last successful pull; zero when never succeeded.
	LastSuccess time.Time `json:"lastSuccess,omitempty"`
	// StalenessSeconds is the age of the last successful pull, or -1 when
	// the peer has never been pulled successfully.
	StalenessSeconds float64 `json:"stalenessSeconds"`
	// ConsecutiveFailures counts pulls failed since the last success.
	ConsecutiveFailures int `json:"consecutiveFailures,omitempty"`
	// LastError is the most recent pull error, cleared on success.
	LastError string `json:"lastError,omitempty"`
}

// ReadyComponent reports one service's readiness inside a ReadyResponse.
type ReadyComponent struct {
	Ready bool `json:"ready"`
	// ComputedAt is the last pre-computation time for services that cache
	// (FCS, UMS); zero for stateless services.
	ComputedAt time.Time `json:"computedAt"`
	// AgeSeconds is how old that pre-computation is.
	AgeSeconds float64 `json:"ageSeconds,omitempty"`
	// Reason explains a not-ready verdict.
	Reason string `json:"reason,omitempty"`
	// Peers details exchange-peer health (USS component only). Degraded
	// peers do not flip Ready: local serving works without them.
	Peers []PeerStatus `json:"peers,omitempty"`
}

// ReadyResponse is the /readyz envelope: overall readiness plus a
// per-service breakdown.
type ReadyResponse struct {
	Ready      bool                      `json:"ready"`
	Components map[string]ReadyComponent `json:"components"`
}

// ErrorResponse is the error envelope all services use.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes an ErrorResponse.
func WriteError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	WriteJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// ReadJSON decodes a request body into v, limiting size to 8 MiB.
func ReadJSON(r io.Reader, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r, 8<<20))
	return dec.Decode(v)
}

// DecodeResponse decodes an HTTP response, translating error envelopes into
// Go errors. The body is always drained and closed — even when the caller
// wants no payload or the status is unexpected — so the underlying
// keep-alive connection returns to the pool instead of being torn down.
func DecodeResponse(resp *http.Response, v interface{}) error {
	defer DrainClose(resp.Body)
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if err := ReadJSON(resp.Body, &e); err == nil && e.Error != "" {
			return fmt.Errorf("wire: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("wire: unexpected status %s", resp.Status)
	}
	if v == nil {
		return nil
	}
	return ReadJSON(resp.Body, v)
}

// DrainClose consumes any unread remainder of body (bounded, so a huge or
// malicious response cannot stall the client) and closes it. Fully reading
// the body is what lets net/http reuse the connection.
func DrainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 4<<20))
	_ = body.Close()
}
