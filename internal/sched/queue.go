package sched

import "container/heap"

// PriorityQueue is a max-heap of pending jobs ordered by (priority desc,
// submit asc, ID asc). Priorities are set when jobs are pushed and updated
// in bulk at reprioritization points, so steady-state scheduling passes cost
// O(log n) per started job instead of a full sort — essential for the
// 43,200-job testbed runs.
type PriorityQueue struct {
	h jobHeap
}

type jobHeap []QueuedJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	if !h[i].Job.Submit.Equal(h[j].Job.Submit) {
		return h[i].Job.Submit.Before(h[j].Job.Submit)
	}
	return h[i].Job.ID < h[j].Job.ID
}
func (h jobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x interface{}) { *h = append(*h, x.(QueuedJob)) }
func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = QueuedJob{}
	*h = old[:n-1]
	return it
}

// Len returns the number of queued jobs.
func (q *PriorityQueue) Len() int { return len(q.h) }

// Push enqueues a job with its current priority.
func (q *PriorityQueue) Push(j *Job, priority float64) {
	heap.Push(&q.h, QueuedJob{Job: j, Priority: priority})
}

// Peek returns the highest-priority job without removing it.
func (q *PriorityQueue) Peek() (QueuedJob, bool) {
	if len(q.h) == 0 {
		return QueuedJob{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the highest-priority job.
func (q *PriorityQueue) Pop() (QueuedJob, bool) {
	if len(q.h) == 0 {
		return QueuedJob{}, false
	}
	return heap.Pop(&q.h).(QueuedJob), true
}

// Jobs returns the queued jobs in heap (unspecified) order.
func (q *PriorityQueue) Jobs() []*Job {
	out := make([]*Job, len(q.h))
	for i := range q.h {
		out[i] = q.h[i].Job
	}
	return out
}

// Reprioritize recomputes every queued job's priority with f and restores
// the heap invariant in O(n).
func (q *PriorityQueue) Reprioritize(f func(*Job) float64) {
	for i := range q.h {
		q.h[i].Priority = f(q.h[i].Job)
	}
	heap.Init(&q.h)
}
