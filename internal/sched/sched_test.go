package sched

import (
	"testing"
	"time"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func TestStateString(t *testing.T) {
	cases := map[State]string{
		Pending: "pending", Running: "running", Completed: "completed", State(99): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q", s, got)
		}
	}
}

func TestJobUsageOnlyWhenCompleted(t *testing.T) {
	j := &Job{Procs: 2, Start: t0, End: t0.Add(time.Hour)}
	if j.Usage() != 0 {
		t.Error("pending job has usage")
	}
	j.State = Completed
	if got := j.Usage(); got != 7200 {
		t.Errorf("Usage = %g", got)
	}
	j.Procs = 0
	if got := j.Usage(); got != 3600 {
		t.Errorf("Procs=0 Usage = %g, want 1-proc clamp", got)
	}
}

func TestWaitTime(t *testing.T) {
	j := &Job{Submit: t0, State: Pending}
	if got := j.WaitTime(t0.Add(5 * time.Minute)); got != 5*time.Minute {
		t.Errorf("pending wait = %v", got)
	}
	j.State = Running
	j.Start = t0.Add(2 * time.Minute)
	if got := j.WaitTime(t0.Add(time.Hour)); got != 2*time.Minute {
		t.Errorf("running wait = %v", got)
	}
}

func TestWeightsCombine(t *testing.T) {
	w := Weights{Fairshare: 2, Age: 1, QoS: 0.5, JobSize: 0.25}
	f := Factors{Fairshare: 0.5, Age: 1, QoS: 1, JobSize: 0}
	if got := w.Combine(f); got != 2*0.5+1+0.5 {
		t.Errorf("Combine = %g", got)
	}
	if got := FairshareOnly().Combine(Factors{Fairshare: 0.7, Age: 1}); got != 0.7 {
		t.Errorf("FairshareOnly = %g", got)
	}
}

func TestSortQueueByPriorityThenSubmitThenID(t *testing.T) {
	q := []QueuedJob{
		{Job: &Job{ID: 3, Submit: t0}, Priority: 0.5},
		{Job: &Job{ID: 1, Submit: t0.Add(time.Second)}, Priority: 0.9},
		{Job: &Job{ID: 2, Submit: t0}, Priority: 0.5},
		{Job: &Job{ID: 4, Submit: t0.Add(-time.Second)}, Priority: 0.5},
	}
	SortQueue(q)
	wantIDs := []int64{1, 4, 2, 3}
	for i, want := range wantIDs {
		if q[i].Job.ID != want {
			ids := make([]int64, len(q))
			for k := range q {
				ids[k] = q[k].Job.ID
			}
			t.Fatalf("order = %v, want %v", ids, wantIDs)
		}
	}
}

func TestSortQueueDeterministic(t *testing.T) {
	mk := func() []QueuedJob {
		return []QueuedJob{
			{Job: &Job{ID: 1, Submit: t0}, Priority: 0.5},
			{Job: &Job{ID: 2, Submit: t0}, Priority: 0.5},
			{Job: &Job{ID: 3, Submit: t0}, Priority: 0.5},
		}
	}
	a, b := mk(), mk()
	SortQueue(a)
	SortQueue(b)
	for i := range a {
		if a[i].Job.ID != b[i].Job.ID {
			t.Fatal("sort not deterministic")
		}
	}
}
