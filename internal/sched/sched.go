// Package sched defines the job model and priority machinery shared by the
// SLURM- and Maui-like resource-manager substrates: job records, multifactor
// priority weights, and the pending-job queue ordered by combined priority.
package sched

import (
	"sort"
	"time"
)

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	Pending State = iota
	Running
	Completed
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Completed:
		return "completed"
	default:
		return "unknown"
	}
}

// Job is a batch job inside a resource manager. The scheduler sees only the
// identity/size fields; Duration is the simulator's ground truth used to
// schedule the completion event (the paper's testbed replaces computations
// with idle wait jobs the same way).
type Job struct {
	// ID is unique within the grid.
	ID int64
	// LocalUser is the system account owning the job on this cluster.
	LocalUser string
	// GridUser is the global identity (bookkeeping; schedulers must go
	// through identity resolution rather than read this).
	GridUser string
	// Procs is the processor count (>= 1).
	Procs int
	// Duration is the job's actual runtime.
	Duration time.Duration
	// QoS is an optional quality-of-service factor in [0,1].
	QoS float64
	// Submit, Start and End are lifecycle timestamps.
	Submit, Start, End time.Time
	// Site is the cluster the job was dispatched to.
	Site string
	// State is the current lifecycle state.
	State State
}

// Usage returns the job's core-seconds (0 until completed).
func (j *Job) Usage() float64 {
	if j.State != Completed {
		return 0
	}
	p := j.Procs
	if p < 1 {
		p = 1
	}
	return j.End.Sub(j.Start).Seconds() * float64(p)
}

// WaitTime returns how long the job waited in queue (up to now for pending
// jobs).
func (j *Job) WaitTime(now time.Time) time.Duration {
	if j.State == Pending {
		return now.Sub(j.Submit)
	}
	return j.Start.Sub(j.Submit)
}

// Factors are the per-job priority components, each in [0,1], mirroring the
// linear factor combination both SLURM and Maui employ.
type Factors struct {
	// Fairshare is the (global or local) fairshare factor.
	Fairshare float64
	// Age is the normalized queue-wait factor.
	Age float64
	// QoS is the quality-of-service factor.
	QoS float64
	// JobSize is the normalized size factor.
	JobSize float64
}

// Weights are the configurable multipliers applied to each factor.
type Weights struct {
	Fairshare, Age, QoS, JobSize float64
}

// FairshareOnly returns the weight configuration the paper's tests use:
// "Fairshare is the only scheduling factor used during these tests."
func FairshareOnly() Weights { return Weights{Fairshare: 1} }

// Combine computes the weighted linear combination of the factors.
func (w Weights) Combine(f Factors) float64 {
	return w.Fairshare*f.Fairshare + w.Age*f.Age + w.QoS*f.QoS + w.JobSize*f.JobSize
}

// QueuedJob pairs a job with its current combined priority.
type QueuedJob struct {
	Job      *Job
	Priority float64
}

// SortQueue orders jobs by descending priority; ties fall back to submit
// time (older first) then ID, so runs are deterministic.
func SortQueue(q []QueuedJob) {
	sort.SliceStable(q, func(i, j int) bool {
		if q[i].Priority != q[j].Priority {
			return q[i].Priority > q[j].Priority
		}
		if !q[i].Job.Submit.Equal(q[j].Job.Submit) {
			return q[i].Job.Submit.Before(q[j].Job.Submit)
		}
		return q[i].Job.ID < q[j].Job.ID
	})
}

// ResourceManager is the interface the grid layer and testbed drive; both
// the SLURM- and Maui-like schedulers implement it.
type ResourceManager interface {
	// Submit enqueues a job.
	Submit(j *Job)
	// QueueLen reports the number of pending jobs.
	QueueLen() int
	// RunningCount reports the number of running jobs.
	RunningCount() int
	// Schedule runs a scheduling pass at the given time.
	Schedule(now time.Time)
}
