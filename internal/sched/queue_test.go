package sched

import (
	"math/rand"
	"testing"
	"time"
)

func TestPriorityQueueOrdering(t *testing.T) {
	q := &PriorityQueue{}
	q.Push(&Job{ID: 1, Submit: t0}, 0.2)
	q.Push(&Job{ID: 2, Submit: t0}, 0.9)
	q.Push(&Job{ID: 3, Submit: t0}, 0.5)
	want := []int64{2, 3, 1}
	for _, id := range want {
		qj, ok := q.Pop()
		if !ok || qj.Job.ID != id {
			t.Fatalf("pop = %v/%v, want %d", qj.Job, ok, id)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestPriorityQueueTieBreaks(t *testing.T) {
	q := &PriorityQueue{}
	q.Push(&Job{ID: 5, Submit: t0.Add(time.Second)}, 0.5)
	q.Push(&Job{ID: 9, Submit: t0}, 0.5)
	q.Push(&Job{ID: 2, Submit: t0}, 0.5)
	want := []int64{2, 9, 5} // older first, then lower ID
	for _, id := range want {
		qj, _ := q.Pop()
		if qj.Job.ID != id {
			t.Fatalf("tie-break order wrong: got %d, want %d", qj.Job.ID, id)
		}
	}
}

func TestPriorityQueuePeek(t *testing.T) {
	q := &PriorityQueue{}
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty succeeded")
	}
	q.Push(&Job{ID: 1, Submit: t0}, 0.5)
	qj, ok := q.Peek()
	if !ok || qj.Job.ID != 1 || q.Len() != 1 {
		t.Errorf("peek = %v, len = %d", qj, q.Len())
	}
}

func TestPriorityQueueReprioritize(t *testing.T) {
	q := &PriorityQueue{}
	for i := int64(1); i <= 10; i++ {
		q.Push(&Job{ID: i, Submit: t0}, float64(i))
	}
	// Invert: lowest ID now highest priority.
	q.Reprioritize(func(j *Job) float64 { return -float64(j.ID) })
	qj, _ := q.Pop()
	if qj.Job.ID != 1 {
		t.Errorf("after reprioritize top = %d, want 1", qj.Job.ID)
	}
}

func TestPriorityQueueMatchesSortQueue(t *testing.T) {
	// The heap must drain in exactly the order SortQueue defines.
	rng := rand.New(rand.NewSource(9))
	q := &PriorityQueue{}
	var ref []QueuedJob
	for i := int64(0); i < 200; i++ {
		j := &Job{ID: i, Submit: t0.Add(time.Duration(rng.Intn(10)) * time.Second)}
		p := float64(rng.Intn(5)) / 4
		q.Push(j, p)
		ref = append(ref, QueuedJob{Job: j, Priority: p})
	}
	SortQueue(ref)
	for i := range ref {
		qj, ok := q.Pop()
		if !ok || qj.Job.ID != ref[i].Job.ID {
			t.Fatalf("drain order diverges from SortQueue at %d", i)
		}
	}
}

func TestPriorityQueueJobs(t *testing.T) {
	q := &PriorityQueue{}
	q.Push(&Job{ID: 1, Submit: t0}, 1)
	q.Push(&Job{ID: 2, Submit: t0}, 2)
	jobs := q.Jobs()
	if len(jobs) != 2 {
		t.Errorf("Jobs = %d", len(jobs))
	}
}
