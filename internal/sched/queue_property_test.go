package sched

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// popAll drains the queue and returns the job IDs in pop order.
func popAll(q *PriorityQueue) []int64 {
	var out []int64
	for {
		qj, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, qj.Job.ID)
	}
}

// TestQueueEqualPriorityFIFOProperty is the determinism property behind the
// dispatch-order invariant: with equal priorities, pop order is submission
// order (ID as the final tie-break) regardless of how the insertions were
// interleaved. 200 seeded random interleavings must all agree.
func TestQueueEqualPriorityFIFOProperty(t *testing.T) {
	epoch := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		jobs := make([]*Job, n)
		for i := range jobs {
			jobs[i] = &Job{
				ID: int64(i + 1),
				// A few shared submit instants exercise the ID tie-break.
				Submit: epoch.Add(time.Duration(rng.Intn(n/2+1)) * time.Minute),
			}
		}
		want := append([]*Job(nil), jobs...)
		sort.SliceStable(want, func(a, b int) bool {
			if !want[a].Submit.Equal(want[b].Submit) {
				return want[a].Submit.Before(want[b].Submit)
			}
			return want[a].ID < want[b].ID
		})

		// Insert in a random order: the heap must not care.
		perm := rng.Perm(n)
		q := &PriorityQueue{}
		for _, i := range perm {
			q.Push(jobs[i], 0.5)
		}
		got := popAll(q)
		for i, j := range want {
			if got[i] != j.ID {
				t.Fatalf("trial %d: pop order %v does not follow (submit, ID) order (want job %d at %d)",
					trial, got, j.ID, i)
			}
		}
	}
}

// TestQueuePopMatchesSortReference cross-checks the heap against the
// documented reference ordering (SortQueue) on fully random inputs:
// distinct priorities, duplicate priorities, duplicate submits.
func TestQueuePopMatchesSortReference(t *testing.T) {
	epoch := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(11))
	prios := []float64{0.1, 0.25, 0.25, 0.5, 0.9}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		jobs := make([]*Job, n)
		prio := map[int64]float64{}
		for i := range jobs {
			jobs[i] = &Job{
				ID:     int64(i + 1),
				Submit: epoch.Add(time.Duration(rng.Intn(10)) * time.Minute),
			}
			prio[jobs[i].ID] = prios[rng.Intn(len(prios))]
		}

		ref := make([]QueuedJob, n)
		for i, j := range jobs {
			ref[i] = QueuedJob{Job: j, Priority: prio[j.ID]}
		}
		SortQueue(ref)

		q := &PriorityQueue{}
		for _, i := range rng.Perm(n) {
			q.Push(jobs[i], prio[jobs[i].ID])
		}
		got := popAll(q)
		for i := range ref {
			if got[i] != ref[i].Job.ID {
				t.Fatalf("trial %d: heap order %v != SortQueue reference at %d", trial, got, i)
			}
		}
	}
}

// TestQueueReprioritizeDeterministic verifies Reprioritize yields the same
// pop order as building a fresh queue with the new priorities — bulk
// restore must not depend on the heap's internal pre-state.
func TestQueueReprioritizeDeterministic(t *testing.T) {
	epoch := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		jobs := make([]*Job, n)
		for i := range jobs {
			jobs[i] = &Job{ID: int64(i + 1), Submit: epoch.Add(time.Duration(rng.Intn(8)) * time.Minute)}
		}
		oldP := func(j *Job) float64 { return float64(j.ID % 3) }
		newP := func(j *Job) float64 { return float64(j.ID % 5) }

		a := &PriorityQueue{}
		for _, i := range rng.Perm(n) {
			a.Push(jobs[i], oldP(jobs[i]))
		}
		a.Reprioritize(newP)

		b := &PriorityQueue{}
		for _, i := range rng.Perm(n) {
			b.Push(jobs[i], newP(jobs[i]))
		}

		ga, gb := popAll(a), popAll(b)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("trial %d: reprioritized order %v != fresh order %v", trial, ga, gb)
			}
		}
	}
}
