package core

import (
	"testing"
	"time"

	"repro/internal/identity"
	"repro/internal/policy"
	"repro/internal/services/irs"
	"repro/internal/simclock"
	"repro/internal/usage"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func newTestSite(t *testing.T, name string, clock simclock.Clock, contribute, useGlobal bool) *Site {
	t.Helper()
	p, err := policy.FromShares(map[string]float64{"alice": 0.5, "bob": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSite(SiteConfig{
		Name:       name,
		Policy:     p,
		Clock:      clock,
		BinWidth:   time.Minute,
		Contribute: contribute,
		UseGlobal:  useGlobal,
		ResolveEndpoint: irs.EndpointFunc(func(site, local string) (string, error) {
			return local, nil // identity mapping for tests
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSiteValidation(t *testing.T) {
	p, _ := policy.FromShares(map[string]float64{"a": 1})
	if _, err := NewSite(SiteConfig{Policy: p}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := NewSite(SiteConfig{Name: "s"}); err == nil {
		t.Error("missing policy accepted")
	}
	bad := policy.NewTree()
	bad.Root.Children = []*policy.Node{{Name: "x", Share: -1}}
	if _, err := NewSite(SiteConfig{Name: "s", Policy: bad}); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestEndToEndSingleSite(t *testing.T) {
	clock := simclock.NewSim(t0)
	s := newTestSite(t, "s", clock, true, true)

	// Both users start balanced.
	pa, err := s.Lib.PriorityForLocalUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := s.Lib.PriorityForLocalUser("bob")
	if pa != pb {
		t.Errorf("initial priorities differ: %g vs %g", pa, pb)
	}

	// bob consumes; after refresh alice outranks bob.
	if err := s.Lib.JobComplete("bob", t0, time.Hour, 1); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	pa, _ = s.Lib.PriorityForLocalUser("alice")
	pb, _ = s.Lib.PriorityForLocalUser("bob")
	if pa <= pb {
		t.Errorf("alice=%g should outrank bob=%g after bob's usage", pa, pb)
	}
}

func TestGlobalVsLocalPrioritization(t *testing.T) {
	clock := simclock.NewSim(t0)
	global := newTestSite(t, "global", clock, true, true)
	localOnly := newTestSite(t, "localonly", clock, true, false)
	remote := newTestSite(t, "remote", clock, true, true)
	FullMesh([]*Site{global, localOnly, remote})

	// bob consumes heavily on the remote site only.
	remote.USS.ReportJob("bob", t0, 10*time.Hour, 4)
	clock.Advance(time.Hour)
	for _, s := range []*Site{global, localOnly, remote} {
		if err := s.Exchange(); err != nil {
			t.Fatal(err)
		}
		if err := s.Refresh(); err != nil {
			t.Fatal(err)
		}
	}

	// The globally-aware site discounts bob; the local-only site sees no
	// usage at all and keeps them equal.
	ga, _ := global.Lib.PriorityForLocalUser("alice")
	gb, _ := global.Lib.PriorityForLocalUser("bob")
	if ga <= gb {
		t.Errorf("global site: alice=%g should outrank bob=%g", ga, gb)
	}
	la, _ := localOnly.Lib.PriorityForLocalUser("alice")
	lb, _ := localOnly.Lib.PriorityForLocalUser("bob")
	if la != lb {
		t.Errorf("local-only site should be blind to remote usage: %g vs %g", la, lb)
	}
}

func TestFullMeshExchange(t *testing.T) {
	clock := simclock.NewSim(t0)
	sites := []*Site{
		newTestSite(t, "a", clock, true, true),
		newTestSite(t, "b", clock, true, true),
		newTestSite(t, "c", clock, true, true),
	}
	FullMesh(sites)
	sites[0].USS.ReportJob("alice", t0, time.Hour, 1)
	clock.Advance(2 * time.Hour)
	for _, s := range sites {
		if err := s.Exchange(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sites {
		got := s.USS.GlobalTotals(clock.Now(), usage.None{})
		if got["alice"] < 3599 {
			t.Errorf("site %s global alice = %g", s.Name, got["alice"])
		}
	}
}

func TestExplicitMappingsViaIRS(t *testing.T) {
	clock := simclock.NewSim(t0)
	p, _ := policy.FromShares(map[string]float64{"grid-alice": 1})
	s, err := NewSite(SiteConfig{Name: "s", Policy: p, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	// Without endpoint or mapping, resolution fails.
	if _, err := s.Lib.PriorityForLocalUser("gx01"); err == nil {
		t.Error("unmapped account resolved")
	}
	s.IRS.Store(identity.Mapping{GridID: "grid-alice", Site: "s", LocalUser: "gx01"})
	s.Lib.FlushCaches()
	v, err := s.Lib.PriorityForLocalUser("gx01")
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("priority = %g", v)
	}
}
