// Package core assembles the Aequus system: a Site bundles one
// installation's five services (PDS, USS, UMS, FCS, IRS) plus a local
// libaequus client, wired the way the paper deploys them — one full stack
// per cluster, exchanging only compact usage data with other sites through
// the USS layer.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/durability"
	"repro/internal/fairshare"
	"repro/internal/libaequus"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/services/fcs"
	"repro/internal/services/irs"
	"repro/internal/services/pds"
	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
	"repro/internal/vector"
)

// SiteConfig configures one Aequus installation.
type SiteConfig struct {
	// Name is the site name (used in usage records and identity mapping).
	Name string
	// Policy is the site's usage policy (required).
	Policy *policy.Tree
	// Clock provides time for every service (default wall clock).
	Clock simclock.Clock
	// BinWidth is the USS histogram interval (default 1h).
	BinWidth time.Duration
	// Decay is the usage decay function (default none).
	Decay usage.Decay
	// Contribute controls whether this site serves usage to peers.
	Contribute bool
	// UseGlobal controls whether prioritization considers global usage
	// (local + exchanged) or local only — the partial-participation knob.
	UseGlobal bool
	// Projection selects the vector projection (default percental).
	Projection vector.Projection
	// Fairshare parameterizes the calculation (default k=0.5, res=10000).
	Fairshare fairshare.Config
	// UMSCacheTTL / FCSCacheTTL / LibCacheTTL are the update-delay
	// components (II) and (III).
	UMSCacheTTL, FCSCacheTTL, LibCacheTTL time.Duration
	// FCSSynchronousRefresh makes stale fairshare reads recompute in-line
	// instead of serving the previous snapshot while a background refresh
	// runs. Sim-clock testbeds set it for determinism; live sites leave it
	// false so readers never block on the UMS.
	FCSSynchronousRefresh bool
	// PolicyFetcher resolves PDS mount origins (optional).
	PolicyFetcher pds.Fetcher
	// ResolveEndpoint is the custom identity-resolution endpoint (optional;
	// without it, only explicitly stored mappings resolve).
	ResolveEndpoint irs.Endpoint
	// Metrics receives every service's instruments (default registry if
	// nil). Give each site its own registry to keep multi-site processes
	// (tests, the testbed) separable.
	Metrics *telemetry.Registry
	// PeerTimeout bounds each peer pull within an exchange round (zero =
	// only the round's own deadline applies).
	PeerTimeout time.Duration
	// PeerBreaker configures per-peer circuit breaking for the exchange
	// (zero Threshold disables breaking — every round dials every peer).
	PeerBreaker resilience.BreakerConfig
	// LibRetry bounds transient-failure retries of libaequus source lookups
	// (zero = single attempt).
	LibRetry resilience.RetryPolicy
	// LibStaleIfError lets libaequus serve expired cache entries when its
	// sources are unreachable after retries.
	LibStaleIfError bool
	// FCSSourceRetry bounds retries of the UMS fetch inside a fairshare
	// refresh (zero = single attempt).
	FCSSourceRetry resilience.RetryPolicy
	// Spans receives trace spans from every service of the site (nil
	// disables tracing). Share one recorder per process — or per simulated
	// federation — so cross-service traces land in one buffer.
	Spans *span.Recorder
	// Durable, when set, makes usage state survive restarts: every usage
	// mutation and policy edit is write-ahead-logged before applying, and
	// the site adopts the log's recovered snapshot at construction. The
	// owner must call Recover once after NewSite to replay the WAL tail
	// (commits block until then), then MarkReady on the log after the
	// first fairshare refresh.
	Durable *durability.Log
}

// Site is a complete Aequus installation.
type Site struct {
	Name string
	PDS  *pds.Service
	USS  *uss.Service
	UMS  *ums.Service
	FCS  *fcs.Service
	IRS  *irs.Service
	// Lib is a libaequus client wired to this site's services, ready for a
	// co-located resource manager.
	Lib *libaequus.Client
	// Durable is the site's write-ahead log (nil when durability is off).
	Durable *durability.Log
}

// NewSite builds and wires a site.
func NewSite(cfg SiteConfig) (*Site, error) {
	if cfg.Name == "" {
		return nil, errors.New("core: site name required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("core: policy required")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}

	p := pds.New(cfg.Policy, cfg.PolicyFetcher)
	if d := cfg.Durable; d != nil {
		// Adopt the durably stored policy before installing the change
		// hook, so the adoption itself is not re-committed. The config
		// policy only seeds a site with no durable policy history.
		if st := d.Recovered(); st != nil && len(st.Policy) > 0 {
			t, err := policy.FromJSON(st.Policy)
			if err != nil {
				return nil, fmt.Errorf("core: recovered policy: %w", err)
			}
			if err := p.SetPolicy(t); err != nil {
				return nil, fmt.Errorf("core: recovered policy: %w", err)
			}
		}
		p.OnChange(func(t *policy.Tree) {
			if d.Replaying() {
				// This SetPolicy IS a replayed WAL record; re-committing
				// it would deadlock on the commit lock Replay holds.
				return
			}
			data, err := policy.ToJSON(t)
			if err != nil {
				return
			}
			_ = d.Commit(&usage.Mutation{Kind: usage.MutPolicy, Blob: data}, nil)
		})
	}
	u := uss.New(uss.Config{
		Site:        cfg.Name,
		BinWidth:    cfg.BinWidth,
		Contribute:  cfg.Contribute,
		Clock:       cfg.Clock,
		Metrics:     cfg.Metrics,
		PeerTimeout: cfg.PeerTimeout,
		Breaker:     cfg.PeerBreaker,
		Spans:       cfg.Spans,
		Durable:     cfg.Durable,
	})

	source := ums.SourceFunc(func(now time.Time, d usage.Decay) (map[string]float64, error) {
		if cfg.UseGlobal {
			return u.GlobalTotals(now, d), nil
		}
		return u.LocalTotals(now, d), nil
	})
	m := ums.New(ums.Config{
		Decay:    cfg.Decay,
		CacheTTL: cfg.UMSCacheTTL,
		Clock:    cfg.Clock,
		Metrics:  cfg.Metrics,
		Spans:    cfg.Spans,
	}, source)

	f := fcs.New(fcs.Config{
		Fairshare:          cfg.Fairshare,
		Projection:         cfg.Projection,
		CacheTTL:           cfg.FCSCacheTTL,
		SynchronousRefresh: cfg.FCSSynchronousRefresh,
		Clock:              cfg.Clock,
		Metrics:            cfg.Metrics,
		SourceRetry:        cfg.FCSSourceRetry,
		Spans:              cfg.Spans,
	}, p, m)

	i := irs.New()
	if cfg.ResolveEndpoint != nil {
		i.SetEndpoint(cfg.ResolveEndpoint)
	}

	lib := libaequus.New(libaequus.Config{
		Site:         cfg.Name,
		CacheTTL:     cfg.LibCacheTTL,
		Clock:        cfg.Clock,
		Metrics:      cfg.Metrics,
		Retry:        cfg.LibRetry,
		StaleIfError: cfg.LibStaleIfError,
		Spans:        cfg.Spans,
	}, f, irsAdapter{i}, ussAdapter{u})

	return &Site{Name: cfg.Name, PDS: p, USS: u, UMS: m, FCS: f, IRS: i, Lib: lib, Durable: cfg.Durable}, nil
}

// Recover replays the durable log's WAL tail into the site's services —
// usage mutations through the USS, policy edits through the PDS — in the
// exact order they were committed before the crash. Until it returns, new
// commits block and exchange serving answers from the frozen pre-crash
// snapshot. No-op without durability.
func (s *Site) Recover() error {
	if s.Durable == nil {
		return nil
	}
	return s.Durable.Replay(func(m *usage.Mutation) error {
		if m.Kind == usage.MutPolicy {
			t, err := policy.FromJSON(m.Blob)
			if err != nil {
				return fmt.Errorf("core: replayed policy: %w", err)
			}
			return s.PDS.SetPolicy(t)
		}
		return s.USS.ApplyMutation(m)
	})
}

// SnapshotDurable rotates the WAL and writes a compacted snapshot of the
// site's usage state and policy. No-op without durability.
func (s *Site) SnapshotDurable() error {
	if s.Durable == nil {
		return nil
	}
	return s.Durable.Snapshot(func() (*durability.SnapshotState, error) {
		st := s.USS.CaptureState()
		data, err := policy.ToJSON(s.PDS.Policy())
		if err != nil {
			return nil, err
		}
		st.Policy = data
		return st, nil
	})
}

// irsAdapter exposes the IRS as a libaequus.IdentitySource.
type irsAdapter struct{ s *irs.Service }

func (a irsAdapter) Resolve(site, local string) (string, error) { return a.s.Resolve(site, local) }

// ussAdapter exposes the USS as a libaequus.UsageSink.
type ussAdapter struct{ s *uss.Service }

func (a ussAdapter) ReportJob(user string, start time.Time, dur time.Duration, procs int) {
	a.s.ReportJob(user, start, dur, procs)
}

// ConnectPeer registers a remote USS to pull usage from.
func (s *Site) ConnectPeer(p uss.Peer) { s.USS.AddPeer(p) }

// Exchange pulls usage from all connected peers.
func (s *Site) Exchange() error {
	return s.ExchangeContext(context.Background())
}

// ExchangeContext pulls usage from all connected peers under ctx's deadline
// — how a periodic driver bounds a whole round even when individual peers
// hang.
func (s *Site) ExchangeContext(ctx context.Context) error {
	_, err := s.USS.Exchange(ctx)
	return err
}

// Refresh invalidates the UMS cache and recomputes the fairshare tree —
// the periodic pre-calculation pass.
func (s *Site) Refresh() error {
	s.UMS.Invalidate()
	return s.FCS.Refresh()
}

// FullMesh connects every pair of sites for in-process usage exchange.
func FullMesh(sites []*Site) {
	for _, a := range sites {
		for _, b := range sites {
			if a != b {
				a.ConnectPeer(b.USS)
			}
		}
	}
}
