// Package core assembles the Aequus system: a Site bundles one
// installation's five services (PDS, USS, UMS, FCS, IRS) plus a local
// libaequus client, wired the way the paper deploys them — one full stack
// per cluster, exchanging only compact usage data with other sites through
// the USS layer.
package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/fairshare"
	"repro/internal/libaequus"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/services/fcs"
	"repro/internal/services/irs"
	"repro/internal/services/pds"
	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/usage"
	"repro/internal/vector"
)

// SiteConfig configures one Aequus installation.
type SiteConfig struct {
	// Name is the site name (used in usage records and identity mapping).
	Name string
	// Policy is the site's usage policy (required).
	Policy *policy.Tree
	// Clock provides time for every service (default wall clock).
	Clock simclock.Clock
	// BinWidth is the USS histogram interval (default 1h).
	BinWidth time.Duration
	// Decay is the usage decay function (default none).
	Decay usage.Decay
	// Contribute controls whether this site serves usage to peers.
	Contribute bool
	// UseGlobal controls whether prioritization considers global usage
	// (local + exchanged) or local only — the partial-participation knob.
	UseGlobal bool
	// Projection selects the vector projection (default percental).
	Projection vector.Projection
	// Fairshare parameterizes the calculation (default k=0.5, res=10000).
	Fairshare fairshare.Config
	// UMSCacheTTL / FCSCacheTTL / LibCacheTTL are the update-delay
	// components (II) and (III).
	UMSCacheTTL, FCSCacheTTL, LibCacheTTL time.Duration
	// FCSSynchronousRefresh makes stale fairshare reads recompute in-line
	// instead of serving the previous snapshot while a background refresh
	// runs. Sim-clock testbeds set it for determinism; live sites leave it
	// false so readers never block on the UMS.
	FCSSynchronousRefresh bool
	// PolicyFetcher resolves PDS mount origins (optional).
	PolicyFetcher pds.Fetcher
	// ResolveEndpoint is the custom identity-resolution endpoint (optional;
	// without it, only explicitly stored mappings resolve).
	ResolveEndpoint irs.Endpoint
	// Metrics receives every service's instruments (default registry if
	// nil). Give each site its own registry to keep multi-site processes
	// (tests, the testbed) separable.
	Metrics *telemetry.Registry
	// PeerTimeout bounds each peer pull within an exchange round (zero =
	// only the round's own deadline applies).
	PeerTimeout time.Duration
	// PeerBreaker configures per-peer circuit breaking for the exchange
	// (zero Threshold disables breaking — every round dials every peer).
	PeerBreaker resilience.BreakerConfig
	// LibRetry bounds transient-failure retries of libaequus source lookups
	// (zero = single attempt).
	LibRetry resilience.RetryPolicy
	// LibStaleIfError lets libaequus serve expired cache entries when its
	// sources are unreachable after retries.
	LibStaleIfError bool
	// FCSSourceRetry bounds retries of the UMS fetch inside a fairshare
	// refresh (zero = single attempt).
	FCSSourceRetry resilience.RetryPolicy
	// Spans receives trace spans from every service of the site (nil
	// disables tracing). Share one recorder per process — or per simulated
	// federation — so cross-service traces land in one buffer.
	Spans *span.Recorder
}

// Site is a complete Aequus installation.
type Site struct {
	Name string
	PDS  *pds.Service
	USS  *uss.Service
	UMS  *ums.Service
	FCS  *fcs.Service
	IRS  *irs.Service
	// Lib is a libaequus client wired to this site's services, ready for a
	// co-located resource manager.
	Lib *libaequus.Client
}

// NewSite builds and wires a site.
func NewSite(cfg SiteConfig) (*Site, error) {
	if cfg.Name == "" {
		return nil, errors.New("core: site name required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("core: policy required")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}

	p := pds.New(cfg.Policy, cfg.PolicyFetcher)
	u := uss.New(uss.Config{
		Site:        cfg.Name,
		BinWidth:    cfg.BinWidth,
		Contribute:  cfg.Contribute,
		Clock:       cfg.Clock,
		Metrics:     cfg.Metrics,
		PeerTimeout: cfg.PeerTimeout,
		Breaker:     cfg.PeerBreaker,
		Spans:       cfg.Spans,
	})

	source := ums.SourceFunc(func(now time.Time, d usage.Decay) (map[string]float64, error) {
		if cfg.UseGlobal {
			return u.GlobalTotals(now, d), nil
		}
		return u.LocalTotals(now, d), nil
	})
	m := ums.New(ums.Config{
		Decay:    cfg.Decay,
		CacheTTL: cfg.UMSCacheTTL,
		Clock:    cfg.Clock,
		Metrics:  cfg.Metrics,
		Spans:    cfg.Spans,
	}, source)

	f := fcs.New(fcs.Config{
		Fairshare:          cfg.Fairshare,
		Projection:         cfg.Projection,
		CacheTTL:           cfg.FCSCacheTTL,
		SynchronousRefresh: cfg.FCSSynchronousRefresh,
		Clock:              cfg.Clock,
		Metrics:            cfg.Metrics,
		SourceRetry:        cfg.FCSSourceRetry,
		Spans:              cfg.Spans,
	}, p, m)

	i := irs.New()
	if cfg.ResolveEndpoint != nil {
		i.SetEndpoint(cfg.ResolveEndpoint)
	}

	lib := libaequus.New(libaequus.Config{
		Site:         cfg.Name,
		CacheTTL:     cfg.LibCacheTTL,
		Clock:        cfg.Clock,
		Metrics:      cfg.Metrics,
		Retry:        cfg.LibRetry,
		StaleIfError: cfg.LibStaleIfError,
		Spans:        cfg.Spans,
	}, f, irsAdapter{i}, ussAdapter{u})

	return &Site{Name: cfg.Name, PDS: p, USS: u, UMS: m, FCS: f, IRS: i, Lib: lib}, nil
}

// irsAdapter exposes the IRS as a libaequus.IdentitySource.
type irsAdapter struct{ s *irs.Service }

func (a irsAdapter) Resolve(site, local string) (string, error) { return a.s.Resolve(site, local) }

// ussAdapter exposes the USS as a libaequus.UsageSink.
type ussAdapter struct{ s *uss.Service }

func (a ussAdapter) ReportJob(user string, start time.Time, dur time.Duration, procs int) {
	a.s.ReportJob(user, start, dur, procs)
}

// ConnectPeer registers a remote USS to pull usage from.
func (s *Site) ConnectPeer(p uss.Peer) { s.USS.AddPeer(p) }

// Exchange pulls usage from all connected peers.
func (s *Site) Exchange() error {
	return s.ExchangeContext(context.Background())
}

// ExchangeContext pulls usage from all connected peers under ctx's deadline
// — how a periodic driver bounds a whole round even when individual peers
// hang.
func (s *Site) ExchangeContext(ctx context.Context) error {
	_, err := s.USS.Exchange(ctx)
	return err
}

// Refresh invalidates the UMS cache and recomputes the fairshare tree —
// the periodic pre-calculation pass.
func (s *Site) Refresh() error {
	s.UMS.Invalidate()
	return s.FCS.Refresh()
}

// FullMesh connects every pair of sites for in-process usage exchange.
func FullMesh(sites []*Site) {
	for _, a := range sites {
		for _, b := range sites {
			if a != b {
				a.ConnectPeer(b.USS)
			}
		}
	}
}
