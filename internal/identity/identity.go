// Package identity implements Aequus user-identity management (Section
// III-B): the mapping between global grid user identities and site-local
// system accounts. Global fairshare requires that grid identities are
// consistently associated with jobs regardless of where they execute, while
// each site maps them to local accounts in its own way.
package identity

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Mapping associates a grid identity with a local account at one site.
type Mapping struct {
	// GridID is the global grid user identity (e.g. a DN or project id).
	GridID string `json:"gridId"`
	// Site is the site where the local account lives.
	Site string `json:"site"`
	// LocalUser is the system account on that site's cluster.
	LocalUser string `json:"localUser"`
}

// ErrNotFound is returned when no mapping exists.
var ErrNotFound = errors.New("identity: mapping not found")

// Table is a concurrent lookup table of identity mappings — the IRS backing
// store populated "by actively making a call to IRS to store the reverse
// mapping in a look up table".
type Table struct {
	mu      sync.RWMutex
	byLocal map[string]string // site+"\x00"+local -> grid
	byGrid  map[string]string // grid+"\x00"+site -> local
}

// NewTable returns an empty mapping table.
func NewTable() *Table {
	return &Table{
		byLocal: map[string]string{},
		byGrid:  map[string]string{},
	}
}

func localKey(site, local string) string { return site + "\x00" + local }
func gridKey(grid, site string) string   { return grid + "\x00" + site }

// Store records a mapping, replacing any previous one for the same
// (site, local) pair.
func (t *Table) Store(m Mapping) error {
	if m.GridID == "" || m.LocalUser == "" {
		return errors.New("identity: empty grid id or local user")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byLocal[localKey(m.Site, m.LocalUser)] = m.GridID
	t.byGrid[gridKey(m.GridID, m.Site)] = m.LocalUser
	return nil
}

// ToGrid reverts the site mapping: local account -> grid identity.
func (t *Table) ToGrid(site, local string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if g, ok := t.byLocal[localKey(site, local)]; ok {
		return g, nil
	}
	return "", fmt.Errorf("%w: %s@%s", ErrNotFound, local, site)
}

// ToLocal maps a grid identity to the local account at a site.
func (t *Table) ToLocal(grid, site string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if l, ok := t.byGrid[gridKey(grid, site)]; ok {
		return l, nil
	}
	return "", fmt.Errorf("%w: %s at %s", ErrNotFound, grid, site)
}

// Len returns the number of stored mappings.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byLocal)
}

// Scheme deterministically derives local accounts from grid identities —
// how sites commonly configure pool accounts. A Scheme lets a whole site be
// mapped without enumerating users.
type Scheme interface {
	// ToLocal derives the local account for a grid identity.
	ToLocal(gridID string) string
	// ToGrid reverts the derivation; ok is false when the account does not
	// follow the scheme.
	ToGrid(local string) (gridID string, ok bool)
}

// PrefixScheme maps grid "alice" to local Prefix+"alice" (e.g. "grid_alice").
type PrefixScheme struct {
	Prefix string
}

// ToLocal implements Scheme.
func (s PrefixScheme) ToLocal(gridID string) string { return s.Prefix + gridID }

// ToGrid implements Scheme.
func (s PrefixScheme) ToGrid(local string) (string, bool) {
	if !strings.HasPrefix(local, s.Prefix) || len(local) == len(s.Prefix) {
		return "", false
	}
	return strings.TrimPrefix(local, s.Prefix), true
}

// IdentityScheme maps every grid identity to the identical local account —
// sites where grid users have real accounts.
type IdentityScheme struct{}

// ToLocal implements Scheme.
func (IdentityScheme) ToLocal(gridID string) string { return gridID }

// ToGrid implements Scheme.
func (IdentityScheme) ToGrid(local string) (string, bool) { return local, local != "" }

// SchemeTable wraps a Table with a fallback Scheme: explicit mappings win,
// then the scheme is consulted (and the result memoized).
type SchemeTable struct {
	Table  *Table
	Scheme Scheme
	Site   string
}

// ToGrid resolves a local account to a grid identity via table then scheme.
func (s *SchemeTable) ToGrid(local string) (string, error) {
	if s.Table != nil {
		if g, err := s.Table.ToGrid(s.Site, local); err == nil {
			return g, nil
		}
	}
	if s.Scheme != nil {
		if g, ok := s.Scheme.ToGrid(local); ok {
			if s.Table != nil {
				_ = s.Table.Store(Mapping{GridID: g, Site: s.Site, LocalUser: local})
			}
			return g, nil
		}
	}
	return "", fmt.Errorf("%w: %s@%s", ErrNotFound, local, s.Site)
}
