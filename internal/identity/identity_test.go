package identity

import (
	"errors"
	"sync"
	"testing"
)

func TestTableStoreAndLookup(t *testing.T) {
	tab := NewTable()
	if err := tab.Store(Mapping{GridID: "alice-dn", Site: "hpc2n", LocalUser: "grid001"}); err != nil {
		t.Fatal(err)
	}
	g, err := tab.ToGrid("hpc2n", "grid001")
	if err != nil || g != "alice-dn" {
		t.Errorf("ToGrid = %q, %v", g, err)
	}
	l, err := tab.ToLocal("alice-dn", "hpc2n")
	if err != nil || l != "grid001" {
		t.Errorf("ToLocal = %q, %v", l, err)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTableNotFound(t *testing.T) {
	tab := NewTable()
	if _, err := tab.ToGrid("s", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, err := tab.ToLocal("g", "s"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestTableSiteScoped(t *testing.T) {
	tab := NewTable()
	tab.Store(Mapping{GridID: "alice", Site: "siteA", LocalUser: "a1"})
	tab.Store(Mapping{GridID: "alice", Site: "siteB", LocalUser: "b7"})
	if l, _ := tab.ToLocal("alice", "siteA"); l != "a1" {
		t.Errorf("siteA local = %q", l)
	}
	if l, _ := tab.ToLocal("alice", "siteB"); l != "b7" {
		t.Errorf("siteB local = %q", l)
	}
	// The same local account name can map differently per site.
	tab.Store(Mapping{GridID: "bob", Site: "siteB", LocalUser: "a1"})
	if g, _ := tab.ToGrid("siteA", "a1"); g != "alice" {
		t.Errorf("siteA a1 = %q", g)
	}
	if g, _ := tab.ToGrid("siteB", "a1"); g != "bob" {
		t.Errorf("siteB a1 = %q", g)
	}
}

func TestTableRejectsEmpty(t *testing.T) {
	tab := NewTable()
	if err := tab.Store(Mapping{GridID: "", LocalUser: "x"}); err == nil {
		t.Error("empty grid id accepted")
	}
	if err := tab.Store(Mapping{GridID: "g", LocalUser: ""}); err == nil {
		t.Error("empty local user accepted")
	}
}

func TestTableConcurrent(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tab.Store(Mapping{GridID: "g", Site: "s", LocalUser: "l"})
				tab.ToGrid("s", "l")
			}
		}(i)
	}
	wg.Wait()
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestPrefixScheme(t *testing.T) {
	s := PrefixScheme{Prefix: "grid_"}
	if got := s.ToLocal("alice"); got != "grid_alice" {
		t.Errorf("ToLocal = %q", got)
	}
	g, ok := s.ToGrid("grid_alice")
	if !ok || g != "alice" {
		t.Errorf("ToGrid = %q, %v", g, ok)
	}
	if _, ok := s.ToGrid("localonly"); ok {
		t.Error("non-prefixed account resolved")
	}
	if _, ok := s.ToGrid("grid_"); ok {
		t.Error("bare prefix resolved")
	}
}

func TestIdentityScheme(t *testing.T) {
	s := IdentityScheme{}
	if got := s.ToLocal("u"); got != "u" {
		t.Errorf("ToLocal = %q", got)
	}
	if g, ok := s.ToGrid("u"); !ok || g != "u" {
		t.Errorf("ToGrid = %q, %v", g, ok)
	}
	if _, ok := s.ToGrid(""); ok {
		t.Error("empty account resolved")
	}
}

func TestSchemeTablePrecedenceAndMemoization(t *testing.T) {
	tab := NewTable()
	tab.Store(Mapping{GridID: "explicit", Site: "s", LocalUser: "grid_x"})
	st := &SchemeTable{Table: tab, Scheme: PrefixScheme{Prefix: "grid_"}, Site: "s"}

	// Explicit table entry wins over the scheme.
	g, err := st.ToGrid("grid_x")
	if err != nil || g != "explicit" {
		t.Errorf("ToGrid = %q, %v", g, err)
	}
	// Scheme fallback resolves and memoizes.
	g, err = st.ToGrid("grid_y")
	if err != nil || g != "y" {
		t.Errorf("scheme ToGrid = %q, %v", g, err)
	}
	if got, _ := tab.ToGrid("s", "grid_y"); got != "y" {
		t.Error("scheme result not memoized")
	}
	// Neither table nor scheme.
	if _, err := st.ToGrid("plain"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unresolvable err = %v", err)
	}
}
