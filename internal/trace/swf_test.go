package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestReadSWFBasic(t *testing.T) {
	src := `; Comment line
; UnixStartTime: 1325376000
1 0 10 3600 1 -1 -1 1 3600 -1 1 7 -1 -1 -1 -1 -1 -1
2 60 5 1800 4 -1 -1 4 1800 -1 1 8 -1 -1 -1 -1 -1 -1
3 120 -1 -1 1 -1 -1 1 -1 -1 0 7 -1 -1 -1 -1 -1 -1
`
	tr, err := ReadSWF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	epoch := time.Unix(1325376000, 0).UTC()
	j := tr.Jobs[0]
	if !j.Submit.Equal(epoch) || j.Duration != time.Hour || j.Procs != 1 || j.User != "swf7" {
		t.Errorf("job0 = %+v", j)
	}
	if tr.Jobs[1].Procs != 4 || tr.Jobs[1].User != "swf8" {
		t.Errorf("job1 = %+v", tr.Jobs[1])
	}
	// -1 runtime becomes zero duration (cancelled), cleanable.
	if tr.Jobs[2].Duration != 0 {
		t.Errorf("cancelled job duration = %v", tr.Jobs[2].Duration)
	}
	clean, rep := Clean(tr)
	if clean.Len() != 2 || rep.JobsRemoved != 1 {
		t.Errorf("cleaning: %d left, %d removed", clean.Len(), rep.JobsRemoved)
	}
}

func TestReadSWFDefaultEpoch(t *testing.T) {
	tr, err := ReadSWF(strings.NewReader("1 0 -1 60 1 -1 -1 1 60 -1 1 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Jobs[0].Submit.Equal(SWFEpoch) {
		t.Errorf("submit = %v, want SWFEpoch", tr.Jobs[0].Submit)
	}
}

func TestReadSWFMalformed(t *testing.T) {
	bad := []string{
		"1 0 -1 60",                        // too few fields
		"x 0 -1 60 1 -1 -1 1 60 -1 1 3",    // bad id
		"1 zero -1 60 1 -1 -1 1 60 -1 1 3", // bad submit
		"1 0 -1 sixty 1 -1 -1 1 60 -1 1 3", // bad runtime
		"1 0 -1 60 quad -1 -1 1 60 -1 1 3", // bad procs
	}
	for _, line := range bad {
		if _, err := ReadSWF(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestReadSWFUnknownUserAndProcClamp(t *testing.T) {
	tr, err := ReadSWF(strings.NewReader("5 10 -1 60 0 -1 -1 1 60 -1 1 -1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].User != "swfunknown" {
		t.Errorf("user = %q", tr.Jobs[0].User)
	}
	if tr.Jobs[0].Procs != 1 {
		t.Errorf("procs = %d, want clamp to 1", tr.Jobs[0].Procs)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	in := &Trace{Jobs: []Job{
		{ID: 1, User: "alice", Submit: t0, Duration: time.Hour, Procs: 2},
		{ID: 2, User: "bob", Submit: t0.Add(time.Minute), Duration: 30 * time.Minute, Procs: 1},
		{ID: 3, User: "alice", Submit: t0.Add(2 * time.Minute), Duration: 0, Procs: 1},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != in.Len() {
		t.Fatalf("len = %d", out.Len())
	}
	for i := range in.Jobs {
		a, b := in.Jobs[i], out.Jobs[i]
		if a.ID != b.ID || !a.Submit.Equal(b.Submit) || a.Duration != b.Duration || a.Procs != b.Procs {
			t.Errorf("job %d: %+v vs %+v", i, a, b)
		}
	}
	// Same original user -> same mapped user.
	if out.Jobs[0].User != out.Jobs[2].User {
		t.Error("user identity not preserved through mapping")
	}
	if out.Jobs[0].User == out.Jobs[1].User {
		t.Error("distinct users collapsed")
	}
}
