package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Standard Workload Format (SWF) support. SWF is the de-facto archive
// format for cluster/grid traces (Feitelson's Parallel Workloads Archive,
// the source tradition behind the paper's workload-modeling references);
// supporting it lets the modeling pipeline run on real public traces in
// place of the synthetic surrogate.
//
// Each SWF line has 18 whitespace-separated fields; ';' starts a comment.
// The fields used here are:
//
//	 1 job number
//	 2 submit time (seconds since trace start)
//	 4 run time (seconds)
//	 5 number of allocated processors
//	12 user id
//	11 status (0/5 = failed/cancelled variants; 1 = completed)

// SWFEpoch is the absolute time assigned to SWF offset zero when the trace
// header does not carry one.
var SWFEpoch = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)

// ReadSWF parses an SWF stream into a Trace. Jobs with negative run time
// are treated as zero-duration (cancelled) jobs so the standard cleaning
// filters apply. The `UnixStartTime:` header comment, when present, anchors
// the absolute submit times.
func ReadSWF(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	epoch := SWFEpoch
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == ';' {
			// Header comments may carry the absolute start time.
			if v, ok := swfHeaderValue(line, "UnixStartTime:"); ok {
				if sec, err := strconv.ParseInt(v, 10, 64); err == nil {
					epoch = time.Unix(sec, 0).UTC()
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 12 {
			return nil, fmt.Errorf("trace: swf line %d: want >= 12 fields, got %d", lineNo, len(f))
		}
		id, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad job number %q", lineNo, f[0])
		}
		submit, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad submit %q", lineNo, f[1])
		}
		runtime, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad run time %q", lineNo, f[3])
		}
		if runtime < 0 {
			runtime = 0 // SWF convention: -1 means unavailable/cancelled
		}
		procs, err := strconv.Atoi(f[4])
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad processors %q", lineNo, f[4])
		}
		if procs < 1 {
			procs = 1
		}
		user := f[11]
		if user == "-1" {
			user = "unknown"
		}
		t.Jobs = append(t.Jobs, Job{
			ID:       id,
			User:     "swf" + user,
			Submit:   epoch.Add(time.Duration(submit * float64(time.Second))),
			Duration: time.Duration(runtime * float64(time.Second)),
			Procs:    procs,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

func swfHeaderValue(line, key string) (string, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return "", false
	}
	rest := strings.TrimSpace(line[i+len(key):])
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	return rest, rest != ""
}

// WriteSWF serializes the trace in SWF, filling the unused fields with -1
// per convention. User names are written as their 1-based first-appearance
// index, with a header mapping comment.
func WriteSWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	start, _ := t.Span()
	if _, err := fmt.Fprintf(bw, "; UnixStartTime: %d\n", start.Unix()); err != nil {
		return err
	}
	userID := map[string]int{}
	for _, u := range t.Users() {
		userID[u] = len(userID) + 1
	}
	for u, id := range userID {
		fmt.Fprintf(bw, "; User %d = %s\n", id, u)
	}
	for _, j := range t.Jobs {
		submit := j.Submit.Sub(start).Seconds()
		status := 1
		if j.Duration == 0 {
			status = 0
		}
		// 18 fields: id submit wait runtime procs cpu mem reqprocs reqtime
		// reqmem status uid gid app queue partition prevjob thinktime
		_, err := fmt.Fprintf(bw, "%d %.0f -1 %.0f %d -1 -1 %d %.0f -1 %d %d -1 -1 -1 -1 -1 -1\n",
			j.ID, submit, j.Duration.Seconds(), j.Procs,
			j.Procs, j.Duration.Seconds(), status, userID[j.User])
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
