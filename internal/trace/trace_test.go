package trace

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)

func sampleTrace() *Trace {
	return &Trace{Jobs: []Job{
		{ID: 1, User: "u65", Submit: t0, Duration: 100 * time.Second, Procs: 1},
		{ID: 2, User: "u30", Submit: t0.Add(10 * time.Second), Duration: 200 * time.Second, Procs: 2},
		{ID: 3, User: "u65", Submit: t0.Add(20 * time.Second), Duration: 50 * time.Second, Procs: 1},
		{ID: 4, User: "u3", Submit: t0.Add(30 * time.Second), Duration: 0, Procs: 1},
		{ID: 5, User: "admin", Submit: t0.Add(40 * time.Second), Duration: 500 * time.Second, Procs: 1, Admin: true},
	}}
}

func TestJobUsage(t *testing.T) {
	j := Job{Duration: 100 * time.Second, Procs: 4}
	if got := j.Usage(); got != 400 {
		t.Errorf("Usage = %g", got)
	}
	j0 := Job{Duration: 100 * time.Second, Procs: 0}
	if got := j0.Usage(); got != 100 {
		t.Errorf("Procs=0 Usage = %g, want clamp to 1 proc", got)
	}
}

func TestSortAndSpan(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 2, Submit: t0.Add(time.Hour), Duration: time.Minute, Procs: 1},
		{ID: 1, Submit: t0, Duration: 2 * time.Hour, Procs: 1},
	}}
	tr.Sort()
	if tr.Jobs[0].ID != 1 {
		t.Error("Sort did not order by submit")
	}
	start, span := tr.Span()
	if !start.Equal(t0) {
		t.Errorf("start = %v", start)
	}
	// Job 1 runs to t0+2h; job 2 to t0+1h1m. Span = 2h.
	if span != 2*time.Hour {
		t.Errorf("span = %v", span)
	}
}

func TestSpanEmpty(t *testing.T) {
	tr := &Trace{}
	start, span := tr.Span()
	if !start.IsZero() || span != 0 {
		t.Errorf("empty Span = %v, %v", start, span)
	}
}

func TestTotalUsage(t *testing.T) {
	tr := sampleTrace()
	want := 100.0 + 400 + 50 + 0 + 500
	if got := tr.TotalUsage(); got != want {
		t.Errorf("TotalUsage = %g, want %g", got, want)
	}
}

func TestUsersAndJobsOf(t *testing.T) {
	tr := sampleTrace()
	users := tr.Users()
	if len(users) != 4 || users[0] != "u65" || users[1] != "u30" {
		t.Errorf("Users = %v", users)
	}
	if got := len(tr.JobsOf("u65")); got != 2 {
		t.Errorf("JobsOf(u65) = %d", got)
	}
}

func TestInterArrivals(t *testing.T) {
	tr := sampleTrace()
	all := tr.InterArrivals("")
	if len(all) != 4 || all[0] != 10 {
		t.Errorf("all inter-arrivals = %v", all)
	}
	u65 := tr.InterArrivals("u65")
	if len(u65) != 1 || u65[0] != 20 {
		t.Errorf("u65 inter-arrivals = %v", u65)
	}
	if got := tr.InterArrivals("nobody"); got != nil {
		t.Errorf("unknown user inter-arrivals = %v", got)
	}
}

func TestDurationsAndOffsets(t *testing.T) {
	tr := sampleTrace()
	d := tr.Durations("u65")
	if len(d) != 2 || d[0] != 100 || d[1] != 50 {
		t.Errorf("Durations = %v", d)
	}
	off := tr.SubmitOffsets("u30")
	if len(off) != 1 || off[0] != 10 {
		t.Errorf("Offsets = %v", off)
	}
}

func TestClean(t *testing.T) {
	tr := sampleTrace()
	clean, rep := Clean(tr)
	if clean.Len() != 3 {
		t.Fatalf("cleaned len = %d, want 3", clean.Len())
	}
	if rep.JobsRemoved != 2 {
		t.Errorf("JobsRemoved = %d", rep.JobsRemoved)
	}
	if rep.UsageRemoved != 500 {
		t.Errorf("UsageRemoved = %g", rep.UsageRemoved)
	}
	if math.Abs(rep.JobFraction-0.4) > 1e-12 {
		t.Errorf("JobFraction = %g", rep.JobFraction)
	}
	for _, j := range clean.Jobs {
		if j.Admin || j.Duration == 0 {
			t.Errorf("cleaned trace retains job %d", j.ID)
		}
	}
}

func TestTimeScale(t *testing.T) {
	tr := sampleTrace()
	scaled := tr.TimeScale(0.5)
	if got := scaled.Jobs[1].Submit.Sub(t0); got != 5*time.Second {
		t.Errorf("scaled offset = %v", got)
	}
	if got := scaled.Jobs[0].Duration; got != 50*time.Second {
		t.Errorf("scaled duration = %v", got)
	}
	// Original untouched.
	if tr.Jobs[0].Duration != 100*time.Second {
		t.Error("TimeScale mutated input")
	}
	// Bad factor returns copy.
	same := tr.TimeScale(0)
	if same.Len() != tr.Len() {
		t.Error("factor 0 should copy")
	}
}

func TestScaleDurations(t *testing.T) {
	tr := sampleTrace()
	s := tr.ScaleDurations(2)
	if s.Jobs[0].Duration != 200*time.Second {
		t.Errorf("scaled = %v", s.Jobs[0].Duration)
	}
	if s.Jobs[0].Submit != tr.Jobs[0].Submit {
		t.Error("submit should be unchanged")
	}
}

func TestFilter(t *testing.T) {
	tr := sampleTrace()
	big := tr.Filter(func(j Job) bool { return j.Duration >= 100*time.Second })
	if big.Len() != 3 {
		t.Errorf("filtered = %d", big.Len())
	}
}
