package trace

import "sort"

// UserStat summarizes one user's contribution to a trace, matching the
// headline numbers of the paper's workload characterization (e.g. U65 is
// "responsible for 65.25% of the total wall-clock time usage, and 81.03% of
// the number of submitted jobs").
type UserStat struct {
	// User is the grid user identity.
	User string
	// Jobs is the number of jobs submitted.
	Jobs int
	// Usage is the total core-seconds consumed.
	Usage float64
	// JobShare and UsageShare are this user's fractions of the trace totals.
	JobShare, UsageShare float64
}

// UserStats computes per-user statistics sorted by descending usage.
func UserStats(t *Trace) []UserStat {
	type acc struct {
		jobs  int
		usage float64
	}
	byUser := map[string]*acc{}
	var order []string
	for _, j := range t.Jobs {
		a := byUser[j.User]
		if a == nil {
			a = &acc{}
			byUser[j.User] = a
			order = append(order, j.User)
		}
		a.jobs++
		a.usage += j.Usage()
	}
	totalJobs := len(t.Jobs)
	totalUsage := t.TotalUsage()
	out := make([]UserStat, 0, len(order))
	for _, u := range order {
		a := byUser[u]
		s := UserStat{User: u, Jobs: a.jobs, Usage: a.usage}
		if totalJobs > 0 {
			s.JobShare = float64(a.jobs) / float64(totalJobs)
		}
		if totalUsage > 0 {
			s.UsageShare = a.usage / totalUsage
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Usage > out[j].Usage })
	return out
}

// GroupMinor relabels every user outside the top `keep` users (by usage) to
// the given group name, mirroring the paper's grouping of all minor users
// into the single U_oth category "due to the small number of jobs and low
// combined resource consumption".
func GroupMinor(t *Trace, keep int, groupName string) *Trace {
	stats := UserStats(t)
	major := map[string]bool{}
	for i, s := range stats {
		if i >= keep {
			break
		}
		major[s.User] = true
	}
	out := &Trace{Jobs: make([]Job, len(t.Jobs))}
	for i, j := range t.Jobs {
		if !major[j.User] {
			j.User = groupName
		}
		out.Jobs[i] = j
	}
	return out
}

// UsageShares returns a map of user to usage share.
func UsageShares(t *Trace) map[string]float64 {
	out := map[string]float64{}
	for _, s := range UserStats(t) {
		out[s.User] = s.UsageShare
	}
	return out
}

// JobShares returns a map of user to submitted-job share.
func JobShares(t *Trace) map[string]float64 {
	out := map[string]float64{}
	for _, s := range UserStats(t) {
		out[s.User] = s.JobShare
	}
	return out
}
