package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	in := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != in.Len() {
		t.Fatalf("len %d, want %d", out.Len(), in.Len())
	}
	for i := range in.Jobs {
		a, b := in.Jobs[i], out.Jobs[i]
		if a.ID != b.ID || a.User != b.User || !a.Submit.Equal(b.Submit) ||
			a.Procs != b.Procs || a.Site != b.Site || a.Admin != b.Admin {
			t.Errorf("job %d mismatch: %+v vs %+v", i, a, b)
		}
		if d := a.Duration - b.Duration; d > time.Millisecond || d < -time.Millisecond {
			t.Errorf("job %d duration drift %v", i, d)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := `# comment
; another comment

1 alice 1325376000 60.0 1
`
	tr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Jobs[0].User != "alice" {
		t.Fatalf("parsed %+v", tr.Jobs)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"1 alice 1325376000 60.0",    // too few fields
		"x alice 1325376000 60.0 1",  // bad id
		"1 alice notatime 60.0 1",    // bad submit
		"1 alice 1325376000 -5 1",    // negative duration
		"1 alice 1325376000 60.0 0",  // zero procs
		"1 alice 1325376000 sixty 1", // bad duration
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestReadOptionalFields(t *testing.T) {
	src := "7 bob 1325376000 30.5 2 siteA 1\n8 eve 1325376001 10 1 - 0\n"
	tr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Site != "siteA" || !tr.Jobs[0].Admin {
		t.Errorf("job0 = %+v", tr.Jobs[0])
	}
	if tr.Jobs[1].Site != "" || tr.Jobs[1].Admin {
		t.Errorf("job1 = %+v", tr.Jobs[1])
	}
}
