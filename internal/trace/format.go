package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The text trace format is one job per line, whitespace separated, in the
// spirit of the Standard Workload Format:
//
//	<id> <user> <submit-unix-seconds> <duration-seconds> <procs> [site] [admin]
//
// Lines starting with '#' or ';' are comments.

// Write serializes the trace to w in the text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# id user submit duration procs site admin"); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		site := j.Site
		if site == "" {
			site = "-"
		}
		admin := 0
		if j.Admin {
			admin = 1
		}
		_, err := fmt.Fprintf(bw, "%d %s %d %.3f %d %s %d\n",
			j.ID, j.User, j.Submit.Unix(), j.Duration.Seconds(), j.Procs, site, admin)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace in the text format.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == ';' {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 5 {
			return nil, fmt.Errorf("trace: line %d: want at least 5 fields, got %d", lineNo, len(f))
		}
		id, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id %q", lineNo, f[0])
		}
		submit, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad submit %q", lineNo, f[2])
		}
		durSec, err := strconv.ParseFloat(f[3], 64)
		if err != nil || durSec < 0 {
			return nil, fmt.Errorf("trace: line %d: bad duration %q", lineNo, f[3])
		}
		procs, err := strconv.Atoi(f[4])
		if err != nil || procs < 1 {
			return nil, fmt.Errorf("trace: line %d: bad procs %q", lineNo, f[4])
		}
		j := Job{
			ID:       id,
			User:     f[1],
			Submit:   time.Unix(submit, 0).UTC(),
			Duration: time.Duration(durSec * float64(time.Second)),
			Procs:    procs,
		}
		if len(f) >= 6 && f[5] != "-" {
			j.Site = f[5]
		}
		if len(f) >= 7 && f[6] == "1" {
			j.Admin = true
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
