package trace

import (
	"math"
	"testing"
	"time"
)

func statsTrace() *Trace {
	tr := &Trace{}
	add := func(user string, n int, dur time.Duration) {
		for i := 0; i < n; i++ {
			tr.Jobs = append(tr.Jobs, Job{
				ID: int64(len(tr.Jobs) + 1), User: user,
				Submit:   t0.Add(time.Duration(len(tr.Jobs)) * time.Second),
				Duration: dur, Procs: 1,
			})
		}
	}
	add("u65", 81, 100*time.Second) // usage 8100
	add("u30", 7, 500*time.Second)  // usage 3500
	add("u3", 9, 40*time.Second)    // usage 360
	add("a", 2, 10*time.Second)     // usage 20
	add("b", 1, 15*time.Second)     // usage 15
	return tr
}

func TestUserStatsSharesSumToOne(t *testing.T) {
	stats := UserStats(statsTrace())
	var jobSum, usageSum float64
	for _, s := range stats {
		jobSum += s.JobShare
		usageSum += s.UsageShare
	}
	if math.Abs(jobSum-1) > 1e-12 {
		t.Errorf("job shares sum to %g", jobSum)
	}
	if math.Abs(usageSum-1) > 1e-12 {
		t.Errorf("usage shares sum to %g", usageSum)
	}
}

func TestUserStatsOrderedByUsage(t *testing.T) {
	stats := UserStats(statsTrace())
	if stats[0].User != "u65" || stats[1].User != "u30" {
		t.Errorf("order = %v, %v", stats[0].User, stats[1].User)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Usage > stats[i-1].Usage {
			t.Error("not sorted by usage")
		}
	}
	if stats[0].Jobs != 81 {
		t.Errorf("u65 jobs = %d", stats[0].Jobs)
	}
	if math.Abs(stats[0].JobShare-0.81) > 1e-12 {
		t.Errorf("u65 job share = %g", stats[0].JobShare)
	}
}

func TestGroupMinor(t *testing.T) {
	g := GroupMinor(statsTrace(), 3, "u_oth")
	users := g.Users()
	if len(users) != 4 {
		t.Fatalf("users after grouping = %v", users)
	}
	stats := UserStats(g)
	var oth *UserStat
	for i := range stats {
		if stats[i].User == "u_oth" {
			oth = &stats[i]
		}
	}
	if oth == nil {
		t.Fatal("u_oth missing")
	}
	if oth.Jobs != 3 {
		t.Errorf("u_oth jobs = %d, want 3", oth.Jobs)
	}
	if oth.Usage != 35 {
		t.Errorf("u_oth usage = %g", oth.Usage)
	}
}

func TestSharesMaps(t *testing.T) {
	tr := statsTrace()
	us := UsageShares(tr)
	js := JobShares(tr)
	if len(us) != 5 || len(js) != 5 {
		t.Fatalf("map sizes %d %d", len(us), len(js))
	}
	if math.Abs(js["u3"]-0.09) > 1e-12 {
		t.Errorf("u3 job share = %g", js["u3"])
	}
	total := 8100.0 + 3500 + 360 + 20 + 15
	if math.Abs(us["u30"]-3500/total) > 1e-12 {
		t.Errorf("u30 usage share = %g", us["u30"])
	}
}

func TestUserStatsEmptyTrace(t *testing.T) {
	if got := UserStats(&Trace{}); len(got) != 0 {
		t.Errorf("stats of empty trace = %v", got)
	}
}
