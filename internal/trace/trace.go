// Package trace represents workload traces — sequences of batch jobs with
// submit times, durations and owning users — together with the cleaning
// filters and summary statistics the paper applies to the 2012 Swedish
// national-grid trace before modeling (Section IV).
package trace

import (
	"sort"
	"time"
)

// Job is a single batch job record. The paper's trace is comprised
// exclusively of single-processor bag-of-task jobs, but Procs is kept
// general.
type Job struct {
	// ID is a unique job identifier within the trace.
	ID int64
	// User is the grid user identity owning the job.
	User string
	// Submit is the submission time.
	Submit time.Time
	// Duration is the job's wall-clock execution time.
	Duration time.Duration
	// Procs is the number of processors the job occupies (>= 1).
	Procs int
	// Site optionally records the site where the job executed.
	Site string
	// Admin marks jobs submitted by system administrators or automated
	// monitoring, which the paper removes prior to modeling.
	Admin bool
}

// Usage returns the job's resource consumption in core-seconds.
func (j Job) Usage() float64 {
	p := j.Procs
	if p < 1 {
		p = 1
	}
	return j.Duration.Seconds() * float64(p)
}

// Trace is an ordered collection of jobs.
type Trace struct {
	Jobs []Job
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Sort orders jobs by submit time (stable, ties keep insertion order).
func (t *Trace) Sort() {
	sort.SliceStable(t.Jobs, func(i, j int) bool {
		return t.Jobs[i].Submit.Before(t.Jobs[j].Submit)
	})
}

// Span returns the first submit time and the duration from first submit to
// the last job's completion. An empty trace returns zeros.
func (t *Trace) Span() (start time.Time, span time.Duration) {
	if len(t.Jobs) == 0 {
		return time.Time{}, 0
	}
	start = t.Jobs[0].Submit
	end := start
	for _, j := range t.Jobs {
		if j.Submit.Before(start) {
			start = j.Submit
		}
		if fin := j.Submit.Add(j.Duration); fin.After(end) {
			end = fin
		}
	}
	return start, end.Sub(start)
}

// TotalUsage returns the summed core-seconds of all jobs.
func (t *Trace) TotalUsage() float64 {
	var u float64
	for _, j := range t.Jobs {
		u += j.Usage()
	}
	return u
}

// Users returns the distinct user names in first-appearance order.
func (t *Trace) Users() []string {
	seen := map[string]bool{}
	var out []string
	for _, j := range t.Jobs {
		if !seen[j.User] {
			seen[j.User] = true
			out = append(out, j.User)
		}
	}
	return out
}

// JobsOf returns the jobs owned by user, in trace order.
func (t *Trace) JobsOf(user string) []Job {
	var out []Job
	for _, j := range t.Jobs {
		if j.User == user {
			out = append(out, j)
		}
	}
	return out
}

// InterArrivals returns the successive submit-time gaps (in seconds) of the
// given user's jobs; pass "" for all jobs. The trace is assumed sorted.
func (t *Trace) InterArrivals(user string) []float64 {
	var prev time.Time
	first := true
	var out []float64
	for _, j := range t.Jobs {
		if user != "" && j.User != user {
			continue
		}
		if !first {
			out = append(out, j.Submit.Sub(prev).Seconds())
		}
		prev = j.Submit
		first = false
	}
	return out
}

// Durations returns the job durations (in seconds) of the given user's jobs;
// pass "" for all jobs.
func (t *Trace) Durations(user string) []float64 {
	var out []float64
	for _, j := range t.Jobs {
		if user != "" && j.User != user {
			continue
		}
		out = append(out, j.Duration.Seconds())
	}
	return out
}

// SubmitOffsets returns each job's submit time as seconds since the trace
// start, for the given user ("" for all). The trace is assumed sorted.
func (t *Trace) SubmitOffsets(user string) []float64 {
	if len(t.Jobs) == 0 {
		return nil
	}
	start, _ := t.Span()
	var out []float64
	for _, j := range t.Jobs {
		if user != "" && j.User != user {
			continue
		}
		out = append(out, j.Submit.Sub(start).Seconds())
	}
	return out
}

// Filter returns a new trace containing only jobs for which keep returns
// true.
func (t *Trace) Filter(keep func(Job) bool) *Trace {
	out := &Trace{}
	for _, j := range t.Jobs {
		if keep(j) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// CleanReport describes what Clean removed, mirroring the paper's "about 15%
// of the total number of jobs, representing 1.5% of the total usage, were
// removed prior to modeling".
type CleanReport struct {
	// JobsRemoved and UsageRemoved count the removed jobs and core-seconds.
	JobsRemoved  int
	UsageRemoved float64
	// JobFraction and UsageFraction are the removed fractions of the input.
	JobFraction, UsageFraction float64
}

// Clean removes administrator/monitoring jobs and zero-duration jobs (the
// paper treats the latter as cancelled/failed outliers) and returns the
// cleaned trace plus a removal report.
func Clean(t *Trace) (*Trace, CleanReport) {
	totalJobs := len(t.Jobs)
	totalUsage := t.TotalUsage()
	out := t.Filter(func(j Job) bool {
		return !j.Admin && j.Duration > 0
	})
	rep := CleanReport{
		JobsRemoved: totalJobs - len(out.Jobs),
	}
	rep.UsageRemoved = totalUsage - out.TotalUsage()
	if totalJobs > 0 {
		rep.JobFraction = float64(rep.JobsRemoved) / float64(totalJobs)
	}
	if totalUsage > 0 {
		rep.UsageFraction = rep.UsageRemoved / totalUsage
	}
	return out, rep
}

// TimeScale returns a copy of the trace compressed (factor < 1) or stretched
// (factor > 1) in time around the trace start: submit offsets and durations
// are both multiplied by factor. This is the projection the paper uses to map
// long-term usage patterns onto a six-hour test window, and the 10× rescale
// of the update-delay experiment.
func (t *Trace) TimeScale(factor float64) *Trace {
	if len(t.Jobs) == 0 || factor <= 0 {
		return &Trace{Jobs: append([]Job(nil), t.Jobs...)}
	}
	start, _ := t.Span()
	out := &Trace{Jobs: make([]Job, len(t.Jobs))}
	for i, j := range t.Jobs {
		off := time.Duration(float64(j.Submit.Sub(start)) * factor)
		j.Submit = start.Add(off)
		j.Duration = time.Duration(float64(j.Duration) * factor)
		out.Jobs[i] = j
	}
	return out
}

// ScaleDurations multiplies every job duration by factor (used to scale a
// synthetic trace's load up to a target utilization).
func (t *Trace) ScaleDurations(factor float64) *Trace {
	out := &Trace{Jobs: make([]Job, len(t.Jobs))}
	for i, j := range t.Jobs {
		j.Duration = time.Duration(float64(j.Duration) * factor)
		out.Jobs[i] = j
	}
	return out
}
