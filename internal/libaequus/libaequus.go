// Package libaequus is the unified system library resource management
// systems link against to obtain global fairshare functionality (Section
// III-A). It wraps clients for the FCS (fairshare values), IRS (identity
// mappings) and USS (usage reporting), and caches resolved fairshare values
// and identities for a configurable time — "which considerably reduces the
// amount of network traffic and computations required when batches of jobs
// are submitted and processed at the same time". The cache TTL is update
// delay component (III) in the paper's delay analysis.
package libaequus

import (
	"context"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/wire"
)

// FairshareSource provides pre-calculated fairshare values (the FCS, either
// in-process or over HTTP).
type FairshareSource interface {
	Priority(gridUser string) (wire.FairshareResponse, error)
}

// BatchFairshareSource is the optional batch extension of FairshareSource:
// many users resolved against one fairshare snapshot in one round trip.
// Both fcs.Service and httpapi.Client implement it; FairshareBatch falls
// back to per-user lookups when the source does not.
type BatchFairshareSource interface {
	PriorityBatch(gridUsers []string) (wire.FairshareBatchResponse, error)
}

// IdentitySource reverts local accounts to grid identities (the IRS).
type IdentitySource interface {
	Resolve(site, localUser string) (string, error)
}

// UsageSink receives job-completion usage reports (the USS).
type UsageSink interface {
	ReportJob(gridUser string, start time.Time, dur time.Duration, procs int)
}

// Config configures a libaequus client.
type Config struct {
	// Site is the local site name used in identity resolution.
	Site string
	// CacheTTL bounds how long fairshare values and identity mappings are
	// reused without consulting the services.
	CacheTTL time.Duration
	// Clock provides time (default wall clock).
	Clock simclock.Clock
	// Metrics receives the cache instruments (default registry if nil).
	Metrics *telemetry.Registry
	// Retry bounds transient-failure retries of source lookups (fairshare,
	// identity). The zero value performs exactly one attempt. Usage reports
	// are never retried here — they are not idempotent.
	Retry resilience.RetryPolicy
	// StaleIfError, when set, serves expired cache entries when the source
	// is unreachable after retries: a scheduler keeps prioritizing on the
	// last known fairshare values instead of failing, trading staleness for
	// availability (the same degradation the paper accepts for partial
	// exchanges). Stale serves are counted in Stats and
	// aequus_lib_stale_served_total.
	StaleIfError bool
	// Spans receives cache-fill trace spans (nil disables tracing). Cache
	// hits are never traced — they stay a mutex-guarded map lookup.
	Spans *span.Recorder
}

// Client is a libaequus instance. It is safe for concurrent use by a
// multi-threaded scheduler.
type Client struct {
	cfg Config
	fcs FairshareSource
	irs IdentitySource
	uss UsageSink

	mu        sync.Mutex
	fairshare map[string]cachedValue // grid user -> value
	ids       map[string]cachedID    // local user -> grid id
	stats     Stats

	mHits     *telemetry.CounterVec
	mMisses   *telemetry.CounterVec
	mExpiries *telemetry.CounterVec
	mStale    *telemetry.CounterVec
	mReports  *telemetry.Counter
	mSnapAge  *telemetry.Gauge
}

type cachedValue struct {
	resp wire.FairshareResponse
	at   time.Time
}

type cachedID struct {
	grid string
	at   time.Time
}

// Stats counts cache behaviour, useful for the cache-TTL ablation. An
// expiry is a miss whose entry existed but had outlived the TTL (every
// expiry is also counted as a miss).
type Stats struct {
	FairshareHits, FairshareMisses, FairshareExpiries int
	IdentityHits, IdentityMisses, IdentityExpiries    int
	// FairshareStale and IdentityStale count expired entries served because
	// the source was unreachable (Config.StaleIfError).
	FairshareStale, IdentityStale int
	UsageReports                  int
}

// New creates a client. Any source may be nil if unused (e.g. a pure
// reporting integration needs only the USS).
func New(cfg Config, fcs FairshareSource, irs IdentitySource, uss UsageSink) *Client {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	reg := telemetry.OrDefault(cfg.Metrics)
	return &Client{
		cfg:       cfg,
		fcs:       fcs,
		irs:       irs,
		uss:       uss,
		fairshare: map[string]cachedValue{},
		ids:       map[string]cachedID{},
		mHits: reg.CounterVec("aequus_lib_cache_hits_total",
			"libaequus cache hits, by cache (fairshare or identity).", "cache"),
		mMisses: reg.CounterVec("aequus_lib_cache_misses_total",
			"libaequus cache misses, by cache (fairshare or identity).", "cache"),
		mExpiries: reg.CounterVec("aequus_lib_cache_expiries_total",
			"libaequus cache misses caused by TTL expiry, by cache.", "cache"),
		mStale: reg.CounterVec("aequus_lib_stale_served_total",
			"Expired libaequus cache entries served because the source was unreachable, by cache.", "cache"),
		mReports: reg.Counter("aequus_lib_usage_reports_total",
			"Job-completion reports forwarded to the USS by libaequus."),
		mSnapAge: reg.Gauge("aequus_lib_snapshot_age_seconds",
			"Age of the fairshare snapshot behind the last value fetched from the source."),
	}
}

// noteSnapshotAge records how old the fairshare snapshot behind a fetched
// value was — the end-to-end update delay a scheduler actually observes.
func (c *Client) noteSnapshotAge(computedAt time.Time) {
	if computedAt.IsZero() {
		return
	}
	c.mSnapAge.Set(c.cfg.Clock.Now().Sub(computedAt).Seconds())
}

// retry runs fn under the configured retry policy (a zero policy performs
// exactly one attempt).
func (c *Client) retry(fn func() error) error {
	return c.cfg.Retry.Do(context.Background(), func(context.Context) error { return fn() })
}

// staleFairshare serves an expired cache entry after a source failure when
// StaleIfError allows it.
func (c *Client) staleFairshare(gridUser string) (wire.FairshareResponse, bool) {
	if !c.cfg.StaleIfError {
		return wire.FairshareResponse{}, false
	}
	c.mu.Lock()
	e, ok := c.fairshare[gridUser]
	if ok {
		c.stats.FairshareStale++
	}
	c.mu.Unlock()
	if ok {
		c.mStale.With("fairshare").Inc()
	}
	return e.resp, ok
}

// ResolveGridID maps a local system user to its grid identity, caching the
// result.
func (c *Client) ResolveGridID(localUser string) (string, error) {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	e, ok := c.ids[localUser]
	if ok && now.Sub(e.at) < c.cfg.CacheTTL {
		c.stats.IdentityHits++
		c.mu.Unlock()
		c.mHits.With("identity").Inc()
		return e.grid, nil
	}
	if ok {
		c.stats.IdentityExpiries++
		c.mExpiries.With("identity").Inc()
	}
	c.stats.IdentityMisses++
	c.mu.Unlock()
	c.mMisses.With("identity").Inc()

	var grid string
	err := c.retry(func() error {
		g, err := c.irs.Resolve(c.cfg.Site, localUser)
		grid = g
		return err
	})
	if err != nil {
		// Identity mappings essentially never change mid-outage: the expired
		// entry is almost certainly still right.
		if ok && c.cfg.StaleIfError {
			c.mu.Lock()
			c.stats.IdentityStale++
			c.mu.Unlock()
			c.mStale.With("identity").Inc()
			return e.grid, nil
		}
		return "", err
	}
	c.mu.Lock()
	c.ids[localUser] = cachedID{grid: grid, at: now}
	c.mu.Unlock()
	return grid, nil
}

// Fairshare returns the global fairshare response for a grid user, cached.
func (c *Client) Fairshare(gridUser string) (wire.FairshareResponse, error) {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	e, ok := c.fairshare[gridUser]
	if ok && now.Sub(e.at) < c.cfg.CacheTTL {
		c.stats.FairshareHits++
		c.mu.Unlock()
		c.mHits.With("fairshare").Inc()
		return e.resp, nil
	}
	if ok {
		c.stats.FairshareExpiries++
		c.mExpiries.With("fairshare").Inc()
	}
	c.stats.FairshareMisses++
	c.mu.Unlock()
	c.mMisses.With("fairshare").Inc()

	_, sp := span.Start(span.WithRecorder(context.Background(), c.cfg.Spans),
		"lib.fairshare_fetch")
	sp.SetAttr("user", gridUser)
	var resp wire.FairshareResponse
	err := c.retry(func() error {
		r, err := c.fcs.Priority(gridUser)
		resp = r
		return err
	})
	sp.SetErr(err)
	sp.End()
	if err != nil {
		if stale, ok := c.staleFairshare(gridUser); ok {
			return stale, nil
		}
		return wire.FairshareResponse{}, err
	}
	c.noteSnapshotAge(resp.ComputedAt)
	c.mu.Lock()
	c.fairshare[gridUser] = cachedValue{resp: resp, at: now}
	c.mu.Unlock()
	return resp, nil
}

// FairshareBatch returns fairshare responses for many grid users at once:
// cached entries are served locally, and all misses are fetched in a single
// round trip when the source supports batching (falling back to per-user
// lookups otherwise), then filled into the per-user cache. Users unknown to
// the policy are simply absent from the result map. This is how a resource
// manager reprioritizes a whole queue without N network round trips.
func (c *Client) FairshareBatch(gridUsers []string) (map[string]wire.FairshareResponse, error) {
	now := c.cfg.Clock.Now()
	out := make(map[string]wire.FairshareResponse, len(gridUsers))
	var misses []string
	queued := map[string]bool{}
	var hits, expiries int
	c.mu.Lock()
	for _, u := range gridUsers {
		if _, done := out[u]; done || queued[u] {
			continue
		}
		e, ok := c.fairshare[u]
		if ok && now.Sub(e.at) < c.cfg.CacheTTL {
			c.stats.FairshareHits++
			hits++
			out[u] = e.resp
			continue
		}
		if ok {
			c.stats.FairshareExpiries++
			expiries++
		}
		c.stats.FairshareMisses++
		queued[u] = true
		misses = append(misses, u)
	}
	c.mu.Unlock()
	c.mHits.With("fairshare").Add(float64(hits))
	c.mExpiries.With("fairshare").Add(float64(expiries))
	c.mMisses.With("fairshare").Add(float64(len(misses)))
	if len(misses) == 0 {
		return out, nil
	}
	_, sp := span.Start(span.WithRecorder(context.Background(), c.cfg.Spans),
		"lib.cache_fill")
	sp.SetAttr("cache", "fairshare")
	sp.SetAttrInt("hits", int64(hits))
	sp.SetAttrInt("misses", int64(len(misses)))
	defer sp.End()
	if bs, ok := c.fcs.(BatchFairshareSource); ok {
		var resp wire.FairshareBatchResponse
		err := c.retry(func() error {
			r, err := bs.PriorityBatch(misses)
			resp = r
			return err
		})
		if err != nil {
			sp.SetErr(err)
			return c.staleBatch(out, misses, err)
		}
		c.noteSnapshotAge(resp.ComputedAt)
		c.mu.Lock()
		for _, e := range resp.Entries {
			c.fairshare[e.User] = cachedValue{resp: e, at: now}
			out[e.User] = e
		}
		c.mu.Unlock()
		return out, nil
	}
	for _, u := range misses {
		var resp wire.FairshareResponse
		err := c.retry(func() error {
			r, err := c.fcs.Priority(u)
			resp = r
			return err
		})
		if err != nil {
			sp.SetErr(err)
			return c.staleBatch(out, misses, err)
		}
		c.noteSnapshotAge(resp.ComputedAt)
		c.mu.Lock()
		c.fairshare[u] = cachedValue{resp: resp, at: now}
		c.mu.Unlock()
		out[u] = resp
	}
	return out, nil
}

// staleBatch completes a failed batch fetch from expired cache entries. The
// fallback only succeeds when every outstanding user has some cached value —
// a partially answerable batch still fails, so a caller never mistakes a
// half-empty map for "those users are unknown to the policy".
func (c *Client) staleBatch(out map[string]wire.FairshareResponse, misses []string, err error) (map[string]wire.FairshareResponse, error) {
	if !c.cfg.StaleIfError {
		return nil, err
	}
	c.mu.Lock()
	served := 0
	for _, u := range misses {
		if _, done := out[u]; done {
			continue
		}
		e, ok := c.fairshare[u]
		if !ok {
			c.mu.Unlock()
			return nil, err
		}
		out[u] = e.resp
		served++
	}
	c.stats.FairshareStale += served
	c.mu.Unlock()
	c.mStale.With("fairshare").Add(float64(served))
	return out, nil
}

// PrioritiesForLocalUsers is the batch scheduler call-out: it resolves each
// local account to a grid identity (cached) and fetches all fairshare
// values in one batch, returning projected priorities keyed by local user.
// Accounts that fail identity resolution or are unknown to the policy are
// absent from the result.
func (c *Client) PrioritiesForLocalUsers(localUsers []string) (map[string]float64, error) {
	grid := make(map[string]string, len(localUsers)) // local -> grid
	var gridUsers []string
	seen := map[string]bool{}
	for _, lu := range localUsers {
		if _, done := grid[lu]; done {
			continue
		}
		g, err := c.ResolveGridID(lu)
		if err != nil {
			continue
		}
		grid[lu] = g
		if !seen[g] {
			seen[g] = true
			gridUsers = append(gridUsers, g)
		}
	}
	vals, err := c.FairshareBatch(gridUsers)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(grid))
	for lu, g := range grid {
		if resp, ok := vals[g]; ok {
			out[lu] = resp.Value
		}
	}
	return out, nil
}

// PriorityForLocalUser is the scheduler call-out: it resolves the local
// account to a grid identity and returns the projected fairshare priority in
// [0,1] — the value that replaces the local fairshare factor in SLURM's
// multifactor plugin and Maui's patched priority calculation.
func (c *Client) PriorityForLocalUser(localUser string) (float64, error) {
	grid, err := c.ResolveGridID(localUser)
	if err != nil {
		return 0, err
	}
	resp, err := c.Fairshare(grid)
	if err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// JobComplete is the job-completion call-out: it reports the finished job's
// usage to the USS under the owner's grid identity.
func (c *Client) JobComplete(localUser string, start time.Time, dur time.Duration, procs int) error {
	grid, err := c.ResolveGridID(localUser)
	if err != nil {
		return err
	}
	if c.uss != nil {
		c.uss.ReportJob(grid, start, dur, procs)
	}
	c.mu.Lock()
	c.stats.UsageReports++
	c.mu.Unlock()
	c.mReports.Inc()
	return nil
}

// FlushCaches drops all cached values (used when an administrator changes
// policy and wants immediate effect).
func (c *Client) FlushCaches() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fairshare = map[string]cachedValue{}
	c.ids = map[string]cachedID{}
}

// Stats returns a snapshot of cache statistics.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
