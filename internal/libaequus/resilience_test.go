package libaequus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// downableFCS serves fixed values until taken down.
type downableFCS struct {
	values map[string]float64
	down   bool
	calls  int
}

func (f *downableFCS) Priority(user string) (wire.FairshareResponse, error) {
	f.calls++
	if f.down {
		return wire.FairshareResponse{}, errors.New("fcs unreachable")
	}
	v, ok := f.values[user]
	if !ok {
		return wire.FairshareResponse{}, errors.New("unknown user")
	}
	return wire.FairshareResponse{User: user, Value: v, ComputedAt: t0}, nil
}

// flakyIRS fails the first failN resolutions, then succeeds.
type flakyIRS struct{ calls, failN int }

func (f *flakyIRS) Resolve(site, local string) (string, error) {
	f.calls++
	if f.calls <= f.failN {
		return "", errors.New("irs transient failure")
	}
	return "grid-" + local + "@" + site, nil
}

func immediateRetry(attempts int) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Nanosecond,
		Jitter:      -1,
	}
}

func TestLibRetriesTransientSourceFailures(t *testing.T) {
	irs := &flakyIRS{failN: 2}
	c := New(Config{
		Site:     "hpc2n",
		CacheTTL: time.Minute,
		Clock:    simclock.NewSim(t0),
		Metrics:  telemetry.NewRegistry(),
		Retry:    immediateRetry(3),
	}, &downableFCS{values: map[string]float64{"grid-alice@hpc2n": 0.7}}, irs, nil)

	v, err := c.PriorityForLocalUser("alice")
	if err != nil || v != 0.7 {
		t.Fatalf("PriorityForLocalUser = %g, %v; want 0.7 after retries", v, err)
	}
	if irs.calls != 3 {
		t.Errorf("IRS saw %d calls, want 3 (2 transient failures + success)", irs.calls)
	}
}

func TestLibStaleFallbackServesExpiredEntries(t *testing.T) {
	clock := simclock.NewSim(t0)
	fcs := &downableFCS{values: map[string]float64{"grid-alice@hpc2n": 0.7}}
	c := New(Config{
		Site:         "hpc2n",
		CacheTTL:     time.Minute,
		Clock:        clock,
		Metrics:      telemetry.NewRegistry(),
		StaleIfError: true,
	}, fcs, &flakyIRS{}, nil)

	if _, err := c.PriorityForLocalUser("alice"); err != nil {
		t.Fatal(err)
	}

	// TTL expires, then the FCS goes down: the expired entry keeps serving.
	clock.Advance(2 * time.Minute)
	fcs.down = true
	v, err := c.PriorityForLocalUser("alice")
	if err != nil || v != 0.7 {
		t.Fatalf("stale fallback = %g, %v; want 0.7, nil", v, err)
	}
	st := c.Stats()
	if st.FairshareStale != 1 {
		t.Errorf("FairshareStale = %d, want 1", st.FairshareStale)
	}

	// A user never cached still fails: there is nothing stale to serve.
	if _, err := c.Fairshare("grid-bob@hpc2n"); err == nil {
		t.Error("uncached user served during outage")
	}

	// Recovery: fresh values replace stale ones.
	fcs.down = false
	clock.Advance(2 * time.Minute)
	if v, err := c.PriorityForLocalUser("alice"); err != nil || v != 0.7 {
		t.Fatalf("post-recovery = %g, %v", v, err)
	}
	if got := c.Stats().FairshareStale; got != 1 {
		t.Errorf("FairshareStale after recovery = %d, want still 1", got)
	}
}

func TestLibStaleFallbackDisabledByDefault(t *testing.T) {
	clock := simclock.NewSim(t0)
	fcs := &downableFCS{values: map[string]float64{"grid-alice@hpc2n": 0.7}}
	c := New(Config{
		Site:     "hpc2n",
		CacheTTL: time.Minute,
		Clock:    clock,
		Metrics:  telemetry.NewRegistry(),
	}, fcs, &flakyIRS{}, nil)
	if _, err := c.PriorityForLocalUser("alice"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	fcs.down = true
	if _, err := c.PriorityForLocalUser("alice"); err == nil {
		t.Error("expired entry served without StaleIfError")
	}
}

func TestLibStaleFallbackBatch(t *testing.T) {
	clock := simclock.NewSim(t0)
	fcs := &downableFCS{values: map[string]float64{"a": 0.6, "b": 0.4}}
	c := New(Config{
		Site:         "hpc2n",
		CacheTTL:     time.Minute,
		Clock:        clock,
		Metrics:      telemetry.NewRegistry(),
		StaleIfError: true,
	}, fcs, &flakyIRS{}, nil)

	if _, err := c.FairshareBatch([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	fcs.down = true

	// Both users have stale entries: the batch succeeds on them.
	got, err := c.FairshareBatch([]string{"a", "b"})
	if err != nil {
		t.Fatalf("stale batch: %v", err)
	}
	if got["a"].Value != 0.6 || got["b"].Value != 0.4 {
		t.Errorf("stale batch = %+v", got)
	}
	if st := c.Stats(); st.FairshareStale != 2 {
		t.Errorf("FairshareStale = %d, want 2", st.FairshareStale)
	}

	// A batch including a never-cached user fails whole: the caller must
	// not mistake the gap for "unknown to the policy".
	if _, err := c.FairshareBatch([]string{"a", "nobody"}); err == nil {
		t.Error("partially answerable batch did not fail")
	}
}
