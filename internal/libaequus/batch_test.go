package libaequus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/wire"
)

// fakeBatchFCS implements both the per-user and the batch source.
type fakeBatchFCS struct {
	values     map[string]float64
	calls      int
	batchCalls int
	lastBatch  []string
	batchErr   error
}

func (f *fakeBatchFCS) Priority(user string) (wire.FairshareResponse, error) {
	f.calls++
	v, ok := f.values[user]
	if !ok {
		return wire.FairshareResponse{}, errors.New("unknown user")
	}
	return wire.FairshareResponse{User: user, Value: v, ComputedAt: t0}, nil
}

func (f *fakeBatchFCS) PriorityBatch(users []string) (wire.FairshareBatchResponse, error) {
	f.batchCalls++
	f.lastBatch = append([]string(nil), users...)
	if f.batchErr != nil {
		return wire.FairshareBatchResponse{}, f.batchErr
	}
	resp := wire.FairshareBatchResponse{Projection: "percental", ComputedAt: t0}
	for _, u := range users {
		v, ok := f.values[u]
		if !ok {
			resp.Missing = append(resp.Missing, u)
			continue
		}
		resp.Entries = append(resp.Entries, wire.FairshareResponse{User: u, Value: v, ComputedAt: t0})
	}
	return resp, nil
}

func newBatchClient(clock simclock.Clock, ttl time.Duration) (*Client, *fakeBatchFCS, *fakeIRS) {
	fcs := &fakeBatchFCS{values: map[string]float64{
		"grid-a@s": 0.8, "grid-b@s": 0.5, "grid-c@s": 0.2,
	}}
	irs := &fakeIRS{}
	c := New(Config{Site: "s", CacheTTL: ttl, Clock: clock}, fcs, irs, nil)
	return c, fcs, irs
}

func TestFairshareBatchSingleRoundTrip(t *testing.T) {
	c, fcs, _ := newBatchClient(simclock.NewSim(t0), time.Minute)
	// Duplicates collapse and unknown users are simply absent.
	got, err := c.FairshareBatch([]string{"grid-a@s", "grid-b@s", "grid-a@s", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if fcs.batchCalls != 1 || fcs.calls != 0 {
		t.Errorf("calls = batch %d, single %d; want one batch, zero singles", fcs.batchCalls, fcs.calls)
	}
	if len(fcs.lastBatch) != 3 {
		t.Errorf("batch request = %v, want 3 deduped users", fcs.lastBatch)
	}
	if len(got) != 2 || got["grid-a@s"].Value != 0.8 || got["grid-b@s"].Value != 0.5 {
		t.Errorf("batch result = %v", got)
	}
	if _, ok := got["ghost"]; ok {
		t.Error("unknown user present in result")
	}
	// The batch filled the per-user cache: follow-up singles are all hits.
	if _, err := c.Fairshare("grid-a@s"); err != nil {
		t.Fatal(err)
	}
	if fcs.calls != 0 {
		t.Errorf("single call after batch fill = %d, want 0", fcs.calls)
	}
	if st := c.Stats(); st.FairshareHits != 1 || st.FairshareMisses != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFairshareBatchServesCachedEntries(t *testing.T) {
	c, fcs, _ := newBatchClient(simclock.NewSim(t0), time.Minute)
	if _, err := c.Fairshare("grid-a@s"); err != nil {
		t.Fatal(err)
	}
	fcs.calls = 0
	got, err := c.FairshareBatch([]string{"grid-a@s", "grid-c@s"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("result = %v", got)
	}
	// Only the miss goes over the wire.
	if fcs.batchCalls != 1 || len(fcs.lastBatch) != 1 || fcs.lastBatch[0] != "grid-c@s" {
		t.Errorf("batch request = %v (%d calls), want just grid-c@s", fcs.lastBatch, fcs.batchCalls)
	}
}

func TestFairshareBatchAllCachedSkipsFetch(t *testing.T) {
	c, fcs, _ := newBatchClient(simclock.NewSim(t0), time.Minute)
	if _, err := c.FairshareBatch([]string{"grid-a@s", "grid-b@s"}); err != nil {
		t.Fatal(err)
	}
	fcs.batchCalls = 0
	if _, err := c.FairshareBatch([]string{"grid-a@s", "grid-b@s"}); err != nil {
		t.Fatal(err)
	}
	if fcs.batchCalls != 0 || fcs.calls != 0 {
		t.Errorf("fully cached batch still fetched: batch %d, single %d", fcs.batchCalls, fcs.calls)
	}
}

func TestFairshareBatchFallsBackToSingles(t *testing.T) {
	// A source that only implements FairshareSource.
	fcs := &fakeFCS{values: map[string]float64{"grid-a@s": 0.8, "grid-b@s": 0.5}}
	c := New(Config{Site: "s", CacheTTL: time.Minute, Clock: simclock.NewSim(t0)}, fcs, &fakeIRS{}, nil)
	got, err := c.FairshareBatch([]string{"grid-a@s", "grid-b@s"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || fcs.calls != 2 {
		t.Errorf("fallback result = %v (%d calls)", got, fcs.calls)
	}
}

func TestFairshareBatchErrorPropagates(t *testing.T) {
	c, fcs, _ := newBatchClient(simclock.NewSim(t0), time.Minute)
	fcs.batchErr = errors.New("fcs down")
	if _, err := c.FairshareBatch([]string{"grid-a@s"}); err == nil {
		t.Error("batch source failure swallowed")
	}
}

func TestPrioritiesForLocalUsers(t *testing.T) {
	c, fcs, irs := newBatchClient(simclock.NewSim(t0), time.Minute)
	got, err := c.PrioritiesForLocalUsers([]string{"a", "b", "c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 0.8, "b": 0.5, "c": 0.2}
	if len(got) != len(want) {
		t.Fatalf("priorities = %v, want %v", got, want)
	}
	for lu, v := range want {
		if got[lu] != v {
			t.Errorf("priority[%s] = %g, want %g", lu, got[lu], v)
		}
	}
	// One resolution per distinct local user, one fairshare round trip total.
	if irs.calls != 3 {
		t.Errorf("IRS calls = %d, want 3", irs.calls)
	}
	if fcs.batchCalls != 1 || fcs.calls != 0 {
		t.Errorf("FCS calls = batch %d, single %d; want one batch", fcs.batchCalls, fcs.calls)
	}
}

func TestPrioritiesForLocalUsersSkipsUnresolvable(t *testing.T) {
	clock := simclock.NewSim(t0)
	fcs := &fakeBatchFCS{values: map[string]float64{"grid-a@s": 0.8}}
	irs := &fakeIRS{fail: true}
	c := New(Config{Site: "s", CacheTTL: time.Minute, Clock: clock}, fcs, irs, nil)
	got, err := c.PrioritiesForLocalUsers([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("unresolvable user produced priorities: %v", got)
	}
}
