package libaequus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/wire"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

type fakeFCS struct {
	values map[string]float64
	calls  int
}

func (f *fakeFCS) Priority(user string) (wire.FairshareResponse, error) {
	f.calls++
	v, ok := f.values[user]
	if !ok {
		return wire.FairshareResponse{}, errors.New("unknown user")
	}
	return wire.FairshareResponse{User: user, Value: v, ComputedAt: t0}, nil
}

type fakeIRS struct {
	calls int
	fail  bool
}

func (f *fakeIRS) Resolve(site, local string) (string, error) {
	f.calls++
	if f.fail {
		return "", errors.New("irs down")
	}
	return "grid-" + local + "@" + site, nil
}

type fakeUSS struct {
	reports []string
}

func (f *fakeUSS) ReportJob(user string, start time.Time, dur time.Duration, procs int) {
	f.reports = append(f.reports, user)
}

func newClient(clock simclock.Clock, ttl time.Duration) (*Client, *fakeFCS, *fakeIRS, *fakeUSS) {
	fcs := &fakeFCS{values: map[string]float64{"grid-alice@hpc2n": 0.7}}
	irs := &fakeIRS{}
	uss := &fakeUSS{}
	c := New(Config{Site: "hpc2n", CacheTTL: ttl, Clock: clock}, fcs, irs, uss)
	return c, fcs, irs, uss
}

func TestPriorityForLocalUser(t *testing.T) {
	c, _, _, _ := newClient(simclock.NewSim(t0), time.Minute)
	v, err := c.PriorityForLocalUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.7 {
		t.Errorf("priority = %g", v)
	}
}

func TestCachingReducesServiceTraffic(t *testing.T) {
	clock := simclock.NewSim(t0)
	c, fcs, irs, _ := newClient(clock, time.Minute)
	// A batch of 100 priority queries for the same user — the scenario the
	// paper's cache is designed for.
	for i := 0; i < 100; i++ {
		if _, err := c.PriorityForLocalUser("alice"); err != nil {
			t.Fatal(err)
		}
	}
	if fcs.calls != 1 || irs.calls != 1 {
		t.Errorf("service calls = FCS %d, IRS %d; want 1 each", fcs.calls, irs.calls)
	}
	st := c.Stats()
	if st.FairshareHits != 99 || st.FairshareMisses != 1 {
		t.Errorf("fairshare stats = %+v", st)
	}
	// TTL expiry triggers a refresh.
	clock.Advance(2 * time.Minute)
	c.PriorityForLocalUser("alice")
	if fcs.calls != 2 || irs.calls != 2 {
		t.Errorf("post-expiry calls = FCS %d, IRS %d", fcs.calls, irs.calls)
	}
}

func TestJobCompleteReportsGridIdentity(t *testing.T) {
	c, _, _, uss := newClient(simclock.NewSim(t0), time.Minute)
	if err := c.JobComplete("alice", t0, time.Hour, 2); err != nil {
		t.Fatal(err)
	}
	if len(uss.reports) != 1 || uss.reports[0] != "grid-alice@hpc2n" {
		t.Errorf("reports = %v", uss.reports)
	}
	if c.Stats().UsageReports != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestIRSFailurePropagates(t *testing.T) {
	clock := simclock.NewSim(t0)
	fcs := &fakeFCS{values: map[string]float64{}}
	irs := &fakeIRS{fail: true}
	c := New(Config{Site: "s", CacheTTL: time.Minute, Clock: clock}, fcs, irs, nil)
	if _, err := c.PriorityForLocalUser("alice"); err == nil {
		t.Error("IRS failure swallowed")
	}
	if err := c.JobComplete("alice", t0, time.Hour, 1); err == nil {
		t.Error("IRS failure swallowed on completion")
	}
}

func TestUnknownUserError(t *testing.T) {
	c, _, _, _ := newClient(simclock.NewSim(t0), time.Minute)
	if _, err := c.PriorityForLocalUser("mallory"); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestFlushCaches(t *testing.T) {
	c, fcs, _, _ := newClient(simclock.NewSim(t0), time.Hour)
	c.PriorityForLocalUser("alice")
	c.FlushCaches()
	c.PriorityForLocalUser("alice")
	if fcs.calls != 2 {
		t.Errorf("FCS calls after flush = %d, want 2", fcs.calls)
	}
}

func TestNilUsageSinkTolerated(t *testing.T) {
	clock := simclock.NewSim(t0)
	fcs := &fakeFCS{values: map[string]float64{}}
	irs := &fakeIRS{}
	c := New(Config{Site: "s", CacheTTL: time.Minute, Clock: clock}, fcs, irs, nil)
	if err := c.JobComplete("alice", t0, time.Hour, 1); err != nil {
		t.Errorf("nil sink err = %v", err)
	}
}

func TestZeroTTLDisablesCaching(t *testing.T) {
	clock := simclock.NewSim(t0)
	c, fcs, _, _ := newClient(clock, 0)
	c.PriorityForLocalUser("alice")
	c.PriorityForLocalUser("alice")
	if fcs.calls != 2 {
		t.Errorf("FCS calls with zero TTL = %d, want 2", fcs.calls)
	}
}
