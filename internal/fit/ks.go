package fit

import (
	"math"
	"sort"

	"repro/internal/dist"
)

// KolmogorovSmirnov returns the one-sample Kolmogorov-Smirnov statistic
//
//	D = sup_x | F_n(x) - F(x) |
//
// between the empirical distribution of xs and the model d. This is the
// goodness-of-fit number reported in the KS columns of Tables II and III.
func KolmogorovSmirnov(xs []float64, d dist.Dist) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var dmax float64
	for i, x := range s {
		f := d.CDF(x)
		lo := float64(i) / float64(n)   // F_n just below x
		hi := float64(i+1) / float64(n) // F_n at x
		if v := math.Abs(f - lo); v > dmax {
			dmax = v
		}
		if v := math.Abs(f - hi); v > dmax {
			dmax = v
		}
	}
	return dmax
}

// KolmogorovSmirnovTwoSample returns the two-sample KS statistic between xs
// and ys.
func KolmogorovSmirnovTwoSample(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var dmax float64
	for i < len(a) && j < len(b) {
		// Advance past all points equal to the smaller current value; on
		// ties both samples advance together so identical samples give D=0.
		x := math.Min(a[i], b[j])
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if v := math.Abs(fa - fb); v > dmax {
			dmax = v
		}
	}
	return dmax
}

// KSPValue approximates the asymptotic p-value of a one-sample KS statistic
// d with sample size n using the Kolmogorov distribution series.
func KSPValue(d float64, n int) float64 {
	if n <= 0 || math.IsNaN(d) {
		return math.NaN()
	}
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	var sum float64
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * lambda * lambda * float64(k) * float64(k))
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
