package fit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
)

func TestAndersonDarlingSelfFitSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d, _ := dist.NewWeibull(100, 1.3)
	xs := dist.SampleN(d, rng, 3000)
	a2 := AndersonDarling(xs, d)
	// For a correct model A² concentrates around ~1; 2.5 is a loose cap.
	if math.IsNaN(a2) || a2 > 2.5 {
		t.Errorf("self-fit A² = %g", a2)
	}
}

func TestAndersonDarlingDetectsWrongModel(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	exp, _ := dist.NewExponential(1)
	norm, _ := dist.NewNormal(1, 1)
	xs := dist.SampleN(exp, rng, 2000)
	good := AndersonDarling(xs, exp)
	bad := AndersonDarling(xs, norm)
	if bad < 10*good {
		t.Errorf("wrong model A² = %g not clearly worse than %g", bad, good)
	}
	if !math.IsNaN(AndersonDarling(nil, exp)) {
		t.Error("empty sample should give NaN")
	}
}

func TestChiSquareSelfFit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d, _ := dist.NewGamma(3, 2)
	xs := dist.SampleN(d, rng, 5000)
	stat, dof := ChiSquare(xs, d, 20)
	if dof != 20-1-2 {
		t.Errorf("dof = %d", dof)
	}
	p := ChiSquarePValue(stat, dof)
	if p < 0.001 {
		t.Errorf("self-fit rejected: stat=%g p=%g", stat, p)
	}
}

func TestChiSquareDetectsWrongModel(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	d, _ := dist.NewExponential(0.2)
	wrong, _ := dist.NewNormal(5, 5)
	xs := dist.SampleN(d, rng, 5000)
	stat, dof := ChiSquare(xs, wrong, 20)
	p := ChiSquarePValue(stat, dof)
	if p > 1e-6 {
		t.Errorf("wrong model accepted: stat=%g p=%g", stat, p)
	}
}

func TestChiSquareDegenerateInputs(t *testing.T) {
	d, _ := dist.NewNormal(0, 1)
	if stat, _ := ChiSquare(nil, d, 10); !math.IsNaN(stat) {
		t.Error("empty sample")
	}
	if stat, _ := ChiSquare([]float64{1}, d, 1); !math.IsNaN(stat) {
		t.Error("one bin")
	}
	if !math.IsNaN(ChiSquarePValue(math.NaN(), 5)) {
		t.Error("NaN stat")
	}
	if !math.IsNaN(ChiSquarePValue(1, 0)) {
		t.Error("zero dof")
	}
}

func TestChiSquarePValueKnownValues(t *testing.T) {
	// P(X²_1 >= 3.841) ≈ 0.05; P(X²_2 >= 5.991) ≈ 0.05.
	if p := ChiSquarePValue(3.841, 1); math.Abs(p-0.05) > 0.002 {
		t.Errorf("p(3.841, 1) = %g", p)
	}
	if p := ChiSquarePValue(5.991, 2); math.Abs(p-0.05) > 0.002 {
		t.Errorf("p(5.991, 2) = %g", p)
	}
	if p := ChiSquarePValue(0, 3); p != 1 {
		t.Errorf("p(0) = %g", p)
	}
}
