package fit

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	x, v := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Errorf("minimum at %v, want (3,-1)", x)
	}
	if v > 1e-7 {
		t.Errorf("minimum value %g", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, v := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000})
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Errorf("minimum at %v, want (1,1), value %g", x, v)
	}
}

func TestNelderMeadInfeasibleRegions(t *testing.T) {
	// +Inf outside x>0 simulates parameter-domain constraints.
	f := func(x []float64) float64 {
		if x[0] <= 0 {
			return math.Inf(1)
		}
		return (math.Log(x[0]) - 2) * (math.Log(x[0]) - 2)
	}
	x, _ := NelderMead(f, []float64{1}, NelderMeadOptions{MaxIter: 2000})
	if math.Abs(x[0]-math.E*math.E) > 0.05 {
		t.Errorf("minimum at %v, want e^2 ≈ 7.389", x)
	}
}

func TestNelderMeadOneDimension(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 42) }
	x, _ := NelderMead(f, []float64{0}, NelderMeadOptions{MaxIter: 2000})
	if math.Abs(x[0]-42) > 1e-3 {
		t.Errorf("minimum at %v, want 42", x)
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	called := false
	f := func(x []float64) float64 { called = true; return 7 }
	x, v := NelderMead(f, nil, NelderMeadOptions{})
	if x != nil || v != 7 || !called {
		t.Errorf("empty input: x=%v v=%v called=%v", x, v, called)
	}
}
