package fit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-4.571428571) > 1e-6 {
		t.Errorf("Variance = %g", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Median(xs) != 3 {
		t.Errorf("Median = %g", Median(xs))
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Q(0) = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("Q(1) = %g", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("Q(0.25) = %g", q)
	}
	if q := Quantile([]float64{1, 2}, 0.5); q != 1.5 {
		t.Errorf("even median = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("ECDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	xs, fs := e.Points()
	if len(xs) != 3 || xs[1] != 2 || fs[1] != 0.75 {
		t.Errorf("Points = %v %v", xs, fs)
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestECDFPropertyMonotone(t *testing.T) {
	f := func(data []float64) bool {
		if len(data) == 0 {
			return true
		}
		e := NewECDF(data)
		prev := -1.0
		for _, x := range data {
			v := e.At(x)
			if v < 0 || v > 1 {
				return false
			}
			_ = prev
		}
		// sample max must map to 1
		mx := data[0]
		for _, x := range data {
			if x > mx {
				mx = x
			}
		}
		return e.At(mx) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 0.5, 1.5, 2.5, 9.9, -5, 15}, 0, 10, 5)
	if len(edges) != 5 || len(counts) != 5 {
		t.Fatalf("lengths %d %d", len(edges), len(counts))
	}
	if edges[0] != 0 || edges[4] != 8 {
		t.Errorf("edges = %v", edges)
	}
	// -5 clamps into bin 0; 15 clamps into bin 4.
	want := []int{4, 1, 0, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
			break
		}
	}
	if e, c := Histogram(nil, 0, 0, 5); e != nil || c != nil {
		t.Error("degenerate range should return nil")
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i) / 100 // uniform on [0,10)
	}
	_, counts := Histogram(xs, 0, 10, 20)
	dens := HistogramDensity(counts, 0.5, len(xs))
	var integral float64
	for _, d := range dens {
		integral += d * 0.5
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Errorf("density integrates to %g", integral)
	}
}

func TestAutocorrelationDetectsPeriod(t *testing.T) {
	// A sine with period 25 must show an ACF peak at lag 25.
	n := 500
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 25)
	}
	acf := Autocorrelation(xs, 60)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Errorf("ACF(0) = %g, want 1", acf[0])
	}
	lag, v := DominantLag(acf, 10)
	if lag != 25 {
		t.Errorf("dominant lag = %d (r=%g), want 25", lag, v)
	}
	if v < 0.9 {
		t.Errorf("peak correlation = %g, want ~1", v)
	}
}

func TestAutocorrelationWhiteNoiseIsFlat(t *testing.T) {
	xs := make([]float64, 2000)
	seed := uint64(12345)
	for i := range xs {
		seed = seed*6364136223846793005 + 1442695040888963407
		xs[i] = float64(seed>>11) / float64(1<<53)
	}
	acf := Autocorrelation(xs, 50)
	for lag := 1; lag <= 50; lag++ {
		if math.Abs(acf[lag]) > 0.1 {
			t.Errorf("white-noise ACF(%d) = %g", lag, acf[lag])
		}
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if acf := Autocorrelation(nil, 5); acf != nil {
		t.Error("empty input should return nil")
	}
	acf := Autocorrelation([]float64{7, 7, 7}, 2)
	if acf[0] != 1 {
		t.Errorf("constant series ACF(0) = %g", acf[0])
	}
	// maxLag beyond length clamps
	acf = Autocorrelation([]float64{1, 2}, 100)
	if len(acf) != 2 {
		t.Errorf("clamped ACF length = %d", len(acf))
	}
}
