package fit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
)

func TestFitFamilyRecoversNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src, _ := dist.NewNormal(10, 3)
	data := dist.SampleN(src, rng, 4000)
	fam, _ := dist.FamilyByName("Normal")
	r, err := FitFamily(fam, data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := r.Dist.Params()
	if math.Abs(p[0]-10) > 0.2 {
		t.Errorf("fitted mu = %g, want ~10", p[0])
	}
	if math.Abs(p[1]-3) > 0.2 {
		t.Errorf("fitted sigma = %g, want ~3", p[1])
	}
	if r.KS > 0.03 {
		t.Errorf("KS = %g", r.KS)
	}
}

func TestFitFamilyRecoversWeibull(t *testing.T) {
	// The Table III U30 fit: Weibull(λ=5.49e4, k=0.637).
	rng := rand.New(rand.NewSource(2))
	src, _ := dist.NewWeibull(5.49e4, 0.637)
	data := dist.SampleN(src, rng, 4000)
	fam, _ := dist.FamilyByName("Weibull")
	r, err := FitFamily(fam, data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := r.Dist.Params()
	if math.Abs(p[0]-5.49e4)/5.49e4 > 0.15 {
		t.Errorf("fitted lambda = %g, want ~5.49e4", p[0])
	}
	if math.Abs(p[1]-0.637) > 0.05 {
		t.Errorf("fitted k = %g, want ~0.637", p[1])
	}
}

func TestFitFamilyRecoversGEV(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src, _ := dist.NewGEV(0.195, 29.1, 200)
	data := dist.SampleN(src, rng, 4000)
	fam, _ := dist.FamilyByName("GEV")
	r, err := FitFamily(fam, data, Options{MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if r.KS > 0.03 {
		t.Errorf("GEV self-fit KS = %g", r.KS)
	}
	p := r.Dist.Params()
	if math.Abs(p[0]-0.195) > 0.1 {
		t.Errorf("fitted shape = %g, want ~0.195", p[0])
	}
}

func TestBestSelectsPlausibleModelForExponentialData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src, _ := dist.NewExponential(0.01)
	data := dist.SampleN(src, rng, 1500)
	r, err := Best(data, Options{MaxSample: 800})
	if err != nil {
		t.Fatal(err)
	}
	// The winner must fit essentially as well as the truth; several families
	// nest the exponential so we assert quality, not identity.
	if r.KS > 0.05 {
		t.Errorf("best fit (%s) KS = %g, want < 0.05", r.Family, r.KS)
	}
}

func TestFitAllSortedByBIC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, _ := dist.NewLogNormal(3, 1)
	data := dist.SampleN(src, rng, 800)
	rs, err := FitAll(dist.AllFamilies(), data, Options{MaxIter: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 5 {
		t.Fatalf("only %d families fitted", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].BIC < rs[i-1].BIC {
			t.Fatalf("results not sorted by BIC at %d", i)
		}
	}
	// LogNormal should be at or near the top.
	top3 := map[string]bool{}
	for i := 0; i < 3 && i < len(rs); i++ {
		top3[rs[i].Family] = true
	}
	if !top3[rs[0].Family] {
		t.Fatal("unreachable")
	}
	found := false
	for i := 0; i < 3 && i < len(rs); i++ {
		if rs[i].Family == "LogNormal" {
			found = true
		}
	}
	if !found {
		names := make([]string, 0, 3)
		for i := 0; i < 3 && i < len(rs); i++ {
			names = append(names, rs[i].Family)
		}
		t.Errorf("LogNormal not in top-3 by BIC: %v", names)
	}
}

func TestBICPenalizesExtraParameters(t *testing.T) {
	// For the same NLL, a 3-parameter family must have higher BIC than a
	// 1-parameter family.
	n := 1000
	k1 := 1*math.Log(float64(n)) + 2*500
	k3 := 3*math.Log(float64(n)) + 2*500
	if k3 <= k1 {
		t.Fatal("BIC formula sanity check failed")
	}
	rng := rand.New(rand.NewSource(6))
	src, _ := dist.NewExponential(1)
	data := dist.SampleN(src, rng, n)
	fam, _ := dist.FamilyByName("Exponential")
	r, err := FitFamily(fam, data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1*math.Log(float64(n)) + 2*r.NegLogLik
	if math.Abs(r.BIC-want) > 1e-9 {
		t.Errorf("BIC = %g, want %g", r.BIC, want)
	}
}

func TestFitFamilyEmptyData(t *testing.T) {
	fam, _ := dist.FamilyByName("Normal")
	if _, err := FitFamily(fam, nil, Options{}); err == nil {
		t.Error("empty data accepted")
	}
}

func TestNegLogLikInfOutsideSupport(t *testing.T) {
	d, _ := dist.NewPareto(5, 2)
	if v := NegLogLik(d, []float64{1}); !math.IsInf(v, 1) {
		t.Errorf("NLL below support = %g, want +Inf", v)
	}
}

func TestSubsamplePreservesBounds(t *testing.T) {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i)
	}
	s := subsample(data, 100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] != 0 {
		t.Errorf("first = %g", s[0])
	}
	if s[99] != 990 {
		t.Errorf("last = %g", s[99])
	}
}

func TestFitWithSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src, _ := dist.NewGamma(2, 5)
	data := dist.SampleN(src, rng, 10000)
	fam, _ := dist.FamilyByName("Gamma")
	r, err := FitFamily(fam, data, Options{MaxSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 10000 {
		t.Errorf("N = %d, want full data size", r.N)
	}
	if r.KS > 0.05 {
		t.Errorf("subsampled fit KS = %g", r.KS)
	}
}
