// Package fit implements the statistical procedures of the paper's workload
// characterization: maximum-likelihood fitting via Nelder-Mead, model
// selection by the Bayesian information criterion, Kolmogorov-Smirnov
// goodness-of-fit tests, autocorrelation analysis, and the empirical
// CDF/histogram machinery behind Figures 4-7.
package fit

import "math"

// Objective is a function to minimize over a parameter vector.
type Objective func(x []float64) float64

// NelderMeadOptions tunes the downhill-simplex minimizer.
type NelderMeadOptions struct {
	// MaxIter bounds the number of iterations; <= 0 means 400*dim.
	MaxIter int
	// TolF stops when the simplex function spread falls below it (default 1e-10).
	TolF float64
	// Scale sets the initial simplex size relative to each coordinate
	// (default 0.1, with an absolute floor).
	Scale float64
}

// NelderMead minimizes f starting from x0 using the downhill-simplex method
// with the standard reflection/expansion/contraction/shrink coefficients.
// It returns the best point found and its value. f may return +Inf to mark
// infeasible regions.
func NelderMead(f Objective, x0 []float64, opt NelderMeadOptions) ([]float64, float64) {
	dim := len(x0)
	if dim == 0 {
		return nil, f(nil)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 400 * dim
	}
	if opt.TolF <= 0 {
		opt.TolF = 1e-10
	}
	if opt.Scale <= 0 {
		opt.Scale = 0.1
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	// Build initial simplex.
	pts := make([][]float64, dim+1)
	vals := make([]float64, dim+1)
	pts[0] = append([]float64(nil), x0...)
	vals[0] = f(pts[0])
	for i := 0; i < dim; i++ {
		p := append([]float64(nil), x0...)
		step := opt.Scale * math.Abs(p[i])
		if step == 0 {
			step = opt.Scale
		}
		p[i] += step
		pts[i+1] = p
		vals[i+1] = f(p)
	}

	order := func() {
		// Insertion sort by value — simplex is tiny.
		for i := 1; i <= dim; i++ {
			p, v := pts[i], vals[i]
			j := i - 1
			for j >= 0 && vals[j] > v {
				pts[j+1], vals[j+1] = pts[j], vals[j]
				j--
			}
			pts[j+1], vals[j+1] = p, v
		}
	}

	centroid := make([]float64, dim)
	tryPoint := make([]float64, dim)

	diameter := func() float64 {
		var dmax float64
		for i := 1; i <= dim; i++ {
			for j := 0; j < dim; j++ {
				if d := math.Abs(pts[i][j] - pts[0][j]); d > dmax {
					dmax = d
				}
			}
		}
		return dmax
	}

	for iter := 0; iter < opt.MaxIter; iter++ {
		order()
		// Converged only when both function spread and simplex size are
		// small: symmetric non-smooth objectives (e.g. |x-c|) can have zero
		// value spread across a simplex that still straddles the minimum.
		if spread := vals[dim] - vals[0]; spread < opt.TolF &&
			!math.IsInf(vals[0], 0) && !math.IsInf(vals[dim], 0) &&
			diameter() < 1e-9*(1+math.Abs(pts[0][0])) {
			break
		}

		// Centroid of all but the worst.
		for j := 0; j < dim; j++ {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				centroid[j] += pts[i][j]
			}
		}
		for j := 0; j < dim; j++ {
			centroid[j] /= float64(dim)
		}

		// Reflection.
		for j := 0; j < dim; j++ {
			tryPoint[j] = centroid[j] + alpha*(centroid[j]-pts[dim][j])
		}
		fr := f(tryPoint)
		switch {
		case fr < vals[0]:
			// Expansion.
			exp := make([]float64, dim)
			for j := 0; j < dim; j++ {
				exp[j] = centroid[j] + gamma*(tryPoint[j]-centroid[j])
			}
			fe := f(exp)
			if fe < fr {
				copy(pts[dim], exp)
				vals[dim] = fe
			} else {
				copy(pts[dim], tryPoint)
				vals[dim] = fr
			}
		case fr < vals[dim-1]:
			copy(pts[dim], tryPoint)
			vals[dim] = fr
		default:
			// Contraction (toward the better of reflected/worst).
			worst := pts[dim]
			fw := vals[dim]
			if fr < fw {
				worst = tryPoint
				fw = fr
			}
			con := make([]float64, dim)
			for j := 0; j < dim; j++ {
				con[j] = centroid[j] + rho*(worst[j]-centroid[j])
			}
			fc := f(con)
			if fc < fw {
				copy(pts[dim], con)
				vals[dim] = fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= dim; i++ {
					for j := 0; j < dim; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}
	order()
	return pts[0], vals[0]
}
