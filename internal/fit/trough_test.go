package fit

import (
	"math"
	"testing"
)

// humps builds a series of n sinusoidal humps of width segLen.
func humps(n, segLen int) []float64 {
	out := make([]float64, 0, n*segLen)
	for h := 0; h < n; h++ {
		for i := 0; i < segLen; i++ {
			out = append(out, 10*math.Sin(math.Pi*float64(i)/float64(segLen))+0.1)
		}
	}
	return out
}

func TestTroughBoundariesQuarterlyHumps(t *testing.T) {
	xs := humps(4, 91) // 364 days, troughs at 91/182/273
	got := TroughBoundaries(xs, 3, 45, 14)
	if len(got) != 3 {
		t.Fatalf("boundaries = %v, want 3", got)
	}
	want := []int{91, 182, 273}
	for i, w := range want {
		if d := got[i] - w; d < -8 || d > 8 {
			t.Errorf("boundary %d at %d, want ~%d", i, got[i], w)
		}
	}
}

func TestTroughBoundariesRespectsSeparation(t *testing.T) {
	xs := humps(4, 91)
	got := TroughBoundaries(xs, 3, 45, 14)
	for i := 1; i < len(got); i++ {
		if got[i]-got[i-1] < 45 {
			t.Errorf("boundaries too close: %v", got)
		}
	}
}

func TestTroughBoundariesDegenerate(t *testing.T) {
	if got := TroughBoundaries(nil, 3, 10, 5); got != nil {
		t.Errorf("nil input: %v", got)
	}
	if got := TroughBoundaries([]float64{1, 2, 3}, 3, 10, 5); got != nil {
		t.Errorf("tiny input: %v", got)
	}
	if got := TroughBoundaries(humps(4, 91), 0, 10, 5); got != nil {
		t.Errorf("n=0: %v", got)
	}
	flat := make([]float64, 100)
	if got := TroughBoundaries(flat, 3, 10, 5); len(got) != 0 {
		t.Errorf("flat series: %v", got)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	sm := movingAverage(xs, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if math.Abs(sm[i]-want[i]) > 1e-12 {
			t.Errorf("sm = %v, want %v", sm, want)
			break
		}
	}
}
