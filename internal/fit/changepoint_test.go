package fit

import (
	"math"
	"testing"
)

// step builds a piecewise-constant series with mild deterministic noise.
func step(levels []float64, segLen int) []float64 {
	var out []float64
	seed := uint64(99)
	for _, l := range levels {
		for i := 0; i < segLen; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			noise := (float64(seed>>11)/float64(1<<53) - 0.5) * 0.2
			out = append(out, l+noise)
		}
	}
	return out
}

func TestChangepointsFindsSingleShift(t *testing.T) {
	xs := step([]float64{1, 5}, 50)
	cps := Changepoints(xs, 3, 2)
	if len(cps) != 1 {
		t.Fatalf("changepoints = %v, want one", cps)
	}
	if cps[0] < 45 || cps[0] > 55 {
		t.Errorf("split at %d, want ~50", cps[0])
	}
}

func TestChangepointsFindsQuarterlyPhases(t *testing.T) {
	// Four phases with distinct levels — the U65 structure.
	xs := step([]float64{3, 8, 2, 6}, 91)
	cps := Changepoints(xs, 3, 2)
	if len(cps) != 3 {
		t.Fatalf("changepoints = %v, want three", cps)
	}
	want := []int{91, 182, 273}
	for i, w := range want {
		if d := cps[i] - w; d < -6 || d > 6 {
			t.Errorf("split %d at %d, want ~%d", i, cps[i], w)
		}
	}
	means := SegmentMeans(xs, cps)
	wantMeans := []float64{3, 8, 2, 6}
	for i, w := range wantMeans {
		if math.Abs(means[i]-w) > 0.3 {
			t.Errorf("segment %d mean = %g, want ~%g", i, means[i], w)
		}
	}
}

func TestChangepointsFlatSeries(t *testing.T) {
	xs := step([]float64{4}, 200)
	if cps := Changepoints(xs, 3, 8); len(cps) != 0 {
		t.Errorf("flat series split: %v", cps)
	}
	constant := make([]float64, 100)
	if cps := Changepoints(constant, 3, 8); cps != nil {
		t.Errorf("constant series split: %v", cps)
	}
}

func TestChangepointsDegenerateInputs(t *testing.T) {
	if cps := Changepoints([]float64{1, 2}, 3, 8); cps != nil {
		t.Errorf("tiny input split: %v", cps)
	}
	if cps := Changepoints(step([]float64{1, 5}, 50), 0, 8); cps != nil {
		t.Errorf("maxSplits=0 split: %v", cps)
	}
}

func TestChangepointsRespectsMaxSplits(t *testing.T) {
	xs := step([]float64{1, 5, 1, 5, 1, 5}, 40)
	cps := Changepoints(xs, 2, 2)
	if len(cps) > 2 {
		t.Errorf("maxSplits exceeded: %v", cps)
	}
}

func TestSegmentMeansEdges(t *testing.T) {
	means := SegmentMeans([]float64{1, 2, 3, 4}, []int{2})
	if len(means) != 2 || means[0] != 1.5 || means[1] != 3.5 {
		t.Errorf("means = %v", means)
	}
	if got := SegmentMeans([]float64{1, 2}, nil); len(got) != 1 || got[0] != 1.5 {
		t.Errorf("no-split means = %v", got)
	}
}
