package fit

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dist"
)

// Result is the outcome of fitting one family to a data set.
type Result struct {
	// Family is the fitted family name.
	Family string
	// Dist is the maximum-likelihood member of the family.
	Dist dist.Dist
	// NegLogLik is the minimized negative log-likelihood.
	NegLogLik float64
	// BIC is the Bayesian information criterion: k·ln(n) + 2·NLL. Lower is
	// better; the paper selects fits by BIC.
	BIC float64
	// KS is the one-sample Kolmogorov-Smirnov statistic of the fit.
	KS float64
	// N is the number of data points used.
	N int
}

// ErrNoFit is returned when no candidate family produced a finite likelihood.
var ErrNoFit = errors.New("fit: no family produced a finite likelihood")

// Options configures MLE fitting.
type Options struct {
	// MaxIter bounds Nelder-Mead iterations per family (<=0: default).
	MaxIter int
	// MaxSample subsamples data sets larger than this for the likelihood
	// optimization (the KS statistic is still computed on the full data).
	// <= 0 disables subsampling.
	MaxSample int
}

// NegLogLik computes the negative log-likelihood of data under d; +Inf when
// any point has zero density.
func NegLogLik(d dist.Dist, data []float64) float64 {
	var nll float64
	for _, x := range data {
		lp := d.LogPDF(x)
		if math.IsNaN(lp) || math.IsInf(lp, 1) {
			return math.Inf(1)
		}
		if math.IsInf(lp, -1) {
			return math.Inf(1)
		}
		nll -= lp
	}
	return nll
}

// FitFamily fits one family to data by maximum likelihood and returns the
// fit result, or an error when the family cannot represent the data at all.
func FitFamily(f dist.Family, data []float64, opt Options) (Result, error) {
	if len(data) == 0 {
		return Result{}, errors.New("fit: empty data")
	}
	sample := data
	if opt.MaxSample > 0 && len(data) > opt.MaxSample {
		sample = subsample(data, opt.MaxSample)
	}

	obj := func(p []float64) float64 {
		d, err := f.New(p)
		if err != nil {
			return math.Inf(1)
		}
		return NegLogLik(d, sample)
	}
	guess := f.Guess(sample)
	best, bestV := NelderMead(obj, guess, NelderMeadOptions{MaxIter: opt.MaxIter})
	if math.IsInf(bestV, 0) || math.IsNaN(bestV) {
		return Result{}, ErrNoFit
	}
	d, err := f.New(best)
	if err != nil {
		return Result{}, err
	}
	// Rescale the optimized NLL to the full data set for comparable BICs.
	nll := bestV
	if len(sample) != len(data) {
		nll = NegLogLik(d, data)
		if math.IsInf(nll, 0) || math.IsNaN(nll) {
			// Subsample fit does not generalize (support excludes points).
			return Result{}, ErrNoFit
		}
	}
	n := len(data)
	return Result{
		Family:    f.Name,
		Dist:      d,
		NegLogLik: nll,
		BIC:       float64(f.NParams)*math.Log(float64(n)) + 2*nll,
		KS:        KolmogorovSmirnov(data, d),
		N:         n,
	}, nil
}

// FitAll fits every candidate family to data and returns the results sorted
// by ascending BIC (best first). Families that fail to fit are omitted.
func FitAll(families []dist.Family, data []float64, opt Options) ([]Result, error) {
	var out []Result
	for _, f := range families {
		r, err := FitFamily(f, data, opt)
		if err != nil {
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, ErrNoFit
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BIC < out[j].BIC })
	return out, nil
}

// Best fits all 18 standard families and returns the BIC-best result — the
// procedure behind each row of Tables II and III.
func Best(data []float64, opt Options) (Result, error) {
	rs, err := FitAll(dist.AllFamilies(), data, opt)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// subsample takes k evenly spaced points from data (preserving order
// statistics spread without randomness, so fits are deterministic).
func subsample(data []float64, k int) []float64 {
	n := len(data)
	out := make([]float64, 0, k)
	step := float64(n) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, data[int(float64(i)*step)])
	}
	return out
}
