package fit

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
)

func benchData(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	d, _ := dist.NewGEV(-0.3, 20, 100)
	return dist.SampleN(d, rng, n)
}

func BenchmarkFitGEV2000(b *testing.B) {
	data := benchData(2000)
	fam, _ := dist.FamilyByName("GEV")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitFamily(fam, data, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestOf18Families(b *testing.B) {
	data := benchData(500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Best(data, Options{MaxSample: 500}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKolmogorovSmirnov(b *testing.B) {
	data := benchData(10000)
	d, _ := dist.NewGEV(-0.3, 20, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KolmogorovSmirnov(data, d)
	}
}

func BenchmarkAutocorrelation(b *testing.B) {
	xs := benchData(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Autocorrelation(xs, 120)
	}
}

func BenchmarkNelderMeadRosenbrock(b *testing.B) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		c := x[1] - x[0]*x[0]
		return a*a + 100*c*c
	}
	for i := 0; i < b.N; i++ {
		NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 2000})
	}
}
