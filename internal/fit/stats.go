package fit

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 points).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median. The paper follows Downey and Feitelson in
// preferring medians over means as the outlier-resilient summary statistic
// for inter-arrival times and durations.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the p-quantile of xs by linear interpolation between
// order statistics (type-7, the Matlab/R default).
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[n-1]
	}
	h := p * float64(n-1)
	i := int(math.Floor(h))
	frac := h - float64(i)
	if i+1 >= n {
		return s[n-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (which is copied).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns the fraction of sample points <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// Move past ties so the ECDF is right-continuous.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Points returns the (x, F(x)) step points of the ECDF, one per distinct
// sample value.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(i+1)/float64(n))
	}
	return xs, fs
}

// Histogram bins xs into nbins equal-width bins over [lo, hi]. Values outside
// the range are clamped into the first/last bin. It returns bin left edges
// and counts.
func Histogram(xs []float64, lo, hi float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 || !(hi > lo) {
		return nil, nil
	}
	edges = make([]float64, nbins)
	counts = make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return edges, counts
}

// HistogramDensity converts histogram counts to an empirical density
// (probability per unit x), matching the normalized histograms of Figure 5.
func HistogramDensity(counts []int, binWidth float64, total int) []float64 {
	out := make([]float64, len(counts))
	if total == 0 || binWidth <= 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / (float64(total) * binWidth)
	}
	return out
}

// Autocorrelation returns the sample autocorrelation function of xs at lags
// 0..maxLag, as used by the paper's periodicity analysis ("analyzed for
// periodicity using auto correlation functions").
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	m := Mean(xs)
	var c0 float64
	for _, x := range xs {
		d := x - m
		c0 += d * d
	}
	out := make([]float64, maxLag+1)
	if c0 == 0 {
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (xs[i] - m) * (xs[i+lag] - m)
		}
		out[lag] = c / c0
	}
	return out
}

// DominantLag returns the lag (>= minLag) with the highest autocorrelation
// and that correlation value. It returns lag 0 when no lag qualifies.
func DominantLag(acf []float64, minLag int) (lag int, value float64) {
	best, bestV := 0, math.Inf(-1)
	for l := minLag; l < len(acf); l++ {
		if acf[l] > bestV {
			best, bestV = l, acf[l]
		}
	}
	if best == 0 {
		return 0, 0
	}
	return best, bestV
}
