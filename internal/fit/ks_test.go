package fit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
)

func TestKSSelfFitIsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, _ := dist.NewGEV(-0.386, 19.5, 100)
	xs := dist.SampleN(d, rng, 5000)
	ks := KolmogorovSmirnov(xs, d)
	// For n=5000, D should be ~sqrt(ln2/ (2n)) ≈ 0.008; allow generous slack.
	if ks > 0.03 {
		t.Errorf("KS of own sample = %g, want small", ks)
	}
}

func TestKSDetectsWrongModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	exp, _ := dist.NewExponential(1)
	norm, _ := dist.NewNormal(1, 1)
	xs := dist.SampleN(exp, rng, 2000)
	ksGood := KolmogorovSmirnov(xs, exp)
	ksBad := KolmogorovSmirnov(xs, norm)
	if ksBad <= ksGood*3 {
		t.Errorf("wrong model KS=%g not clearly worse than right model KS=%g", ksBad, ksGood)
	}
}

func TestKSExactSmallSample(t *testing.T) {
	// Single point at the median of U(0,1): D = 0.5 exactly.
	u, _ := dist.NewUniform(0, 1)
	ks := KolmogorovSmirnov([]float64{0.5}, u)
	if math.Abs(ks-0.5) > 1e-12 {
		t.Errorf("KS = %g, want 0.5", ks)
	}
	if !math.IsNaN(KolmogorovSmirnov(nil, u)) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSTwoSample(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if ks := KolmogorovSmirnovTwoSample(a, a); ks != 0 {
		t.Errorf("identical samples KS = %g", ks)
	}
	b := []float64{11, 12, 13}
	if ks := KolmogorovSmirnovTwoSample(a, b); ks != 1 {
		t.Errorf("disjoint samples KS = %g, want 1", ks)
	}
	if !math.IsNaN(KolmogorovSmirnovTwoSample(nil, a)) {
		t.Error("empty input should give NaN")
	}
}

func TestKSPValue(t *testing.T) {
	if p := KSPValue(0, 100); p != 1 {
		t.Errorf("p(0) = %g", p)
	}
	if p := KSPValue(1, 100); p != 0 {
		t.Errorf("p(1) = %g", p)
	}
	// Monotone decreasing in d.
	prev := 1.0
	for d := 0.01; d < 0.5; d += 0.01 {
		p := KSPValue(d, 200)
		if p > prev+1e-12 {
			t.Fatalf("p-value not decreasing at d=%g", d)
		}
		prev = p
	}
	// A huge statistic on a large sample is essentially impossible.
	if p := KSPValue(0.3, 5000); p > 1e-10 {
		t.Errorf("p(0.3, n=5000) = %g", p)
	}
	if !math.IsNaN(KSPValue(0.1, 0)) {
		t.Error("n=0 should give NaN")
	}
}
