package fit

import "math"

// Changepoints detects shifts in the mean level of a series by binary
// segmentation: the split maximizing the reduction in squared error is
// applied recursively while the gain exceeds penalty·σ². The paper
// identifies U65's four experimental phases by inspection of the arrival
// histogram; this provides the automated equivalent for the surrogate
// pipeline (and for real traces loaded via SWF).
//
// xs is typically a binned arrival-count series; the returned indices are
// ascending split points (1 <= idx < len(xs)), at most maxSplits of them.
func Changepoints(xs []float64, maxSplits int, penalty float64) []int {
	if len(xs) < 4 || maxSplits <= 0 {
		return nil
	}
	if penalty <= 0 {
		penalty = 8
	}
	globalVar := Variance(xs)
	if globalVar == 0 {
		return nil
	}
	minGain := penalty * globalVar

	type segment struct{ lo, hi int } // half-open [lo, hi)
	var splits []int
	var recurse func(s segment, depth int)
	recurse = func(s segment, depth int) {
		if len(splits) >= maxSplits || s.hi-s.lo < 4 {
			return
		}
		idx, gain := bestSplit(xs[s.lo:s.hi])
		if idx <= 0 || gain < minGain {
			return
		}
		cut := s.lo + idx
		splits = append(splits, cut)
		recurse(segment{s.lo, cut}, depth+1)
		recurse(segment{cut, s.hi}, depth+1)
	}
	recurse(segment{0, len(xs)}, 0)

	// Sort ascending (insertion sort; few splits).
	for i := 1; i < len(splits); i++ {
		for j := i; j > 0 && splits[j] < splits[j-1]; j-- {
			splits[j], splits[j-1] = splits[j-1], splits[j]
		}
	}
	return splits
}

// bestSplit returns the index (within xs) whose two-segment mean model
// maximally reduces total squared error, and the reduction achieved.
func bestSplit(xs []float64) (int, float64) {
	n := len(xs)
	if n < 4 {
		return -1, 0
	}
	// Prefix sums for O(1) segment SSE.
	sum := make([]float64, n+1)
	sum2 := make([]float64, n+1)
	for i, x := range xs {
		sum[i+1] = sum[i] + x
		sum2[i+1] = sum2[i] + x*x
	}
	sse := func(lo, hi int) float64 { // [lo, hi)
		c := float64(hi - lo)
		s := sum[hi] - sum[lo]
		s2 := sum2[hi] - sum2[lo]
		return s2 - s*s/c
	}
	total := sse(0, n)
	bestIdx, bestGain := -1, 0.0
	for i := 2; i <= n-2; i++ {
		gain := total - sse(0, i) - sse(i, n)
		if gain > bestGain {
			bestIdx, bestGain = i, gain
		}
	}
	return bestIdx, bestGain
}

// TroughBoundaries locates phase boundaries in a hump-shaped rate series
// (like U65's quarterly arrival cycles): the series is smoothed with a
// moving average and the deepest local minima, separated by at least
// minSep, are returned ascending. n bounds the number of boundaries.
func TroughBoundaries(xs []float64, n, minSep, smooth int) []int {
	if len(xs) < 4 || n <= 0 {
		return nil
	}
	if smooth < 1 {
		smooth = 1
	}
	if minSep < 1 {
		minSep = 1
	}
	sm := movingAverage(xs, smooth)
	// Candidate minima: strictly lower than both neighbours in the
	// smoothed series (plateaus take their left edge).
	type cand struct {
		idx int
		val float64
	}
	var cands []cand
	for i := 1; i < len(sm)-1; i++ {
		if sm[i] <= sm[i-1] && sm[i] < sm[i+1] {
			cands = append(cands, cand{i, sm[i]})
		}
	}
	// Greedily pick the deepest minima respecting the separation.
	for i := 1; i < len(cands); i++ { // insertion sort by depth
		for j := i; j > 0 && cands[j].val < cands[j-1].val; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var picked []int
	for _, c := range cands {
		ok := true
		for _, p := range picked {
			if abs(c.idx-p) < minSep {
				ok = false
				break
			}
		}
		if ok {
			picked = append(picked, c.idx)
			if len(picked) == n {
				break
			}
		}
	}
	// The trailing moving average delays features by ~(smooth−1)/2; shift
	// the boundaries back to centre them.
	shift := (smooth - 1) / 2
	for i := range picked {
		picked[i] -= shift
		if picked[i] < 1 {
			picked[i] = 1
		}
	}
	for i := 1; i < len(picked); i++ { // ascending
		for j := i; j > 0 && picked[j] < picked[j-1]; j-- {
			picked[j], picked[j-1] = picked[j-1], picked[j]
		}
	}
	return picked
}

func movingAverage(xs []float64, w int) []float64 {
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= w {
			sum -= xs[i-w]
		}
		n := w
		if i+1 < w {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SegmentMeans returns the mean of xs within each segment delimited by the
// ascending split indices.
func SegmentMeans(xs []float64, splits []int) []float64 {
	bounds := append([]int{0}, splits...)
	bounds = append(bounds, len(xs))
	out := make([]float64, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			out = append(out, math.NaN())
			continue
		}
		out = append(out, Mean(xs[lo:hi]))
	}
	return out
}
