package fit

import (
	"math"
	"sort"

	"repro/internal/dist"
)

// AndersonDarling returns the Anderson-Darling statistic A² between the
// sample xs and the model d. Compared with Kolmogorov-Smirnov it weighs the
// distribution tails more heavily, which matters for the heavy-tailed
// duration fits (U3's Burr).
func AndersonDarling(xs []float64, d dist.Dist) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for i, x := range s {
		fi := clampUnitInterval(d.CDF(x))
		fr := clampUnitInterval(d.CDF(s[n-1-i]))
		sum += float64(2*i+1) * (math.Log(fi) + math.Log(1-fr))
	}
	return -float64(n) - sum/float64(n)
}

func clampUnitInterval(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// ChiSquare bins the sample into nbins equal-probability bins under the
// model and returns the chi-square statistic and its degrees of freedom
// (nbins − 1 − params). Bins are equal-probability (quantile-based) so the
// expected count per bin is n/nbins.
func ChiSquare(xs []float64, d dist.Dist, nbins int) (stat float64, dof int) {
	n := len(xs)
	if n == 0 || nbins < 2 {
		return math.NaN(), 0
	}
	edges := make([]float64, nbins-1)
	for i := 1; i < nbins; i++ {
		edges[i-1] = d.Quantile(float64(i) / float64(nbins))
	}
	counts := make([]int, nbins)
	for _, x := range xs {
		i := sort.SearchFloat64s(edges, x)
		counts[i]++
	}
	expected := float64(n) / float64(nbins)
	for _, c := range counts {
		diff := float64(c) - expected
		stat += diff * diff / expected
	}
	dof = nbins - 1 - len(d.Params())
	if dof < 1 {
		dof = 1
	}
	return stat, dof
}

// ChiSquarePValue approximates P(X² >= stat) for the chi-square
// distribution with dof degrees of freedom, via the regularized upper
// incomplete gamma function.
func ChiSquarePValue(stat float64, dof int) float64 {
	if math.IsNaN(stat) || dof < 1 || stat < 0 {
		return math.NaN()
	}
	return 1 - dist.RegLowerGamma(float64(dof)/2, stat/2)
}
