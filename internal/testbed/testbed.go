// Package testbed assembles the paper's emulated nation-wide environment
// (Section IV): N miniature clusters — each with a full Aequus stack and a
// SLURM- or Maui-like local scheduler — a submission host dispatching a
// synthetic workload stochastically across the sites, inter-site usage
// exchange through the USS layer, run-time identity resolution, and metric
// sampling for the convergence figures.
package testbed

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/fairshare"
	"repro/internal/grid"
	"repro/internal/maui"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/services/irs"
	"repro/internal/slurm"
	"repro/internal/trace"
	"repro/internal/usage"
	"repro/internal/vector"
)

// SiteMode controls one site's participation in the global exchange — the
// partial-participation experiment's knobs.
type SiteMode struct {
	// Contribute: the site serves its usage records to peers.
	Contribute bool
	// UseGlobal: the site considers global usage for prioritization.
	UseGlobal bool
}

// RMKind selects the local resource manager substrate.
type RMKind string

// Supported resource managers.
const (
	RMSlurm RMKind = "slurm"
	RMMaui  RMKind = "maui"
)

// Config parameterizes a testbed run. Zero values get paper-scale defaults
// via withDefaults.
type Config struct {
	// Sites is the number of clusters (paper: 6).
	Sites int
	// CoresPerSite is each cluster's core count (paper: 40 virtual hosts).
	CoresPerSite int
	// Start is the simulated start time.
	Start time.Time
	// Duration is the test length (paper: 6 hours).
	Duration time.Duration
	// PolicyShares are the per-user target shares (flat policy) and the
	// metric targets.
	PolicyShares map[string]float64
	// Policy optionally overrides the flat policy with a hierarchical tree
	// (PolicyShares is still used for metric targets; its users must be
	// leaves of the tree).
	Policy *policy.Tree
	// StrictOrder makes the SLURM substrate stop at the first blocked job
	// instead of backfilling.
	StrictOrder bool
	// Trace is the input workload (required).
	Trace *trace.Trace
	// DistanceWeight is the fairshare k (paper: 0.5).
	DistanceWeight float64
	// Projection is the vector projection (paper: percental in production).
	Projection vector.Projection
	// Decay is the usage decay function (default: exponential half-life of
	// Duration/6 so history fades over the run).
	Decay usage.Decay
	// BinWidth is the USS histogram interval (default Duration/360).
	BinWidth time.Duration
	// ExchangeInterval is the USS exchange period — delay component (I).
	ExchangeInterval time.Duration
	// RefreshInterval is the UMS/FCS pre-calc period — component (II).
	RefreshInterval time.Duration
	// LibTTL is the libaequus cache TTL — component (III).
	LibTTL time.Duration
	// ReprioInterval is the RM re-prioritization interval — component (IV).
	ReprioInterval time.Duration
	// SampleInterval is the metric sampling period.
	SampleInterval time.Duration
	// ShareWindow is the sliding window for usage-share curves (default
	// Duration/6).
	ShareWindow time.Duration
	// Dispatcher places jobs on sites (default stochastic, per the paper).
	Dispatcher grid.Dispatcher
	// SiteModes overrides participation per site (default: all full).
	SiteModes []SiteMode
	// RM selects the scheduler substrate (default SLURM).
	RM RMKind
	// Seed seeds the dispatcher.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Sites <= 0 {
		c.Sites = 6
	}
	if c.CoresPerSite <= 0 {
		c.CoresPerSite = 40
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Duration <= 0 {
		c.Duration = 6 * time.Hour
	}
	if c.DistanceWeight == 0 {
		c.DistanceWeight = 0.5
	}
	if c.Projection == nil {
		c.Projection = vector.Percental{}
	}
	if c.Decay == nil {
		c.Decay = usage.ExponentialHalfLife{HalfLife: c.Duration / 6}
	}
	if c.BinWidth <= 0 {
		c.BinWidth = c.Duration / 360
	}
	if c.ExchangeInterval <= 0 {
		c.ExchangeInterval = c.Duration / 360
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = c.Duration / 360
	}
	if c.LibTTL <= 0 {
		c.LibTTL = c.Duration / 720
	}
	if c.ReprioInterval <= 0 {
		c.ReprioInterval = c.Duration / 360
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = c.Duration / 120
	}
	if c.ShareWindow <= 0 {
		c.ShareWindow = c.Duration / 6
	}
	if c.Dispatcher == nil {
		c.Dispatcher = grid.NewStochastic(c.Seed + 1)
	}
	if c.RM == "" {
		c.RM = RMSlurm
	}
	return c
}

// Result holds a run's collected data.
type Result struct {
	// Config is the effective (defaulted) configuration.
	Config Config
	// UsageShares holds each user's share of globally completed usage
	// within the sliding window, sampled over the run (Figures 10a/12/13a).
	UsageShares metrics.PerUser
	// Priorities holds each user's raw leaf priority at site 0 (Figure 13b).
	Priorities metrics.PerUser
	// SitePriorities holds the same series per site (partial-participation
	// figure).
	SitePriorities []metrics.PerUser
	// Utilization is the mean core utilization across sites over the run.
	Utilization float64
	// Submitted / Completed / QueuedAtEnd are job counters.
	Submitted, Completed int64
	QueuedAtEnd          int
	// SustainedRate and PeakRate are jobs/minute over the run and the
	// busiest one-minute bin.
	SustainedRate, PeakRate float64
	// WaitStats summarizes per-user queue waits and bounded slowdowns.
	WaitStats map[string]metrics.WaitStat
}

// siteName returns the canonical testbed site name.
func siteName(i int) string { return fmt.Sprintf("site%02d", i) }

// localPrefix is how each site maps grid identities to local accounts.
func localPrefix(site string) string { return site + "_" }

// Run executes a testbed experiment.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil || cfg.Trace.Len() == 0 {
		return nil, errors.New("testbed: trace required")
	}
	if len(cfg.PolicyShares) == 0 {
		return nil, errors.New("testbed: policy shares required")
	}
	if len(cfg.SiteModes) != 0 && len(cfg.SiteModes) != cfg.Sites {
		return nil, fmt.Errorf("testbed: %d site modes for %d sites", len(cfg.SiteModes), cfg.Sites)
	}

	kernel := eventsim.New(cfg.Start)
	pol := cfg.Policy
	if pol == nil {
		var err error
		pol, err = policy.FromShares(cfg.PolicyShares)
		if err != nil {
			return nil, err
		}
	} else if err := pol.Validate(); err != nil {
		return nil, err
	}

	fsCfg := fairshare.Config{DistanceWeight: cfg.DistanceWeight, Resolution: 10000}

	sites := make([]*core.Site, cfg.Sites)
	clusters := make([]*cluster.Cluster, cfg.Sites)
	rms := make([]sched.ResourceManager, cfg.Sites)
	waits := metrics.NewWaitCollector()

	for i := 0; i < cfg.Sites; i++ {
		name := siteName(i)
		mode := SiteMode{Contribute: true, UseGlobal: true}
		if len(cfg.SiteModes) > 0 {
			mode = cfg.SiteModes[i]
		}
		prefix := localPrefix(name)
		site, err := core.NewSite(core.SiteConfig{
			Name:        name,
			Policy:      pol,
			Clock:       kernel.Clock(),
			BinWidth:    cfg.BinWidth,
			Decay:       cfg.Decay,
			Contribute:  mode.Contribute,
			UseGlobal:   mode.UseGlobal,
			Projection:  cfg.Projection,
			Fairshare:   fsCfg,
			UMSCacheTTL: cfg.RefreshInterval,
			FCSCacheTTL: cfg.RefreshInterval,
			// The testbed runs on a simulated clock with explicitly
			// scheduled refresh events; asynchronous stale-while-revalidate
			// would make experiment runs nondeterministic.
			FCSSynchronousRefresh: true,
			LibCacheTTL:           cfg.LibTTL,
			// Run-time identity resolution: strip the site prefix to revert
			// the local mapping (the small name-resolution endpoint of the
			// paper's HPC2N deployment).
			ResolveEndpoint: irs.EndpointFunc(func(_, local string) (string, error) {
				if !strings.HasPrefix(local, prefix) {
					return "", fmt.Errorf("testbed: %q does not follow the %q mapping", local, prefix)
				}
				return strings.TrimPrefix(local, prefix), nil
			}),
		})
		if err != nil {
			return nil, err
		}
		sites[i] = site

		cl, err := cluster.New(name, cfg.CoresPerSite, kernel)
		if err != nil {
			return nil, err
		}
		clusters[i] = cl
		cl.OnComplete(func(j *sched.Job) {
			waits.Record(j.GridUser, j.Start.Sub(j.Submit), j.End.Sub(j.Start))
		})

		switch cfg.RM {
		case RMSlurm:
			rms[i] = slurm.New(slurm.Config{
				Cluster: cl,
				Priority: &slurm.Multifactor{
					FS:      slurm.AequusFairshare{Lib: site.Lib},
					Weights: sched.FairshareOnly(),
				},
				JobComp:              []slurm.JobCompHandler{slurm.AequusJobComp{Lib: site.Lib}},
				ReprioritizeInterval: cfg.ReprioInterval,
				StrictOrder:          cfg.StrictOrder,
			})
		case RMMaui:
			lib := site.Lib
			rms[i] = maui.New(maui.Config{
				Cluster: cl,
				Weights: maui.Weights{Fairshare: 1},
				Callouts: maui.Callouts{
					FairsharePriority: lib.PriorityForLocalUser,
					JobCompleted: func(j *sched.Job) {
						_ = lib.JobComplete(j.LocalUser, j.Start, j.End.Sub(j.Start), j.Procs)
					},
				},
			})
		default:
			return nil, fmt.Errorf("testbed: unknown RM %q", cfg.RM)
		}
	}

	core.FullMesh(sites)

	// Submission host with per-site identity mapping.
	targets := make([]grid.Target, cfg.Sites)
	for i := range targets {
		prefix := localPrefix(siteName(i))
		targets[i] = grid.Target{
			Name:    siteName(i),
			RM:      rms[i],
			MapUser: func(g string) string { return prefix + g },
		}
	}
	host, err := grid.NewSubmitHost(kernel, targets, cfg.Dispatcher)
	if err != nil {
		return nil, err
	}
	host.LoadTrace(cfg.Trace)

	res := &Result{
		Config:         cfg,
		UsageShares:    metrics.PerUser{},
		Priorities:     metrics.PerUser{},
		SitePriorities: make([]metrics.PerUser, cfg.Sites),
	}
	for i := range res.SitePriorities {
		res.SitePriorities[i] = metrics.PerUser{}
	}

	end := cfg.Start.Add(cfg.Duration)
	done := func() bool { return kernel.Now().After(end) }

	// Periodic machinery: exchange, pre-calculation, RM iterations,
	// sampling.
	kernel.Every(cfg.ExchangeInterval, func(time.Time) {
		for _, s := range sites {
			_ = s.Exchange()
		}
	}, done)
	kernel.Every(cfg.RefreshInterval, func(time.Time) {
		for _, s := range sites {
			_ = s.Refresh()
		}
	}, done)
	kernel.Every(cfg.ReprioInterval, func(now time.Time) {
		for _, rm := range rms {
			rm.Schedule(now)
		}
	}, done)

	users := make([]string, 0, len(cfg.PolicyShares))
	for u := range cfg.PolicyShares {
		users = append(users, u)
	}
	// Fixed iteration order keeps float summations bit-identical across
	// runs (determinism is asserted by tests).
	sort.Strings(users)
	// Cumulative consumed usage per user (running jobs included) is sampled
	// every interval; windowed shares are the difference against the sample
	// one ShareWindow earlier.
	type usageSample struct {
		at     time.Time
		totals map[string]float64
	}
	var history []usageSample
	cumulative := func() map[string]float64 {
		out := map[string]float64{}
		for _, cl := range clusters {
			for u, v := range cl.UsageByUser() {
				out[u] += v
			}
		}
		return out
	}
	kernel.Every(cfg.SampleInterval, func(now time.Time) {
		cur := cumulative()
		history = append(history, usageSample{at: now, totals: cur})
		// Find the newest sample at or before now-window as the baseline.
		base := map[string]float64{}
		cutoff := now.Add(-cfg.ShareWindow)
		for i := len(history) - 1; i >= 0; i-- {
			if !history[i].at.After(cutoff) {
				base = history[i].totals
				break
			}
		}
		var total float64
		delta := map[string]float64{}
		for _, u := range users {
			d := cur[u] - base[u]
			if d < 0 {
				d = 0
			}
			delta[u] = d
			total += d
		}
		for _, u := range users {
			share := 0.0
			if total > 0 {
				share = delta[u] / total
			}
			res.UsageShares.Add(u, now, share)
		}
		for i, s := range sites {
			tree, err := s.FCS.Tree()
			if err != nil {
				continue
			}
			for _, u := range users {
				if pr, ok := tree.LeafPriority(u); ok {
					res.SitePriorities[i].Add(u, now, pr)
					if i == 0 {
						res.Priorities.Add(u, now, pr)
					}
				}
			}
		}
	}, done)

	kernel.Run(end)

	// Collect results.
	var util float64
	for i, cl := range clusters {
		util += cl.Utilization(cfg.Start)
		res.Completed += cl.Completed()
		res.QueuedAtEnd += rms[i].QueueLen()
	}
	res.Utilization = util / float64(cfg.Sites)
	res.Submitted = host.Submitted()
	res.SustainedRate, res.PeakRate = submitRates(cfg.Trace, cfg.Start, cfg.Duration)
	res.WaitStats = waits.Stats()
	return res, nil
}

// submitRates computes the sustained and peak submission rates (jobs per
// minute) of the trace within the run window.
func submitRates(tr *trace.Trace, start time.Time, dur time.Duration) (sustained, peak float64) {
	minutes := int(dur.Minutes())
	if minutes <= 0 {
		return 0, 0
	}
	bins := make([]int, minutes+1)
	n := 0
	for _, j := range tr.Jobs {
		off := j.Submit.Sub(start)
		if off < 0 || off > dur {
			continue
		}
		bins[int(off.Minutes())]++
		n++
	}
	maxBin := 0
	for _, b := range bins {
		if b > maxBin {
			maxBin = b
		}
	}
	return float64(n) / dur.Minutes(), float64(maxBin)
}
