package testbed

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

// TestDriftGaugesTrackPartition pins the fairness-drift observability story:
// two sites each host one of two equal-share users, so site 0's drift is ~0
// exactly when the exchange keeps it seeing bob's remote usage. Cutting the
// site0→site1 link must drive the drift-max gauge up (alice's local usage
// keeps growing while bob's ingested share freezes) and age out the peer
// watermark; two clean rounds after the fault window lapses — the breaker's
// recovery bound — both gauges must return to healthy levels.
func TestDriftGaugesTrackPartition(t *testing.T) {
	t0 := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(t0)
	pol, err := policy.FromShares(map[string]float64{"alice": 0.5, "bob": 0.5})
	if err != nil {
		t.Fatal(err)
	}

	var sites []*core.Site
	var regs []*telemetry.Registry
	for i := 0; i < 2; i++ {
		reg := telemetry.NewRegistry()
		site, err := core.NewSite(core.SiteConfig{
			Name:                  siteName(i),
			Policy:                pol,
			Clock:                 clock,
			BinWidth:              chaosRound,
			Decay:                 usage.None{},
			Contribute:            true,
			UseGlobal:             true,
			FCSSynchronousRefresh: true,
			Metrics:               reg,
			PeerTimeout:           time.Second,
			PeerBreaker: resilience.BreakerConfig{
				Threshold: 2,
				Cooldown:  2 * chaosRound,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, site)
		regs = append(regs, reg)
	}

	// alice computes only at site 0, bob only at site 1, identical loads —
	// site 0's view is balanced iff the exchange is flowing.
	report := func(now time.Time) {
		sites[0].USS.ReportJob("alice", now, chaosRound, 1)
		sites[1].USS.ReportJob("bob", now, chaosRound, 1)
	}
	round := func() {
		report(clock.Now())
		clock.Advance(chaosRound)
		for _, s := range sites {
			_ = s.Exchange() // pull errors during the fault window are the point
			if err := s.Refresh(); err != nil {
				t.Fatalf("refresh: %v", err)
			}
		}
	}
	driftMax := func() float64 {
		return regs[0].Gauge("aequus_fcs_drift_max_ratio", "").Value()
	}
	wmAge := func() float64 {
		return regs[0].GaugeVec("aequus_uss_peer_watermark_age_seconds", "", "peer").
			With(siteName(1)).Value()
	}

	// Window boundaries sit mid-round so the last healthy exchange (at
	// exactly t0+3R) stays clean and the six fault-phase exchanges are all
	// covered.
	const faultRounds = 6
	fStart := t0.Add(3*chaosRound + chaosRound/2)
	inj := faultinject.New(clock, 1, faultinject.Window{
		From: fStart, Until: fStart.Add(faultRounds * chaosRound),
		Kind: faultinject.Error,
	})
	sites[0].ConnectPeer(&FaultyPeer{Peer: sites[1].USS, Inj: inj})
	sites[1].ConnectPeer(sites[0].USS)

	// Healthy baseline: both users visible, drift negligible.
	for r := 0; r < 3; r++ {
		round()
	}
	if d := driftMax(); d > 0.05 {
		t.Fatalf("healthy drift max = %v, want ~0", d)
	}

	// Fault window: site 0 stops ingesting bob. Its view of alice's share
	// climbs toward 9/12 = 0.75 against a 0.5 target, and the watermark —
	// frozen at bob's last pre-fault interval — ages out.
	for r := 0; r < faultRounds; r++ {
		round()
	}
	if d := driftMax(); d < 0.2 {
		t.Errorf("drift max = %v during partition, want > 0.2", d)
	}
	if age := wmAge(); age < 5*chaosRound.Seconds() {
		t.Errorf("watermark age = %vs during partition, want > %vs", age, 5*chaosRound.Seconds())
	}
	if mean := regs[0].Gauge("aequus_fcs_drift_mean_ratio", "").Value(); mean <= 0 {
		t.Errorf("drift mean = %v during partition, want > 0", mean)
	}

	// Faults lapse on the clock. Round 1 is still inside the breaker's
	// cooldown (skipped), round 2 is the half-open probe: it replays the
	// full backlog from the frozen watermark, so drift and watermark age
	// both recover within the two-round bound.
	for r := 0; r < 2; r++ {
		round()
	}
	if d := driftMax(); d > 0.05 {
		t.Errorf("drift max = %v after recovery, want < 0.05", d)
	}
	if age := wmAge(); age < 0 || age > (2*chaosRound+chaosRound).Seconds() {
		t.Errorf("watermark age = %vs after recovery, want fresh", age)
	}
}
