package testbed

import (
	"bytes"
	"context"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestDeployLiveNoGoroutineLeak pins the deployment's full goroutine
// lifecycle, including the failure path that used to leak: a WaitReady that
// fails (here: cancelled context) leaves the caller abandoning the
// deployment, and the polling client plus the peer-mesh transports must not
// strand keep-alive connection goroutines behind the 90-second idle timeout
// once Close returns.
func TestDeployLiveNoGoroutineLeak(t *testing.T) {
	pol, err := policy.FromShares(map[string]float64{"alice": 0.5, "bob": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	d, err := DeployLive(LiveConfig{
		Sites:            3,
		Policy:           pol,
		ExchangeInterval: 20 * time.Millisecond,
		RefreshInterval:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A successful wait first: the polling client really dials every site,
	// so its per-call connections exist and must be drained by WaitReady
	// itself (the deployment keeps running after a successful wait).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := d.WaitReady(ctx); err != nil {
		cancel()
		t.Fatalf("WaitReady: %v", err)
	}
	cancel()

	// Let the exchange tickers run a few rounds so the peer-mesh transports
	// hold live keep-alive connections when Close runs.
	time.Sleep(100 * time.Millisecond)

	// The failure path: a dead context makes WaitReady fail the way a
	// timed-out deployment does, and the caller tears the deployment down.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if err := d.WaitReady(dead); err == nil {
		t.Fatal("WaitReady with a cancelled context reported ready")
	}
	d.Close()

	// Transport goroutines exit asynchronously after their connections
	// close; poll briefly instead of asserting an instant count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			var buf bytes.Buffer
			_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutines: %d before deploy, %d five seconds after Close\n%s",
				before, runtime.NumGoroutine(), buf.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
