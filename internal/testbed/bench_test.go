package testbed

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// BenchmarkTestbedRun measures a complete reduced testbed run: 2,000 jobs
// over two sites with the full Aequus stack, identity resolution, exchange
// and pre-calculation — the end-to-end cost per simulated experiment.
func BenchmarkTestbedRun(b *testing.B) {
	dur := 3 * time.Hour
	m := workload.NationalGrid2012(dur)
	tr, err := m.Generate(workload.GenerateOptions{
		TotalJobs: 2000, Start: start, Span: dur, Seed: 5,
		CalibrateUsage: true, MaxDuration: dur / 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr = workload.ScaleToLoad(tr, 2*16, 0.9, dur)
	cfg := Config{
		Sites: 2, CoresPerSite: 16, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(), Trace: tr, Seed: 5,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
