package testbed

import (
	"math"
	"testing"
	"time"

	"repro/internal/fairshare"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

var start = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

// smallTrace builds a calibrated, load-scaled trace for quick tests.
func smallTrace(t *testing.T, jobs, sites, cores int, dur time.Duration, load float64, seed int64) *trace.Trace {
	t.Helper()
	m := workload.NationalGrid2012(dur)
	tr, err := m.Generate(workload.GenerateOptions{
		TotalJobs: jobs, Start: start, Span: dur, Seed: seed,
		CalibrateUsage: true, MaxDuration: dur / 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return workload.ScaleToLoad(tr, sites*cores, load, dur)
}

func TestBaselineConvergence(t *testing.T) {
	dur := 6 * time.Hour
	tr := smallTrace(t, 4000, 4, 24, dur, 0.95, 1)
	cfg := Config{
		Sites: 4, CoresPerSite: 24, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(),
		Trace:        tr, Seed: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 4000 {
		t.Errorf("submitted = %d", res.Submitted)
	}
	if res.Completed < 3000 {
		t.Errorf("completed = %d, want most of the trace", res.Completed)
	}
	// The paper reports total utilization between 93% and 97%; with a
	// smaller test we accept a looser band.
	if res.Utilization < 0.6 || res.Utilization > 1.0 {
		t.Errorf("utilization = %.3f", res.Utilization)
	}
	// Usage shares in the second half of the run should sit near the policy
	// targets for the two dominant users.
	half := start.Add(dur / 2)
	for _, u := range []string{workload.U65, workload.U30} {
		target := workload.BaselineShares()[u]
		mae := metrics.MeanAbsError(res.UsageShares[u], target, half)
		if math.IsNaN(mae) || mae > 0.20 {
			t.Errorf("%s usage-share MAE = %.3f vs target %.3f", u, mae, target)
		}
	}
	// Priorities stay within the theoretical bounds.
	cfgFS := fairshare.Config{DistanceWeight: 0.5, Resolution: 10000}
	for u, s := range res.Priorities {
		bound := fairshare.MaxPriority(cfgFS, workload.BaselineShares()[u])
		for _, v := range s.Values {
			if v > bound+1e-9 || v < -1 {
				t.Fatalf("%s priority %g outside [-1, %g]", u, v, bound)
			}
		}
	}
}

func TestPartialParticipation(t *testing.T) {
	dur := 6 * time.Hour
	tr := smallTrace(t, 3000, 4, 24, dur, 0.9, 2)
	modes := []SiteMode{
		{Contribute: true, UseGlobal: true},
		{Contribute: true, UseGlobal: true},
		{Contribute: false, UseGlobal: true}, // reads global, does not contribute
		{Contribute: true, UseGlobal: false}, // contributes, schedules on local only
	}
	res, err := Run(Config{
		Sites: 4, CoresPerSite: 24, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(),
		Trace:        tr, Seed: 2, SiteModes: modes,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The read-only site's priorities must track the fully participating
	// sites closely; the local-only site deviates more.
	half := start.Add(dur / 2)
	diff := func(a, b metrics.PerUser, user string) float64 {
		sa, sb := a[user], b[user]
		if sa == nil || sb == nil {
			t.Fatalf("missing series for %s", user)
		}
		var sum float64
		n := 0
		for i, at := range sa.Times {
			if at.Before(half) {
				continue
			}
			v := sb.At(at)
			if math.IsNaN(v) {
				continue
			}
			sum += math.Abs(sa.Values[i] - v)
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
	dReader := diff(res.SitePriorities[0], res.SitePriorities[2], workload.U65)
	dLocal := diff(res.SitePriorities[0], res.SitePriorities[3], workload.U65)
	if math.IsNaN(dReader) || math.IsNaN(dLocal) {
		t.Fatal("missing priority samples")
	}
	if dReader > dLocal {
		t.Errorf("read-only site deviation %.4f should be <= local-only %.4f", dReader, dLocal)
	}
}

func TestMauiSubstrate(t *testing.T) {
	dur := 3 * time.Hour
	tr := smallTrace(t, 1500, 2, 16, dur, 0.85, 3)
	res, err := Run(Config{
		Sites: 2, CoresPerSite: 16, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(),
		Trace:        tr, Seed: 3, RM: RMMaui,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 1000 {
		t.Errorf("maui completed = %d", res.Completed)
	}
	if res.Utilization < 0.4 {
		t.Errorf("maui utilization = %.3f", res.Utilization)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing trace accepted")
	}
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 1, User: "u", Submit: start, Duration: time.Minute, Procs: 1}}}
	if _, err := Run(Config{Trace: tr}); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := Run(Config{Trace: tr, PolicyShares: map[string]float64{"u": 1},
		Sites: 2, SiteModes: []SiteMode{{}}}); err == nil {
		t.Error("mismatched site modes accepted")
	}
	if _, err := Run(Config{Trace: tr, PolicyShares: map[string]float64{"u": 1}, RM: "pbs"}); err == nil {
		t.Error("unknown RM accepted")
	}
}

func TestSubmitRates(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 120; i++ {
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID: int64(i), User: "u", Procs: 1, Duration: time.Second,
			Submit: start.Add(time.Duration(i%2) * time.Minute),
		})
	}
	sustained, peak := submitRates(tr, start, time.Hour)
	if math.Abs(sustained-2) > 1e-9 {
		t.Errorf("sustained = %g jobs/min", sustained)
	}
	if peak != 60 {
		t.Errorf("peak = %g jobs/min", peak)
	}
	s0, p0 := submitRates(tr, start, 0)
	if s0 != 0 || p0 != 0 {
		t.Error("degenerate duration")
	}
}

func TestDeterministicRuns(t *testing.T) {
	dur := 2 * time.Hour
	tr := smallTrace(t, 800, 2, 8, dur, 0.8, 4)
	cfg := Config{
		Sites: 2, CoresPerSite: 8, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(), Trace: tr, Seed: 4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Utilization != b.Utilization {
		t.Errorf("runs diverged: %d/%f vs %d/%f", a.Completed, a.Utilization, b.Completed, b.Utilization)
	}
	sa, sb := a.UsageShares[workload.U65], b.UsageShares[workload.U65]
	if sa.Len() != sb.Len() {
		t.Fatal("sample counts differ")
	}
	for i := range sa.Values {
		if sa.Values[i] != sb.Values[i] {
			t.Fatal("usage-share series diverged")
		}
	}
}
