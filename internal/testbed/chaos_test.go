package testbed

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/usage"
)

const chaosRound = 10 * time.Minute

// chaosFederation is three full Aequus sites on a shared simulated clock,
// with per-site registries so metrics stay separable.
type chaosFederation struct {
	sites []*core.Site
	regs  []*telemetry.Registry
}

func newChaosFederation(t *testing.T, clock simclock.Clock) *chaosFederation {
	t.Helper()
	pol, err := policy.FromShares(map[string]float64{
		"alice": 0.5, "bob": 0.3, "carol": 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &chaosFederation{}
	for i := 0; i < 3; i++ {
		reg := telemetry.NewRegistry()
		site, err := core.NewSite(core.SiteConfig{
			Name:                  siteName(i),
			Policy:                pol,
			Clock:                 clock,
			BinWidth:              chaosRound,
			Decay:                 usage.None{},
			Contribute:            true,
			UseGlobal:             true,
			UMSCacheTTL:           chaosRound,
			FCSCacheTTL:           chaosRound,
			FCSSynchronousRefresh: true,
			LibCacheTTL:           chaosRound / 2,
			Metrics:               reg,
			PeerTimeout:           time.Second,
			PeerBreaker: resilience.BreakerConfig{
				Threshold: 2,
				// Two rounds: an open circuit skips one exchange, then gets
				// its half-open probe — so after faults clear, recovery costs
				// at most two rounds (the acceptance bound).
				Cooldown: 2 * chaosRound,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.sites = append(f.sites, site)
		f.regs = append(f.regs, reg)
	}
	return f
}

// report feeds one deterministic round of usage: each site completes one job
// for "its" user. Both federations receive identical reports.
func (f *chaosFederation) report(now time.Time) {
	for i, user := range []string{"alice", "bob", "carol"} {
		f.sites[i].USS.ReportJob(user, now, time.Duration(i+1)*30*time.Minute, 1)
	}
}

// round runs one exchange + refresh pass over all sites, bounding each
// site's exchange with a deadline, and fails the test if any round overruns
// it (a hung peer must never stall the driver). Per-site pull errors are
// returned for the caller to assert on.
func (f *chaosFederation) round(t *testing.T, deadline time.Duration) []error {
	t.Helper()
	errs := make([]error, len(f.sites))
	for i, s := range f.sites {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		errs[i] = s.ExchangeContext(ctx)
		// A per-peer timeout legitimately surfaces as DeadlineExceeded in the
		// round's error; only the round context expiring means an overrun.
		overran := ctx.Err() != nil
		cancel()
		if overran {
			t.Fatalf("site %d exchange overran its %v deadline", i, deadline)
		}
	}
	for i, s := range f.sites {
		if err := s.Refresh(); err != nil {
			t.Fatalf("site %d refresh: %v", i, err)
		}
	}
	return errs
}

// priorities reads site 0's served values for every user, asserting the
// read path works — this is the "local serving never blocks" probe.
func (f *chaosFederation) priorities(t *testing.T) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, u := range []string{"alice", "bob", "carol"} {
		resp, err := f.sites[0].FCS.Priority(u)
		if err != nil {
			t.Fatalf("local serving failed for %s: %v", u, err)
		}
		out[u] = resp.Value
	}
	return out
}

// TestChaosConvergenceAfterFaultsClear is the acceptance gauntlet: site 0's
// link to site 1 is permanently down and its link to site 2 flaps at a 30%
// error rate. Local priority serving must keep working throughout, every
// exchange round must complete within its deadline, and within two rounds
// of the faults clearing site 0's priorities must exactly equal those of an
// identically-fed fault-free twin federation.
func TestChaosConvergenceAfterFaultsClear(t *testing.T) {
	t0 := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(t0)
	faulty := newChaosFederation(t, clock)
	healthy := newChaosFederation(t, clock)

	const faultRounds = 6
	tClear := t0.Add(faultRounds * chaosRound)
	injDead := faultinject.New(clock, 1, faultinject.Window{
		From: t0, Until: tClear, Kind: faultinject.Error,
	}).WithMetrics(faulty.regs[0])
	injFlap := faultinject.New(clock, 42, faultinject.Window{
		From: t0, Until: tClear, Kind: faultinject.Flap, Rate: 0.3,
	}).WithMetrics(faulty.regs[0])

	// Faulty federation: site 0 reaches its peers through the injectors;
	// every other link is clean. The healthy twin is a full clean mesh.
	faulty.sites[0].ConnectPeer(&FaultyPeer{Peer: faulty.sites[1].USS, Inj: injDead})
	faulty.sites[0].ConnectPeer(&FaultyPeer{Peer: faulty.sites[2].USS, Inj: injFlap})
	for i := 1; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				faulty.sites[i].ConnectPeer(faulty.sites[j].USS)
			}
		}
	}
	core.FullMesh(healthy.sites)

	sawExchangeError := false
	for r := 0; r < faultRounds; r++ {
		now := clock.Now()
		faulty.report(now)
		healthy.report(now)
		clock.Advance(chaosRound)
		if errs := faulty.round(t, 5*time.Second); errs[0] != nil {
			sawExchangeError = true
		}
		healthy.round(t, 5*time.Second)
		// The acceptance property under fault: the local read path serves.
		faulty.priorities(t)
	}
	if !sawExchangeError {
		t.Error("no exchange error surfaced while a peer was down")
	}

	// The dead link must have tripped its breaker and been skipped.
	var buf bytes.Buffer
	_ = faulty.regs[0].WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		`aequus_peer_circuit_trips_total{peer="site01"}`,
		`aequus_uss_exchange_skipped_total{peer="site01"}`,
		`aequus_uss_exchange_errors_total{peer="site01"}`,
		`aequus_fault_injected_total{kind="error"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Faults clear (windows lapse on the clock). Two rounds later the
	// faulty federation must have caught up exactly: the dead peer's
	// watermark never advanced, so its first healthy pull replays the full
	// history.
	for r := 0; r < 2; r++ {
		now := clock.Now()
		faulty.report(now)
		healthy.report(now)
		clock.Advance(chaosRound)
		faulty.round(t, 5*time.Second)
		healthy.round(t, 5*time.Second)
	}
	got, want := faulty.priorities(t), healthy.priorities(t)
	for _, u := range []string{"alice", "bob", "carol"} {
		if got[u] != want[u] {
			t.Errorf("%s priority = %v after recovery, fault-free twin has %v", u, got[u], want[u])
		}
	}
	// Sanity: the comparison is meaningful only if usage actually shaped
	// the priorities (all-equal values would pass vacuously).
	if want["alice"] == want["carol"] {
		t.Errorf("fault-free priorities degenerate: %+v", want)
	}

	// And the breaker has closed again.
	for _, st := range faulty.sites[0].USS.PeerStatuses() {
		if st.Breaker != "closed" {
			t.Errorf("peer %s breaker = %s after recovery, want closed", st.Site, st.Breaker)
		}
		if st.Site == "site01" && st.LastSuccess.IsZero() {
			t.Error("recovered dead peer has no LastSuccess")
		}
	}
}

// TestChaosDeadPeerNeverBlocksLocalServing pins the sharper liveness claim:
// with every peer unreachable and hanging to its deadline, local reporting,
// refresh and priority serving still work, and each exchange round is
// bounded by the per-peer timeout rather than hanging forever.
func TestChaosDeadPeerNeverBlocksLocalServing(t *testing.T) {
	t0 := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := simclock.NewSim(t0)
	f := newChaosFederation(t, clock)
	inj := faultinject.New(clock, 7, faultinject.Window{Kind: faultinject.Timeout})
	f.sites[0].ConnectPeer(&FaultyPeer{Peer: f.sites[1].USS, Inj: inj})
	f.sites[0].ConnectPeer(&FaultyPeer{Peer: f.sites[2].USS, Inj: inj})

	for r := 0; r < 4; r++ {
		f.report(clock.Now())
		clock.Advance(chaosRound)
		start := time.Now()
		errs := f.round(t, 5*time.Second)
		if r == 0 && errs[0] == nil {
			t.Error("hanging peers reported no exchange error")
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("round took %v with hanging peers", elapsed)
		}
		got := f.priorities(t)
		// Site 0 still prioritizes from local usage: alice reported there.
		if got["alice"] <= 0 {
			t.Errorf("round %d: alice priority = %v, want > 0 from local usage", r, got["alice"])
		}
	}
}
