package testbed

// This file adds the *live* face of the testbed: where Run drives an
// emulated federation on a simulated clock, DeployLive assembles the same
// multi-site stack on the real clock behind real HTTP listeners — the
// deployment the macro load harness (cmd/loadgen) fires traffic at. Each
// site gets a full core.Site, its own metrics registry, an httpapi server on
// a loopback listener, full-mesh peering over HTTP clients, and background
// exchange/refresh tickers; optional fault windows put a deterministic
// fault injector in front of every site's outgoing peer pulls so exchange
// churn happens while the serving path is under load.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fairshare"
	"repro/internal/faultinject"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/services/httpapi"
	"repro/internal/telemetry"
	"repro/internal/usage"
	"repro/internal/vector"
	"repro/internal/wire"
)

// LiveFault schedules one fault window relative to deployment start,
// applied to every site's outgoing peer pulls.
type LiveFault struct {
	// After is the window's start offset from deployment start; For is its
	// length (zero = until shutdown).
	After, For time.Duration
	// Kind is the injected fault.
	Kind faultinject.Kind
	// Rate is the per-call probability for Flap windows.
	Rate float64
	// Latency is the injected delay for Latency windows.
	Latency time.Duration
}

// LiveConfig parameterizes a live deployment. Zero values get defaults
// sized for short load runs.
type LiveConfig struct {
	// Sites is the number of aequusd-equivalent stacks (default 2).
	Sites int
	// Policy is the shared usage policy (required).
	Policy *policy.Tree
	// Seed drives the per-site fault injectors.
	Seed int64
	// BinWidth is the usage histogram interval (default 1m).
	BinWidth time.Duration
	// Decay is the usage decay (default usage.None{}, which keeps UMS
	// deltas sparse so steady-state refreshes run incrementally — the same
	// reasoning as aequusd's -half-life 0 mode).
	Decay usage.Decay
	// ExchangeInterval / RefreshInterval drive the background tickers
	// (default 1s each).
	ExchangeInterval, RefreshInterval time.Duration
	// PeerTimeout bounds one peer pull (default 2s).
	PeerTimeout time.Duration
	// Faults are injected into every site's outgoing peer pulls.
	Faults []LiveFault
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.Sites <= 0 {
		c.Sites = 2
	}
	if c.BinWidth <= 0 {
		c.BinWidth = time.Minute
	}
	if c.Decay == nil {
		c.Decay = usage.None{}
	}
	if c.ExchangeInterval <= 0 {
		c.ExchangeInterval = time.Second
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	return c
}

// LiveSite is one running site of a live deployment.
type LiveSite struct {
	// Site is the full service stack.
	Site *core.Site
	// URL is the site's HTTP base URL, e.g. "http://127.0.0.1:40001".
	URL string
	// Registry holds the site's metrics.
	Registry *telemetry.Registry
	// Injector governs the site's outgoing peer pulls (always present;
	// idle without fault windows).
	Injector *faultinject.Injector

	server   *http.Server
	listener net.Listener
}

// LiveDeployment is a set of live sites plus their background machinery.
type LiveDeployment struct {
	Sites []*LiveSite
	// StartedAt anchors the fault windows.
	StartedAt time.Time

	cfg  LiveConfig
	stop chan struct{}
	wg   sync.WaitGroup

	// clients are the HTTP clients this deployment created (peer mesh). Close
	// drains their idle keep-alive connections; otherwise each surviving
	// connection parks two transport goroutines for up to IdleConnTimeout
	// after the deployment is gone.
	mu      sync.Mutex
	clients []*http.Client
}

// trackClient registers an HTTP client whose idle connections Close must
// drain.
func (d *LiveDeployment) trackClient(hc *http.Client) {
	d.mu.Lock()
	d.clients = append(d.clients, hc)
	d.mu.Unlock()
}

// DeployLive builds, wires and starts cfg.Sites full Aequus stacks on
// loopback HTTP with full-mesh peering, runs one synchronous refresh per
// site so /readyz and /fairshare work immediately, and starts the
// exchange/refresh tickers. Callers must Close the deployment.
func DeployLive(cfg LiveConfig) (*LiveDeployment, error) {
	cfg = cfg.withDefaults()
	if cfg.Policy == nil {
		return nil, fmt.Errorf("testbed: live deployment requires a policy")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}

	d := &LiveDeployment{cfg: cfg, stop: make(chan struct{}), StartedAt: time.Now()}
	ok := false
	defer func() {
		if !ok {
			d.Close()
		}
	}()

	// Listeners first: peer URLs must exist before the sites are wired.
	for i := 0; i < cfg.Sites; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("testbed: listen for %s: %w", siteName(i), err)
		}
		windows := make([]faultinject.Window, 0, len(cfg.Faults))
		for _, f := range cfg.Faults {
			w := faultinject.Window{
				From:    d.StartedAt.Add(f.After),
				Kind:    f.Kind,
				Rate:    f.Rate,
				Latency: f.Latency,
			}
			if f.For > 0 {
				w.Until = d.StartedAt.Add(f.After + f.For)
			}
			windows = append(windows, w)
		}
		ls := &LiveSite{
			URL:      "http://" + l.Addr().String(),
			Registry: telemetry.NewRegistry(),
			Injector: faultinject.New(nil, cfg.Seed+int64(i), windows...),
			listener: l,
		}
		ls.Injector.WithMetrics(ls.Registry)
		d.Sites = append(d.Sites, ls)
	}

	for i, ls := range d.Sites {
		site, err := core.NewSite(core.SiteConfig{
			Name:        siteName(i),
			Policy:      cfg.Policy,
			BinWidth:    cfg.BinWidth,
			Decay:       cfg.Decay,
			Contribute:  true,
			UseGlobal:   true,
			Projection:  vector.Percental{},
			Fairshare:   fairshare.Config{DistanceWeight: 0.5, Resolution: 10000},
			UMSCacheTTL: cfg.RefreshInterval,
			FCSCacheTTL: cfg.RefreshInterval,
			LibCacheTTL: cfg.RefreshInterval,
			Metrics:     ls.Registry,
			PeerTimeout: cfg.PeerTimeout,
			PeerBreaker: resilience.BreakerConfig{
				Threshold: 5,
				Cooldown:  2 * cfg.ExchangeInterval,
			},
		})
		if err != nil {
			return nil, err
		}
		ls.Site = site
	}

	// Full-mesh peering over HTTP, each pull subject to the pulling site's
	// fault injector — the churn happens on the wire, like a real partition.
	for i, ls := range d.Sites {
		for j, peer := range d.Sites {
			if i == j {
				continue
			}
			hc := httpapi.NewHTTPClient(cfg.PeerTimeout)
			hc.Transport = &faultinject.RoundTripper{Base: hc.Transport, Injector: ls.Injector}
			d.trackClient(hc)
			ls.Site.ConnectPeer(httpapi.NewClientWith(peer.URL, siteName(j), httpapi.ClientOptions{
				HTTP:    hc,
				Metrics: ls.Registry,
			}))
		}
	}

	for i, ls := range d.Sites {
		srv := httpapi.NewServerWith(ls.Site.PDS, ls.Site.USS, ls.Site.UMS, ls.Site.FCS, ls.Site.IRS,
			httpapi.ServerOptions{
				Registry:      ls.Registry,
				ReadyMaxStale: 5 * cfg.RefreshInterval,
			})
		ls.server = &http.Server{Handler: srv}
		l := ls.listener
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			_ = ls.server.Serve(l)
		}()
		// Prime the pre-computation so the first load-generated request hits
		// a published snapshot instead of a cold-start refresh.
		if err := ls.Site.Refresh(); err != nil {
			return nil, fmt.Errorf("testbed: priming %s: %w", siteName(i), err)
		}
	}

	for _, ls := range d.Sites {
		site := ls.Site
		d.every(cfg.ExchangeInterval, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*cfg.PeerTimeout)
			defer cancel()
			// Errors are expected during fault windows; partial rounds are
			// the behaviour under test, not a deployment failure.
			_ = site.ExchangeContext(ctx)
		})
		d.every(cfg.RefreshInterval, func() { _ = site.Refresh() })
	}

	ok = true
	return d, nil
}

// every runs fn on a ticker until the deployment stops.
func (d *LiveDeployment) every(interval time.Duration, fn func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// URLs returns the sites' base URLs in site order.
func (d *LiveDeployment) URLs() []string {
	out := make([]string, len(d.Sites))
	for i, ls := range d.Sites {
		out[i] = ls.URL
	}
	return out
}

// WaitReady polls every site's /readyz until all report ready or ctx ends.
// The polling client is scoped to this call: its connections are drained
// before returning on every path, so a failed wait (the caller typically
// abandons the deployment) does not strand transport goroutines behind the
// 90-second idle timeout.
func (d *LiveDeployment) WaitReady(ctx context.Context) error {
	hc := httpapi.NewHTTPClient(0)
	defer hc.CloseIdleConnections()
	for _, ls := range d.Sites {
		client := httpapi.NewClientWith(ls.URL, "", httpapi.ClientOptions{HTTP: hc})
		for {
			resp, err := client.Ready(ctx)
			if err == nil && resp.Ready {
				break
			}
			select {
			case <-ctx.Done():
				if err == nil {
					err = fmt.Errorf("not ready: %+v", readyReasons(resp))
				}
				return fmt.Errorf("testbed: %s never became ready: %w", ls.URL, err)
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	return nil
}

func readyReasons(r wire.ReadyResponse) map[string]string {
	out := map[string]string{}
	for name, c := range r.Components {
		if !c.Ready {
			out[name] = c.Reason
		}
	}
	return out
}

// Close stops the tickers, shuts the HTTP servers down, and drains the idle
// connections of every client the deployment created. The drain runs after
// the tickers have exited, when all peer connections are back in the idle
// pools — closing them there releases the per-connection transport
// goroutines immediately instead of after IdleConnTimeout.
func (d *LiveDeployment) Close() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	for _, ls := range d.Sites {
		if ls.server != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = ls.server.Shutdown(ctx)
			cancel()
		} else if ls.listener != nil {
			_ = ls.listener.Close()
		}
	}
	d.wg.Wait()
	d.mu.Lock()
	clients := append([]*http.Client(nil), d.clients...)
	d.mu.Unlock()
	for _, hc := range clients {
		hc.CloseIdleConnections()
	}
}
