package testbed

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/services/ums"
	"repro/internal/services/uss"
	"repro/internal/simclock"
	"repro/internal/usage"
)

// TestUsagePipelineScale drives the full usage-accounting pipeline — job
// reports into striped histograms, incremental inter-site exchange, the
// USS one-pass global merge and the UMS single-flight recompute — at a
// user count well past anything the scheduler tests reach, and checks the
// decayed totals against an independently maintained ledger.
func TestUsagePipelineScale(t *testing.T) {
	users := 2000
	rounds := 6
	if testing.Short() {
		users, rounds = 300, 3
	}
	const sites = 3
	halfLife := 24 * time.Hour
	decay := usage.ExponentialHalfLife{HalfLife: halfLife}
	clock := simclock.NewSim(start)

	svcs := make([]*uss.Service, sites)
	for i := range svcs {
		svcs[i] = uss.New(uss.Config{
			Site:       fmt.Sprintf("site%d", i),
			BinWidth:   time.Hour,
			Contribute: true,
			Clock:      clock,
		})
	}
	for i, s := range svcs {
		for j, p := range svcs {
			if i != j {
				s.AddPeer(p)
			}
		}
	}
	monitor := ums.New(ums.Config{Decay: decay, Clock: clock},
		ums.SourceFunc(func(now time.Time, d usage.Decay) (map[string]float64, error) {
			return svcs[0].GlobalTotals(now, d), nil
		}))

	// ledger[user][binStart] mirrors what every site reported, per bin
	// (completion-time attribution, like uss.ReportJob).
	ledger := map[string]map[int64]float64{}
	rng := rand.New(rand.NewSource(17))
	now := start
	for round := 0; round < rounds; round++ {
		for i := 0; i < users; i++ {
			user := fmt.Sprintf("u%05d", i)
			site := svcs[rng.Intn(sites)]
			// Completion times move forward with the clock: the incremental
			// exchange's soundness rests on completion-time attribution
			// (closed bins are immutable), so completions behind the
			// watermark would — by design — never transfer.
			end := now.Add(time.Duration(rng.Intn(55)) * time.Minute)
			dur := time.Duration(1+rng.Intn(180)) * time.Minute
			procs := 1 + rng.Intn(8)
			site.ReportJob(user, end.Add(-dur), dur, procs)

			binStart := end.Truncate(time.Hour).Unix()
			if ledger[user] == nil {
				ledger[user] = map[int64]float64{}
			}
			ledger[user][binStart] += dur.Seconds() * float64(procs)
		}
		for _, s := range svcs {
			if _, err := s.Exchange(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(2 * time.Hour)
		now = clock.Now()
		monitor.Invalidate()
		got, _, err := monitor.UsageTotals()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ledger) {
			t.Fatalf("round %d: %d users in totals, want %d", round, len(got), len(ledger))
		}
		// Spot-check a deterministic sample of users against the ledger.
		for i := 0; i < 50; i++ {
			user := fmt.Sprintf("u%05d", rng.Intn(users))
			var want float64
			for bin, v := range ledger[user] {
				age := now.Sub(time.Unix(bin, 0).Add(30 * time.Minute))
				if age < 0 {
					age = 0
				}
				want += v * math.Exp2(-float64(age)/float64(halfLife))
			}
			if g := got[user]; math.Abs(g-want) > 1e-9*math.Max(want, 1) {
				t.Fatalf("round %d: user %s = %g, want %g", round, user, g, want)
			}
		}
	}
}
