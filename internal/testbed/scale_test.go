package testbed

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestPaperScale runs the full paper-scale configuration: 6 clusters of 40
// virtual hosts (240 total, ~10% of the national grid), 43,200 jobs over a
// six-hour test, 95% offered load. The paper reports total utilization
// between 93% and 97% and a sustained submission rate of about 120 jobs per
// minute.
func TestPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	dur := 6 * time.Hour
	tr := smallTrace(t, 43200, 6, 40, dur, 0.95, 42)
	res, err := Run(Config{
		Sites: 6, CoresPerSite: 40, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(), Trace: tr, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 43200 {
		t.Errorf("submitted = %d, want 43200", res.Submitted)
	}
	if res.Utilization < 0.90 || res.Utilization > 0.99 {
		t.Errorf("utilization = %.3f, want in the paper's 93-97%% neighbourhood", res.Utilization)
	}
	if res.SustainedRate < 110 || res.SustainedRate > 130 {
		t.Errorf("sustained rate = %.1f jobs/min, want ~120", res.SustainedRate)
	}
	if res.Completed < res.Submitted*95/100 {
		t.Errorf("completed = %d of %d", res.Completed, res.Submitted)
	}
}
