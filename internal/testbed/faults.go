package testbed

// This file wires faults into testbed experiments: wrappers that put a
// deterministic fault injector between a site and the peers (or sources) it
// talks to, so a run can emulate dead, flaky, slow or resetting sites on the
// simulated clock and assert that prioritization degrades and recovers the
// way Section IV's partial-exchange analysis predicts.

import (
	"context"
	"time"

	"repro/internal/faultinject"
	"repro/internal/services/uss"
	"repro/internal/usage"
	"repro/internal/wire"
)

// FaultyPeer wraps a uss.Peer with a fault injector: every pull first asks
// the injector for a verdict, so exchange traffic to this peer fails, hangs
// (to the pull's deadline) or slows per the configured windows while the
// underlying peer stays healthy.
type FaultyPeer struct {
	Peer uss.Peer
	Inj  *faultinject.Injector
}

// Site implements uss.Peer.
func (p *FaultyPeer) Site() string { return p.Peer.Site() }

// RecordsSince implements uss.Peer, subject to injected faults.
func (p *FaultyPeer) RecordsSince(ctx context.Context, t time.Time) ([]usage.Record, error) {
	if err := p.Inj.Decide().Resolve(ctx); err != nil {
		return nil, err
	}
	return p.Peer.RecordsSince(ctx, t)
}

// FaultySource wraps a libaequus fairshare source the same way, emulating an
// unreachable or flaky FCS in front of a scheduler.
type FaultySource struct {
	Source interface {
		Priority(string) (wire.FairshareResponse, error)
	}
	Inj *faultinject.Injector
}

// Priority implements libaequus.FairshareSource, subject to injected faults.
func (s *FaultySource) Priority(user string) (wire.FairshareResponse, error) {
	if err := s.Inj.Decide().Resolve(context.Background()); err != nil {
		return wire.FairshareResponse{}, err
	}
	return s.Source.Priority(user)
}
