package testbed

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
)

func TestHierarchicalPolicyRun(t *testing.T) {
	dur := 2 * time.Hour
	tr := smallTrace(t, 1200, 2, 12, dur, 0.9, 21)

	targets := workload.BaselineShares()
	pol := policy.NewTree()
	mustAdd := func(parent, name string, share float64) {
		t.Helper()
		if _, err := pol.Add(parent, name, share); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("", "voA", targets[workload.U65]+targets[workload.U3])
	mustAdd("", "voB", targets[workload.U30]+targets[workload.UOth])
	mustAdd("/voA", workload.U65, targets[workload.U65])
	mustAdd("/voA", workload.U3, targets[workload.U3])
	mustAdd("/voB", workload.U30, targets[workload.U30])
	mustAdd("/voB", workload.UOth, targets[workload.UOth])

	res, err := Run(Config{
		Sites: 2, CoresPerSite: 12, Start: start, Duration: dur,
		PolicyShares: targets, Policy: pol, Trace: tr, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 800 {
		t.Errorf("completed = %d", res.Completed)
	}
	// Priorities must be collected for the leaf users even under the
	// hierarchical tree.
	for _, u := range []string{workload.U65, workload.U30} {
		if res.Priorities[u] == nil || res.Priorities[u].Len() == 0 {
			t.Errorf("no priority series for %s", u)
		}
	}
}

func TestHierarchicalPolicyValidated(t *testing.T) {
	tr := smallTrace(t, 100, 1, 4, time.Hour, 0.5, 22)
	bad := policy.NewTree()
	bad.Root.Children = []*policy.Node{{Name: "x", Share: -1}}
	_, err := Run(Config{
		Sites: 1, CoresPerSite: 4, Start: start, Duration: time.Hour,
		PolicyShares: workload.BaselineShares(), Policy: bad, Trace: tr,
	})
	if err == nil {
		t.Error("invalid hierarchical policy accepted")
	}
}

func TestWaitStatsCollected(t *testing.T) {
	dur := 2 * time.Hour
	tr := smallTrace(t, 1000, 2, 8, dur, 0.95, 23)
	res, err := Run(Config{
		Sites: 2, CoresPerSite: 8, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(), Trace: tr, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ws := range res.WaitStats {
		total += ws.Count
		if ws.MeanWaitSeconds < 0 || ws.MeanBoundedSlowdown < 0 {
			t.Errorf("negative wait stats: %+v", ws)
		}
	}
	if int64(total) != res.Completed {
		t.Errorf("wait-stat count %d != completed %d", total, res.Completed)
	}
}

func TestStrictOrderConfig(t *testing.T) {
	dur := time.Hour
	tr := smallTrace(t, 600, 1, 8, dur, 0.9, 24)
	strict, err := Run(Config{
		Sites: 1, CoresPerSite: 8, Start: start, Duration: dur,
		PolicyShares: workload.BaselineShares(), Trace: tr, Seed: 24,
		StrictOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With single-proc jobs strict order behaves like backfill; the run
	// must simply complete normally.
	if strict.Completed < 400 {
		t.Errorf("strict-order completed = %d", strict.Completed)
	}
}
