package testbed

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/policy"
	"repro/internal/services/httpapi"
	"repro/internal/wire"
)

func livePolicy(t *testing.T) *policy.Tree {
	t.Helper()
	pol, err := policy.FromShares(map[string]float64{"alice": 0.5, "bob": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func deployLive(t *testing.T, cfg LiveConfig) *LiveDeployment {
	t.Helper()
	dep, err := DeployLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := dep.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestDeployLiveUsagePropagates: usage reported to one site flows through
// the background exchange and refresh tickers and shifts the *other* site's
// served priorities — the full wire path the load harness depends on.
func TestDeployLiveUsagePropagates(t *testing.T) {
	dep := deployLive(t, LiveConfig{
		Sites:            2,
		Policy:           livePolicy(t),
		Seed:             1,
		ExchangeInterval: 100 * time.Millisecond,
		RefreshInterval:  100 * time.Millisecond,
	})
	if len(dep.URLs()) != 2 {
		t.Fatalf("URLs() = %v, want 2 entries", dep.URLs())
	}

	c0 := httpapi.NewClient(dep.Sites[0].URL, "")
	c1 := httpapi.NewClient(dep.Sites[1].URL, "")

	// alice burns two hours on site 0.
	err := c0.ReportJobBatch([]wire.UsageReport{
		{User: "alice", Start: time.Now().Add(-2 * time.Hour), DurationSeconds: 7200, Procs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Equal shares, only alice has usage: once site 1 has exchanged and
	// refreshed, it must prioritize bob over alice.
	deadline := time.Now().Add(15 * time.Second)
	for {
		a, errA := c1.Priority("alice")
		b, errB := c1.Priority("bob")
		if errA == nil && errB == nil && b.Value > a.Value {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("site 1 never saw site 0's usage: alice %+v (%v), bob %+v (%v)",
				a, errA, b, errB)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestDeployLiveServesThroughFaultWindow: with every peer pull failing from
// the first tick, readiness and the serving path must stay healthy — peer
// churn is an exchange-layer problem, never a client-visible one.
func TestDeployLiveServesThroughFaultWindow(t *testing.T) {
	dep := deployLive(t, LiveConfig{
		Sites:            2,
		Policy:           livePolicy(t),
		Seed:             7,
		ExchangeInterval: 50 * time.Millisecond,
		RefreshInterval:  50 * time.Millisecond,
		PeerTimeout:      500 * time.Millisecond,
		Faults: []LiveFault{
			{After: 0, For: 0, Kind: faultinject.Flap, Rate: 1},
		},
	})

	c := httpapi.NewClient(dep.Sites[0].URL, "")
	for i := 0; i < 20; i++ {
		if _, err := c.Priority("alice"); err != nil {
			t.Fatalf("lookup %d failed during total peer outage: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Ready(ctx)
	if err != nil || !resp.Ready {
		t.Fatalf("site not ready under peer outage: %+v, %v", resp, err)
	}
}

func TestDeployLiveRequiresPolicy(t *testing.T) {
	if _, err := DeployLive(LiveConfig{Sites: 1}); err == nil {
		t.Fatal("deployment without a policy accepted")
	}
}
