package resilience

import (
	"errors"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// State is a circuit breaker's position. The numeric values are what the
// aequus_peer_circuit_state gauge exposes.
type State int

// Breaker states.
const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed State = 0
	// Open: calls are rejected without dialing until the cooldown elapses.
	Open State = 1
	// HalfOpen: one probe call at a time is let through; success closes the
	// breaker, failure re-opens it.
	HalfOpen State = 2
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned (or recorded) when a call is rejected because the
// breaker is open.
var ErrOpen = errors.New("resilience: circuit breaker open")

// Default breaker parameters, used when the corresponding BreakerConfig
// field is zero.
const (
	DefaultBreakerCooldown = 30 * time.Second
)

// BreakerConfig parameterizes circuit breakers. A zero Threshold disables
// breaking entirely (BreakerSet.For returns nil, and every method of a nil
// *Breaker behaves as "always closed"), so the config can be plumbed through
// unconditionally.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker open (<= 0 disables the breaker).
	Threshold int
	// Cooldown is how long an open breaker rejects calls before allowing a
	// half-open probe (default 30s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close a
	// half-open breaker (default 1).
	HalfOpenProbes int
	// Clock provides time for the cooldown (default wall clock; the testbed
	// passes its sim clock so chaos runs stay deterministic).
	Clock simclock.Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	if c.HalfOpenProbes < 1 {
		c.HalfOpenProbes = 1
	}
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	return c
}

// Breaker is one peer's circuit breaker. All methods are safe for concurrent
// use, and safe on a nil receiver (a nil breaker is permanently closed — the
// disabled case).
type Breaker struct {
	cfg  BreakerConfig
	name string

	mu        sync.Mutex
	state     State
	fails     int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	inflight  bool
	openedAt  time.Time
	lastErr   error

	stateG  *telemetry.Gauge
	trips   *telemetry.Counter
	rejects *telemetry.Counter
}

// NewBreaker creates a standalone breaker named name (the "peer" metric
// label), registering its instruments on reg. Returns nil when cfg disables
// breaking.
func NewBreaker(name string, cfg BreakerConfig, reg *telemetry.Registry) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	reg = telemetry.OrDefault(reg)
	return &Breaker{
		cfg:  cfg.withDefaults(),
		name: name,
		stateG: reg.GaugeVec("aequus_peer_circuit_state",
			"Per-peer circuit breaker state (0=closed, 1=open, 2=half-open).",
			"peer").With(name),
		trips: reg.CounterVec("aequus_peer_circuit_trips_total",
			"Circuit breaker transitions to open, by peer.", "peer").With(name),
		rejects: reg.CounterVec("aequus_peer_circuit_rejected_total",
			"Calls rejected without dialing because the breaker was open, by peer.",
			"peer").With(name),
	}
}

// Allow reports whether a call may proceed, transitioning open→half-open
// once the cooldown has elapsed. Every allowed call must be matched by one
// Success or Failure.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.setState(HalfOpen)
			b.successes = 0
			b.inflight = true
			return true
		}
		b.rejects.Inc()
		return false
	default: // HalfOpen: one probe at a time.
		if b.inflight {
			b.rejects.Inc()
			return false
		}
		b.inflight = true
		return true
	}
}

// Success records a successful call.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails = 0
	case HalfOpen:
		b.inflight = false
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.setState(Closed)
			b.fails = 0
			b.lastErr = nil
		}
	}
	// A success landing while Open (a call that started before the trip)
	// carries no signal about current peer health; ignore it.
}

// Failure records a failed call, tripping the breaker when the consecutive-
// failure threshold is reached (immediately, in half-open).
func (b *Breaker) Failure(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = err
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.inflight = false
		b.trip()
	}
}

// trip opens the breaker; b.mu must be held.
func (b *Breaker) trip() {
	b.setState(Open)
	b.openedAt = b.cfg.Clock.Now()
	b.fails = 0
	b.trips.Inc()
}

// setState records a transition and updates the state gauge; b.mu must be
// held.
func (b *Breaker) setState(s State) {
	b.state = s
	b.stateG.Set(float64(s))
}

// Name returns the peer name the breaker was created with ("" for a nil
// breaker) — the identity exposed on span attributes and debug surfaces.
func (b *Breaker) Name() string {
	if b == nil {
		return ""
	}
	return b.name
}

// State returns the current state (Closed for a nil breaker). It does not
// perform the open→half-open transition; Allow does.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// LastError returns the most recent failure recorded (nil for a nil or
// healthy breaker).
func (b *Breaker) LastError() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// Do combines Allow with outcome recording: it returns ErrOpen without
// calling fn when the breaker rejects, and otherwise records fn's outcome.
func (b *Breaker) Do(fn func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := fn()
	if err != nil {
		b.Failure(err)
		return err
	}
	b.Success()
	return nil
}

// BreakerSet lazily creates one Breaker per peer name, all sharing one
// config and telemetry registry — the per-peer breaker map guarding a
// fan-out like the USS exchange round.
type BreakerSet struct {
	cfg BreakerConfig
	reg *telemetry.Registry

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet creates a set. Returns nil when cfg disables breaking, and a
// nil set hands out nil (always-closed) breakers, so callers never branch.
func NewBreakerSet(cfg BreakerConfig, reg *telemetry.Registry) *BreakerSet {
	if cfg.Threshold <= 0 {
		return nil
	}
	return &BreakerSet{cfg: cfg, reg: telemetry.OrDefault(reg), m: map[string]*Breaker{}}
}

// For returns the breaker for the named peer, creating it on first use.
func (s *BreakerSet) For(name string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = NewBreaker(name, s.cfg, s.reg)
		s.m[name] = b
	}
	return b
}
