// Package resilience provides the failure-handling primitives shared by
// every cross-site and client→service call in the Aequus stack: bounded,
// context-aware retry with exponential backoff and jitter, and per-peer
// circuit breakers (closed/open/half-open) whose state and trip counters are
// wired into the telemetry registry.
//
// The paper's partial-exchange flags exist because peer sites are slow,
// flaky, or absent; this package is what keeps one hung peer from stalling
// an exchange round and one flapping peer from silently degrading global
// priorities. The design rule is graceful degradation: local serving never
// depends on a remote call succeeding, and remote failures surface through
// metrics and /readyz instead of through blocked hot paths.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Default retry parameters, used when the corresponding RetryPolicy field is
// zero.
const (
	DefaultBaseDelay  = 100 * time.Millisecond
	DefaultMaxDelay   = 5 * time.Second
	DefaultMultiplier = 2.0
	DefaultJitter     = 0.2
)

// The package-default jitter source is an explicit seeded PRNG rather than
// the global math/rand functions, so every randomized code path in the
// repository is seedable: tests (and the scenario harness) reseed it with
// SeedJitter, or inject RetryPolicy.Rand per policy. Jitter only needs
// spread within a process, not unpredictability, so a fixed default seed is
// fine.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(1))
)

func defaultJitterRand() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRng.Float64()
}

// SeedJitter reseeds the package-default jitter source used by policies
// without an explicit Rand, making retry delays reproducible from a seed.
func SeedJitter(seed int64) {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	jitterRng = rand.New(rand.NewSource(seed))
}

// RetryPolicy bounds how a transiently failing call is retried. The zero
// value performs exactly one attempt (no retries), so wiring the policy
// through a Config never changes behaviour until someone asks for it.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<= 1 means no retries).
	MaxAttempts int
	// BaseDelay is the wait before the first retry (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction, de-synchronizing
	// retry storms across clients (default 0.2; negative disables).
	Jitter float64
	// Retryable decides whether an error is worth another attempt (default
	// DefaultRetryable: everything except Permanent errors and context
	// cancellation).
	Retryable func(error) bool
	// Sleep waits between attempts (default SleepContext). Tests inject a
	// recording no-op to keep retries instantaneous and deterministic.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand yields jitter randomness in [0,1) (default: the package's
	// seeded jitter source, reseedable via SeedJitter; tests inject a
	// constant or a private *rand.Rand for determinism).
	Rand func() float64
	// OnRetry observes every scheduled retry (attempt number of the failed
	// try, its error) — the hook retry counters and logs hang off.
	OnRetry func(attempt int, err error)
}

// Do runs fn, retrying transient failures per the policy. It returns nil on
// the first success, the last error once attempts are exhausted, the error
// unmodified when it is not retryable, and the last attempt's error when the
// context ends during backoff. The context is passed through to fn so
// deadlines propagate into every attempt.
func (p RetryPolicy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = DefaultRetryable
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = SleepContext
	}
	delay := p.BaseDelay
	if delay <= 0 {
		delay = DefaultBaseDelay
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultMaxDelay
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = DefaultMultiplier
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = DefaultJitter
	}
	rnd := p.Rand
	if rnd == nil {
		rnd = defaultJitterRand
	}

	var err error
	for attempt := 1; ; attempt++ {
		err = fn(ctx)
		if err == nil || attempt >= attempts || !retryable(err) {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		d := delay
		if jitter > 0 {
			// Spread in [d*(1-jitter), d*(1+jitter)].
			d = time.Duration(float64(d) * (1 - jitter + 2*jitter*rnd()))
		}
		if sleepErr := sleep(ctx, d); sleepErr != nil {
			// The caller's deadline ended the backoff; the last real
			// failure is more informative than "context canceled".
			return err
		}
		delay = time.Duration(float64(delay) * mult)
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// SleepContext waits d or until ctx ends, returning ctx.Err() in the latter
// case.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// permanentError marks an error as not worth retrying (e.g. a 4xx response:
// the request itself is wrong, repeating it cannot help).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so DefaultRetryable refuses to retry it. A nil err
// stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// DefaultRetryable retries every failure except Permanent errors and
// caller-side context cancellation. A DeadlineExceeded is retryable: it is
// usually a per-attempt timeout, and when it is the caller's own deadline
// the backoff sleep terminates the loop anyway.
func DefaultRetryable(err error) bool {
	if err == nil || IsPermanent(err) {
		return false
	}
	return !errors.Is(err, context.Canceled)
}
