package resilience

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

var errBoom = errors.New("boom")

// noSleep records requested backoff delays without waiting.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	calls := 0
	p := RetryPolicy{MaxAttempts: 4, Sleep: noSleep(&delays), Jitter: -1}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    300 * time.Millisecond,
		Multiplier:  2,
		Jitter:      -1, // exact delays
		Sleep:       noSleep(&delays),
	}
	_ = p.Do(context.Background(), func(context.Context) error { return errBoom })
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 300 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Errorf("delay[%d] = %v, want %v", i, delays[i], want[i])
		}
	}
}

func TestRetryJitterSpreadsDelays(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Second,
		Jitter:      0.5,
		Rand:        func() float64 { return 1 }, // upper edge → d*(1+jitter)
		Sleep:       noSleep(&delays),
	}
	_ = p.Do(context.Background(), func(context.Context) error { return errBoom })
	if len(delays) != 1 || delays[0] != 1500*time.Millisecond {
		t.Errorf("jittered delay = %v, want [1.5s]", delays)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	calls := 0
	p := RetryPolicy{MaxAttempts: 3, Sleep: noSleep(&delays)}
	retries := 0
	p.OnRetry = func(attempt int, err error) {
		retries++
		if err != errBoom {
			t.Errorf("OnRetry err = %v", err)
		}
	}
	err := p.Do(context.Background(), func(context.Context) error { calls++; return errBoom })
	if err != errBoom || calls != 3 || retries != 2 {
		t.Errorf("Do = %v, calls = %d, retries = %d; want boom, 3, 2", err, calls, retries)
	}
}

func TestRetryPermanentErrorNotRetried(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: noSleep(new([]time.Duration))}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(errBoom)
	})
	if calls != 1 {
		t.Errorf("permanent error retried %d times", calls-1)
	}
	if !errors.Is(err, errBoom) || !IsPermanent(err) {
		t.Errorf("err = %v, want permanent boom", err)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestRetryStopsWhenContextEnds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := RetryPolicy{MaxAttempts: 10, Sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	err := p.Do(ctx, func(context.Context) error { calls++; return errBoom })
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (backoff interrupted)", calls)
	}
	// The last real failure is reported, not the cancellation.
	if err != errBoom {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestRetryCanceledContextNotRetryable(t *testing.T) {
	calls := 0
	p := RetryPolicy{MaxAttempts: 5, Sleep: noSleep(new([]time.Duration))}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return context.Canceled
	})
	if calls != 1 || !errors.Is(err, context.Canceled) {
		t.Errorf("calls = %d, err = %v; canceled must not be retried", calls, err)
	}
}

func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	err := RetryPolicy{}.Do(context.Background(), func(context.Context) error {
		calls++
		return errBoom
	})
	if calls != 1 || err != errBoom {
		t.Errorf("zero policy: calls = %d, err = %v", calls, err)
	}
}

func TestSleepContext(t *testing.T) {
	if err := SleepContext(context.Background(), time.Millisecond); err != nil {
		t.Errorf("SleepContext = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepContext(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled SleepContext = %v", err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := simclock.NewSim(time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC))
	reg := telemetry.NewRegistry()
	b := NewBreaker("peer1", BreakerConfig{
		Threshold: 3,
		Cooldown:  time.Minute,
		Clock:     clock,
	}, reg)

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected a call")
		}
		b.Failure(errBoom)
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v", b.State())
	}
	// An interleaved success resets the consecutive count.
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
	b.Success()
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Failure(errBoom)
	}
	if b.State() != Closed {
		t.Fatal("success did not reset the failure count")
	}

	// The third consecutive failure trips it open.
	b.Allow()
	b.Failure(errBoom)
	if b.State() != Open {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker allowed a call before cooldown")
	}
	if !errors.Is(b.LastError(), errBoom) {
		t.Errorf("LastError = %v", b.LastError())
	}

	// Cooldown elapses → half-open probe allowed, one at a time.
	clock.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Error("second concurrent probe allowed in half-open")
	}

	// Probe failure re-opens immediately.
	b.Failure(errBoom)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	// Next cooldown, successful probe closes it and clears the error.
	clock.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe rejected after second cooldown")
	}
	b.Success()
	if b.State() != Closed || b.LastError() != nil {
		t.Fatalf("state = %v, lastErr = %v; want closed, nil", b.State(), b.LastError())
	}

	// Metrics: two trips, at least two rejects, gauge back at 0.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`aequus_peer_circuit_trips_total{peer="peer1"} 2`,
		`aequus_peer_circuit_state{peer="peer1"} 0`,
	} {
		if !containsLine(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestBreakerDo(t *testing.T) {
	clock := simclock.NewSim(time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC))
	b := NewBreaker("p", BreakerConfig{Threshold: 1, Cooldown: time.Minute, Clock: clock},
		telemetry.NewRegistry())
	if err := b.Do(func() error { return errBoom }); err != errBoom {
		t.Fatalf("Do = %v", err)
	}
	if err := b.Do(func() error { t.Fatal("dialed while open"); return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open Do = %v, want ErrOpen", err)
	}
	clock.Advance(time.Minute)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe Do = %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
}

func TestNilBreakerAlwaysClosed(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker rejected")
	}
	b.Success()
	b.Failure(errBoom)
	if b.State() != Closed || b.LastError() != nil {
		t.Error("nil breaker not permanently closed")
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Errorf("nil breaker Do = %v", err)
	}
}

func TestBreakerSet(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewBreakerSet(BreakerConfig{Threshold: 1}, reg)
	a, b := s.For("a"), s.For("b")
	if a == nil || b == nil || a == b {
		t.Fatal("set did not hand out distinct breakers")
	}
	if s.For("a") != a {
		t.Error("set did not reuse the breaker")
	}
	a.Failure(errBoom)
	if a.State() != Open || b.State() != Closed {
		t.Error("breakers not independent")
	}

	// Disabled config → nil set → nil breakers.
	var off *BreakerSet
	if NewBreakerSet(BreakerConfig{}, reg) != nil {
		t.Error("zero-threshold set not disabled")
	}
	if off.For("x") != nil {
		t.Error("nil set handed out a breaker")
	}
}

func containsLine(text, line string) bool {
	for len(text) > 0 {
		i := 0
		for i < len(text) && text[i] != '\n' {
			i++
		}
		if text[:i] == line {
			return true
		}
		if i == len(text) {
			break
		}
		text = text[i+1:]
	}
	return false
}
