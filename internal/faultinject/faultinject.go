// Package faultinject is the deterministic fault-injection harness behind
// the chaos tests: an Injector evaluates a schedule of fault windows against
// a (usually simulated) clock and a seeded PRNG, and proxies — an
// http.RoundTripper here, the testbed's peer wrapper — consult it on every
// call to decide whether to inject latency, an error, a timeout, a
// connection reset, or probabilistic flapping.
//
// Everything is deterministic given the same clock readings and seed, which
// is what lets CI assert exact convergence behaviour ("priorities equal the
// fault-free fixture two rounds after the faults clear") instead of eyeball
// flakiness.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Kind is a category of injected fault.
type Kind int

// Fault kinds.
const (
	// None: the call passes through untouched.
	None Kind = iota
	// Error: the call fails immediately with an injected error.
	Error
	// Timeout: the call hangs until its context deadline and fails with
	// the context's error — the hung-peer scenario.
	Timeout
	// Reset: the call fails with a connection-reset network error.
	Reset
	// Latency: the call is delayed by Window.Latency, then passes through.
	Latency
	// Flap: the call fails with probability Window.Rate, else passes — the
	// flaky-peer scenario.
	Flap
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Timeout:
		return "timeout"
	case Reset:
		return "reset"
	case Latency:
		return "latency"
	case Flap:
		return "flap"
	default:
		return "unknown"
	}
}

// Window schedules one fault behaviour over a clock interval. Windows are
// evaluated in order; the first active one wins.
type Window struct {
	// From/Until bound the window on the injector's clock: active when
	// From <= now < Until. A zero From means "since forever", a zero Until
	// means "forever on".
	From, Until time.Time
	// Kind is the fault to inject while active.
	Kind Kind
	// Rate is the per-call fault probability for Flap (clamped to [0,1]).
	Rate float64
	// Latency is the injected delay for Latency faults.
	Latency time.Duration
	// Err overrides the synthesized error for Error/Flap faults.
	Err error
}

func (w Window) active(now time.Time) bool {
	if !w.From.IsZero() && now.Before(w.From) {
		return false
	}
	return w.Until.IsZero() || now.Before(w.Until)
}

// Fault is one decided injection.
type Fault struct {
	Kind    Kind
	Latency time.Duration
	Err     error
}

// Injector decides, per call, which fault (if any) to inject right now. It
// is safe for concurrent use and fully deterministic for a given clock
// trajectory and seed (concurrent callers racing for the PRNG excepted —
// deterministic tests issue calls sequentially).
type Injector struct {
	clock simclock.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	windows []Window
	counts  map[Kind]int

	injected *telemetry.CounterVec // may be nil
}

// New creates an injector evaluating windows on clock (default wall clock)
// with a seeded PRNG for Flap decisions.
func New(clock simclock.Clock, seed int64, windows ...Window) *Injector {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Injector{
		clock:   clock,
		rng:     rand.New(rand.NewSource(seed)),
		windows: append([]Window(nil), windows...),
		counts:  map[Kind]int{},
	}
}

// WithMetrics registers an aequus_fault_injected_total counter on reg and
// returns the injector for chaining.
func (in *Injector) WithMetrics(reg *telemetry.Registry) *Injector {
	in.injected = telemetry.OrDefault(reg).CounterVec("aequus_fault_injected_total",
		"Faults injected by the chaos harness, by kind.", "kind")
	return in
}

// SetWindows replaces the fault schedule (e.g. to clear all faults mid-run).
func (in *Injector) SetWindows(windows ...Window) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.windows = append([]Window(nil), windows...)
}

// Decide evaluates the schedule at the current clock reading. The returned
// Fault has Kind None when the call should pass through.
func (in *Injector) Decide() Fault {
	now := in.clock.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, w := range in.windows {
		if !w.active(now) {
			continue
		}
		f := Fault{Kind: w.Kind, Latency: w.Latency, Err: w.Err}
		switch w.Kind {
		case None:
			return Fault{}
		case Flap:
			if in.rng.Float64() >= w.Rate {
				return Fault{}
			}
			f.Kind = Error // a flap that fires is an error fault
			if f.Err == nil {
				f.Err = fmt.Errorf("faultinject: flapping peer (window %v–%v)", w.From, w.Until)
			}
		case Error:
			if f.Err == nil {
				f.Err = fmt.Errorf("faultinject: injected error (window %v–%v)", w.From, w.Until)
			}
		case Reset:
			f.Err = &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
		}
		in.counts[w.Kind]++
		if in.injected != nil {
			in.injected.With(w.Kind.String()).Inc()
		}
		return f
	}
	return Fault{}
}

// Counts returns how many times each kind fired (Flap counts only firing
// flaps, not pass-throughs).
func (in *Injector) Counts() map[Kind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Resolve turns a decided fault into the error a sim-clock (non-sleeping)
// proxy should return: Timeout becomes context.DeadlineExceeded (the call
// "hung" until its deadline), Latency passes through when the remaining
// context budget covers it and times out otherwise, and None returns nil.
func (f Fault) Resolve(ctx context.Context) error {
	switch f.Kind {
	case None:
		return nil
	case Timeout:
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.DeadlineExceeded
	case Latency:
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < f.Latency {
			return context.DeadlineExceeded
		}
		return nil
	default:
		return f.Err
	}
}

// RoundTripper is the HTTP proxy layer: it injects the decided fault ahead
// of the real transport, so any httpapi client can be pointed at a flaky
// network without touching the server.
type RoundTripper struct {
	// Base performs the real request (default http.DefaultTransport).
	Base http.RoundTripper
	// Injector decides the fault per request (required).
	Injector *Injector
}

// RoundTrip implements http.RoundTripper. Timeout faults genuinely block
// until the request's context ends; Latency faults sleep (honoring the
// context) before forwarding.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	f := rt.Injector.Decide()
	switch f.Kind {
	case None:
		return base.RoundTrip(req)
	case Timeout:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Latency:
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-t.C:
		}
		return base.RoundTrip(req)
	default:
		return nil, f.Err
	}
}

// CloseIdleConnections forwards to Base so http.Client.CloseIdleConnections
// still reaches the real transport through the injector — without this, a
// wrapped client can never drain its keep-alive connections (and their
// per-connection goroutines) on shutdown.
func (rt *RoundTripper) CloseIdleConnections() {
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if c, ok := base.(interface{ CloseIdleConnections() }); ok {
		c.CloseIdleConnections()
	}
}
