package faultinject

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/simclock"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func TestWindowsFollowTheClock(t *testing.T) {
	clock := simclock.NewSim(t0)
	in := New(clock, 1, Window{
		From:  t0.Add(time.Hour),
		Until: t0.Add(2 * time.Hour),
		Kind:  Error,
	})
	if f := in.Decide(); f.Kind != None {
		t.Fatalf("fault before window: %+v", f)
	}
	clock.Advance(time.Hour)
	if f := in.Decide(); f.Kind != Error || f.Err == nil {
		t.Fatalf("no fault inside window: %+v", f)
	}
	clock.Advance(time.Hour)
	if f := in.Decide(); f.Kind != None {
		t.Fatalf("fault after window: %+v", f)
	}
	if got := in.Counts()[Error]; got != 1 {
		t.Errorf("error count = %d, want 1", got)
	}
}

func TestFlapIsDeterministicAndRoughlyRated(t *testing.T) {
	decide := func() []bool {
		in := New(simclock.NewSim(t0), 42, Window{Kind: Flap, Rate: 0.3})
		out := make([]bool, 1000)
		for i := range out {
			out[i] = in.Decide().Kind != None
		}
		return out
	}
	a, b := decide(), decide()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different flap sequences")
		}
		if a[i] {
			fired++
		}
	}
	if fired < 200 || fired > 400 {
		t.Errorf("30%% flap fired %d/1000 times", fired)
	}
}

func TestResetLooksLikeAConnectionReset(t *testing.T) {
	in := New(simclock.NewSim(t0), 1, Window{Kind: Reset})
	f := in.Decide()
	var op *net.OpError
	if !errors.As(f.Err, &op) {
		t.Fatalf("reset fault error = %v, want *net.OpError", f.Err)
	}
}

func TestFaultErrSimSemantics(t *testing.T) {
	if err := (Fault{Kind: None}).Resolve(context.Background()); err != nil {
		t.Errorf("None.Err = %v", err)
	}
	if err := (Fault{Kind: Timeout}).Resolve(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Timeout.Err = %v", err)
	}
	// Latency under the remaining budget passes; over it, times out.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if err := (Fault{Kind: Latency, Latency: time.Second}).Resolve(ctx); err != nil {
		t.Errorf("short latency = %v", err)
	}
	if err := (Fault{Kind: Latency, Latency: 2 * time.Hour}).Resolve(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("long latency = %v", err)
	}
}

func TestSetWindowsClearsFaults(t *testing.T) {
	in := New(simclock.NewSim(t0), 1, Window{Kind: Error})
	if in.Decide().Kind != Error {
		t.Fatal("window not active")
	}
	in.SetWindows()
	if f := in.Decide(); f.Kind != None {
		t.Fatalf("faults survived SetWindows(): %+v", f)
	}
}

func TestRoundTripperInjectsAndForwards(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := New(nil, 1, Window{Kind: Error})
	c := &http.Client{Transport: &RoundTripper{Injector: in}}
	if _, err := c.Get(srv.URL); err == nil {
		t.Fatal("injected error did not surface")
	}

	// Clear the fault: requests pass through to the real server.
	in.SetWindows()
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Errorf("body = %q", body)
	}
}

func TestRoundTripperTimeoutHonorsContext(t *testing.T) {
	in := New(nil, 1, Window{Kind: Timeout})
	c := &http.Client{Transport: &RoundTripper{Injector: in}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://injected.invalid/", nil)
	start := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("timeout fault succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout fault hung %v past the context deadline", elapsed)
	}
}

func TestRoundTripperLatencyDelays(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	in := New(nil, 1, Window{Kind: Latency, Latency: 30 * time.Millisecond})
	c := &http.Client{Transport: &RoundTripper{Injector: in}}
	start := time.Now()
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("latency fault took only %v", elapsed)
	}
}
