package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/trace"
)

var start = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)

const year = 365 * 24 * time.Hour

func TestNationalGrid2012Validates(t *testing.T) {
	if err := NationalGrid2012(year).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Bursty2012(6 * time.Hour).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	if err := (Model{}).Validate(); err == nil {
		t.Error("empty model accepted")
	}
	m := NationalGrid2012(year)
	m.Users[0].JobFraction = 0.5 // breaks the sum
	if err := m.Validate(); err == nil {
		t.Error("bad job fractions accepted")
	}
	m2 := NationalGrid2012(year)
	m2.Users[0].Arrival = nil
	if err := m2.Validate(); err == nil {
		t.Error("missing distribution accepted")
	}
	m3 := NationalGrid2012(year)
	m3.Users[0].Name = ""
	if err := m3.Validate(); err == nil {
		t.Error("empty name accepted")
	}
}

func TestGenerateJobFractions(t *testing.T) {
	m := NationalGrid2012(year)
	tr, err := m.Generate(GenerateOptions{
		TotalJobs: 20000, Start: start, Span: year, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 20000 {
		t.Fatalf("generated %d jobs, want 20000", tr.Len())
	}
	js := trace.JobShares(tr)
	want := map[string]float64{U65: 0.8103, U30: 0.0658, U3: 0.0947, UOth: 0.0292}
	for u, w := range want {
		if math.Abs(js[u]-w) > 0.001 {
			t.Errorf("%s job share = %.4f, want %.4f", u, js[u], w)
		}
	}
}

func TestGenerateCalibratedUsageShares(t *testing.T) {
	m := NationalGrid2012(year)
	tr, err := m.Generate(GenerateOptions{
		TotalJobs: 20000, Start: start, Span: year, Seed: 2,
		CalibrateUsage: true, MaxDuration: 30 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	us := trace.UsageShares(tr)
	want := BaselineShares()
	for u, w := range want {
		if math.Abs(us[u]-w) > 0.01 {
			t.Errorf("%s usage share = %.4f, want %.4f", u, us[u], w)
		}
	}
}

func TestGenerateArrivalsInsideSpan(t *testing.T) {
	m := NationalGrid2012(year)
	tr, err := m.Generate(GenerateOptions{
		TotalJobs: 5000, Start: start, Span: year, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := start.Add(year)
	for _, j := range tr.Jobs {
		if j.Submit.Before(start) || j.Submit.After(end) {
			t.Fatalf("job %d submits at %v, outside [%v, %v]", j.ID, j.Submit, start, end)
		}
		if j.Duration < time.Second {
			t.Fatalf("job %d has duration %v", j.ID, j.Duration)
		}
	}
}

func TestGenerateSortedAndNumbered(t *testing.T) {
	m := NationalGrid2012(year)
	tr, _ := m.Generate(GenerateOptions{TotalJobs: 1000, Start: start, Span: year, Seed: 4})
	for i := 1; i < tr.Len(); i++ {
		if tr.Jobs[i].Submit.Before(tr.Jobs[i-1].Submit) {
			t.Fatal("jobs not sorted by submit time")
		}
		if tr.Jobs[i].ID != int64(i+1) {
			t.Fatalf("job %d has ID %d", i, tr.Jobs[i].ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := NationalGrid2012(year)
	a, _ := m.Generate(GenerateOptions{TotalJobs: 500, Start: start, Span: year, Seed: 7})
	b, _ := m.Generate(GenerateOptions{TotalJobs: 500, Start: start, Span: year, Seed: 7})
	for i := range a.Jobs {
		if !a.Jobs[i].Submit.Equal(b.Jobs[i].Submit) || a.Jobs[i].Duration != b.Jobs[i].Duration {
			t.Fatal("same seed produced different traces")
		}
	}
	c, _ := m.Generate(GenerateOptions{TotalJobs: 500, Start: start, Span: year, Seed: 8})
	same := true
	for i := range a.Jobs {
		if !a.Jobs[i].Submit.Equal(c.Jobs[i].Submit) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateRejectsBadOptions(t *testing.T) {
	m := NationalGrid2012(year)
	if _, err := m.Generate(GenerateOptions{TotalJobs: 0, Span: year}); err == nil {
		t.Error("TotalJobs=0 accepted")
	}
	if _, err := m.Generate(GenerateOptions{TotalJobs: 10, Span: 0}); err == nil {
		t.Error("Span=0 accepted")
	}
}

func TestGenerateMaxDurationClamp(t *testing.T) {
	m := NationalGrid2012(year)
	tr, err := m.Generate(GenerateOptions{
		TotalJobs: 3000, Start: start, Span: year, Seed: 5,
		MaxDuration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.Duration > time.Hour {
			t.Fatalf("duration %v exceeds clamp", j.Duration)
		}
	}
}

func TestScaleToLoad(t *testing.T) {
	m := NationalGrid2012(6 * time.Hour)
	tr, _ := m.Generate(GenerateOptions{
		TotalJobs: 2000, Start: start, Span: 6 * time.Hour, Seed: 6,
		CalibrateUsage: true,
	})
	scaled := ScaleToLoad(tr, 240, 0.95, 6*time.Hour)
	got := scaled.TotalUsage()
	want := 0.95 * 240 * (6 * time.Hour).Seconds()
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("scaled usage = %g, want %g", got, want)
	}
	// Degenerate inputs return the trace unchanged.
	if ScaleToLoad(tr, 0, 0.95, 6*time.Hour) != tr {
		t.Error("cores=0 should return input")
	}
}

func TestU65ArrivalHasFourPhases(t *testing.T) {
	comps, weights := U65ArrivalPhases(year)
	if len(comps) != 4 || len(weights) != 4 {
		t.Fatalf("phases = %d, weights = %d, want 4", len(comps), len(weights))
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("phase weights sum to %g", sum)
	}
	// Phase centres must be spread in increasing order across the year
	// (quarterly cycles).
	prev := -1.0
	for i, c := range comps {
		g, ok := c.(dist.GEV)
		if !ok {
			t.Fatalf("phase %d is %T, want GEV", i, c)
		}
		if g.Mu <= prev {
			t.Fatalf("phase centres not increasing: %g after %g", g.Mu, prev)
		}
		prev = g.Mu
		if g.K != U65PhaseShapes[i] {
			t.Errorf("phase %d shape = %g, want %g", i, g.K, U65PhaseShapes[i])
		}
	}
}

func TestU65ArrivalsAreMultimodal(t *testing.T) {
	// Generated U65 arrivals must show four distinct quarterly clusters:
	// each quarter of the year should hold a nontrivial share of arrivals.
	m := NationalGrid2012(year)
	tr, _ := m.Generate(GenerateOptions{TotalJobs: 40000, Start: start, Span: year, Seed: 9})
	off := tr.SubmitOffsets(U65)
	quarters := make([]int, 4)
	q := year.Seconds() / 4
	for _, o := range off {
		i := int(o / q)
		if i > 3 {
			i = 3
		}
		quarters[i]++
	}
	for i, c := range quarters {
		frac := float64(c) / float64(len(off))
		if frac < 0.10 {
			t.Errorf("quarter %d holds only %.1f%% of U65 arrivals", i, 100*frac)
		}
	}
}

func TestBurstyShiftsU3Burst(t *testing.T) {
	span := 6 * time.Hour
	m := Bursty2012(span)
	tr, _ := m.Generate(GenerateOptions{TotalJobs: 20000, Start: start, Span: span, Seed: 10})
	js := trace.JobShares(tr)
	if math.Abs(js[U3]-0.455) > 0.005 {
		t.Errorf("bursty U3 job share = %.4f, want 0.455", js[U3])
	}
	if math.Abs(js[U65]-0.455) > 0.005 {
		t.Errorf("bursty U65 job share = %.4f, want 0.455", js[U65])
	}
	// The U3 burst must start after one third of the run: the 10th
	// percentile of U3 arrivals should be past span/3.
	off := SortedOffsets(tr, U3)
	p10 := off[len(off)/10]
	if p10 < span.Seconds()/3 {
		t.Errorf("U3 10th-percentile arrival at %.0fs, want after %.0fs", p10, span.Seconds()/3)
	}
}

func TestBurstyUsageShares(t *testing.T) {
	span := 6 * time.Hour
	m := Bursty2012(span)
	tr, _ := m.Generate(GenerateOptions{
		TotalJobs: 20000, Start: start, Span: span, Seed: 11,
		CalibrateUsage: true,
	})
	us := trace.UsageShares(tr)
	want := map[string]float64{U65: 0.47, U30: 0.385, U3: 0.12, UOth: 0.025}
	for u, w := range want {
		if math.Abs(us[u]-w) > 0.01 {
			t.Errorf("%s usage share = %.4f, want %.4f", u, us[u], w)
		}
	}
}

func TestUserLookup(t *testing.T) {
	m := NationalGrid2012(year)
	u, ok := m.User(U30)
	if !ok || u.Name != U30 {
		t.Errorf("User(U30) = %v, %v", u.Name, ok)
	}
	if _, ok := m.User("ghost"); ok {
		t.Error("unknown user found")
	}
}

func TestEffectiveRangeInsideUnit(t *testing.T) {
	g, _ := dist.NewGEV(0.195, 1000, 5000)
	lo, hi := effectiveRange(g, 20000)
	if lo <= 0 || hi >= 1 || lo >= hi {
		t.Errorf("effective range = [%g, %g]", lo, hi)
	}
	// A model entirely outside the window falls back to [0,1].
	far, _ := dist.NewNormal(1e12, 1)
	lo, hi = effectiveRange(far, 100)
	if lo != 0 || hi != 1 {
		t.Errorf("fallback range = [%g, %g]", lo, hi)
	}
}
