package workload

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/policy"
)

// This file scales the paper's four-group user mix to arbitrary user counts.
// The 2012 trace has four dominant user *identities*; a production-scale
// deployment has hundreds of thousands. A Population expands each group into
// a block of synthetic users that collectively keep the group's job and
// usage fractions, so macro load runs (cmd/loadgen) and scale tests exercise
// the serving path with realistic mix skew at any cardinality.

// PopulationGroup is one workload group expanded to Count users occupying
// the contiguous range [Start, Start+Count) of Population.Users.
type PopulationGroup struct {
	// Name is the source group, e.g. "u65".
	Name string
	// JobFraction / UsageFraction are the group's collective fractions,
	// copied from the model.
	JobFraction, UsageFraction float64
	// Start / Count locate the group's users in Population.Users.
	Start, Count int
	// Duration models individual job durations for the group's users.
	Duration dist.Dist
}

// Population is a workload model expanded to n concrete users.
type Population struct {
	// Users are the synthetic user names, grouped contiguously.
	Users []string
	// Shares are the per-user policy target shares, aligned with Users.
	// Users within a group split the group's UsageFraction evenly, so the
	// shares of all users sum to ~1.
	Shares []float64
	// Groups partition Users.
	Groups []PopulationGroup
}

// Population expands the model to n users. Each group receives a user count
// proportional to its JobFraction (minimum 1, largest group absorbs
// rounding), which makes "sample a group by JobFraction, then a user
// uniformly inside it" equivalent to the model's per-job user mix.
func (m Model) Population(n int) (*Population, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < len(m.Users) {
		return nil, fmt.Errorf("workload: population of %d cannot cover %d groups", n, len(m.Users))
	}
	counts := make([]int, len(m.Users))
	assigned := 0
	largest := 0
	for i, u := range m.Users {
		counts[i] = int(float64(n)*u.JobFraction + 0.5)
		if counts[i] < 1 {
			counts[i] = 1
		}
		assigned += counts[i]
		if u.JobFraction > m.Users[largest].JobFraction {
			largest = i
		}
	}
	counts[largest] += n - assigned
	if counts[largest] < 1 {
		return nil, errors.New("workload: population apportionment failed")
	}

	p := &Population{
		Users:  make([]string, 0, n),
		Shares: make([]float64, 0, n),
		Groups: make([]PopulationGroup, 0, len(m.Users)),
	}
	for i, u := range m.Users {
		g := PopulationGroup{
			Name:          u.Name,
			JobFraction:   u.JobFraction,
			UsageFraction: u.UsageFraction,
			Start:         len(p.Users),
			Count:         counts[i],
			Duration:      u.Duration,
		}
		share := u.UsageFraction / float64(counts[i])
		for k := 0; k < counts[i]; k++ {
			p.Users = append(p.Users, fmt.Sprintf("%s_%06d", u.Name, k))
			p.Shares = append(p.Shares, share)
		}
		p.Groups = append(p.Groups, g)
	}
	return p, nil
}

// Len returns the number of users.
func (p *Population) Len() int { return len(p.Users) }

// PolicyTree builds the two-level policy for the population: one node per
// group carrying the group's UsageFraction, with the group's users as
// equal-share leaves. Nodes are constructed directly because Tree.Add's
// duplicate-sibling scan is quadratic and would dominate at 1M users.
func (p *Population) PolicyTree() *policy.Tree {
	root := &policy.Node{Name: "", Share: 1}
	root.Children = make([]*policy.Node, 0, len(p.Groups))
	for _, g := range p.Groups {
		gn := &policy.Node{Name: g.Name, Share: g.UsageFraction}
		gn.Children = make([]*policy.Node, 0, g.Count)
		for k := 0; k < g.Count; k++ {
			gn.Children = append(gn.Children, &policy.Node{
				Name:  p.Users[g.Start+k],
				Share: 1,
			})
		}
		root.Children = append(root.Children, gn)
	}
	return &policy.Tree{Root: root}
}
