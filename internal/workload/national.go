package workload

import (
	"time"

	"repro/internal/dist"
)

// Canonical user-group names used throughout the repository.
const (
	U65  = "u65"  // dominant periodic project: 65.25% usage, 81.03% of jobs
	U30  = "u30"  // long-job project: 30.49% usage, 6.58% of jobs
	U3   = "u3"   // bursty project: 2.86% usage, 9.47% of jobs
	UOth = "uoth" // all remaining users: 1.40% usage, 2.93% of jobs
)

// Baseline fractions from the paper's characterization of the 2012 trace.
const (
	u65JobFrac, u65UsageFrac   = 0.8103, 0.6525
	u30JobFrac, u30UsageFrac   = 0.0658, 0.3049
	u3JobFrac, u3UsageFrac     = 0.0947, 0.0286
	uothJobFrac, uothUsageFrac = 0.0292, 0.0140
)

// U65PhaseWeights are the per-phase usage weights of the four experimental
// cycles of U65 (Equation 1's p_n usage / total usage factors).
var U65PhaseWeights = [4]float64{0.30, 0.27, 0.23, 0.20}

// U65PhaseShapes are the GEV shape parameters of the four phases, taken from
// Table II (p1-p4).
var U65PhaseShapes = [4]float64{-0.386, -0.371, -0.457, -0.301}

// u65Arrival builds the four-phase composite arrival model of Equation (1):
// each phase is a GEV centred on one quarter of the span ("a pattern in job
// arrival about every three months"), weighted by its usage fraction.
func u65Arrival(spanSec float64) dist.Dist {
	centers := [4]float64{0.125, 0.375, 0.625, 0.875}
	comps := make([]dist.Dist, 4)
	for i := 0; i < 4; i++ {
		// Scale each phase to roughly one month of a year-long span.
		sigma := spanSec * 0.045
		g, err := dist.NewGEV(U65PhaseShapes[i], sigma, centers[i]*spanSec)
		if err != nil {
			panic(err) // static parameters; cannot fail
		}
		comps[i] = g
	}
	m, err := dist.NewMixture(comps, U65PhaseWeights[:])
	if err != nil {
		panic(err)
	}
	return m
}

// U65ArrivalPhases returns the four phase components and their weights for a
// given span — used by the Figure 5 reproduction.
func U65ArrivalPhases(span time.Duration) ([]dist.Dist, []float64) {
	m := u65Arrival(span.Seconds()).(*dist.Mixture)
	return m.Components(), m.Weights()
}

// NationalGrid2012 returns the baseline workload model fitted to the 2012
// Swedish national-grid trace, projected onto the given span. Arrival
// distributions are positioned relative to the span so the same model drives
// both the year-long surrogate historical trace and the six-hour testbed
// runs.
//
// The original trace is proprietary; shapes and relative magnitudes follow
// the families and parameters published in Tables II and III (GEV arrivals
// for U65/U3/Uoth, Burr for U30; Birnbaum-Saunders durations for U65/Uoth,
// Weibull for U30, Burr for U3). Where the published numbers are internally
// inconsistent with the published medians, the medians win (see DESIGN.md).
func NationalGrid2012(span time.Duration) Model {
	s := span.Seconds()
	mk := func(d dist.Dist, err error) dist.Dist {
		if err != nil {
			panic(err)
		}
		return d
	}
	return Model{Users: []UserModel{
		{
			Name:          U65,
			JobFraction:   u65JobFrac,
			UsageFraction: u65UsageFrac,
			Arrival:       u65Arrival(s),
			// Table III: BS(β=1.76e4, γ=3.53); BS median = β.
			Duration: mk(dist.NewBirnbaumSaunders(1.76e4, 3.53)),
		},
		{
			Name:          U30,
			JobFraction:   u30JobFrac,
			UsageFraction: u30UsageFrac,
			// Table II fits a Burr to U30's arrivals; spread across the span
			// with a moderate tail.
			Arrival: mk(dist.NewBurr(0.45*s, 2.0, 0.9)),
			// Table III: Weibull(λ=5.49e4, k=0.637) — long jobs, heavy-ish tail.
			Duration: mk(dist.NewWeibull(5.49e4, 0.637)),
		},
		{
			Name:          U3,
			JobFraction:   u3JobFrac,
			UsageFraction: u3UsageFrac,
			// GEV(k=0.195, ...) per Table II: a concentrated early burst with
			// a heavy right tail the fitted distribution "cannot fully
			// capture".
			Arrival: mk(dist.NewGEV(0.195, 0.025*s, 0.22*s)),
			// Table III: Burr with extreme tail (c=11, k=0.02); α chosen so
			// the median matches the published 1.12e3-second order.
			Duration: mk(dist.NewBurr(48, 11.0, 0.02)),
		},
		{
			Name:          UOth,
			JobFraction:   uothJobFrac,
			UsageFraction: uothUsageFrac,
			// GEV(k=0.148, ...) per Table II, wide across the span.
			Arrival: mk(dist.NewGEV(0.148, 0.16*s, 0.40*s)),
			// Table III: Birnbaum-Saunders; β set to the published median.
			Duration: mk(dist.NewBirnbaumSaunders(3.37e3, 2.5)),
		},
	}}
}

// Bursty2012 returns the bursty-usage variant of Section IV-A.5: the job
// share of U3 is raised to 45.5% (U65 reduced correspondingly), and the U3
// burst is shifted to start after one third of the test run. The resulting
// wall-clock usage shares are 47% / 38.5% / 12% / 2.5%.
func Bursty2012(span time.Duration) Model {
	m := NationalGrid2012(span)
	s := span.Seconds()
	for i := range m.Users {
		switch m.Users[i].Name {
		case U65:
			m.Users[i].JobFraction = 0.455
			m.Users[i].UsageFraction = 0.47
		case U30:
			m.Users[i].JobFraction = 0.065
			m.Users[i].UsageFraction = 0.385
		case U3:
			m.Users[i].JobFraction = 0.455
			m.Users[i].UsageFraction = 0.12
			// Burst begins after one third of the run.
			g, err := dist.NewGEV(0.195, 0.02*s, (1.0/3.0+0.05)*s)
			if err != nil {
				panic(err)
			}
			m.Users[i].Arrival = g
		case UOth:
			m.Users[i].JobFraction = 0.025
			m.Users[i].UsageFraction = 0.025
		}
	}
	return m
}

// BaselineShares returns the per-user usage shares of the baseline model —
// the policy targets used when "the actual share from the workloads are used
// as targets".
func BaselineShares() map[string]float64 {
	return map[string]float64{
		U65:  u65UsageFrac,
		U30:  u30UsageFrac,
		U3:   u3UsageFrac,
		UOth: uothUsageFrac,
	}
}

// NonOptimalShares returns the deliberately skewed policy of the
// non-optimal-policy experiment: 70% / 20% / 8% / 2%.
func NonOptimalShares() map[string]float64 {
	return map[string]float64{
		U65:  0.70,
		U30:  0.20,
		U3:   0.08,
		UOth: 0.02,
	}
}
