// Package workload implements the paper's user-centric workload models
// (Section IV): per-user job-arrival and job-duration distributions for the
// four dominant user groups of the 2012 Swedish national-grid trace — U65,
// U30, U3 and Uoth — plus the synthetic-trace generator that samples them
// via inverse-CDF transformation with effective-range rescaling.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/trace"
)

// UserModel describes the statistical behaviour of one user (or user group,
// since a "user" identity may represent a whole research project).
type UserModel struct {
	// Name is the grid user identity, e.g. "u65".
	Name string
	// JobFraction is the user's share of submitted jobs (sums to 1 across
	// the model's users).
	JobFraction float64
	// UsageFraction is the user's target share of total wall-clock usage.
	UsageFraction float64
	// Arrival models the submit offset in seconds from the trace start.
	// Samples are drawn by the rescaled-ICDF method of Section IV-2: the
	// uniform [0,1] input is first mapped into the effective probability
	// range [CDF(0), CDF(span)] so every arrival lands inside the window.
	Arrival dist.Dist
	// Duration models the job wall-clock duration in seconds.
	Duration dist.Dist
}

// Model is a complete workload model: one UserModel per user group.
type Model struct {
	Users []UserModel
}

// User returns the model for the named user and whether it exists.
func (m Model) User(name string) (UserModel, bool) {
	for _, u := range m.Users {
		if u.Name == name {
			return u, true
		}
	}
	return UserModel{}, false
}

// Validate checks that fractions are sane and distributions are present.
func (m Model) Validate() error {
	if len(m.Users) == 0 {
		return errors.New("workload: model has no users")
	}
	var jobSum, usageSum float64
	for _, u := range m.Users {
		if u.Name == "" {
			return errors.New("workload: user with empty name")
		}
		if u.Arrival == nil || u.Duration == nil {
			return fmt.Errorf("workload: user %s missing distributions", u.Name)
		}
		if u.JobFraction < 0 || u.UsageFraction < 0 {
			return fmt.Errorf("workload: user %s has negative fraction", u.Name)
		}
		jobSum += u.JobFraction
		usageSum += u.UsageFraction
	}
	if jobSum < 0.999 || jobSum > 1.001 {
		return fmt.Errorf("workload: job fractions sum to %.4f, want 1", jobSum)
	}
	if usageSum < 0.999 || usageSum > 1.001 {
		return fmt.Errorf("workload: usage fractions sum to %.4f, want 1", usageSum)
	}
	return nil
}

// GenerateOptions configures synthetic trace generation.
type GenerateOptions struct {
	// TotalJobs is the number of jobs to generate across all users.
	TotalJobs int
	// Start is the submit time of offset zero.
	Start time.Time
	// Span is the window into which arrivals are mapped.
	Span time.Duration
	// Seed seeds the deterministic generator.
	Seed int64
	// MinDuration / MaxDuration clamp sampled durations (zero = no clamp,
	// but durations are always forced positive: a 1-second floor avoids the
	// zero-duration outliers the paper removes).
	MinDuration, MaxDuration time.Duration
	// CalibrateUsage rescales each user's durations so per-user usage
	// shares match UsageFraction exactly (keeping total usage unchanged).
	CalibrateUsage bool
}

// Generate samples a synthetic trace from the model. Jobs are sorted by
// submit time and numbered from 1.
func (m Model) Generate(opts GenerateOptions) (*trace.Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opts.TotalJobs <= 0 {
		return nil, errors.New("workload: TotalJobs must be positive")
	}
	if opts.Span <= 0 {
		return nil, errors.New("workload: Span must be positive")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	spanSec := opts.Span.Seconds()
	minDur := opts.MinDuration.Seconds()
	if minDur < 1 {
		minDur = 1
	}
	maxDur := opts.MaxDuration.Seconds()

	// Apportion job counts; the largest-fraction user absorbs rounding.
	counts := make([]int, len(m.Users))
	assigned := 0
	largest := 0
	for i, u := range m.Users {
		counts[i] = int(float64(opts.TotalJobs)*u.JobFraction + 0.5)
		assigned += counts[i]
		if u.JobFraction > m.Users[largest].JobFraction {
			largest = i
		}
	}
	counts[largest] += opts.TotalJobs - assigned
	if counts[largest] < 0 {
		return nil, errors.New("workload: job apportionment failed")
	}

	tr := &trace.Trace{}
	for i, u := range m.Users {
		lo, hi := effectiveRange(u.Arrival, spanSec)
		for k := 0; k < counts[i]; k++ {
			p := lo + rng.Float64()*(hi-lo)
			off := u.Arrival.Quantile(p)
			if off < 0 {
				off = 0
			}
			if off > spanSec {
				off = spanSec
			}
			dur := dist.Sample(u.Duration, rng)
			if dur < minDur {
				dur = minDur
			}
			if maxDur > 0 && dur > maxDur {
				dur = maxDur
			}
			tr.Jobs = append(tr.Jobs, trace.Job{
				User:     u.Name,
				Submit:   opts.Start.Add(time.Duration(off * float64(time.Second))),
				Duration: secondsToDuration(dur),
				Procs:    1, // the paper's trace is single-processor bag-of-task jobs
			})
		}
	}

	if opts.CalibrateUsage {
		calibrateUsage(tr, m)
	}

	tr.Sort()
	for i := range tr.Jobs {
		tr.Jobs[i].ID = int64(i + 1)
	}
	return tr, nil
}

// effectiveRange computes the probability window [CDF(0), CDF(span)] used to
// rescale uniform samples so every ICDF draw lands within the trace window —
// the same mechanism as the paper's U65 range [7.451e-3, 9.946e-1].
func effectiveRange(d dist.Dist, spanSec float64) (lo, hi float64) {
	lo = d.CDF(0)
	hi = d.CDF(spanSec)
	if hi <= lo { // degenerate model entirely outside the window
		return 0, 1
	}
	// Keep strictly inside (0,1) so quantiles stay finite.
	const eps = 1e-9
	if lo < eps {
		lo = eps
	}
	if hi > 1-eps {
		hi = 1 - eps
	}
	return lo, hi
}

// calibrateUsage rescales each user's durations so realized usage shares
// equal the model's UsageFraction targets while preserving total usage.
func calibrateUsage(tr *trace.Trace, m Model) {
	perUser := map[string]float64{}
	var total float64
	for _, j := range tr.Jobs {
		perUser[j.User] += j.Usage()
		total += j.Usage()
	}
	if total == 0 {
		return
	}
	factor := map[string]float64{}
	for _, u := range m.Users {
		cur := perUser[u.Name]
		if cur <= 0 {
			continue
		}
		factor[u.Name] = u.UsageFraction * total / cur
	}
	for i := range tr.Jobs {
		if f, ok := factor[tr.Jobs[i].User]; ok {
			tr.Jobs[i].Duration = secondsToDuration(tr.Jobs[i].Duration.Seconds() * f)
		}
	}
}

// secondsToDuration converts float seconds to a time.Duration, clamping into
// [1s, ~292y] so heavy-tailed duration samples (the Burr fit for U3 has an
// infinite mean) can never overflow int64 nanoseconds.
func secondsToDuration(sec float64) time.Duration {
	const maxSec = float64(1<<62) / float64(time.Second) // well inside int64 range
	if sec < 1 {
		sec = 1
	}
	if sec > maxSec {
		sec = maxSec
	}
	return time.Duration(sec * float64(time.Second))
}

// ScaleToLoad rescales all durations so total usage equals
// load × cores × span — how the paper drives its testbed at "a total load of
// 95% of the theoretical maximum of the combined infrastructure".
func ScaleToLoad(tr *trace.Trace, cores int, load float64, span time.Duration) *trace.Trace {
	total := tr.TotalUsage()
	if total <= 0 || cores <= 0 || load <= 0 || span <= 0 {
		return tr
	}
	target := load * float64(cores) * span.Seconds()
	return tr.ScaleDurations(target / total)
}

// SortedOffsets returns the sorted submit offsets (seconds) of all jobs of a
// user — a convenience for the arrival-pattern figures.
func SortedOffsets(tr *trace.Trace, user string) []float64 {
	off := tr.SubmitOffsets(user)
	sort.Float64s(off)
	return off
}
