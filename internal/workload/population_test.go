package workload

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPopulationPartition(t *testing.T) {
	m := NationalGrid2012(time.Hour)
	for _, n := range []int{4, 100, 10000} {
		pop, err := m.Population(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if pop.Len() != n {
			t.Fatalf("n=%d: got %d users", n, pop.Len())
		}
		if len(pop.Groups) != len(m.Users) {
			t.Fatalf("n=%d: %d groups, want %d", n, len(pop.Groups), len(m.Users))
		}
		var shareSum float64
		for _, s := range pop.Shares {
			shareSum += s
		}
		if math.Abs(shareSum-1) > 1e-6 {
			t.Errorf("n=%d: shares sum to %v, want 1", n, shareSum)
		}
		covered := 0
		for _, g := range pop.Groups {
			if g.Count < 1 {
				t.Errorf("n=%d: group %s empty", n, g.Name)
			}
			for k := 0; k < g.Count; k++ {
				if !strings.HasPrefix(pop.Users[g.Start+k], g.Name+"_") {
					t.Fatalf("user %q not in group %s's range", pop.Users[g.Start+k], g.Name)
				}
			}
			covered += g.Count
		}
		if covered != n {
			t.Errorf("n=%d: groups cover %d users", n, covered)
		}
	}
	if _, err := m.Population(2); err == nil {
		t.Error("population smaller than group count not rejected")
	}
}

// TestPopulationJobFractionProportion: at scale, group sizes track job
// fractions, so uniform user sampling inside a job-fraction-weighted group
// pick reproduces the model's per-job user mix.
func TestPopulationJobFractionProportion(t *testing.T) {
	m := NationalGrid2012(time.Hour)
	pop, err := m.Population(100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range pop.Groups {
		got := float64(g.Count) / float64(pop.Len())
		if math.Abs(got-g.JobFraction) > 0.001 {
			t.Errorf("group %s: %d users = %.4f of population, want ~%.4f",
				g.Name, g.Count, got, g.JobFraction)
		}
	}
}

func TestPopulationPolicyTree(t *testing.T) {
	m := NationalGrid2012(time.Hour)
	pop, err := m.Population(1000)
	if err != nil {
		t.Fatal(err)
	}
	tree := pop.PolicyTree()
	if err := tree.Validate(); err != nil {
		t.Fatalf("policy tree invalid: %v", err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 1000 {
		t.Fatalf("policy has %d leaves, want 1000", len(leaves))
	}
	if _, ok := tree.FindUser(pop.Users[0]); !ok {
		t.Fatalf("user %q not findable in policy", pop.Users[0])
	}
	if _, ok := tree.FindUser(pop.Users[len(pop.Users)-1]); !ok {
		t.Fatal("last user not findable in policy")
	}
}
