package dist

import "math"

// Gamma is the gamma distribution with shape K and scale Theta.
type Gamma struct {
	K, Theta float64
}

// NewGamma returns a Gamma distribution; both parameters must be positive.
func NewGamma(k, theta float64) (Gamma, error) {
	if !(k > 0) || !(theta > 0) || !finite(k, theta) {
		return Gamma{}, ErrBadParams
	}
	return Gamma{K: k, Theta: theta}, nil
}

// Name implements Dist.
func (d Gamma) Name() string { return "Gamma" }

// Params implements Dist.
func (d Gamma) Params() []float64 { return []float64{d.K, d.Theta} }

// PDF implements Dist.
func (d Gamma) PDF(x float64) float64 {
	lp := d.LogPDF(x)
	if math.IsInf(lp, -1) {
		return 0
	}
	return math.Exp(lp)
}

// LogPDF implements Dist.
func (d Gamma) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(d.K)
	return (d.K-1)*math.Log(x) - x/d.Theta - d.K*math.Log(d.Theta) - lg
}

// CDF implements Dist.
func (d Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regLowerGamma(d.K, x/d.Theta)
}

// Quantile implements Dist.
func (d Gamma) Quantile(p float64) float64 {
	p = clampP(p)
	// Wilson-Hilferty starting bracket, then bisection on the CDF.
	guess := d.K * d.Theta
	if guess <= 0 {
		guess = 1
	}
	return quantileBisect(d.CDF, p, 0, 4*guess+10*d.Theta)
}

// Support implements Dist.
func (d Gamma) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d Gamma) Mean() float64 { return d.K * d.Theta }
