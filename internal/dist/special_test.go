package dist

import (
	"math"
	"testing"
)

func TestStdNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.15865525393145707, -1},
		{0.9772498680518208, 2},
		{0.9986501019683699, 3},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
	}
	for _, c := range cases {
		if got := stdNormQuantile(c.p); math.Abs(got-c.z) > 1e-9 {
			t.Errorf("stdNormQuantile(%v) = %v, want %v", c.p, got, c.z)
		}
	}
}

func TestStdNormQuantileExtremeTails(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-8, 1 - 1e-12} {
		z := stdNormQuantile(p)
		if math.IsNaN(z) || math.IsInf(z, 0) {
			t.Errorf("stdNormQuantile(%g) = %g", p, z)
		}
		if got := stdNormCDF(z); math.Abs(got-p) > 1e-13+1e-4*p {
			t.Errorf("round trip at %g: got %g", p, got)
		}
	}
}

func TestRegLowerGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x
	for _, x := range []float64{0.1, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := regLowerGamma(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x))
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := regLowerGamma(0.5, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5,%g) = %g, want %g", x, got, want)
		}
	}
	if got := regLowerGamma(3, 0); got != 0 {
		t.Errorf("P(3,0) = %g", got)
	}
	if !math.IsNaN(regLowerGamma(-1, 1)) {
		t.Error("P(-1,1) should be NaN")
	}
	if !math.IsNaN(regLowerGamma(1, -1)) {
		t.Error("P(1,-1) should be NaN")
	}
}

func TestRegLowerGammaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 50; x += 0.25 {
		v := regLowerGamma(2.5, x)
		if v < prev-1e-14 {
			t.Fatalf("P(2.5, ·) not monotone at %g: %g < %g", x, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("P(2.5,%g) = %g out of range", x, v)
		}
		prev = v
	}
	if prev < 0.999999 {
		t.Errorf("P(2.5,50) = %g, should be ~1", prev)
	}
}

func TestQuantileBisectInvertsMonotoneCDF(t *testing.T) {
	cdf := func(x float64) float64 { return 1 - math.Exp(-x/3) } // Exp(1/3)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.999} {
		want := -3 * math.Log(1-p)
		got := quantileBisect(cdf, p, 0, 1)
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("bisect(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestLog1pExpStable(t *testing.T) {
	if got := log1pExp(1000); got != 1000 {
		t.Errorf("log1pExp(1000) = %g", got)
	}
	if got := log1pExp(-1000); got != math.Exp(-1000) {
		t.Errorf("log1pExp(-1000) = %g", got)
	}
	if got, want := log1pExp(0), math.Ln2; math.Abs(got-want) > 1e-15 {
		t.Errorf("log1pExp(0) = %g, want ln 2", got)
	}
}
