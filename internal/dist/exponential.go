package dist

import "math"

// Exponential is the exponential distribution with rate Lambda.
type Exponential struct {
	Lambda float64
}

// NewExponential returns an Exponential distribution; Lambda must be positive.
func NewExponential(lambda float64) (Exponential, error) {
	if !(lambda > 0) || !finite(lambda) {
		return Exponential{}, ErrBadParams
	}
	return Exponential{Lambda: lambda}, nil
}

// Name implements Dist.
func (d Exponential) Name() string { return "Exponential" }

// Params implements Dist.
func (d Exponential) Params() []float64 { return []float64{d.Lambda} }

// PDF implements Dist.
func (d Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return d.Lambda * math.Exp(-d.Lambda*x)
}

// LogPDF implements Dist.
func (d Exponential) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Log(d.Lambda) - d.Lambda*x
}

// CDF implements Dist.
func (d Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return -math.Expm1(-d.Lambda * x)
}

// Quantile implements Dist.
func (d Exponential) Quantile(p float64) float64 {
	p = clampP(p)
	return -math.Log1p(-p) / d.Lambda
}

// Support implements Dist.
func (d Exponential) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d Exponential) Mean() float64 { return 1 / d.Lambda }

// Rayleigh is the Rayleigh distribution with scale Sigma.
type Rayleigh struct {
	Sigma float64
}

// NewRayleigh returns a Rayleigh distribution; Sigma must be positive.
func NewRayleigh(sigma float64) (Rayleigh, error) {
	if !(sigma > 0) || !finite(sigma) {
		return Rayleigh{}, ErrBadParams
	}
	return Rayleigh{Sigma: sigma}, nil
}

// Name implements Dist.
func (d Rayleigh) Name() string { return "Rayleigh" }

// Params implements Dist.
func (d Rayleigh) Params() []float64 { return []float64{d.Sigma} }

// PDF implements Dist.
func (d Rayleigh) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	s2 := d.Sigma * d.Sigma
	return x / s2 * math.Exp(-x*x/(2*s2))
}

// LogPDF implements Dist.
func (d Rayleigh) LogPDF(x float64) float64 { return logPDFviaPDF(d, x) }

// CDF implements Dist.
func (d Rayleigh) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return -math.Expm1(-x * x / (2 * d.Sigma * d.Sigma))
}

// Quantile implements Dist.
func (d Rayleigh) Quantile(p float64) float64 {
	p = clampP(p)
	return d.Sigma * math.Sqrt(-2*math.Log1p(-p))
}

// Support implements Dist.
func (d Rayleigh) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d Rayleigh) Mean() float64 { return d.Sigma * math.Sqrt(math.Pi/2) }
