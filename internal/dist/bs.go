package dist

import "math"

// BirnbaumSaunders is the Birnbaum-Saunders (fatigue-life) distribution with
// scale Beta and shape Gamma, the family the paper fits to the job durations
// of U65 (BS(β=1.76e4, γ=3.53)) and Uoth in Table III. The CDF is
//
//	F(x) = Φ( (sqrt(x/β) - sqrt(β/x)) / γ ).
type BirnbaumSaunders struct {
	Beta, Gamma float64
}

// NewBirnbaumSaunders returns a BS distribution; both parameters must be
// positive.
func NewBirnbaumSaunders(beta, gamma float64) (BirnbaumSaunders, error) {
	if !(beta > 0) || !(gamma > 0) || !finite(beta, gamma) {
		return BirnbaumSaunders{}, ErrBadParams
	}
	return BirnbaumSaunders{Beta: beta, Gamma: gamma}, nil
}

// Name implements Dist.
func (d BirnbaumSaunders) Name() string { return "BirnbaumSaunders" }

// Params implements Dist.
func (d BirnbaumSaunders) Params() []float64 { return []float64{d.Beta, d.Gamma} }

func (d BirnbaumSaunders) xi(x float64) float64 {
	return (math.Sqrt(x/d.Beta) - math.Sqrt(d.Beta/x)) / d.Gamma
}

// PDF implements Dist.
func (d BirnbaumSaunders) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// dξ/dx = (1/(2γ)) * (1/sqrt(xβ) + sqrt(β)/x^{3/2})
	dxi := (1/math.Sqrt(x*d.Beta) + math.Sqrt(d.Beta)/math.Pow(x, 1.5)) / (2 * d.Gamma)
	return stdNormPDF(d.xi(x)) * dxi
}

// LogPDF implements Dist.
func (d BirnbaumSaunders) LogPDF(x float64) float64 { return logPDFviaPDF(d, x) }

// CDF implements Dist.
func (d BirnbaumSaunders) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stdNormCDF(d.xi(x))
}

// Quantile implements Dist.
func (d BirnbaumSaunders) Quantile(p float64) float64 {
	z := stdNormQuantile(clampP(p))
	t := d.Gamma*z + math.Sqrt(d.Gamma*d.Gamma*z*z+4)
	return d.Beta / 4 * t * t
}

// Support implements Dist.
func (d BirnbaumSaunders) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d BirnbaumSaunders) Mean() float64 {
	return d.Beta * (1 + d.Gamma*d.Gamma/2)
}

// InverseGaussian is the inverse Gaussian (Wald) distribution with mean Mu
// and shape Lambda.
type InverseGaussian struct {
	Mu, Lambda float64
}

// NewInverseGaussian returns an InverseGaussian distribution; both parameters
// must be positive.
func NewInverseGaussian(mu, lambda float64) (InverseGaussian, error) {
	if !(mu > 0) || !(lambda > 0) || !finite(mu, lambda) {
		return InverseGaussian{}, ErrBadParams
	}
	return InverseGaussian{Mu: mu, Lambda: lambda}, nil
}

// Name implements Dist.
func (d InverseGaussian) Name() string { return "InverseGaussian" }

// Params implements Dist.
func (d InverseGaussian) Params() []float64 { return []float64{d.Mu, d.Lambda} }

// PDF implements Dist.
func (d InverseGaussian) PDF(x float64) float64 {
	lp := d.LogPDF(x)
	if math.IsInf(lp, -1) {
		return 0
	}
	return math.Exp(lp)
}

// LogPDF implements Dist.
func (d InverseGaussian) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	dev := x - d.Mu
	return 0.5*math.Log(d.Lambda/(2*math.Pi*x*x*x)) -
		d.Lambda*dev*dev/(2*d.Mu*d.Mu*x)
}

// CDF implements Dist.
func (d InverseGaussian) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	s := math.Sqrt(d.Lambda / x)
	a := stdNormCDF(s * (x/d.Mu - 1))
	b := math.Exp(2*d.Lambda/d.Mu) * stdNormCDF(-s*(x/d.Mu+1))
	v := a + b
	if v > 1 {
		return 1
	}
	return v
}

// Quantile implements Dist.
func (d InverseGaussian) Quantile(p float64) float64 {
	p = clampP(p)
	return quantileBisect(d.CDF, p, 0, 4*d.Mu+10*d.Mu*d.Mu/d.Lambda)
}

// Support implements Dist.
func (d InverseGaussian) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d InverseGaussian) Mean() float64 { return d.Mu }
