package dist

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct {
	A, B float64
}

// NewUniform returns a Uniform distribution; A must be strictly less than B.
func NewUniform(a, b float64) (Uniform, error) {
	if !(a < b) || !finite(a, b) {
		return Uniform{}, ErrBadParams
	}
	return Uniform{A: a, B: b}, nil
}

// Name implements Dist.
func (d Uniform) Name() string { return "Uniform" }

// Params implements Dist.
func (d Uniform) Params() []float64 { return []float64{d.A, d.B} }

// PDF implements Dist.
func (d Uniform) PDF(x float64) float64 {
	if x < d.A || x > d.B {
		return 0
	}
	return 1 / (d.B - d.A)
}

// LogPDF implements Dist.
func (d Uniform) LogPDF(x float64) float64 { return logPDFviaPDF(d, x) }

// CDF implements Dist.
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x <= d.A:
		return 0
	case x >= d.B:
		return 1
	default:
		return (x - d.A) / (d.B - d.A)
	}
}

// Quantile implements Dist.
func (d Uniform) Quantile(p float64) float64 {
	p = clampP(p)
	return d.A + p*(d.B-d.A)
}

// Support implements Dist.
func (d Uniform) Support() (float64, float64) { return d.A, d.B }

// Mean implements Dist.
func (d Uniform) Mean() float64 { return (d.A + d.B) / 2 }
