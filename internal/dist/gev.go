package dist

import "math"

// GEV is the Generalized Extreme Value distribution in the Matlab-style
// parameterization used by the paper (Tables II and III): shape K, scale
// Sigma, location Mu. For K != 0 the CDF is
//
//	F(x) = exp(-(1 + K*(x-Mu)/Sigma)^(-1/K))
//
// on the support where 1 + K*(x-Mu)/Sigma > 0; K = 0 gives the Gumbel limit.
type GEV struct {
	K, Sigma, Mu float64
}

// NewGEV returns a GEV distribution; Sigma must be positive.
func NewGEV(k, sigma, mu float64) (GEV, error) {
	if !(sigma > 0) || !finite(k, sigma, mu) {
		return GEV{}, ErrBadParams
	}
	return GEV{K: k, Sigma: sigma, Mu: mu}, nil
}

// Name implements Dist.
func (d GEV) Name() string { return "GEV" }

// Params implements Dist.
func (d GEV) Params() []float64 { return []float64{d.K, d.Sigma, d.Mu} }

// t computes (1 + K*z)^(-1/K) (or exp(-z) for K=0); returns NaN outside the
// support.
func (d GEV) t(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	if d.K == 0 {
		return math.Exp(-z)
	}
	arg := 1 + d.K*z
	if arg <= 0 {
		return math.NaN()
	}
	return math.Pow(arg, -1/d.K)
}

// PDF implements Dist.
func (d GEV) PDF(x float64) float64 {
	lp := d.LogPDF(x)
	if math.IsInf(lp, -1) {
		return 0
	}
	return math.Exp(lp)
}

// LogPDF implements Dist.
func (d GEV) LogPDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	if d.K == 0 {
		return -math.Log(d.Sigma) - z - math.Exp(-z)
	}
	arg := 1 + d.K*z
	if arg <= 0 {
		return math.Inf(-1)
	}
	la := math.Log(arg)
	return -math.Log(d.Sigma) - (1+1/d.K)*la - math.Exp(-la/d.K)
}

// CDF implements Dist.
func (d GEV) CDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	if d.K == 0 {
		return math.Exp(-math.Exp(-z))
	}
	arg := 1 + d.K*z
	if arg <= 0 {
		if d.K > 0 {
			return 0 // below the lower endpoint
		}
		return 1 // above the upper endpoint (K < 0)
	}
	return math.Exp(-math.Pow(arg, -1/d.K))
}

// Quantile implements Dist.
func (d GEV) Quantile(p float64) float64 {
	p = clampP(p)
	if d.K == 0 {
		return d.Mu - d.Sigma*math.Log(-math.Log(p))
	}
	return d.Mu + d.Sigma*(math.Pow(-math.Log(p), -d.K)-1)/d.K
}

// Support implements Dist.
func (d GEV) Support() (float64, float64) {
	switch {
	case d.K > 0:
		return d.Mu - d.Sigma/d.K, math.Inf(1)
	case d.K < 0:
		return math.Inf(-1), d.Mu - d.Sigma/d.K
	default:
		return math.Inf(-1), math.Inf(1)
	}
}

// Mean implements Dist.
func (d GEV) Mean() float64 {
	const eulerGamma = 0.5772156649015329
	switch {
	case d.K == 0:
		return d.Mu + d.Sigma*eulerGamma
	case d.K >= 1:
		return math.Inf(1)
	default:
		lg, sign := math.Lgamma(1 - d.K)
		g1 := float64(sign) * math.Exp(lg)
		return d.Mu + d.Sigma*(g1-1)/d.K
	}
}

// Gumbel is the type-I extreme value distribution with location Mu and scale
// Beta (the K -> 0 limit of GEV).
type Gumbel struct {
	Mu, Beta float64
}

// NewGumbel returns a Gumbel distribution; Beta must be positive.
func NewGumbel(mu, beta float64) (Gumbel, error) {
	if !(beta > 0) || !finite(mu, beta) {
		return Gumbel{}, ErrBadParams
	}
	return Gumbel{Mu: mu, Beta: beta}, nil
}

// Name implements Dist.
func (d Gumbel) Name() string { return "Gumbel" }

// Params implements Dist.
func (d Gumbel) Params() []float64 { return []float64{d.Mu, d.Beta} }

// PDF implements Dist.
func (d Gumbel) PDF(x float64) float64 { return math.Exp(d.LogPDF(x)) }

// LogPDF implements Dist.
func (d Gumbel) LogPDF(x float64) float64 {
	z := (x - d.Mu) / d.Beta
	return -math.Log(d.Beta) - z - math.Exp(-z)
}

// CDF implements Dist.
func (d Gumbel) CDF(x float64) float64 {
	z := (x - d.Mu) / d.Beta
	return math.Exp(-math.Exp(-z))
}

// Quantile implements Dist.
func (d Gumbel) Quantile(p float64) float64 {
	p = clampP(p)
	return d.Mu - d.Beta*math.Log(-math.Log(p))
}

// Support implements Dist.
func (d Gumbel) Support() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// Mean implements Dist.
func (d Gumbel) Mean() float64 {
	const eulerGamma = 0.5772156649015329
	return d.Mu + d.Beta*eulerGamma
}
