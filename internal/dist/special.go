package dist

import "math"

// stdNormCDF returns the standard normal CDF Φ(x).
func stdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// stdNormPDF returns the standard normal density φ(x).
func stdNormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// stdNormQuantile returns Φ⁻¹(p) using Acklam's rational approximation
// refined with one step of Halley's method. Accurate to ~1e-15 over (0,1).
func stdNormQuantile(p float64) float64 {
	p = clampP(p)

	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		plow  = 0.02425
		phigh = 1 - plow
	)

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}

	// One Halley refinement step.
	e := stdNormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// RegLowerGamma returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0, via the classic series /
// continued-fraction split (Numerical Recipes style). It is exported for
// the goodness-of-fit code in internal/fit (chi-square p-values).
func RegLowerGamma(a, x float64) float64 { return regLowerGamma(a, x) }

func regLowerGamma(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContFrac(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContFrac(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// quantileBisect numerically inverts cdf over the bracket [lo, hi], widening
// hi automatically for half-open supports. It assumes cdf is nondecreasing.
func quantileBisect(cdf func(float64) float64, p, lo, hi float64) float64 {
	p = clampP(p)
	// Expand hi until the bracket contains p (handles infinite supports
	// approximated by a large finite bracket).
	for i := 0; i < 200 && cdf(hi) < p; i++ {
		lo = hi
		hi *= 2
		if hi > 1e300 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*math.Max(1, math.Abs(hi)) {
			break
		}
	}
	return 0.5 * (lo + hi)
}
