package dist

import "math"

// Logistic is the logistic distribution with location Mu and scale S.
type Logistic struct {
	Mu, S float64
}

// NewLogistic returns a Logistic distribution; S must be positive.
func NewLogistic(mu, s float64) (Logistic, error) {
	if !(s > 0) || !finite(mu, s) {
		return Logistic{}, ErrBadParams
	}
	return Logistic{Mu: mu, S: s}, nil
}

// Name implements Dist.
func (d Logistic) Name() string { return "Logistic" }

// Params implements Dist.
func (d Logistic) Params() []float64 { return []float64{d.Mu, d.S} }

// PDF implements Dist.
func (d Logistic) PDF(x float64) float64 {
	z := math.Abs(x-d.Mu) / d.S
	e := math.Exp(-z)
	return e / (d.S * (1 + e) * (1 + e))
}

// LogPDF implements Dist.
func (d Logistic) LogPDF(x float64) float64 {
	z := math.Abs(x-d.Mu) / d.S
	return -z - math.Log(d.S) - 2*log1pExp(-z)
}

// CDF implements Dist.
func (d Logistic) CDF(x float64) float64 {
	z := (x - d.Mu) / d.S
	return 1 / (1 + math.Exp(-z))
}

// Quantile implements Dist.
func (d Logistic) Quantile(p float64) float64 {
	p = clampP(p)
	return d.Mu + d.S*math.Log(p/(1-p))
}

// Support implements Dist.
func (d Logistic) Support() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// Mean implements Dist.
func (d Logistic) Mean() float64 { return d.Mu }

// Laplace is the double-exponential distribution with location Mu and scale B.
type Laplace struct {
	Mu, B float64
}

// NewLaplace returns a Laplace distribution; B must be positive.
func NewLaplace(mu, b float64) (Laplace, error) {
	if !(b > 0) || !finite(mu, b) {
		return Laplace{}, ErrBadParams
	}
	return Laplace{Mu: mu, B: b}, nil
}

// Name implements Dist.
func (d Laplace) Name() string { return "Laplace" }

// Params implements Dist.
func (d Laplace) Params() []float64 { return []float64{d.Mu, d.B} }

// PDF implements Dist.
func (d Laplace) PDF(x float64) float64 {
	return math.Exp(-math.Abs(x-d.Mu)/d.B) / (2 * d.B)
}

// LogPDF implements Dist.
func (d Laplace) LogPDF(x float64) float64 {
	return -math.Abs(x-d.Mu)/d.B - math.Log(2*d.B)
}

// CDF implements Dist.
func (d Laplace) CDF(x float64) float64 {
	if x < d.Mu {
		return 0.5 * math.Exp((x-d.Mu)/d.B)
	}
	return 1 - 0.5*math.Exp(-(x-d.Mu)/d.B)
}

// Quantile implements Dist.
func (d Laplace) Quantile(p float64) float64 {
	p = clampP(p)
	if p < 0.5 {
		return d.Mu + d.B*math.Log(2*p)
	}
	return d.Mu - d.B*math.Log(2*(1-p))
}

// Support implements Dist.
func (d Laplace) Support() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// Mean implements Dist.
func (d Laplace) Mean() float64 { return d.Mu }

// Cauchy is the Cauchy distribution with location X0 and scale Gamma. Its
// mean is undefined (NaN).
type Cauchy struct {
	X0, Gamma float64
}

// NewCauchy returns a Cauchy distribution; Gamma must be positive.
func NewCauchy(x0, gamma float64) (Cauchy, error) {
	if !(gamma > 0) || !finite(x0, gamma) {
		return Cauchy{}, ErrBadParams
	}
	return Cauchy{X0: x0, Gamma: gamma}, nil
}

// Name implements Dist.
func (d Cauchy) Name() string { return "Cauchy" }

// Params implements Dist.
func (d Cauchy) Params() []float64 { return []float64{d.X0, d.Gamma} }

// PDF implements Dist.
func (d Cauchy) PDF(x float64) float64 {
	z := (x - d.X0) / d.Gamma
	return 1 / (math.Pi * d.Gamma * (1 + z*z))
}

// LogPDF implements Dist.
func (d Cauchy) LogPDF(x float64) float64 { return logPDFviaPDF(d, x) }

// CDF implements Dist.
func (d Cauchy) CDF(x float64) float64 {
	return 0.5 + math.Atan((x-d.X0)/d.Gamma)/math.Pi
}

// Quantile implements Dist.
func (d Cauchy) Quantile(p float64) float64 {
	p = clampP(p)
	return d.X0 + d.Gamma*math.Tan(math.Pi*(p-0.5))
}

// Support implements Dist.
func (d Cauchy) Support() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// Mean implements Dist.
func (d Cauchy) Mean() float64 { return math.NaN() }
