package dist

import (
	"math"
	"sort"
	"strings"
)

// Mixture is a finite weighted mixture of component distributions. The paper
// models the arrival process of U65 as a four-phase composite (Equation 1):
//
//	PDF(x) = Σ_n (phase_n usage / total usage) · PDF_n(x)
//
// which is exactly a mixture with the per-phase usage fractions as weights.
type Mixture struct {
	components []Dist
	weights    []float64
}

// NewMixture builds a mixture from parallel component and weight slices.
// Weights must be positive; they are normalized to sum to one.
func NewMixture(components []Dist, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, ErrBadParams
	}
	var sum float64
	for _, w := range weights {
		if !(w > 0) || !finite(w) {
			return nil, ErrBadParams
		}
		sum += w
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return &Mixture{
		components: append([]Dist(nil), components...),
		weights:    norm,
	}, nil
}

// Name identifies the mixture and its component families.
func (m *Mixture) Name() string {
	names := make([]string, len(m.components))
	for i, c := range m.components {
		names[i] = c.Name()
	}
	return "Mixture(" + strings.Join(names, "+") + ")"
}

// Components returns the component distributions (shared, do not mutate).
func (m *Mixture) Components() []Dist { return m.components }

// Weights returns the normalized mixing weights.
func (m *Mixture) Weights() []float64 { return append([]float64(nil), m.weights...) }

// Params concatenates the component parameter vectors, weight-first per
// component: [w1, p1..., w2, p2..., ...].
func (m *Mixture) Params() []float64 {
	var out []float64
	for i, c := range m.components {
		out = append(out, m.weights[i])
		out = append(out, c.Params()...)
	}
	return out
}

// PDF implements Dist.
func (m *Mixture) PDF(x float64) float64 {
	var p float64
	for i, c := range m.components {
		p += m.weights[i] * c.PDF(x)
	}
	return p
}

// LogPDF implements Dist.
func (m *Mixture) LogPDF(x float64) float64 { return logPDFviaPDF(m, x) }

// CDF implements Dist.
func (m *Mixture) CDF(x float64) float64 {
	var p float64
	for i, c := range m.components {
		p += m.weights[i] * c.CDF(x)
	}
	if p > 1 {
		return 1
	}
	return p
}

// Quantile numerically inverts the mixture CDF.
func (m *Mixture) Quantile(p float64) float64 {
	p = clampP(p)
	lo, hi := m.Support()
	// Build a finite bracket from component quantiles when the support is
	// unbounded.
	if math.IsInf(lo, -1) || math.IsInf(hi, 1) {
		qs := make([]float64, 0, 2*len(m.components))
		for _, c := range m.components {
			qs = append(qs, c.Quantile(1e-9), c.Quantile(1-1e-9))
		}
		sort.Float64s(qs)
		if math.IsInf(lo, -1) {
			lo = qs[0]
		}
		if math.IsInf(hi, 1) {
			hi = qs[len(qs)-1]
		}
	}
	return quantileBisect(m.CDF, p, lo, hi)
}

// Support implements Dist.
func (m *Mixture) Support() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.components {
		l, h := c.Support()
		lo = math.Min(lo, l)
		hi = math.Max(hi, h)
	}
	return lo, hi
}

// Mean implements Dist.
func (m *Mixture) Mean() float64 {
	var mu float64
	for i, c := range m.components {
		mu += m.weights[i] * c.Mean()
	}
	return mu
}
