package dist

import (
	"math"
	"sort"
)

// Family describes a parametric distribution family generically so the
// fitting code can construct candidate distributions from raw parameter
// vectors. The paper fits "a set of 18 different distributions" and selects
// the best by the Bayesian information criterion; AllFamilies returns those
// 18 families.
type Family struct {
	// Name is the family name, matching Dist.Name of its members.
	Name string
	// NParams is the length of the parameter vector.
	NParams int
	// New constructs a member from a parameter vector, validating it.
	New func(params []float64) (Dist, error)
	// Guess produces a starting parameter vector from data for MLE.
	Guess func(data []float64) []float64
}

// AllFamilies returns the 18 distribution families considered during model
// selection, mirroring the candidate set described in Section IV of the
// paper (normal, Weibull, GEV, Birnbaum-Saunders, Pareto, Burr, log-normal,
// and similar standard continuous families).
func AllFamilies() []Family {
	return []Family{
		{"Normal", 2,
			func(p []float64) (Dist, error) { return NewNormal(p[0], p[1]) },
			func(xs []float64) []float64 { m, s := meanStd(xs); return []float64{m, s} }},
		{"LogNormal", 2,
			func(p []float64) (Dist, error) { return NewLogNormal(p[0], p[1]) },
			func(xs []float64) []float64 { m, s := logMeanStd(xs); return []float64{m, s} }},
		{"Exponential", 1,
			func(p []float64) (Dist, error) { return NewExponential(p[0]) },
			func(xs []float64) []float64 {
				m, _ := meanStd(xs)
				return []float64{1 / math.Max(m, 1e-12)}
			}},
		{"Weibull", 2,
			func(p []float64) (Dist, error) { return NewWeibull(p[0], p[1]) },
			func(xs []float64) []float64 {
				m, _ := meanStd(xs)
				return []float64{math.Max(m, 1e-9), 1}
			}},
		{"Gamma", 2,
			func(p []float64) (Dist, error) { return NewGamma(p[0], p[1]) },
			func(xs []float64) []float64 {
				m, s := meanStd(xs)
				v := math.Max(s*s, 1e-12)
				m = math.Max(m, 1e-12)
				return []float64{m * m / v, v / m}
			}},
		{"GEV", 3,
			func(p []float64) (Dist, error) { return NewGEV(p[0], p[1], p[2]) },
			func(xs []float64) []float64 {
				_, s := meanStd(xs)
				return []float64{0.1, math.Max(s*math.Sqrt(6)/math.Pi, 1e-9), median(xs)}
			}},
		{"Gumbel", 2,
			func(p []float64) (Dist, error) { return NewGumbel(p[0], p[1]) },
			func(xs []float64) []float64 {
				m, s := meanStd(xs)
				beta := math.Max(s*math.Sqrt(6)/math.Pi, 1e-9)
				return []float64{m - 0.5772156649*beta, beta}
			}},
		{"Pareto", 2,
			func(p []float64) (Dist, error) { return NewPareto(p[0], p[1]) },
			func(xs []float64) []float64 {
				lo, _ := minMax(xs)
				return []float64{math.Max(lo*0.999, 1e-12), 2}
			}},
		{"GeneralizedPareto", 3,
			func(p []float64) (Dist, error) { return NewGeneralizedPareto(p[0], p[1], p[2]) },
			func(xs []float64) []float64 {
				lo, _ := minMax(xs)
				_, s := meanStd(xs)
				return []float64{0.1, math.Max(s, 1e-9), lo - math.Max(math.Abs(lo)*1e-6, 1e-9)}
			}},
		{"Burr", 3,
			func(p []float64) (Dist, error) { return NewBurr(p[0], p[1], p[2]) },
			func(xs []float64) []float64 {
				return []float64{math.Max(median(xs), 1e-9), 1, 1}
			}},
		{"BirnbaumSaunders", 2,
			func(p []float64) (Dist, error) { return NewBirnbaumSaunders(p[0], p[1]) },
			func(xs []float64) []float64 {
				m, _ := meanStd(xs)
				med := math.Max(median(xs), 1e-12)
				g := math.Sqrt(2 * math.Max(m/med-1, 0.01))
				return []float64{med, g}
			}},
		{"Rayleigh", 1,
			func(p []float64) (Dist, error) { return NewRayleigh(p[0]) },
			func(xs []float64) []float64 {
				m, _ := meanStd(xs)
				return []float64{math.Max(m/math.Sqrt(math.Pi/2), 1e-12)}
			}},
		{"Logistic", 2,
			func(p []float64) (Dist, error) { return NewLogistic(p[0], p[1]) },
			func(xs []float64) []float64 {
				m, s := meanStd(xs)
				return []float64{m, math.Max(s*math.Sqrt(3)/math.Pi, 1e-9)}
			}},
		{"LogLogistic", 2,
			func(p []float64) (Dist, error) { return NewLogLogistic(p[0], p[1]) },
			func(xs []float64) []float64 {
				return []float64{math.Max(median(xs), 1e-9), 1}
			}},
		{"Uniform", 2,
			func(p []float64) (Dist, error) { return NewUniform(p[0], p[1]) },
			func(xs []float64) []float64 {
				lo, hi := minMax(xs)
				pad := math.Max((hi-lo)*1e-6, 1e-9)
				return []float64{lo - pad, hi + pad}
			}},
		{"InverseGaussian", 2,
			func(p []float64) (Dist, error) { return NewInverseGaussian(p[0], p[1]) },
			func(xs []float64) []float64 {
				m, s := meanStd(xs)
				m = math.Max(m, 1e-12)
				v := math.Max(s*s, 1e-12)
				return []float64{m, m * m * m / v}
			}},
		{"Laplace", 2,
			func(p []float64) (Dist, error) { return NewLaplace(p[0], p[1]) },
			func(xs []float64) []float64 {
				med := median(xs)
				mad := 0.0
				for _, x := range xs {
					mad += math.Abs(x - med)
				}
				if len(xs) > 0 {
					mad /= float64(len(xs))
				}
				return []float64{med, math.Max(mad, 1e-9)}
			}},
		{"Cauchy", 2,
			func(p []float64) (Dist, error) { return NewCauchy(p[0], p[1]) },
			func(xs []float64) []float64 {
				med := median(xs)
				return []float64{med, math.Max(iqr(xs)/2, 1e-9)}
			}},
	}
}

// FamilyByName returns the family with the given name and whether it exists.
func FamilyByName(name string) (Family, bool) {
	for _, f := range AllFamilies() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	if len(xs) > 1 {
		std = math.Sqrt(ss / float64(len(xs)-1))
	}
	if std == 0 {
		std = math.Max(math.Abs(mean)*1e-3, 1e-9)
	}
	return mean, std
}

func logMeanStd(xs []float64) (mean, std float64) {
	ls := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			ls = append(ls, math.Log(x))
		}
	}
	return meanStd(ls)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

func iqr(xs []float64) float64 {
	if len(xs) < 4 {
		_, s := meanStd(xs)
		return s
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q1 := s[len(s)/4]
	q3 := s[3*len(s)/4]
	return q3 - q1
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
