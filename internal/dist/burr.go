package dist

import "math"

// Burr is the Burr type XII distribution with scale Alpha and shapes C and K,
// the parameterization used by the paper's Table II fit for U30
// (Burr(α=7.4e4, c=8.6e-4, k=0.08)). The CDF is
//
//	F(x) = 1 - (1 + (x/Alpha)^C)^(-K).
type Burr struct {
	Alpha, C, K float64
}

// NewBurr returns a Burr XII distribution; all parameters must be positive.
func NewBurr(alpha, c, k float64) (Burr, error) {
	if !(alpha > 0) || !(c > 0) || !(k > 0) || !finite(alpha, c, k) {
		return Burr{}, ErrBadParams
	}
	return Burr{Alpha: alpha, C: c, K: k}, nil
}

// Name implements Dist.
func (d Burr) Name() string { return "Burr" }

// Params implements Dist.
func (d Burr) Params() []float64 { return []float64{d.Alpha, d.C, d.K} }

// PDF implements Dist.
func (d Burr) PDF(x float64) float64 {
	lp := d.LogPDF(x)
	if math.IsInf(lp, -1) {
		return 0
	}
	return math.Exp(lp)
}

// LogPDF implements Dist.
func (d Burr) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lz := math.Log(x / d.Alpha)
	// log pdf = log(kc/α) + (c-1)·log(x/α) - (k+1)·log(1+(x/α)^c)
	return math.Log(d.K*d.C/d.Alpha) + (d.C-1)*lz - (d.K+1)*log1pExp(d.C*lz)
}

// log1pExp computes log(1+exp(v)) stably.
func log1pExp(v float64) float64 {
	if v > 35 {
		return v
	}
	if v < -35 {
		return math.Exp(v)
	}
	return math.Log1p(math.Exp(v))
}

// CDF implements Dist.
func (d Burr) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-d.K * log1pExp(d.C*math.Log(x/d.Alpha)))
}

// Quantile implements Dist.
func (d Burr) Quantile(p float64) float64 {
	p = clampP(p)
	// invert: (1-p)^(-1/k) - 1 = (x/α)^c
	base := math.Expm1(-math.Log1p(-p) / d.K)
	return d.Alpha * math.Pow(base, 1/d.C)
}

// Support implements Dist.
func (d Burr) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d Burr) Mean() float64 {
	if d.C*d.K <= 1 {
		return math.Inf(1)
	}
	// α·k·B(k - 1/c, 1 + 1/c)
	a := d.K - 1/d.C
	b := 1 + 1/d.C
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return d.Alpha * d.K * math.Exp(la+lb-lab)
}

// LogLogistic is the log-logistic (Fisk) distribution with scale Alpha and
// shape Beta.
type LogLogistic struct {
	Alpha, Beta float64
}

// NewLogLogistic returns a LogLogistic distribution; both parameters must be
// positive.
func NewLogLogistic(alpha, beta float64) (LogLogistic, error) {
	if !(alpha > 0) || !(beta > 0) || !finite(alpha, beta) {
		return LogLogistic{}, ErrBadParams
	}
	return LogLogistic{Alpha: alpha, Beta: beta}, nil
}

// Name implements Dist.
func (d LogLogistic) Name() string { return "LogLogistic" }

// Params implements Dist.
func (d LogLogistic) Params() []float64 { return []float64{d.Alpha, d.Beta} }

// PDF implements Dist.
func (d LogLogistic) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := math.Pow(x/d.Alpha, d.Beta)
	den := 1 + z
	return d.Beta / d.Alpha * math.Pow(x/d.Alpha, d.Beta-1) / (den * den)
}

// LogPDF implements Dist.
func (d LogLogistic) LogPDF(x float64) float64 { return logPDFviaPDF(d, x) }

// CDF implements Dist.
func (d LogLogistic) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := math.Pow(x/d.Alpha, -d.Beta)
	return 1 / (1 + z)
}

// Quantile implements Dist.
func (d LogLogistic) Quantile(p float64) float64 {
	p = clampP(p)
	return d.Alpha * math.Pow(p/(1-p), 1/d.Beta)
}

// Support implements Dist.
func (d LogLogistic) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d LogLogistic) Mean() float64 {
	if d.Beta <= 1 {
		return math.Inf(1)
	}
	t := math.Pi / d.Beta
	return d.Alpha * t / math.Sin(t)
}
