// Package dist implements the continuous probability distributions used by
// the workload-modeling pipeline of the Aequus evaluation: probability
// density, cumulative distribution, quantile (inverse CDF) and sampling for
// 18 families, including the Generalized Extreme Value, Burr XII,
// Birnbaum-Saunders and Weibull fits the paper reports in Tables II and III.
//
// All distributions are immutable value types constructed through their
// New... constructors (which validate parameters) or through the generic
// Family registry used by the fitting code in internal/fit.
package dist

import (
	"errors"
	"math"
	"math/rand"
)

// Dist is a continuous univariate distribution.
type Dist interface {
	// Name returns the family name, e.g. "GEV".
	Name() string
	// Params returns the parameter vector in the family's canonical order.
	Params() []float64
	// PDF returns the probability density at x (0 outside the support).
	PDF(x float64) float64
	// LogPDF returns log(PDF(x)); -Inf outside the support.
	LogPDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile for p in (0,1). Behaviour outside
	// (0,1) is clamped to the support endpoints.
	Quantile(p float64) float64
	// Support returns the interval on which the density is positive.
	Support() (lo, hi float64)
	// Mean returns the distribution mean; NaN or Inf when undefined.
	Mean() float64
}

// ErrBadParams is returned by constructors for out-of-domain parameters.
var ErrBadParams = errors.New("dist: invalid parameters")

// Sample draws one variate from d by inverse-transform sampling.
func Sample(d Dist, rng *rand.Rand) float64 {
	return d.Quantile(openUnit(rng))
}

// SampleN draws n variates from d.
func SampleN(d Dist, rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = Sample(d, rng)
	}
	return out
}

// openUnit returns a uniform variate strictly inside (0,1) so quantile
// functions never see 0 or 1 exactly.
func openUnit(rng *rand.Rand) float64 {
	for {
		u := rng.Float64()
		if u > 0 && u < 1 {
			return u
		}
	}
}

// clampP clips a probability to the open unit interval; out-of-range values
// map to the nearest representable interior point so quantiles stay finite
// where the support is finite.
func clampP(p float64) float64 {
	const eps = 1e-300
	if p <= 0 {
		return eps
	}
	if p >= 1 {
		return 1 - 1e-16
	}
	return p
}

// logPDFviaPDF is a fallback for families whose density has a simple form.
func logPDFviaPDF(d Dist, x float64) float64 {
	p := d.PDF(x)
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// finite reports whether all values are finite (no NaN/Inf).
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
