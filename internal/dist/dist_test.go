package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testDists returns one instance per family, with parameters echoing those
// the paper reports where applicable.
func testDists(t *testing.T) []Dist {
	t.Helper()
	mk := func(d Dist, err error) Dist {
		if err != nil {
			t.Fatalf("constructing %T: %v", d, err)
		}
		return d
	}
	gevNeg := mk(NewGEV(-0.386, 19.5, 100)) // Table II U65 p1 shape/scale
	gevPos := mk(NewGEV(0.195, 29.1, 100))  // Table II U3
	burr := mk(NewBurr(2.07, 11.0, 0.8))    // Table III U3-like (k raised for finite quantiles)
	bs := mk(NewBirnbaumSaunders(1.76e4, 3.53))
	weib := mk(NewWeibull(5.49e4, 0.637))
	return []Dist{
		mk(NewNormal(3, 2)),
		mk(NewLogNormal(1, 0.5)),
		mk(NewExponential(0.25)),
		weib,
		mk(NewGamma(2.5, 3)),
		gevNeg,
		gevPos,
		mk(NewGumbel(5, 2)),
		mk(NewPareto(1.5, 2.5)),
		mk(NewGeneralizedPareto(0.2, 2, 1)),
		mk(NewGeneralizedPareto(-0.3, 2, 1)),
		burr,
		bs,
		mk(NewRayleigh(3)),
		mk(NewLogistic(-1, 2)),
		mk(NewLogLogistic(4, 3)),
		mk(NewUniform(-2, 7)),
		mk(NewInverseGaussian(3, 9)),
		mk(NewLaplace(0, 1.5)),
		mk(NewCauchy(1, 2)),
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	ps := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for _, d := range testDists(t) {
		for _, p := range ps {
			x := d.Quantile(p)
			if math.IsNaN(x) {
				t.Errorf("%s.Quantile(%g) = NaN", d.Name(), p)
				continue
			}
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%g)) = %g (x=%g)", d.Name(), p, got, x)
			}
		}
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, d := range testDists(t) {
		lo := d.Quantile(0.0005)
		hi := d.Quantile(0.9995)
		prev := math.Inf(-1)
		for i := 0; i <= 200; i++ {
			x := lo + float64(i)*(hi-lo)/200
			c := d.CDF(x)
			if c < 0 || c > 1 || math.IsNaN(c) {
				t.Fatalf("%s.CDF(%g) = %g out of [0,1]", d.Name(), x, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("%s.CDF not monotone at %g: %g < %g", d.Name(), x, c, prev)
			}
			prev = c
		}
	}
}

func TestPDFMatchesLogPDF(t *testing.T) {
	for _, d := range testDists(t) {
		for _, p := range []float64{0.05, 0.3, 0.5, 0.7, 0.95} {
			x := d.Quantile(p)
			pdf := d.PDF(x)
			lp := d.LogPDF(x)
			if pdf <= 0 {
				if !math.IsInf(lp, -1) {
					t.Errorf("%s: PDF(%g)=0 but LogPDF=%g", d.Name(), x, lp)
				}
				continue
			}
			if math.Abs(math.Log(pdf)-lp) > 1e-8*math.Max(1, math.Abs(lp)) {
				t.Errorf("%s: log(PDF(%g))=%g, LogPDF=%g", d.Name(), x, math.Log(pdf), lp)
			}
		}
	}
}

func TestPDFIntegratesToCDFDifference(t *testing.T) {
	// Trapezoid-integrate the density between the 10% and 90% quantiles and
	// compare with the CDF mass over the same interval.
	for _, d := range testDists(t) {
		a := d.Quantile(0.1)
		b := d.Quantile(0.9)
		const n = 20000
		h := (b - a) / n
		sum := 0.5 * (d.PDF(a) + d.PDF(b))
		for i := 1; i < n; i++ {
			sum += d.PDF(a + float64(i)*h)
		}
		integral := sum * h
		want := d.CDF(b) - d.CDF(a)
		if math.Abs(integral-want) > 5e-3 {
			t.Errorf("%s: ∫pdf=%g over [q10,q90], CDF mass=%g", d.Name(), integral, want)
		}
	}
}

func TestPDFZeroOutsideSupport(t *testing.T) {
	for _, d := range testDists(t) {
		lo, hi := d.Support()
		if !math.IsInf(lo, -1) {
			x := lo - math.Max(1, math.Abs(lo))*0.5
			if p := d.PDF(x); p != 0 {
				t.Errorf("%s.PDF(%g) = %g below support [%g,%g]", d.Name(), x, p, lo, hi)
			}
		}
		if !math.IsInf(hi, 1) {
			x := hi + math.Max(1, math.Abs(hi))*0.5
			if p := d.PDF(x); p != 0 {
				t.Errorf("%s.PDF(%g) = %g above support", d.Name(), x, p)
			}
			if c := d.CDF(x); c != 1 {
				t.Errorf("%s.CDF(%g) = %g above support, want 1", d.Name(), x, c)
			}
		}
	}
}

func TestSampleMeanMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range testDists(t) {
		mu := d.Mean()
		if math.IsNaN(mu) || math.IsInf(mu, 0) {
			continue // Cauchy, heavy-tailed Burr etc.
		}
		// Skip extremely heavy-tailed cases where 20k samples cannot settle.
		if d.Name() == "BirnbaumSaunders" && d.Params()[1] > 2 {
			continue
		}
		xs := SampleN(d, rng, 20000)
		var m float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		scale := math.Max(math.Abs(mu), 1)
		if math.Abs(m-mu) > 0.15*scale {
			t.Errorf("%s: sample mean %g, theory %g", d.Name(), m, mu)
		}
	}
}

func TestSamplesInsideSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range testDists(t) {
		lo, hi := d.Support()
		for i := 0; i < 1000; i++ {
			x := Sample(d, rng)
			if x < lo-1e-9 || x > hi+1e-9 || math.IsNaN(x) {
				t.Fatalf("%s: sample %g outside support [%g, %g]", d.Name(), x, lo, hi)
			}
		}
	}
}

func TestConstructorsRejectBadParams(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"Normal sigma=0", errOf(NewNormal(0, 0))},
		{"Normal sigma<0", errOf(NewNormal(0, -1))},
		{"LogNormal sigma=0", errOf(NewLogNormal(0, 0))},
		{"Exponential lambda=0", errOf(NewExponential(0))},
		{"Weibull k=0", errOf(NewWeibull(1, 0))},
		{"Weibull lambda<0", errOf(NewWeibull(-1, 1))},
		{"Gamma k=0", errOf(NewGamma(0, 1))},
		{"GEV sigma=0", errOf(NewGEV(0.1, 0, 0))},
		{"GEV NaN", errOf(NewGEV(math.NaN(), 1, 0))},
		{"Gumbel beta=0", errOf(NewGumbel(0, 0))},
		{"Pareto xm=0", errOf(NewPareto(0, 1))},
		{"GPD sigma=0", errOf(NewGeneralizedPareto(0, 0, 0))},
		{"Burr c=0", errOf(NewBurr(1, 0, 1))},
		{"BS gamma=0", errOf(NewBirnbaumSaunders(1, 0))},
		{"Rayleigh sigma=0", errOf(NewRayleigh(0))},
		{"Logistic s=0", errOf(NewLogistic(0, 0))},
		{"LogLogistic beta=0", errOf(NewLogLogistic(1, 0))},
		{"Uniform a=b", errOf(NewUniform(1, 1))},
		{"Uniform a>b", errOf(NewUniform(2, 1))},
		{"InvGauss mu=0", errOf(NewInverseGaussian(0, 1))},
		{"Laplace b=0", errOf(NewLaplace(0, 0))},
		{"Cauchy gamma=0", errOf(NewCauchy(0, 0))},
	}
	for _, c := range cases {
		if c.err != ErrBadParams {
			t.Errorf("%s: err = %v, want ErrBadParams", c.name, c.err)
		}
	}
}

func errOf(_ interface{}, err error) error { return err }

func TestGEVNegativeShapeHasUpperBound(t *testing.T) {
	// Table II fits negative shapes for U65; the support must be bounded
	// above at mu - sigma/k.
	d, err := NewGEV(-0.386, 19.5, 7.35e4)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.Support()
	if !math.IsInf(lo, -1) {
		t.Errorf("lower support = %g, want -Inf", lo)
	}
	wantHi := 7.35e4 + 19.5/0.386
	if math.Abs(hi-wantHi) > 1e-6 {
		t.Errorf("upper support = %g, want %g", hi, wantHi)
	}
	if c := d.CDF(hi + 1); c != 1 {
		t.Errorf("CDF above upper endpoint = %g, want 1", c)
	}
	if p := d.PDF(hi + 1); p != 0 {
		t.Errorf("PDF above upper endpoint = %g, want 0", p)
	}
}

func TestGEVZeroShapeEqualsGumbel(t *testing.T) {
	gev, _ := NewGEV(0, 2, 5)
	gum, _ := NewGumbel(5, 2)
	for _, x := range []float64{-3, 0, 2, 5, 8, 20} {
		if math.Abs(gev.CDF(x)-gum.CDF(x)) > 1e-12 {
			t.Errorf("CDF mismatch at %g: GEV %g vs Gumbel %g", x, gev.CDF(x), gum.CDF(x))
		}
		if math.Abs(gev.PDF(x)-gum.PDF(x)) > 1e-12 {
			t.Errorf("PDF mismatch at %g", x)
		}
	}
}

func TestNormalKnownValues(t *testing.T) {
	d, _ := NewNormal(0, 1)
	if got := d.CDF(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Φ(0) = %g", got)
	}
	if got := d.CDF(1.959963985); math.Abs(got-0.975) > 1e-8 {
		t.Errorf("Φ(1.96) = %g, want 0.975", got)
	}
	if got := d.Quantile(0.975); math.Abs(got-1.959963985) > 1e-8 {
		t.Errorf("Φ⁻¹(0.975) = %g", got)
	}
	if got := d.PDF(0); math.Abs(got-0.3989422804) > 1e-9 {
		t.Errorf("φ(0) = %g", got)
	}
}

func TestExponentialKnownValues(t *testing.T) {
	d, _ := NewExponential(2)
	if got := d.CDF(math.Ln2 / 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("median CDF = %g", got)
	}
	if got := d.Mean(); got != 0.5 {
		t.Errorf("mean = %g", got)
	}
}

func TestBirnbaumSaundersMedianIsBeta(t *testing.T) {
	// The BS median equals the scale parameter β, which is how the paper's
	// Table III medians relate to its fits.
	d, _ := NewBirnbaumSaunders(1.76e4, 3.53)
	if got := d.Quantile(0.5); math.Abs(got-1.76e4) > 1 {
		t.Errorf("BS median = %g, want β = 1.76e4", got)
	}
	if got := d.CDF(1.76e4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(β) = %g, want 0.5", got)
	}
}

func TestParetoSupportStartsAtXm(t *testing.T) {
	d, _ := NewPareto(3, 2)
	if got := d.CDF(3); got != 0 {
		t.Errorf("CDF(xm) = %g, want 0", got)
	}
	if got := d.CDF(2.9); got != 0 {
		t.Errorf("CDF below xm = %g", got)
	}
	if got := d.Mean(); math.Abs(got-6) > 1e-12 {
		t.Errorf("mean = %g, want 6", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	for _, d := range testDists(t) {
		d := d
		f := func(a, b uint32) bool {
			p1 := (float64(a%100000) + 0.5) / 100001
			p2 := (float64(b%100000) + 0.5) / 100001
			if p1 > p2 {
				p1, p2 = p2, p1
			}
			return d.Quantile(p1) <= d.Quantile(p2)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s quantile monotonicity: %v", d.Name(), err)
		}
	}
}

func TestMixtureMatchesEquationOne(t *testing.T) {
	// Equation (1): PDF_U65(x) = Σ (phase usage / total) · PDF_pn(x).
	c1, _ := NewNormal(10, 2)
	c2, _ := NewNormal(30, 5)
	m, err := NewMixture([]Dist{c1, c2}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{5, 10, 20, 30, 40} {
		want := 0.75*c1.PDF(x) + 0.25*c2.PDF(x)
		if got := m.PDF(x); math.Abs(got-want) > 1e-15 {
			t.Errorf("mixture PDF(%g) = %g, want %g", x, got, want)
		}
		wantC := 0.75*c1.CDF(x) + 0.25*c2.CDF(x)
		if got := m.CDF(x); math.Abs(got-wantC) > 1e-15 {
			t.Errorf("mixture CDF(%g) = %g, want %g", x, got, wantC)
		}
	}
	if got, want := m.Mean(), 0.75*10+0.25*30; math.Abs(got-want) > 1e-12 {
		t.Errorf("mixture mean = %g, want %g", got, want)
	}
}

func TestMixtureQuantileRoundTrip(t *testing.T) {
	c1, _ := NewGEV(-0.3, 20, 100)
	c2, _ := NewGEV(0.2, 30, 400)
	m, err := NewMixture([]Dist{c1, c2}, []float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := m.Quantile(p)
		if got := m.CDF(x); math.Abs(got-p) > 1e-6 {
			t.Errorf("mixture CDF(Quantile(%g)) = %g", p, got)
		}
	}
}

func TestMixtureRejectsBadInput(t *testing.T) {
	c, _ := NewNormal(0, 1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]Dist{c}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewMixture([]Dist{c}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewMixture([]Dist{c}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestMixtureWeightsNormalized(t *testing.T) {
	c1, _ := NewNormal(0, 1)
	c2, _ := NewNormal(5, 1)
	m, _ := NewMixture([]Dist{c1, c2}, []float64{2, 6})
	w := m.Weights()
	if math.Abs(w[0]-0.25) > 1e-15 || math.Abs(w[1]-0.75) > 1e-15 {
		t.Errorf("weights = %v, want [0.25 0.75]", w)
	}
}
