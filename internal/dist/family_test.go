package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestAllFamiliesCountIsEighteen(t *testing.T) {
	// The paper: "the best fit was found by modeling each data set using a
	// set of 18 different distributions".
	if got := len(AllFamilies()); got != 18 {
		t.Fatalf("AllFamilies() has %d entries, want 18", got)
	}
}

func TestFamilyNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range AllFamilies() {
		if seen[f.Name] {
			t.Errorf("duplicate family %q", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestFamilyByName(t *testing.T) {
	for _, name := range []string{"GEV", "Burr", "BirnbaumSaunders", "Weibull"} {
		f, ok := FamilyByName(name)
		if !ok || f.Name != name {
			t.Errorf("FamilyByName(%q) = %v, %v", name, f.Name, ok)
		}
	}
	if _, ok := FamilyByName("NoSuchFamily"); ok {
		t.Error("FamilyByName accepted an unknown name")
	}
}

func TestGuessesProduceValidDistributions(t *testing.T) {
	// For each family, sample data from a representative member and verify
	// the initial guess constructs a valid distribution with finite
	// log-likelihood on that data.
	rng := rand.New(rand.NewSource(3))
	source := map[string]Dist{}
	for _, d := range []Dist{
		mustDist(NewNormal(5, 2)),
		mustDist(NewLogNormal(1, 0.7)),
		mustDist(NewExponential(0.5)),
		mustDist(NewWeibull(10, 1.4)),
		mustDist(NewGamma(3, 2)),
		mustDist(NewGEV(0.1, 5, 50)),
		mustDist(NewGumbel(10, 3)),
		mustDist(NewPareto(2, 3)),
		mustDist(NewGeneralizedPareto(0.1, 2, 0)),
		mustDist(NewBurr(5, 2, 1.5)),
		mustDist(NewBirnbaumSaunders(100, 0.8)),
		mustDist(NewRayleigh(4)),
		mustDist(NewLogistic(0, 2)),
		mustDist(NewLogLogistic(6, 2.5)),
		mustDist(NewUniform(1, 9)),
		mustDist(NewInverseGaussian(4, 8)),
		mustDist(NewLaplace(2, 1)),
		mustDist(NewCauchy(0, 1)),
	} {
		source[d.Name()] = d
	}
	for _, f := range AllFamilies() {
		src, ok := source[f.Name]
		if !ok {
			t.Fatalf("no source distribution for family %s", f.Name)
		}
		data := SampleN(src, rng, 500)
		guess := f.Guess(data)
		if len(guess) != f.NParams {
			t.Errorf("%s: guess has %d params, want %d", f.Name, len(guess), f.NParams)
			continue
		}
		d, err := f.New(guess)
		if err != nil {
			t.Errorf("%s: guess %v rejected: %v", f.Name, guess, err)
			continue
		}
		// Log-likelihood should be finite for most points of the sample.
		finiteCount := 0
		for _, x := range data {
			if lp := d.LogPDF(x); !math.IsInf(lp, 0) && !math.IsNaN(lp) {
				finiteCount++
			}
		}
		if finiteCount < len(data)*9/10 {
			t.Errorf("%s: guess density finite on only %d/%d points", f.Name, finiteCount, len(data))
		}
	}
}

func TestGuessHandlesDegenerateData(t *testing.T) {
	// Constant and tiny data sets must not produce invalid parameters.
	data := []float64{5, 5, 5, 5}
	for _, f := range AllFamilies() {
		guess := f.Guess(data)
		if _, err := f.New(guess); err != nil {
			t.Errorf("%s: constant-data guess %v rejected: %v", f.Name, guess, err)
		}
	}
	one := []float64{3}
	for _, f := range AllFamilies() {
		guess := f.Guess(one)
		if _, err := f.New(guess); err != nil {
			t.Errorf("%s: single-point guess %v rejected: %v", f.Name, guess, err)
		}
	}
}

func mustDist(d Dist, err error) Dist {
	if err != nil {
		panic(err)
	}
	return d
}

func TestMedianHelper(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %g", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median even = %g", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median empty = %g", got)
	}
}

func TestMeanStdHelper(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %g", m)
	}
	if math.Abs(s-2.138089935) > 1e-6 {
		t.Errorf("std = %g", s)
	}
	_, s0 := meanStd([]float64{3, 3, 3})
	if s0 <= 0 {
		t.Errorf("degenerate std = %g, want positive floor", s0)
	}
}
