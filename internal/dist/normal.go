package dist

import "math"

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu, Sigma float64
}

// NewNormal returns a Normal distribution; Sigma must be positive.
func NewNormal(mu, sigma float64) (Normal, error) {
	if !(sigma > 0) || !finite(mu, sigma) {
		return Normal{}, ErrBadParams
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Name implements Dist.
func (d Normal) Name() string { return "Normal" }

// Params implements Dist.
func (d Normal) Params() []float64 { return []float64{d.Mu, d.Sigma} }

// PDF implements Dist.
func (d Normal) PDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	return stdNormPDF(z) / d.Sigma
}

// LogPDF implements Dist.
func (d Normal) LogPDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	return -0.5*z*z - math.Log(d.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF implements Dist.
func (d Normal) CDF(x float64) float64 { return stdNormCDF((x - d.Mu) / d.Sigma) }

// Quantile implements Dist.
func (d Normal) Quantile(p float64) float64 { return d.Mu + d.Sigma*stdNormQuantile(p) }

// Support implements Dist.
func (d Normal) Support() (float64, float64) { return math.Inf(-1), math.Inf(1) }

// Mean implements Dist.
func (d Normal) Mean() float64 { return d.Mu }

// LogNormal is the distribution of exp(N) where N ~ Normal(Mu, Sigma).
type LogNormal struct {
	Mu, Sigma float64
}

// NewLogNormal returns a LogNormal distribution; Sigma must be positive.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) || !finite(mu, sigma) {
		return LogNormal{}, ErrBadParams
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Name implements Dist.
func (d LogNormal) Name() string { return "LogNormal" }

// Params implements Dist.
func (d LogNormal) Params() []float64 { return []float64{d.Mu, d.Sigma} }

// PDF implements Dist.
func (d LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - d.Mu) / d.Sigma
	return stdNormPDF(z) / (x * d.Sigma)
}

// LogPDF implements Dist.
func (d LogNormal) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lx := math.Log(x)
	z := (lx - d.Mu) / d.Sigma
	return -0.5*z*z - lx - math.Log(d.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF implements Dist.
func (d LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stdNormCDF((math.Log(x) - d.Mu) / d.Sigma)
}

// Quantile implements Dist.
func (d LogNormal) Quantile(p float64) float64 {
	return math.Exp(d.Mu + d.Sigma*stdNormQuantile(p))
}

// Support implements Dist.
func (d LogNormal) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }
