package dist

import "math"

// Pareto is the Pareto (type I) distribution with scale Xm (minimum) and
// shape Alpha.
type Pareto struct {
	Xm, Alpha float64
}

// NewPareto returns a Pareto distribution; both parameters must be positive.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if !(xm > 0) || !(alpha > 0) || !finite(xm, alpha) {
		return Pareto{}, ErrBadParams
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// Name implements Dist.
func (d Pareto) Name() string { return "Pareto" }

// Params implements Dist.
func (d Pareto) Params() []float64 { return []float64{d.Xm, d.Alpha} }

// PDF implements Dist.
func (d Pareto) PDF(x float64) float64 {
	if x < d.Xm {
		return 0
	}
	return d.Alpha * math.Pow(d.Xm, d.Alpha) / math.Pow(x, d.Alpha+1)
}

// LogPDF implements Dist.
func (d Pareto) LogPDF(x float64) float64 {
	if x < d.Xm {
		return math.Inf(-1)
	}
	return math.Log(d.Alpha) + d.Alpha*math.Log(d.Xm) - (d.Alpha+1)*math.Log(x)
}

// CDF implements Dist.
func (d Pareto) CDF(x float64) float64 {
	if x < d.Xm {
		return 0
	}
	return 1 - math.Pow(d.Xm/x, d.Alpha)
}

// Quantile implements Dist.
func (d Pareto) Quantile(p float64) float64 {
	p = clampP(p)
	return d.Xm * math.Pow(1-p, -1/d.Alpha)
}

// Support implements Dist.
func (d Pareto) Support() (float64, float64) { return d.Xm, math.Inf(1) }

// Mean implements Dist.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// GeneralizedPareto is the GPD with shape K, scale Sigma and location Theta
// (Matlab parameterization).
type GeneralizedPareto struct {
	K, Sigma, Theta float64
}

// NewGeneralizedPareto returns a GPD; Sigma must be positive.
func NewGeneralizedPareto(k, sigma, theta float64) (GeneralizedPareto, error) {
	if !(sigma > 0) || !finite(k, sigma, theta) {
		return GeneralizedPareto{}, ErrBadParams
	}
	return GeneralizedPareto{K: k, Sigma: sigma, Theta: theta}, nil
}

// Name implements Dist.
func (d GeneralizedPareto) Name() string { return "GeneralizedPareto" }

// Params implements Dist.
func (d GeneralizedPareto) Params() []float64 { return []float64{d.K, d.Sigma, d.Theta} }

func (d GeneralizedPareto) inSupport(x float64) bool {
	if x < d.Theta {
		return false
	}
	if d.K < 0 && x > d.Theta-d.Sigma/d.K {
		return false
	}
	return true
}

// PDF implements Dist.
func (d GeneralizedPareto) PDF(x float64) float64 {
	if !d.inSupport(x) {
		return 0
	}
	z := (x - d.Theta) / d.Sigma
	if d.K == 0 {
		return math.Exp(-z) / d.Sigma
	}
	return math.Pow(1+d.K*z, -1/d.K-1) / d.Sigma
}

// LogPDF implements Dist.
func (d GeneralizedPareto) LogPDF(x float64) float64 { return logPDFviaPDF(d, x) }

// CDF implements Dist.
func (d GeneralizedPareto) CDF(x float64) float64 {
	if x <= d.Theta {
		return 0
	}
	z := (x - d.Theta) / d.Sigma
	if d.K == 0 {
		return -math.Expm1(-z)
	}
	arg := 1 + d.K*z
	if arg <= 0 { // beyond the upper endpoint when K < 0
		return 1
	}
	return 1 - math.Pow(arg, -1/d.K)
}

// Quantile implements Dist.
func (d GeneralizedPareto) Quantile(p float64) float64 {
	p = clampP(p)
	if d.K == 0 {
		return d.Theta - d.Sigma*math.Log1p(-p)
	}
	return d.Theta + d.Sigma*(math.Pow(1-p, -d.K)-1)/d.K
}

// Support implements Dist.
func (d GeneralizedPareto) Support() (float64, float64) {
	if d.K < 0 {
		return d.Theta, d.Theta - d.Sigma/d.K
	}
	return d.Theta, math.Inf(1)
}

// Mean implements Dist.
func (d GeneralizedPareto) Mean() float64 {
	if d.K >= 1 {
		return math.Inf(1)
	}
	return d.Theta + d.Sigma/(1-d.K)
}
