package dist

import "math"

// Weibull is the Weibull distribution with scale Lambda and shape K, the
// parameterization used by the paper's Table III fit for U30
// (Weibull(λ=5.49e4, k=0.637)).
type Weibull struct {
	Lambda, K float64
}

// NewWeibull returns a Weibull distribution; both parameters must be positive.
func NewWeibull(lambda, k float64) (Weibull, error) {
	if !(lambda > 0) || !(k > 0) || !finite(lambda, k) {
		return Weibull{}, ErrBadParams
	}
	return Weibull{Lambda: lambda, K: k}, nil
}

// Name implements Dist.
func (d Weibull) Name() string { return "Weibull" }

// Params implements Dist.
func (d Weibull) Params() []float64 { return []float64{d.Lambda, d.K} }

// PDF implements Dist.
func (d Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if d.K < 1 {
			return math.Inf(1)
		}
		if d.K == 1 {
			return 1 / d.Lambda
		}
		return 0
	}
	z := x / d.Lambda
	return d.K / d.Lambda * math.Pow(z, d.K-1) * math.Exp(-math.Pow(z, d.K))
}

// LogPDF implements Dist.
func (d Weibull) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lz := math.Log(x / d.Lambda)
	return math.Log(d.K/d.Lambda) + (d.K-1)*lz - math.Exp(d.K*lz)
}

// CDF implements Dist.
func (d Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/d.Lambda, d.K))
}

// Quantile implements Dist.
func (d Weibull) Quantile(p float64) float64 {
	p = clampP(p)
	return d.Lambda * math.Pow(-math.Log1p(-p), 1/d.K)
}

// Support implements Dist.
func (d Weibull) Support() (float64, float64) { return 0, math.Inf(1) }

// Mean implements Dist.
func (d Weibull) Mean() float64 {
	lg, _ := math.Lgamma(1 + 1/d.K)
	return d.Lambda * math.Exp(lg)
}
