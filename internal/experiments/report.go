// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation section. Each experiment builds its
// workload, runs the relevant part of the system (statistics pipeline or
// full testbed) and renders the same rows/series the paper reports, plus
// summary notes comparing against the published numbers.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Report is a renderable experiment result.
type Report struct {
	// ID is the experiment identifier, e.g. "tableII" or "figure10".
	ID string
	// Title describes what the paper shows.
	Title string
	// Columns are the table headers.
	Columns []string
	// Rows are the data rows (stringified).
	Rows [][]string
	// Notes carry summary statistics and paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a data row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(r.Columns) > 0 {
		fmt.Fprintln(tw, joinTab(r.Columns))
	}
	for _, row := range r.Rows {
		fmt.Fprintln(tw, joinTab(row))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func joinTab(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += "\t"
		}
		out += c
	}
	return out
}

// Scale parameterizes experiment size so benchmarks can run reduced
// versions while the CLI reproduces the full paper configuration.
type Scale struct {
	// Jobs is the synthetic trace size (paper: 43,200 for testbed runs).
	Jobs int
	// Sites and Cores shape the testbed (paper: 6 × 40).
	Sites, Cores int
	// Duration is the test length (paper: 6 hours).
	Duration time.Duration
	// HistoricalJobs sizes the year-long surrogate trace for the modeling
	// experiments.
	HistoricalJobs int
	// FitSample caps the MLE sample size per fit.
	FitSample int
	// Seed drives all randomness.
	Seed int64
}

// FullScale is the paper-scale configuration.
func FullScale() Scale {
	return Scale{
		Jobs: 43200, Sites: 6, Cores: 40, Duration: 6 * time.Hour,
		HistoricalJobs: 40000, FitSample: 2000, Seed: 42,
	}
}

// QuickScale is a reduced configuration for tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Jobs: 4000, Sites: 4, Cores: 24, Duration: 6 * time.Hour,
		HistoricalJobs: 6000, FitSample: 600, Seed: 42,
	}
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func fmtG(v float64) string { return fmt.Sprintf("%.4g", v) }
