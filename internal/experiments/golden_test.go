package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the committed snapshots instead of diffing
// against them: go test ./internal/experiments -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenAblationDispatch is a byte-exact regression gate on the paper
// reproduction path behind results_ablations.txt: the dispatch-strategy
// ablation runs entirely on the sim clock, so its rendered table is a pure
// function of the scale and seed. Any drift in the scheduler, the usage
// pipeline, the fairshare math or the report renderer shows up as a diff
// against the committed snapshot — the quick-scale twin of the committed
// full-scale results.
func TestGoldenAblationDispatch(t *testing.T) {
	sc := tiny()
	r, err := AblationDispatch(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "ablation_dispatch.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ablation table drifted from golden snapshot.\n--- got ---\n%s--- want ---\n%s(regenerate with -update if the change is intended)", got, want)
	}
}
