package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

var testStart = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

var testUsers = []string{workload.U65, workload.U30, workload.U3, workload.UOth}

// testbedTrace builds the calibrated, load-scaled six-hour synthetic trace
// driving the system experiments (95% of theoretical maximum, like the
// paper's testbed runs).
func testbedTrace(sc Scale, m workload.Model, load float64) (*trace.Trace, error) {
	tr, err := m.Generate(workload.GenerateOptions{
		TotalJobs:      sc.Jobs,
		Start:          testStart,
		Span:           sc.Duration,
		Seed:           sc.Seed,
		CalibrateUsage: true,
		MaxDuration:    sc.Duration / 4,
	})
	if err != nil {
		return nil, err
	}
	return workload.ScaleToLoad(tr, sc.Sites*sc.Cores, load, sc.Duration), nil
}

// usageShareTargets extracts each model user's usage fraction.
func usageShareTargets(m workload.Model) map[string]float64 {
	out := map[string]float64{}
	for _, u := range m.Users {
		out[u.Name] = u.UsageFraction
	}
	return out
}

// renderRun renders a testbed result as usage-share and priority series
// rows plus convergence notes against the given targets.
func renderRun(id, title string, res *testbed.Result, targets map[string]float64) *Report {
	r := &Report{
		ID:    id,
		Title: title,
		Columns: []string{"Minute",
			"u65 share", "u30 share", "u3 share", "uoth share",
			"u65 prio", "u30 prio", "u3 prio", "uoth prio"},
	}
	// Sample the collected series every ~10 minutes of test time.
	s0 := res.UsageShares[testUsers[0]]
	if s0 != nil {
		step := s0.Len() / 36
		if step < 1 {
			step = 1
		}
		for i := 0; i < s0.Len(); i += step {
			at := s0.Times[i]
			row := []string{fmtF(at.Sub(res.Config.Start).Minutes(), 0)}
			for _, u := range testUsers {
				row = append(row, fmtF(res.UsageShares[u].Values[i], 3))
			}
			for _, u := range testUsers {
				p := res.Priorities[u]
				if p == nil {
					row = append(row, "-")
					continue
				}
				row = append(row, fmtF(p.At(at), 3))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("utilization %.1f%% (paper: 93-97%%), submitted %d, completed %d, queued at end %d",
		100*res.Utilization, res.Submitted, res.Completed, res.QueuedAtEnd)
	r.AddNote("sustained %.0f jobs/min (paper: ~120 sustained), peak %.0f jobs/min (paper: 472 peak in the bursty test)",
		res.SustainedRate, res.PeakRate)
	for _, u := range testUsers {
		target := targets[u]
		s := res.UsageShares[u]
		if s == nil {
			continue
		}
		if at, ok := metrics.ConvergenceTime(s, target, 0.08); ok {
			r.AddNote("%s usage share converged to %.3f±0.08 at minute %.0f",
				u, target, at.Sub(res.Config.Start).Minutes())
		} else {
			r.AddNote("%s usage share did not stay within ±0.08 of %.3f (final %.3f)",
				u, target, s.Last())
		}
	}
	for _, u := range testUsers {
		r.AddNote("share %-5s %s  priority %s", u,
			seriesSparkline(res.UsageShares[u], 60, 0, 1),
			seriesSparkline(res.Priorities[u], 60, -0.6, 0.8))
	}
	return r
}

// Figure10Baseline reproduces the baseline convergence test: policy targets
// equal the workload's usage shares, so usage shares and priorities converge
// toward balance.
func Figure10Baseline(sc Scale) (*Report, *testbed.Result, error) {
	m := workload.NationalGrid2012(sc.Duration)
	tr, err := testbedTrace(sc, m, 0.95)
	if err != nil {
		return nil, nil, err
	}
	res, err := testbed.Run(testbed.Config{
		Sites: sc.Sites, CoresPerSite: sc.Cores, Start: testStart,
		Duration: sc.Duration, PolicyShares: usageShareTargets(m),
		Trace: tr, Seed: sc.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	r := renderRun("figure10", "Baseline convergence: policy = trace usage shares", res, usageShareTargets(m))
	return r, res, nil
}

// Figure11UpdateDelay reproduces the update-delay experiment: the baseline
// case re-run with arrival times and durations scaled up 10×, keeping the
// same jobs and internal relations, so the fixed update/processing delays
// are relatively 10× shorter. The paper measures a 10-15% shorter
// convergence time (relative to test length).
func Figure11UpdateDelay(sc Scale) (*Report, error) {
	m := workload.NationalGrid2012(sc.Duration)
	targets := usageShareTargets(m)
	base, err := testbedTrace(sc, m, 0.95)
	if err != nil {
		return nil, err
	}
	runWith := func(tr *trace.Trace, dur time.Duration) (*testbed.Result, error) {
		return testbed.Run(testbed.Config{
			Sites: sc.Sites, CoresPerSite: sc.Cores, Start: testStart,
			Duration: dur, PolicyShares: targets, Trace: tr, Seed: sc.Seed,
			// Delay components stay ABSOLUTE across the two runs — that is
			// the point of the experiment: projecting a year of usage onto
			// six hours inflates the relative weight of the fixed update
			// and processing delays, and the 10x stretched run deflates it
			// again. Production-like component sizes (minutes).
			BinWidth:         5 * time.Minute,
			ExchangeInterval: 5 * time.Minute,
			RefreshInterval:  5 * time.Minute,
			LibTTL:           150 * time.Second,
			ReprioInterval:   5 * time.Minute,
			SampleInterval:   dur / 120,
			ShareWindow:      dur / 6,
		})
	}
	resBase, err := runWith(base, sc.Duration)
	if err != nil {
		return nil, err
	}
	scaled := base.TimeScale(10)
	resScaled, err := runWith(scaled, sc.Duration*10)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "figure11",
		Title:   "Impact of update delay: baseline vs 10x time-scaled run",
		Columns: []string{"Metric", "Baseline", "10x scaled", "Improvement"},
	}
	devBase := metrics.AggregateDeviation(resBase.UsageShares, targets)
	devScaled := metrics.AggregateDeviation(resScaled.UsageShares, targets)
	fb := firstEntryFraction(devBase, testStart, sc.Duration)
	fs := firstEntryFraction(devScaled, testStart, sc.Duration*10)
	r.AddRow("convergence (fraction of run)", fmtF(fb, 3), fmtF(fs, 3), fmtF(fb-fs, 3))
	mb := meanOf(devBase)
	ms := meanOf(devScaled)
	r.AddRow("mean aggregate share deviation", fmtF(mb, 4), fmtF(ms, 4), fmtF(mb-ms, 4))
	r.AddNote("paper: a magnitude shorter relative delays give a 10-15%% shorter convergence time vs the baseline")
	r.AddNote("convergence = first time Σ|share−target| stays below 0.30 for 3 samples, as a fraction of the run")
	if mb > 0 {
		r.AddNote("measured: relative imbalance reduction %.1f%% (mean aggregate deviation)", 100*(mb-ms)/mb)
	}
	return r, nil
}

// firstEntryFraction locates the first sustained entry of the aggregate
// deviation below 0.30 as a fraction of the run (1.0 when never).
func firstEntryFraction(dev *metrics.Series, start time.Time, dur time.Duration) float64 {
	at, ok := metrics.FirstSustainedBelow(dev, 0.30, 3)
	if !ok {
		return 1
	}
	f := at.Sub(start).Seconds() / dur.Seconds()
	return math.Max(0, math.Min(1, f))
}

func meanOf(s *metrics.Series) float64 {
	if s.Len() == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(s.Len())
}

// Figure12NonOptimalPolicy reproduces the non-optimal policy test: the
// workload keeps its natural usage shares but the policy targets are
// 70/20/8/2 — the system balances while eligible jobs exist and drifts when
// the favoured user runs out of work.
func Figure12NonOptimalPolicy(sc Scale) (*Report, *testbed.Result, error) {
	m := workload.NationalGrid2012(sc.Duration)
	tr, err := testbedTrace(sc, m, 0.95)
	if err != nil {
		return nil, nil, err
	}
	targets := workload.NonOptimalShares()
	res, err := testbed.Run(testbed.Config{
		Sites: sc.Sites, CoresPerSite: sc.Cores, Start: testStart,
		Duration: sc.Duration, PolicyShares: targets, Trace: tr, Seed: sc.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	r := renderRun("figure12", "Non-optimal policy: targets 70/20/8/2 vs trace shares 65/30/3/1.4", res, targets)
	r.AddNote("paper: close to balance in the 120-180 min range; balance is lost when U65 jobs run dry, and low-priority U30 jobs still run to maximize utilization")
	return r, res, nil
}

// FigurePartial reproduces the partial-participation test: of the sites,
// one only reads global data without contributing, and another contributes
// but schedules on local data only.
func FigurePartial(sc Scale) (*Report, *testbed.Result, error) {
	m := workload.NationalGrid2012(sc.Duration)
	tr, err := testbedTrace(sc, m, 0.95)
	if err != nil {
		return nil, nil, err
	}
	modes := make([]testbed.SiteMode, sc.Sites)
	for i := range modes {
		modes[i] = testbed.SiteMode{Contribute: true, UseGlobal: true}
	}
	readerIdx := sc.Sites - 2 // reads global, does not contribute
	localIdx := sc.Sites - 1  // contributes, prioritizes on local only
	modes[readerIdx] = testbed.SiteMode{Contribute: false, UseGlobal: true}
	modes[localIdx] = testbed.SiteMode{Contribute: true, UseGlobal: false}

	targets := usageShareTargets(m)
	res, err := testbed.Run(testbed.Config{
		Sites: sc.Sites, CoresPerSite: sc.Cores, Start: testStart,
		Duration: sc.Duration, PolicyShares: targets, Trace: tr, Seed: sc.Seed,
		SiteModes: modes,
	})
	if err != nil {
		return nil, nil, err
	}
	r := &Report{
		ID:      "figurePartial",
		Title:   "Partial cluster participation: per-site U65 priority",
		Columns: []string{"Minute", "full site", "read-only site", "local-only site"},
	}
	ref := res.SitePriorities[0][workload.U65]
	if ref != nil {
		step := ref.Len() / 36
		if step < 1 {
			step = 1
		}
		for i := 0; i < ref.Len(); i += step {
			at := ref.Times[i]
			r.AddRow(
				fmtF(at.Sub(testStart).Minutes(), 0),
				fmtF(ref.Values[i], 3),
				fmtF(res.SitePriorities[readerIdx][workload.U65].At(at), 3),
				fmtF(res.SitePriorities[localIdx][workload.U65].At(at), 3),
			)
		}
	}
	dReader := seriesMAD(res.SitePriorities[0][workload.U65], res.SitePriorities[readerIdx][workload.U65])
	dLocal := seriesMAD(res.SitePriorities[0][workload.U65], res.SitePriorities[localIdx][workload.U65])
	r.AddNote("mean |Δpriority| vs fully participating site: read-only %.4f, local-only %.4f", dReader, dLocal)
	r.AddNote("paper: the read-only site stays well aligned with full participants; the local-only site converges slower with more fluctuations, and its noise does not noticeably disturb the others")
	return r, res, nil
}

// seriesMAD is the mean absolute difference between two priority series
// over the second half of the run.
func seriesMAD(a, b *metrics.Series) float64 {
	if a == nil || b == nil || a.Len() == 0 {
		return math.NaN()
	}
	half := a.Times[a.Len()/2]
	var sum float64
	n := 0
	for i, at := range a.Times {
		if at.Before(half) {
			continue
		}
		v := b.At(at)
		if math.IsNaN(v) {
			continue
		}
		sum += math.Abs(a.Values[i] - v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Figure13Bursty reproduces the bursty usage test: U3's job share raised to
// 45.5% with the burst shifted to start after one third of the run. Job
// shares become 45.5/6.5/45.5/3 and usage shares 47/38.5/12/2.5; U3's
// maximum priority is bounded by 0.5·(1+0.12)=0.56.
func Figure13Bursty(sc Scale) (*Report, *testbed.Result, error) {
	m := workload.Bursty2012(sc.Duration)
	tr, err := testbedTrace(sc, m, 0.95)
	if err != nil {
		return nil, nil, err
	}
	targets := usageShareTargets(m)
	res, err := testbed.Run(testbed.Config{
		Sites: sc.Sites, CoresPerSite: sc.Cores, Start: testStart,
		Duration: sc.Duration, PolicyShares: targets, Trace: tr, Seed: sc.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	r := renderRun("figure13", "Bursty usage: U3 burst after one third of the run", res, targets)
	js := trace.JobShares(tr)
	us := trace.UsageShares(tr)
	r.AddNote("trace job shares: u65 %.3f, u30 %.3f, u3 %.3f, uoth %.3f (paper: 0.455/0.065/0.455/0.03)",
		js[workload.U65], js[workload.U30], js[workload.U3], js[workload.UOth])
	r.AddNote("trace usage shares: u65 %.3f, u30 %.3f, u3 %.3f, uoth %.3f (paper: 0.47/0.385/0.12/0.025)",
		us[workload.U65], us[workload.U30], us[workload.U3], us[workload.UOth])
	if p := res.Priorities[workload.U3]; p != nil {
		maxP := math.Inf(-1)
		for _, v := range p.Values {
			maxP = math.Max(maxP, v)
		}
		r.AddNote("max U3 priority observed %.3f (paper bound: 0.5*(1+0.12) = 0.56)", maxP)
	}
	return r, res, nil
}

// ProductionStats reproduces the Section IV production observations: a
// single-cluster deployment running for a month-scale window at HPC2N rates
// (~40,000 jobs per month) without instability.
func ProductionStats(sc Scale) (*Report, error) {
	dur := 30 * 24 * time.Hour
	jobs := 40000
	if sc.Jobs < 43200 { // quick scale: shrink proportionally
		jobs = sc.Jobs
	}
	m := workload.NationalGrid2012(dur)
	tr, err := m.Generate(workload.GenerateOptions{
		TotalJobs: jobs, Start: testStart, Span: dur, Seed: sc.Seed,
		CalibrateUsage: true, MaxDuration: dur / 10,
	})
	if err != nil {
		return nil, err
	}
	// HPC2N: 544 cores; drive at a moderate production load.
	tr = workload.ScaleToLoad(tr, 544, 0.85, dur)
	res, err := testbed.Run(testbed.Config{
		Sites: 1, CoresPerSite: 544, Start: testStart, Duration: dur,
		PolicyShares: usageShareTargets(m), Trace: tr, Seed: sc.Seed,
		BinWidth:         time.Hour,
		ExchangeInterval: time.Hour,
		RefreshInterval:  5 * time.Minute,
		LibTTL:           time.Minute,
		ReprioInterval:   time.Minute,
		SampleInterval:   6 * time.Hour,
		ShareWindow:      3 * 24 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "production",
		Title:   "Production-scale single-cluster run (HPC2N-like: 544 cores, month horizon)",
		Columns: []string{"Metric", "Measured", "Paper"},
	}
	r.AddRow("jobs/month", fmtF(float64(res.Completed), 0), "~40,000")
	r.AddRow("utilization", fmtF(res.Utilization, 3), "(stable production)")
	r.AddRow("queued at end", fmt.Sprintf("%d", res.QueuedAtEnd), "-")
	r.AddNote("paper: deployed alongside SLURM 2.4.3 on a 544-core cluster since start of 2013 with no noticeable impact on performance or stability")
	return r, nil
}
