package experiments

import (
	"fmt"

	"repro/internal/fit"
	"repro/internal/workload"
)

// Periodicity reproduces the paper's autocorrelation analysis (Section
// IV-2): "The trace has been analyzed for periodicity using auto correlation
// functions, searching for daily, weekly, and monthly patterns for each
// user. However, no clear auto correlation patterns could be found. By
// isolating the job arrival for U65, we can detect a pattern in job arrival
// about every three months."
//
// The daily arrival-count series of each user is autocorrelated; the report
// lists the ACF at daily/weekly/monthly lags and each user's dominant lag.
// For U65 the dominant lag sits near 91 days — the quarterly experiment
// cycle — while the mixed total shows no comparable short-period structure.
func Periodicity(sc Scale) (*Report, error) {
	clean, _, err := CleanedTrace(sc)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "periodicity",
		Title:   "Autocorrelation of daily job arrivals (lags in days)",
		Columns: []string{"Series", "ACF@1", "ACF@7", "ACF@30", "ACF@91", "DominantLag", "r"},
	}
	const days = 365
	span := Year.Seconds()
	series := map[string][]float64{}
	for _, u := range []string{"", workload.U65, workload.U30, workload.U3, workload.UOth} {
		_, counts := fit.Histogram(clean.SubmitOffsets(u), 0, span, days)
		xs := make([]float64, len(counts))
		for i, c := range counts {
			xs[i] = float64(c)
		}
		series[u] = xs
	}
	label := func(u string) string {
		if u == "" {
			return "total"
		}
		return u
	}
	var u65Lag int
	for _, u := range []string{"", workload.U65, workload.U30, workload.U3, workload.UOth} {
		acf := fit.Autocorrelation(series[u], 120)
		lag, val := fit.DominantLag(acf, 14) // ignore trivial short lags
		if u == workload.U65 {
			u65Lag = lag
		}
		r.AddRow(label(u),
			fmtF(acf[1], 3), fmtF(acf[7], 3), fmtF(acf[30], 3), fmtF(acf[91], 3),
			fmt.Sprintf("%d", lag), fmtF(val, 3))
	}
	r.AddNote("paper: no clear daily/weekly/monthly patterns; U65 shows a ~3-month (quarterly) cycle")
	r.AddNote("measured: U65 dominant lag = %d days (quarter ≈ 91)", u65Lag)

	// Automated phase detection: the quarterly arrival cycles are humps, so
	// the phase boundaries are the troughs between them.
	troughs := fit.TroughBoundaries(series[workload.U65], 3, 45, 14)
	r.AddNote("detected phase boundaries (days): %v (inspection: 91/182/273)", troughs)
	return r, nil
}
