package experiments

import (
	"strconv"
	"testing"
)

func TestAblationHierarchy(t *testing.T) {
	r, err := AblationHierarchy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// VO shares must sum to ~1 on every sampled row once work is flowing.
	for _, row := range r.Rows[3:] {
		a, err1 := strconv.ParseFloat(row[1], 64)
		b, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if sum := a + b; sum > 1.001 {
			t.Errorf("VO shares sum to %g at minute %s", sum, row[0])
		}
	}
}

func TestAblationBackfill(t *testing.T) {
	r, err := AblationBackfill(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want strict + backfill", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[0] != "strict" && row[0] != "backfill" {
			t.Errorf("mode = %q", row[0])
		}
		util, err := strconv.ParseFloat(row[1], 64)
		if err != nil || util <= 0.3 {
			t.Errorf("utilization = %v (%v)", row[1], err)
		}
	}
}
