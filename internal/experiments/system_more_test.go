package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFigure11UpdateDelay(t *testing.T) {
	sc := tiny()
	sc.Jobs = 800
	r, err := Figure11UpdateDelay(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The scaled run must never converge later or track worse than the
	// baseline (shorter relative delays can only help).
	for _, row := range r.Rows {
		imp, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("unparseable improvement %q", row[3])
		}
		if imp < -0.05 {
			t.Errorf("%s: scaled run notably worse (improvement %g)", row[0], imp)
		}
	}
}

func TestFigure12NonOptimalPolicy(t *testing.T) {
	r, res, err := Figure12NonOptimalPolicy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || res.Completed == 0 {
		t.Fatal("empty result")
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "70/20/8/2") || strings.Contains(n, "0.700") {
			found = true
		}
	}
	if !found {
		t.Error("non-optimal targets not reported")
	}
}

func TestProductionStats(t *testing.T) {
	sc := tiny()
	sc.Jobs = 2000
	r, err := ProductionStats(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0] != "jobs/month" {
		t.Errorf("first row = %v", r.Rows[0])
	}
	completed, err := strconv.ParseFloat(r.Rows[0][1], 64)
	if err != nil || completed < float64(sc.Jobs)*0.8 {
		t.Errorf("jobs/month = %v (%v)", r.Rows[0][1], err)
	}
}

func TestAllQuickPipelineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline smoke skipped in -short mode")
	}
	sc := tiny()
	sc.Jobs = 600
	sc.HistoricalJobs = 2000
	sc.FitSample = 200
	reports, err := All(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Paper order: tables I-III, periodicity, figures 4-7, 10-13 + partial,
	// production.
	if len(reports) != 14 {
		t.Fatalf("reports = %d, want 14", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if seen[r.ID] {
			t.Errorf("duplicate report %s", r.ID)
		}
		seen[r.ID] = true
	}
	for _, id := range []string{"tableI", "tableII", "periodicity", "figure10", "figure13", "production"} {
		if !seen[id] {
			t.Errorf("missing report %s", id)
		}
	}
}
