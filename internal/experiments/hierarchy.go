package experiments

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// AblationHierarchy runs the baseline workload under a two-level VO policy
// instead of a flat one: the users are grouped into two virtual
// organizations whose shares match the group usage in the trace. It
// demonstrates subgroup isolation at system scale — each VO's combined usage
// converges to its group target, and the split inside a VO is enforced
// within it.
func AblationHierarchy(sc Scale) (*Report, error) {
	m := workload.NationalGrid2012(sc.Duration)
	tr, err := testbedTrace(sc, m, 0.95)
	if err != nil {
		return nil, err
	}
	targets := usageShareTargets(m)

	// VO A: the periodic project + the bursty project; VO B: the rest.
	voA := targets[workload.U65] + targets[workload.U3]
	voB := targets[workload.U30] + targets[workload.UOth]
	pol := policy.NewTree()
	mustAdd := func(parent, name string, share float64) {
		if _, err := pol.Add(parent, name, share); err != nil {
			panic(err)
		}
	}
	mustAdd("", "voA", voA)
	mustAdd("", "voB", voB)
	mustAdd("/voA", workload.U65, targets[workload.U65])
	mustAdd("/voA", workload.U3, targets[workload.U3])
	mustAdd("/voB", workload.U30, targets[workload.U30])
	mustAdd("/voB", workload.UOth, targets[workload.UOth])

	res, err := testbed.Run(testbed.Config{
		Sites: sc.Sites, CoresPerSite: sc.Cores, Start: testStart,
		Duration: sc.Duration, PolicyShares: targets, Policy: pol,
		Trace: tr, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "ablationHierarchy",
		Title:   "Hierarchical (two-VO) policy on the baseline workload",
		Columns: []string{"Minute", "VO-A share", "VO-B share"},
	}
	sA := groupShare(res.UsageShares, workload.U65, workload.U3)
	sB := groupShare(res.UsageShares, workload.U30, workload.UOth)
	step := sA.Len() / 24
	if step < 1 {
		step = 1
	}
	for i := 0; i < sA.Len(); i += step {
		r.AddRow(fmtF(sA.Times[i].Sub(testStart).Minutes(), 0),
			fmtF(sA.Values[i], 3), fmtF(sB.Values[i], 3))
	}
	half := testStart.Add(sc.Duration / 2)
	maeA := metrics.MeanAbsError(sA, voA, half)
	maeB := metrics.MeanAbsError(sB, voB, half)
	r.AddNote("VO targets: A %.3f, B %.3f; second-half MAE: A %.4f, B %.4f", voA, voB, maeA, maeB)
	r.AddNote("the vector representation enforces fairshare top-down: VO-level balance first, then the split within each VO")
	if math.IsNaN(maeA) || math.IsNaN(maeB) {
		r.AddNote("WARNING: insufficient samples for MAE")
	}
	return r, nil
}

// groupShare sums the member series of a group into one.
func groupShare(p metrics.PerUser, members ...string) *metrics.Series {
	var ref *metrics.Series
	for _, u := range members {
		if s := p[u]; s != nil && (ref == nil || s.Len() < ref.Len()) {
			ref = s
		}
	}
	if ref == nil {
		return &metrics.Series{}
	}
	out := &metrics.Series{}
	for i, at := range ref.Times {
		var sum float64
		for _, u := range members {
			s := p[u]
			if s == nil {
				continue
			}
			if s == ref {
				sum += s.Values[i]
			} else if v := s.At(at); !math.IsNaN(v) {
				sum += v
			}
		}
		out.Add(at, sum)
	}
	return out
}

// AblationBackfill compares strict FIFO-by-priority against first-fit
// backfill on the baseline workload, reporting per-user mean waits.
func AblationBackfill(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "ablationBackfill",
		Title:   "Scheduling order: strict priority vs first-fit backfill",
		Columns: []string{"Mode", "Utilization", "u65 wait(s)", "u30 wait(s)", "u3 wait(s)", "MeanSlowdown(u65)"},
	}
	for _, strict := range []bool{true, false} {
		strict := strict
		_, res, err := ablationRun(sc, func(c *testbed.Config) { c.StrictOrder = strict })
		if err != nil {
			return nil, err
		}
		mode := "backfill"
		if strict {
			mode = "strict"
		}
		ws := res.WaitStats
		r.AddRow(mode, fmtF(res.Utilization, 3),
			fmtF(ws[workload.U65].MeanWaitSeconds, 0),
			fmtF(ws[workload.U30].MeanWaitSeconds, 0),
			fmtF(ws[workload.U3].MeanWaitSeconds, 0),
			fmtF(ws[workload.U65].MeanBoundedSlowdown, 2))
	}
	r.AddNote("single-processor workload: strict order and backfill coincide unless multi-core jobs block the head")
	return r, nil
}
