package experiments

import (
	"math"
	"strings"

	"repro/internal/metrics"
)

// sparkGlyphs are the eight block heights of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode sparkline over the given range
// (lo >= hi auto-scales to the data). NaNs render as spaces.
func Sparkline(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	if !(hi > lo) {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if !(hi > lo) { // constant or empty
			hi = lo + 1
		}
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		f := (v - lo) / (hi - lo)
		idx := int(f * float64(len(sparkGlyphs)))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// seriesSparkline downsamples a metrics series to width points and renders
// it over [lo, hi].
func seriesSparkline(s *metrics.Series, width int, lo, hi float64) string {
	if s == nil || s.Len() == 0 || width <= 0 {
		return ""
	}
	vals := make([]float64, width)
	for i := 0; i < width; i++ {
		idx := i * (s.Len() - 1) / maxInt(width-1, 1)
		vals[i] = s.Values[idx]
	}
	return Sparkline(vals, lo, hi)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
