package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/fit"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Year is the span of the surrogate historical trace (the paper models the
// 2012 annual usage of the Swedish national grid).
const Year = 365 * 24 * time.Hour

var yearStart = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)

// HistoricalTrace generates the year-long surrogate of the 2012 national
// trace: sampled from the published models, plus the administrator and
// zero-duration jobs the paper removes during cleaning (~15% of jobs, ~1.5%
// of usage).
func HistoricalTrace(sc Scale) (*trace.Trace, error) {
	m := workload.NationalGrid2012(Year)
	tr, err := m.Generate(workload.GenerateOptions{
		TotalJobs:      sc.HistoricalJobs,
		Start:          yearStart,
		Span:           Year,
		Seed:           sc.Seed,
		CalibrateUsage: true,
		MaxDuration:    30 * 24 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	// Inject the non-representative jobs the cleaning step must remove:
	// ~13% admin/monitoring jobs (tiny durations, so ~1.5% of usage) and
	// ~2% zero-duration cancelled jobs.
	nAdmin := sc.HistoricalJobs * 13 / 100
	nZero := sc.HistoricalJobs * 2 / 100
	meanDur := tr.TotalUsage() / float64(tr.Len())
	adminDur := time.Duration(meanDur / float64(nAdmin) * 0.015 * float64(tr.Len()) * float64(time.Second))
	if adminDur < time.Second {
		adminDur = time.Second
	}
	id := int64(tr.Len())
	for i := 0; i < nAdmin; i++ {
		id++
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID: id, User: "monitor", Admin: true, Procs: 1,
			Submit:   yearStart.Add(time.Duration(i) * (Year / time.Duration(nAdmin+1))),
			Duration: adminDur,
		})
	}
	for i := 0; i < nZero; i++ {
		id++
		tr.Jobs = append(tr.Jobs, trace.Job{
			ID: id, User: workload.UOth, Procs: 1,
			Submit:   yearStart.Add(time.Duration(i)*(Year/time.Duration(nZero+1)) + time.Hour),
			Duration: 0,
		})
	}
	tr.Sort()
	return tr, nil
}

// CleanedTrace generates the surrogate trace and applies the paper's
// cleaning filters, returning the cleaned trace and the removal report.
func CleanedTrace(sc Scale) (*trace.Trace, trace.CleanReport, error) {
	tr, err := HistoricalTrace(sc)
	if err != nil {
		return nil, trace.CleanReport{}, err
	}
	clean, rep := trace.Clean(tr)
	return clean, rep, nil
}

// phaseOffsets splits a user's submit offsets into the four quarterly
// phases the paper identifies for U65.
func phaseOffsets(offs []float64, span float64) [4][]float64 {
	var out [4][]float64
	q := span / 4
	for _, o := range offs {
		i := int(o / q)
		if i > 3 {
			i = 3
		}
		out[i] = append(out[i], o)
	}
	return out
}

// ArrivalFits holds the Table II fitting results.
type ArrivalFits struct {
	// PerUser maps user to its BIC-best arrival-time fit (U30, U3, Uoth).
	PerUser map[string]fit.Result
	// Phases are the per-phase fits for U65 (p1..p4).
	Phases [4]fit.Result
	// Composite is the Equation-1 mixture of the phase fits.
	Composite *dist.Mixture
	// CompositeKS is the composite's KS statistic on all U65 arrivals.
	CompositeKS float64
	// MedianInterArrival maps each data set to its median inter-arrival
	// seconds (whole seconds, per the paper).
	MedianInterArrival map[string]float64
	// Trace is the cleaned surrogate trace the fits were computed on.
	Trace *trace.Trace
}

// FitArrivals reproduces the Table II pipeline: clean the trace, split U65
// into phases, fit all 18 families to each arrival data set, select by BIC.
func FitArrivals(sc Scale) (*ArrivalFits, error) {
	clean, _, err := CleanedTrace(sc)
	if err != nil {
		return nil, err
	}
	opt := fit.Options{MaxSample: sc.FitSample}
	out := &ArrivalFits{
		PerUser:            map[string]fit.Result{},
		MedianInterArrival: map[string]float64{},
		Trace:              clean,
	}

	span := Year.Seconds()
	u65Offs := clean.SubmitOffsets(workload.U65)
	phases := phaseOffsets(u65Offs, span)
	comps := make([]dist.Dist, 0, 4)
	weights := make([]float64, 0, 4)
	for i, ph := range phases {
		if len(ph) == 0 {
			return nil, fmt.Errorf("experiments: U65 phase %d empty", i+1)
		}
		r, err := fit.Best(ph, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting U65 p%d: %w", i+1, err)
		}
		out.Phases[i] = r
		comps = append(comps, r.Dist)
		weights = append(weights, float64(len(ph)))
	}
	mix, err := dist.NewMixture(comps, weights)
	if err != nil {
		return nil, err
	}
	out.Composite = mix
	out.CompositeKS = fit.KolmogorovSmirnov(u65Offs, mix)

	for _, u := range []string{workload.U30, workload.U3, workload.UOth} {
		offs := clean.SubmitOffsets(u)
		r, err := fit.Best(offs, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting %s arrivals: %w", u, err)
		}
		out.PerUser[u] = r
	}

	// Median inter-arrival times, rounded to whole seconds like the paper's
	// second-granularity timestamps.
	for i, ph := range phases {
		ia := interArrivalsOf(ph)
		out.MedianInterArrival[fmt.Sprintf("%s (p%d)", workload.U65, i+1)] = float64(int64(fit.Median(ia)))
	}
	for _, u := range []string{workload.U65, workload.U30, workload.U3, workload.UOth} {
		ia := clean.InterArrivals(u)
		out.MedianInterArrival[u] = float64(int64(fit.Median(ia)))
	}
	return out, nil
}

// TableII reproduces Table II: per-data-set median inter-arrival, BIC-best
// fitted distribution and KS goodness of fit.
func TableII(sc Scale) (*Report, error) {
	fits, err := FitArrivals(sc)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "tableII",
		Title:   "Job arrival: median inter-arrival, best fitted distribution (by BIC), KS goodness of fit",
		Columns: []string{"User", "Median(s)", "Fitted Distribution", "KS"},
	}
	for i, ph := range fits.Phases {
		key := fmt.Sprintf("%s (p%d)", workload.U65, i+1)
		r.AddRow(key, fmtF(fits.MedianInterArrival[key], 0), describeFit(ph), fmtF(ph.KS, 2))
	}
	r.AddRow(workload.U65+" (composite)", fmtF(fits.MedianInterArrival[workload.U65], 0),
		"mixture of p1-p4 (Equation 1)", fmtF(fits.CompositeKS, 2))
	for _, u := range []string{workload.U30, workload.U3, workload.UOth} {
		f := fits.PerUser[u]
		r.AddRow(u, fmtF(fits.MedianInterArrival[u], 0), describeFit(f), fmtF(f.KS, 2))
	}
	r.AddNote("paper: GEV fits most arrival sets (U65 p1-p4, U3, Uoth), Burr fits U30; KS 0.02-0.15 with U3 worst")
	r.AddNote("paper: composite U65 KS (0.02) beats the individual phases (0.05-0.07)")
	return r, nil
}

// TableIII reproduces Table III: per-user median job duration, BIC-best fit
// and KS goodness of fit.
func TableIII(sc Scale) (*Report, error) {
	clean, _, err := CleanedTrace(sc)
	if err != nil {
		return nil, err
	}
	opt := fit.Options{MaxSample: sc.FitSample}
	r := &Report{
		ID:      "tableIII",
		Title:   "Job duration: median duration, best fitted distribution (by BIC), KS goodness of fit",
		Columns: []string{"User", "Median(s)", "Fitted Distribution", "KS"},
	}
	for _, u := range []string{workload.U65, workload.U30, workload.U3, workload.UOth} {
		durs := clean.Durations(u)
		best, err := fit.Best(durs, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting %s durations: %w", u, err)
		}
		r.AddRow(u, fmtG(fit.Median(durs)), describeFit(best), fmtF(best.KS, 2))
	}
	r.AddNote("paper: Birnbaum-Saunders fits U65 and Uoth, Weibull fits U30, Burr fits U3; KS 0.04-0.28 with U3 worst")
	return r, nil
}

func describeFit(r fit.Result) string {
	params := r.Dist.Params()
	s := r.Family + "("
	for i, p := range params {
		if i > 0 {
			s += ", "
		}
		s += fmtG(p)
	}
	return s + ")"
}

func interArrivalsOf(offsets []float64) []float64 {
	if len(offsets) < 2 {
		return nil
	}
	sorted := append([]float64(nil), offsets...)
	sort.Float64s(sorted)
	out := make([]float64, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		out = append(out, sorted[i]-sorted[i-1])
	}
	return out
}
