package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestSparklineShapes(t *testing.T) {
	up := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0, 7)
	if up != "▁▂▃▄▅▆▇█" {
		t.Errorf("ascending sparkline = %q", up)
	}
	flat := Sparkline([]float64{3, 3, 3}, 0, 0)
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
	if got := Sparkline(nil, 0, 1); got != "" {
		t.Errorf("empty = %q", got)
	}
}

func TestSparklineClampsAndNaN(t *testing.T) {
	s := Sparkline([]float64{-10, math.NaN(), 10}, 0, 1)
	runes := []rune(s)
	if runes[0] != '▁' {
		t.Errorf("below-range glyph = %q", runes[0])
	}
	if runes[1] != ' ' {
		t.Errorf("NaN glyph = %q", runes[1])
	}
	if runes[2] != '█' {
		t.Errorf("above-range glyph = %q", runes[2])
	}
}

func TestSparklineAutoScale(t *testing.T) {
	s := Sparkline([]float64{5, 10}, 0, 0) // auto-scale
	runes := []rune(s)
	if runes[0] != '▁' || runes[1] != '█' {
		t.Errorf("auto-scaled = %q", s)
	}
}

func TestSeriesSparkline(t *testing.T) {
	ser := &metrics.Series{}
	base := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		ser.Add(base.Add(time.Duration(i)*time.Minute), float64(i)/99)
	}
	s := seriesSparkline(ser, 20, 0, 1)
	runes := []rune(s)
	if len(runes) != 20 {
		t.Fatalf("width = %d", len(runes))
	}
	if runes[0] != '▁' || runes[19] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	if got := seriesSparkline(nil, 20, 0, 1); got != "" {
		t.Errorf("nil series = %q", got)
	}
	if got := seriesSparkline(ser, 0, 0, 1); got != "" {
		t.Errorf("zero width = %q", got)
	}
	if !strings.ContainsRune(s, '▄') && !strings.ContainsRune(s, '▅') {
		t.Errorf("midrange glyphs missing: %q", s)
	}
}
