package experiments

import (
	"repro/internal/fit"
	"repro/internal/workload"
)

// Figure4 reproduces Figure 4: jobs per day as a function of time, total
// and for U65, over the surrogate year (bin size one day).
func Figure4(sc Scale) (*Report, error) {
	clean, _, err := CleanedTrace(sc)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "figure4",
		Title:   "Job arrival per day: total vs U65 (bin = 1 day)",
		Columns: []string{"Day", "TotalJobs", "U65Jobs"},
	}
	const days = 365
	span := Year.Seconds()
	_, totals := fit.Histogram(clean.SubmitOffsets(""), 0, span, days)
	_, u65 := fit.Histogram(clean.SubmitOffsets(workload.U65), 0, span, days)
	// Render weekly rows to keep the table readable; the daily resolution
	// is preserved in the counts (7-day sums).
	for w := 0; w < days/7; w++ {
		var t, u int
		for d := w * 7; d < (w+1)*7 && d < days; d++ {
			t += totals[d]
			u += u65[d]
		}
		r.AddRow(fmtF(float64(w*7), 0), fmtF(float64(t), 0), fmtF(float64(u), 0))
	}
	r.AddNote("paper: the total arrival pattern is dominated by U65 (81.03%% of jobs)")
	share := float64(len(clean.SubmitOffsets(workload.U65))) / float64(clean.Len())
	r.AddNote("measured: U65 holds %.2f%% of cleaned jobs", 100*share)
	return r, nil
}

// Figure5 reproduces Figure 5: the probability density of U65 job arrivals
// (1-day bins) against the constructed four-phase composite model of
// Equation 1, with the phase boundaries.
func Figure5(sc Scale) (*Report, error) {
	clean, _, err := CleanedTrace(sc)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "figure5",
		Title:   "U65 arrival density vs composite model (Equation 1), 1-day bins",
		Columns: []string{"Day", "EmpiricalPDF", "ModelPDF"},
	}
	offs := clean.SubmitOffsets(workload.U65)
	span := Year.Seconds()
	const days = 365
	_, counts := fit.Histogram(offs, 0, span, days)
	binW := span / days
	dens := fit.HistogramDensity(counts, binW, len(offs))

	comps, weights := workload.U65ArrivalPhases(Year)
	model := func(x float64) float64 {
		var p float64
		for i, c := range comps {
			p += weights[i] * c.PDF(x)
		}
		return p
	}
	for d := 0; d < days; d += 7 {
		x := (float64(d) + 0.5) * binW
		r.AddRow(fmtF(float64(d), 0), fmtG(dens[d]), fmtG(model(x)))
	}
	for i := 1; i <= 3; i++ {
		r.AddNote("phase boundary p%d|p%d at day %d", i, i+1, i*91)
	}
	r.AddNote("paper: four quarterly experiment cycles; the composite PDF follows the empirical histogram")
	return r, nil
}

// Figure6 reproduces Figure 6: cumulative probability of job arrival as a
// function of time — fitted CDFs against the empirical CDFs for every user.
func Figure6(sc Scale) (*Report, error) {
	fits, err := FitArrivals(sc)
	if err != nil {
		return nil, err
	}
	clean := fits.Trace
	r := &Report{
		ID:    "figure6",
		Title: "Arrival CDFs: empirical (E) vs fitted (F) per user",
		Columns: []string{"Day",
			"u65 E", "u65 F", "u30 E", "u30 F", "u3 E", "u3 F", "uoth E", "uoth F"},
	}
	span := Year.Seconds()
	ecdfs := map[string]*fit.ECDF{}
	for _, u := range []string{workload.U65, workload.U30, workload.U3, workload.UOth} {
		ecdfs[u] = fit.NewECDF(clean.SubmitOffsets(u))
	}
	model := map[string]func(float64) float64{
		workload.U65:  fits.Composite.CDF,
		workload.U30:  fits.PerUser[workload.U30].Dist.CDF,
		workload.U3:   fits.PerUser[workload.U3].Dist.CDF,
		workload.UOth: fits.PerUser[workload.UOth].Dist.CDF,
	}
	for day := 0; day <= 364; day += 14 {
		x := float64(day) / 365 * span
		row := []string{fmtF(float64(day), 0)}
		for _, u := range []string{workload.U65, workload.U30, workload.U3, workload.UOth} {
			row = append(row, fmtF(ecdfs[u].At(x), 3), fmtF(model[u](x), 3))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper: fits are reasonably close; U3's burst is hardest to capture (KS 0.15)")
	r.AddNote("measured: U3 KS = %.2f (worst of the per-user fits: %v)", fits.PerUser[workload.U3].KS, worstUser(fits))
	return r, nil
}

func worstUser(f *ArrivalFits) string {
	worst, worstKS := "", -1.0
	for u, r := range f.PerUser {
		if r.KS > worstKS {
			worst, worstKS = u, r.KS
		}
	}
	return worst
}

// Figure7 reproduces Figure 7: empirical CDFs of job durations per user.
// U30 exhibits larger job sizes and a longer tail than the others.
func Figure7(sc Scale) (*Report, error) {
	clean, _, err := CleanedTrace(sc)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "figure7",
		Title:   "Empirical CDF of job durations per user",
		Columns: []string{"Duration(s)", "u65", "u30", "u3", "uoth"},
	}
	ecdfs := map[string]*fit.ECDF{}
	for _, u := range []string{workload.U65, workload.U30, workload.U3, workload.UOth} {
		ecdfs[u] = fit.NewECDF(clean.Durations(u))
	}
	// Log-spaced duration points from 1s to 600 ks (the paper's plotted
	// range is [0, 6e5]).
	for _, x := range []float64{1, 10, 100, 1e3, 5e3, 1e4, 5e4, 1e5, 3e5, 6e5} {
		row := []string{fmtG(x)}
		for _, u := range []string{workload.U65, workload.U30, workload.U3, workload.UOth} {
			row = append(row, fmtF(ecdfs[u].At(x), 3))
		}
		r.AddRow(row...)
	}
	at := func(u string, x float64) float64 { return ecdfs[u].At(x) }
	r.AddNote("paper: u65, u3 and uoth concentrate in [0, 6e5] while u30 has a larger tail")
	r.AddNote("measured: P(dur <= 6e5) = u65 %.3f, u30 %.3f, u3 %.3f, uoth %.3f",
		at(workload.U65, 6e5), at(workload.U30, 6e5), at(workload.U3, 6e5), at(workload.UOth, 6e5))
	return r, nil
}
