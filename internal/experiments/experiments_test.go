package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

// tiny returns a scale small enough for unit tests.
func tiny() Scale {
	sc := QuickScale()
	sc.Jobs = 1500
	sc.Sites = 2
	sc.Cores = 12
	sc.Duration = 2 * 60 * 60 * 1e9 // 2h
	sc.HistoricalJobs = 3000
	sc.FitSample = 300
	return sc
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Columns: []string{"A", "B"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 7)
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "A", "1", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableIPropertyMatrix(t *testing.T) {
	r, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	byName := map[string][]string{}
	for _, row := range r.Rows {
		byName[row[0]] = row
	}
	// Vectors: everything but combinable.
	v := byName["Fairshare vectors"]
	if v[1] != "✓" || v[2] != "✓" || v[3] != "✓" || v[4] != "✓" || v[5] != "×" {
		t.Errorf("vectors row = %v", v)
	}
	// Dictionary keeps depth/precision/isolation, loses proportionality.
	d := byName["Dictionary Ordering"]
	if d[1] != "✓" || d[2] != "✓" || d[3] != "✓" || d[4] != "×" || d[5] != "✓" {
		t.Errorf("dictionary row = %v", d)
	}
	// Bitwise loses depth and precision, keeps isolation.
	b := byName["Bitwise Vector"]
	if b[1] != "×" || b[2] != "×" || b[3] != "✓" || b[5] != "✓" {
		t.Errorf("bitwise row = %v", b)
	}
	// Percental keeps depth/precision/proportionality, loses isolation.
	p := byName["Percental"]
	if p[1] != "✓" || p[2] != "✓" || p[3] != "×" || p[4] != "✓" || p[5] != "✓" {
		t.Errorf("percental row = %v", p)
	}
}

func TestHistoricalTraceCleaning(t *testing.T) {
	sc := tiny()
	_, rep, err := CleanedTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~15% of jobs and ~1.5% of usage removed.
	if rep.JobFraction < 0.10 || rep.JobFraction > 0.20 {
		t.Errorf("removed job fraction = %.3f, want ~0.15", rep.JobFraction)
	}
	if rep.UsageFraction < 0.001 || rep.UsageFraction > 0.05 {
		t.Errorf("removed usage fraction = %.4f, want ~0.015", rep.UsageFraction)
	}
}

func TestTableIIShape(t *testing.T) {
	sc := tiny()
	r, err := TableII(sc)
	if err != nil {
		t.Fatal(err)
	}
	// 4 phases + composite + 3 users = 8 rows.
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row) != 4 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	r, err := TableIII(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
}

func TestFigures4to7(t *testing.T) {
	sc := tiny()
	for name, f := range map[string]func(Scale) (*Report, error){
		"figure4": Figure4, "figure5": Figure5, "figure6": Figure6, "figure7": Figure7,
	} {
		r, err := f(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
		var buf bytes.Buffer
		if err := r.Render(&buf); err != nil {
			t.Errorf("%s render: %v", name, err)
		}
	}
}

func TestFigure10Baseline(t *testing.T) {
	r, res, err := Figure10Baseline(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Error("no rows")
	}
	if res.Utilization <= 0.3 {
		t.Errorf("utilization = %.3f", res.Utilization)
	}
}

func TestFigure13Bursty(t *testing.T) {
	r, res, err := Figure13Bursty(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Error("no rows")
	}
	// The U3 priority bound note must exist and the observed max must be
	// within the theoretical limit.
	p := res.Priorities[workload.U3]
	if p == nil {
		t.Fatal("no U3 priorities")
	}
	for _, v := range p.Values {
		if v > 0.56+1e-9 {
			t.Fatalf("U3 priority %g exceeds the 0.56 bound", v)
		}
	}
}

func TestFigurePartialShape(t *testing.T) {
	r, res, err := FigurePartial(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Error("no rows")
	}
	if len(res.SitePriorities) != 2 {
		t.Errorf("site priorities = %d", len(res.SitePriorities))
	}
}

func TestScalesSane(t *testing.T) {
	full, quick := FullScale(), QuickScale()
	if full.Jobs != 43200 || full.Sites != 6 || full.Cores != 40 {
		t.Errorf("full scale = %+v", full)
	}
	if quick.Jobs >= full.Jobs {
		t.Error("quick scale not smaller")
	}
}
