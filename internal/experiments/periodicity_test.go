package experiments

import "testing"

func TestPeriodicity(t *testing.T) {
	r, err := Periodicity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}
