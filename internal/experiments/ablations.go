package experiments

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/testbed"
	"repro/internal/usage"
	"repro/internal/vector"
	"repro/internal/workload"
)

// ablationRun executes a baseline-style run with a config mutation and
// returns the mean absolute usage-share error over the second half of the
// run (lower = better convergence) plus the result.
func ablationRun(sc Scale, mutate func(*testbed.Config)) (float64, *testbed.Result, error) {
	m := workload.NationalGrid2012(sc.Duration)
	tr, err := testbedTrace(sc, m, 0.95)
	if err != nil {
		return 0, nil, err
	}
	targets := usageShareTargets(m)
	cfg := testbed.Config{
		Sites: sc.Sites, CoresPerSite: sc.Cores, Start: testStart,
		Duration: sc.Duration, PolicyShares: targets, Trace: tr, Seed: sc.Seed,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := testbed.Run(cfg)
	if err != nil {
		return 0, nil, err
	}
	half := testStart.Add(sc.Duration / 2)
	var mae float64
	n := 0
	for _, u := range testUsers {
		if s := res.UsageShares[u]; s != nil {
			v := metrics.MeanAbsError(s, targets[u], half)
			mae += v
			n++
		}
	}
	if n > 0 {
		mae /= float64(n)
	}
	return mae, res, nil
}

// AblationProjection compares the three vector projections on identical
// workloads — the trade-off study Table I motivates.
func AblationProjection(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "ablationProjection",
		Title:   "Projection algorithm ablation on the baseline workload",
		Columns: []string{"Projection", "ShareMAE(2nd half)", "Utilization"},
	}
	for _, p := range vector.Projections() {
		p := p
		mae, res, err := ablationRun(sc, func(c *testbed.Config) { c.Projection = p })
		if err != nil {
			return nil, err
		}
		r.AddRow(p.Name(), fmtF(mae, 4), fmtF(res.Utilization, 3))
	}
	r.AddNote("paper: the percental projection is the production configuration; in-depth projection tuning is future work")
	return r, nil
}

// AblationDistanceWeight sweeps the absolute/relative distance weight k.
func AblationDistanceWeight(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "ablationDistanceWeight",
		Title:   "Distance weight (k) sweep: relative vs absolute blend",
		Columns: []string{"k", "ShareMAE(2nd half)", "Utilization"},
	}
	for _, k := range []float64{0.01, 0.25, 0.5, 0.75, 1.0} {
		k := k
		mae, res, err := ablationRun(sc, func(c *testbed.Config) {
			c.DistanceWeight = k
			// The percental projection bypasses the k-blended node values
			// (it recomputes target−usage directly), so the sweep uses the
			// dictionary projection, which orders by the k-dependent
			// fairshare vectors.
			c.Projection = vector.Dictionary{}
		})
		if err != nil {
			return nil, err
		}
		r.AddRow(fmtF(k, 2), fmtF(mae, 4), fmtF(res.Utilization, 3))
	}
	r.AddNote("paper default k = 0.5: absolute and relative components weighted equally")
	r.AddNote("swept under the dictionary projection; percental recomputes target−usage and is k-invariant")
	return r, nil
}

// AblationDecay sweeps the usage decay half-life.
func AblationDecay(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "ablationDecay",
		Title:   "Usage decay half-life sweep",
		Columns: []string{"HalfLife", "ShareMAE(2nd half)", "Utilization"},
	}
	for _, frac := range []float64{1.0 / 24, 1.0 / 12, 1.0 / 6, 1.0 / 3, 1} {
		hl := time.Duration(float64(sc.Duration) * frac)
		mae, res, err := ablationRun(sc, func(c *testbed.Config) {
			c.Decay = usage.ExponentialHalfLife{HalfLife: hl}
		})
		if err != nil {
			return nil, err
		}
		r.AddRow(hl.String(), fmtF(mae, 4), fmtF(res.Utilization, 3))
	}
	r.AddNote("shorter half-lives forget faster and track shifts sooner but fluctuate more")
	return r, nil
}

// AblationCacheTTL sweeps the update-delay components (libaequus cache and
// service refresh intervals together).
func AblationCacheTTL(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "ablationCacheTTL",
		Title:   "Update-delay sweep: cache/refresh intervals (components I-IV)",
		Columns: []string{"Interval", "ShareMAE(2nd half)", "Utilization"},
	}
	for _, iv := range []time.Duration{15 * time.Second, time.Minute, 5 * time.Minute, 15 * time.Minute} {
		iv := iv
		mae, res, err := ablationRun(sc, func(c *testbed.Config) {
			c.ExchangeInterval = iv
			c.RefreshInterval = iv
			c.LibTTL = iv / 2
			c.ReprioInterval = iv
		})
		if err != nil {
			return nil, err
		}
		r.AddRow(iv.String(), fmtF(mae, 4), fmtF(res.Utilization, 3))
	}
	r.AddNote("paper: update and processing delays are components (I)-(IV); shorter delays shorten convergence")
	return r, nil
}

// AblationDispatch compares stochastic vs round-robin grid dispatch; the
// paper found "no noticeable difference".
func AblationDispatch(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "ablationDispatch",
		Title:   "Dispatch strategy: stochastic vs round-robin",
		Columns: []string{"Dispatcher", "ShareMAE(2nd half)", "Utilization"},
	}
	dispatchers := []grid.Dispatcher{grid.NewStochastic(sc.Seed + 1), &grid.RoundRobin{}}
	var maes []float64
	for _, d := range dispatchers {
		d := d
		mae, res, err := ablationRun(sc, func(c *testbed.Config) { c.Dispatcher = d })
		if err != nil {
			return nil, err
		}
		maes = append(maes, mae)
		r.AddRow(d.Name(), fmtF(mae, 4), fmtF(res.Utilization, 3))
	}
	if len(maes) == 2 {
		r.AddNote("|Δ MAE| = %.4f (paper: no noticeable difference between the strategies)", abs(maes[0]-maes[1]))
	}
	return r, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// AblationRM compares the SLURM- and Maui-like substrates under Aequus.
func AblationRM(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "ablationRM",
		Title:   "Resource-manager substrate: SLURM-like vs Maui-like under Aequus",
		Columns: []string{"RM", "ShareMAE(2nd half)", "Utilization"},
	}
	for _, rm := range []testbed.RMKind{testbed.RMSlurm, testbed.RMMaui} {
		rm := rm
		mae, res, err := ablationRun(sc, func(c *testbed.Config) { c.RM = rm })
		if err != nil {
			return nil, err
		}
		r.AddRow(string(rm), fmtF(mae, 4), fmtF(res.Utilization, 3))
	}
	r.AddNote("paper: Aequus integrates with both SLURM (plug-ins) and Maui (patches) with minimal intrusion")
	return r, nil
}

// All runs every experiment at the given scale and returns the reports in
// paper order.
func All(sc Scale) ([]*Report, error) {
	var out []*Report
	add := func(r *Report, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}
	if err := add(TableI()); err != nil {
		return nil, fmt.Errorf("tableI: %w", err)
	}
	if err := add(TableII(sc)); err != nil {
		return nil, fmt.Errorf("tableII: %w", err)
	}
	if err := add(TableIII(sc)); err != nil {
		return nil, fmt.Errorf("tableIII: %w", err)
	}
	if err := add(Periodicity(sc)); err != nil {
		return nil, fmt.Errorf("periodicity: %w", err)
	}
	if err := add(Figure4(sc)); err != nil {
		return nil, fmt.Errorf("figure4: %w", err)
	}
	if err := add(Figure5(sc)); err != nil {
		return nil, fmt.Errorf("figure5: %w", err)
	}
	if err := add(Figure6(sc)); err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}
	if err := add(Figure7(sc)); err != nil {
		return nil, fmt.Errorf("figure7: %w", err)
	}
	r10, _, err := Figure10Baseline(sc)
	if err := add(r10, err); err != nil {
		return nil, fmt.Errorf("figure10: %w", err)
	}
	if err := add(Figure11UpdateDelay(sc)); err != nil {
		return nil, fmt.Errorf("figure11: %w", err)
	}
	r12, _, err := Figure12NonOptimalPolicy(sc)
	if err := add(r12, err); err != nil {
		return nil, fmt.Errorf("figure12: %w", err)
	}
	rp, _, err := FigurePartial(sc)
	if err := add(rp, err); err != nil {
		return nil, fmt.Errorf("figurePartial: %w", err)
	}
	r13, _, err := Figure13Bursty(sc)
	if err := add(r13, err); err != nil {
		return nil, fmt.Errorf("figure13: %w", err)
	}
	if err := add(ProductionStats(sc)); err != nil {
		return nil, fmt.Errorf("production: %w", err)
	}
	return out, nil
}
